package stages

import (
	"testing"
)

// TestMScalingIdentity pins the Section IV-B size generalization as an
// exact algebraic identity of the model: a network of m-cycle messages at
// arrival rate p is a unit-message network run at intensity ρ = m·p with
// the clock dilated by m, so
//
//	w∞(k, m, p) = m · w∞(k, 1, ρ)        (equation (15)).
//
// Both sides route through different code paths (the m ≥ 2 branch uses
// unitMeanBar directly; the M = 1 branch anchors at the exact
// first-stage formula), so agreement also verifies that
// core.ConstServiceMeanWait(k, k, ρ, 1) equals the closed form
// (1-1/k)ρ/(2(1-ρ)) the scaled branch is built on.
func TestMScalingIdentity(t *testing.T) {
	md := DefaultModel()
	for _, k := range []int{2, 3, 4, 8} {
		for _, m := range []int{2, 3, 5, 9} {
			for _, p := range []float64{0.01, 0.05, 0.1, 0.3 / float64(m)} {
				scaled := Params{K: k, M: m, P: p}
				unit := Params{K: k, M: 1, P: float64(m) * p}
				if err := scaled.Validate(); err != nil {
					t.Fatal(err)
				}
				got := md.LimitMeanWait(scaled)
				want := float64(m) * md.LimitMeanWait(unit)
				almost(t, got, want, 1e-12*(1+want),
					"m-scaling of the limit mean wait")
			}
		}
	}
}

// TestUnitBarsMatchExactFirstStage: the building blocks of the m ≥ 2
// branch are the closed forms ū(ρ) and v̄(ρ); they must coincide with the
// exact stage-1 reconstructions evaluated at unit size — otherwise the
// M = 1 and m ≥ 2 branches of the model disagree at the seam m→1.
func TestUnitBarsMatchExactFirstStage(t *testing.T) {
	md := DefaultModel()
	for _, k := range []int{2, 4, 16} {
		for _, rho := range []float64{0.1, 0.5, 0.85} {
			pr := Params{K: k, M: 1, P: rho}
			almost(t, unitMeanBar(k, rho), md.FirstStageMean(pr), 1e-12,
				"unitMeanBar vs exact stage-1 mean")
			almost(t, unitVarBar(k, rho), md.FirstStageVar(pr), 1e-12,
				"unitVarBar vs exact stage-1 variance")
		}
	}
}

// TestQFactorMultiplies: the Section IV-D favorite-output correction is a
// pure multiplicative factor on both branches — switching q on scales
// w∞ and v∞ by exactly qWaitFactor(q) and qVarFactor(q) for m ≥ 2
// (where the anchor itself has no q dependence).
func TestQFactorMultiplies(t *testing.T) {
	md := DefaultModel()
	for _, q := range []float64{0.1, 0.3, 0.5} {
		for _, m := range []int{2, 4} {
			base := Params{K: 2, M: m, P: 0.1}
			fav := base
			fav.Q = q
			almost(t, md.LimitMeanWait(fav), md.qWaitFactor(q)*md.LimitMeanWait(base),
				1e-12, "q wait factor multiplies")
			almost(t, md.LimitVarWait(fav), md.qVarFactor(q)*md.LimitVarWait(base),
				1e-12, "q var factor multiplies")
		}
	}
}

// TestMultiSizeDegeneratesToConst: the Section IV-C mixture formulas with
// a single size in the mix must reduce to the plain m ≥ 2 limits — the
// stage-1 correction ratio is exactly 1 when the mixture is degenerate.
func TestMultiSizeDegeneratesToConst(t *testing.T) {
	md := DefaultModel()
	for _, m := range []int{2, 3, 5} {
		for _, p := range []float64{0.05, 0.15} {
			pr := Params{K: 2, M: m, P: p}
			gotMean := md.MultiSizeLimitMeanWait(2, p, []int{m}, []float64{1})
			almost(t, gotMean, md.LimitMeanWait(pr), 1e-9*(1+gotMean),
				"degenerate multi-size mean")
			gotVar := md.MultiSizeLimitVarWait(2, p, []int{m}, []float64{1})
			almost(t, gotVar, md.LimitVarWait(pr), 1e-9*(1+gotVar),
				"degenerate multi-size variance")
		}
	}
}
