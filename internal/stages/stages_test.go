package stages

import (
	"math"
	"testing"

	"banyan/internal/core"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %.10g, want %.10g (tol %g)", msg, got, want, tol)
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{K: 2, M: 1, P: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{K: 1, M: 1, P: 0.5},
		{K: 2, M: 0, P: 0.5},
		{K: 2, M: 1, P: -0.1},
		{K: 2, M: 1, P: 1.1},
		{K: 2, M: 1, P: 0.5, Q: 2},
		{K: 2, M: 4, P: 0.3}, // ρ = 1.2
	}
	for i, pr := range bad {
		if err := pr.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, pr)
		}
	}
	almost(t, Params{K: 2, M: 4, P: 0.125}.Rho(), 0.5, 1e-15, "rho")
}

// TestPaperEstimateAnchors pins the reconstructed Section IV constants
// against every legible ESTIMATE value in the paper's tables.
func TestPaperEstimateAnchors(t *testing.T) {
	md := DefaultModel()

	// Table V, q=0 column (k=2, p=0.5, m=1): ESTIMATE w∞ = 0.3000,
	// v∞ = 0.3438.
	pr := Params{K: 2, M: 1, P: 0.5}
	almost(t, md.LimitMeanWait(pr), 0.3, 1e-9, "paper ESTIMATE w∞(k=2,p=.5)")
	almost(t, md.LimitVarWait(pr), 0.34375, 1e-4, "paper ESTIMATE v∞(k=2,p=.5)")

	// Table III (k=2, ρ=0.5): the mean ESTIMATE row is (0.600, 1.200,
	// 2.400, 4.800) for m = 2, 4, 8, 16, which the model reproduces
	// exactly. For the variance our re-fit targets the paper's
	// *simulated* deep-stage values (1.219, 4.777, 18.73, 74.35) —
	// the paper's own printed ESTIMATE row (1.167, 4.667, …) sits ≈4%
	// below its own simulations.
	want := []struct {
		m    int
		w, v float64
	}{
		{2, 0.600, 1.219},
		{4, 1.200, 4.777},
		{8, 2.400, 18.73},
		{16, 4.800, 74.35},
	}
	for _, c := range want {
		prm := Params{K: 2, M: c.m, P: 0.5 / float64(c.m)}
		almost(t, md.LimitMeanWait(prm), c.w, 5e-4, "Table III ESTIMATE w")
		almost(t, md.LimitVarWait(prm), c.v, 0.04*c.v, "Table III deep-stage v")
	}

	// The r(p) coefficients the paper reports: a ≈ 2/5 at k=2, a bit
	// under 0.2 at k=4, a bit under 0.1 at k=8.
	almost(t, md.WaitA(2), 0.4, 1e-12, "a(2)")
	almost(t, md.WaitA(4), 0.2, 1e-12, "a(4)")
	almost(t, md.WaitA(8), 0.1, 1e-12, "a(8)")
}

// TestQuadraticWaitModel checks the paper-suggested concave refinement
// against the measured ratios (see cmd/calibrate).
func TestQuadraticWaitModel(t *testing.T) {
	md := QuadraticWaitModel()
	// Measured r(p) at k=2 from the calibration run.
	for _, c := range []struct{ p, want float64 }{
		{0.2, 1.0876}, {0.35, 1.1464}, {0.5, 1.1991}, {0.65, 1.2475}, {0.8, 1.2920},
	} {
		r := md.RatioOfLimits(Params{K: 2, M: 1, P: c.p})
		almost(t, r, c.want, 0.004, "quadratic r(p)")
	}
	// The default's linear model overshoots at p=0.8 where the
	// quadratic does not.
	lin := DefaultModel().RatioOfLimits(Params{K: 2, M: 1, P: 0.8})
	quad := md.RatioOfLimits(Params{K: 2, M: 1, P: 0.8})
	if math.Abs(quad-1.2920) >= math.Abs(lin-1.2920) {
		t.Fatalf("quadratic (%g) no better than linear (%g) at p=0.8", quad, lin)
	}
	// Multi-size and m≥2 paths also honor the override.
	w := md.MultiSizeLimitMeanWait(2, 0.1, []int{4}, []float64{1})
	almost(t, w, md.LimitMeanWait(Params{K: 2, M: 4, P: 0.1}), 1e-9, "override in multi-size path")
}

func TestFirstStageAnchorsAreExact(t *testing.T) {
	md := DefaultModel()
	pr := Params{K: 2, M: 4, P: 0.125}
	almost(t, md.FirstStageMean(pr), core.ConstServiceMeanWait(2, 2, 0.125, 4), 1e-12, "anchor mean")
	almost(t, md.FirstStageVar(pr), core.ConstServiceVarWait(2, 2, 0.125, 4), 1e-12, "anchor var")
	prq := Params{K: 2, M: 1, P: 0.5, Q: 0.3}
	almost(t, md.FirstStageMean(prq), core.NonuniformExclusiveMeanWait(2, 0.5, 0.3, 1), 1e-12, "q anchor mean")
}

func TestStageConvergence(t *testing.T) {
	md := DefaultModel()
	pr := Params{K: 2, M: 1, P: 0.5}
	w1 := md.StageMeanWait(pr, 1)
	winf := md.LimitMeanWait(pr)
	prev := w1
	for i := 2; i <= 30; i++ {
		w := md.StageMeanWait(pr, i)
		if w < prev-1e-12 {
			t.Fatalf("stage mean decreased at %d", i)
		}
		if w > winf+1e-12 {
			t.Fatalf("stage mean overshot limit at %d", i)
		}
		prev = w
	}
	almost(t, md.StageMeanWait(pr, 30), winf, 1e-9, "converges to limit")
	// Geometric rate α: (w∞-w_{i+1})/(w∞-w_i) = α.
	g2 := (winf - md.StageMeanWait(pr, 3)) / (winf - md.StageMeanWait(pr, 2))
	almost(t, g2, md.Alpha, 1e-12, "geometric rate")
	// Variance analog.
	vinf := md.LimitVarWait(pr)
	almost(t, md.StageVarWait(pr, 40), vinf, 1e-9, "variance converges")
	almost(t, md.StageVarWait(pr, 1), md.FirstStageVar(pr), 0, "stage 1 exact")
}

func TestStageMeanForLargeMessages(t *testing.T) {
	md := DefaultModel()
	pr := Params{K: 2, M: 4, P: 0.125}
	// Stage 1 is exact (1.75); later stages drop to the scaled model
	// (1.2) — the paper's "sources are spaced" effect.
	almost(t, md.StageMeanWait(pr, 1), 1.75, 1e-12, "stage 1")
	almost(t, md.StageMeanWait(pr, 2), md.LimitMeanWait(pr), 0, "stage 2 = limit for m ≥ 2")
	if md.StageMeanWait(pr, 2) >= md.StageMeanWait(pr, 1) {
		t.Fatal("later stages must be lighter than stage 1 for m ≥ 2 at this load")
	}
}

func TestRatioOfLimits(t *testing.T) {
	md := DefaultModel()
	pr := Params{K: 2, M: 1, P: 0.5}
	almost(t, md.RatioOfLimits(pr), 1.2, 1e-12, "r(0.5) = 1+2/5·0.5")
	// r is increasing in p and decreasing in k.
	if md.RatioOfLimits(Params{K: 2, M: 1, P: 0.8}) <= md.RatioOfLimits(pr) {
		t.Fatal("ratio should grow with p")
	}
	if md.RatioOfLimits(Params{K: 8, M: 1, P: 0.5}) >= md.RatioOfLimits(pr) {
		t.Fatal("ratio should shrink with k")
	}
	// Zero-wait edge: ratio defined as 1.
	almost(t, md.RatioOfLimits(Params{K: 2, M: 1, P: 0}), 1, 0, "ratio at p=0")
}

func TestFitLinear(t *testing.T) {
	a, err := FitLinear(0.5, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, a, 0.4, 1e-12, "paper's own calibration: a = 2/5")
	if _, err := FitLinear(0, 1.2); err == nil {
		t.Fatal("expected error at p = 0")
	}
}

func TestFitQuadratic(t *testing.T) {
	// Recover known coefficients.
	c1, c2 := 0.7, -0.3
	r := func(x float64) float64 { return 1 + c1*x + c2*x*x }
	g1, g2, err := FitQuadratic(0.3, r(0.3), 0.8, r(0.8))
	if err != nil {
		t.Fatal(err)
	}
	almost(t, g1, c1, 1e-10, "c1")
	almost(t, g2, c2, 1e-10, "c2")
	if _, _, err := FitQuadratic(0.5, 1.1, 0.5, 1.2); err == nil {
		t.Fatal("expected degenerate-points error")
	}
}

func TestMultiSizeLimits(t *testing.T) {
	md := DefaultModel()
	sizes := []int{4, 8}
	probs := []float64{0.75, 0.25}
	mbar := 5.0
	p := 0.5 / mbar
	w := md.MultiSizeLimitMeanWait(2, p, sizes, probs)
	v := md.MultiSizeLimitVarWait(2, p, sizes, probs)
	if w <= 0 || v <= 0 {
		t.Fatalf("limits must be positive: %g %g", w, v)
	}
	// Degenerate mixture must agree with the constant-size path.
	wc := md.MultiSizeLimitMeanWait(2, 0.125, []int{4}, []float64{1})
	almost(t, wc, md.LimitMeanWait(Params{K: 2, M: 4, P: 0.125}), 1e-9, "degenerate mixture mean")
	vc := md.MultiSizeLimitVarWait(2, 0.125, []int{4}, []float64{1})
	almost(t, vc, md.LimitVarWait(Params{K: 2, M: 4, P: 0.125}), 1e-9, "degenerate mixture var")
	// Mixing sizes at the same m̄ raises the wait (service variability).
	if w <= wc {
		t.Fatalf("mixture wait %g should exceed constant-size wait %g", w, wc)
	}
}

func TestNonuniformLimitsMonotone(t *testing.T) {
	md := DefaultModel()
	// With the calibrated factors, w∞(q) decreases in q at p=0.5
	// (favored messages stop colliding at later stages).
	prev := math.Inf(1)
	for _, q := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95} {
		w := md.LimitMeanWait(Params{K: 2, M: 1, P: 0.5, Q: q})
		if w >= prev {
			t.Fatalf("w∞ not decreasing at q=%g: %g ≥ %g", q, w, prev)
		}
		prev = w
	}
}

func TestHeavyTrafficProbe(t *testing.T) {
	md := DefaultModel()
	// (1-ρ)·w∞ should approach a finite positive limit as p → 1: the
	// paper's conjectured heavy-traffic constant.
	var last float64
	for _, p := range []float64{0.9, 0.99, 0.999, 0.9999} {
		v := md.HeavyTrafficProbe(Params{K: 2, M: 1, P: p})
		if v <= 0 || math.IsInf(v, 0) {
			t.Fatalf("probe at p=%g: %g", p, v)
		}
		last = v
	}
	// Analytic limit: (1+a)·(1-1/k)/2 = 1.4·0.25 = 0.35.
	almost(t, last, 0.35, 1e-3, "heavy-traffic constant")
}

func TestLightTrafficMD1Mean(t *testing.T) {
	got := LightTrafficMD1Mean(2, 4, 0.2)
	want := 4 * (0.1 / (2 * 0.9))
	almost(t, got, want, 1e-12, "light-traffic M/D/1 anchor")
}

func TestStagePanics(t *testing.T) {
	md := DefaultModel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for stage 0")
		}
	}()
	md.StageMeanWait(Params{K: 2, M: 1, P: 0.5}, 0)
}
