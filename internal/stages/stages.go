// Package stages implements Section IV of the paper: approximations for
// the waiting-time mean and variance at the later stages of the network.
//
// The paper's method is empirical interpolation anchored on the exact
// first-stage formulas: waiting-time statistics converge geometrically
// (rate α = 2/5) from the stage-1 value w₁ to a "spatial steady state"
// w∞ ≈ r(p)·w₁ with r(p) = 1 + a(k)·p, and similarly for the variance
// with one extra power of p. For messages of constant size m ≥ 2, later
// stages behave like a unit-service network with the cycle time scaled by
// m and traffic intensity ρ = mp (output links deliver packets spaced at
// least m apart, which removes same-source collisions), so the stage-1
// formulas are reused with (m=1, p→ρ) and scaled by m (mean) or m²
// (variance).
//
// Several of the interpolation constants are OCR-damaged in the available
// text; the Model type makes every constant explicit, DefaultModel ships
// the reconstruction that matches every legible ESTIMATE row of the
// paper's tables (see DESIGN.md §3), and the Fit* helpers re-run the
// paper's own calibration procedure against fresh simulation output.
package stages

import (
	"fmt"
	"math"

	"banyan/internal/core"
)

// Model holds the Section IV interpolation constants.
type Model struct {
	// Alpha is the geometric rate at which stage statistics approach
	// their limit: stat_i = stat_1 + (stat_∞ - stat_1)(1 - Alpha^{i-1}).
	// The paper finds a single value works for all p and k.
	Alpha float64

	// WaitA is the coefficient a in r(p) = w∞/w₁ = 1 + a·p for unit-size
	// messages, as a function of the switch radix k. The paper reports
	// a ≈ 2/5, <0.2, <0.1 for k = 2, 4, 8; DefaultModel uses a = 4/(5k).
	WaitA func(k int) float64

	// WaitRatio, when non-nil, replaces the linear 1 + WaitA(k)·p form
	// entirely (QuadraticWaitModel uses it for the paper's suggested
	// concave refinement).
	WaitRatio func(k int, p float64) float64

	// VarC1, VarC2 give the unit-size variance ratio
	// v∞/v₁ = 1 + (VarC1·p + VarC2·p²)/k. DefaultModel uses
	// (0.65, 1.7), re-fit from this repository's simulator over
	// p ∈ [0.2, 0.8] and k ∈ {2, 4, 8}; the pair reproduces the paper's
	// ESTIMATE v∞ = 0.34375 at k = 2, p = 0.5 exactly.
	VarC1, VarC2 float64

	// VarM0, VarMSlope, VarMC1, VarMC2 define the variance ratio for
	// constant size m ≥ 2:
	//
	//	v∞ / (m²·v̄₁(ρ)) = VarM0 + VarMSlope·ρ + (VarMC1·ρ + VarMC2·ρ²)/k
	//
	// with ρ = mp. The ρ → 0 intercept VarM0 is the paper's
	// light-traffic constant (2/3 from M/D/1 thinning analysis, 7/10
	// "in practice"); the remaining coefficients were re-fit from this
	// repository's simulator over ρ ∈ [0.2, 0.8], k ∈ {2, 4, 8}, m ∈
	// {2, 4, 8} (the factor is m-independent to within Monte-Carlo
	// error, which validates the paper's scaled-network model). The
	// fit tracks simulation within ≈3% everywhere, closer than the
	// paper's printed Table III ESTIMATE row (which is ≈4% below its
	// own simulations).
	VarM0, VarMSlope, VarMC1, VarMC2 float64

	// QWait1, QWait2 extend the wait ratio for nonuniform traffic:
	// w∞(q)/w₁(q) = (1 + a·p)·(1 + QWait1·q + QWait2·q²). The analogous
	// QVar1, QVar2 apply to the variance ratio. The paper's constants
	// are illegible in the available text; DefaultModel's values were
	// re-fit from this repository's simulations at k=2, p=0.5 (the
	// paper's own procedure — see FitQuadratic).
	QWait1, QWait2 float64
	QVar1, QVar2   float64
}

// QuadraticWaitModel returns DefaultModel with the wait ratio refined to
// the quadratic r(p) = 1 + (0.924·p - 0.25·p²)/k — the "even better
// estimate … using a quadratic approximation" the paper suggests after
// noting r(p) is slightly concave. The coefficients were fit from this
// repository's simulator at k = 2 and track the measured ratios within
// ~0.3% there (e.g. r(0.8) = 1.290 vs simulated 1.292, where the linear
// default gives 1.320). The paper's round ESTIMATE anchors (w∞ = 0.3 at
// k=2, p=0.5) hold only approximately under this model (0.29994), which
// is why it is not the default.
func QuadraticWaitModel() Model {
	md := DefaultModel()
	md.WaitA = nil
	md.WaitRatio = func(k int, p float64) float64 {
		return 1 + (0.924*p-0.25*p*p)/float64(k)
	}
	return md
}

// DefaultModel returns the constants reconstructed from the paper
// (Table I/II/III/V ESTIMATE rows), with the nonuniform-traffic factors
// re-fit from this repository's simulator.
func DefaultModel() Model {
	return Model{
		Alpha: 2.0 / 5.0,
		WaitA: func(k int) float64 { return 4.0 / (5.0 * float64(k)) },
		VarC1: 0.65, VarC2: 1.7,
		VarM0: 0.7, VarMSlope: 0.3, VarMC1: 0.28, VarMC2: 2.23,
		// Re-fit from this repository's simulator at k=2, p=0.5 via
		// cmd/calibrate (see EXPERIMENTS.md, Table V):
		QWait1: -0.099, QWait2: -0.074,
		QVar1: -0.220, QVar2: -0.066,
	}
}

// Params identifies a network operating point for the Section IV
// formulas: k×k switches, constant message size M, per-input per-cycle
// arrival probability P, favorite-output probability Q (0 = uniform).
type Params struct {
	K int
	M int
	P float64
	Q float64
}

// Rho returns the traffic intensity ρ = M·P (k = s, uniform load).
func (pr Params) Rho() float64 { return float64(pr.M) * pr.P }

// Validate checks the operating point is meaningful and stable.
func (pr Params) Validate() error {
	if pr.K < 2 {
		return fmt.Errorf("stages: switch radix k = %d must be at least 2", pr.K)
	}
	if pr.M < 1 {
		return fmt.Errorf("stages: message size m = %d must be at least 1", pr.M)
	}
	if pr.P < 0 || pr.P > 1 {
		return fmt.Errorf("stages: arrival probability p = %g out of [0,1]", pr.P)
	}
	if pr.Q < 0 || pr.Q > 1 {
		return fmt.Errorf("stages: favorite probability q = %g out of [0,1]", pr.Q)
	}
	if pr.Rho() >= 1 {
		return fmt.Errorf("stages: unstable operating point ρ = %g", pr.Rho())
	}
	return nil
}

// firstStageMean returns the exact stage-1 mean wait for pr. For
// nonuniform traffic the anchor is the exclusive (physical-switch)
// favorite-output law, which is what a real first stage — and the
// simulator — realizes (the paper's product form overstates it; see
// traffic.NonuniformExclusive). The q model is defined for m = 1.
func firstStageMean(pr Params) float64 {
	if pr.Q != 0 {
		return core.NonuniformExclusiveMeanWait(pr.K, pr.P, pr.Q, 1)
	}
	return core.ConstServiceMeanWait(pr.K, pr.K, pr.P, pr.M)
}

// firstStageVar returns the exact stage-1 wait variance for pr.
func firstStageVar(pr Params) float64 {
	if pr.Q != 0 {
		return core.NonuniformExclusiveVarWait(pr.K, pr.P, pr.Q, 1)
	}
	return core.ConstServiceVarWait(pr.K, pr.K, pr.P, pr.M)
}

// FirstStageMean exposes the exact stage-1 mean used as the anchor.
func (md Model) FirstStageMean(pr Params) float64 { return firstStageMean(pr) }

// FirstStageVar exposes the exact stage-1 variance used as the anchor.
func (md Model) FirstStageVar(pr Params) float64 { return firstStageVar(pr) }

// unitMeanBar returns the unit-size first-stage mean formula evaluated at
// arrival rate rho: (1-1/k)ρ/(2(1-ρ)) — the building block of the m ≥ 2
// scaled model.
func unitMeanBar(k int, rho float64) float64 {
	return (1 - 1/float64(k)) * rho / (2 * (1 - rho))
}

// unitVarBar returns the unit-size first-stage variance formula at rate
// rho: equation (7) with λ = ρ.
func unitVarBar(k int, rho float64) float64 {
	kk := float64(k)
	return (1 - 1/kk) * rho * (6 - 5*rho*(1+1/kk) + 2*rho*rho*(1+1/kk)) /
		(12 * (1 - rho) * (1 - rho))
}

// waitRatio returns r(p) = w∞/w₁ for unit-size messages at rate p:
// the quadratic override when set, otherwise the linear 1 + a(k)·p.
func (md Model) waitRatio(k int, p float64) float64 {
	if md.WaitRatio != nil {
		return md.WaitRatio(k, p)
	}
	return 1 + md.WaitA(k)*p
}

// qWaitFactor is the nonuniform correction to the wait ratio.
func (md Model) qWaitFactor(q float64) float64 {
	return 1 + md.QWait1*q + md.QWait2*q*q
}

// qVarFactor is the nonuniform correction to the variance ratio.
func (md Model) qVarFactor(q float64) float64 {
	return 1 + md.QVar1*q + md.QVar2*q*q
}

// LimitMeanWait returns w∞, the approximate mean wait per stage deep in
// the network (equations (11) and (15), plus the Section IV-D nonuniform
// correction).
func (md Model) LimitMeanWait(pr Params) float64 {
	rho := pr.Rho()
	if pr.M == 1 {
		f := md.waitRatio(pr.K, pr.P)
		if pr.Q != 0 {
			f *= md.qWaitFactor(pr.Q)
		}
		return f * firstStageMean(pr)
	}
	// m ≥ 2: unit-size network at intensity ρ with cycle time m
	// (equation (15)); with the Section IV-E size generalization the q
	// factor multiplies in the same way.
	f := md.waitRatio(pr.K, rho)
	if pr.Q != 0 {
		f *= md.qWaitFactor(pr.Q)
	}
	return f * float64(pr.M) * unitMeanBar(pr.K, rho)
}

// StageMeanWait returns the approximate mean wait at the given stage
// (1-based). Stage 1 is the exact formula; for unit-size messages stages
// approach w∞ geometrically (equation (12)); for m ≥ 2 the paper uses w∞
// for every stage after the first.
func (md Model) StageMeanWait(pr Params, stage int) float64 {
	if stage < 1 {
		panic(fmt.Sprintf("stages: stage %d out of range", stage))
	}
	if stage == 1 {
		return firstStageMean(pr)
	}
	if pr.M == 1 {
		w1 := firstStageMean(pr)
		winf := md.LimitMeanWait(pr)
		return w1 + (winf-w1)*(1-math.Pow(md.Alpha, float64(stage-1)))
	}
	return md.LimitMeanWait(pr)
}

// LimitVarWait returns v∞, the approximate per-stage wait variance deep in
// the network (equations (13) and (16) reconstructions).
func (md Model) LimitVarWait(pr Params) float64 {
	rho := pr.Rho()
	kk := float64(pr.K)
	if pr.M == 1 {
		f := 1 + (md.VarC1*pr.P+md.VarC2*pr.P*pr.P)/kk
		if pr.Q != 0 {
			f *= md.qVarFactor(pr.Q)
		}
		return f * firstStageVar(pr)
	}
	f := md.mVarFactor(pr.K, rho)
	if pr.Q != 0 {
		f *= md.qVarFactor(pr.Q)
	}
	return f * float64(pr.M) * float64(pr.M) * unitVarBar(pr.K, rho)
}

// mVarFactor is the m ≥ 2 deep-stage variance ratio v∞/(m²·v̄₁(ρ)).
func (md Model) mVarFactor(k int, rho float64) float64 {
	return md.VarM0 + md.VarMSlope*rho + (md.VarMC1*rho+md.VarMC2*rho*rho)/float64(k)
}

// StageVarWait returns the approximate wait variance at the given stage
// (equation (14) for unit sizes; exact at stage 1; v∞ beyond stage 1 for
// m ≥ 2).
func (md Model) StageVarWait(pr Params, stage int) float64 {
	if stage < 1 {
		panic(fmt.Sprintf("stages: stage %d out of range", stage))
	}
	if stage == 1 {
		return firstStageVar(pr)
	}
	if pr.M == 1 {
		v1 := firstStageVar(pr)
		vinf := md.LimitVarWait(pr)
		return v1 + (vinf-v1)*(1-math.Pow(md.Alpha, float64(stage-1)))
	}
	return md.LimitVarWait(pr)
}

// MultiSizeLimitMeanWait implements Section IV-C: for a mixture of
// constant sizes, approximate the later stages by the average size m̄ and
// correct by the stage-1 ratio between the exact multi-size wait and the
// exact average-size wait (equation (18)).
func (md Model) MultiSizeLimitMeanWait(k int, p float64, sizes []int, probs []float64) float64 {
	mbar := 0.0
	for i, sz := range sizes {
		mbar += float64(sz) * probs[i]
	}
	rho := mbar * p
	base := md.waitRatio(k, rho) * mbar * unitMeanBar(k, rho)
	exactMulti := core.MultiSizeMeanWait(k, k, p, sizes, probs)
	exactAvg := core.GeneralMeanWait(p, p*p*(1-1/float64(k)), mbar, mbar*(mbar-1))
	if exactAvg == 0 {
		return base
	}
	return base * exactMulti / exactAvg
}

// MultiSizeLimitVarWait is the analogous variance approximation: the m ≥ 2
// limit variance at the average size, corrected by the stage-1 exact
// variance ratio.
func (md Model) MultiSizeLimitVarWait(k int, p float64, sizes []int, probs []float64) float64 {
	var mbar, u2, u3 float64
	for i, sz := range sizes {
		mi := float64(sz)
		mbar += mi * probs[i]
		u2 += mi * (mi - 1) * probs[i]
		u3 += mi * (mi - 1) * (mi - 2) * probs[i]
	}
	rho := mbar * p
	kk := float64(k)
	base := md.mVarFactor(k, rho) * mbar * mbar * unitVarBar(k, rho)
	r2 := p * p * (1 - 1/kk)
	r3 := p * p * p * (1 - 1/kk) * (1 - 2/kk)
	exactMulti := core.GeneralVarWait(p, r2, r3, mbar, u2, u3)
	exactAvg := core.GeneralVarWait(p, r2, r3, mbar, mbar*(mbar-1), mbar*(mbar-1)*(mbar-2))
	if exactAvg == 0 {
		return base
	}
	return base * exactMulti / exactAvg
}

// RatioOfLimits returns r(p) = w∞/w₁ under the model, the quantity the
// paper interpolates.
func (md Model) RatioOfLimits(pr Params) float64 {
	w1 := firstStageMean(pr)
	if w1 == 0 {
		return 1
	}
	return md.LimitMeanWait(pr) / w1
}

// FitLinear solves r(p*) = 1 + a·p* for a from one measured ratio — the
// paper's calibration of the wait factor from a simulation at p* = 0.5.
func FitLinear(pStar, measuredRatio float64) (a float64, err error) {
	if pStar <= 0 {
		return 0, fmt.Errorf("stages: calibration point p = %g must be positive", pStar)
	}
	return (measuredRatio - 1) / pStar, nil
}

// FitQuadratic solves 1 + c1·x + c2·x² through two measured ratios — the
// paper's calibration of the variance factor (one extra power of p).
func FitQuadratic(x1, ratio1, x2, ratio2 float64) (c1, c2 float64, err error) {
	det := x1*x2*x2 - x2*x1*x1
	if math.Abs(det) < 1e-12 {
		return 0, 0, fmt.Errorf("stages: degenerate calibration points %g, %g", x1, x2)
	}
	b1, b2 := ratio1-1, ratio2-1
	c1 = (b1*x2*x2 - b2*x1*x1) / det
	c2 = (b2*x1 - b1*x2) / det
	return c1, c2, nil
}

// HeavyTrafficProbe returns (1-p)·w∞(p) under the model, whose limit as
// p → 1 the paper conjectures exists (Conclusion). Sweeping it toward
// p = 1 is the heavy-traffic ablation in the benchmarks.
func (md Model) HeavyTrafficProbe(pr Params) float64 {
	return (1 - pr.Rho()) * md.LimitMeanWait(pr)
}

// LightTrafficMD1Mean returns the M/D/1-based light-traffic limit the
// paper uses to anchor the interior stages for m ≥ 2 (Section IV-B):
// in scaled time the interior queues see arrival rate (1-1/k)ρ, so
// w ≈ m·ρ(1-1/k)/(2(1-ρ(1-1/k))) … evaluated to first order the paper
// keeps w/(mρ) → (1-1/k)/2.
func LightTrafficMD1Mean(k, m int, rho float64) float64 {
	eff := rho * (1 - 1/float64(k))
	return float64(m) * core.MD1MeanWait(eff)
}
