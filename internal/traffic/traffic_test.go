package traffic

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"banyan/internal/dist"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestUniformMoments(t *testing.T) {
	for _, c := range []struct {
		k, s int
		p    float64
	}{{2, 2, 0.5}, {4, 4, 0.3}, {8, 8, 0.9}, {4, 8, 0.6}, {2, 2, 0}} {
		a, err := Uniform(c.k, c.s, c.p)
		if err != nil {
			t.Fatal(err)
		}
		lambda := float64(c.k) * c.p / float64(c.s)
		kk := float64(c.k)
		almost(t, a.Rate(), lambda, 1e-12, "rate")
		almost(t, a.FactorialMoment(2), lambda*lambda*(1-1/kk), 1e-12, "R''(1)")
		almost(t, a.FactorialMoment(3), lambda*lambda*lambda*(1-1/kk)*(1-2/kk), 1e-12, "R'''(1)")
	}
}

func TestUniformValidation(t *testing.T) {
	if _, err := Uniform(0, 2, 0.5); err == nil {
		t.Fatal("expected k error")
	}
	if _, err := Uniform(2, 0, 0.5); err == nil {
		t.Fatal("expected s error")
	}
	if _, err := Uniform(2, 2, 1.5); err == nil {
		t.Fatal("expected p error")
	}
}

func TestBulkMoments(t *testing.T) {
	k, s, p, b := 2, 2, 0.2, 3
	a, err := Bulk(k, s, p, b)
	if err != nil {
		t.Fatal(err)
	}
	lambda := float64(b*k) * p / float64(s)
	almost(t, a.Rate(), lambda, 1e-12, "bulk rate")
	// Paper form: R''(1) = λ(b-1) + λ²(1-1/k).
	almost(t, a.FactorialMoment(2), lambda*(float64(b)-1)+lambda*lambda*0.5, 1e-12, "bulk R''(1)")
	// Support only at multiples of b.
	pm := a.PMF()
	for j := 0; j < pm.Support(); j++ {
		if j%b != 0 && pm.Prob(j) != 0 {
			t.Fatalf("bulk mass at non-multiple %d", j)
		}
	}
	// b=1 degenerates to Uniform.
	a1, _ := Bulk(k, s, p, 1)
	u, _ := Uniform(k, s, p)
	if tv := dist.TotalVariation(a1.PMF(), u.PMF()); tv > 1e-12 {
		t.Fatalf("bulk b=1 != uniform: TV %g", tv)
	}
}

func TestBulkValidation(t *testing.T) {
	if _, err := Bulk(2, 2, 0.5, 0); err == nil {
		t.Fatal("expected batch error")
	}
	if _, err := Bulk(2, 2, -0.1, 2); err == nil {
		t.Fatal("expected p error")
	}
}

func TestNonuniformPaperModel(t *testing.T) {
	k, p, q := 2, 0.5, 0.3
	a, err := Nonuniform(k, p, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, a.Rate(), p, 1e-12, "rate is p (favored + normal)")
	// Paper product form: R''(1) = p²(1-q)²(1-1/k) + 2p²q(1-q).
	want := p*p*(1-q)*(1-q)*0.5 + 2*p*p*q*(1-q)
	almost(t, a.FactorialMoment(2), want, 1e-12, "paper R''(1)")
	// q=0 degenerates to Uniform.
	a0, _ := Nonuniform(k, p, 0, 1)
	u, _ := Uniform(k, k, p)
	if tv := dist.TotalVariation(a0.PMF(), u.PMF()); tv > 1e-12 {
		t.Fatalf("nonuniform q=0 != uniform: TV %g", tv)
	}
}

func TestNonuniformExclusiveModel(t *testing.T) {
	k, p, q := 2, 0.5, 0.3
	a, err := NonuniformExclusive(k, p, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, a.Rate(), p, 1e-12, "exclusive rate is p")
	// R''(1) = 2ac with a = p(q+(1-q)/2), c = p(1-q)/2.
	av := p * (q + (1-q)/2)
	cv := p * (1 - q) / 2
	almost(t, a.FactorialMoment(2), 2*av*cv, 1e-12, "exclusive R''(1)")
	// At most k arrivals per cycle — the exclusivity property.
	if a.PMF().Support() > k+1 {
		t.Fatalf("exclusive law has support %d > k+1", a.PMF().Support())
	}
	// q=1: dedicated port, Bernoulli(p), zero second factorial moment.
	a1, _ := NonuniformExclusive(k, p, 1, 1)
	almost(t, a1.FactorialMoment(2), 0, 1e-12, "q=1 never collides")
	// q=0 degenerates to Uniform.
	a0, _ := NonuniformExclusive(k, p, 0, 1)
	u, _ := Uniform(k, k, p)
	if tv := dist.TotalVariation(a0.PMF(), u.PMF()); tv > 1e-12 {
		t.Fatalf("exclusive q=0 != uniform: TV %g", tv)
	}
}

func TestNonuniformPaperOverstates(t *testing.T) {
	// The paper's product form counts the favorite input twice, so its
	// R''(1) (hence E[w]) must dominate the exclusive law's for q in
	// (0,1).
	for _, q := range []float64{0.1, 0.3, 0.5, 0.9} {
		paper, _ := Nonuniform(2, 0.5, q, 1)
		excl, _ := NonuniformExclusive(2, 0.5, q, 1)
		if paper.FactorialMoment(2) <= excl.FactorialMoment(2) {
			t.Fatalf("q=%g: paper R''=%g not above exclusive %g",
				q, paper.FactorialMoment(2), excl.FactorialMoment(2))
		}
	}
}

func TestHotModuleLaw(t *testing.T) {
	k, p, h := 2, 0.4, 0.02
	a, err := HotModule(k, p, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := p * (h + (1-h)/float64(k))
	almost(t, a.Rate(), float64(k)*want, 1e-12, "hot-path port rate")
	// h=0 degenerates to uniform.
	a0, err := HotModule(k, p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := Uniform(k, k, p)
	if tv := dist.TotalVariation(a0.PMF(), u.PMF()); tv > 1e-12 {
		t.Fatalf("hot h=0 != uniform: TV %g", tv)
	}
	// h=1: every input feeds the hot port, Binomial(k, p).
	a1, err := HotModule(k, p, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tv := dist.TotalVariation(a1.PMF(), dist.Binomial(k, p)); tv > 1e-12 {
		t.Fatalf("hot h=1 law wrong: TV %g", tv)
	}
	// Validation.
	if _, err := HotModule(2, 0.5, -0.1, 1); err == nil {
		t.Fatal("expected h validation")
	}
	if _, err := HotModule(2, 0.5, 0.5, 0); err == nil {
		t.Fatal("expected batch validation")
	}
}

func TestPoissonArrivals(t *testing.T) {
	a, err := Poisson(0.7, 128)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, a.Rate(), 0.7, 1e-9, "poisson rate")
	if _, err := Poisson(-1, 10); err == nil {
		t.Fatal("expected rate error")
	}
}

func TestServiceModels(t *testing.T) {
	u := UnitService()
	almost(t, u.Mean(), 1, 0, "unit mean")
	almost(t, u.FactorialMoment(2), 0, 0, "unit U''")

	c, err := ConstService(5)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, c.Mean(), 5, 0, "const mean")
	almost(t, c.FactorialMoment(2), 20, 0, "const U''")
	almost(t, c.FactorialMoment(3), 60, 0, "const U'''")
	if _, err := ConstService(0); err == nil {
		t.Fatal("expected m error")
	}

	g, err := GeomService(0.25, 4096)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, g.Mean(), 4, 1e-6, "geom mean")
	// U''(1) = 2(1-μ)/μ².
	almost(t, g.FactorialMoment(2), 2*0.75/(0.25*0.25), 1e-3, "geom U''")
	if _, err := GeomService(0, 16); err == nil {
		t.Fatal("expected μ error")
	}
	if _, err := GeomService(1.5, 16); err == nil {
		t.Fatal("expected μ range error")
	}
}

func TestMultiService(t *testing.T) {
	sv, err := MultiService([]SizeMix{{Size: 4, Prob: 0.75}, {Size: 8, Prob: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, sv.Mean(), 5, 1e-12, "multi mean")
	almost(t, sv.FactorialMoment(2), 0.75*12+0.25*56, 1e-12, "multi U''")
	if !strings.Contains(sv.String(), "multi-size") {
		t.Fatalf("description: %s", sv.String())
	}
	if _, err := MultiService(nil); err == nil {
		t.Fatal("expected empty-mix error")
	}
	if _, err := MultiService([]SizeMix{{Size: 0, Prob: 1}}); err == nil {
		t.Fatal("expected size error")
	}
	if _, err := MultiService([]SizeMix{{Size: 1, Prob: 0.5}}); err == nil {
		t.Fatal("expected probability-sum error")
	}
	if _, err := MultiService([]SizeMix{{Size: 1, Prob: -1}, {Size: 2, Prob: 2}}); err == nil {
		t.Fatal("expected negative-probability error")
	}
}

func TestCustomService(t *testing.T) {
	if _, err := CustomService(dist.PointPMF(0)); err == nil {
		t.Fatal("expected zero-service rejection")
	}
	sv, err := CustomService(dist.MustPMF([]float64{0, 0.5, 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	almost(t, sv.Mean(), 1.5, 1e-12, "custom mean")
}

func TestIntensity(t *testing.T) {
	a, _ := Uniform(2, 2, 0.5)
	sv, _ := ConstService(4)
	almost(t, Intensity(a, sv), 2, 1e-12, "intensity")
}

func TestArrivalPGFMatchesPMF(t *testing.T) {
	a, _ := Bulk(4, 4, 0.3, 2)
	s := a.PGF(32)
	pm := a.PMF()
	for j := 0; j < pm.Support(); j++ {
		almost(t, s.Coeff(j), pm.Prob(j), 1e-15, "PGF coefficient")
	}
	almost(t, s.Sum(), 1, 1e-12, "PGF mass")
}

// Property: for all valid (k, p, q), the exclusive law's total rate is p
// and its PMF is a valid distribution.
func TestNonuniformExclusiveQuick(t *testing.T) {
	f := func(kRaw uint8, pRaw, qRaw float64) bool {
		k := int(kRaw%7) + 2
		p := math.Mod(math.Abs(pRaw), 1)
		q := math.Mod(math.Abs(qRaw), 1)
		if math.IsNaN(p) || math.IsNaN(q) {
			return true
		}
		a, err := NonuniformExclusive(k, p, q, 1)
		if err != nil {
			return false
		}
		return math.Abs(a.Rate()-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
