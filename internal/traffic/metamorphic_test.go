package traffic

import (
	"math"
	"testing"

	"banyan/internal/dist"
)

// samePMF asserts two arrival laws are the same distribution to floating
// rounding: identical effective support and per-entry agreement at tol.
func samePMF(t *testing.T, got, want dist.PMF, tol float64, msg string) {
	t.Helper()
	n := got.Support()
	if w := want.Support(); w > n {
		n = w
	}
	for j := 0; j < n; j++ {
		if d := math.Abs(got.Prob(j) - want.Prob(j)); d > tol {
			t.Fatalf("%s: P(%d) differs by %g (got %g, want %g)",
				msg, j, d, got.Prob(j), want.Prob(j))
		}
	}
}

// TestNullParameterReductions: every structured law collapses to the
// Section III-A-1 uniform model when its distinguishing parameter is
// switched off — q = 0 favoritism, h = 0 hot traffic, b = 1 batches. The
// reductions are algebraic identities of the PGFs, so the PMFs must agree
// to rounding error, not statistically.
func TestNullParameterReductions(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8} {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			for _, b := range []int{1, 2, 3} {
				base, err := Bulk(k, k, p, b)
				if err != nil {
					t.Fatal(err)
				}
				nu, err := Nonuniform(k, p, 0, b)
				if err != nil {
					t.Fatal(err)
				}
				samePMF(t, nu.PMF(), base.PMF(), 1e-12, "Nonuniform q=0")
				nx, err := NonuniformExclusive(k, p, 0, b)
				if err != nil {
					t.Fatal(err)
				}
				samePMF(t, nx.PMF(), base.PMF(), 1e-12, "NonuniformExclusive q=0")
				hm, err := HotModule(k, p, 0, b)
				if err != nil {
					t.Fatal(err)
				}
				samePMF(t, hm.PMF(), base.PMF(), 1e-12, "HotModule h=0")
			}
			// b = 1 bulk is plain uniform traffic.
			uni, err := Uniform(k, k, p)
			if err != nil {
				t.Fatal(err)
			}
			b1, err := Bulk(k, k, p, 1)
			if err != nil {
				t.Fatal(err)
			}
			samePMF(t, b1.PMF(), uni.PMF(), 1e-12, "Bulk b=1")
		}
	}
}

// TestFavoritismVanishesAtUniformRate: when each input routes to its
// favorite with exactly the uniform probability q = 1/k and sprays the
// remaining mass evenly over the other k-1 ports, the per-port law is
// indistinguishable from uniform traffic:
//
//	Bernoulli(p·q) ⊗ Binomial(k-1, p(1-q)/(k-1)) = Binomial(k, p/k).
//
// This is the renormalized favorite-output law (favoritism measured as
// extra mass on one port), and the identity pins the binomial
// decomposition the Section III-A-3 analysis rests on.
func TestFavoritismVanishesAtUniformRate(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8} {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			q := 1 / float64(k)
			fav := dist.MustPMF([]float64{1 - p*q, p * q})
			rest := dist.Binomial(k-1, p*(1-q)/float64(k-1))
			got := dist.Convolve(fav, rest)
			samePMF(t, got, dist.Binomial(k, p/float64(k)), 1e-12,
				"renormalized favorite at q=1/k")
		}
	}
}

// TestBulkScalingMoments: replacing unit messages by bulks of b scales
// the arrival rate by exactly b and the r-th factorial moment pattern
// accordingly — λ(Bulk b) = b·λ(Uniform) and the batch count law is
// preserved under the b-fold dilation (mass only on multiples of b).
func TestBulkScalingMoments(t *testing.T) {
	for _, k := range []int{2, 4} {
		for _, b := range []int{2, 3, 5} {
			p := 0.4
			uni, err := Uniform(k, k, p)
			if err != nil {
				t.Fatal(err)
			}
			blk, err := Bulk(k, k, p, b)
			if err != nil {
				t.Fatal(err)
			}
			almost(t, blk.Rate(), float64(b)*uni.Rate(), 1e-12, "bulk rate scaling")
			pm := blk.PMF()
			for j := 0; j < pm.Support(); j++ {
				if j%b != 0 && pm.Prob(j) != 0 {
					t.Fatalf("bulk b=%d has mass %g at non-multiple %d", b, pm.Prob(j), j)
				}
				if j%b == 0 {
					almost(t, pm.Prob(j), uni.PMF().Prob(j/b), 1e-12, "bulk dilation")
				}
			}
		}
	}
}

// TestSamplerExactOnLaws reconstructs each law's PMF from its alias table
// by brute-force integration over a fine grid of (u1, u2) pairs — every
// cell of the alias table contributes prob[j]/n to its own value and
// (1-prob[j])/n to its alias, so a uniform grid over u2 within each
// column recovers the distribution to grid resolution. This pins the
// sampler the kernel's batch-arrival path draws from to the analytic law
// it claims to represent, with no Monte-Carlo noise.
func TestSamplerExactOnLaws(t *testing.T) {
	laws := []Arrivals{}
	if a, err := Uniform(4, 4, 0.6); err == nil {
		laws = append(laws, a)
	}
	if a, err := Nonuniform(3, 0.5, 0.3, 1); err == nil {
		laws = append(laws, a)
	}
	if a, err := HotModule(2, 0.7, 0.2, 2); err == nil {
		laws = append(laws, a)
	}
	for _, law := range laws {
		pm := law.PMF()
		s := law.Sampler()
		n := pm.Support()
		const grid = 4096
		recon := make([]float64, n)
		for col := 0; col < n; col++ {
			u1 := (float64(col) + 0.5) / float64(n)
			for g := 0; g < grid; g++ {
				u2 := (float64(g) + 0.5) / grid
				recon[s.Sample(u1, u2)] += 1 / (float64(n) * grid)
			}
		}
		for j := 0; j < n; j++ {
			if d := math.Abs(recon[j] - pm.Prob(j)); d > 1.0/grid {
				t.Fatalf("%s: sampler mass at %d off by %g", law, j, d)
			}
		}
	}
}

// TestSamplerDegenerateConstant: a one-point service law yields a sampler
// that returns the point for every (u1, u2) — the case config.go detects
// to skip per-message service draws entirely.
func TestSamplerDegenerateConstant(t *testing.T) {
	svc, err := ConstService(7)
	if err != nil {
		t.Fatal(err)
	}
	s := svc.Sampler()
	for _, u1 := range []float64{0, 0.25, 0.5, 0.999999} {
		for _, u2 := range []float64{0, 0.5, 0.999999} {
			if got := s.Sample(u1, u2); got != 7 {
				t.Fatalf("constant sampler returned %d at (%g,%g)", got, u1, u2)
			}
		}
	}
}
