// Package traffic defines the arrival and service models of the paper's
// Sections II–III, in the exact form the analysis consumes: the law of the
// number of messages arriving to one output queue per clock cycle (the PGF
// R(z)) and the law of a message's service time in cycles (the PGF U(z)).
//
// Every model exposes an exact PMF, so factorial moments R”(1), R”'(1),
// U”(1), U”'(1) — the only inputs to the paper's moment formulas — are
// computed from first principles rather than transcribed, and the full
// transform machinery in internal/core can extract complete waiting-time
// distributions.
package traffic

import (
	"fmt"
	"math"

	"banyan/internal/dist"
)

// Arrivals is the per-cycle message-arrival law at a single output queue
// of a first-stage switch.
type Arrivals struct {
	pmf  dist.PMF
	desc string
}

// PMF returns the arrival-count distribution.
func (a Arrivals) PMF() dist.PMF { return a.pmf }

// PGF returns R(z) truncated to n terms.
func (a Arrivals) PGF(n int) dist.Series { return a.pmf.PGF(n) }

// Rate returns λ = R'(1), the mean number of messages per cycle.
func (a Arrivals) Rate() float64 { return a.pmf.Mean() }

// FactorialMoment returns R^{(r)}(1) = E[A(A-1)…(A-r+1)].
func (a Arrivals) FactorialMoment(r int) float64 { return a.pmf.FactorialMoment(r) }

// String describes the model.
func (a Arrivals) String() string { return a.desc }

// Sampler returns an alias-method sampler over the batch-arrival law:
// O(1) draws from R, the bridge between the analytic arrival PGFs and
// the simulators' per-cycle batch generation. Each call builds a fresh
// table; callers on a hot path should build once and reuse.
func (a Arrivals) Sampler() *dist.Sampler { return dist.NewSampler(a.pmf) }

// CustomArrivals wraps an arbitrary arrival-count PMF.
func CustomArrivals(p dist.PMF) Arrivals {
	return Arrivals{pmf: p, desc: fmt.Sprintf("custom arrivals (support %d)", p.Support())}
}

// Uniform returns the Section III-A-1 model: each of k input ports of a
// k×s switch receives a message with probability p per cycle, and each
// message picks each of the s output ports with equal probability, so the
// per-port count is Binomial(k, p/s) and R(z) = (1 - p/s + p z/s)^k.
func Uniform(k, s int, p float64) (Arrivals, error) {
	if err := checkSwitch(k, s); err != nil {
		return Arrivals{}, err
	}
	if p < 0 || p > 1 {
		return Arrivals{}, fmt.Errorf("traffic: arrival probability p = %g out of [0,1]", p)
	}
	return Arrivals{
		pmf:  dist.Binomial(k, p/float64(s)),
		desc: fmt.Sprintf("uniform traffic k=%d s=%d p=%g", k, s, p),
	}, nil
}

// Bulk returns the Section III-A-2 model: arrivals are batches of exactly
// b unit messages (a b-packet message arriving in one bulk). The number of
// batches per port per cycle is Binomial(k, p/s); each batch contributes b
// messages, so R(z) = (1 - p/s + p z^b/s)^k and λ = bpk/s.
func Bulk(k, s int, p float64, b int) (Arrivals, error) {
	if err := checkSwitch(k, s); err != nil {
		return Arrivals{}, err
	}
	if p < 0 || p > 1 {
		return Arrivals{}, fmt.Errorf("traffic: arrival probability p = %g out of [0,1]", p)
	}
	if b < 1 {
		return Arrivals{}, fmt.Errorf("traffic: batch size b = %d must be at least 1", b)
	}
	batches := dist.Binomial(k, p/float64(s))
	probs := make([]float64, (batches.Support()-1)*b+1)
	for j := 0; j < batches.Support(); j++ {
		probs[j*b] = batches.Prob(j)
	}
	pm, err := dist.NewPMF(probs)
	if err != nil {
		return Arrivals{}, err
	}
	return Arrivals{
		pmf:  pm,
		desc: fmt.Sprintf("bulk traffic k=%d s=%d p=%g b=%d", k, s, p, b),
	}, nil
}

// Nonuniform returns the Section III-A-3 model with k = s: each input has
// a distinct favorite output. An input sends an arriving batch (of b
// messages) to its favorite with probability q and to each of the k ports
// (including the favorite) with probability (1-q)/k otherwise. The count
// at a port is the independent sum of the favored stream
// (Bernoulli(p·q) batches from its dedicated input) and the normal stream
// (Binomial(k, p(1-q)/k) batches), so R(z) is the product of the two PGFs,
// exactly as in the paper.
func Nonuniform(k int, p, q float64, b int) (Arrivals, error) {
	if err := checkSwitch(k, k); err != nil {
		return Arrivals{}, err
	}
	if p < 0 || p > 1 {
		return Arrivals{}, fmt.Errorf("traffic: arrival probability p = %g out of [0,1]", p)
	}
	if q < 0 || q > 1 {
		return Arrivals{}, fmt.Errorf("traffic: favorite-output probability q = %g out of [0,1]", q)
	}
	if b < 1 {
		return Arrivals{}, fmt.Errorf("traffic: batch size b = %d must be at least 1", b)
	}
	normal := dist.Binomial(k, p*(1-q)/float64(k))
	favored := dist.MustPMF([]float64{1 - p*q, p * q})
	counts := dist.Convolve(normal, favored)
	probs := make([]float64, (counts.Support()-1)*b+1)
	for j := 0; j < counts.Support(); j++ {
		probs[j*b] = counts.Prob(j)
	}
	pm, err := dist.NewPMF(probs)
	if err != nil {
		return Arrivals{}, err
	}
	return Arrivals{
		pmf:  pm,
		desc: fmt.Sprintf("nonuniform traffic k=%d p=%g q=%g b=%d", k, p, q, b),
	}, nil
}

// NonuniformExclusive returns the physically exact favorite-output law of
// a k×k switch in which each input emits at most one batch per cycle: the
// port that is input j's favorite receives a batch from j with probability
// a = p(q + (1-q)/k) (favored or normally routed there) and a batch from
// each of the other k-1 inputs with probability c = p(1-q)/k, so
// R(z) = (1-a+a·z^b)(1-c+c·z^b)^{k-1}.
//
// The paper's Section III-A-3 product form (see Nonuniform) instead
// multiplies an independent Bernoulli(pq) favored stream into the full
// Binomial normal stream, which double-counts the favorite input's cycle —
// an idealization that overstates first-stage queueing slightly (by ~18%
// in E[w] at k=2, p=0.5, q=0.1). The simulator realizes the exclusive
// law; both are provided so the difference can be measured.
func NonuniformExclusive(k int, p, q float64, b int) (Arrivals, error) {
	if err := checkSwitch(k, k); err != nil {
		return Arrivals{}, err
	}
	if p < 0 || p > 1 {
		return Arrivals{}, fmt.Errorf("traffic: arrival probability p = %g out of [0,1]", p)
	}
	if q < 0 || q > 1 {
		return Arrivals{}, fmt.Errorf("traffic: favorite-output probability q = %g out of [0,1]", q)
	}
	if b < 1 {
		return Arrivals{}, fmt.Errorf("traffic: batch size b = %d must be at least 1", b)
	}
	a := p * (q + (1-q)/float64(k))
	c := p * (1 - q) / float64(k)
	counts := dist.Convolve(dist.MustPMF([]float64{1 - a, a}), dist.Binomial(k-1, c))
	probs := make([]float64, (counts.Support()-1)*b+1)
	for j := 0; j < counts.Support(); j++ {
		probs[j*b] = counts.Prob(j)
	}
	pm, err := dist.NewPMF(probs)
	if err != nil {
		return Arrivals{}, err
	}
	return Arrivals{
		pmf:  pm,
		desc: fmt.Sprintf("nonuniform traffic (exclusive) k=%d p=%g q=%g b=%d", k, p, q, b),
	}, nil
}

// HotModule returns the first-stage arrival law at an output port on the
// path to a single shared hot memory module: every input addresses the
// hot module with probability h and sprays uniformly otherwise, so each
// of the k inputs of a first-stage switch feeds the hot-path port with
// probability p(h + (1-h)/k) per cycle — Binomial(k, p(h+(1-h)/k)), with
// batches of b. (This is the "hot spot" of the RP3 literature, distinct
// from the paper's favorite-output model where every input has its own
// favorite; deeper stages aggregate hot traffic geometrically and
// saturate — tree saturation — which the simulator exhibits.)
func HotModule(k int, p, h float64, b int) (Arrivals, error) {
	if err := checkSwitch(k, k); err != nil {
		return Arrivals{}, err
	}
	if p < 0 || p > 1 {
		return Arrivals{}, fmt.Errorf("traffic: arrival probability p = %g out of [0,1]", p)
	}
	if h < 0 || h > 1 {
		return Arrivals{}, fmt.Errorf("traffic: hot-module probability h = %g out of [0,1]", h)
	}
	if b < 1 {
		return Arrivals{}, fmt.Errorf("traffic: batch size b = %d must be at least 1", b)
	}
	counts := dist.Binomial(k, p*(h+(1-h)/float64(k)))
	probs := make([]float64, (counts.Support()-1)*b+1)
	for j := 0; j < counts.Support(); j++ {
		probs[j*b] = counts.Prob(j)
	}
	pm, err := dist.NewPMF(probs)
	if err != nil {
		return Arrivals{}, err
	}
	return Arrivals{
		pmf:  pm,
		desc: fmt.Sprintf("hot-module traffic k=%d p=%g h=%g b=%d", k, p, h, b),
	}, nil
}

// Poisson returns a Poisson(λ) arrival law truncated to nTrunc terms. It
// is the continuous-time limit used by the M/M/1 and M/D/1 consistency
// checks of Sections III-C and IV-B.
func Poisson(lambda float64, nTrunc int) (Arrivals, error) {
	if lambda < 0 {
		return Arrivals{}, fmt.Errorf("traffic: Poisson rate %g must be nonnegative", lambda)
	}
	return Arrivals{
		pmf:  dist.PoissonPMF(lambda, nTrunc),
		desc: fmt.Sprintf("Poisson arrivals λ=%g", lambda),
	}, nil
}

func checkSwitch(k, s int) error {
	if k < 1 {
		return fmt.Errorf("traffic: switch inputs k = %d must be at least 1", k)
	}
	if s < 1 {
		return fmt.Errorf("traffic: switch outputs s = %d must be at least 1", s)
	}
	return nil
}

// Service is the law of a message's service time (cycles needed to forward
// it through one switch stage). Service times are at least one cycle.
type Service struct {
	pmf  dist.PMF
	desc string
}

// PMF returns the service-time distribution.
func (sv Service) PMF() dist.PMF { return sv.pmf }

// PGF returns U(z) truncated to n terms.
func (sv Service) PGF(n int) dist.Series { return sv.pmf.PGF(n) }

// Mean returns m = U'(1).
func (sv Service) Mean() float64 { return sv.pmf.Mean() }

// FactorialMoment returns U^{(r)}(1).
func (sv Service) FactorialMoment(r int) float64 { return sv.pmf.FactorialMoment(r) }

// String describes the model.
func (sv Service) String() string { return sv.desc }

// Sampler returns an alias-method sampler over the service-time law,
// the table the simulators draw from when resampling per-stage service.
// Each call builds a fresh table; build once and reuse on hot paths.
func (sv Service) Sampler() *dist.Sampler { return dist.NewSampler(sv.pmf) }

// validateService enforces service times ≥ 1 (synchronous switches forward
// at most one packet per cycle, so zero service is meaningless and would
// also break the transform assembly, which divides by 1 - U(z)).
func validateService(p dist.PMF, desc string) (Service, error) {
	if p.Prob(0) != 0 {
		return Service{}, fmt.Errorf("traffic: %s assigns probability %g to zero service time", desc, p.Prob(0))
	}
	return Service{pmf: p, desc: desc}, nil
}

// UnitService returns the deterministic one-cycle service of Section
// III-A (U(z) = z).
func UnitService() Service {
	return Service{pmf: dist.PointPMF(1), desc: "unit service"}
}

// ConstService returns the deterministic m-cycle service of Section
// III-D-1 (U(z) = z^m): a message of m packets forwarded on consecutive
// cycles.
func ConstService(m int) (Service, error) {
	if m < 1 {
		return Service{}, fmt.Errorf("traffic: constant service time m = %d must be at least 1", m)
	}
	return Service{pmf: dist.PointPMF(m), desc: fmt.Sprintf("constant service m=%d", m)}, nil
}

// SizeMix is one component of a multi-size service distribution.
type SizeMix struct {
	Size int     // service time m_i in cycles
	Prob float64 // probability g_i
}

// MultiService returns the Section III-D-2 model: service time m_i with
// probability g_i (e.g. short read requests mixed with long writes).
func MultiService(mix []SizeMix) (Service, error) {
	if len(mix) == 0 {
		return Service{}, fmt.Errorf("traffic: empty service mix")
	}
	maxSize := 0
	sum := 0.0
	for _, c := range mix {
		if c.Size < 1 {
			return Service{}, fmt.Errorf("traffic: service size %d must be at least 1", c.Size)
		}
		if c.Prob < 0 {
			return Service{}, fmt.Errorf("traffic: negative mix probability %g", c.Prob)
		}
		if c.Size > maxSize {
			maxSize = c.Size
		}
		sum += c.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		return Service{}, fmt.Errorf("traffic: service mix probabilities sum to %g, want 1", sum)
	}
	probs := make([]float64, maxSize+1)
	for _, c := range mix {
		probs[c.Size] += c.Prob
	}
	pm, err := dist.NewPMF(probs)
	if err != nil {
		return Service{}, err
	}
	return validateService(pm, fmt.Sprintf("multi-size service (%d sizes)", len(mix)))
}

// GeomService returns the Section III-B model: service geometrically
// distributed on {1,2,…} with parameter μ (mean 1/μ), truncated at nTrunc
// with the tail folded into the last value.
func GeomService(mu float64, nTrunc int) (Service, error) {
	if mu <= 0 || mu > 1 {
		return Service{}, fmt.Errorf("traffic: geometric service parameter μ = %g out of (0,1]", mu)
	}
	return validateService(dist.GeometricPMF(mu, nTrunc), fmt.Sprintf("geometric service μ=%g", mu))
}

// CustomService wraps an arbitrary service-time PMF (must have no mass at
// zero).
func CustomService(p dist.PMF) (Service, error) {
	return validateService(p, fmt.Sprintf("custom service (support %d)", p.Support()))
}

// Intensity returns the traffic intensity ρ = m·λ of an arrival/service
// pair; the queue is stable iff ρ < 1.
func Intensity(a Arrivals, sv Service) float64 {
	return a.Rate() * sv.Mean()
}
