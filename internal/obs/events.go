package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event kinds emitted by the sweep runner, one per point lifecycle
// transition.
const (
	EventPointStarted   = "point_started"   // first replication picked up by a worker
	EventPointRetried   = "point_retried"   // a replication failed and is being retried
	EventPointTruncated = "point_truncated" // a replication stopped early (guard, budget, cancel)
	EventPointJournaled = "point_journaled" // point appended to the checkpoint journal
	EventPointDone      = "point_done"      // point completed cleanly
	EventPointFailed    = "point_failed"    // point ended with a terminal error
	EventPointCached    = "point_cached"    // served from the cross-batch cache
	EventPointResumed   = "point_resumed"   // served from the checkpoint journal
	EventPointAliased   = "point_aliased"   // in-batch duplicate of an earlier point
	EventPointStopped   = "point_stopped"   // adaptive point met its CI target before the replication cap
	EventDrift          = "drift"           // empirical waits diverged from the analytic model

	// Fault-tolerance events (chaos runs and supervised degradation).
	EventFaultInjected = "fault_injected" // a deterministic injection point fired
	EventWatchdogFired = "watchdog_fired" // the watchdog cancelled a stalled replication
	EventPointDegraded = "point_degraded" // a lane group failed and reran as scalar replications
)

// StageQuantiles is a compact per-stage waiting-time digest attached to
// point lifecycle events when the runner collects waiting-time
// histograms: sample count, mean, and tail quantiles in cycles.
type StageQuantiles struct {
	Stage int     `json:"stage"` // 1-based; 0 means total end-to-end wait
	N     int64   `json:"n"`
	Mean  float64 `json:"mean"`
	P50   int     `json:"p50"`
	P90   int     `json:"p90"`
	P99   int     `json:"p99"`
	P999  int     `json:"p999"`
}

// Event is one structured observability record. Fields that do not
// apply to a given kind are zero and omitted from the JSON encoding.
type Event struct {
	Time     time.Time `json:"time"`
	Event    string    `json:"event"`
	Label    string    `json:"label,omitempty"`
	Key      string    `json:"key,omitempty"` // canonical config hash, hex
	Seed     uint64    `json:"seed,omitempty"`
	Engine   string    `json:"engine,omitempty"`
	Rep      int       `json:"rep,omitempty"`
	Attempt  int       `json:"attempt,omitempty"`
	WallMS   float64   `json:"wall_ms,omitempty"`
	Cycles   int64     `json:"cycles,omitempty"`
	Messages int64     `json:"messages,omitempty"`
	Dropped  int64     `json:"dropped,omitempty"`
	Err      string    `json:"err,omitempty"`
	Fault    string    `json:"fault,omitempty"`  // fault class (EventFaultInjected)
	Record   int       `json:"record,omitempty"` // journal record ordinal, 1-based (journal faults)

	// Drift-monitor fields (EventDrift) and histogram digests attached
	// to point completion when waiting-time histograms are collected.
	Stage     int              `json:"stage,omitempty"`  // offending stage, 1-based
	Switch    int              `json:"switch,omitempty"` // offending switch, 1-based (per-switch drift on graph points)
	KS        float64          `json:"ks,omitempty"`
	Threshold float64          `json:"threshold,omitempty"`
	Waits     []StageQuantiles `json:"waits,omitempty"`

	// HalfWidth is the confidence-interval half-width an adaptive point
	// stopped at (EventPointStopped; Rep carries the replication count).
	HalfWidth float64 `json:"half_width,omitempty"`

	// Cost is the point's resource-cost digest, attached to completion
	// events when the runner attributes cost (see sweep.PointCost).
	Cost *CostDigest `json:"cost,omitempty"`
}

// CostDigest is a compact per-point resource accounting attached to
// point completion events: where the wall time, CPU time and
// allocations went, and how much simulation was bought with them.
type CostDigest struct {
	WallNS       int64   `json:"wall_ns"`
	CPUNS        int64   `json:"cpu_ns"`
	AllocBytes   int64   `json:"alloc_bytes"`
	AllocObjects int64   `json:"alloc_objects"`
	Cycles       int64   `json:"cycles"`
	Reps         int     `json:"reps"`
	ESS          float64 `json:"ess,omitempty"`
}

// Sink receives events. Emit may be called from any goroutine;
// implementations must be safe for concurrent use and must not block
// on the caller's critical path longer than a buffered write.
type Sink interface {
	Emit(Event)
}

// JSONLSink writes each event as one JSON line. Each line is a single
// Write call, so concurrent emitters never interleave bytes.
type JSONLSink struct {
	// Now replaces time.Now for tests; nil means time.Now.
	Now func() time.Time

	mu sync.Mutex
	w  io.Writer
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit implements Sink. Marshal or write errors are dropped: an
// observability sink must never fail the sweep it observes.
func (s *JSONLSink) Emit(ev Event) {
	if ev.Time.IsZero() {
		if s.Now != nil {
			ev.Time = s.Now()
		} else {
			ev.Time = time.Now()
		}
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Write(line)
}

// RingSink keeps the most recent events in a bounded ring, for serving
// a live tail over HTTP without unbounded memory.
type RingSink struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int64
}

// NewRingSink returns a ring holding the last n events (n < 1 becomes 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]Event, 0, n)}
}

// Emit implements Sink.
func (s *RingSink) Emit(ev Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, ev)
	} else {
		s.buf[s.next] = ev
	}
	s.next = (s.next + 1) % cap(s.buf)
	s.total++
}

// Total returns the number of events ever emitted (including evicted).
func (s *RingSink) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, len(s.buf))
	if len(s.buf) == cap(s.buf) {
		out = append(out, s.buf[s.next:]...)
		out = append(out, s.buf[:s.next]...)
	} else {
		out = append(out, s.buf...)
	}
	return out
}

// WriteJSONL renders the retained events as JSON lines, oldest first.
func (s *RingSink) WriteJSONL(w io.Writer) error {
	for _, ev := range s.Events() {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// MultiSink fans each event out to every sink.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}
