package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// TSDB is a fixed-memory in-process time-series store: it samples every
// read-out of a Registry on a cadence into per-series value rings
// aligned against one shared timestamp ring, and answers windowed,
// downsampled queries. It exists so a scrape (or cmd/sweeptop, or the
// /debug/ts endpoint) can see *history* — throughput over the last two
// minutes, a backlog ramp, a rate collapse — instead of only the
// instant of the scrape.
//
// Memory is bounded by construction: capN timestamps plus capN float64s
// per series, with the series set fixed to the registry's names as of
// each sample tick (a series first seen mid-run pads its past with NaN).
// There is no persistence and no interpolation; queries downsample by
// NaN-aware bucket means.
type TSDB struct {
	// Now replaces time.Now for tests; nil means time.Now.
	Now func() time.Time

	reg  *Registry
	capN int

	mu     sync.Mutex
	times  []int64 // unix milliseconds, ring
	n      int     // number of valid samples (≤ capN)
	head   int     // index of the next write
	series map[string][]float64

	stop chan struct{}
	done chan struct{}
}

// NewTSDB returns a store sampling reg with capacity capN samples per
// series (capN < 2 is raised to 2).
func NewTSDB(reg *Registry, capN int) *TSDB {
	if capN < 2 {
		capN = 2
	}
	return &TSDB{
		reg:    reg,
		capN:   capN,
		times:  make([]int64, capN),
		series: make(map[string][]float64),
	}
}

func (t *TSDB) now() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

// Sample takes one sample of every registry read-out at the current
// time. Safe to call directly (tests, manual cadences) or via Start.
func (t *TSDB) Sample() {
	snap := t.reg.Snapshot()
	ts := t.now().UnixMilli()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.times[t.head] = ts
	for name, v := range snap {
		ring, ok := t.series[name]
		if !ok {
			// New series: its past is unknown, not zero.
			ring = make([]float64, t.capN)
			for i := range ring {
				ring[i] = math.NaN()
			}
			t.series[name] = ring
		}
		ring[t.head] = v
	}
	// Series absent from this snapshot (unregistered names) go stale
	// rather than repeating their last value.
	for name, ring := range t.series {
		if _, ok := snap[name]; !ok {
			ring[t.head] = math.NaN()
		}
	}
	t.head = (t.head + 1) % t.capN
	if t.n < t.capN {
		t.n++
	}
}

// Start launches a background sampler at the given interval; Stop ends
// it. Start on an already started store is a no-op.
func (t *TSDB) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t.mu.Lock()
	if t.stop != nil {
		t.mu.Unlock()
		return
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	stop, done := t.stop, t.done
	t.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.Sample()
			}
		}
	}()
}

// Stop ends the background sampler and waits for it to exit. Stopping a
// never-started (or already stopped) store is a no-op.
func (t *TSDB) Stop() {
	t.mu.Lock()
	stop, done := t.stop, t.done
	t.stop, t.done = nil, nil
	t.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// SeriesNames returns the names sampled so far, sorted.
func (t *TSDB) SeriesNames() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.series))
	for n := range t.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TSPoint is one downsampled query bucket: the bucket's end timestamp
// and the NaN-aware mean of the raw samples that fell in it (NaN when
// the bucket holds no samples).
type TSPoint struct {
	UnixMilli int64
	Value     float64
}

// Query returns up to buckets downsampled points of series name over
// the trailing window (0 = everything retained). Raw samples are
// assigned to equal-width time buckets spanning [newest-window, newest]
// and averaged NaN-aware; empty buckets read NaN so gaps stay visible.
// Returns nil when the series is unknown or no samples fall in the
// window.
func (t *TSDB) Query(name string, window time.Duration, buckets int) []TSPoint {
	if buckets < 1 {
		buckets = 1
	}
	type raw struct {
		ts int64
		v  float64
	}
	t.mu.Lock()
	ring, ok := t.series[name]
	if !ok || t.n == 0 {
		t.mu.Unlock()
		return nil
	}
	samples := make([]raw, 0, t.n)
	// Oldest-first walk of the ring.
	start := (t.head - t.n + t.capN) % t.capN
	for i := 0; i < t.n; i++ {
		j := (start + i) % t.capN
		samples = append(samples, raw{t.times[j], ring[j]})
	}
	t.mu.Unlock()

	newest := samples[len(samples)-1].ts
	oldest := samples[0].ts
	if window > 0 {
		if cut := newest - window.Milliseconds(); cut > oldest {
			oldest = cut
		}
	}
	span := newest - oldest
	if span <= 0 {
		// Single instant: one bucket holding the newest sample.
		last := samples[len(samples)-1]
		return []TSPoint{{UnixMilli: last.ts, Value: last.v}}
	}
	if int64(buckets) > span {
		buckets = int(span)
	}
	sums := make([]float64, buckets)
	counts := make([]int, buckets)
	for _, s := range samples {
		if s.ts < oldest || math.IsNaN(s.v) {
			continue
		}
		b := int((s.ts - oldest) * int64(buckets) / (span + 1))
		sums[b] += s.v
		counts[b]++
	}
	out := make([]TSPoint, buckets)
	for b := range out {
		end := oldest + (int64(b)+1)*span/int64(buckets)
		v := math.NaN()
		if counts[b] > 0 {
			v = sums[b] / float64(counts[b])
		}
		out[b] = TSPoint{UnixMilli: end, Value: v}
	}
	return out
}

// Len returns the number of samples currently retained.
func (t *TSDB) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}
