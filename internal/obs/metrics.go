package obs

import (
	"expvar"
	"fmt"
	"io"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count. The zero value is
// ready to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomically settable level with a high-water mark. The
// zero value is ready to use.
type Gauge struct {
	v  atomic.Int64
	hw atomic.Int64
}

// Set stores the current level and advances the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.max(v)
}

// Add adjusts the level by delta and advances the high-water mark.
func (g *Gauge) Add(delta int64) { g.max(g.v.Add(delta)) }

func (g *Gauge) max(v int64) {
	for {
		cur := g.hw.Load()
		if v <= cur || g.hw.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// High returns the largest level ever observed.
func (g *Gauge) High() int64 { return g.hw.Load() }

// meterWindow is the trailing span, in seconds, a Meter's Rate covers.
const meterWindow = 10

// Meter accumulates a count and reports its rate over a trailing
// window of complete seconds, so the read-out tracks *current*
// throughput instead of averaging over the whole (possibly mostly
// idle) process lifetime. The zero value is ready to use.
type Meter struct {
	// Now replaces time.Now for tests; nil means time.Now.
	Now func() time.Time

	mu    sync.Mutex
	total int64
	// One bucket per second over the window plus the in-progress
	// second, addressed by unix second modulo the ring size.
	buckets [meterWindow + 1]int64
	secs    [meterWindow + 1]int64
	first   int64 // unix second of the first Add; 0 = never
}

func (m *Meter) now() time.Time {
	if m.Now != nil {
		return m.Now()
	}
	return time.Now()
}

// Add records n events at the current time.
func (m *Meter) Add(n int64) {
	sec := m.now().Unix()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.first == 0 {
		m.first = sec
	}
	i := sec % int64(len(m.buckets))
	if m.secs[i] != sec {
		m.secs[i] = sec
		m.buckets[i] = 0
	}
	m.buckets[i] += n
	m.total += n
}

// Total returns the cumulative count.
func (m *Meter) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Rate returns events per second over the trailing window of complete
// seconds (the in-progress second is excluded so a fresh burst does
// not extrapolate). Zero until a full second of history exists.
func (m *Meter) Rate() float64 {
	sec := m.now().Unix()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.first == 0 || sec <= m.first {
		return 0
	}
	span := sec - m.first
	if span > meterWindow {
		span = meterWindow
	}
	var sum int64
	for i := range m.buckets {
		if s := m.secs[i]; s >= sec-span && s < sec {
			sum += m.buckets[i]
		}
	}
	return float64(sum) / float64(span)
}

// MetricKind classifies a registered read-out for exposition formats
// that care (OpenMetrics): a counter is cumulative and monotone, a
// gauge is a level that can go either way. The registry's own text
// format ignores the distinction.
type MetricKind int

const (
	KindGauge MetricKind = iota
	KindCounter
)

// Registry is an ordered set of named metric read-outs. Every metric
// is registered as a func() float64, so counters, gauges, meters and
// derived values (rates, ratios, ETAs) all read out uniformly.
type Registry struct {
	mu    sync.Mutex
	order []string
	vars  map[string]func() float64
	kinds map[string]MetricKind
	help  map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		vars:  make(map[string]func() float64),
		kinds: make(map[string]MetricKind),
		help:  make(map[string]string),
	}
}

// Func registers a named read-out. Re-registering a name replaces it.
// Read-outs default to gauge semantics; Describe upgrades them.
func (r *Registry) Func(name string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.vars[name]; !ok {
		r.order = append(r.order, name)
	}
	r.vars[name] = f
}

// Describe records exposition metadata for a registered (or about to be
// registered) name: its kind and a one-line help string. Names never
// described expose as help-less gauges.
func (r *Registry) Describe(name string, kind MetricKind, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.kinds[name] = kind
	if help != "" {
		r.help[name] = help
	}
}

// Kind returns the described kind of name (KindGauge when never
// described).
func (r *Registry) Kind(name string) MetricKind {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.kinds[name]
}

// HelpFor returns the described help string of name ("" when none).
func (r *Registry) HelpFor(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[name]
}

// Counter creates, registers and returns a counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.Func(name, func() float64 { return float64(c.Load()) })
	r.Describe(name, KindCounter, "")
	return c
}

// Gauge creates and registers a gauge under name (current level) and
// name+".high" (high-water mark).
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.Func(name, func() float64 { return float64(g.Load()) })
	r.Func(name+".high", func() float64 { return float64(g.High()) })
	return g
}

// Meter creates and registers a meter under name (cumulative total)
// and name+".per_sec" (windowed rate).
func (r *Registry) Meter(name string) *Meter {
	m := &Meter{}
	r.Func(name, func() float64 { return float64(m.Total()) })
	r.Describe(name, KindCounter, "")
	r.Func(name+".per_sec", m.Rate)
	return m
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// Snapshot evaluates every registered read-out.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	vars := make([]func() float64, len(names))
	for i, n := range names {
		vars[i] = r.vars[n]
	}
	r.mu.Unlock()
	out := make(map[string]float64, len(names))
	for i, n := range names {
		out[n] = vars[i]()
	}
	return out
}

// WriteText renders the registry as sorted "name value" lines — the
// /metrics wire format.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %v\n", n, snap[n]); err != nil {
			return err
		}
	}
	return nil
}

// RegisterRuntimeMetrics exposes a small set of process-level read-outs
// under the proc.* namespace — goroutines, live heap, cumulative
// allocations, GC cycles and user CPU seconds — so any binary serving a
// registry (an engine, a runner, a future shard worker) is scrapeable as
// a process, not just as a simulation. Each read-out samples
// runtime/metrics on demand; the calls are cheap and never perturb
// simulated numbers.
func RegisterRuntimeMetrics(reg *Registry) {
	read := func(key string) func() float64 {
		return func() float64 {
			s := []metrics.Sample{{Name: key}}
			metrics.Read(s)
			switch s[0].Value.Kind() {
			case metrics.KindUint64:
				return float64(s[0].Value.Uint64())
			case metrics.KindFloat64:
				return s[0].Value.Float64()
			}
			return 0
		}
	}
	for _, m := range []struct {
		name, key, help string
		kind            MetricKind
	}{
		{"proc.goroutines", "/sched/goroutines:goroutines", "live goroutines", KindGauge},
		{"proc.heap_bytes", "/memory/classes/heap/objects:bytes", "bytes of live heap objects", KindGauge},
		{"proc.alloc_bytes", "/gc/heap/allocs:bytes", "cumulative bytes allocated on the heap", KindCounter},
		{"proc.gc_cycles", "/gc/cycles/total:gc-cycles", "completed GC cycles", KindCounter},
		{"proc.cpu_user_seconds", "/cpu/classes/user:cpu-seconds", "estimated user-goroutine CPU seconds", KindCounter},
	} {
		reg.Func(m.name, read(m.key))
		reg.Describe(m.name, m.kind, m.help)
	}
}

// expvarHolders lets PublishExpvar be called more than once per process
// (expvar.Publish panics on duplicate names): the published expvar
// reads through an indirection that later calls re-point.
var (
	expvarMu      sync.Mutex
	expvarHolders = map[string]*atomic.Pointer[Registry]{}
)

// PublishExpvar exposes the registry's snapshot as a single expvar
// (visible at /debug/vars) under the given name. Publishing another
// registry under the same name re-points the existing expvar.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if h, ok := expvarHolders[name]; ok {
		h.Store(r)
		return
	}
	h := &atomic.Pointer[Registry]{}
	h.Store(r)
	expvarHolders[name] = h
	expvar.Publish(name, expvar.Func(func() any { return h.Load().Snapshot() }))
}
