package obs

import (
	"math"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"
)

// Histogram bucket scheme, shared by every Hist so any two histograms
// merge bucket-for-bucket:
//
//   - values in [0, 128) get one exact bucket each (waiting times in a
//     stable network are almost always here, so the common case is
//     lossless);
//   - values in [2^e, 2^{e+1}) for e = 7…62 are split into 64 equal
//     sub-buckets per octave (log-linear, HDR-histogram style), so the
//     relative quantization error is bounded by 1/64 ≈ 1.6% everywhere.
//
// Buckets are atomic counters grouped into lazily allocated chunks:
// once the chunks covering a workload's value range exist, recording is
// allocation-free, which is what lets the engines feed a Hist from
// their hot loops.
const (
	histLinearMax = 128 // values below this get exact unit buckets
	histSubBits   = 6
	histSubCount  = 1 << histSubBits // sub-buckets per octave
	histFirstExp  = 7                // first octave covers [128, 256)
	histLastExp   = 62               // last octave reaches every positive int64
	histBuckets   = histLinearMax + (histLastExp-histFirstExp+1)*histSubCount
	histChunkLen  = 64 // buckets per lazily allocated chunk
	histChunks    = histBuckets / histChunkLen
)

// HistRelError is the worst-case relative quantization error of a Hist
// quantile for values ≥ histLinearMax (values below are exact).
const HistRelError = 1.0 / histSubCount

type histChunk [histChunkLen]atomic.Int64

// histBucketIndex maps a value to its bucket. Negative values clamp to
// bucket 0 (waiting times are nonnegative; an observability histogram
// must not panic the simulation feeding it).
func histBucketIndex(v int64) int {
	if v < histLinearMax {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1
	sub := int((v - 1<<uint(e)) >> uint(e-histSubBits))
	return histLinearMax + (e-histFirstExp)*histSubCount + sub
}

// histBucketHi returns the largest value mapping to bucket idx — the
// value Quantile reports, so quantiles are conservative upper bounds.
func histBucketHi(idx int) int64 {
	if idx < histLinearMax {
		return int64(idx)
	}
	o := idx - histLinearMax
	e := uint(histFirstExp + o/histSubCount)
	s := int64(o % histSubCount)
	return int64(1)<<e + (s+1)<<(e-histSubBits) - 1
}

// histBucketLo returns the smallest value mapping to bucket idx.
func histBucketLo(idx int) int64 {
	if idx < histLinearMax {
		return int64(idx)
	}
	o := idx - histLinearMax
	e := uint(histFirstExp + o/histSubCount)
	s := int64(o % histSubCount)
	return int64(1)<<e + s<<(e-histSubBits)
}

// Hist is a streaming histogram of nonnegative integer observations
// (waiting times in cycles) with bounded-error quantiles. It is safe
// for concurrent recording and reading, allocation-free once its value
// range has been touched, and mergeable: every Hist uses the same fixed
// bucket scheme, so Merge is associative and commutative bucket-wise.
// The zero value is ready to use.
type Hist struct {
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	chunks [histChunks]atomic.Pointer[histChunk]
}

// Record folds one observation into the histogram. Negative values
// clamp to zero.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	idx := histBucketIndex(v)
	c := h.chunks[idx/histChunkLen].Load()
	if c == nil {
		c = h.chunk(idx / histChunkLen)
	}
	c[idx%histChunkLen].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// chunk allocates bucket chunk ci on first touch (CAS keeps concurrent
// first touches from losing counts).
func (h *Hist) chunk(ci int) *histChunk {
	c := new(histChunk)
	if h.chunks[ci].CompareAndSwap(nil, c) {
		return c
	}
	return h.chunks[ci].Load()
}

// N returns the number of observations.
func (h *Hist) N() int64 { return h.count.Load() }

// Mean returns the exact mean of the observations (sums are kept
// exactly; only quantiles are bucketed).
func (h *Hist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the exact largest observation (0 when empty).
func (h *Hist) Max() int64 { return h.max.Load() }

// Sum returns the exact sum of all observations (the numerator of
// Mean; OpenMetrics exposition serves it as the _sum sample).
func (h *Hist) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper bound for the q-th quantile: the upper edge
// of the first bucket whose cumulative count reaches ⌈q·N⌉. Exact for
// values below 128; within HistRelError relative error above. Returns 0
// for an empty histogram.
func (h *Hist) Quantile(q float64) float64 {
	return h.Quantiles(q)[0]
}

// Quantiles evaluates several quantiles in one pass over the buckets.
// The qs must be given in ascending order.
func (h *Hist) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	n := h.count.Load()
	if n == 0 {
		return out
	}
	ranks := make([]int64, len(qs))
	for i, q := range qs {
		r := int64(math.Ceil(q * float64(n)))
		if r < 1 {
			r = 1
		}
		if r > n {
			r = n
		}
		ranks[i] = r
	}
	var cum int64
	next := 0
	for ci := 0; ci < histChunks && next < len(qs); ci++ {
		c := h.chunks[ci].Load()
		if c == nil {
			continue
		}
		for off := 0; off < histChunkLen && next < len(qs); off++ {
			cum += c[off].Load()
			for next < len(qs) && cum >= ranks[next] {
				out[next] = float64(histBucketHi(ci*histChunkLen + off))
				next++
			}
		}
	}
	// Concurrent recording can leave the bucket walk one observation
	// short of the count read above; the final bucket answers the rest.
	for next < len(qs) {
		out[next] = float64(h.max.Load())
		next++
	}
	return out
}

// Merge adds another histogram's contents into this one, bucket for
// bucket. Both histograms may be recorded into concurrently; merging is
// associative because all Hists share one bucket scheme.
func (h *Hist) Merge(o *Hist) {
	if o == nil {
		return
	}
	for ci := range o.chunks {
		oc := o.chunks[ci].Load()
		if oc == nil {
			continue
		}
		var hc *histChunk
		for off := 0; off < histChunkLen; off++ {
			if v := oc[off].Load(); v != 0 {
				if hc == nil {
					hc = h.chunks[ci].Load()
					if hc == nil {
						hc = h.chunk(ci)
					}
				}
				hc[off].Add(v)
			}
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// HistBucket is one non-empty bucket of a snapshot: all recorded values
// v with Lo ≤ v ≤ Hi.
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time read of a Hist.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Mean    float64      `json:"mean"`
	Max     int64        `json:"max"`
	P50     float64      `json:"p50"`
	P90     float64      `json:"p90"`
	P99     float64      `json:"p99"`
	P999    float64      `json:"p999"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot reads the histogram: counts, exact mean and max, the
// standard quantiles, and the non-empty buckets in ascending order.
func (h *Hist) Snapshot() HistSnapshot {
	qs := h.Quantiles(0.50, 0.90, 0.99, 0.999)
	s := HistSnapshot{
		Count: h.count.Load(),
		Mean:  h.Mean(),
		Max:   h.max.Load(),
		P50:   qs[0], P90: qs[1], P99: qs[2], P999: qs[3],
	}
	for ci := 0; ci < histChunks; ci++ {
		c := h.chunks[ci].Load()
		if c == nil {
			continue
		}
		for off := 0; off < histChunkLen; off++ {
			if v := c[off].Load(); v != 0 {
				idx := ci*histChunkLen + off
				s.Buckets = append(s.Buckets, HistBucket{
					Lo: histBucketLo(idx), Hi: histBucketHi(idx), Count: v,
				})
			}
		}
	}
	return s
}

// Register exposes the histogram's read-outs in a metrics registry:
// name.count, name.mean, name.max, name.p50/.p90/.p99/.p999.
func (h *Hist) Register(reg *Registry, name string) {
	reg.Func(name+".count", func() float64 { return float64(h.N()) })
	reg.Func(name+".mean", h.Mean)
	reg.Func(name+".max", func() float64 { return float64(h.Max()) })
	reg.Func(name+".p50", func() float64 { return h.Quantile(0.50) })
	reg.Func(name+".p90", func() float64 { return h.Quantile(0.90) })
	reg.Func(name+".p99", func() float64 { return h.Quantile(0.99) })
	reg.Func(name+".p999", func() float64 { return h.Quantile(0.999) })
}

// HistSet groups the live waiting-time histograms of a simulation run
// (or many runs sharing one SimProbe): one total-wait histogram plus
// one per stage, grown on demand as engines of different depths attach.
// Safe for concurrent use.
type HistSet struct {
	total Hist

	mu     sync.Mutex
	stages []*Hist
	reg    *Registry
	prefix string
}

// NewHistSet returns an empty set.
func NewHistSet() *HistSet { return &HistSet{} }

// Total returns the end-to-end total-wait histogram.
func (s *HistSet) Total() *Hist { return &s.total }

// Stages returns the histograms of stages 1…n, growing the set as
// needed; the returned slice is the caller's to keep for a run's hot
// loop. Newly created stages are registered in the set's registry when
// Register was called earlier.
func (s *HistSet) Stages(n int) []*Hist {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.stages) < n {
		h := &Hist{}
		s.stages = append(s.stages, h)
		if s.reg != nil {
			h.Register(s.reg, stageMetricName(s.prefix, len(s.stages)))
		}
	}
	return append([]*Hist(nil), s.stages[:n]...)
}

// NumStages returns the number of per-stage histograms created so far.
func (s *HistSet) NumStages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stages)
}

// Register exposes the set in a metrics registry under prefix
// (".total", ".stage1", ".stage2", …); "" means "wait". Stages created
// later register themselves as they appear.
func (s *HistSet) Register(reg *Registry, prefix string) {
	if prefix == "" {
		prefix = "wait"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg, s.prefix = reg, prefix
	s.total.Register(reg, prefix+".total")
	for i, h := range s.stages {
		h.Register(reg, stageMetricName(prefix, i+1))
	}
}

func stageMetricName(prefix string, stage int) string {
	if prefix == "" {
		prefix = "wait"
	}
	return prefix + ".stage" + strconv.Itoa(stage)
}
