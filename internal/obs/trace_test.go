package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func span(msg int64) Span {
	return Span{
		Msg: msg, Seed: 9, Engine: "fast", Dest: 3, Arrival: 100,
		TotalWait: 5,
		Stages: []StageSpan{
			{Stage: 1, Enqueue: 100, Start: 102, Depart: 103, Wait: 2},
			{Stage: 2, Enqueue: 103, Start: 106, Depart: 107, Wait: 3},
		},
	}
}

func TestTracerDefaults(t *testing.T) {
	if tr := NewTracer(0, 0); tr.SampleN() != 1 || cap(tr.buf) != defaultTraceRing {
		t.Fatalf("defaults: sampleN %d ring %d", tr.SampleN(), cap(tr.buf))
	}
	if tr := NewTracer(64, 16); tr.SampleN() != 64 || cap(tr.buf) != 16 {
		t.Fatalf("explicit: sampleN %d ring %d", tr.SampleN(), cap(tr.buf))
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := int64(0); i < 6; i++ {
		tr.Add(span(i))
	}
	if tr.Total() != 6 {
		t.Fatalf("total %d, want 6", tr.Total())
	}
	got := tr.Spans()
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	for i, s := range got {
		if s.Msg != int64(i+2) {
			t.Fatalf("eviction order wrong: got msgs %v", got)
		}
	}
}

func TestTracerWriteJSONL(t *testing.T) {
	tr := NewTracer(1, 8)
	tr.Add(span(0))
	tr.Add(span(64))
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines int
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", lines, err, sc.Text())
		}
		// The span invariant the trace format promises: stage waits sum
		// to the total, and each wait is Start - Enqueue.
		var sum int64
		for _, st := range s.Stages {
			if st.Wait != st.Start-st.Enqueue {
				t.Fatalf("stage %d wait %d != start-enqueue %d", st.Stage, st.Wait, st.Start-st.Enqueue)
			}
			sum += st.Wait
		}
		if sum != s.TotalWait {
			t.Fatalf("stage waits sum %d != total %d", sum, s.TotalWait)
		}
		if !strings.Contains(sc.Text(), `"total_wait"`) {
			t.Fatalf("missing total_wait field: %s", sc.Text())
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}
