package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"banyan/internal/textplot"
)

// DebugServer serves live observability over HTTP while a sweep runs:
//
//	/metrics        the Registry as "name value" text
//	/debug/vars     expvar JSON (including registries published there)
//	/debug/events   the RingSink's recent events as JSONL
//	/debug/hist     live waiting-time histograms as JSON (with sparklines)
//	/debug/trace    the Tracer's retained message spans as JSONL
//	/debug/pprof/   the standard pprof index (profile, heap, trace, …)
//
// It binds immediately (so a bad address fails fast) and serves in the
// background until Close.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// DebugOptions selects what a DebugServer serves. Any field may be nil;
// its endpoint then answers 404.
type DebugOptions struct {
	Registry *Registry
	Events   *RingSink
	Hists    *HistSet
	Tracer   *Tracer
}

// histJSON is one histogram in the /debug/hist response: the snapshot
// plus a sparkline of the occupied buckets' counts in ascending value
// order (bucket widths grow logarithmically, so the x-axis is roughly
// log-scaled).
type histJSON struct {
	HistSnapshot
	Spark string `json:"spark,omitempty"`
}

func histToJSON(h *Hist, width int) histJSON {
	s := h.Snapshot()
	out := histJSON{HistSnapshot: s}
	if len(s.Buckets) > 0 {
		vals := make([]float64, len(s.Buckets))
		for i, b := range s.Buckets {
			vals[i] = float64(b.Count)
		}
		out.Spark = textplot.Sparkline(vals, width)
	}
	return out
}

// StartDebugServer listens on addr and serves the configured surfaces.
func StartDebugServer(addr string, opts DebugOptions) (*DebugServer, error) {
	mux := http.NewServeMux()
	if opts.Registry != nil {
		reg := opts.Registry
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			reg.WriteText(w)
		})
	}
	if opts.Events != nil {
		events := opts.Events
		mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			events.WriteJSONL(w)
		})
	}
	if opts.Hists != nil {
		hists := opts.Hists
		mux.HandleFunc("/debug/hist", func(w http.ResponseWriter, _ *http.Request) {
			const sparkWidth = 48
			resp := struct {
				Total  histJSON   `json:"total"`
				Stages []histJSON `json:"stages"`
			}{
				Total:  histToJSON(hists.Total(), sparkWidth),
				Stages: []histJSON{},
			}
			for _, h := range hists.Stages(hists.NumStages()) {
				resp.Stages = append(resp.Stages, histToJSON(h, sparkWidth))
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(resp)
		})
	}
	if opts.Tracer != nil {
		tracer := opts.Tracer
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			tracer.WriteJSONL(w)
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *DebugServer) Close() error { return s.srv.Close() }
