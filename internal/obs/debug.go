package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"banyan/internal/textplot"
)

// DebugServer serves live observability over HTTP while a sweep runs:
//
//	/metrics        OpenMetrics exposition (counters, gauges, le-bucketed
//	                histograms); ?format=legacy for the old "name value" text
//	/debug/vars     expvar JSON (including registries published there)
//	/debug/events   the RingSink's recent events as JSONL
//	/debug/hist     live waiting-time histograms as JSON (with sparklines;
//	                ?width= sets the sparkline width, 8…512)
//	/debug/ts       the TSDB's retained series as JSON (?name=, ?window=,
//	                ?buckets=) or text sparklines (?format=spark)
//	/debug/trace    the Tracer's retained message spans as JSONL
//	/debug/pprof/   the standard pprof index (profile, heap, trace, …)
//
// It binds immediately (so a bad address fails fast) and serves in the
// background until Close.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// DebugOptions selects what a DebugServer serves. Any field may be nil;
// its endpoint then answers 404.
type DebugOptions struct {
	Registry *Registry
	Events   *RingSink
	Hists    *HistSet
	Tracer   *Tracer
	TSDB     *TSDB
	// Probe, when set, adds the graph engine's per-switch telemetry
	// (backlog high-water marks, blocked cycles, saturation verdicts) to
	// the /debug/hist response as a "switches" section.
	Probe *SimProbe
	// SatDepth is the backlog high-water mark at or above which a switch
	// is reported saturated (0 = 32, simnet's default).
	SatDepth int
}

// Query-parameter bounds: values outside these are a client error, and
// the handlers answer 400 instead of silently misrendering.
const (
	sparkWidthDefault = 48
	sparkWidthMin     = 8
	sparkWidthMax     = 512
	tsBucketsDefault  = 60
	tsBucketsMax      = 2048
	tsWindowMax       = 24 * time.Hour
)

// intParam parses an optional positive-int query parameter within
// [lo, hi]; a missing/empty parameter yields def. The bool reports
// whether the value was acceptable.
func intParam(r *http.Request, name string, def, lo, hi int) (int, bool) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, true
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < lo || v > hi {
		return 0, false
	}
	return v, true
}

// histJSON is one histogram in the /debug/hist response: the snapshot
// plus a sparkline of the occupied buckets' counts in ascending value
// order (bucket widths grow logarithmically, so the x-axis is roughly
// log-scaled).
type histJSON struct {
	HistSnapshot
	Spark string `json:"spark,omitempty"`
}

func histToJSON(h *Hist, width int) histJSON {
	s := h.Snapshot()
	out := histJSON{HistSnapshot: s}
	if len(s.Buckets) > 0 {
		vals := make([]float64, len(s.Buckets))
		for i, b := range s.Buckets {
			vals[i] = float64(b.Count)
		}
		out.Spark = textplot.Sparkline(vals, width)
	}
	return out
}

// histFamilies renders the live waiting-time histograms as OpenMetrics
// histogram families: one family, banyan_wait_cycles, with a stage
// label ("total", "1", "2", …).
func histFamilies(hists *HistSet) []HistFamily {
	if hists == nil {
		return nil
	}
	const help = "waiting time per measured message, in cycles"
	fams := []HistFamily{{
		Name: "wait_cycles", Help: help,
		Labels: map[string]string{"stage": "total"},
		Hist:   hists.Total(),
	}}
	for i, h := range hists.Stages(hists.NumStages()) {
		fams = append(fams, HistFamily{
			Name: "wait_cycles", Help: help,
			Labels: map[string]string{"stage": strconv.Itoa(i + 1)},
			Hist:   h,
		})
	}
	return fams
}

// switchJSON is one switch's graph-engine telemetry in the /debug/hist
// response: aggregate backlog high-water mark and blocked-cycle count
// across the probe's runs, plus the saturation verdict at the
// configured depth.
type switchJSON struct {
	Stage     int   `json:"stage"`  // 1-based
	Switch    int   `json:"switch"` // 0-based within the stage
	HighWater int64 `json:"high_water"`
	Blocked   int64 `json:"blocked"`
	Saturated bool  `json:"saturated"`
}

func switchesToJSON(snap *ProbeSnapshot, satDepth int) []switchJSON {
	var out []switchJSON
	for s, hws := range snap.SwitchHighWater {
		for id, hw := range hws {
			var blocked int64
			if s < len(snap.SwitchBlocked) && id < len(snap.SwitchBlocked[s]) {
				blocked = snap.SwitchBlocked[s][id]
			}
			out = append(out, switchJSON{
				Stage: s + 1, Switch: id,
				HighWater: hw, Blocked: blocked,
				Saturated: blocked > 0 || hw >= int64(satDepth),
			})
		}
	}
	return out
}

// StartDebugServer listens on addr and serves the configured surfaces.
func StartDebugServer(addr string, opts DebugOptions) (*DebugServer, error) {
	mux := http.NewServeMux()
	if opts.Registry != nil {
		reg, hists := opts.Registry, opts.Hists
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Query().Get("format") == "legacy" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				reg.WriteText(w)
				return
			}
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			WriteOpenMetrics(w, reg, histFamilies(hists))
		})
	}
	if opts.Events != nil {
		events := opts.Events
		mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			events.WriteJSONL(w)
		})
	}
	if opts.Hists != nil {
		hists, probe, satDepth := opts.Hists, opts.Probe, opts.SatDepth
		if satDepth <= 0 {
			satDepth = 32
		}
		mux.HandleFunc("/debug/hist", func(w http.ResponseWriter, r *http.Request) {
			width, ok := intParam(r, "width", sparkWidthDefault, sparkWidthMin, sparkWidthMax)
			if !ok {
				http.Error(w, fmt.Sprintf("bad width: want integer in [%d,%d]", sparkWidthMin, sparkWidthMax), http.StatusBadRequest)
				return
			}
			resp := struct {
				Total  histJSON   `json:"total"`
				Stages []histJSON `json:"stages"`
				// Per-switch graph-engine telemetry; absent unless a probe
				// with graph runs is attached.
				Switches      []switchJSON `json:"switches,omitempty"`
				BlockedCycles int64        `json:"blocked_cycles,omitempty"`
			}{
				Total:  histToJSON(hists.Total(), width),
				Stages: []histJSON{},
			}
			for _, h := range hists.Stages(hists.NumStages()) {
				resp.Stages = append(resp.Stages, histToJSON(h, width))
			}
			if probe != nil {
				snap := probe.Snapshot()
				resp.Switches = switchesToJSON(&snap, satDepth)
				resp.BlockedCycles = snap.BlockedCycles
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(resp)
		})
	}
	if opts.TSDB != nil {
		tsdb := opts.TSDB
		mux.HandleFunc("/debug/ts", func(w http.ResponseWriter, r *http.Request) {
			handleTS(w, r, tsdb)
		})
	}
	if opts.Tracer != nil {
		tracer := opts.Tracer
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			tracer.WriteJSONL(w)
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// tsSeriesJSON is one series in the /debug/ts JSON response. Values are
// encoded via []any so NaN gaps become JSON null.
type tsSeriesJSON struct {
	Name   string  `json:"name"`
	Times  []int64 `json:"unix_ms"`
	Values []any   `json:"values"`
}

// handleTS answers /debug/ts: windowed downsampled queries over the
// store's series, as JSON (default) or text sparklines (?format=spark).
// ?name= restricts to one series; ?window= (a Go duration, e.g. 2m)
// and ?buckets= control the downsampling.
func handleTS(w http.ResponseWriter, r *http.Request, tsdb *TSDB) {
	q := r.URL.Query()
	buckets, ok := intParam(r, "buckets", tsBucketsDefault, 1, tsBucketsMax)
	if !ok {
		http.Error(w, fmt.Sprintf("bad buckets: want integer in [1,%d]", tsBucketsMax), http.StatusBadRequest)
		return
	}
	var window time.Duration
	if s := q.Get("window"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 || d > tsWindowMax {
			http.Error(w, fmt.Sprintf("bad window: want duration in (0,%s]", tsWindowMax), http.StatusBadRequest)
			return
		}
		window = d
	}
	names := tsdb.SeriesNames()
	if want := q.Get("name"); want != "" {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			http.Error(w, "unknown series", http.StatusNotFound)
			return
		}
		names = []string{want}
	}

	if q.Get("format") == "spark" {
		width, ok := intParam(r, "width", sparkWidthDefault, sparkWidthMin, sparkWidthMax)
		if !ok {
			http.Error(w, fmt.Sprintf("bad width: want integer in [%d,%d]", sparkWidthMin, sparkWidthMax), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, n := range names {
			pts := tsdb.Query(n, window, buckets)
			vals := make([]float64, 0, len(pts))
			last := math.NaN()
			for _, p := range pts {
				if !math.IsNaN(p.Value) {
					last = p.Value
				}
				vals = append(vals, p.Value)
			}
			fmt.Fprintf(w, "%-32s %s %v\n", n, textplot.Sparkline(vals, width), last)
		}
		return
	}

	resp := make([]tsSeriesJSON, 0, len(names))
	for _, n := range names {
		pts := tsdb.Query(n, window, buckets)
		s := tsSeriesJSON{Name: n, Times: make([]int64, 0, len(pts)), Values: make([]any, 0, len(pts))}
		for _, p := range pts {
			s.Times = append(s.Times, p.UnixMilli)
			if math.IsNaN(p.Value) {
				s.Values = append(s.Values, nil)
			} else {
				s.Values = append(s.Values, p.Value)
			}
		}
		resp = append(resp, s)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *DebugServer) Close() error { return s.srv.Close() }
