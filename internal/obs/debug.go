package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves live observability over HTTP while a sweep runs:
//
//	/metrics        the Registry as "name value" text
//	/debug/vars     expvar JSON (including registries published there)
//	/debug/events   the RingSink's recent events as JSONL
//	/debug/pprof/   the standard pprof index (profile, heap, trace, …)
//
// It binds immediately (so a bad address fails fast) and serves in the
// background until Close.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer listens on addr and serves the registry and event
// ring; either may be nil to disable its endpoint.
func StartDebugServer(addr string, reg *Registry, events *RingSink) (*DebugServer, error) {
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			reg.WriteText(w)
		})
	}
	if events != nil {
		mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			events.WriteJSONL(w)
		})
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *DebugServer) Close() error { return s.srv.Close() }
