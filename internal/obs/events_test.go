package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Now = func() time.Time { return time.Unix(1700000000, 0).UTC() }
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				s.Emit(Event{Event: EventPointDone, Label: fmt.Sprintf("p%d", i), Messages: int64(j)})
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 100 {
		t.Fatalf("got %d lines, want 100", len(lines))
	}
	for _, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
		if ev.Event != EventPointDone || ev.Time.IsZero() {
			t.Fatalf("bad event %+v", ev)
		}
		// Zero fields must be omitted, not serialized as noise.
		if strings.Contains(line, `"err"`) || strings.Contains(line, `"cycles"`) {
			t.Fatalf("zero fields not omitted: %s", line)
		}
	}
}

func TestRingSinkBounded(t *testing.T) {
	r := NewRingSink(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Event: EventPointDone, Rep: i})
	}
	if r.Total() != 10 {
		t.Fatalf("total %d, want 10", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Rep != 6+i {
			t.Fatalf("ring order wrong: %+v", evs)
		}
	}
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "\n"); n != 4 {
		t.Fatalf("jsonl lines %d, want 4", n)
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewRingSink(8), NewRingSink(8)
	m := MultiSink{a, b}
	m.Emit(Event{Event: EventPointStarted})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("fan-out missed a sink: %d %d", a.Total(), b.Total())
	}
}

// TestDebugServer drives the whole -debug-addr surface: metrics text,
// expvar JSON, the event ring and the pprof index.
func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("points.done").Add(5)
	ring := NewRingSink(8)
	ring.Emit(Event{Event: EventPointDone, Label: "x"})

	srv, err := StartDebugServer("127.0.0.1:0", DebugOptions{Registry: reg, Events: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics?format=legacy"); !strings.Contains(body, "points.done 5") {
		t.Fatalf("/metrics?format=legacy missing counter:\n%s", body)
	}
	if body := get("/metrics"); !strings.Contains(body, "banyan_points_done_total 5") {
		t.Fatalf("/metrics missing OpenMetrics counter:\n%s", body)
	}
	if body := get("/debug/events"); !strings.Contains(body, `"label":"x"`) {
		t.Fatalf("/debug/events missing event:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "cmdline") {
		t.Fatalf("/debug/vars not expvar:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ not the pprof index:\n%s", body)
	}
}
