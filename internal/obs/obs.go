// Package obs is the repo's zero-dependency observability layer: it
// tells you where a long Monte-Carlo sweep spends its time and memory
// while the sweep is still running, without perturbing a single
// simulated number.
//
// Five building blocks (standard library plus internal/textplot for
// sparkline rendering):
//
//   - Structured events (events.go): every sweep-point lifecycle
//     transition (started, retried, truncated, journaled, done, failed,
//     cached, resumed, aliased) is emitted as one JSON line through a
//     Sink — to a file, to stderr, or into a bounded in-memory ring
//     served over HTTP. Events carry the canonical config key, seed,
//     attempt number, wall time, cycles simulated, message and drop
//     counts.
//
//   - Metrics (metrics.go): a small registry of named read-out
//     functions backed by Counter, Gauge and windowed-rate Meter
//     primitives. The registry renders as plain "name value" text (the
//     /metrics endpoint) and can publish itself as one expvar under
//     /debug/vars.
//
//   - Engine instrumentation (probe.go): a SimProbe accumulates cheap
//     per-run simulator internals — cycles, schedule-block pulls,
//     free-list hit rates, per-stage backlog high-water marks — that
//     the simnet engines flush when a probe is attached to their
//     Config. The probe never feeds back into the simulation: results
//     are byte-identical with and without it.
//
//   - Streaming histograms (hist.go): Hist is a log-bucketed,
//     allocation-free-in-steady-state histogram with bounded-error
//     quantiles (p50/p90/p99/p999) and bucket-wise merging; HistSet
//     groups a run's live waiting-time distributions (total plus one
//     per stage), attached to engines through SimProbe.Hists.
//
//   - Trace spans (trace.go): Tracer is a flight recorder of sampled
//     per-message journeys — per-stage enqueue/start/depart cycles that
//     decompose a message's end-to-end delay into the per-stage waits
//     the paper analyzes — attached through SimProbe.Tracer and dumped
//     as JSONL.
//
// debug.go ties the pieces to a live HTTP endpoint (the -debug-addr
// flag of the sweep binaries): net/http/pprof for CPU/heap profiling of
// an in-flight sweep, /debug/vars for expvar, /metrics for the
// registry, /debug/events for the recent event ring, /debug/hist for
// live waiting-time quantiles and sparklines, /debug/trace for the
// retained spans.
//
// Everything here is observational. Nothing in this package is hashed
// into sweep point keys, journaled, or allowed to influence engine
// scheduling, so enabling any of it cannot change experiment output.
package obs
