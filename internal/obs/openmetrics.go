package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics exposition: the /metrics endpoint renders the Registry —
// and the live waiting-time histograms — in the OpenMetrics text format
// (the Prometheus exposition format plus `# EOF` framing), so any
// standard collector can scrape an engine, a runner, or a future shard
// worker without a bespoke ingester.
//
// Mapping, pinned here and documented in DESIGN.md §15:
//
//   - registry names are sanitized (every character outside
//     [a-zA-Z0-9_] becomes '_') and prefixed "banyan_":
//     "sweep.points.done" → family banyan_sweep_points_done;
//   - read-outs described KindCounter expose one sample named
//     family+"_total" (the OpenMetrics counter convention); gauges
//     expose a sample named exactly like the family;
//   - Hist snapshots expose as histogram families with cumulative
//     `le`-labelled buckets (each occupied bucket contributes its
//     upper edge), a "+Inf" bucket, and exact _sum/_count samples;
//     a HistFamily's Labels ride on every one of its samples, which is
//     how one family carries per-stage series (stage="1", …).
//
// The package also carries a minimal OpenMetrics parser
// (ParseOpenMetrics) used by cmd/sweeptop and by CI to validate that a
// live scrape really is OpenMetrics — no external dependency.

// omPrefix namespaces every exposed family.
const omPrefix = "banyan_"

// HistFamily is one histogram series for WriteOpenMetrics: a family
// name (sanitized and prefixed automatically), an optional fixed label
// set distinguishing this series from siblings of the same family, and
// the live histogram behind it.
type HistFamily struct {
	Name   string
	Help   string
	Labels map[string]string
	Hist   *Hist
}

// omName sanitizes a registry name into an OpenMetrics metric name.
func omName(name string) string {
	var b strings.Builder
	b.Grow(len(omPrefix) + len(name))
	b.WriteString(omPrefix)
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// omValue renders a sample value. OpenMetrics wants plain float
// spellings; NaN and infinities have canonical forms.
func omValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// omEscape escapes a label value or help text for the exposition
// format.
func omEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// omLabels renders a label set in sorted-key order ("" when empty).
func omLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, strings.ReplaceAll(omEscape(labels[k]), `"`, `\"`))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteOpenMetrics renders the registry (and any histogram families) as
// an OpenMetrics text page, terminated by the mandatory "# EOF" line.
// Families are emitted in sorted name order so scrapes are
// deterministic and diffable.
func WriteOpenMetrics(w io.Writer, reg *Registry, hists []HistFamily) error {
	bw := bufio.NewWriter(w)

	if reg != nil {
		snap := reg.Snapshot()
		names := make([]string, 0, len(snap))
		for n := range snap {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			family := omName(n)
			kind, help := reg.Kind(n), reg.HelpFor(n)
			switch kind {
			case KindCounter:
				fmt.Fprintf(bw, "# TYPE %s counter\n", family)
				if help != "" {
					fmt.Fprintf(bw, "# HELP %s %s\n", family, omEscape(help))
				}
				// Counters must be monotone and non-negative; clamp the
				// read-out rather than emit an invalid page.
				v := snap[n]
				if v < 0 || math.IsNaN(v) {
					v = 0
				}
				fmt.Fprintf(bw, "%s_total %s\n", family, omValue(v))
			default:
				fmt.Fprintf(bw, "# TYPE %s gauge\n", family)
				if help != "" {
					fmt.Fprintf(bw, "# HELP %s %s\n", family, omEscape(help))
				}
				fmt.Fprintf(bw, "%s %s\n", family, omValue(snap[n]))
			}
		}
	}

	// Histogram families: group series sharing a family name under one
	// TYPE line.
	byFamily := map[string][]HistFamily{}
	var famNames []string
	for _, hf := range hists {
		if hf.Hist == nil {
			continue
		}
		f := omName(hf.Name)
		if _, ok := byFamily[f]; !ok {
			famNames = append(famNames, f)
		}
		byFamily[f] = append(byFamily[f], hf)
	}
	sort.Strings(famNames)
	for _, f := range famNames {
		fmt.Fprintf(bw, "# TYPE %s histogram\n", f)
		if help := byFamily[f][0].Help; help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f, omEscape(help))
		}
		for _, hf := range byFamily[f] {
			writeHistSeries(bw, f, hf)
		}
	}

	fmt.Fprintf(bw, "# EOF\n")
	return bw.Flush()
}

// writeHistSeries emits one histogram series: cumulative le buckets
// from the snapshot's occupied buckets, the +Inf bucket, and exact
// _sum/_count. The le label is merged into the series' fixed labels.
func writeHistSeries(w io.Writer, family string, hf HistFamily) {
	s := hf.Hist.Snapshot()
	withLE := func(le string) string {
		m := make(map[string]string, len(hf.Labels)+1)
		for k, v := range hf.Labels {
			m[k] = v
		}
		m["le"] = le
		return omLabels(m)
	}
	// The snapshot's count can run ahead of the bucket walk under
	// concurrent recording; the +Inf bucket and _count use the larger of
	// the two so cumulative monotonicity always holds on the wire.
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket%s %d\n", family, withLE(omValue(float64(b.Hi))), cum)
	}
	count := s.Count
	if cum > count {
		count = cum
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", family, withLE("+Inf"), count)
	fmt.Fprintf(w, "%s_sum%s %d\n", family, omLabels(hf.Labels), hf.Hist.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", family, omLabels(hf.Labels), count)
}

// OMSample is one parsed OpenMetrics sample line.
type OMSample struct {
	Name   string // full sample name, including _total/_bucket/... suffixes
	Labels map[string]string
	Value  float64
}

// OMFamily is one parsed metric family.
type OMFamily struct {
	Name    string // family name, as declared by # TYPE
	Type    string // counter, gauge, histogram, ...
	Help    string
	Samples []OMSample
}

// omNameRe-equivalent checks, hand-rolled to stay dependency-free.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// sampleSuffixes are the structured-sample suffixes a family's samples
// may carry, by type.
var sampleSuffixes = map[string][]string{
	"counter":   {"_total"},
	"gauge":     {""},
	"histogram": {"_bucket", "_sum", "_count"},
	"summary":   {"", "_sum", "_count"},
	"unknown":   {""},
}

// ParseOpenMetrics is a minimal, dependency-free OpenMetrics text
// parser/validator. It checks the structural rules a collector relies
// on — every sample belongs to a family declared by a # TYPE line with
// a type-appropriate suffix, label syntax is well-formed, values parse,
// counters are non-negative, histogram buckets are cumulative with a
// closing +Inf bucket that equals _count, and the page is terminated by
// exactly one trailing "# EOF" — and returns the parsed families in
// declaration order. It exists for cmd/sweeptop and the CI scrape
// validation; it is not a complete implementation of the spec (exemplars
// and timestamps, which this repo never emits, are rejected).
func ParseOpenMetrics(r io.Reader) ([]OMFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var families []OMFamily
	index := map[string]*OMFamily{}
	sawEOF := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if sawEOF {
			return nil, fmt.Errorf("openmetrics: line %d: content after # EOF", lineNo)
		}
		if line == "" {
			return nil, fmt.Errorf("openmetrics: line %d: empty line", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			switch {
			case line == "# EOF":
				sawEOF = true
			case len(fields) >= 4 && fields[1] == "TYPE":
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return nil, fmt.Errorf("openmetrics: line %d: bad family name %q", lineNo, name)
				}
				if _, ok := sampleSuffixes[typ]; !ok {
					return nil, fmt.Errorf("openmetrics: line %d: unknown type %q", lineNo, typ)
				}
				if _, dup := index[name]; dup {
					return nil, fmt.Errorf("openmetrics: line %d: duplicate TYPE for %q", lineNo, name)
				}
				families = append(families, OMFamily{Name: name, Type: typ})
				index[name] = &families[len(families)-1]
			case len(fields) >= 4 && (fields[1] == "HELP" || fields[1] == "UNIT"):
				name := fields[2]
				if f, ok := index[name]; ok && fields[1] == "HELP" {
					f.Help = fields[3]
				} else if !ok {
					return nil, fmt.Errorf("openmetrics: line %d: %s for undeclared family %q", lineNo, fields[1], name)
				}
			default:
				return nil, fmt.Errorf("openmetrics: line %d: malformed comment line %q", lineNo, line)
			}
			continue
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("openmetrics: line %d: %w", lineNo, err)
		}
		fam := familyOf(index, sample.Name)
		if fam == nil {
			return nil, fmt.Errorf("openmetrics: line %d: sample %q has no declared family", lineNo, sample.Name)
		}
		if fam.Type == "counter" && sample.Value < 0 {
			return nil, fmt.Errorf("openmetrics: line %d: counter %q is negative", lineNo, sample.Name)
		}
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("openmetrics: missing terminating # EOF")
	}
	for i := range families {
		if families[i].Type == "histogram" {
			if err := checkHistogramFamily(&families[i]); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

// familyOf resolves a sample name to its declared family by stripping
// the type-appropriate suffix.
func familyOf(index map[string]*OMFamily, sample string) *OMFamily {
	if f, ok := index[sample]; ok && hasSuffixFor(f.Type, "") {
		return f
	}
	for _, suf := range []string{"_total", "_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sample, suf)
		if !ok {
			continue
		}
		if f, fok := index[base]; fok && hasSuffixFor(f.Type, suf) {
			return f
		}
	}
	return nil
}

func hasSuffixFor(typ, suf string) bool {
	for _, s := range sampleSuffixes[typ] {
		if s == suf {
			return true
		}
	}
	return false
}

// parseSampleLine parses `name{labels} value` (no timestamps, no
// exemplars — this repo never emits them).
func parseSampleLine(line string) (OMSample, error) {
	s := OMSample{}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:nameEnd]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("bad sample name %q", s.Name)
	}
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				i++
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return s, fmt.Errorf("missing value separator in %q", line)
	}
	valStr := strings.TrimPrefix(rest, " ")
	if strings.ContainsAny(valStr, " \t") {
		return s, fmt.Errorf("trailing content after value in %q (timestamps/exemplars unsupported)", line)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", valStr)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses the inside of a {...} label set.
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		name := s[:eq]
		if !validLabelName(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", name)
		}
		var val strings.Builder
		i := 1
		for ; i < len(s); i++ {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if s[i] == '"' {
				break
			}
			val.WriteByte(s[i])
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val.String()
		s = s[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("missing comma between labels near %q", s)
			}
			s = s[1:]
		}
	}
	return out, nil
}

// checkHistogramFamily validates the cumulative-bucket contract per
// series (label set minus le): non-decreasing bucket counts in le
// order, a +Inf bucket present, and _count equal to the +Inf bucket.
func checkHistogramFamily(f *OMFamily) error {
	type series struct {
		lastLE    float64
		lastCount float64
		inf       float64
		hasInf    bool
		count     float64
		hasCount  bool
	}
	byKey := map[string]*series{}
	key := func(labels map[string]string) string {
		m := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				m[k] = v
			}
		}
		return omLabels(m)
	}
	get := func(k string) *series {
		sr, ok := byKey[k]
		if !ok {
			sr = &series{lastLE: math.Inf(-1)}
			byKey[k] = sr
		}
		return sr
	}
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("openmetrics: histogram %s bucket without le label", f.Name)
			}
			sr := get(key(s.Labels))
			if le == "+Inf" {
				sr.inf, sr.hasInf = s.Value, true
				if s.Value < sr.lastCount {
					return fmt.Errorf("openmetrics: histogram %s: +Inf bucket %g below previous bucket %g", f.Name, s.Value, sr.lastCount)
				}
				continue
			}
			lv, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("openmetrics: histogram %s: bad le %q", f.Name, le)
			}
			if lv <= sr.lastLE {
				return fmt.Errorf("openmetrics: histogram %s: le %g out of order", f.Name, lv)
			}
			if s.Value < sr.lastCount {
				return fmt.Errorf("openmetrics: histogram %s: bucket counts not cumulative at le=%g", f.Name, lv)
			}
			sr.lastLE, sr.lastCount = lv, s.Value
		case strings.HasSuffix(s.Name, "_count"):
			sr := get(key(s.Labels))
			sr.count, sr.hasCount = s.Value, true
		}
	}
	for k, sr := range byKey {
		if !sr.hasInf {
			return fmt.Errorf("openmetrics: histogram %s%s missing +Inf bucket", f.Name, k)
		}
		if sr.hasCount && sr.count != sr.inf {
			return fmt.Errorf("openmetrics: histogram %s%s: _count %g != +Inf bucket %g", f.Name, k, sr.count, sr.inf)
		}
	}
	return nil
}
