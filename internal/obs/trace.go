package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// StageSpan is one stage of a traced message's journey, in absolute
// simulation cycles: the message joins the stage's output queue at
// Enqueue, its service begins at Start (Wait = Start − Enqueue, the
// quantity the paper analyzes per stage), and the output port is busy
// until Depart = Start + service. Under cut-through switching the
// message enters the next stage's queue at Start + 1.
type StageSpan struct {
	Stage   int   `json:"stage"` // 1-based
	Enqueue int64 `json:"enqueue"`
	Start   int64 `json:"start"`
	Depart  int64 `json:"depart"`
	Wait    int64 `json:"wait"`
}

// Span is the end-to-end trace of one sampled message. Msg is the
// message's ordinal among the run's measured messages in trace order —
// the deterministic sampling key, identical across engines consuming
// the same trace — so spans from the fast and literal engines can be
// joined message by message. The per-stage waits sum to TotalWait.
type Span struct {
	Msg       int64       `json:"msg"`
	Seed      uint64      `json:"seed,omitempty"`
	Engine    string      `json:"engine,omitempty"`
	Dest      uint32      `json:"dest"`
	Arrival   int64       `json:"arrival"` // stage-1 arrival cycle
	TotalWait int64       `json:"total_wait"`
	Stages    []StageSpan `json:"stages"`
}

// defaultTraceRing bounds a Tracer's retained spans when the caller
// does not choose a size.
const defaultTraceRing = 4096

// Tracer is a flight recorder for per-message trace spans: engines with
// a tracer attached (via SimProbe.Tracer) sample one in SampleN of
// their measured messages — deterministically, by measured-message
// ordinal, never by consuming simulation randomness — and deposit the
// completed spans into a bounded ring. Safe for concurrent use.
type Tracer struct {
	sampleN int64

	mu    sync.Mutex
	buf   []Span
	next  int
	total int64
}

// NewTracer returns a tracer sampling one in sampleN measured messages
// (sampleN < 1 becomes 1: trace everything) and retaining the most
// recent ring spans (ring < 1 picks a default).
func NewTracer(sampleN, ring int) *Tracer {
	if sampleN < 1 {
		sampleN = 1
	}
	if ring < 1 {
		ring = defaultTraceRing
	}
	return &Tracer{sampleN: int64(sampleN), buf: make([]Span, 0, ring)}
}

// SampleN returns the 1-in-N sampling rate.
func (t *Tracer) SampleN() int64 { return t.sampleN }

// Add deposits one completed span, evicting the oldest when full.
func (t *Tracer) Add(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.total++
}

// Total returns the number of spans ever recorded (including evicted).
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// WriteJSONL renders the retained spans as JSON lines, oldest first —
// the -trace-out file format and the /debug/trace wire format.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, s := range t.Spans() {
		line, err := json.Marshal(s)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}
