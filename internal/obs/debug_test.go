package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func startTestServer(t *testing.T, opts DebugOptions) *DebugServer {
	t.Helper()
	srv, err := StartDebugServer("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, srv *DebugServer, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + srv.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDebugHistEndpoint checks the /debug/hist JSON shape: total plus
// per-stage snapshots with quantiles and sparklines.
func TestDebugHistEndpoint(t *testing.T) {
	hs := NewHistSet()
	hs.Total().Record(10)
	hs.Total().Record(200)
	st := hs.Stages(2)
	for v := int64(0); v < 50; v++ {
		st[0].Record(v)
		st[1].Record(v * 3)
	}
	srv := startTestServer(t, DebugOptions{Hists: hs})

	code, body := get(t, srv, "/debug/hist")
	if code != http.StatusOK {
		t.Fatalf("/debug/hist status %d", code)
	}
	var resp struct {
		Total struct {
			HistSnapshot
			Spark string `json:"spark"`
		} `json:"total"`
		Stages []struct {
			HistSnapshot
			Spark string `json:"spark"`
		} `json:"stages"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/debug/hist not JSON: %v\n%s", err, body)
	}
	if resp.Total.Count != 2 || resp.Total.Max != 200 {
		t.Fatalf("total snapshot wrong: %+v", resp.Total)
	}
	if len(resp.Stages) != 2 {
		t.Fatalf("stages %d, want 2", len(resp.Stages))
	}
	if resp.Stages[0].Count != 50 || resp.Stages[0].P50 != 24 {
		t.Fatalf("stage 1 snapshot wrong: %+v", resp.Stages[0])
	}
	if resp.Stages[1].Spark == "" {
		t.Fatalf("stage 2 sparkline missing")
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	tr := NewTracer(1, 8)
	tr.Add(span(0))
	srv := startTestServer(t, DebugOptions{Tracer: tr})
	code, body := get(t, srv, "/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status %d", code)
	}
	var s Span
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &s); err != nil {
		t.Fatalf("/debug/trace not JSONL: %v\n%s", err, body)
	}
	if s.Msg != 0 || len(s.Stages) != 2 {
		t.Fatalf("span round-trip wrong: %+v", s)
	}
}

// TestDebugEndpointsAbsent: unconfigured surfaces must 404, not serve
// empty data that looks real.
func TestDebugEndpointsAbsent(t *testing.T) {
	srv := startTestServer(t, DebugOptions{})
	for _, path := range []string{"/metrics", "/debug/events", "/debug/hist", "/debug/trace"} {
		if code, _ := get(t, srv, path); code != http.StatusNotFound {
			t.Fatalf("GET %s with nil backing: status %d, want 404", path, code)
		}
	}
}

// TestDebugConcurrentScrape hammers every endpoint while the backing
// structures are being written — the -race guard for the live-scrape
// path.
func TestDebugConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	ring := NewRingSink(32)
	hs := NewHistSet()
	hs.Register(reg, "wait")
	tr := NewTracer(1, 32)
	srv := startTestServer(t, DebugOptions{Registry: reg, Events: ring, Hists: hs, Tracer: tr})

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		stages := hs.Stages(3)
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			hs.Total().Record(i % 500)
			stages[int(i%3)].Record(i % 100)
			ring.Emit(Event{Event: EventPointDone, Rep: int(i)})
			tr.Add(span(i))
		}
	}()

	paths := []string{"/metrics", "/debug/vars", "/debug/events", "/debug/hist", "/debug/trace"}
	var readers sync.WaitGroup
	for _, p := range paths {
		for w := 0; w < 2; w++ {
			readers.Add(1)
			go func(path string) {
				defer readers.Done()
				for i := 0; i < 20; i++ {
					code, body := get(t, srv, path)
					if code != http.StatusOK {
						t.Errorf("GET %s: status %d", path, code)
						return
					}
					if path == "/debug/hist" {
						var v map[string]any
						if err := json.Unmarshal([]byte(body), &v); err != nil {
							t.Errorf("GET %s: malformed JSON under concurrency: %v", path, err)
							return
						}
					}
				}
			}(p)
		}
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}
