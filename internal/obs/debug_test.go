package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func startTestServer(t *testing.T, opts DebugOptions) *DebugServer {
	t.Helper()
	srv, err := StartDebugServer("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, srv *DebugServer, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + srv.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDebugHistEndpoint checks the /debug/hist JSON shape: total plus
// per-stage snapshots with quantiles and sparklines.
func TestDebugHistEndpoint(t *testing.T) {
	hs := NewHistSet()
	hs.Total().Record(10)
	hs.Total().Record(200)
	st := hs.Stages(2)
	for v := int64(0); v < 50; v++ {
		st[0].Record(v)
		st[1].Record(v * 3)
	}
	srv := startTestServer(t, DebugOptions{Hists: hs})

	code, body := get(t, srv, "/debug/hist")
	if code != http.StatusOK {
		t.Fatalf("/debug/hist status %d", code)
	}
	var resp struct {
		Total struct {
			HistSnapshot
			Spark string `json:"spark"`
		} `json:"total"`
		Stages []struct {
			HistSnapshot
			Spark string `json:"spark"`
		} `json:"stages"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/debug/hist not JSON: %v\n%s", err, body)
	}
	if resp.Total.Count != 2 || resp.Total.Max != 200 {
		t.Fatalf("total snapshot wrong: %+v", resp.Total)
	}
	if len(resp.Stages) != 2 {
		t.Fatalf("stages %d, want 2", len(resp.Stages))
	}
	if resp.Stages[0].Count != 50 || resp.Stages[0].P50 != 24 {
		t.Fatalf("stage 1 snapshot wrong: %+v", resp.Stages[0])
	}
	if resp.Stages[1].Spark == "" {
		t.Fatalf("stage 2 sparkline missing")
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	tr := NewTracer(1, 8)
	tr.Add(span(0))
	srv := startTestServer(t, DebugOptions{Tracer: tr})
	code, body := get(t, srv, "/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status %d", code)
	}
	var s Span
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &s); err != nil {
		t.Fatalf("/debug/trace not JSONL: %v\n%s", err, body)
	}
	if s.Msg != 0 || len(s.Stages) != 2 {
		t.Fatalf("span round-trip wrong: %+v", s)
	}
}

// TestDebugEndpointsAbsent: unconfigured surfaces must 404, not serve
// empty data that looks real.
func TestDebugEndpointsAbsent(t *testing.T) {
	srv := startTestServer(t, DebugOptions{})
	for _, path := range []string{"/metrics", "/debug/events", "/debug/hist", "/debug/trace", "/debug/ts"} {
		if code, _ := get(t, srv, path); code != http.StatusNotFound {
			t.Fatalf("GET %s with nil backing: status %d, want 404", path, code)
		}
	}
}

// TestMetricsOpenMetricsDefault: /metrics serves OpenMetrics by default
// (correct content type, parseable, histogram family from live Hist
// data) with ?format=legacy preserving the old text.
func TestMetricsOpenMetricsDefault(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("points.done").Add(5)
	hs := NewHistSet()
	hs.Total().Record(3)
	hs.Total().Record(7)
	srv := startTestServer(t, DebugOptions{Registry: reg, Hists: hs})

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("content type %q, want application/openmetrics-text", ct)
	}
	fams, err := ParseOpenMetrics(resp.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid OpenMetrics: %v", err)
	}
	var sawHist bool
	for _, f := range fams {
		if f.Name == "banyan_wait_cycles" && f.Type == "histogram" {
			sawHist = true
		}
	}
	if !sawHist {
		t.Fatal("live histogram family missing from /metrics")
	}

	if code, body := get(t, srv, "/metrics?format=legacy"); code != http.StatusOK || !strings.Contains(body, "points.done 5\n") {
		t.Fatalf("legacy format broken: %d\n%s", code, body)
	}
}

// TestDebugHistParamValidation: out-of-range or non-numeric ?width= is
// a 400, not a silently clamped render.
func TestDebugHistParamValidation(t *testing.T) {
	hs := NewHistSet()
	hs.Total().Record(1)
	srv := startTestServer(t, DebugOptions{Hists: hs})
	for _, q := range []string{"?width=4", "?width=9999", "?width=abc", "?width=-1"} {
		if code, _ := get(t, srv, "/debug/hist"+q); code != http.StatusBadRequest {
			t.Fatalf("GET /debug/hist%s: status %d, want 400", q, code)
		}
	}
	if code, _ := get(t, srv, "/debug/hist?width=16"); code != http.StatusOK {
		t.Fatal("valid width rejected")
	}
}

// TestDebugTSEndpoint drives /debug/ts: JSON with null gaps, the spark
// format, name filtering, and 400/404 on bad parameters.
func TestDebugTSEndpoint(t *testing.T) {
	reg := NewRegistry()
	var v float64
	reg.Func("x", func() float64 { return v })
	tsdb := NewTSDB(reg, 32)
	clk := &tsdbClock{t: time.UnixMilli(0)}
	tsdb.Now = clk.now
	for i := 0; i < 6; i++ {
		v = float64(i)
		tsdb.Sample()
		clk.tick()
	}
	srv := startTestServer(t, DebugOptions{TSDB: tsdb})

	code, body := get(t, srv, "/debug/ts?buckets=5")
	if code != http.StatusOK {
		t.Fatalf("/debug/ts status %d", code)
	}
	var series []struct {
		Name   string  `json:"name"`
		Times  []int64 `json:"unix_ms"`
		Values []any   `json:"values"`
	}
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/debug/ts not JSON: %v\n%s", err, body)
	}
	if len(series) != 1 || series[0].Name != "x" || len(series[0].Values) != 5 {
		t.Fatalf("series shape wrong: %+v", series)
	}

	if code, body := get(t, srv, "/debug/ts?format=spark&name=x"); code != http.StatusOK || !strings.Contains(body, "x") {
		t.Fatalf("spark format broken: %d\n%s", code, body)
	}
	if code, _ := get(t, srv, "/debug/ts?name=nope"); code != http.StatusNotFound {
		t.Fatal("unknown series must 404")
	}
	for _, q := range []string{"?buckets=0", "?buckets=99999", "?buckets=x", "?window=nope", "?window=-5s", "?window=48h", "?format=spark&width=2"} {
		if code, _ := get(t, srv, "/debug/ts"+q); code != http.StatusBadRequest {
			t.Fatalf("GET /debug/ts%s: status %d, want 400", q, code)
		}
	}
}

// TestDebugConcurrentScrape hammers every endpoint while the backing
// structures are being written — the -race guard for the live-scrape
// path.
func TestDebugConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	ring := NewRingSink(32)
	hs := NewHistSet()
	hs.Register(reg, "wait")
	tr := NewTracer(1, 32)
	srv := startTestServer(t, DebugOptions{Registry: reg, Events: ring, Hists: hs, Tracer: tr})

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		stages := hs.Stages(3)
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			hs.Total().Record(i % 500)
			stages[int(i%3)].Record(i % 100)
			ring.Emit(Event{Event: EventPointDone, Rep: int(i)})
			tr.Add(span(i))
		}
	}()

	paths := []string{"/metrics", "/debug/vars", "/debug/events", "/debug/hist", "/debug/trace"}
	var readers sync.WaitGroup
	for _, p := range paths {
		for w := 0; w < 2; w++ {
			readers.Add(1)
			go func(path string) {
				defer readers.Done()
				for i := 0; i < 20; i++ {
					code, body := get(t, srv, path)
					if code != http.StatusOK {
						t.Errorf("GET %s: status %d", path, code)
						return
					}
					if path == "/debug/hist" {
						var v map[string]any
						if err := json.Unmarshal([]byte(body), &v); err != nil {
							t.Errorf("GET %s: malformed JSON under concurrency: %v", path, err)
							return
						}
					}
				}
			}(p)
		}
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}

// TestDebugHistSwitches checks the /debug/hist "switches" section: with
// a probe carrying graph-engine per-switch telemetry the endpoint
// reports high-water marks, blocked cycles, and saturation verdicts;
// without one the section is absent entirely.
func TestDebugHistSwitches(t *testing.T) {
	hs := NewHistSet()
	hs.Total().Record(1)
	probe := NewSimProbe()
	probe.Record(RunSample{
		SwitchHW:      [][]int64{{40, 3}, {1, 0}},
		SwitchBlocked: [][]int64{{0, 7}, {0, 0}},
		BlockedCycles: 7,
	})
	srv := startTestServer(t, DebugOptions{Hists: hs, Probe: probe})

	code, body := get(t, srv, "/debug/hist")
	if code != http.StatusOK {
		t.Fatalf("/debug/hist status %d", code)
	}
	var resp struct {
		Switches []struct {
			Stage     int   `json:"stage"`
			Switch    int   `json:"switch"`
			HighWater int64 `json:"high_water"`
			Blocked   int64 `json:"blocked"`
			Saturated bool  `json:"saturated"`
		} `json:"switches"`
		BlockedCycles int64 `json:"blocked_cycles"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/debug/hist not JSON: %v\n%s", err, body)
	}
	if len(resp.Switches) != 4 || resp.BlockedCycles != 7 {
		t.Fatalf("switch section wrong: %+v", resp)
	}
	// Switch (1,0): high water 40 ≥ default depth 32 → saturated.
	// Switch (1,1): blocked cycles 7 → saturated despite low backlog.
	// Stage 2 switches: idle → not saturated.
	want := []struct {
		sat bool
		hw  int64
	}{{true, 40}, {true, 3}, {false, 1}, {false, 0}}
	for i, sw := range resp.Switches {
		if sw.Saturated != want[i].sat || sw.HighWater != want[i].hw {
			t.Fatalf("switch %d verdict wrong: %+v", i, sw)
		}
	}

	// Without a probe the section must not appear at all.
	bare := startTestServer(t, DebugOptions{Hists: hs})
	_, body = get(t, bare, "/debug/hist")
	if strings.Contains(body, "switches") {
		t.Fatalf("probe-less /debug/hist leaked a switches section:\n%s", body)
	}
}
