package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// tsdbClock is a deterministic Now hook advancing one second per
// Sample.
type tsdbClock struct {
	t time.Time
}

func (c *tsdbClock) now() time.Time { return c.t }
func (c *tsdbClock) tick()          { c.t = c.t.Add(time.Second) }

// TestTSDBDownsample: raw samples assigned to equal-width buckets,
// NaN-aware means, bucket-end timestamps.
func TestTSDBDownsample(t *testing.T) {
	reg := NewRegistry()
	var v float64
	reg.Func("x", func() float64 { return v })
	ts := NewTSDB(reg, 16)
	clk := &tsdbClock{t: time.UnixMilli(0)}
	ts.Now = clk.now
	for i := 0; i < 8; i++ {
		v = float64(i)
		ts.Sample()
		clk.tick()
	}
	if ts.Len() != 8 {
		t.Fatalf("Len %d, want 8", ts.Len())
	}
	pts := ts.Query("x", 0, 7)
	if len(pts) != 7 {
		t.Fatalf("got %d buckets, want 7", len(pts))
	}
	// Samples at 0s..7s with values 0..7: the first bucket holds {0,1},
	// the rest one sample each.
	if pts[0].Value != 0.5 {
		t.Fatalf("bucket 0 mean %v, want 0.5", pts[0].Value)
	}
	if pts[6].Value != 7 {
		t.Fatalf("last bucket %v, want 7", pts[6].Value)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].UnixMilli <= pts[i-1].UnixMilli {
			t.Fatalf("bucket timestamps not increasing: %v", pts)
		}
	}
}

// TestTSDBWindow: the window cuts from the newest sample backwards.
func TestTSDBWindow(t *testing.T) {
	reg := NewRegistry()
	var v float64
	reg.Func("x", func() float64 { return v })
	ts := NewTSDB(reg, 16)
	clk := &tsdbClock{t: time.UnixMilli(0)}
	ts.Now = clk.now
	for i := 0; i < 8; i++ {
		v = float64(i)
		ts.Sample()
		clk.tick()
	}
	pts := ts.Query("x", 3*time.Second, 3)
	if len(pts) != 3 {
		t.Fatalf("got %d buckets, want 3", len(pts))
	}
	// Window [4s,7s]: values {4,5}, {6}, {7}.
	want := []float64{4.5, 6, 7}
	for i, w := range want {
		if pts[i].Value != w {
			t.Fatalf("bucket %d = %v, want %v (%v)", i, pts[i].Value, w, pts)
		}
	}
}

// TestTSDBRingWrap: once capN samples are retained, the oldest fall
// off and queries cover only the survivors.
func TestTSDBRingWrap(t *testing.T) {
	reg := NewRegistry()
	var v float64
	reg.Func("x", func() float64 { return v })
	ts := NewTSDB(reg, 4)
	clk := &tsdbClock{t: time.UnixMilli(0)}
	ts.Now = clk.now
	for i := 0; i < 6; i++ {
		v = float64(i)
		ts.Sample()
		clk.tick()
	}
	if ts.Len() != 4 {
		t.Fatalf("Len %d, want cap 4", ts.Len())
	}
	pts := ts.Query("x", 0, 3)
	want := []float64{2.5, 4, 5} // survivors are values 2..5 at 2s..5s
	for i, w := range want {
		if pts[i].Value != w {
			t.Fatalf("bucket %d = %v, want %v (%v)", i, pts[i].Value, w, pts)
		}
	}
}

// TestTSDBLateSeriesNaN: a series first seen mid-run has an unknown —
// not zero — past, and the gap must survive downsampling as NaN.
func TestTSDBLateSeriesNaN(t *testing.T) {
	reg := NewRegistry()
	reg.Func("early", func() float64 { return 1 })
	ts := NewTSDB(reg, 16)
	clk := &tsdbClock{t: time.UnixMilli(0)}
	ts.Now = clk.now
	ts.Sample()
	clk.tick()
	ts.Sample()
	clk.tick()
	reg.Func("late", func() float64 { return 42 })
	ts.Sample()
	clk.tick()
	ts.Sample()

	pts := ts.Query("late", 0, 3)
	if len(pts) != 3 {
		t.Fatalf("got %d buckets, want 3 (%v)", len(pts), pts)
	}
	if !math.IsNaN(pts[0].Value) {
		t.Fatalf("late series' unknown past = %v, want NaN", pts[0].Value)
	}
	if pts[2].Value != 42 {
		t.Fatalf("late series' present = %v, want 42", pts[2].Value)
	}
	names := ts.SeriesNames()
	if len(names) != 2 || names[0] != "early" || names[1] != "late" {
		t.Fatalf("SeriesNames = %v", names)
	}
}

// TestTSDBQueryUnknown: unknown series and empty stores answer nil.
func TestTSDBQueryUnknown(t *testing.T) {
	reg := NewRegistry()
	reg.Func("x", func() float64 { return 1 })
	ts := NewTSDB(reg, 4)
	if pts := ts.Query("x", 0, 8); pts != nil {
		t.Fatalf("query before any sample: %v, want nil", pts)
	}
	ts.Sample()
	if pts := ts.Query("nope", 0, 8); pts != nil {
		t.Fatalf("unknown series: %v, want nil", pts)
	}
	// A single retained instant collapses to one point.
	if pts := ts.Query("x", 0, 8); len(pts) != 1 || pts[0].Value != 1 {
		t.Fatalf("single-instant query: %v", pts)
	}
}

// TestTSDBStartStop: the background sampler runs, stops cleanly, and
// both Start and Stop are idempotent.
func TestTSDBStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Func("x", func() float64 { return 1 })
	ts := NewTSDB(reg, 64)
	ts.Start(time.Millisecond)
	ts.Start(time.Millisecond) // no-op, must not double-sample or leak
	deadline := time.After(2 * time.Second)
	for ts.Len() < 3 {
		select {
		case <-deadline:
			t.Fatal("sampler never ran")
		case <-time.After(5 * time.Millisecond):
		}
	}
	ts.Stop()
	n := ts.Len()
	time.Sleep(20 * time.Millisecond)
	if ts.Len() != n {
		t.Fatal("sampler still running after Stop")
	}
	ts.Stop() // idempotent
	ts.Start(time.Millisecond)
	ts.Stop()
}

// TestTSDBConcurrent exercises Sample/Query/SeriesNames concurrently —
// the -race guard for the /debug/ts scrape path.
func TestTSDBConcurrent(t *testing.T) {
	reg := NewRegistry()
	var v atomicFloat
	reg.Func("x", func() float64 { return v.load() })
	ts := NewTSDB(reg, 32)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v.store(float64(i))
			ts.Sample()
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ts.Query("x", time.Minute, 16)
				ts.SeriesNames()
				ts.Len()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// atomicFloat is a tiny test helper (sync/atomic has no float64).
type atomicFloat struct {
	mu sync.Mutex
	v  float64
}

func (a *atomicFloat) store(v float64) { a.mu.Lock(); a.v = v; a.mu.Unlock() }
func (a *atomicFloat) load() float64   { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
