package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"banyan/internal/dist"
	"banyan/internal/traffic"
)

// exactQuantile returns the q-th quantile of a sample under the same
// rank convention the Hist uses: the ⌈q·N⌉-th smallest value.
func exactQuantile(sorted []int64, q float64) int64 {
	r := int(math.Ceil(q * float64(len(sorted))))
	if r < 1 {
		r = 1
	}
	if r > len(sorted) {
		r = len(sorted)
	}
	return sorted[r-1]
}

func TestHistBucketEdges(t *testing.T) {
	// Every value must land inside its own bucket, and bucket edges must
	// tile the axis without gaps or overlaps.
	values := []int64{0, 1, 2, 127, 128, 129, 255, 256, 257, 1000, 1 << 20, 1<<20 + 1, 1<<40 - 1, 1 << 40, math.MaxInt64}
	for _, v := range values {
		idx := histBucketIndex(v)
		if lo, hi := histBucketLo(idx), histBucketHi(idx); v < lo || v > hi {
			t.Fatalf("value %d maps to bucket %d = [%d, %d]", v, idx, lo, hi)
		}
	}
	for idx := 1; idx < histBuckets; idx++ {
		if histBucketLo(idx) != histBucketHi(idx-1)+1 {
			t.Fatalf("gap between buckets %d and %d: hi=%d lo=%d",
				idx-1, idx, histBucketHi(idx-1), histBucketLo(idx))
		}
	}
	// The documented relative error bound: bucket width ≤ lo/64 in the
	// log-linear region.
	for idx := histLinearMax; idx < histBuckets; idx++ {
		lo, hi := histBucketLo(idx), histBucketHi(idx)
		if w := float64(hi - lo + 1); w > float64(lo)*HistRelError+1e-9 {
			t.Fatalf("bucket %d = [%d, %d] wider than %g·lo", idx, lo, hi, HistRelError)
		}
	}
	if histBucketIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

// TestHistQuantileBounds draws samples from the paper's traffic laws —
// geometric service, constant service, bulk arrivals — at two scales
// (the exact unit-bucket region and, scaled up, the log-linear region)
// and holds every Hist quantile to the documented error bound against
// the exact sorted-sample quantile.
func TestHistQuantileBounds(t *testing.T) {
	geom, err := traffic.GeomService(0.5, 512)
	if err != nil {
		t.Fatal(err)
	}
	konst, err := traffic.ConstService(7)
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := traffic.Bulk(4, 4, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		pmf   dist.PMF
		scale int64
	}{
		{"geometric", geom.PMF(), 1},
		{"geometric-scaled", geom.PMF(), 57},
		{"constant", konst.PMF(), 1},
		{"constant-scaled", konst.PMF(), 905},
		{"bulk-arrivals", bulk.PMF(), 1},
		{"bulk-arrivals-scaled", bulk.PMF(), 3001},
	}
	qs := []float64{0.1, 0.5, 0.9, 0.99, 0.999, 1.0}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			smp := dist.NewSampler(tc.pmf)
			var h Hist
			samples := make([]int64, 20000)
			var sum int64
			for i := range samples {
				v := int64(smp.Sample(rng.Float64(), rng.Float64())) * tc.scale
				samples[i] = v
				sum += v
				h.Record(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			if h.N() != int64(len(samples)) {
				t.Fatalf("N = %d, want %d", h.N(), len(samples))
			}
			if got, want := h.Mean(), float64(sum)/float64(len(samples)); math.Abs(got-want) > 1e-9 {
				t.Fatalf("mean %g, want exact %g", got, want)
			}
			if h.Max() != samples[len(samples)-1] {
				t.Fatalf("max %d, want exact %d", h.Max(), samples[len(samples)-1])
			}
			got := h.Quantiles(qs...)
			for i, q := range qs {
				exact := exactQuantile(samples, q)
				// Quantiles report the bucket's upper edge: never below
				// the exact value, and above it by at most the relative
				// quantization error (exact below histLinearMax).
				if got[i] < float64(exact) {
					t.Fatalf("q=%g: %g below exact %d", q, got[i], exact)
				}
				bound := float64(exact) * (1 + HistRelError)
				if exact < histLinearMax {
					bound = float64(exact)
				}
				if got[i] > bound+1e-9 {
					t.Fatalf("q=%g: %g exceeds bound %g (exact %d)", q, got[i], bound, exact)
				}
			}
		})
	}
}

func TestHistMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fill := func(n int) *Hist {
		h := &Hist{}
		for i := 0; i < n; i++ {
			h.Record(int64(rng.Intn(100000)))
		}
		return h
	}
	a, b, c := fill(1000), fill(500), fill(2000)

	left := &Hist{} // (a ⊕ b) ⊕ c
	left.Merge(a)
	left.Merge(b)
	lab := &Hist{}
	lab.Merge(left)
	lab.Merge(c)

	bc := &Hist{} // a ⊕ (b ⊕ c)
	bc.Merge(b)
	bc.Merge(c)
	right := &Hist{}
	right.Merge(a)
	right.Merge(bc)

	sa, sb := lab.Snapshot(), right.Snapshot()
	if sa.Count != sb.Count || sa.Mean != sb.Mean || sa.Max != sb.Max {
		t.Fatalf("merge not associative: %+v vs %+v", sa, sb)
	}
	if len(sa.Buckets) != len(sb.Buckets) {
		t.Fatalf("bucket sets differ: %d vs %d", len(sa.Buckets), len(sb.Buckets))
	}
	for i := range sa.Buckets {
		if sa.Buckets[i] != sb.Buckets[i] {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, sa.Buckets[i], sb.Buckets[i])
		}
	}
	if sa.Count != 3500 {
		t.Fatalf("merged count %d, want 3500", sa.Count)
	}
	left.Merge(nil) // must not panic
}

func TestHistEdgeCases(t *testing.T) {
	var empty Hist
	if empty.N() != 0 || empty.Mean() != 0 || empty.Max() != 0 {
		t.Fatalf("empty hist not zero: %+v", empty.Snapshot())
	}
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile %g, want 0", q)
	}
	if s := empty.Snapshot(); len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot has buckets: %+v", s.Buckets)
	}

	var one Hist
	one.Record(42)
	for _, q := range []float64{0.001, 0.5, 0.999, 1} {
		if got := one.Quantile(q); got != 42 {
			t.Fatalf("single-value quantile(%g) = %g, want 42", q, got)
		}
	}
	s := one.Snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0] != (HistBucket{Lo: 42, Hi: 42, Count: 1}) {
		t.Fatalf("single-value snapshot: %+v", s.Buckets)
	}

	var neg Hist
	neg.Record(-3)
	if neg.N() != 1 || neg.Quantile(0.5) != 0 {
		t.Fatalf("negative record must clamp to 0: %+v", neg.Snapshot())
	}
}

func TestHistConcurrent(t *testing.T) {
	var h Hist
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(int64(rng.Intn(1 << 20)))
				if i%1000 == 0 {
					h.Quantile(0.9) // concurrent reads must not race
					h.Snapshot()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if h.N() != workers*per {
		t.Fatalf("lost records under concurrency: %d of %d", h.N(), workers*per)
	}
	var total int64
	for _, b := range h.Snapshot().Buckets {
		total += b.Count
	}
	if total != workers*per {
		t.Fatalf("bucket counts sum to %d, want %d", total, workers*per)
	}
}

func TestHistRegister(t *testing.T) {
	reg := NewRegistry()
	var h Hist
	h.Record(10)
	h.Record(20)
	h.Register(reg, "wait.total")
	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"wait.total.count 2", "wait.total.mean 15", "wait.total.max 20", "wait.total.p50 10", "wait.total.p99 20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestHistSet(t *testing.T) {
	reg := NewRegistry()
	s := NewHistSet()
	s.Register(reg, "")
	s.Total().Record(5)
	st := s.Stages(2)
	if len(st) != 2 || s.NumStages() != 2 {
		t.Fatalf("Stages(2) returned %d hists, NumStages %d", len(st), s.NumStages())
	}
	st[0].Record(1)
	st[1].Record(3)
	// Growing again must keep the same histograms and register the new
	// stage lazily.
	st2 := s.Stages(3)
	if st2[0] != st[0] || st2[1] != st[1] {
		t.Fatalf("Stages must return stable per-stage histograms")
	}
	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"wait.total.count 1", "wait.stage1.p50 1", "wait.stage2.p50 3", "wait.stage3.count 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("hist-set metrics missing %q:\n%s", want, out)
		}
	}
}
