package obs

import (
	"fmt"
	"io"
	"sync"
)

// RunSample is the end-of-run flush of one simulation's internal
// counters. The engines accumulate these locally (plain ints, no
// synchronization on the hot path) and hand them over once.
type RunSample struct {
	// Cycles not yet reported through AddCycles.
	Cycles int64
	// BlockPulls counts schedule blocks pulled from the arrival source.
	BlockPulls int64
	// FreeListHits / SlotAllocs split message-slot allocations into
	// free-list reuses and fresh appends; their ratio is the free-list
	// hit rate (how well slot recycling bounds memory).
	FreeListHits int64
	SlotAllocs   int64
	// Messages measured by the run.
	Messages int64
	// MaxInFlight is the run's in-network backlog high-water mark.
	MaxInFlight int64
	// StageHighWater[i] is the run's high-water mark of messages
	// queued at stage i+1.
	StageHighWater []int64
	// SwitchHW[i][s] / SwitchBlocked[i][s] are the graph engine's
	// per-switch backlog high-water marks and blocked-cycle counts
	// (stage i+1, switch s); nil for the stage-model engines.
	SwitchHW      [][]int64
	SwitchBlocked [][]int64
	// BlockedCycles is the run's total count of (port, cycle) pairs the
	// graph engine spent blocked on a full downstream buffer.
	BlockedCycles int64
}

// SimProbe aggregates engine instrumentation across simulation runs.
// Engines attached to one probe (simnet.Config.Probe) flush a
// RunSample each as they finish, plus periodic AddCycles ticks so the
// cycles/sec meter tracks live throughput. Safe for concurrent use;
// the zero value is ready.
type SimProbe struct {
	cyclesMeter Meter

	// Hists, when non-nil, collects live waiting-time histograms: one
	// total-wait histogram plus one per stage, aggregated across every
	// run attached to this probe. Engines feed it only for measured
	// messages, so its distributions match the reported statistics.
	Hists *HistSet
	// Tracer, when non-nil, samples per-message trace spans from the
	// attached runs (deterministically, by measured-message ordinal —
	// never by consuming simulation randomness).
	Tracer *Tracer

	mu            sync.Mutex
	runs          int64
	cycles        int64
	blockPulls    int64
	freeHits      int64
	slotAllocs    int64
	messages      int64
	maxInFlight   int64
	stageHW       []int64
	switchHW      [][]int64
	switchBlocked [][]int64
	blockedCycles int64
}

// NewSimProbe returns an empty probe.
func NewSimProbe() *SimProbe { return &SimProbe{} }

// AddCycles reports n simulated cycles. Engines call it on their
// context-poll cadence (every ~1024 cycles), which keeps the rate
// meter live at negligible cost.
func (p *SimProbe) AddCycles(n int64) {
	p.cyclesMeter.Add(n)
	p.mu.Lock()
	p.cycles += n
	p.mu.Unlock()
}

// Record flushes one finished run's sample into the aggregate.
func (p *SimProbe) Record(s RunSample) {
	if s.Cycles > 0 {
		p.cyclesMeter.Add(s.Cycles)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.runs++
	p.cycles += s.Cycles
	p.blockPulls += s.BlockPulls
	p.freeHits += s.FreeListHits
	p.slotAllocs += s.SlotAllocs
	p.messages += s.Messages
	if s.MaxInFlight > p.maxInFlight {
		p.maxInFlight = s.MaxInFlight
	}
	for len(p.stageHW) < len(s.StageHighWater) {
		p.stageHW = append(p.stageHW, 0)
	}
	for i, hw := range s.StageHighWater {
		if hw > p.stageHW[i] {
			p.stageHW[i] = hw
		}
	}
	p.blockedCycles += s.BlockedCycles
	for len(p.switchHW) < len(s.SwitchHW) {
		p.switchHW = append(p.switchHW, nil)
		p.switchBlocked = append(p.switchBlocked, nil)
	}
	for i, hws := range s.SwitchHW {
		for len(p.switchHW[i]) < len(hws) {
			p.switchHW[i] = append(p.switchHW[i], 0)
			p.switchBlocked[i] = append(p.switchBlocked[i], 0)
		}
		for j, hw := range hws {
			if hw > p.switchHW[i][j] {
				p.switchHW[i][j] = hw
			}
		}
		if i < len(s.SwitchBlocked) {
			for j, b := range s.SwitchBlocked[i] {
				p.switchBlocked[i][j] += b
			}
		}
	}
}

// ProbeSnapshot is a point-in-time read of a SimProbe.
type ProbeSnapshot struct {
	Runs           int64
	Cycles         int64
	CyclesPerSec   float64 // windowed, see Meter.Rate
	BlockPulls     int64
	FreeListHits   int64
	SlotAllocs     int64
	FreeListRate   float64 // FreeListHits / (FreeListHits + SlotAllocs)
	Messages       int64
	MaxInFlight    int64
	StageHighWater []int64
	// SwitchHighWater / SwitchBlocked carry the graph engine's
	// per-switch aggregates (max and sum across runs respectively);
	// empty when no graph run flushed into this probe. BlockedCycles is
	// the summed blocked-(port, cycle) count.
	SwitchHighWater [][]int64
	SwitchBlocked   [][]int64
	BlockedCycles   int64
}

// Snapshot returns the current aggregate.
func (p *SimProbe) Snapshot() ProbeSnapshot {
	rate := p.cyclesMeter.Rate()
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProbeSnapshot{
		Runs:           p.runs,
		Cycles:         p.cycles,
		CyclesPerSec:   rate,
		BlockPulls:     p.blockPulls,
		FreeListHits:   p.freeHits,
		SlotAllocs:     p.slotAllocs,
		Messages:       p.messages,
		MaxInFlight:    p.maxInFlight,
		StageHighWater: append([]int64(nil), p.stageHW...),
		BlockedCycles:  p.blockedCycles,
	}
	for i := range p.switchHW {
		s.SwitchHighWater = append(s.SwitchHighWater, append([]int64(nil), p.switchHW[i]...))
		s.SwitchBlocked = append(s.SwitchBlocked, append([]int64(nil), p.switchBlocked[i]...))
	}
	if n := s.FreeListHits + s.SlotAllocs; n > 0 {
		s.FreeListRate = float64(s.FreeListHits) / float64(n)
	}
	return s
}

// Register exposes the probe's scalars in a metrics registry under the
// sim.* namespace (per-stage high-water marks are reported as their
// maximum; the full vector is available via Snapshot and WriteSummary).
func (p *SimProbe) Register(reg *Registry) {
	reg.Func("sim.runs", func() float64 { return float64(p.Snapshot().Runs) })
	reg.Func("sim.cycles", func() float64 { return float64(p.Snapshot().Cycles) })
	reg.Func("sim.cycles.per_sec", func() float64 { return p.Snapshot().CyclesPerSec })
	reg.Func("sim.block_pulls", func() float64 { return float64(p.Snapshot().BlockPulls) })
	reg.Func("sim.free_list_hits", func() float64 { return float64(p.Snapshot().FreeListHits) })
	reg.Func("sim.slot_allocs", func() float64 { return float64(p.Snapshot().SlotAllocs) })
	reg.Func("sim.free_list_hit_rate", func() float64 { return p.Snapshot().FreeListRate })
	reg.Func("sim.messages", func() float64 { return float64(p.Snapshot().Messages) })
	reg.Func("sim.max_in_flight", func() float64 { return float64(p.Snapshot().MaxInFlight) })
	reg.Func("sim.blocked_cycles", func() float64 { return float64(p.Snapshot().BlockedCycles) })
	reg.Func("sim.stage_high_water_max", func() float64 {
		var m int64
		for _, hw := range p.Snapshot().StageHighWater {
			if hw > m {
				m = hw
			}
		}
		return float64(m)
	})
}

// WriteSummary renders a human-readable digest of the probe — the
// -sim-stats exit report of the sweep binaries.
func (p *SimProbe) WriteSummary(w io.Writer) error {
	s := p.Snapshot()
	if _, err := fmt.Fprintf(w,
		"sim stats: %d runs, %d cycles, %d messages, %d block pulls\n"+
			"sim stats: free-list hit rate %.1f%% (%d hits / %d allocs), in-flight high water %d\n",
		s.Runs, s.Cycles, s.Messages, s.BlockPulls,
		100*s.FreeListRate, s.FreeListHits, s.SlotAllocs, s.MaxInFlight); err != nil {
		return err
	}
	if len(s.StageHighWater) > 0 {
		if _, err := fmt.Fprintf(w, "sim stats: per-stage backlog high water %v\n", s.StageHighWater); err != nil {
			return err
		}
	}
	return nil
}
