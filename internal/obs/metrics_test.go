package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 800 {
		t.Fatalf("counter %d, want 800", c.Load())
	}
	if g.Load() != 0 {
		t.Fatalf("gauge settled at %d, want 0", g.Load())
	}
	if g.High() < 1 || g.High() > 8 {
		t.Fatalf("gauge high water %d out of [1,8]", g.High())
	}
	g.Set(42)
	if g.Load() != 42 || g.High() != 42 {
		t.Fatalf("set: load %d high %d", g.Load(), g.High())
	}
}

// fakeClock steps a Meter through synthetic seconds.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestMeterWindowedRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	m := &Meter{Now: clk.now}
	if m.Rate() != 0 {
		t.Fatal("empty meter must rate 0")
	}
	// 3 seconds at 100/s.
	for s := 0; s < 3; s++ {
		m.Add(100)
		clk.advance(time.Second)
	}
	if got := m.Rate(); got != 100 {
		t.Fatalf("steady rate %g, want 100", got)
	}
	if m.Total() != 300 {
		t.Fatalf("total %d, want 300", m.Total())
	}
	// Go idle: the windowed rate decays to zero while the total stays.
	clk.advance((meterWindow + 2) * time.Second)
	if got := m.Rate(); got != 0 {
		t.Fatalf("idle rate %g, want 0", got)
	}
	if m.Total() != 300 {
		t.Fatalf("idle total %d, want 300", m.Total())
	}
	// A new burst is measured over the window, not the whole lifetime —
	// this is the property the old cumulative sweep counters lacked.
	for s := 0; s < meterWindow; s++ {
		m.Add(50)
		clk.advance(time.Second)
	}
	if got := m.Rate(); got != 50 {
		t.Fatalf("post-idle rate %g, want 50", got)
	}
}

func TestRegistryTextAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("points.done")
	g := reg.Gauge("inflight")
	c.Add(7)
	g.Set(3)
	reg.Func("custom.ratio", func() float64 { return 0.5 })

	snap := reg.Snapshot()
	if snap["points.done"] != 7 || snap["inflight"] != 3 || snap["inflight.high"] != 3 || snap["custom.ratio"] != 0.5 {
		t.Fatalf("snapshot %v", snap)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"points.done 7\n", "inflight 3\n", "custom.ratio 0.5\n"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, sb.String())
		}
	}

	// Re-publishing under one expvar name must not panic and must
	// re-point to the newest registry.
	reg.PublishExpvar("obs_test")
	reg2 := NewRegistry()
	reg2.Counter("other").Inc()
	reg2.PublishExpvar("obs_test")
}

func TestSimProbeAggregation(t *testing.T) {
	p := NewSimProbe()
	p.AddCycles(1000)
	p.Record(RunSample{
		Cycles: 24, BlockPulls: 3, FreeListHits: 90, SlotAllocs: 10,
		Messages: 500, MaxInFlight: 40, StageHighWater: []int64{4, 7, 2},
	})
	p.Record(RunSample{
		Cycles: 512, BlockPulls: 1, FreeListHits: 10, SlotAllocs: 90,
		Messages: 100, MaxInFlight: 15, StageHighWater: []int64{9, 1, 3, 8},
	})
	s := p.Snapshot()
	if s.Runs != 2 || s.Cycles != 1536 || s.BlockPulls != 4 || s.Messages != 600 {
		t.Fatalf("aggregate %+v", s)
	}
	if s.FreeListRate != 0.5 {
		t.Fatalf("free-list rate %g, want 0.5", s.FreeListRate)
	}
	if s.MaxInFlight != 40 {
		t.Fatalf("max in flight %d, want 40", s.MaxInFlight)
	}
	want := []int64{9, 7, 3, 8}
	if len(s.StageHighWater) != len(want) {
		t.Fatalf("stage high water %v, want %v", s.StageHighWater, want)
	}
	for i := range want {
		if s.StageHighWater[i] != want[i] {
			t.Fatalf("stage high water %v, want %v", s.StageHighWater, want)
		}
	}

	reg := NewRegistry()
	p.Register(reg)
	snap := reg.Snapshot()
	if snap["sim.runs"] != 2 || snap["sim.stage_high_water_max"] != 9 {
		t.Fatalf("registry view %v", snap)
	}
	var sb strings.Builder
	if err := p.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "free-list hit rate 50.0%") {
		t.Fatalf("summary missing hit rate:\n%s", sb.String())
	}
}
