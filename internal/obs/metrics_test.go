package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 800 {
		t.Fatalf("counter %d, want 800", c.Load())
	}
	if g.Load() != 0 {
		t.Fatalf("gauge settled at %d, want 0", g.Load())
	}
	if g.High() < 1 || g.High() > 8 {
		t.Fatalf("gauge high water %d out of [1,8]", g.High())
	}
	g.Set(42)
	if g.Load() != 42 || g.High() != 42 {
		t.Fatalf("set: load %d high %d", g.Load(), g.High())
	}
}

// fakeClock steps a Meter through synthetic seconds.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestMeterWindowedRate(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	m := &Meter{Now: clk.now}
	if m.Rate() != 0 {
		t.Fatal("empty meter must rate 0")
	}
	// 3 seconds at 100/s.
	for s := 0; s < 3; s++ {
		m.Add(100)
		clk.advance(time.Second)
	}
	if got := m.Rate(); got != 100 {
		t.Fatalf("steady rate %g, want 100", got)
	}
	if m.Total() != 300 {
		t.Fatalf("total %d, want 300", m.Total())
	}
	// Go idle: the windowed rate decays to zero while the total stays.
	clk.advance((meterWindow + 2) * time.Second)
	if got := m.Rate(); got != 0 {
		t.Fatalf("idle rate %g, want 0", got)
	}
	if m.Total() != 300 {
		t.Fatalf("idle total %d, want 300", m.Total())
	}
	// A new burst is measured over the window, not the whole lifetime —
	// this is the property the old cumulative sweep counters lacked.
	for s := 0; s < meterWindow; s++ {
		m.Add(50)
		clk.advance(time.Second)
	}
	if got := m.Rate(); got != 50 {
		t.Fatalf("post-idle rate %g, want 50", got)
	}
}

// TestMeterFirstSecondExcluded pins the two exclusion rules around a
// burst: no rate until a full second of history exists, and the
// in-progress second never extrapolates into the read-out.
func TestMeterFirstSecondExcluded(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2_000_000, 0)}
	m := &Meter{Now: clk.now}
	m.Add(100)
	if got := m.Rate(); got != 0 {
		t.Fatalf("rate within the first second %g, want 0", got)
	}
	clk.advance(500 * time.Millisecond)
	if got := m.Rate(); got != 0 {
		t.Fatalf("rate at +0.5s %g, want 0 (first second incomplete)", got)
	}
	clk.advance(500 * time.Millisecond)
	if got := m.Rate(); got != 100 {
		t.Fatalf("rate after the first complete second %g, want 100", got)
	}
	// A burst in the in-progress second must not move the rate.
	m.Add(9999)
	if got := m.Rate(); got != 100 {
		t.Fatalf("in-progress second leaked into rate: %g, want 100", got)
	}
}

// TestMeterIdleRingWrapStale: after an idle gap of exactly the ring
// size, the current second's bucket index collides with the stale
// burst's — the stale count must not resurface in the rate.
func TestMeterIdleRingWrapStale(t *testing.T) {
	clk := &fakeClock{t: time.Unix(3_000_000, 0)}
	m := &Meter{Now: clk.now}
	ring := int64(meterWindow + 1)
	m.Add(1000)
	// Land on the same ring slot (sec ≡ first mod ring) without any
	// intervening Add to overwrite it.
	clk.advance(time.Duration(ring) * time.Second)
	if got := m.Rate(); got != 0 {
		t.Fatalf("stale wrapped bucket leaked: rate %g, want 0", got)
	}
	// And writing through the collided slot replaces, not accumulates:
	// 50 events in one second of a 10-second window reads 5/s — not
	// 105/s, which is what folding the stale 1000 in would give.
	m.Add(50)
	clk.advance(time.Second)
	if got := m.Rate(); got != 5 {
		t.Fatalf("post-wrap rate %g, want 5 (stale count folded in?)", got)
	}
	if m.Total() != 1050 {
		t.Fatalf("total %d, want 1050", m.Total())
	}
}

// TestMeterConcurrentAddRate hammers Add while reading Rate/Total — the
// -race guard for scrapes racing the hot path.
func TestMeterConcurrentAddRate(t *testing.T) {
	m := &Meter{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					m.Add(1)
				}
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if m.Rate() < 0 || m.Total() < 0 {
					t.Error("negative read-out")
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestRegistryDescribe covers the exposition metadata surface.
func TestRegistryDescribe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c")
	m := reg.Meter("m")
	m.Add(1)
	reg.Gauge("g")
	reg.Describe("g", KindGauge, "a level")
	if reg.Kind("c") != KindCounter || reg.Kind("m") != KindCounter {
		t.Fatal("Counter/Meter not described as counters")
	}
	if reg.Kind("m.per_sec") != KindGauge {
		t.Fatal("derived rate must stay a gauge")
	}
	if reg.Kind("never.seen") != KindGauge {
		t.Fatal("undescribed names must default to gauge")
	}
	if reg.HelpFor("g") != "a level" || reg.HelpFor("c") != "" {
		t.Fatal("help strings wrong")
	}
}

// TestRegistrySnapshotDuringRegistration races Snapshot/Names/WriteText
// against concurrent registration — the scrape-during-startup path.
func TestRegistrySnapshotDuringRegistration(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := "dyn." + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
			reg.Counter(name).Inc()
			reg.Describe(name, KindCounter, "dynamic")
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Snapshot()
				reg.Names()
				var sb strings.Builder
				if err := reg.WriteText(&sb); err != nil {
					t.Error(err)
					return
				}
				if err := WriteOpenMetrics(&sb, reg, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestRegistryTextAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("points.done")
	g := reg.Gauge("inflight")
	c.Add(7)
	g.Set(3)
	reg.Func("custom.ratio", func() float64 { return 0.5 })

	snap := reg.Snapshot()
	if snap["points.done"] != 7 || snap["inflight"] != 3 || snap["inflight.high"] != 3 || snap["custom.ratio"] != 0.5 {
		t.Fatalf("snapshot %v", snap)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"points.done 7\n", "inflight 3\n", "custom.ratio 0.5\n"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, sb.String())
		}
	}

	// Re-publishing under one expvar name must not panic and must
	// re-point to the newest registry.
	reg.PublishExpvar("obs_test")
	reg2 := NewRegistry()
	reg2.Counter("other").Inc()
	reg2.PublishExpvar("obs_test")
}

func TestSimProbeAggregation(t *testing.T) {
	p := NewSimProbe()
	p.AddCycles(1000)
	p.Record(RunSample{
		Cycles: 24, BlockPulls: 3, FreeListHits: 90, SlotAllocs: 10,
		Messages: 500, MaxInFlight: 40, StageHighWater: []int64{4, 7, 2},
	})
	p.Record(RunSample{
		Cycles: 512, BlockPulls: 1, FreeListHits: 10, SlotAllocs: 90,
		Messages: 100, MaxInFlight: 15, StageHighWater: []int64{9, 1, 3, 8},
	})
	s := p.Snapshot()
	if s.Runs != 2 || s.Cycles != 1536 || s.BlockPulls != 4 || s.Messages != 600 {
		t.Fatalf("aggregate %+v", s)
	}
	if s.FreeListRate != 0.5 {
		t.Fatalf("free-list rate %g, want 0.5", s.FreeListRate)
	}
	if s.MaxInFlight != 40 {
		t.Fatalf("max in flight %d, want 40", s.MaxInFlight)
	}
	want := []int64{9, 7, 3, 8}
	if len(s.StageHighWater) != len(want) {
		t.Fatalf("stage high water %v, want %v", s.StageHighWater, want)
	}
	for i := range want {
		if s.StageHighWater[i] != want[i] {
			t.Fatalf("stage high water %v, want %v", s.StageHighWater, want)
		}
	}

	reg := NewRegistry()
	p.Register(reg)
	snap := reg.Snapshot()
	if snap["sim.runs"] != 2 || snap["sim.stage_high_water_max"] != 9 {
		t.Fatalf("registry view %v", snap)
	}
	var sb strings.Builder
	if err := p.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "free-list hit rate 50.0%") {
		t.Fatalf("summary missing hit rate:\n%s", sb.String())
	}
}
