package obs

import (
	"math"
	"strings"
	"testing"
)

// TestOpenMetricsRoundTrip renders a registry with all three read-out
// shapes plus a labelled histogram family and feeds the page back
// through the package's own strict parser — the writer and parser gate
// each other.
func TestOpenMetricsRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("points.done").Add(5)
	g := reg.Gauge("queue.depth")
	g.Set(3)
	reg.Func("eta_seconds", func() float64 { return 12.5 })

	h := &Hist{}
	for v := int64(0); v < 100; v++ {
		h.Record(v % 7)
	}
	fams := []HistFamily{{
		Name: "wait_cycles", Help: "waiting time in cycles",
		Labels: map[string]string{"stage": "total"},
		Hist:   h,
	}}

	var b strings.Builder
	if err := WriteOpenMetrics(&b, reg, fams); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	for _, want := range []string{
		"# TYPE banyan_points_done counter",
		"banyan_points_done_total 5",
		"# TYPE banyan_queue_depth gauge",
		"banyan_queue_depth 3",
		"banyan_eta_seconds 12.5",
		"# TYPE banyan_wait_cycles histogram",
		`banyan_wait_cycles_bucket{le="+Inf",stage="total"} 100`,
		`banyan_wait_cycles_count{stage="total"} 100`,
		"# EOF",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q:\n%s", want, page)
		}
	}

	parsed, err := ParseOpenMetrics(strings.NewReader(page))
	if err != nil {
		t.Fatalf("own page does not parse: %v\n%s", err, page)
	}
	byName := map[string]OMFamily{}
	for _, f := range parsed {
		byName[f.Name] = f
	}
	if f := byName["banyan_points_done"]; f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 5 {
		t.Fatalf("counter family wrong: %+v", f)
	}
	hf, ok := byName["banyan_wait_cycles"]
	if !ok || hf.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", parsed)
	}
	if hf.Help != "waiting time in cycles" {
		t.Fatalf("histogram help lost: %q", hf.Help)
	}
	// _sum must be the exact sum of recorded values.
	var wantSum int64
	for v := int64(0); v < 100; v++ {
		wantSum += v % 7
	}
	for _, s := range hf.Samples {
		if strings.HasSuffix(s.Name, "_sum") && s.Value != float64(wantSum) {
			t.Fatalf("_sum %g, want %d", s.Value, wantSum)
		}
	}
}

// TestOpenMetricsCumulativeBuckets pins the le-bucket contract: bucket
// samples are cumulative in ascending le order and the +Inf bucket
// equals _count.
func TestOpenMetricsCumulativeBuckets(t *testing.T) {
	h := &Hist{}
	h.Record(0)
	h.Record(0)
	h.Record(1)
	h.Record(5)
	var b strings.Builder
	if err := WriteOpenMetrics(&b, nil, []HistFamily{{Name: "w", Hist: h}}); err != nil {
		t.Fatal(err)
	}
	var lastCum float64 = -1
	var inf, count float64
	for _, line := range strings.Split(b.String(), "\n") {
		s, err := parseSampleLine(line)
		if err != nil {
			continue // comments, EOF
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket") && s.Labels["le"] != "+Inf":
			if s.Value < lastCum {
				t.Fatalf("buckets not cumulative: %v after %v", s.Value, lastCum)
			}
			lastCum = s.Value
		case strings.HasSuffix(s.Name, "_bucket"):
			inf = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		}
	}
	if inf != 4 || count != 4 {
		t.Fatalf("+Inf %v / _count %v, want 4", inf, count)
	}
}

// TestOpenMetricsCounterClamp: a read-out described as a counter but
// reading negative (or NaN) must clamp to 0 rather than emit a page any
// validator would reject.
func TestOpenMetricsCounterClamp(t *testing.T) {
	reg := NewRegistry()
	reg.Func("broken", func() float64 { return -3 })
	reg.Describe("broken", KindCounter, "")
	reg.Func("nan", func() float64 { return math.NaN() })
	reg.Describe("nan", KindCounter, "")
	var b strings.Builder
	if err := WriteOpenMetrics(&b, reg, nil); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	if !strings.Contains(page, "banyan_broken_total 0\n") || !strings.Contains(page, "banyan_nan_total 0\n") {
		t.Fatalf("negative/NaN counter not clamped:\n%s", page)
	}
	if _, err := ParseOpenMetrics(strings.NewReader(page)); err != nil {
		t.Fatalf("clamped page does not parse: %v", err)
	}
}

// TestOMNameSanitize: registry names with dots and other separators map
// to one predictable family name.
func TestOMNameSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"sweep.points.done":  "banyan_sweep_points_done",
		"wait.total.p99":     "banyan_wait_total_p99",
		"a-b c/d":            "banyan_a_b_c_d",
		"already_underscore": "banyan_already_underscore",
	} {
		if got := omName(in); got != want {
			t.Errorf("omName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestParseOpenMetricsRejects drives the validator through the
// structural violations CI relies on it to catch.
func TestParseOpenMetricsRejects(t *testing.T) {
	cases := map[string]string{
		"missing EOF":           "# TYPE a gauge\na 1\n",
		"content after EOF":     "# TYPE a gauge\na 1\n# EOF\na 2\n",
		"empty line":            "# TYPE a gauge\n\na 1\n# EOF\n",
		"undeclared family":     "a 1\n# EOF\n",
		"wrong suffix for type": "# TYPE a counter\na 1\n# EOF\n",
		"negative counter":      "# TYPE a counter\na_total -1\n# EOF\n",
		"duplicate TYPE":        "# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n",
		"bad label name":        "# TYPE a gauge\na{0bad=\"x\"} 1\n# EOF\n",
		"unquoted label value":  "# TYPE a gauge\na{l=x} 1\n# EOF\n",
		"duplicate label":       "# TYPE a gauge\na{l=\"x\",l=\"y\"} 1\n# EOF\n",
		"timestamp rejected":    "# TYPE a gauge\na 1 1234\n# EOF\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n# EOF\n",
		"le out of order": "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\n# EOF\n",
		"missing +Inf bucket": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n# EOF\n",
		"count != +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n# EOF\n",
		"HELP before TYPE": "# HELP a text\n# TYPE a gauge\na 1\n# EOF\n",
	}
	for name, page := range cases {
		if _, err := ParseOpenMetrics(strings.NewReader(page)); err == nil {
			t.Errorf("%s: parser accepted invalid page:\n%s", name, page)
		}
	}

	// And a well-formed page with every feature passes.
	good := "# TYPE a gauge\n# HELP a a gauge\na{host=\"x\"} 1.5\n" +
		"# TYPE c counter\nc_total 10\n" +
		"# TYPE h histogram\n" +
		"h_bucket{le=\"1\",stage=\"1\"} 1\nh_bucket{le=\"+Inf\",stage=\"1\"} 2\n" +
		"h_sum{stage=\"1\"} 3\nh_count{stage=\"1\"} 2\n" +
		"# EOF\n"
	fams, err := ParseOpenMetrics(strings.NewReader(good))
	if err != nil {
		t.Fatalf("valid page rejected: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
}

// TestParseOpenMetricsPerSeriesCumulative: the cumulative check is per
// label set — interleaved stage series must not trip it, and a
// violation inside one series must still be caught.
func TestParseOpenMetricsPerSeriesCumulative(t *testing.T) {
	ok := "# TYPE h histogram\n" +
		"h_bucket{le=\"1\",stage=\"1\"} 10\nh_bucket{le=\"+Inf\",stage=\"1\"} 10\n" +
		"h_bucket{le=\"1\",stage=\"2\"} 2\nh_bucket{le=\"+Inf\",stage=\"2\"} 2\n" +
		"# EOF\n"
	if _, err := ParseOpenMetrics(strings.NewReader(ok)); err != nil {
		t.Fatalf("independent stage series rejected: %v", err)
	}
	bad := "# TYPE h histogram\n" +
		"h_bucket{le=\"1\",stage=\"1\"} 10\nh_bucket{le=\"2\",stage=\"1\"} 4\n" +
		"h_bucket{le=\"+Inf\",stage=\"1\"} 10\n# EOF\n"
	if _, err := ParseOpenMetrics(strings.NewReader(bad)); err == nil {
		t.Fatal("within-series violation not caught")
	}
}
