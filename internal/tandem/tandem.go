// Package tandem computes the waiting time at the SECOND stage of a
// k = 2, unit-service banyan network exactly (up to state-space
// truncation), by solving the Markov chain of a tagged stage-2 output
// queue jointly with its two feeder stage-1 queues.
//
// The paper states "we do not know how to analyze the later stages
// exactly as the inputs at successive cycles are not independent"
// (Section IV) and resorts to interpolation. For the first interior
// stage, however, the exact structure is small enough to solve
// numerically: in an infinitely wide network a tagged stage-2 queue is
// fed by exactly two stage-1 output queues, which (a) receive independent
// Binomial(2, p/2) batches, (b) are independent of each other (disjoint
// input sets), and (c) route each departing message to the tagged queue
// with independent probability 1/2 (the next destination digit). The
// triple (stage-1 queue A, stage-1 queue B, tagged stage-2 queue) is a
// Markov chain whose stationary distribution yields the exact stage-2
// waiting-time distribution — a noise-free benchmark for the Section IV
// approximations and for the simulator.
//
// States are truncated at configurable lengths; with unit service the
// queue-length tails decay geometrically (rate = 1/z₀ < 0.5 for ρ ≤ 0.8
// at k = 2), so modest truncations give ~12 significant digits.
package tandem

import (
	"fmt"
	"math"

	"banyan/internal/dist"
)

// Result carries the exact (truncated) stage-2 analysis.
type Result struct {
	P  float64 // per-input arrival probability
	T1 int     // stage-1 queue-length truncation
	T2 int     // stage-2 queue-length truncation

	// Wait2 is the exact stage-2 waiting-time distribution; MeanWait2
	// and VarWait2 are its moments.
	Wait2     dist.PMF
	MeanWait2 float64
	VarWait2  float64

	// MeanWait1 is the stage-1 mean wait recovered from the same chain
	// (a built-in consistency check against the closed form
	// p/(4(1-p)) for k = 2).
	MeanWait1 float64

	// Residual is the final L1 change per sweep of the power iteration
	// (convergence indicator), and Sweeps the number of sweeps used.
	Residual float64
	Sweeps   int
}

// feederState indexes the (queue length, in-flight bit) state of one
// stage-1 feeder: index = 2·s1 + f.
type kernel struct {
	t1 int
	// entries[i] lists the successor (index, probability) pairs.
	idx  [][]int32
	prob [][]float64
	// depProb[i] is the probability the feeder starts a service this
	// cycle given state index i's queue length component — used for the
	// stage-1 wait consistency check.
}

// buildKernel constructs the one-cycle transition kernel of a stage-1
// feeder: arrivals a ~ Binomial(2, p/2), departure iff the queue is
// nonempty after arrivals, and the departing message heads to the tagged
// stage-2 queue with probability 1/2 (setting the in-flight bit f′).
// The in-flight bit of the current state does not influence the
// transition; it only drives the stage-2 update.
func buildKernel(p float64, t1 int) *kernel {
	q := p / 2
	aProb := [3]float64{(1 - q) * (1 - q), 2 * q * (1 - q), q * q}
	k := &kernel{
		t1:   t1,
		idx:  make([][]int32, 2*t1),
		prob: make([][]float64, 2*t1),
	}
	for s1 := 0; s1 < t1; s1++ {
		var succIdx []int32
		var succProb []float64
		add := func(i int32, pr float64) {
			for j, existing := range succIdx {
				if existing == i {
					succProb[j] += pr
					return
				}
			}
			succIdx = append(succIdx, i)
			succProb = append(succProb, pr)
		}
		for a := 0; a <= 2; a++ {
			pa := aProb[a]
			pre := s1 + a
			if pre == 0 {
				add(int32(0), pa) // s1'=0, f'=0
				continue
			}
			next := pre - 1
			if next > t1-1 {
				next = t1 - 1 // clip; negligible mass by construction
			}
			// Departure occurred: f' = 1 with probability 1/2.
			add(int32(2*next+0), pa/2)
			add(int32(2*next+1), pa/2)
		}
		// Both f values of the current state share the same successors.
		for f := 0; f < 2; f++ {
			k.idx[2*s1+f] = succIdx
			k.prob[2*s1+f] = succProb
		}
	}
	return k
}

// Solve computes the stationary joint distribution by power iteration and
// extracts the exact stage-2 waiting-time distribution.
//
// t1 and t2 are the queue-length truncations (32 and 48 are ample for
// p ≤ 0.8); maxSweeps bounds the iteration and tol is the L1
// per-sweep change at which it stops.
func Solve(p float64, t1, t2, maxSweeps int, tol float64) (*Result, error) {
	switch {
	case p <= 0 || p >= 1:
		return nil, fmt.Errorf("tandem: p = %g out of (0,1)", p)
	case t1 < 4 || t2 < 4:
		return nil, fmt.Errorf("tandem: truncations (%d, %d) too small", t1, t2)
	case maxSweeps < 1:
		return nil, fmt.Errorf("tandem: need at least one sweep")
	}
	k := buildKernel(p, t1)
	nx := 2 * t1 // feeder states
	n := nx * nx * t2

	// π[(x·nx + y)·t2 + s2]
	pi := make([]float64, n)
	tmp := make([]float64, n)
	buf := make([]float64, n)
	pi[0] = 1

	residual := math.Inf(1)
	sweeps := 0
	for sweeps = 1; sweeps <= maxSweeps; sweeps++ {
		// Step 1: stage-2 deterministic update given (fA, fB):
		// s2' = max(0, s2 + fA + fB - 1), clipped at t2-1.
		for i := range tmp {
			tmp[i] = 0
		}
		for x := 0; x < nx; x++ {
			fa := x & 1
			for y := 0; y < nx; y++ {
				fb := y & 1
				base := (x*nx + y) * t2
				for s2 := 0; s2 < t2; s2++ {
					v := pi[base+s2]
					if v == 0 {
						continue
					}
					next := s2 + fa + fb - 1
					if next < 0 {
						next = 0
					}
					if next > t2-1 {
						next = t2 - 1
					}
					tmp[base+next] += v
				}
			}
		}
		// Step 2: feeder A kernel (contract x).
		for i := range buf {
			buf[i] = 0
		}
		for x := 0; x < nx; x++ {
			succI := k.idx[x]
			succP := k.prob[x]
			rowBase := x * nx * t2
			for rest := 0; rest < nx*t2; rest++ {
				v := tmp[rowBase+rest]
				if v == 0 {
					continue
				}
				for j, xp := range succI {
					buf[int(xp)*nx*t2+rest] += v * succP[j]
				}
			}
		}
		// Step 3: feeder B kernel (contract y).
		for i := range tmp {
			tmp[i] = 0
		}
		for x := 0; x < nx; x++ {
			xBase := x * nx * t2
			for y := 0; y < nx; y++ {
				succI := k.idx[y]
				succP := k.prob[y]
				yBase := xBase + y*t2
				for s2 := 0; s2 < t2; s2++ {
					v := buf[yBase+s2]
					if v == 0 {
						continue
					}
					for j, yp := range succI {
						tmp[xBase+int(yp)*t2+s2] += v * succP[j]
					}
				}
			}
		}
		// Convergence check (cheap enough to do each sweep).
		diff := 0.0
		for i := range tmp {
			diff += math.Abs(tmp[i] - pi[i])
		}
		pi, tmp = tmp, pi
		residual = diff
		if diff < tol {
			break
		}
	}
	if sweeps > maxSweeps {
		sweeps = maxSweeps
	}

	// Extract the stage-2 waiting-time distribution: a tagged message in
	// flight (bit f set) arrives to find s2 waiting; if the other feeder
	// delivers in the same cycle, the two are ordered uniformly.
	waitProbs := make([]float64, t2+2)
	arrivalMass := 0.0
	meanW1num, meanW1den := 0.0, 0.0
	for x := 0; x < nx; x++ {
		fa := x & 1
		for y := 0; y < nx; y++ {
			fb := y & 1
			base := (x*nx + y) * t2
			for s2 := 0; s2 < t2; s2++ {
				v := pi[base+s2]
				if v == 0 {
					continue
				}
				switch {
				case fa == 1 && fb == 1:
					// Two arrivals: one waits s2, the other s2+1.
					waitProbs[s2] += v
					waitProbs[s2+1] += v
					arrivalMass += 2 * v
				case fa == 1 || fb == 1:
					waitProbs[s2] += v
					arrivalMass += v
				}
			}
		}
	}
	if arrivalMass == 0 {
		return nil, fmt.Errorf("tandem: no stage-2 arrivals in stationary distribution")
	}
	for i := range waitProbs {
		waitProbs[i] /= arrivalMass
	}
	w2, err := dist.NewPMF(waitProbs)
	if err != nil {
		return nil, fmt.Errorf("tandem: wait distribution: %w", err)
	}

	// Stage-1 consistency: the marginal chain of one feeder gives the
	// stage-1 queue-length distribution; an arriving batch's mean wait
	// follows from the exact first-stage formula pattern
	// E w₁ = E[len at arrival] + batch correction. Here we derive it
	// via Little's law on the marginal queue length.
	lambda1 := p // per stage-1 output queue
	for x := 0; x < nx; x++ {
		s1 := x >> 1
		m := 0.0
		for y := 0; y < nx; y++ {
			base := (x*nx + y) * t2
			for s2 := 0; s2 < t2; s2++ {
				m += pi[base+s2]
			}
		}
		meanW1num += float64(s1) * m
		meanW1den += m
	}
	res := &Result{
		P: p, T1: t1, T2: t2,
		Wait2:     w2,
		MeanWait2: w2.Mean(),
		VarWait2:  w2.Variance(),
		MeanWait1: meanW1num / meanW1den / lambda1,
		Residual:  residual,
		Sweeps:    sweeps,
	}
	return res, nil
}
