package tandem

import (
	"math"
	"testing"

	"banyan/internal/core"
	"banyan/internal/simnet"
	"banyan/internal/stages"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %.8g, want %.8g (tol %g)", msg, got, want, tol)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(0, 16, 16, 100, 1e-9); err == nil {
		t.Fatal("expected p validation")
	}
	if _, err := Solve(1, 16, 16, 100, 1e-9); err == nil {
		t.Fatal("expected p validation")
	}
	if _, err := Solve(0.5, 2, 16, 100, 1e-9); err == nil {
		t.Fatal("expected truncation validation")
	}
	if _, err := Solve(0.5, 16, 16, 0, 1e-9); err == nil {
		t.Fatal("expected sweeps validation")
	}
}

// TestStage1Consistency: the chain's stage-1 marginal must reproduce the
// closed-form first-stage wait p/(4(1-p)).
func TestStage1Consistency(t *testing.T) {
	for _, p := range []float64{0.2, 0.5, 0.8} {
		r, err := Solve(p, 40, 48, 8000, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		want := core.UniformServiceOneMeanWait(2, 2, p)
		almost(t, r.MeanWait1, want, 1e-6*(1+want), "stage-1 wait from chain")
		if r.Residual > 1e-10 {
			t.Fatalf("p=%g: residual %g did not converge", p, r.Residual)
		}
	}
}

// TestStage2MatchesSimulation: the exact chain and the fast simulator
// must agree on the stage-2 waiting-time mean and variance.
func TestStage2MatchesSimulation(t *testing.T) {
	for _, p := range []float64{0.3, 0.5, 0.7} {
		r, err := Solve(p, 40, 48, 8000, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		cfg := &simnet.Config{K: 2, Stages: 2, P: p, Cycles: 60000, Warmup: 3000, Seed: 64}
		res, err := simnet.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim := res.StageWait[1]
		se := 4 * sim.StdDev() / math.Sqrt(float64(sim.N()))
		almost(t, r.MeanWait2, sim.Mean(), se+0.01*(1+sim.Mean()), "stage-2 mean vs sim")
		almost(t, r.VarWait2, sim.Variance(), 0.05*(1+sim.Variance()), "stage-2 var vs sim")
	}
}

// TestStage2AgainstApproximation: the exact stage-2 wait sits between the
// stage-1 value and the w∞ limit, and close to the Section IV stage-2
// interpolation w₂ = w₁ + (w∞-w₁)(1-α).
func TestStage2AgainstApproximation(t *testing.T) {
	md := stages.DefaultModel()
	for _, p := range []float64{0.2, 0.5, 0.8} {
		r, err := Solve(p, 48, 64, 12000, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		pr := stages.Params{K: 2, M: 1, P: p}
		w1 := md.FirstStageMean(pr)
		winf := md.LimitMeanWait(pr)
		if r.MeanWait2 <= w1 || r.MeanWait2 >= winf {
			t.Fatalf("p=%g: exact stage-2 %g not in (w1=%g, w∞=%g)", p, r.MeanWait2, w1, winf)
		}
		approx := md.StageMeanWait(pr, 2)
		almost(t, r.MeanWait2, approx, 0.05*approx, "stage-2 vs Section IV interpolation")
	}
}

// TestWait2Distribution: the exact stage-2 waiting-time distribution is a
// proper distribution with a geometric-ish tail.
func TestWait2Distribution(t *testing.T) {
	r, err := Solve(0.5, 40, 48, 8000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for j := 0; j < r.Wait2.Support(); j++ {
		sum += r.Wait2.Prob(j)
	}
	almost(t, sum, 1, 1e-9, "wait2 mass")
	if r.Wait2.Prob(0) < 0.5 || r.Wait2.Prob(0) > 0.9 {
		t.Fatalf("P(w2=0) = %g implausible at ρ=0.5", r.Wait2.Prob(0))
	}
	// Monotone decreasing tail.
	for j := 2; j < 12; j++ {
		if r.Wait2.Prob(j) > r.Wait2.Prob(j-1)+1e-12 {
			t.Fatalf("wait2 pmf not decreasing at %d", j)
		}
	}
}

// TestTruncationInsensitive: enlarging the truncation does not move the
// answer (the clipped mass is negligible).
func TestTruncationInsensitive(t *testing.T) {
	a, err := Solve(0.5, 24, 32, 6000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(0.5, 40, 56, 6000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, a.MeanWait2, b.MeanWait2, 1e-8, "truncation stability (mean)")
	almost(t, a.VarWait2, b.VarWait2, 1e-7, "truncation stability (variance)")
}
