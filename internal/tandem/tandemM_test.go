package tandem

import (
	"testing"

	"banyan/internal/core"
	"banyan/internal/simnet"
	"banyan/internal/stages"
	"banyan/internal/traffic"
)

func TestSolveMValidation(t *testing.T) {
	if _, err := SolveM(0.5, 0, 16, 16, 100, 1e-9); err == nil {
		t.Fatal("expected m validation")
	}
	if _, err := SolveM(0.5, 4, 16, 16, 100, 1e-9); err == nil {
		t.Fatal("expected stability validation (ρ=2)")
	}
	if _, err := SolveM(0.25, 2, 2, 16, 100, 1e-9); err == nil {
		t.Fatal("expected truncation validation")
	}
}

// TestSolveMReducesToSolve: m = 1 must reproduce the unit-service solver.
func TestSolveMReducesToSolve(t *testing.T) {
	a, err := Solve(0.5, 24, 32, 6000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveM(0.5, 1, 24, 32, 6000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, b.MeanWait2, a.MeanWait2, 1e-9, "m=1 reduction (mean)")
	almost(t, b.VarWait2, a.VarWait2, 1e-8, "m=1 reduction (variance)")
	almost(t, b.MeanWait1, a.MeanWait1, 1e-9, "m=1 reduction (stage 1)")
}

// TestSolveMStage1Consistency: the feeder marginal reproduces the exact
// first-stage formula (8) for constant service m.
func TestSolveMStage1Consistency(t *testing.T) {
	p, m := 0.25, 2 // ρ = 0.5
	r, err := SolveM(p, m, 28, 36, 9000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	want := core.ConstServiceMeanWait(2, 2, p, m)
	almost(t, r.MeanWait1, want, 1e-5*(1+want), "stage-1 wait from chain vs eq (8)")
	if r.Residual > 1e-10 {
		t.Fatalf("residual %g did not converge", r.Residual)
	}
}

// TestSolveMStage2MatchesSimulation: the exact chain agrees with the
// simulator's stage-2 statistics for m = 2.
func TestSolveMStage2MatchesSimulation(t *testing.T) {
	p, m := 0.25, 2
	r, err := SolveM(p, m, 28, 36, 9000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := traffic.ConstService(m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &simnet.Config{K: 2, Stages: 2, P: p, Service: svc, Cycles: 80000, Warmup: 4000, Seed: 73}
	res, err := simnet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := res.StageWait[1]
	almost(t, r.MeanWait2, sim.Mean(), 0.02*(1+sim.Mean()), "stage-2 mean vs sim")
	almost(t, r.VarWait2, sim.Variance(), 0.05*(1+sim.Variance()), "stage-2 var vs sim")
}

// TestSolveMAgainstScaledModel: the Section IV-B scaled model (w∞ for
// m ≥ 2) should sit near the exact stage-2 value — the paper applies it
// from stage 2 on.
func TestSolveMAgainstScaledModel(t *testing.T) {
	md := stages.DefaultModel()
	p, m := 0.25, 2 // ρ = 0.5
	r, err := SolveM(p, m, 28, 36, 9000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	approx := md.StageMeanWait(stages.Params{K: 2, M: m, P: p}, 2)
	// The scaled model is cruder for m ≥ 2 (the paper's Table III shows
	// it runs a few % low at stage 2); require 10%.
	almost(t, approx, r.MeanWait2, 0.10*r.MeanWait2, "Section IV-B scaled model vs exact stage 2")
	// Exact stage 2 is lighter than exact stage 1 (the spacing effect).
	if r.MeanWait2 >= r.MeanWait1 {
		t.Fatalf("stage 2 (%g) not lighter than stage 1 (%g) for m=2", r.MeanWait2, r.MeanWait1)
	}
}
