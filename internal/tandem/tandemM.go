package tandem

import (
	"fmt"
	"math"

	"banyan/internal/dist"
)

// This file extends the exact stage-2 analysis to constant message sizes
// m ≥ 1, the regime where the paper replaces analysis entirely by the
// scaled interpolation of Section IV-B ("later stages can be better
// modeled by assuming that messages take one cycle to be processed, but
// the cycle time is m times as long"). The feeder and tagged-queue states
// gain a residual-service counter; everything else mirrors tandem.go.
//
// Feeder state: (w = messages waiting, r = busy cycles remaining, f =
// in-flight bit). Per cycle: arrivals a ~ Binomial(2, p/2) join w; if the
// server is free (r = 0) and w > 0 a service starts (the head departs the
// waiting room, the in-flight bit is set with probability ½, and the
// server is busy for the next m cycles, i.e. r' = m-1 at end of cycle);
// otherwise r' = max(0, r-1).
//
// Tagged stage-2 queue: identical dynamics with arrivals fA + fB.
// A tagged arrival's waiting time is the number of cycles until its own
// service start: r2 + m·(w2 + ahead) measured at the arrival instant,
// where ahead counts same-cycle co-arrivals ordered before it.

// ResultM carries the exact stage-2 analysis for message size m.
type ResultM struct {
	P  float64
	M  int
	T1 int
	T2 int

	Wait2     dist.PMF
	MeanWait2 float64
	VarWait2  float64

	// MeanWait1 is the stage-1 mean wait recovered from the feeder
	// marginal via Little's law (consistency check against equation
	// (8): mρ(m-1/k)/(2(1-ρ))·(1/m) · … — see the test).
	MeanWait1 float64

	Residual float64
	Sweeps   int
}

// kernelM is the one-cycle transition kernel of a feeder with service m.
type kernelM struct {
	m, t1 int
	nx    int
	idx   [][]int32
	prob  [][]float64
}

// feederIndex packs (w, r, f).
func (k *kernelM) index(w, r, f int) int32 {
	return int32((w*k.m+r)*2 + f)
}

func buildKernelM(p float64, m, t1 int) *kernelM {
	q := p / 2
	aProb := [3]float64{(1 - q) * (1 - q), 2 * q * (1 - q), q * q}
	k := &kernelM{m: m, t1: t1, nx: t1 * m * 2}
	k.idx = make([][]int32, k.nx)
	k.prob = make([][]float64, k.nx)
	for w := 0; w < t1; w++ {
		for r := 0; r < m; r++ {
			var si []int32
			var sp []float64
			add := func(i int32, pr float64) {
				for j, e := range si {
					if e == i {
						sp[j] += pr
						return
					}
				}
				si = append(si, i)
				sp = append(sp, pr)
			}
			for a := 0; a <= 2; a++ {
				pa := aProb[a]
				wp := w + a
				if wp > t1-1 {
					wp = t1 - 1 // clip (negligible by construction)
				}
				if r == 0 && wp > 0 {
					// Service start: departure, server busy m cycles
					// (r' = m-1 at end of this cycle).
					add(k.index(wp-1, m-1, 0), pa/2)
					add(k.index(wp-1, m-1, 1), pa/2)
				} else {
					rn := r - 1
					if rn < 0 {
						rn = 0
					}
					add(k.index(wp, rn, 0), pa)
				}
			}
			for f := 0; f < 2; f++ {
				i := k.index(w, r, f)
				k.idx[i] = si
				k.prob[i] = sp
			}
		}
	}
	return k
}

// SolveM computes the exact stage-2 waiting time for constant service m.
// SolveM(p, 1, …) agrees with Solve(p, …). Truncations t1, t2 are in
// messages; keep m·p < 1.
func SolveM(p float64, m, t1, t2, maxSweeps int, tol float64) (*ResultM, error) {
	switch {
	case p <= 0 || p >= 1:
		return nil, fmt.Errorf("tandem: p = %g out of (0,1)", p)
	case m < 1:
		return nil, fmt.Errorf("tandem: message size %d must be at least 1", m)
	case float64(m)*p >= 1:
		return nil, fmt.Errorf("tandem: unstable ρ = %g", float64(m)*p)
	case t1 < 4 || t2 < 4:
		return nil, fmt.Errorf("tandem: truncations (%d, %d) too small", t1, t2)
	case maxSweeps < 1:
		return nil, fmt.Errorf("tandem: need at least one sweep")
	}
	k := buildKernelM(p, m, t1)
	nx := k.nx
	n2 := t2 * m // stage-2 states (w2, r2)
	n := nx * nx * n2

	pi := make([]float64, n)
	tmp := make([]float64, n)
	buf := make([]float64, n)
	pi[0] = 1

	// Stage-2 deterministic update given arrivals g = fA + fB:
	// wp = min(w2+g, t2-1); if r2 == 0 && wp > 0 → (wp-1, m-1) else
	// (wp, max(0, r2-1)).
	s2next := make([]int32, n2*3)
	for w2 := 0; w2 < t2; w2++ {
		for r2 := 0; r2 < m; r2++ {
			s := w2*m + r2
			for g := 0; g <= 2; g++ {
				wp := w2 + g
				if wp > t2-1 {
					wp = t2 - 1
				}
				var next int
				if r2 == 0 && wp > 0 {
					next = (wp-1)*m + (m - 1)
				} else {
					rn := r2 - 1
					if rn < 0 {
						rn = 0
					}
					next = wp*m + rn
				}
				s2next[s*3+g] = int32(next)
			}
		}
	}

	residual := math.Inf(1)
	sweeps := 0
	for sweeps = 1; sweeps <= maxSweeps; sweeps++ {
		for i := range tmp {
			tmp[i] = 0
		}
		// Step 1: stage-2 update using the current f bits.
		for x := 0; x < nx; x++ {
			fa := x & 1
			for y := 0; y < nx; y++ {
				g := fa + (y & 1)
				base := (x*nx + y) * n2
				for s := 0; s < n2; s++ {
					v := pi[base+s]
					if v == 0 {
						continue
					}
					tmp[base+int(s2next[s*3+g])] += v
				}
			}
		}
		// Step 2: contract feeder A.
		for i := range buf {
			buf[i] = 0
		}
		rowLen := nx * n2
		for x := 0; x < nx; x++ {
			si := k.idx[x]
			sp := k.prob[x]
			rowBase := x * rowLen
			for rest := 0; rest < rowLen; rest++ {
				v := tmp[rowBase+rest]
				if v == 0 {
					continue
				}
				for j, xp := range si {
					buf[int(xp)*rowLen+rest] += v * sp[j]
				}
			}
		}
		// Step 3: contract feeder B.
		for i := range tmp {
			tmp[i] = 0
		}
		for x := 0; x < nx; x++ {
			xBase := x * rowLen
			for y := 0; y < nx; y++ {
				si := k.idx[y]
				sp := k.prob[y]
				yBase := xBase + y*n2
				for s := 0; s < n2; s++ {
					v := buf[yBase+s]
					if v == 0 {
						continue
					}
					for j, yp := range si {
						tmp[xBase+int(yp)*n2+s] += v * sp[j]
					}
				}
			}
		}
		diff := 0.0
		for i := range tmp {
			diff += math.Abs(tmp[i] - pi[i])
		}
		pi, tmp = tmp, pi
		residual = diff
		if diff < tol {
			break
		}
	}
	if sweeps > maxSweeps {
		sweeps = maxSweeps
	}

	// Waiting time of a tagged arrival: at the arrival instant the queue
	// holds w2 waiting messages and the server needs r2 more cycles
	// (r2 = 0 ⇒ a start can happen this very cycle). The tagged message
	// starts after the residual, the w2 queued messages, and any
	// same-cycle co-arrival ordered ahead:
	//   wait = r2eff + m·(w2 + ahead), where r2eff accounts for the
	// service start consuming the head this cycle when r2 == 0.
	// Working through the cycle semantics: if r2 == 0 and w2 + ahead
	// == 0 the tagged message starts now (wait 0); if r2 == 0 and
	// queue ahead j > 0, the head starts now and the tagged waits
	// m·j - 0 … uniformly: wait = m·j; if r2 > 0: wait = r2 + m·(w2+ahead).
	maxW := m*(t2+2) + m
	waitProbs := make([]float64, maxW+1)
	arrivalMass := 0.0
	addWait := func(w int, v float64) {
		if w > maxW {
			w = maxW
		}
		waitProbs[w] += v
		arrivalMass += v
	}
	waitOf := func(r2, ahead int) int {
		if r2 == 0 {
			if ahead == 0 {
				return 0
			}
			return m * ahead
		}
		return r2 + m*ahead
	}
	for x := 0; x < nx; x++ {
		fa := x & 1
		for y := 0; y < nx; y++ {
			fb := y & 1
			if fa+fb == 0 {
				continue
			}
			base := (x*nx + y) * n2
			for s := 0; s < n2; s++ {
				v := pi[base+s]
				if v == 0 {
					continue
				}
				w2 := s / m
				r2 := s % m
				switch {
				case fa+fb == 2:
					addWait(waitOf(r2, w2), v)
					addWait(waitOf(r2, w2+1), v)
				default:
					addWait(waitOf(r2, w2), v)
				}
			}
		}
	}
	if arrivalMass == 0 {
		return nil, fmt.Errorf("tandem: no stage-2 arrivals in stationary distribution")
	}
	for i := range waitProbs {
		waitProbs[i] /= arrivalMass
	}
	w2pmf, err := dist.NewPMF(waitProbs)
	if err != nil {
		return nil, fmt.Errorf("tandem: wait distribution: %w", err)
	}

	// Stage-1 wait via Little on the feeder marginal: time-average
	// number waiting = λ·E[wait], λ = p messages per feeder per cycle.
	meanQ := 0.0
	for x := 0; x < nx; x++ {
		w1 := x / (2 * m)
		mMass := 0.0
		for y := 0; y < nx; y++ {
			base := (x*nx + y) * n2
			for s := 0; s < n2; s++ {
				mMass += pi[base+s]
			}
		}
		meanQ += float64(w1) * mMass
	}

	return &ResultM{
		P: p, M: m, T1: t1, T2: t2,
		Wait2:     w2pmf,
		MeanWait2: w2pmf.Mean(),
		VarWait2:  w2pmf.Variance(),
		MeanWait1: meanQ / p,
		Residual:  residual,
		Sweeps:    sweeps,
	}, nil
}
