package vr

import (
	"math"

	"banyan/internal/core"
	"banyan/internal/dist"
	"banyan/internal/simnet"
	"banyan/internal/stats"
	"banyan/internal/traffic"
)

// Estimate is a variance-reduced point estimate of the mean total wait,
// with an honest Student-t confidence interval. It is a pure function
// of (plan, config, replication results): recomputing it on cached or
// journaled results reproduces it bit for bit.
type Estimate struct {
	// Mean is the (control-variate-adjusted, when enabled) estimate of
	// the mean total wait; HalfWidth its two-sided CI half-width at
	// Confidence. Units is the number of independent units behind them:
	// replications, or mirrored pairs under antithetic.
	Mean       float64
	HalfWidth  float64
	Confidence float64
	Units      int
	Reps       int

	// RawMean / RawVar are the unadjusted across-unit statistics, kept
	// so reports can show what the adjustment bought.
	RawMean float64
	RawVar  float64

	// AdjVar is the across-unit variance of the adjusted values (equal
	// to RawVar when no control applies). VarReduction = RawVar/AdjVar
	// and ESS = Units·VarReduction, the plain-MC replication count this
	// estimate is worth.
	AdjVar       float64
	VarReduction float64
	ESS          float64

	// Controls and Beta record the fitted control variates ("" slice
	// when none applied — ineligible configuration or too few units).
	Controls []string
	Beta     []float64

	// Stopped marks an adaptive point that met its CI target before
	// the replication cap.
	Stopped bool
}

// vrBulk, vrService, vrArrivals mirror the sweep drift monitor's
// reconstruction of the stage-1 model from a configuration (the
// package cannot import sweep: sweep imports vr).
func vrBulk(cfg *simnet.Config) int {
	if cfg.Bulk <= 0 {
		return 1
	}
	return cfg.Bulk
}

func vrService(cfg *simnet.Config) traffic.Service {
	if cfg.Service.PMF().Support() == 0 {
		return traffic.UnitService()
	}
	return cfg.Service
}

func vrArrivals(cfg *simnet.Config) (traffic.Arrivals, error) {
	b := vrBulk(cfg)
	if cfg.Q != 0 {
		return traffic.NonuniformExclusive(cfg.K, cfg.P, cfg.Q, b)
	}
	if b > 1 {
		return traffic.Bulk(cfg.K, cfg.K, cfg.P, b)
	}
	return traffic.Uniform(cfg.K, cfg.K, cfg.P)
}

// stage1MeanWait returns the exact Theorem-1 stage-1 mean wait for
// configurations the theorem models, and ok=false otherwise. Theorem 1
// is exact at stage 1 for any batch-arrival law with i.i.d. service —
// which excludes bursty sources, hot-module routing, and per-stage
// resampling — and the simulated stage-1 statistics match it only when
// nothing is dropped or truncated.
func stage1MeanWait(cfg *simnet.Config) (float64, bool) {
	if cfg.Burst != nil || cfg.HotModule > 0 || cfg.ResampleService || cfg.BufferCap > 0 {
		return 0, false
	}
	arr, err := vrArrivals(cfg)
	if err != nil {
		return 0, false
	}
	an, err := core.New(arr, vrService(cfg))
	if err != nil {
		return 0, false
	}
	return an.MeanWait(), true
}

// control is one control variate: a per-result statistic with an
// exactly known mean.
type control struct {
	name string
	mean float64
	val  func(r *simnet.Result) float64
}

// controls returns the control variates applicable to cfg.
func controls(cfg *simnet.Config) []control {
	var cs []control
	if mu, ok := stage1MeanWait(cfg); ok {
		cs = append(cs, control{
			name: "stage1-wait",
			mean: mu,
			val: func(r *simnet.Result) float64 {
				return r.StageWait[0].Mean()
			},
		})
	}
	// Measured message count: every input generates a message with
	// probability P each measured cycle (bulk b of them), and with
	// BufferCap = 0 and no truncation every generated message is
	// measured, so E[Messages] = Rows·Cycles·P·b exactly — including
	// under bursty sources, whose ON fraction is initialized from its
	// stationary law and whose ON-rate is chosen to hit the target P.
	if cfg.BufferCap == 0 {
		b := float64(vrBulk(cfg))
		cyc := float64(cfg.Cycles)
		p := cfg.P
		cs = append(cs, control{
			name: "messages",
			mean: 0, // filled per result set: depends on Result.Rows
			val: func(r *simnet.Result) float64 {
				return float64(r.Messages) - float64(r.Rows)*cyc*p*b
			},
		})
	}
	return cs
}

// units folds raw replication results into independent units: the
// per-replication mean total wait (and control values), averaged over
// mirrored pairs under antithetic. A trailing unpaired replication
// under antithetic is kept as its own unit — still unbiased, merely
// uncorrelated.
func (p *Plan) units(runs []*simnet.Result, cs []control) (ys []float64, cvals [][]float64) {
	step := 1
	if p != nil && p.Antithetic {
		step = 2
	}
	for i := 0; i < len(runs); i += step {
		pair := runs[i : i+1]
		if step == 2 && i+1 < len(runs) {
			pair = runs[i : i+2]
		}
		y := 0.0
		cv := make([]float64, len(cs))
		for _, r := range pair {
			y += r.MeanTotalWait()
			for j, c := range cs {
				cv[j] += c.val(r)
			}
		}
		y /= float64(len(pair))
		for j := range cv {
			cv[j] /= float64(len(pair))
		}
		ys = append(ys, y)
		cvals = append(cvals, cv)
	}
	return ys, cvals
}

// Estimate computes the plan's variance-reduced estimate of the mean
// total wait from a point's replication results. It never fails: when
// control variates are off, inapplicable (ineligible configuration,
// truncated or dropping runs, degenerate covariance), or under-
// determined (fewer than controls+3 units), it degrades to the plain
// across-unit mean with a t interval.
func (p *Plan) Estimate(cfg *simnet.Config, runs []*simnet.Result) *Estimate {
	conf := p.ConfidenceLevel()
	est := &Estimate{Confidence: conf, Reps: len(runs)}
	if len(runs) == 0 {
		est.HalfWidth = math.Inf(1)
		return est
	}

	var cs []control
	if p != nil && p.ControlVariates {
		clean := true
		for _, r := range runs {
			if r.Truncated || r.Dropped > 0 {
				clean = false
				break
			}
		}
		if clean {
			cs = controls(cfg)
		}
	}

	ys, cvals := p.units(runs, cs)
	n := len(ys)
	est.Units = n

	var yw stats.Welford
	for _, y := range ys {
		yw.Add(y)
	}
	est.RawMean = yw.Mean()
	est.RawVar = yw.SampleVariance()
	est.Mean, est.AdjVar = est.RawMean, est.RawVar
	df := n - 1

	// Regression adjustment: a = y - β·(c - μ) with β from the sample
	// normal equations. The controls' exact means are already folded
	// into the values (control.val subtracts them or mean is constant),
	// so μ is per-control below.
	if len(cs) > 0 && n >= len(cs)+3 {
		k := len(cs)
		cw := make([]stats.Welford, k)
		for _, cv := range cvals {
			for j := range cs {
				cw[j].Add(cv[j])
			}
		}
		// Centered second moments.
		scc := make([][]float64, k)
		syc := make([]float64, k)
		for j := range scc {
			scc[j] = make([]float64, k)
		}
		for i, cv := range cvals {
			dy := ys[i] - yw.Mean()
			for j := 0; j < k; j++ {
				dj := cv[j] - cw[j].Mean()
				syc[j] += dy * dj
				for l := 0; l <= j; l++ {
					scc[j][l] += dj * (cv[l] - cw[l].Mean())
				}
			}
		}
		for j := 0; j < k; j++ {
			for l := j + 1; l < k; l++ {
				scc[j][l] = scc[l][j]
			}
		}
		degenerate := false
		for j := 0; j < k; j++ {
			if scc[j][j] <= 0 {
				degenerate = true
			}
		}
		if !degenerate {
			beta, err := dist.SolveLinear(scc, syc)
			if err == nil {
				var aw stats.Welford
				for i, cv := range cvals {
					a := ys[i]
					for j := 0; j < k; j++ {
						a -= beta[j] * (cv[j] - cs[j].mean)
					}
					aw.Add(a)
				}
				if av := aw.SampleVariance(); av <= est.RawVar {
					est.Mean = aw.Mean()
					est.AdjVar = av
					est.Beta = beta
					for _, c := range cs {
						est.Controls = append(est.Controls, c.name)
					}
					df = n - 1 - k
				}
			}
		}
	}

	if est.AdjVar > 0 {
		est.VarReduction = est.RawVar / est.AdjVar
	} else {
		est.VarReduction = 1
	}
	est.ESS = float64(n) * est.VarReduction

	if df < 1 || n < 2 {
		est.HalfWidth = math.Inf(1)
		return est
	}
	t := dist.TQuantile(float64(df), 0.5+conf/2)
	est.HalfWidth = t * math.Sqrt(est.AdjVar/float64(n))
	return est
}
