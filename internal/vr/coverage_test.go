package vr

import (
	"math"
	"math/rand/v2"
	"testing"

	"banyan/internal/stats"
)

// stopAt runs the sequential rule on a synthetic i.i.d. stream: grow
// along the plan's checkpoints, stop when the t half-width meets the
// target, and report the final interval.
func stopAt(p *Plan, draw func() float64, cap int) (mean, hw float64, n int) {
	var w stats.Welford
	have := 0
	for _, ck := range p.Checkpoints(cap) {
		for have < ck {
			w.Add(draw())
			have++
		}
		if hw := w.MeanHalfWidth(p.ConfidenceLevel()); hw <= p.TargetCI {
			break
		}
	}
	return w.Mean(), w.MeanHalfWidth(p.ConfidenceLevel()), have
}

// TestSequentialStoppingCoverage is the optional-stopping regression:
// the geometric checkpoint cadence must keep the empirical coverage of
// the nominal 95% interval at or above 93% on i.i.d. normal data. A
// rule that re-checks the CI after every observation fails this — each
// extra look is an extra chance to catch a transiently small
// half-width, and coverage decays with the number of looks — which is
// why the runner only evaluates the target on the Checkpoints cadence.
func TestSequentialStoppingCoverage(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 8))
	p := &Plan{TargetCI: 0.25}
	const trials, cap = 2000, 512
	const trueMean = 3.0

	covered, greedyCovered := 0, 0
	for i := 0; i < trials; i++ {
		draw := func() float64 { return trueMean + rng.NormFloat64() }
		mean, hw, n := stopAt(p, draw, cap)
		if n < p.minReps() {
			t.Fatalf("stopped at %d < MinReps %d", n, p.minReps())
		}
		if math.Abs(mean-trueMean) <= hw {
			covered++
		}

		// The buggy rule for contrast: check after every single draw.
		var w stats.Welford
		for j := 0; j < cap; j++ {
			w.Add(trueMean + rng.NormFloat64())
			if j+1 >= 2 && w.MeanHalfWidth(0.95) <= p.TargetCI {
				break
			}
		}
		if math.Abs(w.Mean()-trueMean) <= w.MeanHalfWidth(0.95) {
			greedyCovered++
		}
	}

	cov := float64(covered) / trials
	greedy := float64(greedyCovered) / trials
	t.Logf("coverage: cadence %.1f%%, every-draw %.1f%%", 100*cov, 100*greedy)
	if cov < 0.93 {
		t.Errorf("empirical coverage %.3f below 0.93 at nominal 0.95", cov)
	}
	// The every-draw rule must be visibly worse — if it isn't, this
	// test has lost its power to detect a cadence regression.
	if greedy >= cov {
		t.Logf("warning: every-draw coverage %.3f not below cadence %.3f", greedy, cov)
	}
}

// TestSequentialStoppingStopsEarly: on low-variance data the rule must
// actually stop near MinReps rather than running to the cap, and on
// high-variance data it must run further — the adaptivity being paid
// for.
func TestSequentialStoppingStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	p := &Plan{TargetCI: 0.5}
	_, _, nLow := stopAt(p, func() float64 { return 1 + 0.1*rng.NormFloat64() }, 4096)
	_, _, nHigh := stopAt(p, func() float64 { return 1 + 5*rng.NormFloat64() }, 4096)
	if nLow != p.minReps() {
		t.Errorf("low-variance stream ran %d reps, want MinReps %d", nLow, p.minReps())
	}
	if nHigh < 20*nLow {
		t.Errorf("high-variance stream stopped after only %d reps (low: %d)", nHigh, nLow)
	}
}
