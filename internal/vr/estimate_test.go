package vr

import (
	"math"
	"testing"

	"banyan/internal/core"
	"banyan/internal/simnet"
	"banyan/internal/traffic"
)

// runReps produces replication results with the plan's seed derivation,
// the way the sweep runner does.
func runReps(t testing.TB, p *Plan, cfg *simnet.Config, reps int) []*simnet.Result {
	t.Helper()
	out := make([]*simnet.Result, reps)
	for i := 0; i < reps; i++ {
		c := *cfg
		c.Seed, c.Antithetic = p.RepSeed(cfg.Seed, cfg.Seed, i)
		res, err := simnet.Run(&c)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = res
	}
	return out
}

// TestEstimatePlainMatchesWelford: with everything off, the estimate is
// the plain across-replication mean with a Student-t interval.
func TestEstimatePlainMatchesWelford(t *testing.T) {
	cfg := &simnet.Config{K: 2, Stages: 3, P: 0.5, Cycles: 1500, Warmup: 200, Seed: 11}
	var p *Plan
	runs := runReps(t, p, cfg, 6)
	est := p.Estimate(cfg, runs)
	if est.Units != 6 || est.Reps != 6 {
		t.Fatalf("units/reps = %d/%d, want 6/6", est.Units, est.Reps)
	}
	agg := simnet.Aggregate(runs, cfg.Stages)
	if est.Mean != agg.MeanTotalWait() {
		t.Errorf("plain estimate %g != aggregate mean %g", est.Mean, agg.MeanTotalWait())
	}
	if est.HalfWidth != agg.MeanTotalWaitCI() {
		t.Errorf("plain half-width %g != aggregate CI %g", est.HalfWidth, agg.MeanTotalWaitCI())
	}
	if len(est.Controls) != 0 || est.VarReduction != 1 {
		t.Errorf("plain estimate claims adjustment: %+v", est)
	}
}

// TestEstimateControlVariates: on an eligible configuration the
// CV-adjusted estimate must stay consistent with the truth (the exact
// stage-1 mean wait for a 1-stage network) while cutting the variance,
// and must report what it fitted.
func TestEstimateControlVariates(t *testing.T) {
	cfg := &simnet.Config{K: 4, Stages: 1, P: 0.9, Cycles: 4000, Warmup: 400, Seed: 23}
	arr, err := traffic.Uniform(4, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	exact := core.MustNew(arr, traffic.UnitService()).MeanWait()

	p := &Plan{ControlVariates: true}
	runs := runReps(t, p, cfg, 24)
	est := p.Estimate(cfg, runs)
	if len(est.Controls) == 0 || len(est.Beta) != len(est.Controls) {
		t.Fatalf("no controls fitted: %+v", est)
	}
	if est.AdjVar > est.RawVar {
		t.Errorf("adjustment increased variance: %g > %g", est.AdjVar, est.RawVar)
	}
	if est.VarReduction < 1 || est.ESS < float64(est.Units) {
		t.Errorf("VarReduction %g / ESS %g inconsistent", est.VarReduction, est.ESS)
	}
	// The adjusted estimate must cover the exact value. The interval is
	// tight after adjustment, so allow a few half-widths.
	if math.Abs(est.Mean-exact) > 4*est.HalfWidth+1e-9 {
		t.Errorf("adjusted mean %.6g vs exact %.6g exceeds 4·hw = %.3g",
			est.Mean, exact, 4*est.HalfWidth)
	}
	// And the plain estimate must also cover it — both are unbiased.
	var plain *Plan
	pest := plain.Estimate(cfg, runs)
	if math.Abs(pest.Mean-exact) > 4*pest.HalfWidth+1e-9 {
		t.Errorf("plain mean %.6g vs exact %.6g exceeds 4·hw = %.3g",
			pest.Mean, exact, 4*pest.HalfWidth)
	}
}

// TestEstimateAntitheticPairsUnits: antithetic replications fold into
// pair units, and the pair estimate stays consistent with plain MC.
func TestEstimateAntitheticPairsUnits(t *testing.T) {
	cfg := &simnet.Config{K: 2, Stages: 3, P: 0.6, Cycles: 2500, Warmup: 300, Seed: 31}
	p := &Plan{Antithetic: true}
	runs := runReps(t, p, cfg, 16)
	est := p.Estimate(cfg, runs)
	if est.Units != 8 || est.Reps != 16 {
		t.Fatalf("units/reps = %d/%d, want 8/16", est.Units, est.Reps)
	}

	var plain *Plan
	pruns := runReps(t, plain, cfg, 16)
	pest := plain.Estimate(cfg, pruns)
	joint := math.Sqrt(est.HalfWidth*est.HalfWidth + pest.HalfWidth*pest.HalfWidth)
	if diff := math.Abs(est.Mean - pest.Mean); diff > 2*joint {
		t.Errorf("antithetic mean %.6g vs plain %.6g differ by %.3g (> %.3g)",
			est.Mean, pest.Mean, diff, 2*joint)
	}
}

// TestEstimateDegradesSafely: ineligible configurations and degenerate
// result sets must fall back to the plain estimate, never fail.
func TestEstimateDegradesSafely(t *testing.T) {
	p := &Plan{ControlVariates: true}

	// Hot-module traffic: stage-1 control ineligible, messages control
	// still applies.
	hot := &simnet.Config{K: 2, Stages: 2, P: 0.4, HotModule: 0.2, Cycles: 1000, Warmup: 100, Seed: 5}
	runs := runReps(t, p, hot, 8)
	est := p.Estimate(hot, runs)
	for _, c := range est.Controls {
		if c == "stage1-wait" {
			t.Error("fitted the stage-1 control on hot-module traffic")
		}
	}

	// Too few units for a regression: plain fallback.
	cfg := &simnet.Config{K: 2, Stages: 2, P: 0.5, Cycles: 800, Warmup: 100, Seed: 6}
	short := runReps(t, p, cfg, 3)
	est = p.Estimate(cfg, short)
	if len(est.Controls) != 0 {
		t.Errorf("fitted %v from 3 units", est.Controls)
	}
	if est.Mean != est.RawMean {
		t.Error("fallback estimate is not the raw mean")
	}

	// Empty result set.
	empty := p.Estimate(cfg, nil)
	if !math.IsInf(empty.HalfWidth, 1) || empty.Units != 0 {
		t.Errorf("empty estimate: %+v", empty)
	}
}

// TestEstimateDeterministic: the estimate is a pure function of the
// results — recomputing from the same slice is bit-identical, the
// cache/journal-resume requirement.
func TestEstimateDeterministic(t *testing.T) {
	cfg := &simnet.Config{K: 2, Stages: 2, P: 0.6, Cycles: 1200, Warmup: 150, Seed: 17}
	p := &Plan{ControlVariates: true, Antithetic: true}
	runs := runReps(t, p, cfg, 12)
	a, b := p.Estimate(cfg, runs), p.Estimate(cfg, runs)
	if a.Mean != b.Mean || a.HalfWidth != b.HalfWidth || a.AdjVar != b.AdjVar {
		t.Fatalf("estimate not deterministic: %+v vs %+v", a, b)
	}
}
