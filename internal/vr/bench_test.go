package vr

import (
	"testing"
	"time"

	"banyan/internal/simnet"
	"banyan/internal/stats"
)

// BenchmarkVREffectiveness measures what the variance-reduction layer
// buys on the workload it was built for: estimating the wait difference
// between two neighboring sweep points (k=4, 3 stages, ρ=0.90 vs 0.89,
// one step of a 0.01 load grid). The plain lane draws independent
// streams per point, the way a naive sweep would; the VR lane shares
// the per-replication seed across both points (CRN) on synchronized
// streams (simnet.Config.SyncDraws) and regression-adjusts the
// difference on the stage-1 wait contrast, whose exact mean Theorem 1
// supplies.
//
// Two custom metrics feed the BENCH_vr.json gate:
//
//	ess_speedup  var(plain Δ)/var(adjusted Δ) — deterministic given the
//	             fixed seeds, so it is gated even on noisy runners
//	ess_per_sec  effective plain-MC replications per wall second the VR
//	             lane delivers (reps·speedup/elapsed); wall-clock-bound,
//	             gated only with -gate-ns
func BenchmarkVREffectiveness(b *testing.B) {
	b.ReportAllocs()
	var speedup, essRate float64
	for i := 0; i < b.N; i++ {
		speedup, essRate = vrEffectiveness(b)
	}
	b.ReportMetric(speedup, "ess_speedup")
	b.ReportMetric(essRate, "ess_per_sec")
}

func vrEffectiveness(b *testing.B) (speedup, essRate float64) {
	const reps = 24
	hi := simnet.Config{K: 4, Stages: 3, P: 0.90, Cycles: 2000, Warmup: 200}
	lo := hi
	lo.P = 0.89
	run := func(cfg simnet.Config, seed uint64) *simnet.Result {
		cfg.Seed = seed
		r, err := simnet.Run(&cfg)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}

	// Plain lane: each grid point consumes its own stream family, so the
	// point estimates are independent and their variances add.
	var plain stats.Welford
	for i := 0; i < reps; i++ {
		rh := run(hi, simnet.SplitSeed(0xA11, uint64(i)))
		rl := run(lo, simnet.SplitSeed(0xB22, uint64(i)))
		plain.Add(rh.MeanTotalWait() - rl.MeanTotalWait())
	}

	// VR lane: replication i of both points shares one seed (CRN) on
	// synchronized streams, and the difference is adjusted on the
	// stage-1 wait contrast centered at its exact Theorem-1 mean.
	hi.SyncDraws, lo.SyncDraws = true, true
	muHi, ok := stage1MeanWait(&hi)
	if !ok {
		b.Fatal("stage-1 control ineligible for the hi config")
	}
	muLo, ok := stage1MeanWait(&lo)
	if !ok {
		b.Fatal("stage-1 control ineligible for the lo config")
	}
	ds := make([]float64, reps)
	cs := make([]float64, reps)
	start := time.Now()
	for i := 0; i < reps; i++ {
		seed := simnet.SplitSeed(0xC33, uint64(i))
		rh := run(hi, seed)
		rl := run(lo, seed)
		ds[i] = rh.MeanTotalWait() - rl.MeanTotalWait()
		cs[i] = (rh.StageWait[0].Mean() - muHi) - (rl.StageWait[0].Mean() - muLo)
	}
	elapsed := time.Since(start)

	// Single-control regression: β = S_dc/S_cc, a_i = d_i − β·c_i (the
	// control is already centered on its exact mean, which is zero).
	var dw, cw stats.Welford
	for i := range ds {
		dw.Add(ds[i])
		cw.Add(cs[i])
	}
	var sdc, scc float64
	for i := range ds {
		sdc += (ds[i] - dw.Mean()) * (cs[i] - cw.Mean())
		scc += (cs[i] - cw.Mean()) * (cs[i] - cw.Mean())
	}
	var adj stats.Welford
	beta := 0.0
	if scc > 0 {
		beta = sdc / scc
	}
	for i := range ds {
		adj.Add(ds[i] - beta*cs[i])
	}

	speedup = plain.SampleVariance() / adj.SampleVariance()
	essRate = float64(reps) * speedup / elapsed.Seconds()
	return speedup, essRate
}
