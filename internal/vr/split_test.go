package vr

import (
	"math"
	"testing"

	"banyan/internal/core"
	"banyan/internal/traffic"
)

// bench-grid stage-1 model: k = 4, unit service, p = 0.9 → ρ = 0.9.
func benchModel(t testing.TB) (traffic.Arrivals, traffic.Service) {
	t.Helper()
	arr, err := traffic.Uniform(4, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return arr, traffic.UnitService()
}

// TestTailEstimatorMatchesExact holds the importance-sampled tail
// curve to the exact Theorem-1 waiting-time distribution across the
// range where the transform expansion is still accurate: every level's
// estimate must cover the exact tail within its own confidence
// interval (plus a small slack for the handful of levels where the CI
// is sharpest), and the estimates must be reproducible for a fixed
// seed.
func TestTailEstimatorMatchesExact(t *testing.T) {
	arr, svc := benchModel(t)
	an := core.MustNew(arr, svc)
	exact, _, err := an.WaitDistribution(4096)
	if err != nil {
		t.Fatal(err)
	}

	e, err := NewTailEstimator(arr, svc, 1)
	if err != nil {
		t.Fatal(err)
	}
	const maxLevel, excursions = 120, 4000
	c, err := e.WaitTailCurve(maxLevel, excursions)
	if err != nil {
		t.Fatal(err)
	}

	bad := 0
	for l := 1; l <= maxLevel; l += 7 {
		want := exact.Tail(l - 1) // P(W ≥ l) = P(W > l-1)
		got, hw := c.Tail(l)
		if math.IsInf(hw, 1) || math.IsNaN(got) {
			t.Fatalf("level %d: unusable estimate %g ± %g", l, got, hw)
		}
		if math.Abs(got-want) > 3*hw+1e-12 {
			t.Errorf("level %d: P(W ≥ l) = %.6g, exact %.6g, hw %.2g", l, got, hw, want)
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%d levels outside 3 half-widths", bad)
	}

	// Determinism: the same seed reproduces the curve bit for bit.
	e2, err := NewTailEstimator(arr, svc, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e2.WaitTailCurve(maxLevel, excursions)
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l <= maxLevel; l++ {
		if c.WaitTail[l-1] != c2.WaitTail[l-1] {
			t.Fatalf("level %d not reproducible: %g vs %g", l, c.WaitTail[l-1], c2.WaitTail[l-1])
		}
	}
}

// TestTailEstimatorAsymptoticSlope checks the estimated deep tail
// decays at the analytic rate: the log-tail slope over a deep window
// must match -log z₀ from the A(z) = z root, the geometric-tail
// constant the whole construction is built on.
func TestTailEstimatorAsymptoticSlope(t *testing.T) {
	arr, svc := benchModel(t)
	e, err := NewTailEstimator(arr, svc, 7)
	if err != nil {
		t.Fatal(err)
	}
	const lo, hi = 150, 250
	c, err := e.WaitTailCurve(hi, 3000)
	if err != nil {
		t.Fatal(err)
	}
	pLo, _ := c.Tail(lo)
	pHi, _ := c.Tail(hi)
	slope := (math.Log(pHi) - math.Log(pLo)) / float64(hi-lo)
	want := -math.Log(e.Z0())
	if math.Abs(slope-want) > 0.02*math.Abs(want) {
		t.Errorf("log-tail slope %.5f, want -log z0 = %.5f", slope, want)
	}
}

// TestTailEstimatorDeepQuantile is the rare-event acceptance check:
// at ρ = 0.9 the p99.9999 waiting-time quantile must come back with a
// finite, tight confidence interval — the regime where plain
// simulation would need ~10⁸ replications per digit.
func TestTailEstimatorDeepQuantile(t *testing.T) {
	arr, svc := benchModel(t)
	e, err := NewTailEstimator(arr, svc, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.WaitTailCurve(300, 3000)
	if err != nil {
		t.Fatal(err)
	}
	level, p, hw, ok := c.Quantile(1e-6)
	if !ok {
		t.Fatal("curve did not reach 1e-6")
	}
	if level < 10 {
		t.Fatalf("implausible p99.9999 level %d at ρ=0.9", level)
	}
	if math.IsInf(hw, 1) || math.IsNaN(hw) || hw <= 0 {
		t.Fatalf("no usable CI at the deep quantile: hw = %g", hw)
	}
	// Relative precision: a few thousand excursions should bound the
	// tail probability within ~±20% of itself at this depth.
	if hw > 0.5*p {
		t.Errorf("CI too loose at level %d: %.3g ± %.3g", level, p, hw)
	}
	t.Logf("p99.9999 wait ≈ %d cycles (P = %.3g ± %.3g, z0 = %.5f)", level, p, hw, e.Z0())
}

// TestTailEstimatorRejectsDegenerate covers the error paths: unstable
// and arrival-free models must be refused up front.
func TestTailEstimatorRejectsDegenerate(t *testing.T) {
	arr, err := traffic.Uniform(2, 2, 1) // ρ = 1: unstable
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTailEstimator(arr, traffic.UnitService(), 1); err == nil {
		t.Error("accepted an unstable model")
	}
	none, err := traffic.Uniform(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTailEstimator(none, traffic.UnitService(), 1); err == nil {
		t.Error("accepted a zero-rate model")
	}
}
