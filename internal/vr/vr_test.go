package vr

import (
	"testing"

	"banyan/internal/simnet"
)

// TestZeroPlanIsLegacy pins the bit-identity contract: a nil or zero
// plan must reproduce the legacy seed derivation exactly, carry salt 0,
// and enable nothing.
func TestZeroPlanIsLegacy(t *testing.T) {
	var zero Plan
	for _, p := range []*Plan{nil, &zero} {
		if p.Enabled() || p.Adaptive() {
			t.Fatalf("plan %v claims to be enabled", p)
		}
		if p.Salt() != 0 {
			t.Fatalf("plan %v has salt %d, want 0", p, p.Salt())
		}
		for rep := 0; rep < 5; rep++ {
			seed, anti := p.RepSeed(42, 99, rep)
			if anti {
				t.Fatal("zero plan mirrored a replication")
			}
			if want := simnet.SplitSeed(42, uint64(rep)); seed != want {
				t.Fatalf("rep %d: seed %d, want legacy %d", rep, seed, want)
			}
		}
	}
	// CV-only plans post-process identical runs: enabled, but no salt.
	cv := &Plan{ControlVariates: true}
	if !cv.Enabled() {
		t.Error("cv plan not enabled")
	}
	if cv.Salt() != 0 {
		t.Error("cv-only plan must not salt artifact keys")
	}
}

func TestRepSeedCRNAndAntithetic(t *testing.T) {
	crn := &Plan{CRN: true}
	s1, _ := crn.RepSeed(1, 7, 3)
	s2, _ := crn.RepSeed(2, 7, 3)
	if s1 != s2 {
		t.Error("CRN: different points must share replication seeds")
	}
	if want := simnet.SplitSeed(7, 3); s1 != want {
		t.Errorf("CRN seed %d, want SplitSeed(base, rep) = %d", s1, want)
	}

	anti := &Plan{Antithetic: true}
	e, ea := anti.RepSeed(5, 0, 4)
	o, oa := anti.RepSeed(5, 0, 5)
	if e != o {
		t.Error("antithetic pair must share one seed")
	}
	if ea || !oa {
		t.Errorf("mirror flags: even %v odd %v, want false/true", ea, oa)
	}
	if want := simnet.SplitSeed(5, 2); e != want {
		t.Errorf("pair seed %d, want SplitSeed(point, pair) = %d", e, want)
	}
}

func TestSaltSeparatesPlans(t *testing.T) {
	plans := []*Plan{
		{CRN: true},
		{Antithetic: true},
		{CRN: true, Antithetic: true},
		{TargetCI: 0.1},
		{TargetCI: 0.05},
		{TargetCI: 0.1, MaxReps: 64},
		{CRN: true, TargetCI: 0.1},
	}
	seen := map[uint64]int{}
	for i, p := range plans {
		s := p.Salt()
		if s == 0 {
			t.Fatalf("plan %d (%v) has zero salt", i, p)
		}
		if j, dup := seen[s]; dup {
			t.Fatalf("plans %d and %d collide on salt %d", i, j, s)
		}
		seen[s] = i
	}
	// Salts are stable: same plan, same salt.
	if plans[0].Salt() != (&Plan{CRN: true}).Salt() {
		t.Error("salt not deterministic")
	}
}

func TestCheckpoints(t *testing.T) {
	p := &Plan{TargetCI: 0.1}
	cks := p.Checkpoints(100)
	if len(cks) == 0 || cks[0] != DefaultMinReps || cks[len(cks)-1] != 100 {
		t.Fatalf("checkpoints %v: want start %d, end 100", cks, DefaultMinReps)
	}
	for i := 1; i < len(cks); i++ {
		if cks[i] <= cks[i-1] {
			t.Fatalf("checkpoints not increasing: %v", cks)
		}
	}
	// Geometric cadence: the number of looks is logarithmic, not linear.
	if len(cks) > 12 {
		t.Fatalf("%d checkpoints for cap 100 — cadence not geometric: %v", len(cks), cks)
	}

	// Antithetic plans only ever check on complete pairs.
	ap := &Plan{TargetCI: 0.1, Antithetic: true, MinReps: 7}
	for _, n := range ap.Checkpoints(101) {
		if n%2 != 0 {
			t.Fatalf("odd checkpoint %d under antithetic: %v", n, ap.Checkpoints(101))
		}
	}

	// A cap below the first checkpoint still yields exactly one look.
	small := p.Checkpoints(3)
	if len(small) != 1 || small[0] != 3 {
		t.Fatalf("cap 3 checkpoints = %v, want [3]", small)
	}
}

func TestParseString(t *testing.T) {
	cases := []struct {
		in   string
		want Plan
	}{
		{"crn", Plan{CRN: true}},
		{"cv,anti", Plan{ControlVariates: true, Antithetic: true}},
		{"crn,cv,anti", Plan{CRN: true, ControlVariates: true, Antithetic: true}},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if *p != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, *p, c.want)
		}
		back, err := Parse(p.String())
		if err != nil || *back != *p {
			t.Errorf("round-trip %q → %q failed", c.in, p.String())
		}
	}
	for _, empty := range []string{"", "off"} {
		if p, err := Parse(empty); err != nil || p != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil plan", empty, p, err)
		}
	}
	if _, err := Parse("crn,banana"); err == nil {
		t.Error("Parse accepted an unknown technique")
	}
}
