package vr

import (
	"fmt"
	"math"
	"math/rand/v2"

	"banyan/internal/core"
	"banyan/internal/dist"
	"banyan/internal/stats"
	"banyan/internal/traffic"
)

// TailEstimator estimates deep waiting-time tail probabilities
// P(W ≥ ℓ) by importance sampling the unfinished-work random walk
// under Siegmund's exponential tilt.
//
// The stationary unfinished work U obeys the Lindley recursion
// s' = (s + a - 1)⁺ with per-cycle work a ~ A = R∘U(z), so
// P(U ≥ v) = P(sup_n S_n ≥ v) for the free walk S with increments
// a - 1. Tilting the increment law by z₀^a — where z₀ > 1 solves
// A(z) = z, the reciprocal of core.TailDecayRate — turns the drift
// positive while keeping the likelihood ratio of a first-passage path
// to level v exactly z₀^{-S_τ}. One tilted excursion from 0 to level L
// therefore yields the unbiased estimate z₀^{-S_τv} of P(U ≥ v)
// simultaneously for every v ≤ L (first passages happen at the walk's
// successive record highs), and the relative error stays bounded in L
// instead of exploding like z₀^L as it does for plain Monte Carlo.
//
// The waiting time adds the same-batch head start: W = U + B with B
// the service of the tagged message's predecessors in its own batch,
// pgf (1-A(z))/(λ(1-U(z))) from Theorem 1. B's exact PMF is computed
// by convolution and folded in per excursion, so the per-excursion
// W-tail estimates are i.i.d. and carry an honest Student-t CI at any
// depth — including the p99.9999 territory plain simulation cannot
// reach.
type TailEstimator struct {
	an    *core.Analysis
	z0    float64
	tilt  *dist.Sampler
	batch dist.PMF // same-batch predecessor work B
	rng   *rand.Rand
}

// NewTailEstimator validates the stage-1 model and prepares the tilted
// walk. The seed fixes the excursion stream: estimates are
// deterministic for a given (model, seed, excursions, maxLevel).
func NewTailEstimator(arr traffic.Arrivals, svc traffic.Service, seed uint64) (*TailEstimator, error) {
	an, err := core.New(arr, svc)
	if err != nil {
		return nil, err
	}
	if arr.Rate() == 0 {
		return nil, fmt.Errorf("vr: no arrivals, waiting time has no tail")
	}
	decay, err := an.TailDecayRate()
	if err != nil {
		return nil, fmt.Errorf("vr: tail decay rate: %w", err)
	}
	z0 := 1 / decay

	// Per-cycle work PMF A = Σ_r p_r·U^{*r}, exact (finite supports).
	arrPMF, svcPMF := arr.PMF(), svc.PMF()
	work := compoundPMF(arrPMF, svcPMF, arrPMF.Support()-1)

	// Tilted increment law q(a) ∝ p(a)·z₀^a; the total Σ p(a)·z₀^a is
	// A(z₀) = z₀, so q sums to 1 after dividing by z₀ — normalize
	// explicitly to absorb the root finder's bisection tolerance.
	tilted := make([]float64, len(work))
	sum := 0.0
	pw := 1.0
	for a := range work {
		tilted[a] = work[a] * pw
		sum += tilted[a]
		pw *= z0
	}
	for a := range tilted {
		tilted[a] /= sum
	}
	tiltPMF, err := dist.NewPMF(tilted)
	if err != nil {
		return nil, fmt.Errorf("vr: tilted work law: %w", err)
	}

	// Same-batch predecessor work: the tagged message is a size-biased
	// uniform pick within its batch, so position i (i predecessors)
	// carries weight Σ_{r>i} p_r and B = Σ_i weight_i·U^{*i} / λ.
	maxBatch := arrPMF.Support() - 1
	bw := make([]float64, 1)
	cur := []float64{1} // U^{*0}
	for i := 0; i < maxBatch; i++ {
		w := arrPMF.Tail(i) // Σ_{r ≥ i+1} p_r = weight of position i
		if w <= 0 {
			break
		}
		bw = accumulate(bw, cur, w)
		cur = convolveRaw(cur, svcPMF)
	}
	bsum := 0.0
	for _, v := range bw {
		bsum += v
	}
	for j := range bw {
		bw[j] /= bsum
	}
	batch, err := dist.NewPMF(bw)
	if err != nil {
		return nil, fmt.Errorf("vr: batch-work law: %w", err)
	}

	return &TailEstimator{
		an:    an,
		z0:    z0,
		tilt:  dist.NewSampler(tiltPMF),
		batch: batch,
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}, nil
}

// Z0 returns the tilting root z₀ > 1 of A(z) = z; the waiting-time tail
// decays like z₀^{-ℓ}.
func (e *TailEstimator) Z0() float64 { return e.z0 }

// compoundPMF returns Σ_{r=0..maxN} n(r)·u^{*r} as raw weights.
func compoundPMF(n, u dist.PMF, maxN int) []float64 {
	out := []float64{0}
	cur := []float64{1}
	for r := 0; r <= maxN; r++ {
		if p := n.Prob(r); p > 0 {
			out = accumulate(out, cur, p)
		}
		if r < maxN {
			cur = convolveRaw(cur, u)
		}
	}
	return out
}

// accumulate returns dst + w·src, growing dst as needed.
func accumulate(dst, src []float64, w float64) []float64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for j, v := range src {
		dst[j] += w * v
	}
	return dst
}

// convolveRaw convolves raw weights with a PMF.
func convolveRaw(a []float64, b dist.PMF) []float64 {
	out := make([]float64, len(a)+b.Support()-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j := 0; j < b.Support(); j++ {
			out[i+j] += av * b.Prob(j)
		}
	}
	return out
}

// TailCurve holds importance-sampled tail estimates for every level
// 1..MaxLevel.
type TailCurve struct {
	MaxLevel   int
	Excursions int
	Z0         float64

	// WaitTail[v-1] estimates P(W ≥ v) with Student-t half-width
	// HalfWidth[v-1] at 95% confidence.
	WaitTail  []float64
	HalfWidth []float64
}

// Tail returns the estimate and half-width for P(W ≥ level).
func (c *TailCurve) Tail(level int) (p, hw float64) {
	if level <= 0 {
		return 1, 0
	}
	if level > c.MaxLevel {
		return math.NaN(), math.Inf(1)
	}
	return c.WaitTail[level-1], c.HalfWidth[level-1]
}

// Quantile returns the smallest level ℓ with estimated P(W ≥ ℓ) ≤ eps,
// together with that level's estimate and half-width. ok is false when
// the curve does not reach eps (raise MaxLevel).
func (c *TailCurve) Quantile(eps float64) (level int, p, hw float64, ok bool) {
	for v := 1; v <= c.MaxLevel; v++ {
		if c.WaitTail[v-1] <= eps {
			p, hw = c.Tail(v)
			return v, p, hw, true
		}
	}
	return 0, 0, 0, false
}

// WaitTailCurve runs the given number of independent tilted excursions
// and returns tail estimates for every waiting-time level 1..maxLevel.
func (e *TailEstimator) WaitTailCurve(maxLevel, excursions int) (*TailCurve, error) {
	if maxLevel < 1 {
		return nil, fmt.Errorf("vr: maxLevel %d < 1", maxLevel)
	}
	if excursions < 2 {
		return nil, fmt.Errorf("vr: need ≥ 2 excursions for a CI, got %d", excursions)
	}
	// U-levels needed: W-level ℓ uses U-tails at ℓ-b for every batch
	// offset b < ℓ, i.e. up to maxLevel.
	uMax := maxLevel
	logZ0 := math.Log(e.z0)
	uEst := make([]float64, uMax+1) // uEst[v] = this excursion's P(U ≥ v)
	wW := make([]stats.Welford, maxLevel+1)

	for ex := 0; ex < excursions; ex++ {
		// One excursion: walk S up under the tilt, recording the
		// likelihood ratio z₀^{-S} at the first passage of each level.
		s, maxS := 0, 0
		for maxS < uMax {
			a := e.tilt.Sample(e.rng.Float64(), e.rng.Float64())
			s += a - 1
			if s > maxS {
				lr := math.Exp(-float64(s) * logZ0)
				for v := maxS + 1; v <= s && v <= uMax; v++ {
					uEst[v] = lr
				}
				maxS = s
			}
		}
		// Fold in the same-batch head start: W-tail at ℓ mixes U-tails
		// at ℓ-b over the exact batch-offset law.
		for l := 1; l <= maxLevel; l++ {
			wt := 0.0
			for b := 0; b < e.batch.Support(); b++ {
				pb := e.batch.Prob(b)
				if pb == 0 {
					continue
				}
				if b >= l {
					wt += pb // U ≥ ℓ-b ≤ 0: certain
				} else {
					wt += pb * uEst[l-b]
				}
			}
			wW[l].Add(wt)
		}
	}

	c := &TailCurve{
		MaxLevel:   maxLevel,
		Excursions: excursions,
		Z0:         e.z0,
		WaitTail:   make([]float64, maxLevel),
		HalfWidth:  make([]float64, maxLevel),
	}
	for l := 1; l <= maxLevel; l++ {
		c.WaitTail[l-1] = wW[l].Mean()
		c.HalfWidth[l-1] = wW[l].MeanHalfWidth(0.95)
	}
	return c, nil
}
