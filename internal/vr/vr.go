// Package vr is the variance-reduction layer for replicated
// simulations: common random numbers across sweep points, antithetic
// replication pairs, regression-adjusted control variates built from
// the Theorem-1 exact stage-1 moments, CI-targeted sequential stopping,
// and an importance-splitting estimator for deep waiting-time tails.
//
// The package computes plans and estimates only; the sweep runner owns
// scheduling. Everything here is deterministic: a Plan maps (point
// seed, replication index) to a seed and a mirror flag, and an Estimate
// is a pure function of the replication results, so VR-enabled sweeps
// replay bit-identically at any parallelism.
package vr

import (
	"fmt"
	"math"
	"strings"

	"banyan/internal/simnet"
)

// Default sequential-stopping parameters (see Plan).
const (
	DefaultMinReps    = 8
	DefaultGrowth     = 1.5
	DefaultConfidence = 0.95
)

// Plan selects which variance-reduction techniques a sweep applies.
// The zero value (and a nil *Plan) is "everything off": the runner then
// behaves bit-identically to a run without the VR layer.
type Plan struct {
	// CRN derives every replication seed from a sweep-wide base instead
	// of the per-point seed, so neighboring grid points consume common
	// random numbers: differences between points are then estimated on
	// positively correlated noise, shrinking the variance of contrasts
	// (the quantity parameter sweeps actually read). CRN runs also set
	// simnet.Config.SyncDraws so the coupled streams cannot shift
	// against each other at the first slot where only one point
	// generates a message — without that synchronization the coupling
	// collapses to the arrival indicators and most of the variance
	// reduction evaporates.
	CRN bool

	// ControlVariates subtracts fitted multiples of statistics with
	// analytically known means — the Theorem-1 stage-1 mean wait and
	// the offered-load message count — from the mean-wait estimate.
	// It changes the reported estimate, never the simulation, so it
	// needs no seed salt.
	ControlVariates bool

	// Antithetic runs replications in mirrored pairs: reps 2j and 2j+1
	// share one seed, and the odd rep flips every trace-generation
	// uniform (simnet.Config.Antithetic). Pair averages are the
	// independent units fed to estimates and stopping rules.
	Antithetic bool

	// TargetCI, when positive, enables sequential stopping: the runner
	// grows each point's replication count along Checkpoints until the
	// Confidence-level half-width of the (adjusted) mean-wait estimate
	// is at most TargetCI, or the cap is reached.
	TargetCI float64

	// MaxReps caps adaptive growth (0 = the point's configured
	// replication count).
	MaxReps int

	// MinReps is the first checkpoint (0 = DefaultMinReps). The CI is
	// never consulted before MinReps replications, both because t
	// intervals at two or three units are uselessly wide and because
	// checking must stay on a sparse cadence (see Checkpoints).
	MinReps int

	// Growth is the geometric checkpoint ratio (0 = DefaultGrowth).
	Growth float64

	// Confidence is the two-sided CI level (0 = DefaultConfidence).
	Confidence float64
}

// Enabled reports whether the plan changes anything at all.
func (p *Plan) Enabled() bool {
	return p != nil && (p.CRN || p.ControlVariates || p.Antithetic || p.TargetCI > 0)
}

// Adaptive reports whether sequential stopping is on.
func (p *Plan) Adaptive() bool { return p != nil && p.TargetCI > 0 }

// Synchronized reports whether replication configs must run with
// simnet.Config.SyncDraws: CRN is only effective when coupled streams
// keep a fixed draw budget per slot.
func (p *Plan) Synchronized() bool { return p != nil && p.CRN }

// minReps returns the first checkpoint, honoring the antithetic
// pair-evenness requirement.
func (p *Plan) minReps() int {
	m := DefaultMinReps
	if p != nil && p.MinReps > 0 {
		m = p.MinReps
	}
	if p != nil && p.Antithetic && m%2 == 1 {
		m++
	}
	return m
}

func (p *Plan) growth() float64 {
	if p != nil && p.Growth > 1 {
		return p.Growth
	}
	return DefaultGrowth
}

// ConfidenceLevel returns the effective CI level.
func (p *Plan) ConfidenceLevel() float64 {
	if p != nil && p.Confidence > 0 {
		return p.Confidence
	}
	return DefaultConfidence
}

// Cap returns the adaptive replication ceiling for a point configured
// with pointReps replications.
func (p *Plan) Cap(pointReps int) int {
	cap := pointReps
	if p != nil && p.MaxReps > 0 {
		cap = p.MaxReps
	}
	if p != nil && p.Antithetic && cap%2 == 1 {
		cap++
	}
	return cap
}

// Checkpoints returns the geometric cadence of replication counts at
// which the stopping rule may consult the CI, ending exactly at the
// cap. Checking at every replication would bias coverage downward
// (optional stopping: a half-width that dips below the target by
// chance gets caught immediately); a geometric schedule keeps the
// number of looks logarithmic in the cap, which holds the empirical
// coverage within a point or two of nominal (see the coverage test).
func (p *Plan) Checkpoints(pointReps int) []int {
	cap := p.Cap(pointReps)
	var cks []int
	n := p.minReps()
	g := p.growth()
	for n < cap {
		cks = append(cks, n)
		next := int(math.Ceil(float64(n) * g))
		if next <= n {
			next = n + 1
		}
		if p != nil && p.Antithetic && next%2 == 1 {
			next++
		}
		n = next
	}
	return append(cks, cap)
}

// RepSeed maps a replication index to its simulation seed and mirror
// flag. pointSeed is the point's legacy seed base; crnBase is the
// sweep-wide base used when CRN is on. With the zero plan this reduces
// to the legacy derivation SplitSeed(pointSeed, rep) exactly.
func (p *Plan) RepSeed(pointSeed, crnBase uint64, rep int) (seed uint64, anti bool) {
	base := pointSeed
	if p != nil && p.CRN {
		base = crnBase
	}
	idx := uint64(rep)
	if p != nil && p.Antithetic {
		idx = uint64(rep / 2)
		anti = rep%2 == 1
	}
	return simnet.SplitSeed(base, idx), anti
}

// Salt returns a non-zero hash of every plan field that changes which
// simulations run (seeds, mirror flags, or replication counts), for
// XOR-ing onto cache, journal, and batch keys: results produced under
// different salts must never alias. Control variates are deliberately
// excluded — they post-process identical runs — and the zero salt
// means "no VR", so legacy artifacts remain addressable.
func (p *Plan) Salt() uint64 {
	if p == nil || (!p.CRN && !p.Antithetic && !(p.TargetCI > 0)) {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	mix(b2u(p.CRN))
	mix(b2u(p.Antithetic))
	mix(math.Float64bits(p.TargetCI))
	if p.TargetCI > 0 {
		mix(uint64(p.MaxReps))
		mix(uint64(p.minReps()))
		mix(math.Float64bits(p.growth()))
		mix(math.Float64bits(p.ConfidenceLevel()))
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Parse builds a plan from the CLI syntax: a comma-separated subset of
// "crn", "cv", "anti" ("" or "off" = nil plan). TargetCI and the
// stopping parameters are set separately by their own flags.
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return nil, nil
	}
	p := &Plan{}
	for _, tok := range strings.Split(s, ",") {
		switch strings.TrimSpace(tok) {
		case "crn":
			p.CRN = true
		case "cv":
			p.ControlVariates = true
		case "anti":
			p.Antithetic = true
		case "":
		default:
			return nil, fmt.Errorf("vr: unknown technique %q (want crn, cv, anti)", tok)
		}
	}
	return p, nil
}

// String renders the plan in Parse's syntax (plus the CI target, which
// Parse leaves to its own flag).
func (p *Plan) String() string {
	if p == nil {
		return "off"
	}
	var parts []string
	if p.CRN {
		parts = append(parts, "crn")
	}
	if p.ControlVariates {
		parts = append(parts, "cv")
	}
	if p.Antithetic {
		parts = append(parts, "anti")
	}
	s := strings.Join(parts, ",")
	if s == "" {
		s = "off"
	}
	if p.TargetCI > 0 {
		s += fmt.Sprintf("+ci<%g", p.TargetCI)
	}
	return s
}
