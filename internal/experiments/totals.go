package experiments

import (
	"fmt"
	"io"

	"banyan/internal/delay"
	"banyan/internal/simnet"
	"banyan/internal/stages"
	"banyan/internal/sweep"
	"banyan/internal/textplot"
)

// TotalCase identifies one of the paper's six total-delay operating
// points (Tables VII–XII and Figures 3–8 share them).
type TotalCase struct {
	Table string // "Table VII" …
	Fig   string // "Figure 3" …
	K     int
	P     float64
	M     int
}

// TotalCases returns the paper's six operating points in table order.
func TotalCases() []TotalCase {
	return []TotalCase{
		{Table: "Table VII", Fig: "Figure 3", K: 2, P: 0.2, M: 1},   // ρ=0.2
		{Table: "Table VIII", Fig: "Figure 4", K: 2, P: 0.05, M: 4}, // ρ=0.2
		{Table: "Table IX", Fig: "Figure 5", K: 2, P: 0.5, M: 1},    // ρ=0.5
		{Table: "Table X", Fig: "Figure 6", K: 2, P: 0.125, M: 4},   // ρ=0.5
		{Table: "Table XI", Fig: "Figure 7", K: 2, P: 0.8, M: 1},    // ρ=0.8
		{Table: "Table XII", Fig: "Figure 8", K: 2, P: 0.2, M: 4},   // ρ=0.8
	}
}

// TotalRow is one network depth of a total-delay table.
type TotalRow struct {
	NStages int
	SimW    float64 // simulated total mean wait
	SimV    float64 // simulated total wait variance
	PredW   float64 // Section V predicted mean
	PredV   float64 // Section V predicted variance (covariance-corrected)
}

// TotalTable is a Table VII–XII style experiment result.
type TotalTable struct {
	Name    string
	Caption string
	Case    TotalCase
	Rows    []TotalRow
}

// totalDepths are the network depths of the total-delay experiments.
var totalDepths = []int{3, 6, 9, 12}

// totalPoints builds the sweep batch for one operating point, one point
// per depth. The tables and figures build identical batches, so a shared
// Scale.Runner cache simulates each operating point once for both.
func totalPoints(sc Scale, tc TotalCase, track bool) []sweep.Point {
	pts := make([]sweep.Point, 0, len(totalDepths))
	for _, n := range totalDepths {
		cfg := simnet.Config{K: tc.K, Stages: n, P: tc.P}
		if tc.M > 1 {
			cfg.Service = mustConst(tc.M)
		}
		cfg.TrackStageWaits = track
		pts = append(pts, sc.point(fmt.Sprintf("total/%s/n=%d", tc.Table, n), cfg))
	}
	return pts
}

// predictor builds the Section V delay predictor for a case and depth.
func predictor(tc TotalCase, n int) *delay.Network {
	pr := stages.Params{K: tc.K, M: tc.M, P: tc.P}
	return delay.MustNew(stages.DefaultModel(), pr, n)
}

// TotalTableFor reproduces one of Tables VII–XII: the predicted total
// mean and variance of the waiting time versus simulation at network
// depths n = 3, 6, 9, 12.
func TotalTableFor(sc Scale, tc TotalCase) (*TotalTable, error) {
	t := &TotalTable{
		Name: tc.Table,
		Caption: fmt.Sprintf("comparison of predictions to simulations (k=%d, p=%g, m=%d, ρ=%g)",
			tc.K, tc.P, tc.M, tc.P*float64(tc.M)),
		Case: tc,
	}
	results, err := sc.runBatch(totalPoints(sc, tc, false))
	if err != nil {
		return nil, err
	}
	for i, n := range totalDepths {
		res := results[i]
		nw := predictor(tc, n)
		t.Rows = append(t.Rows, TotalRow{
			NStages: n,
			SimW:    res.MeanTotalWait(),
			SimV:    res.VarTotalWait(),
			PredW:   nw.TotalMeanWait(),
			PredV:   nw.TotalVarWait(),
		})
	}
	return t, nil
}

// TableVII … TableXII regenerate the individual tables.
func TableVII(sc Scale) (*TotalTable, error)  { return TotalTableFor(sc, TotalCases()[0]) }
func TableVIII(sc Scale) (*TotalTable, error) { return TotalTableFor(sc, TotalCases()[1]) }
func TableIX(sc Scale) (*TotalTable, error)   { return TotalTableFor(sc, TotalCases()[2]) }
func TableX(sc Scale) (*TotalTable, error)    { return TotalTableFor(sc, TotalCases()[3]) }
func TableXI(sc Scale) (*TotalTable, error)   { return TotalTableFor(sc, TotalCases()[4]) }
func TableXII(sc Scale) (*TotalTable, error)  { return TotalTableFor(sc, TotalCases()[5]) }

// Render writes the table in the paper's layout: simulation and
// prediction side by side for each depth.
func (t *TotalTable) Render(w io.Writer) error {
	header := []string{"", "sim w", "sim v", "pred w", "pred v"}
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d stages", r.NStages),
			fmt.Sprintf("%.3f", r.SimW),
			fmt.Sprintf("%.3f", r.SimV),
			fmt.Sprintf("%.3f", r.PredW),
			fmt.Sprintf("%.3f", r.PredV),
		})
	}
	return textplot.Table(w, fmt.Sprintf("%s — %s", t.Name, t.Caption), header, rows)
}
