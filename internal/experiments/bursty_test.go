package experiments

import (
	"strings"
	"testing"
)

func TestBurstyExperiment(t *testing.T) {
	b, err := BurstyExperiment(testScale(), 2, 0.4, []float64{2, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 3 {
		t.Fatalf("rows %d", len(b.Rows))
	}
	// Waits inflate monotonically with burst length at fixed load…
	for i := 1; i < len(b.Rows); i++ {
		if b.Rows[i].SimW1 <= b.Rows[i-1].SimW1 {
			t.Fatalf("stage-1 wait not increasing with burstiness: %+v", b.Rows)
		}
	}
	// …and the i.i.d. Theorem 1 value underpredicts clearly at long
	// bursts.
	last := b.Rows[len(b.Rows)-1]
	if last.Inflation < 1.5 {
		t.Fatalf("long bursts inflate only %.2f×", last.Inflation)
	}
	// Short bursts (L=2) stay within ~2.5× of i.i.d. at this load.
	if b.Rows[0].Inflation > 2.5 {
		t.Fatalf("short bursts inflated %.2f×", b.Rows[0].Inflation)
	}
	var sb strings.Builder
	if err := b.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "inflation") {
		t.Fatal("render missing header")
	}
	// Bad burst length rejected.
	if _, err := BurstyExperiment(testScale(), 2, 0.4, []float64{0.5}); err == nil {
		t.Fatal("expected burst-length validation")
	}
	// Default grid works.
	if _, err := BurstyExperiment(Scale{TargetMessages: 20000, WarmupCycles: 500, Seed: 3}, 2, 0.3, nil); err != nil {
		t.Fatal(err)
	}
}
