package experiments

import (
	"fmt"
	"io"

	"banyan/internal/delay"
	"banyan/internal/simnet"
	"banyan/internal/stages"
	"banyan/internal/textplot"
)

// CorrTable is the Table VI experiment: the correlation matrix of the
// waiting times a message experiences at the different stages, compared
// to the paper's geometric covariance-decay model a·b^{j-1}.
type CorrTable struct {
	Name    string
	Caption string
	Stages  int
	Sim     [][]float64 // simulated correlation matrix
	Model   [][]float64 // a·b^{|i-j|-1} prediction (1 on the diagonal)
	A, B    float64     // the model constants
}

// TableVI reproduces Table VI: correlations of waiting times between
// stages (k = 2, p = 0.5, m = 1).
func TableVI(sc Scale) (*CorrTable, error) {
	const n = 7
	res, err := sc.run("tableVI", simnet.Config{K: 2, Stages: n, P: 0.5, TrackStageWaits: true})
	if err != nil {
		return nil, err
	}
	pr := stages.Params{K: 2, M: 1, P: 0.5}
	nw := delay.MustNew(stages.DefaultModel(), pr, n)
	a, b := nw.CovConstants()
	t := &CorrTable{
		Name:    "Table VI",
		Caption: "correlations of waiting times between stages (k=2, p=0.5, m=1)",
		Stages:  n,
		A:       a,
		B:       b,
	}
	t.Sim = res.StageCov.CorrelationMatrix()
	t.Model = make([][]float64, n)
	for i := 0; i < n; i++ {
		t.Model[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			t.Model[i][j] = nw.Correlation(i+1, j+1)
		}
	}
	return t, nil
}

// Render writes the upper triangle of the simulated matrix (the paper's
// layout) followed by the model prediction.
func (t *CorrTable) Render(w io.Writer) error {
	header := []string{""}
	for j := 1; j <= t.Stages; j++ {
		header = append(header, fmt.Sprintf("stage %d", j))
	}
	block := func(title string, mat [][]float64) error {
		var rows [][]string
		for i := 0; i < t.Stages; i++ {
			row := []string{fmt.Sprintf("stage %d", i+1)}
			for j := 0; j < t.Stages; j++ {
				if j < i {
					row = append(row, "")
				} else {
					row = append(row, fmt.Sprintf("%.4f", mat[i][j]))
				}
			}
			rows = append(rows, row)
		}
		return textplot.Table(w, title, header, rows)
	}
	if err := block(fmt.Sprintf("%s — %s (simulation)", t.Name, t.Caption), t.Sim); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return block(fmt.Sprintf("model: σ(i,i+j) = a·b^(j-1), a=%.4f b=%.4f", t.A, t.B), t.Model)
}

// LagCorrelations returns the average simulated correlation at each lag
// (1 … Stages-1), a convenient scalar summary for tests.
func (t *CorrTable) LagCorrelations() []float64 {
	out := make([]float64, t.Stages-1)
	for lag := 1; lag < t.Stages; lag++ {
		acc, cnt := 0.0, 0
		for i := 0; i+lag < t.Stages; i++ {
			acc += t.Sim[i][i+lag]
			cnt++
		}
		out[lag-1] = acc / float64(cnt)
	}
	return out
}
