package experiments

import (
	"fmt"
	"io"

	"banyan/internal/core"
	"banyan/internal/simnet"
	"banyan/internal/stages"
	"banyan/internal/sweep"
	"banyan/internal/textplot"
	"banyan/internal/traffic"
)

// StageColumn is one parameter column of a per-stage waiting-time table:
// simulated mean/variance at each stage, the exact first-stage analysis,
// and the Section IV estimate of the limiting stage statistics.
type StageColumn struct {
	Label     string
	Stages    int
	SimW      []float64 // per-stage simulated mean wait
	SimV      []float64 // per-stage simulated wait variance
	AnalysisW float64   // exact first-stage mean (paper: ANALYSIS row)
	AnalysisV float64
	EstimateW float64 // estimated limiting mean (paper: ESTIMATE row)
	EstimateV float64
	Messages  int64
}

// StageTable is a Table I–V style experiment result.
type StageTable struct {
	Name    string
	Caption string
	Columns []StageColumn
}

// Render writes the table in the paper's layout.
func (t *StageTable) Render(w io.Writer) error {
	if len(t.Columns) == 0 {
		return fmt.Errorf("experiments: empty table %s", t.Name)
	}
	nStages := 0
	for _, c := range t.Columns {
		if c.Stages > nStages {
			nStages = c.Stages
		}
	}
	header := []string{""}
	for _, c := range t.Columns {
		header = append(header, c.Label+" w", c.Label+" v")
	}
	var rows [][]string
	for s := 0; s < nStages; s++ {
		row := []string{fmt.Sprintf("stage %d", s+1)}
		for _, c := range t.Columns {
			if s < len(c.SimW) {
				row = append(row, fmt.Sprintf("%.4f", c.SimW[s]), fmt.Sprintf("%.4f", c.SimV[s]))
			} else {
				row = append(row, "", "")
			}
		}
		rows = append(rows, row)
	}
	an := []string{"ANALYSIS"}
	es := []string{"ESTIMATE"}
	for _, c := range t.Columns {
		an = append(an, fmt.Sprintf("%.4f", c.AnalysisW), fmt.Sprintf("%.4f", c.AnalysisV))
		es = append(es, fmt.Sprintf("%.4f", c.EstimateW), fmt.Sprintf("%.4f", c.EstimateV))
	}
	rows = append(rows, an, es)
	return textplot.Table(w, fmt.Sprintf("%s — %s", t.Name, t.Caption), header, rows)
}

func stageColumnFromResult(label string, res *simnet.Result) StageColumn {
	col := StageColumn{Label: label, Stages: len(res.StageWait), Messages: res.Messages}
	for i := range res.StageWait {
		col.SimW = append(col.SimW, res.StageWait[i].Mean())
		col.SimV = append(col.SimV, res.StageWait[i].Variance())
	}
	return col
}

// TableI reproduces Table I: waiting times and variances per stage with
// the load p varying (k = 2, m = 1, q = 0).
func TableI(sc Scale) (*StageTable, error) {
	t := &StageTable{Name: "Table I", Caption: "waiting times and variances: p varying (k=2, m=1, q=0)"}
	md := model()
	ps := []float64{0.2, 0.35, 0.5, 0.65, 0.8}
	var pts []sweep.Point
	for _, p := range ps {
		pts = append(pts, sc.point(fmt.Sprintf("tableI/p=%.2f", p), simnet.Config{K: 2, Stages: 8, P: p}))
	}
	results, err := sc.runBatch(pts)
	if err != nil {
		return nil, err
	}
	for i, p := range ps {
		col := stageColumnFromResult(fmt.Sprintf("p=%.2f", p), results[i])
		pr := stages.Params{K: 2, M: 1, P: p}
		col.AnalysisW = md.FirstStageMean(pr)
		col.AnalysisV = md.FirstStageVar(pr)
		col.EstimateW = md.LimitMeanWait(pr)
		col.EstimateV = md.LimitVarWait(pr)
		t.Columns = append(t.Columns, col)
	}
	return t, nil
}

// TableII reproduces Table II: k varying (p = 0.5, m = 1, q = 0). The
// stage count shrinks with k to keep the network at 4096 rows or fewer
// (stage statistics converge well before the last simulated stage).
func TableII(sc Scale) (*StageTable, error) {
	t := &StageTable{Name: "Table II", Caption: "waiting times and variances: k varying (p=0.5, m=1, q=0)"}
	md := model()
	kcs := []struct{ k, n int }{{2, 8}, {4, 6}, {8, 4}}
	var pts []sweep.Point
	for _, kc := range kcs {
		pts = append(pts, sc.point(fmt.Sprintf("tableII/k=%d", kc.k), simnet.Config{K: kc.k, Stages: kc.n, P: 0.5}))
	}
	results, err := sc.runBatch(pts)
	if err != nil {
		return nil, err
	}
	for i, kc := range kcs {
		col := stageColumnFromResult(fmt.Sprintf("k=%d", kc.k), results[i])
		pr := stages.Params{K: kc.k, M: 1, P: 0.5}
		col.AnalysisW = md.FirstStageMean(pr)
		col.AnalysisV = md.FirstStageVar(pr)
		col.EstimateW = md.LimitMeanWait(pr)
		col.EstimateV = md.LimitVarWait(pr)
		t.Columns = append(t.Columns, col)
	}
	return t, nil
}

// TableIII reproduces Table III: message size m and p varying together so
// the traffic intensity stays ρ = mp = 0.5 (k = 2, q = 0).
func TableIII(sc Scale) (*StageTable, error) {
	t := &StageTable{Name: "Table III", Caption: "waiting times and variances: p and m varying with ρ=0.5 (k=2, q=0)"}
	md := model()
	ms := []int{2, 4, 8, 16}
	var pts []sweep.Point
	for _, m := range ms {
		p := 0.5 / float64(m)
		pts = append(pts, sc.point(fmt.Sprintf("tableIII/m=%d", m),
			simnet.Config{K: 2, Stages: 8, P: p, Service: mustConst(m)}))
	}
	results, err := sc.runBatch(pts)
	if err != nil {
		return nil, err
	}
	for i, m := range ms {
		p := 0.5 / float64(m)
		col := stageColumnFromResult(fmt.Sprintf("m=%d", m), results[i])
		pr := stages.Params{K: 2, M: m, P: p}
		col.AnalysisW = md.FirstStageMean(pr)
		col.AnalysisV = md.FirstStageVar(pr)
		col.EstimateW = md.LimitMeanWait(pr)
		col.EstimateV = md.LimitVarWait(pr)
		t.Columns = append(t.Columns, col)
	}
	return t, nil
}

// TableIV reproduces Table IV: two message sizes m₁ = 4, m₂ = 8 with the
// mixture (g₁, g₂) and p varying so that ρ = p·m̄ = 0.5 (k = 2, q = 0).
func TableIV(sc Scale) (*StageTable, error) {
	t := &StageTable{Name: "Table IV", Caption: "waiting times and variances: m1=4, m2=8; p, g1, g2 varying with ρ=0.5 (k=2, q=0)"}
	md := model()
	sizes := []int{4, 8}
	g1s := []float64{1, 2.0 / 3, 1.0 / 3, 0}
	svcs := make([]traffic.Service, len(g1s))
	var pts []sweep.Point
	for i, g1 := range g1s {
		g2 := 1 - g1
		mbar := 4*g1 + 8*g2
		p := 0.5 / mbar
		svc, err := traffic.MultiService([]traffic.SizeMix{{Size: 4, Prob: g1}, {Size: 8, Prob: g2}})
		if err != nil {
			return nil, err
		}
		svcs[i] = svc
		pts = append(pts, sc.point(fmt.Sprintf("tableIV/g1=%.2f", g1),
			simnet.Config{K: 2, Stages: 8, P: p, Service: svc}))
	}
	results, err := sc.runBatch(pts)
	if err != nil {
		return nil, err
	}
	for i, g1 := range g1s {
		g2 := 1 - g1
		p := 0.5 / (4*g1 + 8*g2)
		col := stageColumnFromResult(fmt.Sprintf("g1=%.2f", g1), results[i])
		probs := []float64{g1, g2}
		arr, err := traffic.Uniform(2, 2, p)
		if err != nil {
			return nil, err
		}
		an, err := core.New(arr, svcs[i])
		if err != nil {
			return nil, err
		}
		col.AnalysisW = an.MeanWait()
		col.AnalysisV = an.VarWait()
		col.EstimateW = md.MultiSizeLimitMeanWait(2, p, sizes, probs)
		col.EstimateV = md.MultiSizeLimitVarWait(2, p, sizes, probs)
		t.Columns = append(t.Columns, col)
	}
	return t, nil
}

// TableV reproduces Table V: favorite-output probability q varying
// (p = 0.5, k = 2, m = 1).
func TableV(sc Scale) (*StageTable, error) {
	t := &StageTable{Name: "Table V", Caption: "waiting times and variances: q varying (p=0.5, k=2, m=1)"}
	md := model()
	qs := []float64{0, 0.1, 0.3, 0.6}
	var pts []sweep.Point
	for _, q := range qs {
		pts = append(pts, sc.point(fmt.Sprintf("tableV/q=%.1f", q),
			simnet.Config{K: 2, Stages: 8, P: 0.5, Q: q}))
	}
	results, err := sc.runBatch(pts)
	if err != nil {
		return nil, err
	}
	for i, q := range qs {
		col := stageColumnFromResult(fmt.Sprintf("q=%.1f", q), results[i])
		pr := stages.Params{K: 2, M: 1, P: 0.5, Q: q}
		col.AnalysisW = md.FirstStageMean(pr)
		col.AnalysisV = md.FirstStageVar(pr)
		col.EstimateW = md.LimitMeanWait(pr)
		col.EstimateV = md.LimitVarWait(pr)
		t.Columns = append(t.Columns, col)
	}
	return t, nil
}
