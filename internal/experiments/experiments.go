// Package experiments reproduces every table and figure of the paper's
// evaluation: the per-stage waiting-time tables (I–V), the inter-stage
// correlation matrix (VI), the total-wait prediction tables (VII–XII) and
// the total-wait distribution figures (3–8). Each experiment returns a
// structured result that renders itself in the paper's layout
// (SIMULATION rows vs. ANALYSIS/ESTIMATE rows) and that the test suite
// asserts shape properties on.
package experiments

import (
	"fmt"
	"hash/fnv"

	"banyan/internal/simnet"
	"banyan/internal/stages"
	"banyan/internal/traffic"
)

// Scale controls the simulation effort of every experiment.
type Scale struct {
	// TargetMessages is the approximate number of measured messages per
	// simulation run; cycle counts are derived from it.
	TargetMessages int
	// WarmupCycles are simulated before measurement starts.
	WarmupCycles int
	// Seed is the base random seed; each run derives its own from it.
	Seed uint64
}

// Quick returns a scale suitable for tests and benchmarks (seconds).
func Quick() Scale {
	return Scale{TargetMessages: 150_000, WarmupCycles: 1500, Seed: 0x5eed}
}

// Full returns a scale suitable for regenerating the paper's numbers
// (a few minutes for the whole suite).
func Full() Scale {
	return Scale{TargetMessages: 2_000_000, WarmupCycles: 5000, Seed: 0x5eed}
}

// derive returns a per-run seed from the base seed and a label.
func (sc Scale) derive(label string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return sc.Seed ^ h.Sum64()
}

// cyclesFor sizes a run to reach the target measured-message count.
func (sc Scale) cyclesFor(rows int, p float64, bulk int) int {
	if bulk < 1 {
		bulk = 1
	}
	perCycle := float64(rows) * p * float64(bulk)
	c := int(float64(sc.TargetMessages)/perCycle) + 1
	if c < 200 {
		c = 200
	}
	return c
}

// runCfg builds and runs one simulation.
func (sc Scale) run(label string, cfg simnet.Config) (*simnet.Result, error) {
	rows := 1
	for i := 0; i < cfg.Stages; i++ {
		rows *= cfg.K
		if rows >= 4096 {
			rows = 4096
			break
		}
	}
	cfg.Cycles = sc.cyclesFor(rows, cfg.P, cfg.Bulk)
	cfg.Warmup = sc.WarmupCycles
	cfg.Seed = sc.derive(label)
	res, err := simnet.Run(&cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", label, err)
	}
	return res, nil
}

// model returns the Section IV approximation model used by all ESTIMATE
// rows.
func model() stages.Model { return stages.DefaultModel() }

// mustConst returns a constant-size service law.
func mustConst(m int) traffic.Service {
	s, err := traffic.ConstService(m)
	if err != nil {
		panic(err)
	}
	return s
}
