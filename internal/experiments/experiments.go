// Package experiments reproduces every table and figure of the paper's
// evaluation: the per-stage waiting-time tables (I–V), the inter-stage
// correlation matrix (VI), the total-wait prediction tables (VII–XII) and
// the total-wait distribution figures (3–8). Each experiment returns a
// structured result that renders itself in the paper's layout
// (SIMULATION rows vs. ANALYSIS/ESTIMATE rows) and that the test suite
// asserts shape properties on.
package experiments

import (
	"context"
	"fmt"

	"banyan/internal/simnet"
	"banyan/internal/stages"
	"banyan/internal/sweep"
	"banyan/internal/traffic"
)

// Scale controls the simulation effort of every experiment.
type Scale struct {
	// TargetMessages is the approximate number of measured messages per
	// simulation run; cycle counts are derived from it.
	TargetMessages int
	// WarmupCycles are simulated before measurement starts.
	WarmupCycles int
	// Seed is the root random seed; every run's seed is derived from it
	// and the run's configuration by the sweep engine.
	Seed uint64
	// Parallelism bounds the sweep worker pool (0 = GOMAXPROCS). Results
	// are byte-identical at every setting.
	Parallelism int
	// Runner, when non-nil, executes all of the scale's simulations —
	// letting callers share a point cache and progress counters across
	// experiments. When nil each batch gets a transient runner configured
	// from the fields above.
	Runner *sweep.Runner
	// Ctx, when non-nil, cancels the scale's simulations (Ctrl-C, a
	// -timeout). Cancellation does not affect the statistics: a run either
	// completes identically or fails with the context's error.
	Ctx context.Context
}

// ctx returns the scale's cancellation context.
func (sc Scale) ctx() context.Context {
	if sc.Ctx != nil {
		return sc.Ctx
	}
	return context.Background()
}

// Quick returns a scale suitable for tests and benchmarks (seconds).
func Quick() Scale {
	return Scale{TargetMessages: 150_000, WarmupCycles: 1500, Seed: 0x5eed}
}

// Full returns a scale suitable for regenerating the paper's numbers
// (a few minutes for the whole suite).
func Full() Scale {
	return Scale{TargetMessages: 2_000_000, WarmupCycles: 5000, Seed: 0x5eed}
}

// NewRunner builds a sweep runner configured from the scale, with a
// fresh point cache. Assign it to Scale.Runner to share simulation work
// across experiments (the total tables and figures, for instance, run
// identical points).
func (sc Scale) NewRunner() *sweep.Runner {
	return &sweep.Runner{
		Parallelism: sc.Parallelism,
		RootSeed:    sc.Seed,
		Cache:       sweep.NewCache(),
	}
}

// runner returns the scale's shared runner, or a transient one.
func (sc Scale) runner() *sweep.Runner {
	if sc.Runner != nil {
		return sc.Runner
	}
	return &sweep.Runner{Parallelism: sc.Parallelism, RootSeed: sc.Seed}
}

// cyclesFor sizes a run to reach the target measured-message count.
func (sc Scale) cyclesFor(rows int, p float64, bulk int) int {
	if bulk < 1 {
		bulk = 1
	}
	perCycle := float64(rows) * p * float64(bulk)
	c := int(float64(sc.TargetMessages)/perCycle) + 1
	if c < 200 {
		c = 200
	}
	return c
}

// point sizes cfg to the scale's effort and wraps it as a sweep point.
// Cfg.Cycles and Cfg.Warmup are derived unless the caller pre-set them
// (heavy-traffic runs need longer warmups, for example). Points whose
// configuration needs the literal engine (finite buffers or occupancy
// tracking) are routed there automatically.
func (sc Scale) point(label string, cfg simnet.Config) sweep.Point {
	rows := 1
	for i := 0; i < cfg.Stages; i++ {
		rows *= cfg.K
		if rows >= 4096 {
			rows = 4096
			break
		}
	}
	if cfg.Cycles == 0 {
		cfg.Cycles = sc.cyclesFor(rows, cfg.P, cfg.Bulk)
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = sc.WarmupCycles
	}
	eng := sweep.Fast
	if cfg.BufferCap > 0 || cfg.TrackOccupancy {
		eng = sweep.Literal
	}
	return sweep.Point{Label: label, Cfg: cfg, Engine: eng}
}

// runBatch executes a batch of points on the scale's runner and unwraps
// the per-point results, preserving batch order.
func (sc Scale) runBatch(points []sweep.Point) ([]*simnet.Result, error) {
	prs, err := sc.runner().RunCtx(sc.ctx(), points)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	out := make([]*simnet.Result, len(prs))
	for i, pr := range prs {
		out[i] = pr.Result()
	}
	return out, nil
}

// run executes one simulation through the sweep engine.
func (sc Scale) run(label string, cfg simnet.Config) (*simnet.Result, error) {
	res, err := sc.runBatch([]sweep.Point{sc.point(label, cfg)})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// model returns the Section IV approximation model used by all ESTIMATE
// rows.
func model() stages.Model { return stages.DefaultModel() }

// mustConst returns a constant-size service law.
func mustConst(m int) traffic.Service {
	s, err := traffic.ConstService(m)
	if err != nil {
		panic(err)
	}
	return s
}
