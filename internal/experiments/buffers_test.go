package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestBufferExperiment(t *testing.T) {
	sw, err := BufferExperiment(testScale(), 2, 0.6, 1, 4, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Rows) != 4 {
		t.Fatalf("rows %d", len(sw.Rows))
	}
	// Drops decrease with capacity, analytics likewise.
	for i := 1; i < len(sw.Rows); i++ {
		if sw.Rows[i].DropFrac > sw.Rows[i-1].DropFrac {
			t.Fatal("drop fraction not decreasing with capacity")
		}
		if sw.Rows[i].Overflow > sw.Rows[i-1].Overflow {
			t.Fatal("analytic overflow not decreasing with capacity")
		}
	}
	// Sim and analytic agree within an order of magnitude where both are
	// measurable.
	for _, r := range sw.Rows {
		if r.PerStageDrop > 1e-3 && r.Overflow > 1e-6 {
			ratio := r.PerStageDrop / r.Overflow
			if ratio < 0.05 || ratio > 20 {
				t.Fatalf("capacity %d: per-stage drop %g vs analytic %g",
					r.Capacity, r.PerStageDrop, r.Overflow)
			}
		}
	}
	// The exact chain column is populated for m=1 and brackets the
	// simulated per-stage drop within a factor accounting for
	// stage-to-stage traffic smoothing.
	for _, r := range sw.Rows {
		if math.IsNaN(r.ExactDrop) {
			t.Fatal("exact drop missing for m=1")
		}
		if r.PerStageDrop > 1e-3 && r.ExactDrop > 0 {
			if ratio := r.PerStageDrop / r.ExactDrop; ratio < 0.2 || ratio > 5 {
				t.Fatalf("capacity %d: per-stage drop %g vs exact %g", r.Capacity, r.PerStageDrop, r.ExactDrop)
			}
		}
	}
	// Occupancy reference populated.
	if sw.Rows[0].MeanDepth <= 0 || sw.Rows[0].MaxDepth <= 0 {
		t.Fatal("occupancy reference missing")
	}
	// Survivors of tight buffers wait less.
	if sw.Rows[0].MeanWait >= sw.Rows[len(sw.Rows)-1].MeanWait {
		t.Fatal("tight buffers should reduce survivor waiting")
	}
	var b strings.Builder
	if err := sw.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "capacity") || !strings.Contains(b.String(), "occupancy") {
		t.Fatalf("render output:\n%s", b.String())
	}
}
