package experiments

import (
	"fmt"
	"io"
	"math"

	"banyan/internal/core"
	"banyan/internal/simnet"
	"banyan/internal/sweep"
	"banyan/internal/textplot"
	"banyan/internal/traffic"
)

// BufferRow is one capacity point of a finite-buffer sweep.
type BufferRow struct {
	Capacity int // messages of waiting room per output queue

	// DropFrac is the simulated fraction of offered messages dropped
	// somewhere in the network; PerStageDrop ≈ DropFrac/stages is the
	// per-queue blocking probability.
	DropFrac     float64
	PerStageDrop float64

	// Overflow is the analytic infinite-buffer bound on the per-stage
	// blocking probability: P(s > (capacity-k)·m), the stationary work
	// tail evaluated at the pre-arrival peak (a cycle can add up to k
	// messages of m work each before service).
	Overflow float64

	// ExactDrop is the exact per-queue drop probability from the
	// finite-buffer Markov chain (first-stage law; computed for unit
	// service only, NaN otherwise).
	ExactDrop float64

	MeanWait  float64 // simulated mean total wait of survivors
	MaxDepth  int     // largest occupancy seen with infinite buffers
	MeanDepth float64 // time-averaged stage-1 occupancy, infinite buffers
}

// BufferSweep is the finite-buffer extension experiment (paper's
// Conclusion: "Given our formulas for infinite buffer delays, along with
// some simulation results for finite buffers, it is possible that one
// could develop good approximate formulas for finite buffer delays").
// It sweeps the per-queue capacity, measures loss with the literal
// engine, and compares against the infinite-buffer analytic overflow
// probability P(s > capacity·m) from the unfinished-work transform.
type BufferSweep struct {
	Name    string
	Caption string
	K       int
	P       float64
	M       int
	Stages  int
	Rows    []BufferRow
}

// BufferExperiment runs the sweep at one operating point.
func BufferExperiment(sc Scale, k int, p float64, m, nStages int, caps []int) (*BufferSweep, error) {
	sw := &BufferSweep{
		Name: "Finite buffers",
		Caption: fmt.Sprintf("drop rate vs. per-queue capacity (k=%d, p=%g, m=%d, %d stages)",
			k, p, m, nStages),
		K: k, P: p, M: m, Stages: nStages,
	}
	arr, err := traffic.Uniform(k, k, p)
	if err != nil {
		return nil, err
	}
	var svc traffic.Service
	if m > 1 {
		svc, err = traffic.ConstService(m)
		if err != nil {
			return nil, err
		}
	} else {
		svc = traffic.UnitService()
	}
	an, err := core.New(arr, svc)
	if err != nil {
		return nil, err
	}

	// One batch: the infinite-buffer reference run (occupancy tracked)
	// followed by each finite capacity. All run on the literal engine —
	// sc.point routes BufferCap/TrackOccupancy configs there.
	mkPoint := func(capMsgs int, track bool) sweep.Point {
		return sc.point(fmt.Sprintf("buffers/cap=%d", capMsgs), simnet.Config{
			K: k, Stages: nStages, P: p, Service: svc,
			BufferCap: capMsgs, TrackOccupancy: track,
		})
	}
	pts := []sweep.Point{mkPoint(0, true)}
	for _, c := range caps {
		pts = append(pts, mkPoint(c, false))
	}
	results, err := sc.runBatch(pts)
	if err != nil {
		return nil, err
	}
	ref := results[0]

	for i, c := range caps {
		res := results[i+1]
		// Analytic bound on per-stage blocking: arrivals block against
		// the queue's pre-service peak, which exceeds the stationary
		// work s by at most the k·m work a single cycle can deliver.
		peak := (c - k) * m
		if peak < 0 {
			peak = 0
		}
		ov, err := an.UnfinishedWorkTail(4096, peak)
		if err != nil {
			return nil, err
		}
		drop := float64(res.Dropped) / float64(res.Offered)
		exact := math.NaN()
		if m == 1 {
			q, err := core.NewFiniteQueue(arr, c)
			if err != nil {
				return nil, err
			}
			exact = q.DropProb()
		}
		sw.Rows = append(sw.Rows, BufferRow{
			Capacity:     c,
			DropFrac:     drop,
			PerStageDrop: drop / float64(nStages),
			Overflow:     ov,
			ExactDrop:    exact,
			MeanWait:     res.MeanTotalWait(),
			MaxDepth:     ref.MaxQueueDepth[0],
			MeanDepth:    ref.QueueDepth[0].Mean(),
		})
	}
	return sw, nil
}

// Render writes the sweep as a table.
func (sw *BufferSweep) Render(w io.Writer) error {
	header := []string{"capacity", "sim drop (total)", "per-stage drop", "exact chain (stage 1)", "tail estimate", "survivor wait"}
	var rows [][]string
	for _, r := range sw.Rows {
		exact := "-"
		if !math.IsNaN(r.ExactDrop) {
			exact = fmt.Sprintf("%.6f", r.ExactDrop)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Capacity),
			fmt.Sprintf("%.5f", r.DropFrac),
			fmt.Sprintf("%.6f", r.PerStageDrop),
			exact,
			fmt.Sprintf("%.6f", r.Overflow),
			fmt.Sprintf("%.4f", r.MeanWait),
		})
	}
	if err := textplot.Table(w, fmt.Sprintf("%s — %s", sw.Name, sw.Caption), header, rows); err != nil {
		return err
	}
	if len(sw.Rows) > 0 {
		_, err := fmt.Fprintf(w, "infinite-buffer occupancy at stage 1: mean %.3f, max %d\n",
			sw.Rows[0].MeanDepth, sw.Rows[0].MaxDepth)
		return err
	}
	return nil
}
