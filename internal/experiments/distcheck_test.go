package experiments

import (
	"strings"
	"testing"
)

func TestDistributionCheck(t *testing.T) {
	chk, err := DistributionCheck(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(chk.Rows) != 7 {
		t.Fatalf("rows %d", len(chk.Rows))
	}
	for _, r := range chk.Rows {
		if !r.Pass {
			t.Errorf("%s: simulated stage-1 distribution rejected: KS %g > crit %g",
				r.Model, r.KS, r.Critical)
		}
		if r.TV > 0.015 {
			t.Errorf("%s: TV %g too large", r.Model, r.TV)
		}
		if r.Messages < 10000 {
			t.Errorf("%s: too few messages %d", r.Model, r.Messages)
		}
	}
	var b strings.Builder
	if err := chk.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "KS 1% crit") {
		t.Fatal("render missing header")
	}
}
