package experiments

import (
	"fmt"
	"io"

	"banyan/internal/core"
	"banyan/internal/dist"
	"banyan/internal/simnet"
	"banyan/internal/textplot"
	"banyan/internal/traffic"
)

// DistRow is one traffic/service class of the distribution check.
type DistRow struct {
	Model    string
	Messages int64
	KS       float64 // Kolmogorov–Smirnov distance sim vs exact
	Critical float64 // 1% KS critical value for the sample size
	TV       float64 // total-variation distance
	ChiP     float64 // chi-square p-value (pooled cells)
	Pass     bool    // KS below critical value
}

// DistCheck validates Theorem 1 at the distribution level: for each
// traffic/service class the full simulated stage-1 waiting-time histogram
// is tested against the exact transform-derived distribution with a
// Kolmogorov–Smirnov test at the 1% level. This is the strongest form of
// the paper's first-stage claim — not just the mean and variance but
// every lattice probability.
type DistCheck struct {
	Name string
	Rows []DistRow
}

// DistributionCheck runs the check over the paper's traffic classes.
func DistributionCheck(sc Scale) (*DistCheck, error) {
	type class struct {
		name string
		cfg  simnet.Config
		arr  func() (traffic.Arrivals, error)
		svc  func() (traffic.Service, error)
	}
	unit := func() (traffic.Service, error) { return traffic.UnitService(), nil }
	classes := []class{
		{
			name: "uniform k=2 p=0.5 m=1",
			cfg:  simnet.Config{K: 2, Stages: 1, P: 0.5},
			arr:  func() (traffic.Arrivals, error) { return traffic.Uniform(2, 2, 0.5) },
			svc:  unit,
		},
		{
			name: "uniform k=4 p=0.8 m=1",
			cfg:  simnet.Config{K: 4, Stages: 1, P: 0.8},
			arr:  func() (traffic.Arrivals, error) { return traffic.Uniform(4, 4, 0.8) },
			svc:  unit,
		},
		{
			name: "bulk b=3 p=0.15",
			cfg:  simnet.Config{K: 2, Stages: 1, P: 0.15, Bulk: 3},
			arr:  func() (traffic.Arrivals, error) { return traffic.Bulk(2, 2, 0.15, 3) },
			svc:  unit,
		},
		{
			name: "hot-spot q=0.4 (exclusive)",
			cfg:  simnet.Config{K: 2, Stages: 1, P: 0.5, Q: 0.4},
			arr:  func() (traffic.Arrivals, error) { return traffic.NonuniformExclusive(2, 0.5, 0.4, 1) },
			svc:  unit,
		},
		{
			name: "constant m=4 ρ=0.5",
			cfg:  simnet.Config{K: 2, Stages: 1, P: 0.125},
			arr:  func() (traffic.Arrivals, error) { return traffic.Uniform(2, 2, 0.125) },
			svc:  func() (traffic.Service, error) { return traffic.ConstService(4) },
		},
		{
			name: "multi-size {4:.75, 8:.25}",
			cfg:  simnet.Config{K: 2, Stages: 1, P: 0.08},
			arr:  func() (traffic.Arrivals, error) { return traffic.Uniform(2, 2, 0.08) },
			svc: func() (traffic.Service, error) {
				return traffic.MultiService([]traffic.SizeMix{{Size: 4, Prob: 0.75}, {Size: 8, Prob: 0.25}})
			},
		},
		{
			name: "geometric μ=0.5 p=0.25",
			cfg:  simnet.Config{K: 2, Stages: 1, P: 0.25},
			arr:  func() (traffic.Arrivals, error) { return traffic.Uniform(2, 2, 0.25) },
			svc:  func() (traffic.Service, error) { return traffic.GeomService(0.5, 512) },
		},
	}

	chk := &DistCheck{Name: "Stage-1 distribution check (Theorem 1)"}
	for _, c := range classes {
		arr, err := c.arr()
		if err != nil {
			return nil, err
		}
		svc, err := c.svc()
		if err != nil {
			return nil, err
		}
		cfg := c.cfg
		cfg.Service = svc
		res, err := sc.run("distcheck/"+c.name, cfg)
		if err != nil {
			return nil, err
		}
		an, err := core.New(arr, svc)
		if err != nil {
			return nil, err
		}
		maxV := res.TotalWait.Max()
		order := maxV + 64
		if order < 256 {
			order = 256
		}
		exact, _, err := an.WaitDistribution(order)
		if err != nil {
			return nil, err
		}
		// OneSampleKS applies the autocorrelation-corrected effective
		// sample size N·(1-ρ)/(1+ρ): successive waits at a queue share
		// busy periods, so the i.i.d. critical value would be too tight.
		kr, err := dist.OneSampleKS(res.TotalWait.Counts(), exact, 0.01, arr.Rate()*svc.Mean())
		if err != nil {
			return nil, err
		}
		emp, err := dist.EmpiricalPMF(res.TotalWait.Counts())
		if err != nil {
			return nil, err
		}
		chiP := 0.0
		if stat, dof, cerr := dist.ChiSquare(res.TotalWait.Counts(), exact.Probs(), 5); cerr == nil {
			if pv, perr := dist.ChiSquarePValue(stat, dof); perr == nil {
				chiP = pv
			}
		}
		chk.Rows = append(chk.Rows, DistRow{
			Model:    c.name,
			Messages: res.Messages,
			KS:       kr.KS,
			Critical: kr.Critical,
			TV:       dist.TotalVariation(emp, exact),
			ChiP:     chiP,
			Pass:     kr.Pass,
		})
	}
	return chk, nil
}

// Render writes the check as a table.
func (chk *DistCheck) Render(w io.Writer) error {
	header := []string{"model", "messages", "KS", "KS 1% crit", "TV", "χ² p", "pass"}
	var rows [][]string
	for _, r := range chk.Rows {
		rows = append(rows, []string{
			r.Model,
			fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%.5f", r.KS),
			fmt.Sprintf("%.5f", r.Critical),
			fmt.Sprintf("%.5f", r.TV),
			fmt.Sprintf("%.3f", r.ChiP),
			fmt.Sprintf("%v", r.Pass),
		})
	}
	return textplot.Table(w, chk.Name, header, rows)
}
