package experiments

import (
	"fmt"
	"io"

	"banyan/internal/core"
	"banyan/internal/simnet"
	"banyan/internal/sweep"
	"banyan/internal/textplot"
)

// BurstyRow is one burst-length point of the burstiness sweep.
type BurstyRow struct {
	MeanBurst float64 // mean ON period, cycles (∞ burst = i.i.d. limit not included)
	SimW1     float64 // simulated stage-1 mean wait
	SimWDeep  float64 // simulated deep-stage mean wait
	SimV1     float64
	IIDW1     float64 // Theorem 1 prediction under the i.i.d. assumption
	Inflation float64 // SimW1 / IIDW1
}

// Bursty measures what source burstiness costs beyond the paper's
// i.i.d.-per-cycle model (the extension its reference [3], Burman &
// Smith, analyzes for a single queue): two-state Markov-modulated inputs
// with the mean load held fixed while the mean burst length grows. The
// i.i.d. formulas increasingly underpredict the waiting time.
type Bursty struct {
	Name    string
	Caption string
	K       int
	P       float64
	Rows    []BurstyRow
}

// BurstyExperiment sweeps the mean burst length at k=2, m=1, fixed mean
// load p with 50% duty cycle.
func BurstyExperiment(sc Scale, k int, p float64, burstLens []float64) (*Bursty, error) {
	if len(burstLens) == 0 {
		burstLens = []float64{2, 4, 8, 16}
	}
	b := &Bursty{
		Name:    "Bursty sources",
		Caption: fmt.Sprintf("Markov-modulated inputs at fixed mean load (k=%d, p=%g, 50%% duty)", k, p),
		K:       k,
		P:       p,
	}
	iid := core.UniformServiceOneMeanWait(k, k, p)
	const n = 6
	var pts []sweep.Point
	for _, L := range burstLens {
		if L < 1 {
			return nil, fmt.Errorf("experiments: burst length %g must be ≥ 1", L)
		}
		cfg := simnet.Config{
			K: k, Stages: n, P: p,
			Burst: &simnet.BurstParams{POnRate: 1 / L, POffRate: 1 / L},
		}
		pts = append(pts, sc.point(fmt.Sprintf("bursty/L=%g", L), cfg))
	}
	results, err := sc.runBatch(pts)
	if err != nil {
		return nil, err
	}
	for i, L := range burstLens {
		res := results[i]
		b.Rows = append(b.Rows, BurstyRow{
			MeanBurst: L,
			SimW1:     res.StageWait[0].Mean(),
			SimV1:     res.StageWait[0].Variance(),
			SimWDeep:  res.StageWait[n-1].Mean(),
			IIDW1:     iid,
			Inflation: res.StageWait[0].Mean() / iid,
		})
	}
	return b, nil
}

// Render writes the sweep as a table.
func (b *Bursty) Render(w io.Writer) error {
	header := []string{"mean burst", "sim w1", "sim v1", "sim w-deep", "iid w1 (Thm 1)", "inflation"}
	var rows [][]string
	for _, r := range b.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", r.MeanBurst),
			fmt.Sprintf("%.4f", r.SimW1),
			fmt.Sprintf("%.4f", r.SimV1),
			fmt.Sprintf("%.4f", r.SimWDeep),
			fmt.Sprintf("%.4f", r.IIDW1),
			fmt.Sprintf("%.2f×", r.Inflation),
		})
	}
	return textplot.Table(w, fmt.Sprintf("%s — %s", b.Name, b.Caption), header, rows)
}
