package experiments

import (
	"strings"
	"testing"
)

// TestAllTotalCases runs every Table VII–XII operating point at a reduced
// scale and asserts the Section V predictions track simulation — the full
// six-case version of TestTotalTablesShape's two cases.
func TestAllTotalCases(t *testing.T) {
	sc := Scale{TargetMessages: 40_000, WarmupCycles: 1200, Seed: 0xfeed}
	for _, tc := range TotalCases() {
		tc := tc
		t.Run(tc.Table, func(t *testing.T) {
			tbl, err := TotalTableFor(sc, tc)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range tbl.Rows {
				// Means within 10%, variances within 30% at this small
				// scale (heavy-load variance estimates are noisy).
				almost(t, r.SimW, r.PredW, 0.10*(1+r.PredW), tc.Table+" mean")
				almost(t, r.SimV, r.PredV, 0.30*(1+r.PredV), tc.Table+" variance")
			}
			// Depth scaling: totals roughly linear in n beyond the
			// first stages — n=12 between 1.5× and 2.7× the n=6 value.
			ratio := tbl.Rows[3].SimW / tbl.Rows[1].SimW
			if ratio < 1.5 || ratio > 2.7 {
				t.Fatalf("%s: depth ratio %g implausible", tc.Table, ratio)
			}
		})
	}
}

func TestTotalCasesMatchPaperGrid(t *testing.T) {
	cases := TotalCases()
	if len(cases) != 6 {
		t.Fatalf("cases: %d", len(cases))
	}
	// The six (p, m) pairs of the paper, in table order.
	want := []struct {
		p float64
		m int
	}{{0.2, 1}, {0.05, 4}, {0.5, 1}, {0.125, 4}, {0.8, 1}, {0.2, 4}}
	for i, c := range cases {
		if c.P != want[i].p || c.M != want[i].m || c.K != 2 {
			t.Fatalf("case %d: %+v", i, c)
		}
		if !strings.HasPrefix(c.Table, "Table ") || !strings.HasPrefix(c.Fig, "Figure ") {
			t.Fatalf("case %d labels: %q %q", i, c.Table, c.Fig)
		}
	}
	// Table/figure pairing: ρ bands 0.2, 0.2, 0.5, 0.5, 0.8, 0.8.
	rhos := []float64{0.2, 0.2, 0.5, 0.5, 0.8, 0.8}
	for i, c := range cases {
		if got := c.P * float64(c.M); got != rhos[i] {
			t.Fatalf("case %d: ρ = %g, want %g", i, got, rhos[i])
		}
	}
}
