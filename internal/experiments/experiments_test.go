package experiments

import (
	"math"
	"strings"
	"testing"

	"banyan/internal/simnet"
	"banyan/internal/sweep"
)

// testScale keeps the experiment tests fast while leaving enough samples
// for the shape assertions (≈2–3% Monte-Carlo error).
func testScale() Scale {
	return Scale{TargetMessages: 60_000, WarmupCycles: 800, Seed: 0xbeef}
}

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %.6g, want %.6g (tol %g)", msg, got, want, tol)
	}
}

func TestTableIShape(t *testing.T) {
	tbl, err := TableI(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Columns) != 5 {
		t.Fatalf("columns: %d", len(tbl.Columns))
	}
	for _, col := range tbl.Columns {
		// Stage 1 matches the exact analysis.
		almost(t, col.SimW[0], col.AnalysisW, 0.05*(1+col.AnalysisW), col.Label+" stage-1 mean")
		almost(t, col.SimV[0], col.AnalysisV, 0.10*(1+col.AnalysisV), col.Label+" stage-1 var")
		// Deep stages match the w∞ estimate.
		last := col.Stages - 1
		almost(t, col.SimW[last], col.EstimateW, 0.06*(1+col.EstimateW), col.Label+" deep mean")
		// Variance estimates converge slowly at heavy load; the quick
		// test scale leaves sizable Monte-Carlo error there.
		almost(t, col.SimV[last], col.EstimateV, 0.30*(1+col.EstimateV), col.Label+" deep var")
		// Waits increase through the stages (m = 1).
		if col.SimW[last] <= col.SimW[0] {
			t.Fatalf("%s: no stage growth", col.Label)
		}
	}
	// Waits increase with p across columns.
	for i := 1; i < len(tbl.Columns); i++ {
		if tbl.Columns[i].SimW[7] <= tbl.Columns[i-1].SimW[7] {
			t.Fatal("deep-stage wait not increasing in p")
		}
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ANALYSIS") || !strings.Contains(b.String(), "ESTIMATE") {
		t.Fatal("render missing paper rows")
	}
}

func TestTableIIShape(t *testing.T) {
	tbl, err := TableII(testScale())
	if err != nil {
		t.Fatal(err)
	}
	// At fixed p the first-stage wait rises with k: more inputs feed
	// each output port, so R''(1) = λ²(1-1/k) grows (eq. (6)).
	if !(tbl.Columns[0].AnalysisW < tbl.Columns[1].AnalysisW &&
		tbl.Columns[1].AnalysisW < tbl.Columns[2].AnalysisW) {
		t.Fatal("first-stage wait should rise with k at fixed p")
	}
	for _, col := range tbl.Columns {
		last := col.Stages - 1
		almost(t, col.SimW[last], col.EstimateW, 0.07*(1+col.EstimateW), col.Label+" deep mean")
	}
}

func TestTableIIIShape(t *testing.T) {
	tbl, err := TableIII(testScale())
	if err != nil {
		t.Fatal(err)
	}
	for i, col := range tbl.Columns {
		m := []int{2, 4, 8, 16}[i]
		// Paper anchor: exact first stage = (m·0.5(m-1/2))/(2·0.5)…
		wantW1 := float64(m) * 0.5 * (float64(m) - 0.5) / (2 * 0.5) / float64(m) // = 0.5(m-0.5)
		almost(t, col.AnalysisW, wantW1, 1e-9, col.Label+" analysis anchor")
		// Later stages are *lighter* than stage 1 (spacing effect) and
		// match the scaled estimate.
		last := col.Stages - 1
		if col.SimW[last] >= col.SimW[0] {
			t.Fatalf("%s: deep stage %g not below first %g", col.Label, col.SimW[last], col.SimW[0])
		}
		almost(t, col.SimW[last], col.EstimateW, 0.08*(1+col.EstimateW), col.Label+" deep mean")
		almost(t, col.SimV[last], col.EstimateV, 0.15*(1+col.EstimateV), col.Label+" deep var")
	}
	// At fixed ρ, deep-stage wait doubles with m (linear growth).
	r := tbl.Columns[2].SimW[7] / tbl.Columns[1].SimW[7]
	almost(t, r, 2, 0.15, "linear growth in m")
	// Variance quadruples (quadratic growth).
	rv := tbl.Columns[2].SimV[7] / tbl.Columns[1].SimV[7]
	almost(t, rv, 4, 0.6, "quadratic variance growth in m")
}

func TestTableIVShape(t *testing.T) {
	tbl, err := TableIV(testScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range tbl.Columns {
		almost(t, col.SimW[0], col.AnalysisW, 0.06*(1+col.AnalysisW), col.Label+" stage-1 vs exact")
		last := col.Stages - 1
		almost(t, col.SimW[last], col.EstimateW, 0.10*(1+col.EstimateW), col.Label+" deep vs estimate")
	}
	// Heavier mixtures (more size-8 messages) wait longer at fixed ρ.
	first := tbl.Columns[0] // g1 = 1 (all size 4)
	lastCol := tbl.Columns[len(tbl.Columns)-1]
	if lastCol.SimW[7] <= first.SimW[7] {
		t.Fatal("all-size-8 mixture should wait longer than all-size-4")
	}
}

func TestTableVShape(t *testing.T) {
	tbl, err := TableV(testScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range tbl.Columns {
		almost(t, col.SimW[0], col.AnalysisW, 0.05*(1+col.AnalysisW), col.Label+" stage-1 vs exclusive exact")
		last := col.Stages - 1
		almost(t, col.SimW[last], col.EstimateW, 0.06*(1+col.EstimateW), col.Label+" deep vs estimate")
	}
	// Deep-stage waits decrease with q.
	for i := 1; i < len(tbl.Columns); i++ {
		if tbl.Columns[i].SimW[7] >= tbl.Columns[i-1].SimW[7] {
			t.Fatal("deep-stage wait should fall with q")
		}
	}
}

func TestTableVIShape(t *testing.T) {
	tbl, err := TableVI(testScale())
	if err != nil {
		t.Fatal(err)
	}
	lags := tbl.LagCorrelations()
	// Paper Table VI: lag-1 ≈ 0.12, decaying geometrically with b≈0.4.
	almost(t, lags[0], 0.12, 0.025, "lag-1 correlation")
	for i := 1; i < 4; i++ {
		ratio := lags[i] / lags[i-1]
		if ratio < 0.2 || ratio > 0.65 {
			t.Fatalf("lag decay ratio %g at lag %d not geometric ≈ 0.4", ratio, i+1)
		}
	}
	almost(t, tbl.A, 0.12, 1e-12, "model a")
	almost(t, tbl.B, 0.4, 1e-12, "model b")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "simulation") {
		t.Fatal("render missing simulation block")
	}
}

func TestTotalTablesShape(t *testing.T) {
	for _, tc := range []func(Scale) (*TotalTable, error){TableIX, TableX} {
		tbl, err := tc(testScale())
		if err != nil {
			t.Fatal(err)
		}
		if len(tbl.Rows) != 4 {
			t.Fatalf("rows: %d", len(tbl.Rows))
		}
		for _, r := range tbl.Rows {
			almost(t, r.SimW, r.PredW, 0.08*(1+r.PredW), tbl.Name+" total mean")
			almost(t, r.SimV, r.PredV, 0.15*(1+r.PredV), tbl.Name+" total variance")
		}
		// Totals grow with depth.
		for i := 1; i < 4; i++ {
			if tbl.Rows[i].SimW <= tbl.Rows[i-1].SimW {
				t.Fatal("total wait should grow with depth")
			}
		}
		var b strings.Builder
		if err := tbl.Render(&b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "stages") {
			t.Fatal("render missing rows")
		}
	}
}

func TestFigureShape(t *testing.T) {
	fig, err := Figure5(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 4 {
		t.Fatalf("panels: %d", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		// The gamma fit is the paper's headline: total-variation
		// distance stays small and the tails agree.
		if p.TV > 0.10 {
			t.Fatalf("n=%d: TV distance %g too large", p.NStages, p.TV)
		}
		if p.ModelTail > 0 {
			ratio := p.SimTail / p.ModelTail
			if ratio < 0.4 || ratio > 2.5 {
				t.Fatalf("n=%d: tail ratio %g", p.NStages, ratio)
			}
		}
		// Sim probabilities normalize.
		sum := 0.0
		for _, v := range p.Sim {
			sum += v
		}
		almost(t, sum, 1, 1e-9, "sim histogram mass")
	}
	// The gamma fit improves (or at least does not collapse) with depth:
	// CLT pushes the total toward smooth unimodality.
	if fig.Panels[3].TV > fig.Panels[0].TV*1.5 {
		t.Fatal("fit degraded sharply with depth")
	}
	var b strings.Builder
	if err := fig.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "gamma") {
		t.Fatal("render missing gamma annotation")
	}
	var csv strings.Builder
	if err := fig.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "wait,sim,gamma") {
		t.Fatal("csv missing header")
	}
}

func TestScaleDerivation(t *testing.T) {
	sc := Quick()
	pa := sc.point("a", simnet.Config{K: 2, Stages: 4, P: 0.3})
	pb := sc.point("b", simnet.Config{K: 2, Stages: 4, P: 0.4})
	if sweep.SeedFor(pa, sc.Seed) == sweep.SeedFor(pb, sc.Seed) {
		t.Fatal("distinct configs must derive distinct seeds")
	}
	if c := sc.cyclesFor(256, 0.5, 1); c < 1000 {
		t.Fatalf("cycles %d too small for target", c)
	}
	if c := sc.cyclesFor(4096, 0.8, 1); c < 200 {
		t.Fatalf("cycle floor violated: %d", c)
	}
}
