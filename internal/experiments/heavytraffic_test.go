package experiments

import (
	"strings"
	"testing"
)

func TestHeavyTrafficExperiment(t *testing.T) {
	ht, err := HeavyTrafficExperiment(testScale(), 2, []float64{0.5, 0.8, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(ht.Rows) != 3 {
		t.Fatalf("rows %d", len(ht.Rows))
	}
	for i, r := range ht.Rows {
		// r(p) stays in the plausible band [1, 1+2p/5+slack].
		if r.SimRatio < 1 || r.SimRatio > 1.45 {
			t.Fatalf("row %d: ratio %g out of band", i, r.SimRatio)
		}
		// The probe stays positive and bounded.
		if r.Probe <= 0 || r.Probe > 0.5 {
			t.Fatalf("row %d: probe %g out of band", i, r.Probe)
		}
		// Model and simulation agree within 15% (the model is the
		// crude linear interpolation; the paper notes concavity).
		if r.Probe/r.Model < 0.8 || r.Probe/r.Model > 1.2 {
			t.Fatalf("row %d: probe %g vs model %g", i, r.Probe, r.Model)
		}
	}
	// The probe grows toward its limit (w∞ ~ C/(1-p) ⇒ probe → C).
	if ht.Rows[2].Probe <= ht.Rows[0].Probe {
		t.Fatal("probe should grow with p toward its limit")
	}
	var b strings.Builder
	if err := ht.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "sim r(p)") {
		t.Fatal("render missing header")
	}
	// Default load grid.
	if _, err := HeavyTrafficExperiment(Scale{TargetMessages: 20000, WarmupCycles: 300, Seed: 7}, 2, nil); err != nil {
		t.Fatal(err)
	}
	// Saturation rejected.
	if _, err := HeavyTrafficExperiment(testScale(), 2, []float64{1.0}); err == nil {
		t.Fatal("expected p<1 validation")
	}
}
