package experiments

import (
	"fmt"
	"io"

	"banyan/internal/core"
	"banyan/internal/simnet"
	"banyan/internal/stages"
	"banyan/internal/sweep"
	"banyan/internal/textplot"
)

// HeavyRow is one load point of the heavy-traffic probe.
type HeavyRow struct {
	P        float64
	SimRatio float64 // measured r(p) = w∞/w₁
	Probe    float64 // (1-p)·w∞ simulated
	Model    float64 // (1-p)·w∞ under the interpolation model
}

// HeavyTraffic is the Conclusion-section conjecture experiment: the
// paper expects lim_{p→1} (1-p)·w∞(p) to exist (every classical queue
// has O(1/(1-ρ)) waits) and suggests a heavy-traffic analysis would pin
// r(p) = w∞/w₁ at p = 1. This experiment pushes the simulator toward
// saturation and watches both quantities stabilize; the model column is
// the linear interpolation r(p) = 1 + 4p/(5k), whose probe limit is
// (1+4/(5k))·(1-1/k)/2.
type HeavyTraffic struct {
	Name    string
	Caption string
	K       int
	Rows    []HeavyRow
}

// HeavyTrafficExperiment sweeps p toward 1 at k=2, m=1.
func HeavyTrafficExperiment(sc Scale, k int, loads []float64) (*HeavyTraffic, error) {
	if len(loads) == 0 {
		loads = []float64{0.5, 0.7, 0.8, 0.9, 0.95}
	}
	ht := &HeavyTraffic{
		Name:    "Heavy traffic",
		Caption: fmt.Sprintf("(1-p)·w∞ probe toward saturation (k=%d, m=1)", k),
		K:       k,
	}
	md := model()
	n := 8
	var pts []sweep.Point
	for _, p := range loads {
		if p >= 1 {
			return nil, fmt.Errorf("experiments: heavy-traffic load %g must be < 1", p)
		}
		cfg := simnet.Config{K: k, Stages: n, P: p}
		// Saturation needs longer warmup: transients decay like
		// 1/(1-p)².
		cfg.Warmup = sc.WarmupCycles + int(20/((1-p)*(1-p)))
		pts = append(pts, sc.point(fmt.Sprintf("heavy/p=%g", p), cfg))
	}
	results, err := sc.runBatch(pts)
	if err != nil {
		return nil, err
	}
	for i, p := range loads {
		res := results[i]
		wInf := (res.StageWait[n-1].Mean() + res.StageWait[n-2].Mean()) / 2
		w1 := core.UniformServiceOneMeanWait(k, k, p)
		pr := stages.Params{K: k, M: 1, P: p}
		ht.Rows = append(ht.Rows, HeavyRow{
			P:        p,
			SimRatio: wInf / w1,
			Probe:    (1 - p) * wInf,
			Model:    md.HeavyTrafficProbe(pr),
		})
	}
	return ht, nil
}

// Render writes the probe table.
func (ht *HeavyTraffic) Render(w io.Writer) error {
	header := []string{"p", "sim r(p)", "sim (1-p)w∞", "model (1-p)w∞"}
	var rows [][]string
	for _, r := range ht.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", r.P),
			fmt.Sprintf("%.4f", r.SimRatio),
			fmt.Sprintf("%.4f", r.Probe),
			fmt.Sprintf("%.4f", r.Model),
		})
	}
	return textplot.Table(w, fmt.Sprintf("%s — %s", ht.Name, ht.Caption), header, rows)
}
