package experiments

import (
	"fmt"
	"io"
	"math"

	"banyan/internal/dist"
	"banyan/internal/textplot"
)

// FigurePanel is one panel of a Figure 3–8 experiment: the simulated
// distribution of the total waiting time through an n-stage network, with
// the gamma approximation matched to the Section V predicted moments.
type FigurePanel struct {
	NStages int
	Sim     []float64  // empirical P(total wait = j)
	Model   []float64  // gamma cell probabilities
	Gamma   dist.Gamma // the fitted gamma
	SimMean float64
	SimVar  float64
	// TV is the total-variation distance between the simulated and
	// gamma distributions, the scalar "how good is the fit" summary
	// used by the tests. TVConv is the same metric for the library's
	// sharper convolution predictor (exact stage-1 distribution plus a
	// gamma block for the later stages).
	TV     float64
	TVConv float64
	// TailErr compares P(X > x95) where x95 is the model's 95% point —
	// the paper emphasizes tail accuracy.
	SimTail, ModelTail float64
}

// Figure is a Figure 3–8 experiment result: four panels at depths
// 3, 6, 9, 12.
type Figure struct {
	Name    string
	Caption string
	Case    TotalCase
	Panels  []FigurePanel
}

// FigureFor reproduces one of Figures 3–8 for the given operating point.
func FigureFor(sc Scale, tc TotalCase) (*Figure, error) {
	f := &Figure{
		Name: tc.Fig,
		Caption: fmt.Sprintf("distribution of total waiting times — simulation and gamma prediction (k=%d, p=%g, m=%d)",
			tc.K, tc.P, tc.M),
		Case: tc,
	}
	results, err := sc.runBatch(totalPoints(sc, tc, false))
	if err != nil {
		return nil, err
	}
	for i, n := range totalDepths {
		res := results[i]
		nw := predictor(tc, n)
		g, err := nw.GammaApprox()
		if err != nil {
			return nil, err
		}
		maxV := res.TotalWait.Max()
		cells := maxV + 1
		if q, qerr := g.Quantile(0.9999); qerr == nil {
			if c := int(q) + 2; c > cells {
				cells = c
			}
		}
		sim := make([]float64, cells)
		for j := 0; j < cells; j++ {
			sim[j] = res.TotalWait.Prob(j)
		}
		modelPMF := g.Discretize(cells)
		model := modelPMF.Probs()
		simPMF, err := dist.EmpiricalPMF(res.TotalWait.Counts())
		if err != nil {
			return nil, err
		}
		panel := FigurePanel{
			NStages: n,
			Sim:     sim,
			Model:   model,
			Gamma:   g,
			SimMean: res.MeanTotalWait(),
			SimVar:  res.VarTotalWait(),
			TV:      dist.TotalVariation(simPMF, modelPMF),
		}
		if convPMF, cerr := nw.ConvolutionPMF(cells); cerr == nil {
			panel.TVConv = dist.TotalVariation(simPMF, convPMF)
		}
		if q, qerr := g.Quantile(0.95); qerr == nil {
			x := int(math.Ceil(q))
			panel.SimTail = res.TotalWait.Tail(x)
			panel.ModelTail = g.Tail(float64(x) + 0.5)
		}
		f.Panels = append(f.Panels, panel)
	}
	return f, nil
}

// Figure3 … Figure8 regenerate the individual figures.
func Figure3(sc Scale) (*Figure, error) { return FigureFor(sc, TotalCases()[0]) }
func Figure4(sc Scale) (*Figure, error) { return FigureFor(sc, TotalCases()[1]) }
func Figure5(sc Scale) (*Figure, error) { return FigureFor(sc, TotalCases()[2]) }
func Figure6(sc Scale) (*Figure, error) { return FigureFor(sc, TotalCases()[3]) }
func Figure7(sc Scale) (*Figure, error) { return FigureFor(sc, TotalCases()[4]) }
func Figure8(sc Scale) (*Figure, error) { return FigureFor(sc, TotalCases()[5]) }

// Render draws every panel as an ASCII histogram with the gamma overlay.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", f.Name, f.Caption); err != nil {
		return err
	}
	for _, p := range f.Panels {
		title := fmt.Sprintf("\n%d stages: sim mean %.3f var %.3f | gamma(shape=%.3f, scale=%.3f) mean %.3f var %.3f | TV %.4f (convolution %.4f)",
			p.NStages, p.SimMean, p.SimVar, p.Gamma.Shape, p.Gamma.Scale, p.Gamma.Mean(), p.Gamma.Variance(), p.TV, p.TVConv)
		if err := textplot.Histogram(w, title, p.Sim, p.Model, 56, 1e-3); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the figure's panels as CSV (one block per panel).
func (f *Figure) RenderCSV(w io.Writer) error {
	for _, p := range f.Panels {
		if _, err := fmt.Fprintf(w, "# %s, %d stages\n", f.Name, p.NStages); err != nil {
			return err
		}
		if err := textplot.CSV(w, []string{"wait", "sim", "gamma"}, p.Sim, p.Model); err != nil {
			return err
		}
	}
	return nil
}
