// Package design turns the paper's formulas into the design studies they
// were built for ("formulas derived in a previous paper … have been
// heavily used in designing both the NYU Ultracomputer and RP3"): given a
// machine size and workload, evaluate candidate interconnect designs —
// switch radix, message size, buffer depth — against latency and loss
// targets, using the exact first-stage analysis, the Section IV/V
// approximations, and the finite-buffer chain.
package design

import (
	"fmt"
	"math"
	"sort"

	"banyan/internal/core"
	"banyan/internal/delay"
	"banyan/internal/dist"
	"banyan/internal/stages"
	"banyan/internal/traffic"
)

// Point is one candidate interconnect design.
type Point struct {
	PEs int     // processors to connect (network size rounds up to k^n)
	K   int     // switch radix
	M   int     // message size in packets (constant)
	P   float64 // per-PE request probability per cycle
}

// Metrics summarizes a design's predicted behaviour.
type Metrics struct {
	Stages       int     // n = ⌈log_k PEs⌉
	Endpoints    int     // k^n ≥ PEs
	Rho          float64 // traffic intensity m·p
	MeanWait     float64 // total mean waiting time, cycles
	VarWait      float64 // total waiting-time variance
	MeanTransit  float64 // waiting + cut-through service (n+m-1)
	P99Transit   float64 // 99th-percentile transit via the gamma approximation
	Crosspoints  int     // n·(k^n/k)·k² — switch hardware cost proxy
	BufferFor1e3 int     // per-queue waiting room for ≤1e-3 loss (m=1 exact chain; m>1 work-tail estimate)
}

// Evaluate predicts the metrics of a candidate design.
func Evaluate(pt Point) (Metrics, error) {
	if pt.PEs < 2 {
		return Metrics{}, fmt.Errorf("design: need at least 2 PEs, got %d", pt.PEs)
	}
	if pt.K < 2 {
		return Metrics{}, fmt.Errorf("design: switch radix %d must be at least 2", pt.K)
	}
	if pt.M < 1 {
		return Metrics{}, fmt.Errorf("design: message size %d must be at least 1", pt.M)
	}
	n := 1
	size := pt.K
	for size < pt.PEs {
		size *= pt.K
		n++
		if n > 40 {
			return Metrics{}, fmt.Errorf("design: network too deep")
		}
	}
	pr := stages.Params{K: pt.K, M: pt.M, P: pt.P}
	if err := pr.Validate(); err != nil {
		return Metrics{}, fmt.Errorf("design: %w", err)
	}
	nw, err := delay.New(stages.DefaultModel(), pr, n)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{
		Stages:      n,
		Endpoints:   size,
		Rho:         pr.Rho(),
		MeanWait:    nw.TotalMeanWait(),
		VarWait:     nw.TotalVarWait(),
		Crosspoints: n * (size / pt.K) * pt.K * pt.K,
	}
	m.MeanTransit = m.MeanWait + float64(nw.TotalServiceTime())
	g, err := nw.GammaApprox()
	if err != nil {
		return Metrics{}, err
	}
	q99, err := g.Quantile(0.99)
	if err != nil {
		return Metrics{}, err
	}
	m.P99Transit = q99 + float64(nw.TotalServiceTime())

	// Buffer sizing for ≤1e-3 per-queue loss.
	arr, err := traffic.Uniform(pt.K, pt.K, pt.P)
	if err != nil {
		return Metrics{}, err
	}
	if pt.M == 1 {
		b, err := core.MinCapacityForLoss(arr, 1e-3, 4096)
		if err != nil {
			return Metrics{}, err
		}
		m.BufferFor1e3 = b
	} else {
		svc, err := traffic.ConstService(pt.M)
		if err != nil {
			return Metrics{}, err
		}
		an, err := core.New(arr, svc)
		if err != nil {
			return Metrics{}, err
		}
		work, err := an.SizeBufferForOverflow(1e-3)
		if err != nil {
			return Metrics{}, err
		}
		// Convert work units (packet-cycles) to message slots.
		m.BufferFor1e3 = (work + pt.M - 1) / pt.M
	}
	return m, nil
}

// Candidate pairs a design with its metrics.
type Candidate struct {
	Point    Point
	Metrics  Metrics
	Feasible bool // meets the SLO
}

// RecommendRadix evaluates one candidate per radix and returns them
// sorted by hardware cost (crosspoints), cheapest feasible first. A
// candidate is feasible when its 99th-percentile transit is at most
// sloP99 cycles.
func RecommendRadix(pes, m int, p, sloP99 float64, radices []int) ([]Candidate, error) {
	if len(radices) == 0 {
		radices = []int{2, 4, 8}
	}
	var out []Candidate
	for _, k := range radices {
		pt := Point{PEs: pes, K: k, M: m, P: p}
		met, err := Evaluate(pt)
		if err != nil {
			// Infeasible radix (e.g. unstable): report as such rather
			// than failing the whole sweep.
			out = append(out, Candidate{Point: pt, Feasible: false})
			continue
		}
		out = append(out, Candidate{Point: pt, Metrics: met, Feasible: met.P99Transit <= sloP99})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		if !a.Feasible {
			return false
		}
		return a.Metrics.Crosspoints < b.Metrics.Crosspoints
	})
	return out, nil
}

// MaxMessageSize returns the largest constant message size m whose
// predicted p99 transit stays within sloP99 at fixed payload throughput
// (ρ held constant: p = rho/m) — the paper's headline tradeoff quantified.
func MaxMessageSize(pes, k int, rho, sloP99 float64, maxM int) (int, error) {
	if rho <= 0 || rho >= 1 {
		return 0, fmt.Errorf("design: intensity %g out of (0,1)", rho)
	}
	best := 0
	for m := 1; m <= maxM; m++ {
		pt := Point{PEs: pes, K: k, M: m, P: rho / float64(m)}
		met, err := Evaluate(pt)
		if err != nil {
			return 0, err
		}
		if met.P99Transit <= sloP99 {
			best = m
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("design: no message size meets p99 ≤ %g at ρ=%g", sloP99, rho)
	}
	return best, nil
}

// SlowestOfN returns the expected maximum transit over nProc independent
// messages (the barrier-latency proxy of the Ultracomputer example),
// approximated by the (1 - 1/nProc) gamma quantile plus service.
func SlowestOfN(pt Point, nProc int) (float64, error) {
	if nProc < 1 {
		return 0, fmt.Errorf("design: need at least one processor")
	}
	met, err := Evaluate(pt)
	if err != nil {
		return 0, err
	}
	g, err := dist.GammaFromMoments(met.MeanWait, met.VarWait)
	if err != nil {
		return 0, err
	}
	q, err := g.Quantile(1 - 1/float64(nProc))
	if err != nil {
		return 0, err
	}
	return q + (met.MeanTransit - met.MeanWait), nil
}

// String renders a metrics summary.
func (m Metrics) String() string {
	return fmt.Sprintf("n=%d size=%d ρ=%.3f wait=%.2f±%.2f transit=%.2f p99=%.1f xpoints=%d buf=%d",
		m.Stages, m.Endpoints, m.Rho, m.MeanWait, math.Sqrt(m.VarWait),
		m.MeanTransit, m.P99Transit, m.Crosspoints, m.BufferFor1e3)
}
