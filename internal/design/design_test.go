package design

import (
	"math"
	"strings"
	"testing"
)

func TestEvaluateBasics(t *testing.T) {
	m, err := Evaluate(Point{PEs: 64, K: 2, M: 1, P: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stages != 6 || m.Endpoints != 64 {
		t.Fatalf("geometry: %+v", m)
	}
	if math.Abs(m.Rho-0.5) > 1e-12 {
		t.Fatalf("rho %g", m.Rho)
	}
	// Known totals for (k=2, p=0.5, n=6): mean wait ≈ 1.717.
	if math.Abs(m.MeanWait-1.717) > 0.01 {
		t.Fatalf("mean wait %g", m.MeanWait)
	}
	if m.MeanTransit != m.MeanWait+6 { // n+m-1 = 6
		t.Fatalf("transit %g", m.MeanTransit)
	}
	if m.P99Transit <= m.MeanTransit {
		t.Fatal("p99 below mean")
	}
	if m.Crosspoints != 6*32*4 {
		t.Fatalf("crosspoints %d", m.Crosspoints)
	}
	if m.BufferFor1e3 < 2 || m.BufferFor1e3 > 20 {
		t.Fatalf("buffer recommendation %d", m.BufferFor1e3)
	}
	if !strings.Contains(m.String(), "p99=") {
		t.Fatalf("string: %s", m.String())
	}
}

func TestEvaluateRoundsUpNetwork(t *testing.T) {
	m, err := Evaluate(Point{PEs: 60, K: 2, M: 1, P: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Endpoints != 64 || m.Stages != 6 {
		t.Fatalf("rounding: %+v", m)
	}
	m4, err := Evaluate(Point{PEs: 60, K: 4, M: 1, P: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if m4.Endpoints != 64 || m4.Stages != 3 {
		t.Fatalf("radix-4 rounding: %+v", m4)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(Point{PEs: 1, K: 2, M: 1, P: 0.5}); err == nil {
		t.Fatal("expected PE validation")
	}
	if _, err := Evaluate(Point{PEs: 8, K: 1, M: 1, P: 0.5}); err == nil {
		t.Fatal("expected radix validation")
	}
	if _, err := Evaluate(Point{PEs: 8, K: 2, M: 0, P: 0.5}); err == nil {
		t.Fatal("expected size validation")
	}
	if _, err := Evaluate(Point{PEs: 8, K: 2, M: 4, P: 0.5}); err == nil {
		t.Fatal("expected stability validation (ρ=2)")
	}
}

func TestEvaluateBufferForLargeMessages(t *testing.T) {
	m1, err := Evaluate(Point{PEs: 64, K: 2, M: 1, P: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	m4, err := Evaluate(Point{PEs: 64, K: 2, M: 4, P: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	if m4.BufferFor1e3 < m1.BufferFor1e3 {
		t.Fatalf("larger messages should not shrink buffer slots: %d vs %d",
			m4.BufferFor1e3, m1.BufferFor1e3)
	}
}

func TestRecommendRadix(t *testing.T) {
	cands, err := RecommendRadix(256, 1, 0.5, 20, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("candidates %d", len(cands))
	}
	// All radices should be feasible at this relaxed SLO, sorted by
	// cost ascending among feasible ones.
	for i, c := range cands {
		if !c.Feasible {
			t.Fatalf("candidate %d infeasible: %+v", i, c)
		}
		if i > 0 && c.Metrics.Crosspoints < cands[i-1].Metrics.Crosspoints {
			t.Fatal("not sorted by cost")
		}
	}
	// A brutal SLO leaves nothing feasible; results still returned.
	none, err := RecommendRadix(256, 1, 0.5, 1, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range none {
		if c.Feasible {
			t.Fatal("impossible SLO marked feasible")
		}
	}
	// Unstable radix configurations are reported infeasible, not fatal.
	mixed, err := RecommendRadix(64, 4, 0.5, 100, []int{2}) // ρ = 2
	if err != nil {
		t.Fatal(err)
	}
	if mixed[0].Feasible {
		t.Fatal("unstable design marked feasible")
	}
	// Default radices used when none given.
	def, err := RecommendRadix(64, 1, 0.4, 50, nil)
	if err != nil || len(def) != 3 {
		t.Fatalf("default radices: %d, %v", len(def), err)
	}
}

func TestMaxMessageSize(t *testing.T) {
	// At fixed ρ the wait grows ∝ m, so a transit SLO caps m.
	m, err := MaxMessageSize(64, 2, 0.5, 40, 32)
	if err != nil {
		t.Fatal(err)
	}
	if m < 2 || m > 32 {
		t.Fatalf("max size %d", m)
	}
	// A tighter SLO allows a smaller max size.
	tight, err := MaxMessageSize(64, 2, 0.5, 15, 32)
	if err != nil {
		t.Fatal(err)
	}
	if tight >= m {
		t.Fatalf("tighter SLO gave %d ≥ %d", tight, m)
	}
	if _, err := MaxMessageSize(64, 2, 0.5, 0.5, 4); err == nil {
		t.Fatal("expected no-feasible-size error")
	}
	if _, err := MaxMessageSize(64, 2, 1.2, 40, 4); err == nil {
		t.Fatal("expected intensity validation")
	}
}

func TestSlowestOfN(t *testing.T) {
	pt := Point{PEs: 64, K: 2, M: 1, P: 0.5}
	s1, err := SlowestOfN(pt, 1)
	if err != nil {
		t.Fatal(err)
	}
	s64, err := SlowestOfN(pt, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s64 <= s1 {
		t.Fatalf("slowest of 64 (%g) not above median-ish of 1 (%g)", s64, s1)
	}
	met, err := Evaluate(pt)
	if err != nil {
		t.Fatal(err)
	}
	if s64 <= met.MeanTransit {
		t.Fatal("slowest-of-64 below the mean transit")
	}
	if _, err := SlowestOfN(pt, 0); err == nil {
		t.Fatal("expected processor-count validation")
	}
}
