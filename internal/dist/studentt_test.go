package dist

import (
	"math"
	"testing"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		{1, 1, 0.3, 0.3},     // uniform CDF
		{2, 1, 0.5, 0.25},    // I_x(2,1) = x²
		{1, 2, 0.5, 0.75},    // I_x(1,2) = 1-(1-x)²
		{0.5, 0.5, 0.5, 0.5}, // arcsine distribution median
		// I_x(5,3) = P(Bin(7, x) ≥ 5) = 0.6470695 at x = 0.7.
		{5, 3, 0.7, 0.6470695},
	}
	for _, c := range cases {
		got, err := RegIncBeta(c.a, c.b, c.x)
		if err != nil {
			t.Fatalf("RegIncBeta(%g,%g,%g): %v", c.a, c.b, c.x, err)
		}
		if math.Abs(got-c.want) > 1e-10 {
			t.Errorf("RegIncBeta(%g,%g,%g) = %.12g, want %.12g", c.a, c.b, c.x, got, c.want)
		}
	}
	if _, err := RegIncBeta(0, 1, 0.5); err == nil {
		t.Error("RegIncBeta accepted a = 0")
	}
	if _, err := RegIncBeta(1, 1, 1.5); err == nil {
		t.Error("RegIncBeta accepted x = 1.5")
	}
}

func TestTCDFMatchesSymmetry(t *testing.T) {
	for _, df := range []float64{1, 2, 5, 30, 200} {
		for _, x := range []float64{0, 0.5, 1, 2.5, 7} {
			up, err := TCDF(df, x)
			if err != nil {
				t.Fatal(err)
			}
			lo, err := TCDF(df, -x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(up+lo-1) > 1e-12 {
				t.Errorf("df=%g x=%g: F(x)+F(-x) = %g, want 1", df, x, up+lo)
			}
		}
	}
	// df=1 is the standard Cauchy: F(1) = 3/4.
	c, err := TCDF(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.75) > 1e-10 {
		t.Errorf("Cauchy F(1) = %.12g, want 0.75", c)
	}
}

// TestTQuantileCriticalValues pins the two-sided 95% critical values the
// confidence-interval machinery uses, against the standard t table.
func TestTQuantileCriticalValues(t *testing.T) {
	cases := []struct {
		df   float64
		want float64 // t_{0.975, df}
	}{
		{1, 12.7062},
		{2, 4.30265},
		{4, 2.77645},
		{9, 2.26216},
		{29, 2.04523},
		{99, 1.98422},
	}
	for _, c := range cases {
		got := TQuantile(c.df, 0.975)
		if math.Abs(got-c.want) > 5e-4 {
			t.Errorf("TQuantile(%g, 0.975) = %.5f, want %.5f", c.df, got, c.want)
		}
	}
	// Large df converges to the normal critical value.
	if got := TQuantile(1e6, 0.975); math.Abs(got-1.959964) > 1e-3 {
		t.Errorf("TQuantile(1e6, 0.975) = %.5f, want ≈1.95996", got)
	}
}

func TestTQuantileRoundTripAndEdges(t *testing.T) {
	for _, df := range []float64{1, 3, 7, 24, 120} {
		for _, p := range []float64{0.55, 0.9, 0.975, 0.995, 0.9999} {
			q := TQuantile(df, p)
			back, err := TCDF(df, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(back-p) > 1e-9 {
				t.Errorf("TCDF(%g, TQuantile(%g, %g)) = %.12g", df, df, p, back)
			}
			if lo := TQuantile(df, 1-p); math.Abs(lo+q) > 1e-9*(1+q) {
				t.Errorf("TQuantile asymmetric: df=%g p=%g: %g vs %g", df, p, lo, q)
			}
		}
	}
	if !math.IsInf(TQuantile(5, 1), 1) || !math.IsInf(TQuantile(5, 0), -1) {
		t.Error("TQuantile boundary values not ±Inf")
	}
	if TQuantile(5, 0.5) != 0 {
		t.Error("TQuantile median not 0")
	}
	if !math.IsNaN(TQuantile(0, 0.9)) || !math.IsNaN(TQuantile(-1, 0.9)) {
		t.Error("TQuantile accepted nonpositive df")
	}
}
