package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveLinearKnown(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		almost(t, x[i], want[i], 1e-10, "solution component")
	}
}

func TestSolveLinearRandomRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		a := make([][]float64, n)
		orig := make([][]float64, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			orig[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
				if i == j {
					a[i][j] += float64(n) // diagonally dominant
				}
				orig[i][j] = a[i][j]
			}
		}
		for i := range b {
			for j := range xTrue {
				b[i] += orig[i][j] * xTrue[j]
			}
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			almost(t, x[i], xTrue[i], 1e-8*(1+math.Abs(xTrue[i])), "roundtrip solve")
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular-system error")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("expected row-length error")
	}
}

func TestStationaryDistTwoState(t *testing.T) {
	// P(0→1)=0.3, P(1→0)=0.6 → π = (2/3, 1/3).
	p := [][]float64{{0.7, 0.3}, {0.6, 0.4}}
	pi, err := StationaryDist(p)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, pi[0], 2.0/3, 1e-10, "π0")
	almost(t, pi[1], 1.0/3, 1e-10, "π1")
}

func TestStationaryDistRandomChain(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 40
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, n)
		sum := 0.0
		for j := range p[i] {
			p[i][j] = rng.Float64() + 0.01 // strictly positive → irreducible
			sum += p[i][j]
		}
		for j := range p[i] {
			p[i][j] /= sum
		}
	}
	pi, err := StationaryDist(p)
	if err != nil {
		t.Fatal(err)
	}
	// πP = π.
	for j := 0; j < n; j++ {
		acc := 0.0
		for i := 0; i < n; i++ {
			acc += pi[i] * p[i][j]
		}
		almost(t, acc, pi[j], 1e-10, "stationarity")
	}
	sum := 0.0
	for _, v := range pi {
		if v < 0 {
			t.Fatal("negative stationary probability")
		}
		sum += v
	}
	almost(t, sum, 1, 1e-12, "normalization")
}

func TestStationaryDistValidation(t *testing.T) {
	if _, err := StationaryDist(nil); err == nil {
		t.Fatal("expected empty-chain error")
	}
	if _, err := StationaryDist([][]float64{{0.5, 0.4}, {0.5, 0.5}}); err == nil {
		t.Fatal("expected row-sum error")
	}
	if _, err := StationaryDist([][]float64{{1.5, -0.5}, {0.5, 0.5}}); err == nil {
		t.Fatal("expected negativity error")
	}
	if _, err := StationaryDist([][]float64{{1, 0}}); err == nil {
		t.Fatal("expected shape error")
	}
}
