package dist

import (
	"fmt"
	"math"
)

// SolveLinear solves the dense linear system A·x = b in place by Gaussian
// elimination with partial pivoting. A is row-major (n×n), b has length
// n; both are clobbered. It backs the small Markov-chain solves of the
// finite-buffer analysis (state spaces of a few hundred states), where a
// dense O(n³) solve is simpler and faster than an iterative method.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n {
		return nil, fmt.Errorf("dist: matrix rows %d != rhs length %d", len(a), n)
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("dist: matrix row %d has %d columns, want %d", i, len(a[i]), n)
		}
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("dist: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		acc := b[i]
		for c := i + 1; c < n; c++ {
			acc -= a[i][c] * x[c]
		}
		x[i] = acc / a[i][i]
	}
	return x, nil
}

// StationaryDist returns the stationary distribution π of a finite
// irreducible Markov chain with row-stochastic transition matrix P
// (π P = π, Σπ = 1), by solving the linear system (Pᵀ - I)π = 0 with the
// normalization row replacing the last equation.
func StationaryDist(p [][]float64) ([]float64, error) {
	n := len(p)
	if n == 0 {
		return nil, fmt.Errorf("dist: empty chain")
	}
	for i := range p {
		if len(p[i]) != n {
			return nil, fmt.Errorf("dist: transition row %d has %d entries, want %d", i, len(p[i]), n)
		}
		sum := 0.0
		for _, v := range p[i] {
			if v < -1e-12 {
				return nil, fmt.Errorf("dist: negative transition probability %g", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("dist: transition row %d sums to %g", i, sum)
		}
	}
	// Build (Pᵀ - I) with the last row replaced by 1…1, rhs e_n.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = p[j][i]
		}
		a[i][i] -= 1
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	b[n-1] = 1
	pi, err := SolveLinear(a, b)
	if err != nil {
		return nil, err
	}
	// Clean tiny negatives from roundoff and renormalize.
	sum := 0.0
	for i, v := range pi {
		if v < 0 {
			if v < -1e-8 {
				return nil, fmt.Errorf("dist: stationary solve produced π[%d] = %g", i, v)
			}
			pi[i] = 0
		}
		sum += pi[i]
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi, nil
}
