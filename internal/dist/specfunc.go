package dist

import (
	"fmt"
	"math"
)

// This file implements the small amount of special-function machinery the
// paper's evaluation needs and that the Go standard library lacks: the
// regularized incomplete gamma function (for gamma CDFs) and its inverse
// (for quantiles). math.Lgamma supplies log Γ.
//
// The algorithms are the classical series/continued-fraction pair
// (Abramowitz & Stegun §6.5; the same split used by virtually every
// numerics library): the lower series converges fast for x < a+1, the
// upper continued fraction for x ≥ a+1.

const (
	igamEps     = 1e-14
	igamMaxIter = 600
)

// RegLowerGamma returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x ≥ 0.
func RegLowerGamma(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a):
		return 0, fmt.Errorf("dist: RegLowerGamma shape a = %g must be positive", a)
	case x < 0 || math.IsNaN(x):
		return 0, fmt.Errorf("dist: RegLowerGamma argument x = %g must be nonnegative", x)
	case x == 0:
		return 0, nil
	case math.IsInf(x, 1):
		return 1, nil
	}
	if x < a+1 {
		p, err := lowerGammaSeries(a, x)
		return p, err
	}
	q, err := upperGammaCF(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// RegUpperGamma returns Q(a, x) = 1 - P(a, x).
func RegUpperGamma(a, x float64) (float64, error) {
	p, err := RegLowerGamma(a, x)
	return 1 - p, err
}

// lowerGammaSeries evaluates P(a,x) by the power series
// P(a,x) = x^a e^{-x} / Γ(a+1) · Σ_{n≥0} x^n / ((a+1)(a+2)…(a+n)).
func lowerGammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < igamMaxIter; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*igamEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("dist: incomplete gamma series failed to converge for a=%g x=%g", a, x)
}

// upperGammaCF evaluates Q(a,x) by the Lentz continued fraction
// Q(a,x) = x^a e^{-x}/Γ(a) · 1/(x+1-a- 1·(1-a)/(x+3-a- 2(2-a)/(x+5-a-…))).
func upperGammaCF(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= igamMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < igamEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("dist: incomplete gamma continued fraction failed to converge for a=%g x=%g", a, x)
}

// InvRegLowerGamma returns x such that P(a, x) = p, for a > 0 and
// p in [0, 1). It uses a Wilson–Hilferty initial guess refined by
// Newton iterations with a bisection safeguard.
func InvRegLowerGamma(a, p float64) (float64, error) {
	switch {
	case a <= 0:
		return 0, fmt.Errorf("dist: InvRegLowerGamma shape a = %g must be positive", a)
	case p < 0 || p >= 1 || math.IsNaN(p):
		return 0, fmt.Errorf("dist: InvRegLowerGamma level p = %g out of [0,1)", p)
	case p == 0:
		return 0, nil
	}
	// Wilson–Hilferty: x ≈ a(1 - 1/(9a) + z√(1/(9a)))³ with z the normal
	// quantile of p.
	z := normQuantile(p)
	t := 1 - 1/(9*a) + z/(3*math.Sqrt(a))
	x := a * t * t * t
	if x <= 0 {
		x = math.SmallestNonzeroFloat64 + 1e-8
	}

	lo, hi := 0.0, math.Inf(1)
	lg, _ := math.Lgamma(a)
	for i := 0; i < 200; i++ {
		f, err := RegLowerGamma(a, x)
		if err != nil {
			return 0, err
		}
		diff := f - p
		if math.Abs(diff) < 1e-12 {
			return x, nil
		}
		if diff > 0 {
			hi = x
		} else {
			lo = x
		}
		// Newton step with the gamma density as derivative.
		pdf := math.Exp((a-1)*math.Log(x) - x - lg)
		var next float64
		if pdf > 0 {
			next = x - diff/pdf
		}
		if pdf <= 0 || next <= lo || next >= hi {
			if math.IsInf(hi, 1) {
				next = x * 2
			} else {
				next = (lo + hi) / 2
			}
		}
		if math.Abs(next-x) < 1e-13*(1+x) {
			return next, nil
		}
		x = next
	}
	return x, nil
}

// normQuantile returns the standard normal quantile via the
// Beasley–Springer–Moro rational approximation (sufficient accuracy to
// seed the Newton refinement above, and used directly by the plotting
// code for confidence bands).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// NormQuantile exposes the standard normal quantile function.
func NormQuantile(p float64) float64 { return normQuantile(p) }

// RegIncBeta returns the regularized incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1], via the Lentz continued
// fraction (Abramowitz & Stegun §26.5.8), using the symmetry
// I_x(a,b) = 1 - I_{1-x}(b,a) to keep the fraction in its
// fast-converging region x < (a+1)/(a+b+2).
func RegIncBeta(a, b, x float64) (float64, error) {
	switch {
	case a <= 0 || b <= 0 || math.IsNaN(a) || math.IsNaN(b):
		return 0, fmt.Errorf("dist: RegIncBeta shapes (a, b) = (%g, %g) must be positive", a, b)
	case x < 0 || x > 1 || math.IsNaN(x):
		return 0, fmt.Errorf("dist: RegIncBeta argument x = %g out of [0,1]", x)
	case x == 0:
		return 0, nil
	case x == 1:
		return 1, nil
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		cf, err := incBetaCF(a, b, x)
		if err != nil {
			return 0, err
		}
		return front * cf / a, nil
	}
	cf, err := incBetaCF(b, a, 1-x)
	if err != nil {
		return 0, err
	}
	return 1 - front*cf/b, nil
}

// incBetaCF evaluates the incomplete-beta continued fraction by the
// modified Lentz method.
func incBetaCF(a, b, x float64) (float64, error) {
	const tiny = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= igamMaxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < igamEps {
			return h, nil
		}
	}
	return 0, fmt.Errorf("dist: incomplete beta continued fraction failed to converge for a=%g b=%g x=%g", a, b, x)
}

// TCDF returns P(T ≤ t) for Student's t distribution with df > 0
// degrees of freedom: 1 - I_x(df/2, 1/2)/2 with x = df/(df+t²) for
// t ≥ 0, extended by symmetry.
func TCDF(df, t float64) (float64, error) {
	if df <= 0 || math.IsNaN(df) {
		return 0, fmt.Errorf("dist: TCDF degrees of freedom %g must be positive", df)
	}
	ib, err := RegIncBeta(df/2, 0.5, df/(df+t*t))
	if err != nil {
		return 0, err
	}
	if t >= 0 {
		return 1 - ib/2, nil
	}
	return ib / 2, nil
}

// TQuantile returns the Student-t quantile t such that P(T ≤ t) = p for
// df degrees of freedom — the critical value behind small-sample
// confidence intervals (use p = 0.5 + confidence/2 for a two-sided
// interval). It returns ±Inf at the boundaries and NaN for df ≤ 0. The
// CDF is strictly monotone, so bisection from a normal-quantile bracket
// always converges; convergence failures in the special functions
// (unreachable for these arguments) surface as NaN.
func TQuantile(df, p float64) float64 {
	switch {
	case df <= 0 || math.IsNaN(df) || math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p == 0.5:
		return 0
	}
	// Symmetry: solve in the upper tail.
	if p < 0.5 {
		return -TQuantile(df, 1-p)
	}
	// Bracket: the t quantile is at least the normal quantile; grow the
	// upper bound until the CDF clears p.
	lo := normQuantile(p)
	if lo < 0 {
		lo = 0
	}
	hi := lo + 1
	for i := 0; ; i++ {
		c, err := TCDF(df, hi)
		if err != nil {
			return math.NaN()
		}
		if c >= p {
			break
		}
		if i > 200 {
			return math.NaN()
		}
		lo = hi
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		c, err := TCDF(df, mid)
		if err != nil {
			return math.NaN()
		}
		if c < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}
