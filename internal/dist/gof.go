package dist

import (
	"fmt"
	"math"
)

// Goodness-of-fit metrics for comparing simulated histograms against the
// analytic waiting-time distributions. TotalVariation (pmf.go) measures
// bulk agreement; the Kolmogorov–Smirnov statistic here is tail-sensitive
// and the chi-square statistic supports a formal rejection test when the
// sample size is known.

// KolmogorovSmirnov returns sup_j |F_p(j) - F_q(j)|, the KS distance
// between two lattice distributions.
func KolmogorovSmirnov(p, q PMF) float64 {
	n := p.Support()
	if q.Support() > n {
		n = q.Support()
	}
	cp, cq, ks := 0.0, 0.0, 0.0
	for j := 0; j < n; j++ {
		cp += p.Prob(j)
		cq += q.Prob(j)
		if d := math.Abs(cp - cq); d > ks {
			ks = d
		}
	}
	return ks
}

// KSCriticalValue returns the approximate critical KS distance at
// significance alpha for a sample of size n compared against a fully
// specified distribution: c(α)/√n with c from the asymptotic Kolmogorov
// distribution. Supported alphas: 0.10, 0.05, 0.01 (others interpolate
// via the exact asymptotic formula c = sqrt(-ln(α/2)/2)).
func KSCriticalValue(alpha float64, n int64) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("dist: significance %g out of (0,1)", alpha)
	}
	if n < 1 {
		return 0, fmt.Errorf("dist: sample size %d must be positive", n)
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c / math.Sqrt(float64(n)), nil
}

// ChiSquare returns the chi-square statistic and degrees of freedom for
// observed counts against expected probabilities, pooling trailing cells
// until every expected count is at least minExpected (Cochran's rule uses
// 5). The counts and probs must align by index; probs may be longer.
func ChiSquare(counts []int64, probs []float64, minExpected float64) (stat float64, dof int, err error) {
	var total int64
	for _, c := range counts {
		if c < 0 {
			return 0, 0, fmt.Errorf("dist: negative count")
		}
		total += c
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("dist: no observations")
	}
	n := len(probs)
	if len(counts) > n {
		n = len(counts)
	}
	at := func(v []float64, j int) float64 {
		if j < len(v) {
			return v[j]
		}
		return 0
	}
	cat := func(v []int64, j int) int64 {
		if j < len(v) {
			return v[j]
		}
		return 0
	}
	cells := 0
	var accO int64
	var accE float64
	for j := 0; j < n; j++ {
		accO += cat(counts, j)
		accE += at(probs, j) * float64(total)
		// Pool forward until the expected count is large enough, or we
		// are at the last index (fold the remainder).
		if accE >= minExpected || j == n-1 {
			if accE <= 0 {
				// Degenerate tail cell with observations but no
				// expectation: infinite statistic.
				if accO > 0 {
					return math.Inf(1), cells, nil
				}
				continue
			}
			d := float64(accO) - accE
			stat += d * d / accE
			cells++
			accO, accE = 0, 0
		}
	}
	if cells < 2 {
		return 0, 0, fmt.Errorf("dist: too few cells (%d) after pooling", cells)
	}
	return stat, cells - 1, nil
}

// ChiSquarePValue returns P(X² ≥ stat) for dof degrees of freedom, via
// the regularized incomplete gamma function.
func ChiSquarePValue(stat float64, dof int) (float64, error) {
	if dof < 1 {
		return 0, fmt.Errorf("dist: dof %d must be positive", dof)
	}
	if stat < 0 {
		return 0, fmt.Errorf("dist: negative statistic %g", stat)
	}
	if math.IsInf(stat, 1) {
		return 0, nil
	}
	return RegUpperGamma(float64(dof)/2, stat/2)
}
