package dist

import (
	"fmt"
	"math"
)

// Goodness-of-fit metrics for comparing simulated histograms against the
// analytic waiting-time distributions. TotalVariation (pmf.go) measures
// bulk agreement; the Kolmogorov–Smirnov statistic here is tail-sensitive
// and the chi-square statistic supports a formal rejection test when the
// sample size is known.

// KolmogorovSmirnov returns sup_j |F_p(j) - F_q(j)|, the KS distance
// between two lattice distributions.
func KolmogorovSmirnov(p, q PMF) float64 {
	n := p.Support()
	if q.Support() > n {
		n = q.Support()
	}
	cp, cq, ks := 0.0, 0.0, 0.0
	for j := 0; j < n; j++ {
		cp += p.Prob(j)
		cq += q.Prob(j)
		if d := math.Abs(cp - cq); d > ks {
			ks = d
		}
	}
	return ks
}

// KSCriticalValue returns the approximate critical KS distance at
// significance alpha for a sample of size n compared against a fully
// specified distribution: c(α)/√n with c from the asymptotic Kolmogorov
// distribution. Supported alphas: 0.10, 0.05, 0.01 (others interpolate
// via the exact asymptotic formula c = sqrt(-ln(α/2)/2)).
func KSCriticalValue(alpha float64, n int64) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("dist: significance %g out of (0,1)", alpha)
	}
	if n < 1 {
		return 0, fmt.Errorf("dist: sample size %d must be positive", n)
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c / math.Sqrt(float64(n)), nil
}

// KSResult is the outcome of a Kolmogorov–Smirnov comparison: the
// statistic, the critical distance it was held against, the effective
// sample size that critical value was computed for, and the verdict.
type KSResult struct {
	KS       float64 // sup_j |F_emp(j) - F_model(j)|
	Critical float64 // critical distance at the requested significance
	NEff     int64   // effective sample size after dependence correction
	Pass     bool    // KS ≤ Critical
}

// OneSampleKS tests an empirical dense lattice histogram (counts[j] =
// observations of value j) against a fully specified model PMF at
// significance alpha.
//
// rho corrects for serially dependent samples: successive waiting times
// at a queue share busy periods, so the i.i.d. critical value c(α)/√N
// is too tight. Passing the server utilization ρ = m·λ shrinks the
// sample to the classic integrated-autocorrelation-time effective size
// N·(1-ρ)/(1+ρ) — conservative at light load. Pass 0 for i.i.d.
// samples. This is the one shared implementation behind both the
// stage-1 distribution check (internal/experiments) and the sweep drift
// monitor (internal/sweep).
func OneSampleKS(counts []int64, model PMF, alpha, rho float64) (KSResult, error) {
	emp, err := EmpiricalPMF(counts)
	if err != nil {
		return KSResult{}, err
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	return ksVerdict(KolmogorovSmirnov(emp, model), n, alpha, rho)
}

// TwoSampleKS compares two empirical dense lattice histograms at
// significance alpha, using the two-sample effective size
// n₁·n₂/(n₁+n₂) in the asymptotic critical value.
func TwoSampleKS(a, b []int64, alpha float64) (KSResult, error) {
	pa, err := EmpiricalPMF(a)
	if err != nil {
		return KSResult{}, err
	}
	pb, err := EmpiricalPMF(b)
	if err != nil {
		return KSResult{}, err
	}
	var na, nb int64
	for _, c := range a {
		na += c
	}
	for _, c := range b {
		nb += c
	}
	n := int64(float64(na) * float64(nb) / float64(na+nb))
	return ksVerdict(KolmogorovSmirnov(pa, pb), n, alpha, 0)
}

// ksVerdict finishes a KS comparison: applies the autocorrelation
// correction to the sample size, looks up the critical value, and
// renders the verdict.
func ksVerdict(ks float64, n int64, alpha, rho float64) (KSResult, error) {
	nEff := n
	if rho > 0 && rho < 1 {
		nEff = int64(float64(n) * (1 - rho) / (1 + rho))
	}
	if nEff < 1 {
		nEff = 1
	}
	crit, err := KSCriticalValue(alpha, nEff)
	if err != nil {
		return KSResult{}, err
	}
	return KSResult{KS: ks, Critical: crit, NEff: nEff, Pass: ks <= crit}, nil
}

// ChiSquare returns the chi-square statistic and degrees of freedom for
// observed counts against expected probabilities, pooling trailing cells
// until every expected count is at least minExpected (Cochran's rule uses
// 5). The counts and probs must align by index; probs may be longer.
func ChiSquare(counts []int64, probs []float64, minExpected float64) (stat float64, dof int, err error) {
	var total int64
	for _, c := range counts {
		if c < 0 {
			return 0, 0, fmt.Errorf("dist: negative count")
		}
		total += c
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("dist: no observations")
	}
	n := len(probs)
	if len(counts) > n {
		n = len(counts)
	}
	at := func(v []float64, j int) float64 {
		if j < len(v) {
			return v[j]
		}
		return 0
	}
	cat := func(v []int64, j int) int64 {
		if j < len(v) {
			return v[j]
		}
		return 0
	}
	cells := 0
	var accO int64
	var accE float64
	for j := 0; j < n; j++ {
		accO += cat(counts, j)
		accE += at(probs, j) * float64(total)
		// Pool forward until the expected count is large enough, or we
		// are at the last index (fold the remainder).
		if accE >= minExpected || j == n-1 {
			if accE <= 0 {
				// Degenerate tail cell with observations but no
				// expectation: infinite statistic.
				if accO > 0 {
					return math.Inf(1), cells, nil
				}
				continue
			}
			d := float64(accO) - accE
			stat += d * d / accE
			cells++
			accO, accE = 0, 0
		}
	}
	if cells < 2 {
		return 0, 0, fmt.Errorf("dist: too few cells (%d) after pooling", cells)
	}
	return stat, cells - 1, nil
}

// ChiSquarePValue returns P(X² ≥ stat) for dof degrees of freedom, via
// the regularized incomplete gamma function.
func ChiSquarePValue(stat float64, dof int) (float64, error) {
	if dof < 1 {
		return 0, fmt.Errorf("dist: dof %d must be positive", dof)
	}
	if stat < 0 {
		return 0, fmt.Errorf("dist: negative statistic %g", stat)
	}
	if math.IsInf(stat, 1) {
		return 0, nil
	}
	return RegUpperGamma(float64(dof)/2, stat/2)
}
