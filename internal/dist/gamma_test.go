package dist

import (
	"math"
	"testing"
)

func TestNewGammaValidation(t *testing.T) {
	if _, err := NewGamma(0, 1); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := NewGamma(1, -2); err == nil {
		t.Fatal("expected scale error")
	}
	if _, err := NewGamma(math.NaN(), 1); err == nil {
		t.Fatal("expected NaN error")
	}
	g, err := NewGamma(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, g.Mean(), 6, 0, "mean")
	almost(t, g.Variance(), 18, 0, "variance")
}

func TestGammaFromMoments(t *testing.T) {
	g, err := GammaFromMoments(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, g.Mean(), 4, 1e-12, "matched mean")
	almost(t, g.Variance(), 8, 1e-12, "matched variance")
	if _, err := GammaFromMoments(0, 1); err == nil {
		t.Fatal("expected error for zero mean")
	}
	if _, err := GammaFromMoments(1, 0); err == nil {
		t.Fatal("expected error for zero variance")
	}
}

func TestGammaExponentialSpecialCase(t *testing.T) {
	// shape 1 = Exponential(1/scale).
	g, _ := NewGamma(1, 2)
	almost(t, g.PDF(0), 0.5, 1e-12, "exp pdf at 0")
	almost(t, g.PDF(2), 0.5*math.Exp(-1), 1e-12, "exp pdf")
	almost(t, g.CDF(2), 1-math.Exp(-1), 1e-12, "exp cdf")
	q, err := g.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, q, 2*math.Ln2, 1e-8, "exp median")
}

func TestGammaPDFIntegratesToCDF(t *testing.T) {
	g, _ := NewGamma(2.7, 1.3)
	// Trapezoid integration of the PDF vs the CDF.
	const h = 1e-3
	acc := 0.0
	x := 0.0
	for x < 10 {
		acc += h * (g.PDF(x) + g.PDF(x+h)) / 2
		x += h
	}
	almost(t, acc, g.CDF(10), 1e-5, "∫pdf = cdf")
}

func TestGammaPDFEndpoint(t *testing.T) {
	gSub, _ := NewGamma(0.5, 1)
	if !math.IsInf(gSub.PDF(0), 1) {
		t.Fatal("shape<1 density must blow up at 0")
	}
	gSuper, _ := NewGamma(2, 1)
	almost(t, gSuper.PDF(0), 0, 0, "shape>1 density at 0")
	almost(t, gSuper.PDF(-1), 0, 0, "density below 0")
}

func TestGammaQuantileRoundtrip(t *testing.T) {
	g, _ := NewGamma(3.3, 0.7)
	for _, p := range []float64{0.01, 0.2, 0.5, 0.9, 0.999} {
		x, err := g.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		almost(t, g.CDF(x), p, 1e-8, "quantile roundtrip")
	}
}

func TestGammaDiscretize(t *testing.T) {
	g, _ := NewGamma(2, 1.5)
	d := g.Discretize(64)
	sum := 0.0
	for j := 0; j < d.Support(); j++ {
		sum += d.Prob(j)
	}
	almost(t, sum, 1, 1e-9, "discretization mass")
	// Cell probabilities must match CDF differences.
	almost(t, d.Prob(0), g.CDF(0.5), 1e-12, "cell 0")
	almost(t, d.Prob(3), g.CDF(3.5)-g.CDF(2.5), 1e-12, "cell 3")
	// Discretized mean close to continuous mean.
	almost(t, d.Mean(), g.Mean(), 0.05, "discretized mean")
}

func TestGammaCellProb(t *testing.T) {
	g, _ := NewGamma(1.5, 2)
	if g.CellProb(-1) != 0 {
		t.Fatal("negative cell must be 0")
	}
	sum := 0.0
	for j := 0; j < 200; j++ {
		sum += g.CellProb(j)
	}
	almost(t, sum, 1, 1e-9, "cells sum to 1")
}

func TestGammaTail(t *testing.T) {
	g, _ := NewGamma(4, 1)
	almost(t, g.Tail(0), 1, 1e-12, "tail at 0")
	if g.Tail(100) > 1e-12 {
		t.Fatal("far tail should vanish")
	}
	// Tail is decreasing.
	prev := 1.0
	for x := 0.5; x < 20; x += 0.5 {
		tl := g.Tail(x)
		if tl > prev+1e-12 {
			t.Fatalf("tail increased at %g", x)
		}
		prev = tl
	}
}
