package dist

import (
	"math"
	"testing"
)

func TestOneSampleKS(t *testing.T) {
	model, err := NewPMF([]float64{0.5, 0.3, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Counts exactly proportional to the model: KS 0, pass.
	kr, err := OneSampleKS([]int64{500, 300, 200}, model, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kr.KS != 0 || !kr.Pass {
		t.Fatalf("exact-match sample: %+v", kr)
	}
	if kr.NEff != 1000 {
		t.Fatalf("iid NEff %d, want 1000", kr.NEff)
	}
	want, _ := KSCriticalValue(0.01, 1000)
	if kr.Critical != want {
		t.Fatalf("critical %g, want %g", kr.Critical, want)
	}

	// The autocorrelation correction shrinks the effective sample:
	// ρ=0.5 → N/3, so the critical value grows by √3.
	kc, err := OneSampleKS([]int64{500, 300, 200}, model, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if kc.NEff != 333 {
		t.Fatalf("corrected NEff %d, want 333", kc.NEff)
	}
	if kc.Critical <= kr.Critical {
		t.Fatalf("correction must loosen the critical value: %g vs %g", kc.Critical, kr.Critical)
	}

	// A grossly wrong model fails at any reasonable sample size.
	wrong, err := NewPMF([]float64{0.05, 0.05, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	kw, err := OneSampleKS([]int64{500, 300, 200}, wrong, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kw.Pass || kw.KS < 0.5 {
		t.Fatalf("wrong model not rejected: %+v", kw)
	}

	if _, err := OneSampleKS([]int64{}, model, 0.01, 0); err == nil {
		t.Fatalf("empty sample must error")
	}
}

func TestTwoSampleKS(t *testing.T) {
	a := []int64{100, 200, 300}
	kr, err := TwoSampleKS(a, a, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if kr.KS != 0 || !kr.Pass {
		t.Fatalf("identical samples: %+v", kr)
	}
	// Effective size n₁·n₂/(n₁+n₂) = 600·600/1200 = 300.
	if kr.NEff != 300 {
		t.Fatalf("two-sample NEff %d, want 300", kr.NEff)
	}

	// Disjoint supports: KS = 1, certain rejection.
	kd, err := TwoSampleKS([]int64{100, 0, 0}, []int64{0, 0, 100}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kd.KS-1) > 1e-12 || kd.Pass {
		t.Fatalf("disjoint samples: %+v", kd)
	}

	if _, err := TwoSampleKS(nil, a, 0.05); err == nil {
		t.Fatalf("empty first sample must error")
	}
}
