package dist

import (
	"fmt"
	"math"
	"sort"
)

// PMF is a probability mass function on the nonnegative integers,
// represented densely: P(X = j) = p[j]. PMFs are the concrete face of the
// PGFs used throughout the analysis: a PMF's generating function is a
// Series and vice versa.
type PMF struct {
	p []float64
}

// NewPMF builds a PMF from the given weights after validating that they
// are nonnegative and sum to 1 within tolerance. The slice is copied.
func NewPMF(weights []float64) (PMF, error) {
	if len(weights) == 0 {
		return PMF{}, fmt.Errorf("dist: empty PMF")
	}
	sum := 0.0
	for j, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return PMF{}, fmt.Errorf("dist: PMF weight p[%d] = %g invalid", j, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		return PMF{}, fmt.Errorf("dist: PMF weights sum to %g, want 1", sum)
	}
	p := make([]float64, len(weights))
	copy(p, weights)
	return PMF{p: p}, nil
}

// MustPMF is NewPMF that panics on invalid weights, for statically known
// distributions.
func MustPMF(weights []float64) PMF {
	d, err := NewPMF(weights)
	if err != nil {
		panic(err)
	}
	return d
}

// PointPMF returns the distribution concentrated at value v ≥ 0.
func PointPMF(v int) PMF {
	if v < 0 {
		panic("dist: point mass at negative value")
	}
	p := make([]float64, v+1)
	p[v] = 1
	return PMF{p: p}
}

// Support returns one past the largest value with positive probability.
func (d PMF) Support() int { return len(d.p) }

// Prob returns P(X = j).
func (d PMF) Prob(j int) float64 {
	if j < 0 || j >= len(d.p) {
		return 0
	}
	return d.p[j]
}

// Probs returns a copy of the dense probability vector.
func (d PMF) Probs() []float64 {
	p := make([]float64, len(d.p))
	copy(p, d.p)
	return p
}

// Mean returns E[X].
func (d PMF) Mean() float64 {
	acc := 0.0
	for j, w := range d.p {
		acc += float64(j) * w
	}
	return acc
}

// Variance returns Var[X].
func (d PMF) Variance() float64 {
	m := d.Mean()
	acc := 0.0
	for j, w := range d.p {
		dj := float64(j) - m
		acc += dj * dj * w
	}
	return acc
}

// FactorialMoment returns E[X(X-1)…(X-r+1)].
func (d PMF) FactorialMoment(r int) float64 {
	return Series{c: d.p}.FactorialMoment(r)
}

// CDF returns P(X ≤ j).
func (d PMF) CDF(j int) float64 {
	if j < 0 {
		return 0
	}
	if j >= len(d.p) {
		return 1
	}
	acc := 0.0
	for i := 0; i <= j; i++ {
		acc += d.p[i]
	}
	return acc
}

// Tail returns P(X > j).
func (d PMF) Tail(j int) float64 { return 1 - d.CDF(j) }

// Quantile returns the smallest j with P(X ≤ j) ≥ q, for q in (0,1].
func (d PMF) Quantile(q float64) int {
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("dist: quantile level %g out of (0,1]", q))
	}
	acc := 0.0
	for j, w := range d.p {
		acc += w
		if acc >= q-1e-12 {
			return j
		}
	}
	return len(d.p) - 1
}

// PGF returns the generating function of d truncated to n terms.
func (d PMF) PGF(n int) Series {
	s := ZeroSeries(n)
	copy(s.c, d.p)
	return s
}

// Binomial returns the Binomial(n, p) distribution.
func Binomial(n int, p float64) PMF {
	if n < 0 || p < 0 || p > 1 {
		panic(fmt.Sprintf("dist: invalid Binomial(%d, %g)", n, p))
	}
	w := make([]float64, n+1)
	// Iterative PMF: w[0] = (1-p)^n, w[j+1] = w[j]·(n-j)/(j+1)·p/(1-p).
	// Handle the endpoints exactly.
	switch {
	case p == 0:
		w[0] = 1
	case p == 1:
		w[n] = 1
	default:
		lw := float64(n) * math.Log1p(-p)
		for j := 0; j <= n; j++ {
			w[j] = math.Exp(lw)
			lw += math.Log(float64(n-j)) - math.Log(float64(j+1)) + math.Log(p) - math.Log1p(-p)
		}
	}
	// Renormalize tiny floating error.
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	for j := range w {
		w[j] /= sum
	}
	return PMF{p: w}
}

// GeometricPMF returns the geometric distribution on {1, 2, …} with
// success probability mu, truncated at n terms with the residual tail mass
// folded into the last retained value so that the PMF still sums to one.
// E[X] = 1/mu for the untruncated law.
func GeometricPMF(mu float64, n int) PMF {
	if mu <= 0 || mu > 1 {
		panic(fmt.Sprintf("dist: invalid geometric parameter %g", mu))
	}
	if n < 2 {
		panic("dist: geometric truncation too short")
	}
	w := make([]float64, n)
	acc := 0.0
	for j := 1; j < n; j++ {
		w[j] = mu * math.Pow(1-mu, float64(j-1))
		acc += w[j]
	}
	w[n-1] += 1 - acc // fold tail
	return PMF{p: w}
}

// PoissonPMF returns the Poisson(lambda) distribution truncated at n terms
// with the tail folded into the last value.
func PoissonPMF(lambda float64, n int) PMF {
	if lambda < 0 {
		panic(fmt.Sprintf("dist: invalid Poisson rate %g", lambda))
	}
	if n < 1 {
		panic("dist: Poisson truncation too short")
	}
	w := make([]float64, n)
	term := math.Exp(-lambda)
	acc := 0.0
	for j := 0; j < n; j++ {
		w[j] = term
		acc += term
		term *= lambda / float64(j+1)
	}
	w[n-1] += 1 - acc
	return PMF{p: w}
}

// Mixture returns the mixture Σ weights[i]·components[i].
func Mixture(components []PMF, weights []float64) (PMF, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return PMF{}, fmt.Errorf("dist: mixture needs matching nonempty components/weights, got %d/%d",
			len(components), len(weights))
	}
	sum := 0.0
	maxLen := 0
	for i, w := range weights {
		if w < 0 {
			return PMF{}, fmt.Errorf("dist: negative mixture weight %g", w)
		}
		sum += w
		if components[i].Support() > maxLen {
			maxLen = components[i].Support()
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		return PMF{}, fmt.Errorf("dist: mixture weights sum to %g, want 1", sum)
	}
	p := make([]float64, maxLen)
	for i, comp := range components {
		for j, v := range comp.p {
			p[j] += weights[i] * v
		}
	}
	return PMF{p: p}, nil
}

// Convolve returns the distribution of the sum of two independent
// variables with laws d and e.
func Convolve(d, e PMF) PMF {
	p := make([]float64, len(d.p)+len(e.p)-1)
	for i, a := range d.p {
		if a == 0 {
			continue
		}
		for j, b := range e.p {
			p[i+j] += a * b
		}
	}
	return PMF{p: p}
}

// FromSeries interprets a truncated series as a sub-probability vector and
// normalizes it into a PMF, returning the truncated tail mass that was
// discarded by renormalization. Negative coefficients smaller in magnitude
// than tol are clamped to zero; larger negative coefficients are an error
// (they indicate the series was not a PGF).
func FromSeries(s Series, tol float64) (PMF, float64, error) {
	p := make([]float64, s.Len())
	sum := 0.0
	for j := 0; j < s.Len(); j++ {
		v := s.Coeff(j)
		if v < 0 {
			if v < -tol {
				return PMF{}, 0, fmt.Errorf("dist: series coefficient %d = %g is negative beyond tolerance", j, v)
			}
			v = 0
		}
		p[j] = v
		sum += v
	}
	if sum <= 0 {
		return PMF{}, 0, fmt.Errorf("dist: series has no positive mass")
	}
	for j := range p {
		p[j] /= sum
	}
	return PMF{p: p}, 1 - sum, nil
}

// Sampler precomputes the inverse CDF of a PMF for O(1) sampling via the
// alias method. It is the bridge between the analytic models and the
// simulators.
type Sampler struct {
	n      int
	prob   []float64
	alias  []int
	values []int
}

// NewSampler builds an alias-method sampler over the support of d.
// Zero-probability values are retained (they simply never get picked).
func NewSampler(d PMF) *Sampler {
	n := len(d.p)
	s := &Sampler{
		n:      n,
		prob:   make([]float64, n),
		alias:  make([]int, n),
		values: make([]int, n),
	}
	for j := range s.values {
		s.values[j] = j
	}
	scaled := make([]float64, n)
	var small, large []int
	for j, w := range d.p {
		scaled[j] = w * float64(n)
		if scaled[j] < 1 {
			small = append(small, j)
		} else {
			large = append(large, j)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, j := range large {
		s.prob[j] = 1
	}
	for _, j := range small {
		s.prob[j] = 1
	}
	return s
}

// Sample draws one value using the two uniforms u1, u2 in [0,1).
func (s *Sampler) Sample(u1, u2 float64) int {
	j := int(u1 * float64(s.n))
	if j >= s.n {
		j = s.n - 1
	}
	if u2 < s.prob[j] {
		return s.values[j]
	}
	return s.values[s.alias[j]]
}

// TotalVariation returns the total-variation distance between two PMFs,
// ½·Σ|p_j - q_j|, a convenient test metric.
func TotalVariation(d, e PMF) float64 {
	n := len(d.p)
	if len(e.p) > n {
		n = len(e.p)
	}
	acc := 0.0
	for j := 0; j < n; j++ {
		acc += math.Abs(d.Prob(j) - e.Prob(j))
	}
	return acc / 2
}

// EmpiricalPMF builds a PMF from observation counts.
func EmpiricalPMF(counts []int64) (PMF, error) {
	var total int64
	for _, c := range counts {
		if c < 0 {
			return PMF{}, fmt.Errorf("dist: negative count")
		}
		total += c
	}
	if total == 0 {
		return PMF{}, fmt.Errorf("dist: no observations")
	}
	p := make([]float64, len(counts))
	for j, c := range counts {
		p[j] = float64(c) / float64(total)
	}
	return PMF{p: p}, nil
}

// TrimTail returns a copy of d with trailing values of cumulative mass
// ≤ eps removed and the removed mass folded into the new last value.
func (d PMF) TrimTail(eps float64) PMF {
	cut := len(d.p)
	acc := 0.0
	for cut > 1 {
		acc += d.p[cut-1]
		if acc > eps {
			break
		}
		cut--
	}
	p := make([]float64, cut)
	copy(p, d.p[:cut])
	rest := 0.0
	for j := cut; j < len(d.p); j++ {
		rest += d.p[j]
	}
	p[cut-1] += rest
	return PMF{p: p}
}

// SortedSupport returns the values with probability above eps, ascending.
func (d PMF) SortedSupport(eps float64) []int {
	var vals []int
	for j, w := range d.p {
		if w > eps {
			vals = append(vals, j)
		}
	}
	sort.Ints(vals)
	return vals
}
