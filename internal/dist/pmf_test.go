package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPMFValidation(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		ok      bool
	}{
		{"valid", []float64{0.5, 0.5}, true},
		{"point", []float64{1}, true},
		{"empty", nil, false},
		{"negative", []float64{1.5, -0.5}, false},
		{"badsum", []float64{0.5, 0.6}, false},
		{"nan", []float64{math.NaN(), 1}, false},
		{"inf", []float64{math.Inf(1), 1}, false},
	}
	for _, c := range cases {
		_, err := NewPMF(c.weights)
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestPointPMF(t *testing.T) {
	d := PointPMF(3)
	if d.Prob(3) != 1 || d.Prob(2) != 0 {
		t.Fatalf("point mass wrong: %v", d.Probs())
	}
	almost(t, d.Mean(), 3, 0, "point mean")
	almost(t, d.Variance(), 0, 0, "point variance")
	almost(t, d.FactorialMoment(2), 6, 0, "point second factorial moment")
}

func TestBinomialMoments(t *testing.T) {
	for _, c := range []struct {
		n int
		p float64
	}{{1, 0.3}, {4, 0.25}, {8, 0.5}, {16, 0.9}, {5, 0}, {5, 1}} {
		d := Binomial(c.n, c.p)
		n, p := float64(c.n), c.p
		almost(t, d.Mean(), n*p, 1e-10, "binomial mean")
		almost(t, d.Variance(), n*p*(1-p), 1e-9, "binomial variance")
		almost(t, d.FactorialMoment(2), n*(n-1)*p*p, 1e-9, "binomial E[X(X-1)]")
		almost(t, d.FactorialMoment(3), n*(n-1)*(n-2)*p*p*p, 1e-9, "binomial E[X(X-1)(X-2)]")
		sum := 0.0
		for j := 0; j <= c.n; j++ {
			sum += d.Prob(j)
		}
		almost(t, sum, 1, 1e-12, "binomial normalization")
	}
}

func TestGeometricPMF(t *testing.T) {
	mu := 0.25
	d := GeometricPMF(mu, 4096)
	almost(t, d.Mean(), 1/mu, 1e-6, "geometric mean")
	almost(t, d.Variance(), (1-mu)/(mu*mu), 1e-4, "geometric variance")
	if d.Prob(0) != 0 {
		t.Fatal("geometric must have no mass at 0")
	}
	almost(t, d.Prob(1), mu, 1e-12, "geometric P(1)")
}

func TestPoissonPMF(t *testing.T) {
	lam := 3.2
	d := PoissonPMF(lam, 256)
	almost(t, d.Mean(), lam, 1e-9, "poisson mean")
	almost(t, d.Variance(), lam, 1e-7, "poisson variance")
	almost(t, d.Prob(0), math.Exp(-lam), 1e-12, "poisson P(0)")
}

func TestCDFQuantileTail(t *testing.T) {
	d := MustPMF([]float64{0.1, 0.4, 0.3, 0.2})
	almost(t, d.CDF(-1), 0, 0, "CDF below support")
	almost(t, d.CDF(1), 0.5, 1e-12, "CDF(1)")
	almost(t, d.CDF(9), 1, 0, "CDF beyond support")
	almost(t, d.Tail(1), 0.5, 1e-12, "Tail(1)")
	if q := d.Quantile(0.5); q != 1 {
		t.Fatalf("Quantile(0.5) = %d", q)
	}
	if q := d.Quantile(0.95); q != 3 {
		t.Fatalf("Quantile(0.95) = %d", q)
	}
	if q := d.Quantile(1); q != 3 {
		t.Fatalf("Quantile(1) = %d", q)
	}
}

func TestMixture(t *testing.T) {
	m, err := Mixture([]PMF{PointPMF(1), PointPMF(3)}, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, m.Mean(), 0.25+3*0.75, 1e-12, "mixture mean")
	if _, err := Mixture([]PMF{PointPMF(1)}, []float64{0.9}); err == nil {
		t.Fatal("expected bad-weights error")
	}
	if _, err := Mixture(nil, nil); err == nil {
		t.Fatal("expected empty-mixture error")
	}
}

func TestConvolve(t *testing.T) {
	a := Binomial(3, 0.4)
	b := Binomial(5, 0.4)
	c := Convolve(a, b)
	want := Binomial(8, 0.4)
	if tv := TotalVariation(c, want); tv > 1e-10 {
		t.Fatalf("Binomial(3)+Binomial(5) != Binomial(8): TV = %g", tv)
	}
}

func TestFromSeries(t *testing.T) {
	s := NewSeries([]float64{0.5, 0.3, 0.1})
	d, tail, err := FromSeries(s, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, tail, 0.1, 1e-12, "tail mass")
	almost(t, d.Prob(0), 0.5/0.9, 1e-12, "renormalized head")

	// Tiny negatives are clamped.
	s2 := NewSeries([]float64{1, -1e-12})
	if _, _, err := FromSeries(s2, 1e-9); err != nil {
		t.Fatalf("tiny negative should clamp: %v", err)
	}
	// Large negatives are errors.
	s3 := NewSeries([]float64{1, -0.5})
	if _, _, err := FromSeries(s3, 1e-9); err == nil {
		t.Fatal("expected error for materially negative coefficient")
	}
	// All-zero series is an error.
	if _, _, err := FromSeries(ZeroSeries(3), 1e-9); err == nil {
		t.Fatal("expected error for zero-mass series")
	}
}

func TestSamplerMatchesPMF(t *testing.T) {
	d := MustPMF([]float64{0.1, 0.2, 0.05, 0.4, 0.25})
	s := NewSampler(d)
	rng := rand.New(rand.NewSource(99))
	const n = 400000
	counts := make([]int64, d.Support())
	for i := 0; i < n; i++ {
		counts[s.Sample(rng.Float64(), rng.Float64())]++
	}
	for j := range counts {
		got := float64(counts[j]) / n
		if math.Abs(got-d.Prob(j)) > 0.004 {
			t.Fatalf("sampler P(%d) = %.4f, want %.4f", j, got, d.Prob(j))
		}
	}
}

func TestEmpiricalPMF(t *testing.T) {
	d, err := EmpiricalPMF([]int64{1, 3, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, d.Prob(1), 3.0/8, 1e-12, "empirical prob")
	if _, err := EmpiricalPMF([]int64{0, 0}); err == nil {
		t.Fatal("expected no-observations error")
	}
	if _, err := EmpiricalPMF([]int64{-1, 2}); err == nil {
		t.Fatal("expected negative-count error")
	}
}

func TestTrimTail(t *testing.T) {
	d := MustPMF([]float64{0.9, 0.0999999, 1e-7, 0, 0})
	tr := d.TrimTail(1e-6)
	if tr.Support() > 3 {
		t.Fatalf("trim kept support %d", tr.Support())
	}
	sum := 0.0
	for j := 0; j < tr.Support(); j++ {
		sum += tr.Prob(j)
	}
	almost(t, sum, 1, 1e-12, "trimmed mass conserved")
}

func TestTotalVariationBounds(t *testing.T) {
	a := PointPMF(0)
	b := PointPMF(5)
	almost(t, TotalVariation(a, b), 1, 1e-12, "disjoint TV")
	almost(t, TotalVariation(a, a), 0, 0, "identical TV")
}

// Property: for any valid PMF, Quantile(CDF(j)) ≤ j and the CDF is
// monotone.
func TestPMFQuantileConsistencyQuick(t *testing.T) {
	f := func(raw [6]float64) bool {
		w := make([]float64, 6)
		sum := 0.0
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0.5
			}
			w[i] = math.Mod(math.Abs(v), 1) + 1e-3
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		d, err := NewPMF(w)
		if err != nil {
			return false
		}
		prev := 0.0
		for j := 0; j < d.Support(); j++ {
			c := d.CDF(j)
			if c < prev-1e-12 {
				return false
			}
			prev = c
			if d.Quantile(c) > j {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: convolution means and variances add.
func TestConvolveMomentsQuick(t *testing.T) {
	f := func(n1, n2 uint8, p1, p2 float64) bool {
		a := Binomial(int(n1%6)+1, math.Mod(math.Abs(p1), 1))
		b := Binomial(int(n2%6)+1, math.Mod(math.Abs(p2), 1))
		c := Convolve(a, b)
		return math.Abs(c.Mean()-(a.Mean()+b.Mean())) < 1e-9 &&
			math.Abs(c.Variance()-(a.Variance()+b.Variance())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
