package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestKolmogorovSmirnov(t *testing.T) {
	a := PointPMF(0)
	b := PointPMF(3)
	almost(t, KolmogorovSmirnov(a, b), 1, 1e-12, "disjoint KS")
	almost(t, KolmogorovSmirnov(a, a), 0, 0, "identical KS")
	p := MustPMF([]float64{0.5, 0.5})
	q := MustPMF([]float64{0.3, 0.7})
	almost(t, KolmogorovSmirnov(p, q), 0.2, 1e-12, "two-point KS")
	// KS ≤ TV always.
	d1 := Binomial(6, 0.3)
	d2 := Binomial(6, 0.45)
	if KolmogorovSmirnov(d1, d2) > TotalVariation(d1, d2)+1e-12 {
		t.Fatal("KS exceeded TV")
	}
}

func TestKSCriticalValue(t *testing.T) {
	c, err := KSCriticalValue(0.05, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// c(0.05) = 1.3581…; /100.
	almost(t, c, 1.3581/100, 1e-4, "critical value")
	if _, err := KSCriticalValue(0, 10); err == nil {
		t.Fatal("expected alpha validation")
	}
	if _, err := KSCriticalValue(0.05, 0); err == nil {
		t.Fatal("expected n validation")
	}
}

func TestKSSampleAgainstTruth(t *testing.T) {
	// Samples from a distribution should pass KS at 1%; samples from a
	// perturbed distribution should fail with enough data.
	truth := Binomial(8, 0.4)
	rng := rand.New(rand.NewSource(10))
	s := NewSampler(truth)
	const n = 200000
	counts := make([]int64, truth.Support())
	for i := 0; i < n; i++ {
		counts[s.Sample(rng.Float64(), rng.Float64())]++
	}
	emp, err := EmpiricalPMF(counts)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := KSCriticalValue(0.01, n)
	if err != nil {
		t.Fatal(err)
	}
	if ks := KolmogorovSmirnov(emp, truth); ks > crit {
		t.Fatalf("true-law sample rejected: KS %g > %g", ks, crit)
	}
	if ks := KolmogorovSmirnov(emp, Binomial(8, 0.42)); ks < crit {
		t.Fatalf("perturbed law accepted: KS %g < %g", ks, crit)
	}
}

func TestChiSquare(t *testing.T) {
	truth := Binomial(5, 0.5)
	rng := rand.New(rand.NewSource(11))
	s := NewSampler(truth)
	const n = 100000
	counts := make([]int64, truth.Support())
	for i := 0; i < n; i++ {
		counts[s.Sample(rng.Float64(), rng.Float64())]++
	}
	stat, dof, err := ChiSquare(counts, truth.Probs(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if dof < 3 {
		t.Fatalf("dof %d too small", dof)
	}
	pv, err := ChiSquarePValue(stat, dof)
	if err != nil {
		t.Fatal(err)
	}
	if pv < 0.001 {
		t.Fatalf("true law rejected: stat %g dof %d p %g", stat, dof, pv)
	}
	// Wrong law rejected.
	stat2, dof2, err := ChiSquare(counts, Binomial(5, 0.55).Probs(), 5)
	if err != nil {
		t.Fatal(err)
	}
	pv2, err := ChiSquarePValue(stat2, dof2)
	if err != nil {
		t.Fatal(err)
	}
	if pv2 > 1e-6 {
		t.Fatalf("wrong law accepted: p %g", pv2)
	}
}

func TestChiSquarePooling(t *testing.T) {
	// Tiny expected tail cells must be pooled, not divided by ~0.
	counts := []int64{50, 30, 15, 4, 1, 0, 0}
	probs := []float64{0.5, 0.3, 0.15, 0.04, 0.008, 0.0015, 0.0005}
	stat, dof, err := ChiSquare(counts, probs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(stat, 1) || dof < 2 {
		t.Fatalf("pooled stat %g dof %d", stat, dof)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquare([]int64{0, 0}, []float64{0.5, 0.5}, 5); err == nil {
		t.Fatal("expected no-observations error")
	}
	if _, _, err := ChiSquare([]int64{-1, 2}, []float64{0.5, 0.5}, 5); err == nil {
		t.Fatal("expected negative-count error")
	}
	if _, _, err := ChiSquare([]int64{100}, []float64{1}, 5); err == nil {
		t.Fatal("expected too-few-cells error")
	}
	if _, err := ChiSquarePValue(-1, 3); err == nil {
		t.Fatal("expected stat validation")
	}
	if _, err := ChiSquarePValue(1, 0); err == nil {
		t.Fatal("expected dof validation")
	}
	if pv, err := ChiSquarePValue(math.Inf(1), 3); err != nil || pv != 0 {
		t.Fatalf("infinite stat p-value: %g, %v", pv, err)
	}
}
