package dist

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries([]float64{1, 2, 3})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Coeff(0) != 1 || s.Coeff(2) != 3 || s.Coeff(5) != 0 || s.Coeff(-1) != 0 {
		t.Fatalf("Coeff wrong: %v", s.Coeffs())
	}
	if got := s.Eval(2); got != 1+4+12 {
		t.Fatalf("Eval(2) = %g", got)
	}
	if got := s.Sum(); got != 6 {
		t.Fatalf("Sum = %g", got)
	}
}

func TestSeriesImmutability(t *testing.T) {
	in := []float64{1, 2}
	s := NewSeries(in)
	in[0] = 99
	if s.Coeff(0) != 1 {
		t.Fatal("NewSeries did not copy input")
	}
	c := s.Coeffs()
	c[1] = 99
	if s.Coeff(1) != 2 {
		t.Fatal("Coeffs did not copy output")
	}
}

func TestSeriesAddSubScale(t *testing.T) {
	a := NewSeries([]float64{1, 2, 3})
	b := NewSeries([]float64{4, 5, 6})
	sum := a.Add(b)
	diff := sum.Sub(b)
	for j := 0; j < 3; j++ {
		almost(t, diff.Coeff(j), a.Coeff(j), 1e-15, "add/sub roundtrip")
	}
	sc := a.Scale(2)
	almost(t, sc.Coeff(2), 6, 1e-15, "scale")
	ac := a.AddConst(10)
	almost(t, ac.Coeff(0), 11, 1e-15, "addconst")
	almost(t, a.Coeff(0), 1, 0, "AddConst must not mutate receiver")
}

func TestSeriesMul(t *testing.T) {
	// (1+z)² = 1 + 2z + z²
	a := NewSeries([]float64{1, 1, 0})
	sq := a.Mul(a)
	want := []float64{1, 2, 1}
	for j, w := range want {
		almost(t, sq.Coeff(j), w, 1e-15, "square of 1+z")
	}
}

func TestSeriesMulTruncates(t *testing.T) {
	a := NewSeries([]float64{0, 1}) // z, 2 terms
	sq := a.Mul(a)                  // z² truncated away
	if sq.Coeff(0) != 0 || sq.Coeff(1) != 0 {
		t.Fatalf("truncated square = %v", sq.Coeffs())
	}
}

func TestSeriesDiv(t *testing.T) {
	// 1/(1-z) = geometric series.
	one := ConstSeries(1, 10)
	den := NewSeries([]float64{1, -1, 0, 0, 0, 0, 0, 0, 0, 0})
	g, err := one.Div(den)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 10; j++ {
		almost(t, g.Coeff(j), 1, 1e-12, "geometric coefficient")
	}
}

func TestSeriesDivByZeroConst(t *testing.T) {
	one := ConstSeries(1, 4)
	z := IdentitySeries(4)
	if _, err := one.Div(z); err == nil {
		t.Fatal("expected ErrNotInvertible")
	}
}

func TestSeriesDivRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		a := ZeroSeries(n)
		b := ZeroSeries(n)
		for j := 0; j < n; j++ {
			a.c[j] = rng.NormFloat64()
			// Keep the divisor diagonally dominant so the quotient's
			// coefficients stay O(1) and the roundtrip is
			// well-conditioned.
			b.c[j] = 0.3 * rng.NormFloat64()
		}
		b.c[0] = 1 + rng.Float64() // invertible
		q := a.MustDiv(b)
		back := q.Mul(b)
		for j := 0; j < n; j++ {
			almost(t, back.Coeff(j), a.Coeff(j), 1e-9*(1+math.Abs(a.Coeff(j))), "div/mul roundtrip")
		}
	}
}

func TestSeriesCompose(t *testing.T) {
	// s(z) = 1 + z + z², t(z) = 2z → s(t) = 1 + 2z + 4z².
	s := NewSeries([]float64{1, 1, 1})
	u := NewSeries([]float64{0, 2, 0})
	c, err := s.Compose(u)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 4}
	for j, w := range want {
		almost(t, c.Coeff(j), w, 1e-14, "compose")
	}
}

func TestSeriesComposeRejectsNonzeroInner(t *testing.T) {
	s := NewSeries([]float64{1, 1})
	u := NewSeries([]float64{0.5, 1})
	if _, err := s.Compose(u); err == nil {
		t.Fatal("expected error composing with nonzero inner constant")
	}
}

func TestSeriesComposePGFMean(t *testing.T) {
	// Composition of PGFs: mean multiplies. R = Binomial(4, .3) PGF,
	// U = z³; mean of R∘U = 1.2·3.
	r := Binomial(4, 0.3).PGF(64)
	u := PointPMF(3).PGF(64)
	a := r.MustCompose(u)
	almost(t, a.Mean(), 1.2*3, 1e-9, "compose mean")
	almost(t, a.Sum(), 1, 1e-9, "compose mass")
}

func TestSeriesDerivative(t *testing.T) {
	s := NewSeries([]float64{5, 3, 2, 7}) // 5+3z+2z²+7z³
	d := s.Derivative()
	want := []float64{3, 4, 21, 0}
	for j, w := range want {
		almost(t, d.Coeff(j), w, 1e-15, "derivative")
	}
}

func TestSeriesFactorialMoments(t *testing.T) {
	// Poisson(λ): r-th factorial moment is λ^r.
	lam := 1.7
	p := PoissonPMF(lam, 200).PGF(200)
	for r := 0; r <= 4; r++ {
		almost(t, p.FactorialMoment(r), math.Pow(lam, float64(r)), 1e-6, "Poisson factorial moment")
	}
	almost(t, p.Mean(), lam, 1e-8, "Poisson mean")
	almost(t, p.Variance(), lam, 1e-6, "Poisson variance")
}

func TestSeriesTruncate(t *testing.T) {
	s := NewSeries([]float64{1, 2, 3})
	short := s.Truncate(2)
	if short.Len() != 2 || short.Coeff(1) != 2 {
		t.Fatalf("truncate: %v", short.Coeffs())
	}
	long := s.Truncate(5)
	if long.Len() != 5 || long.Coeff(4) != 0 || long.Coeff(2) != 3 {
		t.Fatalf("extend: %v", long.Coeffs())
	}
}

func TestSeriesMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched lengths")
		}
	}()
	NewSeries([]float64{1}).Add(NewSeries([]float64{1, 2}))
}

// Property: (a+b)·c == a·c + b·c under truncation.
func TestSeriesDistributivityQuick(t *testing.T) {
	f := func(av, bv, cv [8]float64) bool {
		a := NewSeries(av[:])
		b := NewSeries(bv[:])
		c := NewSeries(cv[:])
		lhs := a.Add(b).Mul(c)
		rhs := a.Mul(c).Add(b.Mul(c))
		for j := 0; j < 8; j++ {
			if d := lhs.Coeff(j) - rhs.Coeff(j); math.Abs(d) > 1e-6*(1+math.Abs(lhs.Coeff(j))) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Values: boundedVec8}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: composition is associative with multiplication:
// (a·b)∘u == (a∘u)·(b∘u).
func TestSeriesComposeHomomorphismQuick(t *testing.T) {
	f := func(av, bv, uv [8]float64) bool {
		a := NewSeries(av[:])
		b := NewSeries(bv[:])
		u := NewSeries(uv[:])
		u.c[0] = 0
		lhs := a.Mul(b).MustCompose(u)
		rhs := a.MustCompose(u).Mul(b.MustCompose(u))
		for j := 0; j < 8; j++ {
			if d := lhs.Coeff(j) - rhs.Coeff(j); math.Abs(d) > 1e-5*(1+math.Abs(lhs.Coeff(j))) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Values: boundedVec8}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// boundedVec8 generates [8]float64 arguments with entries in [-1, 1] to
// keep truncated-series roundoff well-conditioned.
func boundedVec8(args []reflect.Value, rng *rand.Rand) {
	for i := range args {
		var v [8]float64
		for j := range v {
			v[j] = 2*rng.Float64() - 1
		}
		args[i] = reflect.ValueOf(v)
	}
}
