package dist

import (
	"fmt"
	"math"
)

// Gamma is a gamma distribution with shape k and scale θ
// (mean kθ, variance kθ²). Section V of the paper approximates the total
// waiting time of a message through an n-stage network by a gamma
// distribution matched to the predicted mean and variance; this type is
// that approximation, with enough of the usual distribution interface to
// draw the smooth curves of Figures 3–8 and to compare tails.
type Gamma struct {
	Shape float64 // k
	Scale float64 // θ
}

// NewGamma validates and returns a Gamma{shape, scale}.
func NewGamma(shape, scale float64) (Gamma, error) {
	if shape <= 0 || math.IsNaN(shape) || math.IsInf(shape, 0) {
		return Gamma{}, fmt.Errorf("dist: gamma shape %g must be positive and finite", shape)
	}
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return Gamma{}, fmt.Errorf("dist: gamma scale %g must be positive and finite", scale)
	}
	return Gamma{Shape: shape, Scale: scale}, nil
}

// GammaFromMoments returns the gamma distribution with the given mean and
// variance: shape = mean²/var, scale = var/mean. This is exactly the
// paper's matching rule.
func GammaFromMoments(mean, variance float64) (Gamma, error) {
	if mean <= 0 || variance <= 0 {
		return Gamma{}, fmt.Errorf("dist: gamma moment matching needs positive mean (%g) and variance (%g)", mean, variance)
	}
	return NewGamma(mean*mean/variance, variance/mean)
}

// Mean returns kθ.
func (g Gamma) Mean() float64 { return g.Shape * g.Scale }

// Variance returns kθ².
func (g Gamma) Variance() float64 { return g.Shape * g.Scale * g.Scale }

// PDF returns the density at x (0 for x < 0; the x = 0 endpoint returns
// the continuous limit, which is +Inf for shape < 1).
func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case g.Shape < 1:
			return math.Inf(1)
		case g.Shape == 1:
			return 1 / g.Scale
		default:
			return 0
		}
	}
	lg, _ := math.Lgamma(g.Shape)
	return math.Exp((g.Shape-1)*math.Log(x) - x/g.Scale - lg - g.Shape*math.Log(g.Scale))
}

// CDF returns P(X ≤ x).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	p, err := RegLowerGamma(g.Shape, x/g.Scale)
	if err != nil {
		return math.NaN()
	}
	return p
}

// Tail returns P(X > x).
func (g Gamma) Tail(x float64) float64 { return 1 - g.CDF(x) }

// Quantile returns the q-quantile for q in [0,1).
func (g Gamma) Quantile(q float64) (float64, error) {
	x, err := InvRegLowerGamma(g.Shape, q)
	if err != nil {
		return 0, err
	}
	return x * g.Scale, nil
}

// CellProb returns P(j - ½ < X ≤ j + ½), the probability the gamma
// approximation assigns to the integer lattice point j. The paper's
// figures compare the simulated histogram P(w = j) against exactly this
// discretization of the fitted gamma curve (with the j = 0 cell taken as
// P(X ≤ ½)).
func (g Gamma) CellProb(j int) float64 {
	if j < 0 {
		return 0
	}
	hi := g.CDF(float64(j) + 0.5)
	if j == 0 {
		return hi
	}
	return hi - g.CDF(float64(j)-0.5)
}

// Discretize returns the lattice discretization of g as a PMF over
// {0, …, n-1} with the residual tail folded into the last cell.
func (g Gamma) Discretize(n int) PMF {
	if n < 1 {
		panic("dist: gamma discretization needs at least one cell")
	}
	p := make([]float64, n)
	acc := 0.0
	for j := 0; j < n; j++ {
		p[j] = g.CellProb(j)
		acc += p[j]
	}
	if acc < 1 {
		p[n-1] += 1 - acc
	}
	// guard tiny negative from CDF roundoff
	for j := range p {
		if p[j] < 0 {
			p[j] = 0
		}
	}
	return PMF{p: p}
}
