package dist

import (
	"math"
	"testing"
)

func TestRegLowerGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		p, err := RegLowerGamma(1, x)
		if err != nil {
			t.Fatal(err)
		}
		almost(t, p, 1-math.Exp(-x), 1e-12, "P(1,x)")
	}
	// P(1/2, x) = erf(√x).
	for _, x := range []float64{0.25, 1, 4} {
		p, err := RegLowerGamma(0.5, x)
		if err != nil {
			t.Fatal(err)
		}
		almost(t, p, math.Erf(math.Sqrt(x)), 1e-12, "P(1/2,x)")
	}
	// P(a, a) ≈ 1/2 for large a (median near mean).
	p, err := RegLowerGamma(1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.45 || p > 0.55 {
		t.Fatalf("P(1000,1000) = %g, want ≈ 0.5", p)
	}
}

func TestRegGammaComplement(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.5, 7, 42} {
		for _, x := range []float64{0.01, 0.5, 1, 3, 10, 80} {
			p, err := RegLowerGamma(a, x)
			if err != nil {
				t.Fatal(err)
			}
			q, err := RegUpperGamma(a, x)
			if err != nil {
				t.Fatal(err)
			}
			almost(t, p+q, 1, 1e-12, "P+Q=1")
			if p < 0 || p > 1 {
				t.Fatalf("P(%g,%g) = %g out of [0,1]", a, x, p)
			}
		}
	}
}

func TestRegLowerGammaRecurrence(t *testing.T) {
	// P(a+1, x) = P(a, x) - x^a e^{-x} / Γ(a+1).
	for _, a := range []float64{0.7, 2, 5.5} {
		for _, x := range []float64{0.5, 2, 9} {
			p1, err := RegLowerGamma(a, x)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := RegLowerGamma(a+1, x)
			if err != nil {
				t.Fatal(err)
			}
			lg, _ := math.Lgamma(a + 1)
			want := p1 - math.Exp(a*math.Log(x)-x-lg)
			almost(t, p2, want, 1e-11, "incomplete gamma recurrence")
		}
	}
}

func TestRegLowerGammaEdge(t *testing.T) {
	if _, err := RegLowerGamma(0, 1); err == nil {
		t.Fatal("expected error for a = 0")
	}
	if _, err := RegLowerGamma(1, -1); err == nil {
		t.Fatal("expected error for x < 0")
	}
	p, err := RegLowerGamma(3, 0)
	if err != nil || p != 0 {
		t.Fatalf("P(3,0) = %g, %v", p, err)
	}
	p, err = RegLowerGamma(3, math.Inf(1))
	if err != nil || p != 1 {
		t.Fatalf("P(3,∞) = %g, %v", p, err)
	}
}

func TestInvRegLowerGammaRoundtrip(t *testing.T) {
	for _, a := range []float64{0.4, 1, 2, 5, 20, 200} {
		for _, p := range []float64{0.001, 0.05, 0.25, 0.5, 0.9, 0.99, 0.9999} {
			x, err := InvRegLowerGamma(a, p)
			if err != nil {
				t.Fatal(err)
			}
			back, err := RegLowerGamma(a, x)
			if err != nil {
				t.Fatal(err)
			}
			almost(t, back, p, 1e-8, "inverse roundtrip")
		}
	}
}

func TestInvRegLowerGammaEdge(t *testing.T) {
	x, err := InvRegLowerGamma(2, 0)
	if err != nil || x != 0 {
		t.Fatalf("inv(2,0) = %g, %v", x, err)
	}
	if _, err := InvRegLowerGamma(2, 1); err == nil {
		t.Fatal("expected error for p = 1")
	}
	if _, err := InvRegLowerGamma(-1, 0.5); err == nil {
		t.Fatal("expected error for a < 0")
	}
}

func TestNormQuantile(t *testing.T) {
	almost(t, NormQuantile(0.5), 0, 1e-9, "median")
	almost(t, NormQuantile(0.975), 1.959964, 1e-4, "97.5%")
	almost(t, NormQuantile(0.025), -1.959964, 1e-4, "2.5%")
	almost(t, NormQuantile(0.8413447), 1.0, 1e-3, "84th pct")
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Fatal("endpoints must be ±Inf")
	}
	// Symmetry.
	for _, p := range []float64{0.01, 0.1, 0.3} {
		almost(t, NormQuantile(p), -NormQuantile(1-p), 1e-9, "symmetry")
	}
}
