// Package dist provides the numerical substrate for the waiting-time
// analysis: truncated power series (probability generating functions),
// discrete probability mass functions, and the special functions needed to
// evaluate gamma-distribution approximations.
//
// Everything here is pure, allocation-conscious stdlib Go. The power-series
// engine is what turns the paper's z-transforms into actual probability
// distributions: a PGF is represented by its first n Taylor coefficients
// around z = 0, and the waiting-time transform t(z) of Theorem 1 is built
// from R(z) and U(z) by composition, multiplication and division of
// truncated series. Coefficient j of the result is P(w = j) exactly
// (up to truncation), with no transform inversion step needed.
package dist

import (
	"errors"
	"fmt"
	"math"
)

// Series is a power series truncated to a fixed number of terms:
// s(z) = c[0] + c[1] z + c[2] z² + … + c[len(c)-1] z^{len(c)-1}.
//
// Series values are immutable by convention: operations return new slices
// and never alias their inputs. All binary operations require equal
// truncation orders, which keeps error management trivial: a result is
// exact in its first n coefficients whenever the inputs are.
type Series struct {
	c []float64
}

// NewSeries returns the series with the given coefficients. The slice is
// copied.
func NewSeries(coeffs []float64) Series {
	c := make([]float64, len(coeffs))
	copy(c, coeffs)
	return Series{c: c}
}

// ZeroSeries returns the zero series truncated to n terms.
func ZeroSeries(n int) Series {
	if n <= 0 {
		panic("dist: series must have at least one term")
	}
	return Series{c: make([]float64, n)}
}

// ConstSeries returns the constant series v truncated to n terms.
func ConstSeries(v float64, n int) Series {
	s := ZeroSeries(n)
	s.c[0] = v
	return s
}

// IdentitySeries returns the series z truncated to n terms (n ≥ 2).
func IdentitySeries(n int) Series {
	if n < 2 {
		panic("dist: identity series needs at least two terms")
	}
	s := ZeroSeries(n)
	s.c[1] = 1
	return s
}

// Len returns the truncation order (number of retained coefficients).
func (s Series) Len() int { return len(s.c) }

// Coeff returns the coefficient of z^j, or 0 if j is beyond the truncation.
func (s Series) Coeff(j int) float64 {
	if j < 0 || j >= len(s.c) {
		return 0
	}
	return s.c[j]
}

// Coeffs returns a copy of the coefficient slice.
func (s Series) Coeffs() []float64 {
	c := make([]float64, len(s.c))
	copy(c, s.c)
	return c
}

// Truncate returns the series truncated (or zero-extended) to n terms.
func (s Series) Truncate(n int) Series {
	if n <= 0 {
		panic("dist: series must have at least one term")
	}
	t := ZeroSeries(n)
	copy(t.c, s.c)
	return t
}

func (s Series) sameLen(t Series, op string) {
	if len(s.c) != len(t.c) {
		panic(fmt.Sprintf("dist: %s of series with mismatched truncation %d != %d", op, len(s.c), len(t.c)))
	}
}

// Add returns s + t.
func (s Series) Add(t Series) Series {
	s.sameLen(t, "Add")
	r := ZeroSeries(len(s.c))
	for i := range s.c {
		r.c[i] = s.c[i] + t.c[i]
	}
	return r
}

// Sub returns s - t.
func (s Series) Sub(t Series) Series {
	s.sameLen(t, "Sub")
	r := ZeroSeries(len(s.c))
	for i := range s.c {
		r.c[i] = s.c[i] - t.c[i]
	}
	return r
}

// Scale returns a·s.
func (s Series) Scale(a float64) Series {
	r := ZeroSeries(len(s.c))
	for i := range s.c {
		r.c[i] = a * s.c[i]
	}
	return r
}

// AddConst returns s + a (added to the constant term).
func (s Series) AddConst(a float64) Series {
	r := NewSeries(s.c)
	r.c[0] += a
	return r
}

// Mul returns the product s·t truncated to the common order.
func (s Series) Mul(t Series) Series {
	s.sameLen(t, "Mul")
	n := len(s.c)
	r := ZeroSeries(n)
	for i := 0; i < n; i++ {
		si := s.c[i]
		if si == 0 {
			continue
		}
		for j := 0; i+j < n; j++ {
			r.c[i+j] += si * t.c[j]
		}
	}
	return r
}

// ErrNotInvertible reports a series division whose divisor has zero
// constant term (no formal power-series inverse exists).
var ErrNotInvertible = errors.New("dist: series divisor has zero constant term")

// Div returns s/t as a formal power series. It returns ErrNotInvertible if
// t(0) == 0 (and, to protect against catastrophic cancellation from
// OCR-of-the-universe style inputs, if |t(0)| < 1e-300).
func (s Series) Div(t Series) (Series, error) {
	s.sameLen(t, "Div")
	t0 := t.c[0]
	if math.Abs(t0) < 1e-300 {
		return Series{}, ErrNotInvertible
	}
	n := len(s.c)
	r := ZeroSeries(n)
	// Long division: r[j] = (s[j] - Σ_{i=1..j} t[i]·r[j-i]) / t[0].
	for j := 0; j < n; j++ {
		acc := s.c[j]
		for i := 1; i <= j; i++ {
			acc -= t.c[i] * r.c[j-i]
		}
		r.c[j] = acc / t0
	}
	return r, nil
}

// MustDiv is Div that panics on a non-invertible divisor. Intended for
// callers that have already validated the model (e.g. the transform
// assembly, where divisor constant terms are probabilities bounded away
// from zero for every valid traffic model).
func (s Series) MustDiv(t Series) Series {
	r, err := s.Div(t)
	if err != nil {
		panic(err)
	}
	return r
}

// Compose returns s(t(z)) truncated to the common order. It requires
// t(0) == 0; composition with a nonzero inner constant term would need
// all (untruncated) coefficients of s to get even the constant term right.
// All compositions in this package have the form R(U(z)) with U a service
// PGF and service times ≥ 1 cycle, so U(0) = 0 always holds.
func (s Series) Compose(t Series) (Series, error) {
	s.sameLen(t, "Compose")
	if t.c[0] != 0 {
		return Series{}, fmt.Errorf("dist: Compose requires inner series with zero constant term, got %g", t.c[0])
	}
	n := len(s.c)
	// Horner evaluation over series arithmetic:
	// r = s[n-1]; r = r·t + s[n-2]; …
	r := ConstSeries(s.c[n-1], n)
	for j := n - 2; j >= 0; j-- {
		r = r.Mul(t)
		r.c[0] += s.c[j]
	}
	return r, nil
}

// MustCompose is Compose that panics on a nonzero inner constant term.
func (s Series) MustCompose(t Series) Series {
	r, err := s.Compose(t)
	if err != nil {
		panic(err)
	}
	return r
}

// Derivative returns s′(z), truncated to the same order (top coefficient 0).
func (s Series) Derivative() Series {
	n := len(s.c)
	r := ZeroSeries(n)
	for j := 1; j < n; j++ {
		r.c[j-1] = float64(j) * s.c[j]
	}
	return r
}

// Eval evaluates the truncated polynomial at x by Horner's method.
func (s Series) Eval(x float64) float64 {
	acc := 0.0
	for j := len(s.c) - 1; j >= 0; j-- {
		acc = acc*x + s.c[j]
	}
	return acc
}

// Sum returns the sum of all retained coefficients (the value at z = 1 of
// the truncated polynomial). For a PGF this measures how much probability
// mass the truncation captured; 1 - Sum() is the truncated tail.
func (s Series) Sum() float64 {
	acc := 0.0
	for _, v := range s.c {
		acc += v
	}
	return acc
}

// FactorialMoment returns the r-th factorial moment Σ_j j(j-1)…(j-r+1)·c[j]
// of the coefficient sequence, i.e. s^{(r)}(1) of the truncated polynomial.
// For PGFs with negligible truncated tail this approximates the factorial
// moment of the underlying distribution.
func (s Series) FactorialMoment(r int) float64 {
	if r < 0 {
		panic("dist: negative factorial moment order")
	}
	acc := 0.0
	for j := r; j < len(s.c); j++ {
		term := s.c[j]
		for i := 0; i < r; i++ {
			term *= float64(j - i)
		}
		acc += term
	}
	return acc
}

// Mean returns the first moment Σ j·c[j] of the coefficient sequence.
func (s Series) Mean() float64 { return s.FactorialMoment(1) }

// Variance returns the variance of the coefficient sequence interpreted as
// a (sub-)probability distribution: E[j²] - E[j]².
func (s Series) Variance() float64 {
	m1 := s.FactorialMoment(1)
	m2f := s.FactorialMoment(2)
	return m2f + m1 - m1*m1
}

// String renders the first few coefficients for debugging.
func (s Series) String() string {
	n := len(s.c)
	show := n
	if show > 8 {
		show = 8
	}
	out := "Series["
	for j := 0; j < show; j++ {
		if j > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.6g", s.c[j])
	}
	if show < n {
		out += fmt.Sprintf(" …(%d terms)", n)
	}
	return out + "]"
}
