// Package faultinject is a zero-dependency, deterministic fault-injection
// layer for the sweep engine and its journal. A seeded Schedule arms named
// injection points — a replication panic at cycle N, a lane-group failure
// mid-flight, a context-style cancellation, an arena allocation failure, a
// journal torn/short write or CRC corruption on record K, disk-full on
// checkpoint compaction, an artificial stall — and an Injector turns the
// schedule into per-replication fault plans that are pure functions of
// (schedule seed, fault class, point key, replication index). Which worker
// or lane happens to execute a replication never changes which faults it
// receives, so a chaos run reproduces exactly from its schedule spec.
//
// Injection points follow the same contract as the obs probes: a nil
// *RepFault (or *JournalFault) is a no-op the engines pay one pointer
// comparison for, the fields are excluded from canonical config hashes,
// and every armed fault fires at most once per replication plan — so a
// retried or degraded replication converges back to the fault-free result
// bit for bit.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Class names one injection point.
type Class string

const (
	// RepPanic panics inside the engine's cycle loop, exercising the
	// sweep's panic isolation and retry path.
	RepPanic Class = "rep.panic"
	// RepCancel makes a replication return a cancellation error from
	// inside the cycle loop, exercising the never-retry-cancellation rule
	// and journal resume.
	RepCancel Class = "rep.cancel"
	// RepStall blocks a replication until its context is cancelled,
	// exercising the sweep watchdog.
	RepStall Class = "rep.stall"
	// ArenaAlloc panics at the Nth fresh slot allocation, modelling
	// resource exhaustion inside the arena.
	ArenaAlloc Class = "arena.alloc"
	// LaneFail fails a whole lock-step lane group mid-flight, exercising
	// the degrade-to-scalar path. Only the lanes engine has this seam, so
	// scalar (W=1) runs are immune — which is exactly why degradation
	// recovers.
	LaneFail Class = "lane.fail"
	// JournalTorn truncates an append mid-record and reports a write
	// error, the footprint of a crash during an append.
	JournalTorn Class = "journal.torn"
	// JournalShort drops the record's trailing bytes (newline included)
	// and reports a write error — a short write that "succeeded".
	JournalShort Class = "journal.short"
	// JournalCRC silently flips one payload bit in an appended record;
	// only the per-record CRC catches it on the next open.
	JournalCRC Class = "journal.crc"
	// JournalDiskFull fails checkpoint compaction before the atomic
	// rename, leaving the original journal intact.
	JournalDiskFull Class = "journal.diskfull"
)

// Classes lists every injection point, engine classes first.
var Classes = []Class{
	RepPanic, RepCancel, RepStall, ArenaAlloc, LaneFail,
	JournalTorn, JournalShort, JournalCRC, JournalDiskFull,
}

// Journal reports whether the class injects into the journal layer
// (record-indexed) rather than an engine replication (cycle-indexed).
func (c Class) Journal() bool {
	switch c {
	case JournalTorn, JournalShort, JournalCRC, JournalDiskFull:
		return true
	}
	return false
}

func (c Class) valid() bool {
	for _, k := range Classes {
		if c == k {
			return true
		}
	}
	return false
}

// ErrInjected is matched (via errors.Is) by every error an Injector
// produces, however deeply wrapped — the chaos battery's "failed typed"
// assertion in one sentinel.
var ErrInjected = errors.New("faultinject: injected fault")

// Error is the typed error carried by every injected fault.
type Error struct {
	Class  Class
	Cycle  int64 // simulated cycle the fault fired at (engine classes)
	Record int   // 0-based record ordinal (journal classes)
	cause  error
}

func (e *Error) Error() string {
	if e.Class.Journal() {
		return fmt.Sprintf("faultinject: %s at record %d", e.Class, e.Record)
	}
	return fmt.Sprintf("faultinject: %s at cycle %d", e.Class, e.Cycle)
}

// Unwrap exposes the underlying cause (context.Canceled for RepCancel,
// the stalled context's error for RepStall).
func (e *Error) Unwrap() error { return e.cause }

// Is reports true for ErrInjected so errors.Is(err, ErrInjected) matches
// any injected fault without enumerating classes.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// Fault arms one injection point within a Schedule.
type Fault struct {
	// Class names the injection point.
	Class Class
	// Prob is the per-replication arming probability for engine classes.
	// Outside (0,1) every replication is armed. Journal classes ignore it.
	Prob float64
	// Cycle is the simulated cycle an engine fault fires at (first
	// executed cycle ≥ Cycle). 0 derives a small cycle from the seed.
	Cycle int64
	// Ordinal is the fresh-slot ordinal for ArenaAlloc and the 0-based
	// record index for journal classes. 0 derives one from the seed
	// (ArenaAlloc) or targets record 0 (journal classes).
	Ordinal int
}

// Schedule is a reproducible set of armed faults. Seed drives every
// derived parameter and the per-replication arming draws; two runs with
// the same schedule and the same sweep configuration inject identically.
type Schedule struct {
	Seed   uint64
	Faults []Fault
}

// splitmix is the SplitMix64 output function — the same mixer the
// engines use for seed derivation, reimplemented here so the package
// stays dependency-free in both directions.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix folds any number of words through splitmix into one.
func mix(vs ...uint64) uint64 {
	h := uint64(0x6a09e667f3bcc909)
	for _, v := range vs {
		h = splitmix(h ^ v)
	}
	return h
}

func classHash(c Class) uint64 {
	h := fnv.New64a()
	h.Write([]byte(c))
	return h.Sum64()
}

// FromSeed derives a reproducible schedule: one to three distinct fault
// classes with seed-derived parameters. Engine classes arm with
// probability ½ per replication so a batch mixes faulted and clean
// replications; journal classes target a seed-derived early record.
func FromSeed(seed uint64) *Schedule {
	n := 1 + int(mix(seed, 0xfa)%3)
	perm := make([]int, len(Classes))
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := int(mix(seed, 0x5e, uint64(i)) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	s := &Schedule{Seed: seed}
	for _, idx := range perm[:n] {
		f := Fault{Class: Classes[idx]}
		if !f.Class.Journal() {
			f.Prob = 0.5
		}
		s.Faults = append(s.Faults, f)
	}
	sort.Slice(s.Faults, func(i, j int) bool { return s.Faults[i].Class < s.Faults[j].Class })
	return s
}

// Parse builds a schedule from a spec string. Grammar, items separated
// by ';':
//
//	seed=N                     derive the whole schedule from N (alone)
//	                           or set the derivation seed (with faults)
//	class                      arm class with default parameters
//	class:param=val,param=val  arm class with explicit parameters
//
// Parameters: prob (float), cycle (int), ordinal / record (int, aliases).
// Example: "seed=7" or "rep.panic:cycle=100;journal.torn:record=2".
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{}
	seedOnly := true
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if v, ok := strings.CutPrefix(item, "seed="); ok {
			seed, err := strconv.ParseUint(strings.TrimSpace(v), 0, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: parse %q: bad seed: %w", spec, err)
			}
			s.Seed = seed
			continue
		}
		seedOnly = false
		name, params, _ := strings.Cut(item, ":")
		f := Fault{Class: Class(strings.TrimSpace(name))}
		if !f.Class.valid() {
			return nil, fmt.Errorf("faultinject: parse %q: unknown fault class %q (known: %v)", spec, name, Classes)
		}
		if params != "" {
			for _, kv := range strings.Split(params, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("faultinject: parse %q: parameter %q is not key=value", spec, kv)
				}
				k, v = strings.TrimSpace(k), strings.TrimSpace(v)
				switch k {
				case "prob":
					p, err := strconv.ParseFloat(v, 64)
					if err != nil {
						return nil, fmt.Errorf("faultinject: parse %q: bad prob: %w", spec, err)
					}
					f.Prob = p
				case "cycle":
					c, err := strconv.ParseInt(v, 0, 64)
					if err != nil {
						return nil, fmt.Errorf("faultinject: parse %q: bad cycle: %w", spec, err)
					}
					f.Cycle = c
				case "ordinal", "record":
					o, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("faultinject: parse %q: bad %s: %w", spec, k, err)
					}
					f.Ordinal = o
				default:
					return nil, fmt.Errorf("faultinject: parse %q: unknown parameter %q", spec, k)
				}
			}
		}
		s.Faults = append(s.Faults, f)
	}
	if seedOnly {
		return FromSeed(s.Seed), nil
	}
	return s, nil
}

// String renders the schedule in the Parse grammar, so a chaos run can
// be reproduced by pasting the printed spec back into -chaos.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", s.Seed)
	for _, f := range s.Faults {
		b.WriteByte(';')
		b.WriteString(string(f.Class))
		var ps []string
		if f.Prob != 0 {
			ps = append(ps, "prob="+strconv.FormatFloat(f.Prob, 'g', -1, 64))
		}
		if f.Cycle != 0 {
			ps = append(ps, "cycle="+strconv.FormatInt(f.Cycle, 10))
		}
		if f.Ordinal != 0 {
			if f.Class.Journal() {
				ps = append(ps, "record="+strconv.Itoa(f.Ordinal))
			} else {
				ps = append(ps, "ordinal="+strconv.Itoa(f.Ordinal))
			}
		}
		if len(ps) > 0 {
			b.WriteByte(':')
			b.WriteString(strings.Join(ps, ","))
		}
	}
	return b.String()
}

// Injector turns a schedule into per-replication and per-journal fault
// plans and counts every fault that actually fires. Safe for concurrent
// use; a nil *Injector hands out nil plans everywhere.
type Injector struct {
	sched *Schedule

	// OnInject, when non-nil, observes every fired fault — the event-log
	// hook. Called from engine goroutines; must be safe for concurrent
	// use and must not block.
	OnInject func(Error)

	injected atomic.Int64

	mu   sync.Mutex
	reps map[repPlanKey]*RepFault
	jf   *JournalFault
}

type repPlanKey struct {
	key uint64
	rep int
}

// New builds an injector for the schedule. A nil or empty schedule still
// yields a working injector that injects nothing.
func New(s *Schedule) *Injector {
	if s == nil {
		s = &Schedule{}
	}
	return &Injector{sched: s, reps: make(map[repPlanKey]*RepFault)}
}

// Schedule returns the armed schedule (never nil).
func (in *Injector) Schedule() *Schedule { return in.sched }

// Injected returns how many faults have fired so far — the
// fault.injected counter.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	return in.injected.Load()
}

func (in *Injector) note(e Error) {
	in.injected.Add(1)
	if f := in.OnInject; f != nil {
		f(e)
	}
}

// armed draws the per-replication arming decision for an engine fault:
// deterministic in (schedule seed, class, point key, rep), independent of
// worker scheduling.
func (in *Injector) armed(f Fault, key uint64, rep int) bool {
	if f.Prob <= 0 || f.Prob >= 1 {
		return true
	}
	u := mix(in.sched.Seed, classHash(f.Class), key, uint64(rep))
	return float64(u>>11)/(1<<53) < f.Prob
}

func (in *Injector) cycleFor(f Fault, key uint64, rep int) int64 {
	if f.Cycle > 0 {
		return f.Cycle
	}
	return 1 + int64(mix(in.sched.Seed, classHash(f.Class), key, uint64(rep), 1)%512)
}

func (in *Injector) ordinalFor(f Fault, key uint64, rep int) int64 {
	if f.Ordinal > 0 {
		return int64(f.Ordinal)
	}
	return 1 + int64(mix(in.sched.Seed, classHash(f.Class), key, uint64(rep), 2)%32)
}

// Rep returns the fault plan for replication rep of the point with
// canonical hash key, or nil when the schedule arms nothing for it. The
// same (key, rep) always returns the same plan instance, so one-shot
// faults stay fired across retries and degradation.
func (in *Injector) Rep(key uint64, rep int) *RepFault {
	if in == nil {
		return nil
	}
	pk := repPlanKey{key, rep}
	in.mu.Lock()
	defer in.mu.Unlock()
	if f, ok := in.reps[pk]; ok {
		return f
	}
	var f *RepFault
	for _, fa := range in.sched.Faults {
		if fa.Class.Journal() || !in.armed(fa, key, rep) {
			continue
		}
		if f == nil {
			f = &RepFault{in: in, panicAt: -1, cancelAt: -1, stallAt: -1, laneAt: -1, allocAt: -1}
		}
		switch fa.Class {
		case RepPanic:
			f.panicAt = in.cycleFor(fa, key, rep)
		case RepCancel:
			f.cancelAt = in.cycleFor(fa, key, rep)
		case RepStall:
			f.stallAt = in.cycleFor(fa, key, rep)
		case LaneFail:
			f.laneAt = in.cycleFor(fa, key, rep)
		case ArenaAlloc:
			f.allocAt = in.ordinalFor(fa, key, rep)
		}
	}
	in.reps[pk] = f // nil plans are cached too
	return f
}

// Journal returns the journal fault plan, or nil when the schedule arms
// no journal class. One plan per injector: the record ordinals index the
// journal's append stream.
func (in *Injector) Journal() *JournalFault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.jf != nil {
		return in.jf
	}
	jf := &JournalFault{in: in, tornAt: -1, shortAt: -1, crcAt: -1, fullAt: -1}
	armed := false
	for _, fa := range in.sched.Faults {
		if !fa.Class.Journal() {
			continue
		}
		armed = true
		switch fa.Class {
		case JournalTorn:
			jf.tornAt = int64(fa.Ordinal)
		case JournalShort:
			jf.shortAt = int64(fa.Ordinal)
		case JournalCRC:
			jf.crcAt = int64(fa.Ordinal)
		case JournalDiskFull:
			jf.fullAt = int64(fa.Ordinal)
		}
	}
	if !armed {
		return nil
	}
	in.jf = jf
	return jf
}

// RepFault is one replication's armed fault plan. The engines consult it
// from exactly one goroutine at a time (a replication runs on one
// worker), but firing is guarded by atomics so a plan shared across a
// retry or a lane→scalar degradation fires each fault at most once.
// All methods are nil-receiver safe.
type RepFault struct {
	in *Injector

	panicAt, cancelAt, stallAt, laneAt int64 // fire cycle, -1 = disarmed
	allocAt                            int64 // fresh-slot ordinal, -1 = disarmed

	allocs                                                    atomic.Int64
	panicFired, cancelFired, stallFired, laneFired, allocOnce atomic.Bool
}

// AtCycle is the engines' per-cycle injection point. It may panic
// (RepPanic), block until ctx is cancelled (RepStall), or return a typed
// error (RepCancel). Engines call it at the top of the cycle loop; a nil
// plan costs one comparison.
func (f *RepFault) AtCycle(ctx context.Context, t int64) error {
	if f == nil {
		return nil
	}
	if f.panicAt >= 0 && t >= f.panicAt && f.panicFired.CompareAndSwap(false, true) {
		e := &Error{Class: RepPanic, Cycle: t}
		f.in.note(*e)
		panic(e)
	}
	if f.stallAt >= 0 && t >= f.stallAt && f.stallFired.CompareAndSwap(false, true) {
		f.in.note(Error{Class: RepStall, Cycle: t})
		<-ctx.Done()
		return &Error{Class: RepStall, Cycle: t, cause: ctx.Err()}
	}
	if f.cancelAt >= 0 && t >= f.cancelAt && f.cancelFired.CompareAndSwap(false, true) {
		e := &Error{Class: RepCancel, Cycle: t, cause: context.Canceled}
		f.in.note(*e)
		return e
	}
	return nil
}

// LaneGroup is the lanes engine's group-failure injection point: the
// first armed live lane to reach its fire cycle fails the whole group.
// Scalar engines never call it, so degraded replications run clean.
func (f *RepFault) LaneGroup(t int64) error {
	if f == nil || f.laneAt < 0 || t < f.laneAt || !f.laneFired.CompareAndSwap(false, true) {
		return nil
	}
	e := &Error{Class: LaneFail, Cycle: t}
	f.in.note(*e)
	return e
}

// OnSlotAlloc is the arena's fresh-slot allocation injection point: the
// Nth fresh allocation of the replication panics with a typed error,
// modelling allocation failure. Counting spans retries, so a fired plan
// never re-fires.
func (f *RepFault) OnSlotAlloc() {
	if f == nil || f.allocAt < 0 {
		return
	}
	if f.allocs.Add(1) == f.allocAt && f.allocOnce.CompareAndSwap(false, true) {
		e := &Error{Class: ArenaAlloc}
		f.in.note(*e)
		panic(e)
	}
}

// JournalFault is the journal's armed fault plan, indexed by the 0-based
// ordinal of appended records. Safe for concurrent use.
type JournalFault struct {
	in *Injector

	tornAt, shortAt, crcAt, fullAt int64 // record ordinal, -1 = disarmed

	recs                                           atomic.Int64
	tornFired, shortFired, crcFired, diskFullFired atomic.Bool
}

// BeforeAppend intercepts one framed record about to be written. It
// returns the bytes to actually write and, for torn/short writes, the
// typed error the append must report. A JournalCRC fault mutates the
// record silently — the write "succeeds" and only the per-record CRC
// exposes it on the next open. Nil-receiver safe.
func (jf *JournalFault) BeforeAppend(line []byte) ([]byte, *Error) {
	if jf == nil {
		return line, nil
	}
	rec := jf.recs.Add(1) - 1
	if jf.tornAt >= 0 && rec >= jf.tornAt && jf.tornFired.CompareAndSwap(false, true) {
		e := &Error{Class: JournalTorn, Record: int(rec)}
		jf.in.note(*e)
		return line[:len(line)/2], e
	}
	if jf.shortAt >= 0 && rec >= jf.shortAt && jf.shortFired.CompareAndSwap(false, true) {
		e := &Error{Class: JournalShort, Record: int(rec)}
		jf.in.note(*e)
		return line[:len(line)-2], e
	}
	if jf.crcAt >= 0 && rec >= jf.crcAt && jf.crcFired.CompareAndSwap(false, true) {
		jf.in.note(Error{Class: JournalCRC, Record: int(rec)})
		mut := append([]byte(nil), line...)
		mut[len(mut)/2] ^= 0x01
		return mut, nil
	}
	return line, nil
}

// OnCheckpoint fires the disk-full fault during checkpoint compaction,
// before the atomic rename — the original journal stays intact.
// Nil-receiver safe.
func (jf *JournalFault) OnCheckpoint() error {
	if jf == nil || jf.fullAt < 0 || !jf.diskFullFired.CompareAndSwap(false, true) {
		return nil
	}
	e := &Error{Class: JournalDiskFull, Record: int(jf.recs.Load())}
	jf.in.note(*e)
	return e
}
