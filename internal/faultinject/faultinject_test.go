package faultinject

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestParseSeedOnly(t *testing.T) {
	s, err := Parse("seed=42")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Seed != 42 || len(s.Faults) == 0 {
		t.Fatalf("seed-only spec should derive a schedule, got %+v", s)
	}
	s2, err := Parse("seed=42")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("FromSeed not deterministic: %+v vs %+v", s, s2)
	}
}

func TestParseExplicit(t *testing.T) {
	s, err := Parse("rep.panic:cycle=100,prob=0.5; journal.torn:record=2; seed=9")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Seed != 9 || len(s.Faults) != 2 {
		t.Fatalf("got %+v", s)
	}
	if s.Faults[0].Class != RepPanic || s.Faults[0].Cycle != 100 || s.Faults[0].Prob != 0.5 {
		t.Fatalf("panic fault parsed wrong: %+v", s.Faults[0])
	}
	if s.Faults[1].Class != JournalTorn || s.Faults[1].Ordinal != 2 {
		t.Fatalf("torn fault parsed wrong: %+v", s.Faults[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"rep.explode",
		"rep.panic:cycle",
		"rep.panic:cycle=abc",
		"rep.panic:budget=3",
		"seed=xyz",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"rep.panic:cycle=100;journal.torn:record=2",
		"seed=7",
		"lane.fail:prob=0.25,cycle=3;arena.alloc:ordinal=5",
	} {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		s2, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(String()=%q): %v", s.String(), err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip %q -> %q changed schedule: %+v vs %+v", spec, s.String(), s, s2)
		}
	}
}

func TestRepPlanDeterministic(t *testing.T) {
	sched := &Schedule{Seed: 3, Faults: []Fault{{Class: RepPanic, Prob: 0.5}}}
	a, b := New(sched), New(sched)
	armedA, armedB := 0, 0
	for rep := 0; rep < 64; rep++ {
		fa, fb := a.Rep(0xbeef, rep), b.Rep(0xbeef, rep)
		if (fa == nil) != (fb == nil) {
			t.Fatalf("rep %d: arming disagrees across injectors", rep)
		}
		if fa != nil {
			armedA++
			if fa.panicAt != fb.panicAt {
				t.Fatalf("rep %d: derived cycle disagrees: %d vs %d", rep, fa.panicAt, fb.panicAt)
			}
		}
		if fb != nil {
			armedB++
		}
	}
	if armedA != armedB {
		t.Fatalf("armed counts differ: %d vs %d", armedA, armedB)
	}
	if armedA == 0 || armedA == 64 {
		t.Fatalf("prob=0.5 armed %d/64 replications; draw looks degenerate", armedA)
	}
	// The same (key, rep) must return the same plan instance, so one-shot
	// state survives retries.
	if a.Rep(0xbeef, 0) != a.Rep(0xbeef, 0) {
		t.Fatal("Rep not cached per (key, rep)")
	}
}

func TestAtCycleOneShot(t *testing.T) {
	in := New(&Schedule{Faults: []Fault{{Class: RepCancel, Cycle: 10}}})
	f := in.Rep(1, 0)
	if f == nil {
		t.Fatal("plan should be armed")
	}
	if err := f.AtCycle(context.Background(), 9); err != nil {
		t.Fatalf("fired before cycle 10: %v", err)
	}
	err := f.AtCycle(context.Background(), 10)
	if err == nil {
		t.Fatal("no error at armed cycle")
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Class != RepCancel || fe.Cycle != 10 {
		t.Fatalf("wrong error: %v", err)
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error should match ErrInjected and context.Canceled: %v", err)
	}
	if err := f.AtCycle(context.Background(), 11); err != nil {
		t.Fatalf("fired twice: %v", err)
	}
	if got := in.Injected(); got != 1 {
		t.Fatalf("Injected() = %d, want 1", got)
	}
}

func TestPanicAndAllocFire(t *testing.T) {
	in := New(&Schedule{Faults: []Fault{{Class: RepPanic, Cycle: 5}, {Class: ArenaAlloc, Ordinal: 3}}})
	f := in.Rep(2, 1)
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("AtCycle should panic")
			}
			if e, ok := p.(*Error); !ok || e.Class != RepPanic {
				t.Fatalf("panic value %v", p)
			}
		}()
		f.AtCycle(context.Background(), 5)
	}()
	for i := 0; i < 2; i++ {
		f.OnSlotAlloc() // ordinals 1, 2: below the armed ordinal
	}
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("OnSlotAlloc should panic at ordinal 3")
			}
			if e, ok := p.(*Error); !ok || e.Class != ArenaAlloc {
				t.Fatalf("panic value %v", p)
			}
		}()
		f.OnSlotAlloc()
	}()
	f.OnSlotAlloc() // past the ordinal: never re-fires
	if got := in.Injected(); got != 2 {
		t.Fatalf("Injected() = %d, want 2", got)
	}
}

func TestStallBlocksUntilCancel(t *testing.T) {
	in := New(&Schedule{Faults: []Fault{{Class: RepStall, Cycle: 1}}})
	f := in.Rep(3, 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.AtCycle(ctx, 1) }()
	select {
	case err := <-done:
		t.Fatalf("stall returned before cancel: %v", err)
	default:
	}
	cancel()
	err := <-done
	if !errors.Is(err, ErrInjected) || !errors.Is(err, context.Canceled) {
		t.Fatalf("stall error %v", err)
	}
}

func TestJournalFaults(t *testing.T) {
	line := []byte("0a1b2c3d 40 {\"v\":2,\"key\":123456789,\"label\":\"x\"}\n")

	in := New(&Schedule{Faults: []Fault{{Class: JournalTorn, Ordinal: 1}}})
	jf := in.Journal()
	if jf == nil {
		t.Fatal("journal plan should be armed")
	}
	if got, err := jf.BeforeAppend(line); err != nil || len(got) != len(line) {
		t.Fatalf("record 0 should pass through, got %d bytes err %v", len(got), err)
	}
	got, err := jf.BeforeAppend(line)
	if err == nil || err.Class != JournalTorn || err.Record != 1 {
		t.Fatalf("record 1 should tear: %v", err)
	}
	if len(got) >= len(line) || got[len(got)-1] == '\n' {
		t.Fatalf("torn bytes should be a strict unterminated prefix, got %q", got)
	}
	if _, err := jf.BeforeAppend(line); err != nil {
		t.Fatalf("torn fault fired twice: %v", err)
	}

	in = New(&Schedule{Faults: []Fault{{Class: JournalCRC, Ordinal: 0}}})
	jf = in.Journal()
	got, err = jf.BeforeAppend(line)
	if err != nil {
		t.Fatalf("crc corruption must be silent, got %v", err)
	}
	if len(got) != len(line) || string(got) == string(line) {
		t.Fatalf("crc fault should flip a bit in place: %q", got)
	}

	in = New(&Schedule{Faults: []Fault{{Class: JournalDiskFull}}})
	jf = in.Journal()
	if err := jf.OnCheckpoint(); !errors.Is(err, ErrInjected) {
		t.Fatalf("disk-full checkpoint error %v", err)
	}
	if err := jf.OnCheckpoint(); err != nil {
		t.Fatalf("disk-full fired twice: %v", err)
	}

	in = New(&Schedule{Faults: []Fault{{Class: RepPanic}}})
	if in.Journal() != nil {
		t.Fatal("engine-only schedule should yield a nil journal plan")
	}
}

func TestNilSafety(t *testing.T) {
	var in *Injector
	if in.Rep(1, 2) != nil || in.Journal() != nil || in.Injected() != 0 {
		t.Fatal("nil injector must hand out nil plans")
	}
	var f *RepFault
	if err := f.AtCycle(context.Background(), 99); err != nil {
		t.Fatal("nil RepFault must be a no-op")
	}
	if err := f.LaneGroup(5); err != nil {
		t.Fatal("nil LaneGroup must be a no-op")
	}
	f.OnSlotAlloc()
	var jf *JournalFault
	if got, err := jf.BeforeAppend([]byte("x\n")); err != nil || string(got) != "x\n" {
		t.Fatal("nil JournalFault must pass records through")
	}
	if err := jf.OnCheckpoint(); err != nil {
		t.Fatal("nil OnCheckpoint must be a no-op")
	}
}

func TestErrorStrings(t *testing.T) {
	e := &Error{Class: RepPanic, Cycle: 42}
	if !strings.Contains(e.Error(), "rep.panic") || !strings.Contains(e.Error(), "42") {
		t.Fatalf("engine error text %q", e.Error())
	}
	je := &Error{Class: JournalTorn, Record: 3}
	if !strings.Contains(je.Error(), "record 3") {
		t.Fatalf("journal error text %q", je.Error())
	}
}
