package sweep

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"banyan/internal/obs"
)

// TestResumeRequiresCheckpoint is the regression test for the silent
// -resume bug: Apply used to ignore Resume entirely when Checkpoint was
// unset, so "banyan-tables -resume" quietly recomputed everything.
func TestResumeRequiresCheckpoint(t *testing.T) {
	o := &RunOptions{Resume: true}
	if _, _, err := o.Apply(&Runner{}); err == nil || !strings.Contains(err.Error(), "-checkpoint") {
		t.Fatalf("resume without checkpoint: want refusal naming -checkpoint, got %v", err)
	}
	// With a checkpoint the combination stays valid.
	o = &RunOptions{Resume: true, Checkpoint: filepath.Join(t.TempDir(), "ckpt.jsonl")}
	r := &Runner{}
	_, cleanup, err := o.Apply(r)
	if err != nil {
		t.Fatalf("resume with checkpoint: %v", err)
	}
	cleanup()
}

// TestRegisterFlags: the observability flags parse and land in the
// options.
func TestRegisterFlags(t *testing.T) {
	var o RunOptions
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o.RegisterFlags(fs)
	err := fs.Parse([]string{
		"-timeout", "10m", "-max-retries", "3", "-lanes", "4",
		"-events", "ev.jsonl", "-debug-addr", ":6060", "-sim-stats",
		"-trace-out", "spans.jsonl", "-trace-sample", "32",
		"-drift-check", "-drift-threshold", "0.2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.EventsPath != "ev.jsonl" || o.DebugAddr != ":6060" || !o.SimStats || o.MaxRetries != 3 || o.Lanes != 4 {
		t.Fatalf("flags not applied: %+v", o)
	}
	if o.TraceOut != "spans.jsonl" || o.TraceSample != 32 || !o.DriftCheck || o.DriftThreshold != 0.2 {
		t.Fatalf("tracing/drift flags not applied: %+v", o)
	}
}

// TestApplyObservabilityWiring drives the whole -events/-debug-addr/
// -sim-stats surface end to end: a sweep run under Apply serves live
// metrics and events over HTTP, writes the JSONL event log, and feeds
// the engine probe.
func TestApplyObservabilityWiring(t *testing.T) {
	events := filepath.Join(t.TempDir(), "events.jsonl")
	o := &RunOptions{EventsPath: events, DebugAddr: "127.0.0.1:0", SimStats: true}
	r := &Runner{RootSeed: 7}
	ctx, cleanup, err := o.Apply(r)
	if err != nil {
		t.Fatal(err)
	}
	pts := quickPoints(1) // 3 points
	if _, err := r.RunCtx(ctx, pts); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + o.DebugServer().Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	metrics := get("/metrics?format=legacy")
	for _, want := range []string{"sweep.points.done 3", "sweep.points.total 3", "sim.runs 3"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics?format=legacy missing %q:\n%s", want, metrics)
		}
	}
	om := get("/metrics")
	for _, want := range []string{"# TYPE banyan_sweep_points_done gauge", "banyan_sweep_points_done 3", "banyan_sim_runs 3", "# EOF"} {
		if !strings.Contains(om, want) {
			t.Fatalf("/metrics missing OpenMetrics %q:\n%s", want, om)
		}
	}
	if _, err := obs.ParseOpenMetrics(strings.NewReader(om)); err != nil {
		t.Fatalf("/metrics does not parse as OpenMetrics: %v", err)
	}
	if ring := get("/debug/events"); !strings.Contains(ring, `"event":"point_done"`) {
		t.Fatalf("/debug/events missing point_done:\n%s", ring)
	}

	cleanup()
	if o.DebugServer() == nil {
		t.Fatal("debug server not retained on options")
	}

	// The JSONL event log holds one parseable line per lifecycle event,
	// with started/done pairs for every point.
	raw, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev struct {
			Event string `json:"event"`
			Label string `json:"label"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparseable event line %q: %v", line, err)
		}
		counts[ev.Event]++
	}
	if counts["point_started"] != 3 || counts["point_done"] != 3 {
		t.Fatalf("event log mix: %v", counts)
	}

	// -sim-stats attached a probe that saw every replication.
	if s := r.Probe.Snapshot(); s.Runs != 3 || s.Messages == 0 {
		t.Fatalf("sim-stats probe missed the sweep: %+v", s)
	}
}

// TestApplyLedgerAndTSWiring drives -ledger-out and -ts-interval the
// way a binary would: Apply attaches the collector and the metric
// history sampler, /debug/ts serves sampled series during the run, and
// cleanup writes a reconciled ledger JSON artifact.
func TestApplyLedgerAndTSWiring(t *testing.T) {
	ledgerOut := filepath.Join(t.TempDir(), "ledger.json")
	o := &RunOptions{
		LedgerOut: ledgerOut,
		DebugAddr: "127.0.0.1:0",
		// A tight cadence so the TSDB is guaranteed samples mid-run.
		TSInterval: time.Millisecond,
	}
	r := &Runner{RootSeed: 13}
	ctx, cleanup, err := o.Apply(r)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ledger == nil {
		t.Fatal("-ledger-out did not attach a collector")
	}
	if _, err := r.RunCtx(ctx, quickPoints(1)); err != nil {
		t.Fatal(err)
	}

	// The run itself can finish before the sampler's first tick; the
	// series appears within a few cadences.
	var series []struct {
		Name   string `json:"name"`
		Values []any  `json:"values"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + o.DebugServer().Addr() + "/debug/ts?name=sweep.points.done")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			err := json.NewDecoder(resp.Body).Decode(&series)
			resp.Body.Close() //nolint:errcheck // test scrape
			if err != nil {
				t.Fatalf("/debug/ts malformed: %v", err)
			}
			break
		}
		resp.Body.Close() //nolint:errcheck // test scrape
		if time.Now().After(deadline) {
			t.Fatalf("/debug/ts never served the series: last status %d", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(series) != 1 || series[0].Name != "sweep.points.done" || len(series[0].Values) == 0 {
		t.Fatalf("/debug/ts series shape wrong: %+v", series)
	}

	cleanup()
	raw, err := os.ReadFile(ledgerOut)
	if err != nil {
		t.Fatalf("-ledger-out not written: %v", err)
	}
	var led RunLedger
	if err := json.Unmarshal(raw, &led); err != nil {
		t.Fatalf("ledger artifact unparseable: %v", err)
	}
	if !led.Reconciled {
		t.Fatalf("ledger artifact not reconciled: %s", led.Note)
	}
	if led.Points.Done != 3 || len(led.Rows) != 3 {
		t.Fatalf("ledger artifact content wrong: %+v rows %d", led.Points, len(led.Rows))
	}
}

// TestApplyTSIntervalRequiresDebugAddr: sampling history no endpoint
// will ever serve is a misconfiguration, not a silent no-op.
func TestApplyTSIntervalRequiresDebugAddr(t *testing.T) {
	o := &RunOptions{TSInterval: time.Second}
	if _, _, err := o.Apply(&Runner{}); err == nil || !strings.Contains(err.Error(), "-debug-addr") {
		t.Fatalf("want refusal naming -debug-addr, got %v", err)
	}
}

// TestApplyTraceAndDriftWiring covers the distributional surface: live
// histograms behind /debug/hist and wait.* gauges, trace sampling with
// the -trace-out dump, the drift monitor's registration, and the
// /debug/trace endpoint — all driven through Apply the way a binary
// would.
func TestApplyTraceAndDriftWiring(t *testing.T) {
	traceOut := filepath.Join(t.TempDir(), "spans.jsonl")
	o := &RunOptions{
		DebugAddr: "127.0.0.1:0",
		TraceOut:  traceOut, TraceSample: 4,
		DriftCheck: true,
	}
	r := &Runner{RootSeed: 11}
	ctx, cleanup, err := o.Apply(r)
	if err != nil {
		t.Fatal(err)
	}
	if r.Probe == nil || r.Probe.Hists == nil || r.Probe.Tracer == nil || r.Drift == nil {
		t.Fatalf("Apply wiring incomplete: probe %v drift %v", r.Probe, r.Drift)
	}
	pts := []Point{{Label: "pt", Cfg: quickPoints(1)[0].Cfg}}
	if _, err := r.RunCtx(ctx, pts); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + o.DebugServer().Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	var hist struct {
		Total struct {
			Count int64 `json:"count"`
		} `json:"total"`
		Stages []json.RawMessage `json:"stages"`
	}
	if err := json.Unmarshal([]byte(get("/debug/hist")), &hist); err != nil {
		t.Fatalf("/debug/hist malformed: %v", err)
	}
	if hist.Total.Count == 0 || len(hist.Stages) == 0 {
		t.Fatalf("/debug/hist empty after a run: %+v", hist)
	}
	if !strings.Contains(get("/metrics?format=legacy"), "wait.total.p99 ") {
		t.Fatal("/metrics missing wait quantile gauges")
	}
	if !strings.Contains(get("/metrics?format=legacy"), "drift.points_checked 1") {
		t.Fatal("/metrics missing drift counters")
	}
	if !strings.Contains(get("/metrics"), `banyan_wait_cycles_bucket{le="+Inf",stage="total"}`) {
		t.Fatal("/metrics missing the live wait_cycles histogram family")
	}
	if !strings.Contains(get("/debug/trace"), `"total_wait"`) {
		t.Fatal("/debug/trace serves no spans")
	}

	cleanup()
	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatalf("-trace-out not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("-trace-out file empty")
	}
	for _, line := range lines {
		var sp struct {
			Msg       int64 `json:"msg"`
			TotalWait int64 `json:"total_wait"`
			Stages    []struct {
				Wait int64 `json:"wait"`
			} `json:"stages"`
		}
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("trace line unparseable: %v\n%s", err, line)
		}
		if sp.Msg%4 != 0 {
			t.Fatalf("sampled ordinal %d not a multiple of -trace-sample 4", sp.Msg)
		}
		var sum int64
		for _, st := range sp.Stages {
			sum += st.Wait
		}
		if sum != sp.TotalWait {
			t.Fatalf("span stage waits sum %d != total %d:\n%s", sum, sp.TotalWait, line)
		}
	}
}
