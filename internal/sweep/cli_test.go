package sweep

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestResumeRequiresCheckpoint is the regression test for the silent
// -resume bug: Apply used to ignore Resume entirely when Checkpoint was
// unset, so "banyan-tables -resume" quietly recomputed everything.
func TestResumeRequiresCheckpoint(t *testing.T) {
	o := &RunOptions{Resume: true}
	if _, _, err := o.Apply(&Runner{}); err == nil || !strings.Contains(err.Error(), "-checkpoint") {
		t.Fatalf("resume without checkpoint: want refusal naming -checkpoint, got %v", err)
	}
	// With a checkpoint the combination stays valid.
	o = &RunOptions{Resume: true, Checkpoint: filepath.Join(t.TempDir(), "ckpt.jsonl")}
	r := &Runner{}
	_, cleanup, err := o.Apply(r)
	if err != nil {
		t.Fatalf("resume with checkpoint: %v", err)
	}
	cleanup()
}

// TestRegisterFlags: the observability flags parse and land in the
// options.
func TestRegisterFlags(t *testing.T) {
	var o RunOptions
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o.RegisterFlags(fs)
	err := fs.Parse([]string{
		"-timeout", "10m", "-max-retries", "3",
		"-events", "ev.jsonl", "-debug-addr", ":6060", "-sim-stats",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.EventsPath != "ev.jsonl" || o.DebugAddr != ":6060" || !o.SimStats || o.MaxRetries != 3 {
		t.Fatalf("flags not applied: %+v", o)
	}
}

// TestApplyObservabilityWiring drives the whole -events/-debug-addr/
// -sim-stats surface end to end: a sweep run under Apply serves live
// metrics and events over HTTP, writes the JSONL event log, and feeds
// the engine probe.
func TestApplyObservabilityWiring(t *testing.T) {
	events := filepath.Join(t.TempDir(), "events.jsonl")
	o := &RunOptions{EventsPath: events, DebugAddr: "127.0.0.1:0", SimStats: true}
	r := &Runner{RootSeed: 7}
	ctx, cleanup, err := o.Apply(r)
	if err != nil {
		t.Fatal(err)
	}
	pts := quickPoints(1) // 3 points
	if _, err := r.RunCtx(ctx, pts); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + o.DebugServer().Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	metrics := get("/metrics")
	for _, want := range []string{"sweep.points.done 3", "sweep.points.total 3", "sim.runs 3"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if ring := get("/debug/events"); !strings.Contains(ring, `"event":"point_done"`) {
		t.Fatalf("/debug/events missing point_done:\n%s", ring)
	}

	cleanup()
	if o.DebugServer() == nil {
		t.Fatal("debug server not retained on options")
	}

	// The JSONL event log holds one parseable line per lifecycle event,
	// with started/done pairs for every point.
	raw, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev struct {
			Event string `json:"event"`
			Label string `json:"label"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparseable event line %q: %v", line, err)
		}
		counts[ev.Event]++
	}
	if counts["point_started"] != 3 || counts["point_done"] != 3 {
		t.Fatalf("event log mix: %v", counts)
	}

	// -sim-stats attached a probe that saw every replication.
	if s := r.Probe.Snapshot(); s.Runs != 3 || s.Messages == 0 {
		t.Fatalf("sim-stats probe missed the sweep: %+v", s)
	}
}
