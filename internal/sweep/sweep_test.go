package sweep

import (
	"reflect"
	"strings"
	"testing"

	"banyan/internal/simnet"
)

func quickPoints(reps int) []Point {
	g := Grid{
		Ks:     []int{2},
		Ns:     []int{4},
		Ps:     []float64{0.2, 0.4, 0.6},
		Cycles: 800,
		Warmup: 100,
		Reps:   reps,
	}
	pts, err := g.Points()
	if err != nil {
		panic(err)
	}
	return pts
}

// stripAgg drops the aggregate pointers so reflect.DeepEqual compares
// the raw statistics (Replicated holds a Runs slice aliasing the same
// results; comparing it too is redundant but harmless — kept simple).
func resultsOf(prs []*PointResult) [][]*simnet.Result {
	out := make([][]*simnet.Result, len(prs))
	for i, pr := range prs {
		out[i] = pr.Runs
	}
	return out
}

// TestDeterministicAcrossParallelism is the sweep engine's core
// guarantee: identical results — bit for bit — at every worker count.
func TestDeterministicAcrossParallelism(t *testing.T) {
	pts := quickPoints(3)
	var want []*PointResult
	for _, par := range []int{1, 4, 16} {
		r := &Runner{Parallelism: par, RootSeed: 0x5eed}
		got, err := r.Run(pts)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(resultsOf(got), resultsOf(want)) {
			t.Fatalf("parallelism %d changed results", par)
		}
		for i := range got {
			if got[i].Agg.MeanTotalWait() != want[i].Agg.MeanTotalWait() ||
				got[i].Agg.VarTotalWait() != want[i].Agg.VarTotalWait() {
				t.Fatalf("parallelism %d changed aggregates at point %d", par, i)
			}
		}
	}
}

// TestSeedIndependentOfBatchOrder: a point's seed comes from its config
// hash, not its index, so reordering or subsetting a batch cannot change
// any point's result.
func TestSeedIndependentOfBatchOrder(t *testing.T) {
	pts := quickPoints(1)
	r := &Runner{Parallelism: 2, RootSeed: 1}
	all, err := r.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	rev := []Point{pts[2], pts[0]} // reordered subset
	r2 := &Runner{Parallelism: 2, RootSeed: 1}
	sub, err := r2.Run(rev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sub[0].Runs, all[2].Runs) || !reflect.DeepEqual(sub[1].Runs, all[0].Runs) {
		t.Fatal("point results depend on batch order")
	}
}

// TestRootSeedMatters: different root seeds give different sample paths.
func TestRootSeedMatters(t *testing.T) {
	pts := quickPoints(1)[:1]
	a, err := (&Runner{RootSeed: 1}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Runner{RootSeed: 2}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Result().MeanTotalWait() == b[0].Result().MeanTotalWait() {
		t.Fatal("root seed had no effect")
	}
}

// TestCacheAndDedupe: a shared cache serves repeated batches without
// re-simulation, and identical points within one batch run once.
func TestCacheAndDedupe(t *testing.T) {
	pts := quickPoints(1)
	r := &Runner{Parallelism: 2, RootSeed: 7, Cache: NewCache()}
	first, err := r.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cache.Len() != len(pts) {
		t.Fatalf("cache holds %d points, want %d", r.Cache.Len(), len(pts))
	}
	if r.Cache.Hits() != 0 {
		t.Fatalf("unexpected cache hits %d on first run", r.Cache.Hits())
	}
	again, err := r.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cache.Hits() != int64(len(pts)) {
		t.Fatalf("cache hits %d, want %d", r.Cache.Hits(), len(pts))
	}
	for i := range pts {
		if again[i].Result() != first[i].Result() {
			t.Fatalf("point %d re-simulated despite cache", i)
		}
	}

	// In-batch dedupe: the same config twice (different labels) runs once
	// and shares the result object.
	dup := []Point{pts[0], {Label: "alias", Cfg: pts[0].Cfg}}
	r2 := &Runner{RootSeed: 7}
	prs, err := r2.Run(dup)
	if err != nil {
		t.Fatal(err)
	}
	if prs[0].Result() != prs[1].Result() {
		t.Fatal("identical points not deduped in batch")
	}
	if prs[1].Point.Label != "alias" {
		t.Fatal("alias lost its own label")
	}
	if ctr := r2.Counters().Snapshot(); ctr.RepsDone != 1 {
		t.Fatalf("ran %d replications for a deduped pair, want 1", ctr.RepsDone)
	}
}

// TestLiteralEngineSweep: finite-buffer points run the literal engine
// and report drops through the counters.
func TestLiteralEngineSweep(t *testing.T) {
	g := Grid{
		Ks: []int{2}, Ns: []int{3}, Ps: []float64{0.8},
		Caps:   []int{1, 2},
		Cycles: 600, Warmup: 100,
	}
	pts, err := g.Points()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Engine != Literal {
			t.Fatalf("point %q: finite caps must use the literal engine", p.Label)
		}
	}
	r := &Runner{RootSeed: 3}
	prs, err := r.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	if prs[0].Result().Dropped == 0 {
		t.Fatal("cap=1 at p=0.8 should drop messages")
	}
	if snap := r.Counters().Snapshot(); snap.Dropped == 0 || snap.Messages == 0 {
		t.Fatalf("counters missed traffic: %+v", snap)
	}
}

// TestValidationError: invalid points abort the batch before any work,
// and every invalid point is named in the one joined error.
func TestValidationError(t *testing.T) {
	pts := quickPoints(2)
	pts[0].Cfg.P = 1.5
	pts[2].Cfg.K = 0
	prs, err := (&Runner{}).Run(pts)
	if err == nil {
		t.Fatal("want validation error")
	}
	if prs != nil {
		t.Fatal("validation failure must not return results")
	}
	for _, i := range []int{0, 2} {
		if !strings.Contains(err.Error(), pts[i].Label) {
			t.Errorf("joined error misses invalid point %q: %v", pts[i].Label, err)
		}
	}
	if strings.Contains(err.Error(), pts[1].Label) {
		t.Errorf("joined error names the valid point %q: %v", pts[1].Label, err)
	}
	// Unstable load is caught too (ρ ≥ 1 with infinite buffers).
	pts2 := quickPoints(1)
	pts2[0].Cfg.P = 1.0
	if _, err := (&Runner{}).Run(pts2); err == nil {
		t.Fatal("unstable point must fail validation")
	}
}

// TestGridExpansion: labels and cartesian structure.
func TestGridExpansion(t *testing.T) {
	g := Grid{
		Ks: []int{2, 4}, Ns: []int{3}, Ps: []float64{0.2, 0.5},
		Bulks:  []int{1, 2},
		Cycles: 100,
	}
	pts, err := g.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*2*2 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	if pts[0].Label != "k=2/n=3/p=0.2/bulk=1" {
		t.Fatalf("unexpected first label %q", pts[0].Label)
	}
	if pts[len(pts)-1].Label != "k=4/n=3/p=0.5/bulk=2" {
		t.Fatalf("unexpected last label %q", pts[len(pts)-1].Label)
	}
	seen := map[string]bool{}
	for _, p := range pts {
		if seen[p.Label] {
			t.Fatalf("duplicate label %q", p.Label)
		}
		seen[p.Label] = true
	}
	// m axis builds constant-service laws.
	gm := Grid{Ks: []int{2}, Ns: []int{2}, Ps: []float64{0.1}, Ms: []int{1, 4}, Cycles: 100}
	mpts, err := gm.Points()
	if err != nil {
		t.Fatal(err)
	}
	if got := mpts[1].Cfg.Service.Mean(); got != 4 {
		t.Fatalf("m=4 service mean %g", got)
	}
}

// TestKeyExcludesLabelAndSeed: the canonical hash identifies the
// configuration, not its name; Cfg.Seed is overridden by the runner and
// must not affect the key.
func TestKeyExcludesLabelAndSeed(t *testing.T) {
	p := quickPoints(1)[0]
	q := p
	q.Label = "renamed"
	q.Cfg.Seed = 12345
	if Key(p, 1) != Key(q, 1) {
		t.Fatal("label or seed leaked into the key")
	}
	q.Cfg.P += 0.01
	if Key(p, 1) == Key(q, 1) {
		t.Fatal("config change did not change the key")
	}
	if Key(p, 1) == Key(p, 2) {
		t.Fatal("root seed must be part of the key")
	}
}

// TestReporter: the reporter sees every completed point with monotone
// progress.
func TestReporter(t *testing.T) {
	pts := quickPoints(1)
	var labels []string
	var last Progress
	r := &Runner{
		Parallelism: 1,
		Reporter: FuncReporter(func(pr *PointResult, p Progress) {
			labels = append(labels, pr.Point.Label)
			last = p
		}),
	}
	if _, err := r.Run(pts); err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(pts) {
		t.Fatalf("reporter saw %d points, want %d", len(labels), len(pts))
	}
	if last.PointsDone != int64(len(pts)) || last.PointsTotal != int64(len(pts)) {
		t.Fatalf("final progress %+v", last)
	}
	if last.Messages == 0 || last.MessagesPerSec <= 0 {
		t.Fatalf("throughput counters empty: %+v", last)
	}
}
