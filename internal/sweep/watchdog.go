package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"banyan/internal/obs"
)

// Watchdog deadlines stuck replications. Each attempt runs under a
// wall-clock budget derived from the runner's recent replication
// throughput — an exponentially-weighted mean of completed replication
// wall times, scaled by Factor and padded by Grace — so the budget
// tracks the workload instead of needing per-grid tuning. An attempt
// that exceeds its budget is cancelled and its error converted into a
// typed *StallError, which the retry loop treats as retryable: a hang
// becomes a bounded, recoverable failure instead of a stuck sweep.
//
// The watchdog differs from Runner.PointBudget in both signal and
// verdict: the budget is an absolute per-replication cost ceiling and
// over-budget points fail terminally (re-running would just burn the
// budget again), while the watchdog flags replications that are slow
// relative to their recent siblings — the signature of a stall, not of
// an expensive point — and hands them back for retry.
type Watchdog struct {
	// Initial is the budget used before any replication has completed
	// (no throughput signal yet). 0 disarms the watchdog until the
	// first completion provides one.
	Initial time.Duration
	// Grace pads the scaled estimate; it absorbs scheduling noise on
	// loaded machines. 0 means 1s.
	Grace time.Duration
	// Factor scales the recent mean replication wall time. 0 means 16 —
	// generous, because a replication legitimately slower than 16× its
	// recent siblings is indistinguishable from a stall.
	Factor float64
}

// budget returns the attempt deadline for the given recent mean
// replication wall time; 0 disarms.
func (w *Watchdog) budget(recent time.Duration) time.Duration {
	if w == nil {
		return 0
	}
	if recent <= 0 {
		return w.Initial
	}
	f := w.Factor
	if f <= 0 {
		f = 16
	}
	g := w.Grace
	if g <= 0 {
		g = time.Second
	}
	return g + time.Duration(f*float64(recent))
}

// StallError reports a replication the watchdog cancelled for running
// far past the recent per-replication wall time. It is retryable: the
// engines are deterministic, so unless the stall's cause persists the
// retry completes bit-identically to an unstalled run.
type StallError struct {
	Elapsed time.Duration // how long the attempt ran before the watchdog fired
	Budget  time.Duration // the budget it exceeded
}

func (e *StallError) Error() string {
	return fmt.Sprintf("sweep: replication stalled: ran %v against a %v watchdog budget", e.Elapsed.Round(time.Millisecond), e.Budget.Round(time.Millisecond))
}

// noteRepWall folds a completed replication's wall time into the
// watchdog's throughput signal (EWMA, ¾ old + ¼ new). Plain
// load-then-store: a lost update under contention only costs the
// estimate one sample.
func (r *Runner) noteRepWall(d time.Duration) {
	old := r.repWall.Load()
	if old == 0 {
		r.repWall.Store(int64(d))
		return
	}
	r.repWall.Store((3*old + int64(d)) / 4)
}

// withWatchdog wraps ctx with this attempt's watchdog deadline. The
// returned finish function must be called with the attempt's error: it
// stops the timer and, when the watchdog (and not the caller or the
// point budget) caused the cancellation, converts the error into a
// typed *StallError, counts it, and emits an EventWatchdogFired.
func (r *Runner) withWatchdog(ctx context.Context, pr *PointResult, rep int) (context.Context, func(error) error) {
	b := r.Watchdog.budget(time.Duration(r.repWall.Load()))
	if b <= 0 {
		return ctx, func(err error) error { return err }
	}
	wctx, cancel := context.WithCancel(ctx)
	var fired atomic.Bool
	start := time.Now()
	timer := time.AfterFunc(b, func() {
		fired.Store(true)
		cancel()
	})
	return wctx, func(err error) error {
		timer.Stop()
		cancel()
		if err == nil || !fired.Load() || ctx.Err() != nil {
			// No error, the watchdog never fired, or the caller's own
			// context ended the attempt — nothing to convert.
			return err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		serr := &StallError{Elapsed: time.Since(start), Budget: b}
		r.ctr.watchdogFired()
		r.noteRecovery(pr, "watchdog")
		ev := pointEvent(obs.EventWatchdogFired, pr)
		ev.Rep = rep
		ev.WallMS = float64(serr.Elapsed) / float64(time.Millisecond)
		ev.Err = serr.Error()
		r.emit(ev)
		return serr
	}
}
