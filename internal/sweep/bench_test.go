package sweep

import (
	"runtime"
	"testing"
)

// benchGrid is a medium batch: 8 points × 2 replications of a k=2,
// 6-stage network at mixed loads (~0.5M measured messages total).
func benchGrid() []Point {
	g := Grid{
		Ks: []int{2}, Ns: []int{6},
		Ps:     []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85},
		Cycles: 2000, Warmup: 300,
		Reps: 2,
	}
	pts, err := g.Points()
	if err != nil {
		panic(err)
	}
	return pts
}

// benchGridReps is benchGrid at 8 replications per point — the shape
// where lock-step lanes reach full width.
func benchGridReps() []Point {
	g := Grid{
		Ks: []int{2}, Ns: []int{6},
		Ps:     []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85},
		Cycles: 2000, Warmup: 300,
		Reps: 8,
	}
	pts, err := g.Points()
	if err != nil {
		panic(err)
	}
	return pts
}

func runBench(b *testing.B, pts []Point, parallelism, lanes int) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &Runner{Parallelism: parallelism, Lanes: lanes, RootSeed: 0x5eed}
		if _, err := r.Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSequential is the headline single-core number: one
// worker, auto lane width (W=2 on this grid's 2 replications).
func BenchmarkSweepSequential(b *testing.B) { runBench(b, benchGrid(), 1, 0) }

// BenchmarkSweepSequentialScalar pins the pre-lane configuration —
// Lanes=1 forces the scalar kernel — so the laned/scalar ratio can be
// read off one machine's run.
func BenchmarkSweepSequentialScalar(b *testing.B) { runBench(b, benchGrid(), 1, 1) }

// BenchmarkSweepLanes8 runs the 8-replication grid at full lane width;
// BenchmarkSweepLanes8Scalar is the same batch on the scalar kernel.
func BenchmarkSweepLanes8(b *testing.B)       { runBench(b, benchGridReps(), 1, 8) }
func BenchmarkSweepLanes8Scalar(b *testing.B) { runBench(b, benchGridReps(), 1, 1) }

// BenchmarkSweepParallel uses all cores; on an N-core machine the
// speedup over BenchmarkSweepSequential should approach min(N, jobs)
// since the points are independent and the pool works at replication
// granularity.
func BenchmarkSweepParallel(b *testing.B) {
	b.Logf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	runBench(b, benchGrid(), 0, 0)
}
