package sweep

import (
	"runtime"
	"testing"
)

// benchGrid is a medium batch: 8 points × 2 replications of a k=2,
// 6-stage network at mixed loads (~0.5M measured messages total).
func benchGrid() []Point {
	g := Grid{
		Ks: []int{2}, Ns: []int{6},
		Ps:     []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85},
		Cycles: 2000, Warmup: 300,
		Reps: 2,
	}
	pts, err := g.Points()
	if err != nil {
		panic(err)
	}
	return pts
}

func runBench(b *testing.B, parallelism int) {
	pts := benchGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &Runner{Parallelism: parallelism, RootSeed: 0x5eed}
		if _, err := r.Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSequential(b *testing.B) { runBench(b, 1) }

// BenchmarkSweepParallel uses all cores; on an N-core machine the
// speedup over BenchmarkSweepSequential should approach min(N, jobs)
// since the points are independent and the pool works at replication
// granularity.
func BenchmarkSweepParallel(b *testing.B) {
	b.Logf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	runBench(b, 0)
}
