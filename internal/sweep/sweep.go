// Package sweep runs deterministic parameter sweeps of the banyan
// simulators across a worker pool.
//
// The paper's evaluation — and any calibration or capacity-planning study
// built on it — is a grid of simulation points over
// (k, n, p, m, bulk, q, BufferCap) × replications. This package turns
// such a grid into a batch of jobs executed by a bounded pool of
// goroutines, with three guarantees:
//
//   - Determinism: every point's seed is derived from the runner's root
//     seed and a canonical hash of the point's configuration, and
//     replications are aggregated in replication order. Results are
//     therefore byte-identical regardless of worker count or scheduling
//     order, and independent of the position of a point within the batch.
//
//   - Caching: completed points are stored in an optional Cache keyed by
//     the same canonical hash, so overlapping grids (e.g. the total-delay
//     tables and the corresponding figures) pay for each point once.
//
//   - Observability: progress and throughput counters (points done,
//     measured messages per second, drops) are maintained atomically and
//     exposed through a pluggable Reporter.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"banyan/internal/simnet"
)

// Engine selects which simulator executes a point.
type Engine int

const (
	// Fast is the message-level engine (infinite buffers, streaming).
	Fast Engine = iota
	// Literal is the cycle-driven engine (finite buffers, occupancy).
	Literal
)

func (e Engine) String() string {
	if e == Literal {
		return "literal"
	}
	return "fast"
}

// Point is one parameter point of a sweep. Cfg.Seed is ignored: the
// runner derives per-point seeds from its root seed so that results do
// not depend on how the batch is scheduled.
type Point struct {
	Label  string
	Cfg    simnet.Config
	Engine Engine
	Reps   int // replications; 0 means 1
}

func (p *Point) reps() int {
	if p.Reps <= 0 {
		return 1
	}
	return p.Reps
}

// PointResult carries one completed sweep point.
type PointResult struct {
	Point Point
	Key   uint64 // canonical config hash (cache key)
	Seed  uint64 // base seed the replication seeds were split from

	// Runs holds the per-replication results in replication order.
	Runs []*simnet.Result
	// Agg pools the replications (non-nil even for Reps == 1).
	Agg *simnet.Replicated
}

// Result returns the first replication's result — the common case for
// single-replication sweeps.
func (pr *PointResult) Result() *simnet.Result { return pr.Runs[0] }

// Runner executes sweep batches. The zero value is usable: it runs with
// GOMAXPROCS workers, root seed 0, no cache and no reporter. A Runner
// may be shared by several batches (and goroutines) to pool its cache
// and counters.
type Runner struct {
	// Parallelism bounds the worker pool; 0 means GOMAXPROCS.
	Parallelism int
	// RootSeed is the seed every per-point seed is derived from.
	RootSeed uint64
	// Cache, when non-nil, stores completed points across Run calls.
	Cache *Cache
	// Reporter, when non-nil, observes point completions.
	Reporter Reporter

	ctr Counters
}

// Counters returns the runner's cumulative progress counters.
func (r *Runner) Counters() *Counters { return &r.ctr }

func (r *Runner) parallelism() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes every point of the batch and returns results in batch
// order. Identical points (same canonical hash) within the batch are
// simulated once and share their result; cached points are returned
// without simulation. Any validation or simulation error aborts the
// batch.
func (r *Runner) Run(points []Point) ([]*PointResult, error) {
	out := make([]*PointResult, len(points))
	if len(points) == 0 {
		return out, nil
	}
	r.ctr.begin(len(points))

	// Resolve keys, seeds, cache hits and in-batch duplicates up front,
	// so the job list is fixed before any worker starts.
	type pointState struct {
		pr      *PointResult
		pending int // replications still running; -1 = alias or cache hit
		aliasOf int // index of the identical earlier point, or -1
	}
	states := make([]pointState, len(points))
	byKey := make(map[uint64]int, len(points))
	type job struct{ pi, rep int }
	var jobs []job
	for i := range points {
		p := &points[i]
		if err := p.Cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: point %q: %w", p.Label, err)
		}
		key := pointKey(p, r.RootSeed)
		states[i].aliasOf = -1
		if j, ok := byKey[key]; ok {
			states[i].aliasOf = j
			states[i].pending = -1
			continue
		}
		byKey[key] = i
		pr := &PointResult{
			Point: *p,
			Key:   key,
			Seed:  simnet.SplitSeed(r.RootSeed, key),
			Runs:  make([]*simnet.Result, p.reps()),
		}
		states[i].pr = pr
		if r.Cache != nil {
			if hit, ok := r.Cache.get(key); ok {
				states[i].pr = hit
				states[i].pending = -1
				r.ctr.pointDone(hit)
				r.report(hit)
				continue
			}
		}
		states[i].pending = p.reps()
		for rep := 0; rep < p.reps(); rep++ {
			jobs = append(jobs, job{pi: i, rep: rep})
		}
	}

	// Bounded worker pool over (point, replication) jobs: replication
	// granularity keeps the pool busy even when the batch has fewer
	// points than workers.
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	jobCh := make(chan job)
	workers := r.parallelism()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					continue
				}
				st := &states[j.pi]
				cfg := st.pr.Point.Cfg
				cfg.Seed = simnet.SplitSeed(st.pr.Seed, uint64(j.rep))
				res, err := runEngine(st.pr.Point.Engine, &cfg)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("sweep: point %q rep %d: %w", st.pr.Point.Label, j.rep, err)
					}
					mu.Unlock()
					continue
				}
				st.pr.Runs[j.rep] = res
				r.ctr.repDone(res)
				mu.Lock()
				st.pending--
				last := st.pending == 0
				mu.Unlock()
				if last {
					// Aggregation iterates replications in order, so the
					// pooled statistics do not depend on which worker
					// finished last.
					st.pr.Agg = simnet.Aggregate(st.pr.Runs, st.pr.Point.Cfg.Stages)
					if r.Cache != nil {
						r.Cache.put(st.pr.Key, st.pr)
					}
					r.ctr.pointDone(st.pr)
					r.report(st.pr)
				}
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	for i := range points {
		st := &states[i]
		if st.aliasOf >= 0 {
			// Identical configuration: deterministic seeds make the
			// result identical too, so share it (relabelled).
			shared := *states[st.aliasOf].pr
			shared.Point = points[i]
			out[i] = &shared
			continue
		}
		out[i] = st.pr
	}
	return out, nil
}

func (r *Runner) report(pr *PointResult) {
	if r.Reporter != nil {
		r.Reporter.PointDone(pr, r.ctr.Snapshot())
	}
}

// runEngine executes one replication on the selected engine, always via
// the streaming arrival path.
func runEngine(e Engine, cfg *simnet.Config) (*simnet.Result, error) {
	if e == Literal {
		src, err := simnet.NewTraceStream(cfg, 0)
		if err != nil {
			return nil, err
		}
		return simnet.RunLiteralSource(cfg, src)
	}
	return simnet.Run(cfg)
}

// Counters accumulates sweep progress. All methods are safe for
// concurrent use.
type Counters struct {
	mu         sync.Mutex
	start      time.Time
	pointsWant int64
	pointsDone int64
	repsDone   int64
	messages   int64
	dropped    int64
}

// Progress is a point-in-time snapshot of a sweep's counters.
type Progress struct {
	PointsDone  int64
	PointsTotal int64
	RepsDone    int64
	Messages    int64 // measured messages over all completed replications
	Dropped     int64 // messages lost to full buffers
	Elapsed     time.Duration
	// MessagesPerSec is the cumulative measured-message throughput.
	MessagesPerSec float64
}

func (c *Counters) begin(points int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.start.IsZero() {
		c.start = time.Now()
	}
	c.pointsWant += int64(points)
}

func (c *Counters) repDone(res *simnet.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.repsDone++
	c.messages += res.Messages
	c.dropped += res.Dropped
}

func (c *Counters) pointDone(pr *PointResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pointsDone++
}

// Snapshot returns the current progress.
func (c *Counters) Snapshot() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := time.Duration(0)
	if !c.start.IsZero() {
		elapsed = time.Since(c.start)
	}
	p := Progress{
		PointsDone:  c.pointsDone,
		PointsTotal: c.pointsWant,
		RepsDone:    c.repsDone,
		Messages:    c.messages,
		Dropped:     c.dropped,
		Elapsed:     elapsed,
	}
	if s := elapsed.Seconds(); s > 0 {
		p.MessagesPerSec = float64(c.messages) / s
	}
	return p
}
