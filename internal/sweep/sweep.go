// Package sweep runs deterministic parameter sweeps of the banyan
// simulators across a worker pool.
//
// The paper's evaluation — and any calibration or capacity-planning study
// built on it — is a grid of simulation points over
// (k, n, p, m, bulk, q, BufferCap) × replications. This package turns
// such a grid into a batch of jobs executed by a bounded pool of
// goroutines, with three guarantees:
//
//   - Determinism: every point's seed is derived from the runner's root
//     seed and a canonical hash of the point's configuration, and
//     replications are aggregated in replication order. Results are
//     therefore byte-identical regardless of worker count or scheduling
//     order, and independent of the position of a point within the batch.
//
//   - Caching: completed points are stored in an optional Cache keyed by
//     the same canonical hash, so overlapping grids (e.g. the total-delay
//     tables and the corresponding figures) pay for each point once.
//
//   - Observability: progress and throughput counters (points done,
//     measured messages per second, drops) are maintained atomically and
//     exposed through a pluggable Reporter.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"banyan/internal/faultinject"
	"banyan/internal/obs"
	"banyan/internal/simnet"
	"banyan/internal/stats"
	"banyan/internal/vr"
)

// Engine selects which simulator executes a point.
type Engine int

const (
	// Fast is the message-level engine (infinite buffers, streaming),
	// executed by the batch kernel.
	Fast Engine = iota
	// Literal is the cycle-driven engine (finite buffers, occupancy).
	Literal
	// Reference is the scalar message-level engine the batch kernel was
	// derived from, kept as a differential oracle. It is byte-identical
	// to Fast at every seed, so a point hashes — and caches — the same
	// under either; selecting it only changes which code path computes
	// the (identical) result.
	Reference
	// Graph is the topology-true graph engine: messages advance switch
	// by switch through an explicit wiring (Cfg.Topology), with optional
	// finite per-stage buffers, link failures and per-switch telemetry.
	// Under the default omega wiring with unlimited buffers it is
	// byte-identical to Fast, but it hashes separately: its points carry
	// graph-only config fields and per-switch verdicts in their results.
	Graph
)

func (e Engine) String() string {
	switch e {
	case Literal:
		return "literal"
	case Reference:
		return "reference"
	case Graph:
		return "graph"
	}
	return "fast"
}

// Point is one parameter point of a sweep. Cfg.Seed is ignored: the
// runner derives per-point seeds from its root seed so that results do
// not depend on how the batch is scheduled.
type Point struct {
	Label  string
	Cfg    simnet.Config
	Engine Engine
	Reps   int // replications; 0 means 1
}

func (p *Point) reps() int {
	if p.Reps <= 0 {
		return 1
	}
	return p.Reps
}

// PointResult carries one completed sweep point.
type PointResult struct {
	Point Point
	Key   uint64 // canonical config hash (cache key)
	Seed  uint64 // base seed the replication seeds were split from

	// Runs holds the per-replication results in replication order. On a
	// failed point, entries may be nil (never started) or partial
	// Truncated results (stopped by cancellation or the wall-clock
	// budget).
	Runs []*simnet.Result
	// Agg pools the replications; nil when the point failed.
	Agg *simnet.Replicated
	// VR is the variance-reduced estimate of the mean total wait —
	// control-variate-adjusted, antithetic pairs folded into units,
	// Student-t interval — computed whenever the runner has a VR plan.
	// Nil on failed points and on runs without a plan.
	VR *vr.Estimate

	// Err is the point's terminal error: a validation failure, a
	// recovered panic (*PanicError), a simulation error that survived
	// every retry, a context cancellation, a watchdog stall
	// (*StallError), or a wall-clock budget overrun. Nil for points that
	// completed — including deterministic saturation truncations, which
	// are flagged on the Result instead.
	Err error

	// Recovery lists the recovery actions the point survived on its way
	// to completion — "retry", "watchdog", "degrade.lane_to_scalar" —
	// in the order they happened. Journaled alongside the results, so a
	// resumed sweep knows which of its points needed help.
	Recovery []string

	// Cost is the resource cost this run actually paid for the point,
	// accumulated across every simulation attempt (see PointCost). It is
	// hash-excluded and result-neutral, and it is attribution, not
	// identity: points served from the cache, the journal, or an
	// in-batch alias carry a nil Cost — their price was paid (and
	// recorded) where the simulation happened. Wall clocks are not
	// reproducible, so Cost never enters the resume journal; the
	// RunLedger artifact and point_done events are the durable record.
	Cost *PointCost
}

// Result returns the first replication's result — the common case for
// single-replication sweeps. It is nil when the point failed before its
// first replication produced anything.
func (pr *PointResult) Result() *simnet.Result {
	if len(pr.Runs) == 0 {
		return nil
	}
	return pr.Runs[0]
}

// Truncated reports whether any replication of the point stopped early
// (saturation guard, cancellation, or wall-clock budget).
func (pr *PointResult) Truncated() bool {
	for _, res := range pr.Runs {
		if res != nil && res.Truncated {
			return true
		}
	}
	return false
}

// Runner executes sweep batches. The zero value is usable: it runs with
// GOMAXPROCS workers, root seed 0, no cache and no reporter. A Runner
// may be shared by several batches (and goroutines) to pool its cache
// and counters.
type Runner struct {
	// Parallelism bounds the worker pool; 0 means GOMAXPROCS.
	Parallelism int
	// Lanes selects the lock-step lane width for Fast-engine points:
	// each group of up to Lanes consecutive replications of a point runs
	// as one multi-replication kernel invocation (simnet.RunLanes), every
	// lane bit-identical to the scalar path at the same seed. 0 picks an
	// automatic width (simnet.DefaultLaneWidth, clamped to the point's
	// replication count); 1 forces the scalar kernel. Lane width never
	// affects results, keys, seeds, caching, or journaling — only how
	// many replications share one cycle loop.
	Lanes int
	// RootSeed is the seed every per-point seed is derived from.
	RootSeed uint64
	// VR selects the variance-reduction plan: common random numbers,
	// antithetic replication pairs, control variates, and CI-targeted
	// sequential stopping (see internal/vr). Nil (or the zero plan) is
	// bit-identical to a run without the layer. Plans whose salt is
	// non-zero (CRN, antithetic, adaptive stopping — anything that
	// changes seeds or replication counts) address the cache and
	// journal under salted keys, so VR and non-VR artifacts never mix.
	VR *vr.Plan
	// Cache, when non-nil, stores completed points across Run calls.
	Cache *Cache
	// Reporter, when non-nil, observes point completions.
	Reporter Reporter

	// PointBudget bounds the wall-clock time of each replication
	// (0 = unbounded). An over-budget replication stops at a clean cycle
	// boundary; its partial Truncated result stays in PointResult.Runs
	// and the point fails with a deadline error. Budget-truncated
	// results are never cached or journaled — where a run stops under a
	// wall clock is not reproducible.
	PointBudget time.Duration
	// MaxRetries is how many times a failed replication (panic or
	// simulation error) is retried before the point is marked failed
	// (0 = no retries). Cancellations and budget overruns never retry.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling each
	// attempt and capped at 32×; 0 means 50ms.
	RetryBackoff time.Duration
	// Journal, when non-nil, records each cleanly completed point and
	// serves journaled points on later runs — the checkpoint/resume
	// path. See OpenJournal.
	Journal *Journal
	// Events, when non-nil, receives one structured event per point
	// lifecycle transition (started, retried, truncated, journaled,
	// done, failed, cached, resumed, aliased). See internal/obs.
	Events obs.Sink
	// Probe, when non-nil, is attached to every simulation this runner
	// executes (simnet.Config.Probe), collecting engine internals. It is
	// excluded from config hashing, so attaching one never perturbs
	// keys, seeds, or results.
	Probe *obs.SimProbe
	// Drift, when non-nil, collects exact per-stage waiting-time
	// histograms for every freshly simulated point
	// (simnet.Config.WaitHists — also hash-excluded and result-neutral)
	// and checks the merged distributions against the analytic model
	// when the point completes, emitting an EventDrift naming the
	// offending stage on divergence. Cached, journaled and aliased
	// points are served without re-simulation and are not re-checked.
	Drift *DriftMonitor
	// Fault, when non-nil, arms the deterministic chaos injection points
	// (see internal/faultinject) on every freshly simulated replication
	// and on the journal's append/checkpoint path. Hash-excluded and —
	// because armed faults fire at most once per replication plan —
	// recovery converges back to the fault-free results bit for bit.
	Fault *faultinject.Injector
	// Watchdog, when non-nil, deadlines each replication attempt with a
	// budget derived from recent replication wall times and converts a
	// hang into a typed, retryable *StallError. See Watchdog.
	Watchdog *Watchdog
	// Ledger, when non-nil, records every settled point — fresh, failed,
	// cached, resumed, or aliased — with its attributed cost, so
	// BuildLedger can reconcile an end-of-run accounting against the
	// counters. See LedgerCollector.
	Ledger *LedgerCollector

	ctr Counters
	// repWall holds the exponentially-weighted mean replication wall
	// time in nanoseconds — the watchdog's throughput signal.
	repWall atomic.Int64
	// notesMu guards every PointResult.Recovery append (PointResult
	// itself stays a plain copyable struct).
	notesMu sync.Mutex

	// runRep, when non-nil, replaces the simulation engines (test hook
	// for fault injection).
	runRep func(context.Context, Engine, *simnet.Config) (*simnet.Result, error)
}

// Counters returns the runner's cumulative progress counters.
func (r *Runner) Counters() *Counters { return &r.ctr }

func (r *Runner) parallelism() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// laneWidth picks the lock-step group width for a point's jobs. Only
// Fast-engine points run laned — the other engines have no lane path,
// and the fault-injection hook replaces engines one replication at a
// time — and a group is never wider than the point's replication count.
func (r *Runner) laneWidth(p *Point) int {
	if p.Engine != Fast || r.runRep != nil {
		return 1
	}
	lw := r.Lanes
	if lw == 0 {
		lw = simnet.DefaultLaneWidth(&p.Cfg, p.reps())
	}
	if lw < 1 {
		lw = 1
	}
	if lw > p.reps() {
		lw = p.reps()
	}
	return lw
}

// pointCap returns how many replication slots a point may consume: its
// configured count, or the adaptive plan's cap when CI-targeted
// stopping is on.
func (r *Runner) pointCap(p *Point) int {
	if r.VR.Adaptive() {
		return r.VR.Cap(p.reps())
	}
	return p.reps()
}

// artifactKey addresses the cache and journal: the canonical config
// hash XORed with the VR plan's salt, so runs produced under a
// different seed derivation or stopping rule never alias runs produced
// without one. A zero salt (no seed-affecting VR, including plain
// control variates) preserves legacy addressing bit for bit.
func (r *Runner) artifactKey(key uint64) uint64 { return key ^ r.VR.Salt() }

// resumable reports whether a journaled replication count restores the
// point. Fixed-rep points need the exact count; adaptive points accept
// any count up to the cap, because the stopping rule is deterministic
// and the salted batch key guarantees the journal was written under
// the identical plan — so a journaled count is the count this run
// would reproduce.
func (r *Runner) resumable(n int, p *Point) bool {
	if r.VR.Adaptive() {
		return n >= 1 && n <= r.pointCap(p)
	}
	return n == p.reps()
}

// crnStream is the SplitSeed stream index reserved for the sweep-wide
// common-random-numbers base, so CRN replication seeds are shared by
// every point of a root seed but disjoint from the per-point streams.
const crnStream = 0x43524e62617365 // "CRNbase"

// Run executes every point of the batch with Background context; see
// RunCtx.
func (r *Runner) Run(points []Point) ([]*PointResult, error) {
	return r.RunCtx(context.Background(), points)
}

// RunCtx executes every point of the batch and returns results in batch
// order. Identical points (same canonical hash) within the batch are
// simulated once and share their result; cached and journaled points are
// returned without simulation.
//
// The batch degrades gracefully instead of aborting: invalid points are
// all reported up front in one joined error (before any simulation
// starts); a replication that panics or fails is retried up to
// MaxRetries times and then marks only its own point via PointResult.Err;
// cancelling ctx stops in-flight simulations at a clean cycle boundary
// and marks the unfinished points. Whenever any point carries an error
// the returned slice is still fully populated — healthy points hold
// normal results — and the second return value joins every per-point
// error, so callers that only check err keep their old abort semantics.
func (r *Runner) RunCtx(ctx context.Context, points []Point) ([]*PointResult, error) {
	out := make([]*PointResult, len(points))
	if len(points) == 0 {
		return out, nil
	}

	// Validate every point before any work starts, and report every
	// invalid point — not just the first — so a misbuilt grid is fixed
	// in one round trip.
	var verrs []error
	for i := range points {
		if err := points[i].Cfg.Validate(); err != nil {
			verrs = append(verrs, fmt.Errorf("sweep: point %q: %w", points[i].Label, err))
		}
	}
	if len(verrs) > 0 {
		return nil, errors.Join(verrs...)
	}
	if r.Journal != nil {
		// Bind the journal to this batch's identity before serving any
		// resume hits: a journal written under different flags fails here
		// with a typed *ConfigMismatchError instead of silently
		// re-running (or worse, silently skipping) every point.
		// The batch key carries the VR salt for the same reason point
		// artifacts do: a journal written under a different plan replays
		// different simulations.
		if err := r.Journal.bind(r.artifactKey(BatchKey(points, r.RootSeed))); err != nil {
			return nil, err
		}
		if r.Fault != nil {
			r.Journal.setFault(r.Fault.Journal())
		}
	}
	// crnBase is the sweep-wide replication seed base shared by every
	// point when common random numbers are on.
	crnBase := simnet.SplitSeed(r.RootSeed, crnStream)
	repsTotal := 0
	for i := range points {
		repsTotal += r.pointCap(&points[i])
	}
	r.ctr.begin(len(points), repsTotal)
	defer r.ctr.end()

	// Resolve keys, seeds, cache/journal hits and in-batch duplicates up
	// front, so the job list is fixed before any worker starts.
	type pointState struct {
		pr        *PointResult
		pending   int // replications still running; -1 = alias or cache hit
		aliasOf   int // index of the identical earlier point, or -1
		failed    bool
		started   bool
		startedAt time.Time
		// hists holds each replication's per-stage waiting-time
		// histograms (drift-monitor data path); nil unless r.Drift is set
		// and the point is freshly simulated.
		hists [][]*stats.Hist
		// swHists holds each replication's per-(stage, switch)
		// waiting-time histograms; nil unless r.Drift is set and the
		// point runs on the graph engine.
		swHists [][][]*stats.Hist
		// Adaptive (CI-targeted) scheduling state: cks is the point's
		// checkpoint cadence, sched the replication count scheduled so
		// far (cks[ck]). Written only under mu by the worker that settles
		// a wave; fixed-rep points keep sched == reps for the whole run.
		cks   []int
		sched int
		ck    int
	}
	states := make([]pointState, len(points))
	byKey := make(map[uint64]int, len(points))
	// A job is a contiguous group of w replications of one point,
	// starting at rep. Fast-engine points are chunked into lock-step
	// lane groups; everything else (and the fault-injection hook) runs
	// one replication per job.
	type job struct{ pi, rep, w int }
	// chunk cuts replications [from, to) of a point into lane-group
	// jobs, with a narrower group on a non-divisible tail.
	chunk := func(pi, from, to int, p *Point) []job {
		lw := r.laneWidth(p)
		var out []job
		for rep := from; rep < to; rep += lw {
			w := lw
			if rep+w > to {
				w = to - rep
			}
			out = append(out, job{pi: pi, rep: rep, w: w})
		}
		return out
	}
	var jobs []job
	for i := range points {
		p := &points[i]
		key := pointKey(p, r.RootSeed)
		repCap := r.pointCap(p)
		states[i].aliasOf = -1
		if j, ok := byKey[key]; ok {
			states[i].aliasOf = j
			states[i].pending = -1
			// Terminal state: the alias settles now, never via a worker.
			r.ctr.pointAliased(repCap)
			r.emit(obs.Event{
				Event: obs.EventPointAliased, Label: p.Label,
				Key: keyHex(key), Engine: p.Engine.String(),
			})
			continue
		}
		byKey[key] = i
		pr := &PointResult{
			Point: *p,
			Key:   key,
			Seed:  simnet.SplitSeed(r.RootSeed, key),
			Runs:  make([]*simnet.Result, repCap),
		}
		states[i].pr = pr
		if r.Cache != nil {
			if hit, ok := r.Cache.get(r.artifactKey(key)); ok {
				// Share the cached runs but relabel: the hit may have been
				// computed under a different Point.Label in an earlier
				// batch, and callers key their output off the label.
				shared := *hit
				shared.Point = *p
				// The hit's cost was attributed where it was paid; a
				// share costs (essentially) nothing and must not
				// double-count.
				shared.Cost = nil
				if r.VR.Enabled() {
					if shared.VR == nil {
						shared.VR = r.VR.Estimate(&p.Cfg, shared.Runs)
					}
				} else {
					shared.VR = nil
				}
				states[i].pr = &shared
				states[i].pending = -1
				r.ctr.pointCached(repCap)
				r.emit(pointEvent(obs.EventPointCached, &shared))
				r.observeLedger(&shared, LedgerCached)
				r.report(&shared)
				continue
			}
		}
		if r.Journal != nil {
			if runs, ok := r.Journal.get(r.artifactKey(key)); ok && r.resumable(len(runs), p) {
				// Resume: the journaled replications restore exactly, and
				// aggregation in replication order reproduces the pooled
				// statistics bit for bit. Under adaptive stopping, the
				// journaled count is whatever the deterministic rule chose.
				pr.Runs = runs
				pr.Agg = simnet.Aggregate(runs, p.Cfg.Stages)
				if r.VR.Enabled() {
					pr.VR = r.VR.Estimate(&p.Cfg, runs)
					if r.VR.Adaptive() {
						pr.VR.Stopped = len(runs) < repCap || pr.VR.HalfWidth <= r.VR.TargetCI
					}
				}
				states[i].pending = -1
				if r.Cache != nil {
					r.Cache.put(r.artifactKey(key), pr)
				}
				r.ctr.pointResumed(repCap)
				r.emit(pointEvent(obs.EventPointResumed, pr))
				r.observeLedger(pr, LedgerResumed)
				r.report(pr)
				continue
			}
		}
		if r.VR.Adaptive() {
			// First wave only; later waves are scheduled by the worker
			// that settles a wave under the CI target.
			states[i].cks = r.VR.Checkpoints(p.reps())
			states[i].sched = states[i].cks[0]
		} else {
			states[i].sched = repCap
		}
		states[i].pending = states[i].sched
		if r.Drift != nil {
			states[i].hists = make([][]*stats.Hist, repCap)
			if p.Engine == Graph {
				states[i].swHists = make([][][]*stats.Hist, repCap)
			}
		}
		jobs = append(jobs, chunk(i, 0, states[i].sched, p)...)
	}

	// Bounded worker pool over (point, replication) jobs: replication
	// granularity keeps the pool busy even when the batch has fewer
	// points than workers. Workers always drain the job channel — on
	// cancellation or per-point failure the remaining jobs resolve
	// instantly instead of blocking the feeder.
	var (
		mu         sync.Mutex
		journalErr error
		wg         sync.WaitGroup
	)
	// process runs one job to completion and, when it settles the last
	// pending replication of an adaptive point whose CI target is not yet
	// met, returns the next wave of jobs for that point.
	process := func(j job) []job {
		st := &states[j.pi]
		mu.Lock()
		skip := st.failed
		if !skip && !st.started {
			st.started = true
			st.startedAt = time.Now()
			mu.Unlock()
			r.emit(pointEvent(obs.EventPointStarted, st.pr))
		} else {
			mu.Unlock()
		}
		var results []*simnet.Result
		var lerrs []error
		if err := ctx.Err(); err != nil || skip {
			// Cancelled or a sibling already failed the point: the
			// group's replications resolve without running.
			results = make([]*simnet.Result, j.w)
			lerrs = make([]error, j.w)
			for i := range lerrs {
				lerrs[i] = err // nil when merely skipped
			}
		} else {
			// Each replication re-derives its seed from the point's
			// canonical key, so the result cannot depend on worker
			// scheduling, retries, lane grouping, or batch
			// composition. The VR plan may redirect the derivation
			// (CRN base, antithetic pair sharing) — still a pure
			// function of (plan, point, rep).
			cfgs := make([]*simnet.Config, j.w)
			for i := range cfgs {
				cfg := st.pr.Point.Cfg
				cfg.Seed, cfg.Antithetic = r.VR.RepSeed(st.pr.Seed, crnBase, j.rep+i)
				cfg.SyncDraws = r.VR.Synchronized()
				if r.Probe != nil {
					cfg.Probe = r.Probe
				}
				if r.Fault != nil {
					// The fault plan is a pure function of (schedule
					// seed, point key, rep) and is cached per
					// replication, so retries and degraded reruns
					// share its one-shot state.
					cfg.Fault = r.Fault.Rep(st.pr.Key, j.rep+i)
				}
				if st.hists != nil {
					// Drift data path: exact per-stage waiting-time
					// histograms, filled by the engine, hash-excluded
					// and result-neutral. Each replication slot is
					// owned by exactly one worker, like Runs.
					wh := make([]*stats.Hist, cfg.Stages)
					for s := range wh {
						wh[s] = &stats.Hist{}
					}
					cfg.WaitHists = wh
					st.hists[j.rep+i] = wh
				}
				if st.swHists != nil {
					// Per-switch drift data path (graph engine only):
					// one histogram per (stage, switch), same ownership
					// discipline as WaitHists.
					swh := make([][]*stats.Hist, cfg.Stages)
					for s := range swh {
						swh[s] = make([]*stats.Hist, switchCount(&cfg))
						for id := range swh[s] {
							swh[s][id] = &stats.Hist{}
						}
					}
					cfg.SwitchWaitHists = swh
					st.swHists[j.rep+i] = swh
				}
				cfgs[i] = &cfg
			}
			if j.w == 1 {
				res, err := r.attempt(ctx, st.pr, j.rep, cfgs[0])
				results, lerrs = []*simnet.Result{res}, []error{err}
			} else {
				results, lerrs = r.attemptLanes(ctx, st.pr, j.rep, cfgs)
			}
		}
		var last, failed bool
		var startedAt time.Time
		for i := 0; i < j.w; i++ {
			rep, res, err := j.rep+i, results[i], lerrs[i]
			if res != nil {
				st.pr.Runs[rep] = res // partial truncated results kept for inspection
				if err == nil {
					r.ctr.repDone(res)
					if res.Truncated {
						ev := pointEvent(obs.EventPointTruncated, st.pr)
						ev.Rep = rep
						ev.Cycles = res.TruncatedAt
						ev.Messages = res.Messages
						r.emit(ev)
					}
				}
			}
			if err != nil || res == nil {
				r.ctr.repSettled()
			}
			mu.Lock()
			if err != nil {
				st.failed = true
				if st.pr.Err == nil {
					st.pr.Err = fmt.Errorf("sweep: point %q rep %d: %w", st.pr.Point.Label, rep, err)
				}
			}
			st.pending--
			last = st.pending == 0
			failed = st.failed
			startedAt = st.startedAt
			mu.Unlock()
		}
		if !last {
			return nil
		}
		wallMS := 0.0
		if !startedAt.IsZero() {
			wallMS = float64(time.Since(startedAt)) / float64(time.Millisecond)
		}
		if failed {
			if r.VR.Adaptive() && st.sched < len(st.pr.Runs) {
				// Replications beyond the settled wave were never
				// scheduled; account them so the settled
				// invariant and the ETA still converge.
				r.ctr.repsSkipped(len(st.pr.Runs) - st.sched)
			}
			r.finalizeCost(st.pr)
			r.ctr.pointFailed()
			ev := pointEvent(obs.EventPointFailed, st.pr)
			ev.WallMS = wallMS
			if st.pr.Err != nil {
				ev.Err = st.pr.Err.Error()
			}
			ev.Cost = st.pr.Cost.Digest()
			r.emit(ev)
			r.observeLedger(st.pr, LedgerFailed)
			r.report(st.pr)
			return nil
		}
		if r.VR.Adaptive() {
			// CI-targeted stopping: the worker that settles a
			// wave consults the estimate on the checkpoint
			// cadence — never more often, to protect coverage
			// (see internal/vr) — and either schedules the next
			// wave or finalizes the point on the replications
			// run so far.
			runs := st.pr.Runs[:st.sched]
			est := r.VR.Estimate(&st.pr.Point.Cfg, runs)
			met := est.HalfWidth <= r.VR.TargetCI
			if !met && st.ck+1 < len(st.cks) && ctx.Err() == nil {
				mu.Lock()
				st.ck++
				prev, next := st.sched, st.cks[st.ck]
				st.sched = next
				st.pending = next - prev
				mu.Unlock()
				return chunk(j.pi, prev, next, &st.pr.Point)
			}
			est.Stopped = met
			st.pr.VR = est
			if st.sched < len(st.pr.Runs) {
				r.ctr.repsSkipped(len(st.pr.Runs) - st.sched)
				st.pr.Runs = runs
				if st.hists != nil {
					st.hists = st.hists[:st.sched]
				}
			}
			if met {
				sev := pointEvent(obs.EventPointStopped, st.pr)
				sev.Rep = st.sched
				sev.HalfWidth = est.HalfWidth
				r.emit(sev)
			}
		} else if r.VR.Enabled() {
			st.pr.VR = r.VR.Estimate(&st.pr.Point.Cfg, st.pr.Runs)
		}
		// Aggregation iterates replications in order, so the
		// pooled statistics do not depend on which worker
		// finished last.
		st.pr.Agg = simnet.Aggregate(st.pr.Runs, st.pr.Point.Cfg.Stages)
		if r.Cache != nil {
			r.Cache.put(r.artifactKey(st.pr.Key), st.pr)
		}
		if r.Journal != nil {
			// Errorless completions are deterministic — including
			// saturation truncations — so they are safe to replay.
			if jerr := r.Journal.append(r.artifactKey(st.pr.Key), st.pr.Point.Label, st.pr.Runs, r.recoveryNotes(st.pr)); jerr != nil {
				mu.Lock()
				if journalErr == nil {
					journalErr = jerr
				}
				mu.Unlock()
			} else {
				r.emit(pointEvent(obs.EventPointJournaled, st.pr))
			}
		}
		r.finalizeCost(st.pr)
		r.ctr.pointDone()
		ev := pointEvent(obs.EventPointDone, st.pr)
		ev.WallMS = wallMS
		ev.Cost = st.pr.Cost.Digest()
		for _, run := range st.pr.Runs {
			if run != nil {
				ev.Messages += run.Messages
				ev.Dropped += run.Dropped
			}
		}
		merged := mergeWaitHists(st.hists, st.pr.Point.Cfg.Stages, st.pr.Truncated())
		if merged != nil {
			ev.Waits = stageQuantiles(merged)
		}
		r.emit(ev)
		if merged != nil && r.Drift != nil {
			r.checkDrift(st.pr, merged)
		}
		if st.swHists != nil && r.Drift != nil {
			cfg := &st.pr.Point.Cfg
			if msw := mergeSwitchHists(st.swHists, cfg.Stages, switchCount(cfg), st.pr.Truncated()); msw != nil {
				r.checkSwitchDrift(st.pr, msw)
			}
		}
		r.observeLedger(st.pr, LedgerDone)
		r.report(st.pr)
		return nil
	}

	adaptive := r.VR.Adaptive()
	chCap := 0
	if adaptive {
		// Adaptive waves are injected into the channel by the workers
		// themselves. Sizing the buffer to the whole replication budget
		// (every replication appears in at most one job, ever) means no
		// send can block, so an injecting worker cannot deadlock against
		// workers waiting for jobs.
		chCap = repsTotal
	}
	jobCh := make(chan job, chCap)
	var outstanding atomic.Int64
	outstanding.Store(int64(len(jobs)))
	workers := r.parallelism()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				extra := process(j)
				if !adaptive {
					continue
				}
				// Inject the next wave before retiring this job, so the
				// outstanding count never touches zero while work
				// remains; the worker that retires the true last job
				// closes the channel and ends the pool.
				if len(extra) > 0 {
					outstanding.Add(int64(len(extra)))
					for _, e := range extra {
						jobCh <- e
					}
				}
				if outstanding.Add(-1) == 0 {
					close(jobCh)
				}
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	if !adaptive || len(jobs) == 0 {
		// A fixed-replication batch has a static job list; an adaptive
		// batch is closed by the worker retiring its last job (or here,
		// when the whole batch was served without simulation).
		close(jobCh)
	}
	wg.Wait()

	var errs []error
	for i := range points {
		st := &states[i]
		if st.aliasOf >= 0 {
			// Identical configuration: deterministic seeds make the
			// result identical too, so share it (relabelled). Like cache
			// shares, an alias carries no cost of its own.
			shared := *states[st.aliasOf].pr
			shared.Point = points[i]
			shared.Cost = nil
			out[i] = &shared
			r.observeLedger(&shared, LedgerAliased)
			continue
		}
		out[i] = st.pr
		if st.pr.Err != nil {
			errs = append(errs, st.pr.Err)
		}
	}
	if journalErr != nil {
		errs = append(errs, journalErr)
	}
	return out, errors.Join(errs...)
}

func (r *Runner) report(pr *PointResult) {
	if r.Reporter != nil {
		r.Reporter.PointDone(pr, r.ctr.Snapshot())
	}
}

// finalizeCost stamps a settling point's cost with what the spend
// bought: the replications kept and their variance-reduced effective
// sample size.
func (r *Runner) finalizeCost(pr *PointResult) {
	r.notesMu.Lock()
	defer r.notesMu.Unlock()
	if pr.Cost == nil {
		return
	}
	n := 0
	for _, res := range pr.Runs {
		if res != nil {
			n++
		}
	}
	pr.Cost.Reps = n
	if pr.VR != nil {
		pr.Cost.ESS = pr.VR.ESS
	}
}

// observeLedger records a settled point in the run ledger, if one is
// attached.
func (r *Runner) observeLedger(pr *PointResult, status LedgerStatus) {
	if r.Ledger != nil {
		r.Ledger.Observe(pr, status)
	}
}

// noteRecovery records a recovery action on a point. Workers of one
// point may race here; PointResult itself stays a plain struct (it is
// copied for aliases and cache shares), so the runner holds the lock.
func (r *Runner) noteRecovery(pr *PointResult, note string) {
	r.notesMu.Lock()
	pr.Recovery = append(pr.Recovery, note)
	r.notesMu.Unlock()
}

// recoveryNotes snapshots a point's recovery annotations for the
// journal.
func (r *Runner) recoveryNotes(pr *PointResult) []string {
	r.notesMu.Lock()
	defer r.notesMu.Unlock()
	if len(pr.Recovery) == 0 {
		return nil
	}
	return append([]string(nil), pr.Recovery...)
}

// emit sends an event to the runner's sink, if any.
func (r *Runner) emit(ev obs.Event) {
	if r.Events != nil {
		r.Events.Emit(ev)
	}
}

// keyHex renders a canonical config hash the way events and journals
// spell it.
func keyHex(key uint64) string { return fmt.Sprintf("%016x", key) }

// pointEvent seeds an event with a point's identity fields.
func pointEvent(kind string, pr *PointResult) obs.Event {
	return obs.Event{
		Event:  kind,
		Label:  pr.Point.Label,
		Key:    keyHex(pr.Key),
		Seed:   pr.Seed,
		Engine: pr.Point.Engine.String(),
	}
}

// switchCount is the number of switches per stage of cfg's network:
// k^(stages-1) rows per stage, k rows per switch.
func switchCount(cfg *simnet.Config) int {
	n := 1
	for i := 1; i < cfg.Stages; i++ {
		n *= cfg.K
	}
	return n
}

// runEngineCtx executes one replication on the selected engine, always
// via the streaming arrival path, honouring ctx cancellation.
func runEngineCtx(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
	switch e {
	case Literal:
		src, err := simnet.NewTraceStream(cfg, 0)
		if err != nil {
			return nil, err
		}
		return simnet.RunLiteralSourceCtx(ctx, cfg, src)
	case Reference:
		src, err := simnet.NewTraceStream(cfg, 0)
		if err != nil {
			return nil, err
		}
		return simnet.RunSourceCtx(ctx, cfg, src)
	case Graph:
		return simnet.RunGraphCtx(ctx, cfg)
	}
	return simnet.RunCtx(ctx, cfg)
}

// Counters accumulates sweep progress. All methods are safe for
// concurrent use.
//
// Every point of every batch reaches exactly one terminal state, so at
// the end of each Run call the invariant
//
//	PointsDone + PointsFailed + PointsAliased == PointsTotal
//
// holds (cached and journal-resumed points count toward PointsDone,
// with PointsCached/PointsResumed as sub-counters). Elapsed covers only
// the time at least one batch was running — a shared Runner left idle
// between batches no longer dilutes its throughput read-outs — and the
// per-second rates are windowed (see obs.Meter), so they report current
// throughput, not a lifetime average.
type Counters struct {
	mu         sync.Mutex
	now        func() time.Time // test hook; nil = time.Now
	active     int              // batches currently inside RunCtx
	batchStart time.Time        // when active went 0 → 1
	busy       time.Duration    // accumulated non-idle wall-clock

	pointsWant    int64
	pointsDone    int64
	pointsFailed  int64
	pointsAliased int64
	pointsCached  int64
	pointsResumed int64
	repsWant      int64
	repsDone      int64
	repsSettled   int64 // done, failed, skipped, or never-to-run
	retries       int64
	truncated     int64
	messages      int64
	dropped       int64
	watchdog      int64 // replications the watchdog converted to StallError
	degraded      int64 // lane groups degraded to scalar replications

	// Attributed resource-cost totals (see PointCost): every attempt's
	// delta lands both on its point and here, so the ledger's per-point
	// rows reconcile against these exactly.
	costWall      int64
	costCPU       int64
	costAllocB    int64
	costAllocObjs int64
	costCycles    int64

	msgMeter obs.Meter
	repMeter obs.Meter
}

// Progress is a point-in-time snapshot of a sweep's counters.
type Progress struct {
	PointsDone    int64
	PointsFailed  int64 // points that ended with a PointResult.Err
	PointsAliased int64 // in-batch duplicates resolved by sharing
	PointsCached  int64 // of PointsDone: served from the cross-batch cache
	PointsResumed int64 // of PointsDone: served from the checkpoint journal
	PointsTotal   int64
	RepsDone      int64 // replications actually simulated to completion
	RepsTotal     int64 // replications requested, including never-run ones
	Retries       int64 // replication retries after panics or errors
	Truncated     int64 // completed replications stopped early by a guard
	Messages      int64 // measured messages over all completed replications
	Dropped       int64 // messages lost to full buffers
	WatchdogFired int64 // stalled replications the watchdog cancelled (typed retryable)
	Degraded      int64 // lane groups that fell back to scalar replications
	// Attributed resource-cost totals over every simulation attempt this
	// runner executed (retries included): wall and user-CPU nanoseconds,
	// heap allocation deltas, and simulated cycles. Wall cost is exact
	// attribution; CPU and allocations are process-wide deltas, so
	// concurrent workers overlap inside them (see PointCost).
	CostWallNS       int64
	CostCPUNS        int64
	CostAllocBytes   int64
	CostAllocObjects int64
	CostCycles       int64
	// Elapsed is the busy wall-clock time: the union of intervals during
	// which at least one batch was running on this Runner.
	Elapsed time.Duration
	// MessagesPerSec and RepsPerSec are windowed throughputs over the
	// trailing few seconds; until a full second of history exists they
	// fall back to the cumulative average over Elapsed.
	MessagesPerSec float64
	RepsPerSec     float64
	// ETA estimates the time to finish the remaining replications at the
	// current replication rate; zero when unknown (no remaining work, or
	// no rate signal yet).
	ETA time.Duration
}

// Settled reports the terminal-accounting invariant: every point of
// every batch has reached exactly one of done, failed, or aliased.
func (p Progress) Settled() bool {
	return p.PointsDone+p.PointsFailed+p.PointsAliased == p.PointsTotal
}

func (c *Counters) clock() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}

func (c *Counters) begin(points, reps int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.active == 0 {
		c.batchStart = c.clock()
	}
	c.active++
	c.pointsWant += int64(points)
	c.repsWant += int64(reps)
}

// end closes the batch opened by begin, folding its wall-clock interval
// into the busy time.
func (c *Counters) end() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.active--
	if c.active == 0 {
		c.busy += c.clock().Sub(c.batchStart)
	}
}

func (c *Counters) repDone(res *simnet.Result) {
	c.msgMeter.Add(res.Messages)
	c.repMeter.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.repsDone++
	c.repsSettled++
	c.messages += res.Messages
	c.dropped += res.Dropped
	if res.Truncated {
		c.truncated++
	}
}

// repSettled accounts a replication that ended without a usable result
// (failed, skipped after a sibling's failure, or cancelled), so ETA
// still converges to zero on unhealthy batches.
func (c *Counters) repSettled() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.repsSettled++
}

// repsSkipped accounts replications an adaptive point never ran —
// its CI target was met (or the point failed) below the cap — keeping
// the settled invariant and the ETA exact.
func (c *Counters) repsSkipped(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.repsSettled += int64(n)
}

func (c *Counters) pointDone() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pointsDone++
}

// pointCached accounts a point served from the cross-batch cache,
// settling its never-to-run replications.
func (c *Counters) pointCached(reps int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pointsDone++
	c.pointsCached++
	c.repsSettled += int64(reps)
}

// pointResumed accounts a point served from the checkpoint journal.
func (c *Counters) pointResumed(reps int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pointsDone++
	c.pointsResumed++
	c.repsSettled += int64(reps)
}

// pointAliased accounts an in-batch duplicate that shares an earlier
// point's result, settling its never-to-run replications.
func (c *Counters) pointAliased(reps int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pointsAliased++
	c.repsSettled += int64(reps)
}

func (c *Counters) pointFailed() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pointsFailed++
}

func (c *Counters) retried() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retries++
}

// watchdogFired accounts a replication the watchdog cancelled and
// converted into a typed retryable stall.
func (c *Counters) watchdogFired() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.watchdog++
}

// laneDegraded accounts a failed lane group falling back to scalar
// replications.
func (c *Counters) laneDegraded() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.degraded++
}

// addCost folds one attempt's attributed cost into the totals.
func (c *Counters) addCost(d PointCost) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.costWall += d.WallNS
	c.costCPU += d.CPUNS
	c.costAllocB += d.AllocBytes
	c.costAllocObjs += d.AllocObjects
	c.costCycles += d.Cycles
}

// Snapshot returns the current progress.
func (c *Counters) Snapshot() Progress {
	msgRate := c.msgMeter.Rate()
	repRate := c.repMeter.Rate()
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := c.busy
	if c.active > 0 {
		elapsed += c.clock().Sub(c.batchStart)
	}
	p := Progress{
		PointsDone:       c.pointsDone,
		PointsFailed:     c.pointsFailed,
		PointsAliased:    c.pointsAliased,
		PointsCached:     c.pointsCached,
		PointsResumed:    c.pointsResumed,
		PointsTotal:      c.pointsWant,
		RepsDone:         c.repsDone,
		RepsTotal:        c.repsWant,
		Retries:          c.retries,
		Truncated:        c.truncated,
		Messages:         c.messages,
		Dropped:          c.dropped,
		WatchdogFired:    c.watchdog,
		Degraded:         c.degraded,
		CostWallNS:       c.costWall,
		CostCPUNS:        c.costCPU,
		CostAllocBytes:   c.costAllocB,
		CostAllocObjects: c.costAllocObjs,
		CostCycles:       c.costCycles,
		Elapsed:          elapsed,
		MessagesPerSec:   msgRate,
		RepsPerSec:       repRate,
	}
	if s := elapsed.Seconds(); s > 0 {
		// Sub-second sweeps have no complete meter bucket yet; the
		// cumulative busy-time average is the best available signal.
		if p.MessagesPerSec == 0 && c.messages > 0 {
			p.MessagesPerSec = float64(c.messages) / s
		}
		if p.RepsPerSec == 0 && c.repsDone > 0 {
			p.RepsPerSec = float64(c.repsDone) / s
		}
	}
	if remaining := c.repsWant - c.repsSettled; remaining > 0 && p.RepsPerSec > 0 {
		p.ETA = time.Duration(float64(remaining) / p.RepsPerSec * float64(time.Second))
	}
	return p
}

// Register exposes the counters in a metrics registry under the sweep.*
// namespace (the expvar / -debug-addr read-out path).
func (c *Counters) Register(reg *obs.Registry) {
	get := func(f func(Progress) float64) func() float64 {
		return func() float64 { return f(c.Snapshot()) }
	}
	reg.Func("sweep.points.total", get(func(p Progress) float64 { return float64(p.PointsTotal) }))
	reg.Func("sweep.points.done", get(func(p Progress) float64 { return float64(p.PointsDone) }))
	reg.Func("sweep.points.failed", get(func(p Progress) float64 { return float64(p.PointsFailed) }))
	reg.Func("sweep.points.aliased", get(func(p Progress) float64 { return float64(p.PointsAliased) }))
	reg.Func("sweep.points.cached", get(func(p Progress) float64 { return float64(p.PointsCached) }))
	reg.Func("sweep.points.resumed", get(func(p Progress) float64 { return float64(p.PointsResumed) }))
	reg.Func("sweep.reps.total", get(func(p Progress) float64 { return float64(p.RepsTotal) }))
	reg.Func("sweep.reps.done", get(func(p Progress) float64 { return float64(p.RepsDone) }))
	reg.Func("sweep.reps.per_sec", get(func(p Progress) float64 { return p.RepsPerSec }))
	reg.Func("sweep.retries", get(func(p Progress) float64 { return float64(p.Retries) }))
	reg.Func("sweep.watchdog.fired", get(func(p Progress) float64 { return float64(p.WatchdogFired) }))
	reg.Func("sweep.degrade.lane_to_scalar", get(func(p Progress) float64 { return float64(p.Degraded) }))
	reg.Func("sweep.truncated", get(func(p Progress) float64 { return float64(p.Truncated) }))
	reg.Func("sweep.messages", get(func(p Progress) float64 { return float64(p.Messages) }))
	reg.Func("sweep.messages.per_sec", get(func(p Progress) float64 { return p.MessagesPerSec }))
	reg.Func("sweep.dropped", get(func(p Progress) float64 { return float64(p.Dropped) }))
	reg.Func("sweep.elapsed_seconds", get(func(p Progress) float64 { return p.Elapsed.Seconds() }))
	reg.Func("sweep.eta_seconds", get(func(p Progress) float64 { return p.ETA.Seconds() }))
	costs := []struct {
		name, help string
		f          func(Progress) float64
	}{
		{"sweep.cost.wall_seconds", "attributed simulation wall time", func(p Progress) float64 { return float64(p.CostWallNS) / 1e9 }},
		{"sweep.cost.cpu_seconds", "attributed user CPU time", func(p Progress) float64 { return float64(p.CostCPUNS) / 1e9 }},
		{"sweep.cost.alloc_bytes", "attributed heap allocation bytes", func(p Progress) float64 { return float64(p.CostAllocBytes) }},
		{"sweep.cost.alloc_objects", "attributed heap allocation objects", func(p Progress) float64 { return float64(p.CostAllocObjects) }},
		{"sweep.cost.cycles", "simulated cycles bought", func(p Progress) float64 { return float64(p.CostCycles) }},
	}
	for _, m := range costs {
		reg.Func(m.name, get(m.f))
		reg.Describe(m.name, obs.KindCounter, m.help)
	}
}
