package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// sweepGolden pins the absolute output of a full sweep — per-point cache
// keys and pooled statistics — at a fixed grid and root seed. Unlike
// TestDeterministicAcrossParallelism (which compares runs to each other),
// these literals anchor the whole pipeline to recorded values: a change
// anywhere in seed derivation, trace generation, the kernel, or
// replication pooling fails here even if it changes every run the same
// way. Regenerate intended changes with
//
//	SWEEP_GOLDEN_PRINT=1 go test ./internal/sweep/ -run TestGoldenSweep -v
var sweepGolden = map[string]struct {
	key          string
	meanW, varW  string // fmt %.10g of the pooled statistics
	messages     int64
	replications int
}{
	"k=2/n=4/p=0.3":  {key: "644551fd325c7206", meanW: "0.464343999", varW: "0.5334403283", messages: 11401, replications: 2},
	"k=2/n=4/p=0.55": {key: "41806f3ead72c7c7", meanW: "1.380648068", varW: "1.8767589", messages: 21141, replications: 2},
	"k=2/n=4/p=0.8":  {key: "f5045cadce44f69f", meanW: "4.766156469", varW: "12.81269135", messages: 30795, replications: 2},
}

func goldenSweepPoints() []Point {
	g := Grid{
		Ks: []int{2}, Ns: []int{4},
		Ps:     []float64{0.3, 0.55, 0.8},
		Cycles: 1200, Warmup: 150,
		Reps: 2,
	}
	pts, err := g.Points()
	if err != nil {
		panic(err)
	}
	return pts
}

func checkSweepGolden(t *testing.T, label string, prs []*PointResult) {
	t.Helper()
	if len(prs) != len(sweepGolden) {
		t.Fatalf("%s: %d points, want %d", label, len(prs), len(sweepGolden))
	}
	for _, pr := range prs {
		if pr.Err != nil {
			t.Fatalf("%s: point %q failed: %v", label, pr.Point.Label, pr.Err)
		}
		var msgs int64
		for _, run := range pr.Runs {
			msgs += run.Messages
		}
		key := keyHex(pr.Key)
		meanW := fmt.Sprintf("%.10g", pr.Agg.MeanTotalWait())
		varW := fmt.Sprintf("%.10g", pr.Agg.VarTotalWait())
		if os.Getenv("SWEEP_GOLDEN_PRINT") != "" {
			t.Logf("%q: {key: %q, meanW: %q, varW: %q, messages: %d, replications: %d},",
				pr.Point.Label, key, meanW, varW, msgs, len(pr.Runs))
			continue
		}
		want, ok := sweepGolden[pr.Point.Label]
		if !ok {
			t.Fatalf("%s: no golden entry for point %q", label, pr.Point.Label)
		}
		if key != want.key || meanW != want.meanW || varW != want.varW ||
			msgs != want.messages || len(pr.Runs) != want.replications {
			t.Errorf("%s: point %q diverged from golden\ngot  key=%s meanW=%s varW=%s messages=%d reps=%d\nwant %+v",
				label, pr.Point.Label, key, meanW, varW, msgs, len(pr.Runs), want)
		}
	}
}

// TestGoldenSweepAcrossParallelism: the pinned sweep values hold at every
// worker count — scheduling must never leak into results.
func TestGoldenSweepAcrossParallelism(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		r := &Runner{Parallelism: par, RootSeed: 0x5eed}
		prs, err := r.Run(goldenSweepPoints())
		if err != nil {
			t.Fatal(err)
		}
		checkSweepGolden(t, fmt.Sprintf("parallelism=%d", par), prs)
	}
}

// TestGoldenSweepAcrossLanes: the pinned sweep values hold at every
// lock-step lane width, at every worker count — lane grouping must never
// leak into results, keys, or pooled statistics. Lanes=4 with Reps=2
// exercises the clamp to the replication count; Lanes=0 the auto
// heuristic; Lanes=1 the forced-scalar path the other golden tests
// already pin implicitly.
func TestGoldenSweepAcrossLanes(t *testing.T) {
	for _, lanes := range []int{0, 1, 2, 4} {
		for _, par := range []int{1, 4, 16} {
			r := &Runner{Parallelism: par, Lanes: lanes, RootSeed: 0x5eed}
			prs, err := r.Run(goldenSweepPoints())
			if err != nil {
				t.Fatal(err)
			}
			checkSweepGolden(t, fmt.Sprintf("lanes=%d/parallelism=%d", lanes, par), prs)
		}
	}
}

// TestGoldenSweepLanedCheckpoint: a laned sweep journals the same
// checkpoint a scalar sweep does, and a laned runner resumes a scalar
// checkpoint (and vice versa) without resimulating — lane width is
// invisible to the journal format and its keys.
func TestGoldenSweepLanedCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := &Runner{Parallelism: 4, Lanes: 2, RootSeed: 0x5eed, Journal: j1}
	prs, err := r1.Run(goldenSweepPoints())
	if err != nil {
		t.Fatal(err)
	}
	checkSweepGolden(t, "laned journaled run", prs)
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Loaded() != len(sweepGolden) {
		t.Fatalf("journal recovered %d points, want %d", j2.Loaded(), len(sweepGolden))
	}
	r2 := &Runner{Parallelism: 1, Lanes: 1, RootSeed: 0x5eed, Journal: j2}
	resumed, err := r2.Run(goldenSweepPoints())
	if err != nil {
		t.Fatal(err)
	}
	checkSweepGolden(t, "scalar resume of laned checkpoint", resumed)
	if snap := r2.Counters().Snapshot(); snap.RepsDone != 0 {
		t.Fatalf("resume resimulated %d replications, want all served from disk", snap.RepsDone)
	}
}

// TestGoldenSweepThroughCheckpoint: a sweep journaled to a checkpoint and
// then replayed from disk in a fresh runner reproduces the same pinned
// values — the serialization round-trip preserves every golden field.
func TestGoldenSweepThroughCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := &Runner{Parallelism: 4, RootSeed: 0x5eed, Journal: j1}
	prs, err := r1.Run(goldenSweepPoints())
	if err != nil {
		t.Fatal(err)
	}
	checkSweepGolden(t, "journaled run", prs)
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Loaded() != len(sweepGolden) {
		t.Fatalf("journal recovered %d points, want %d", j2.Loaded(), len(sweepGolden))
	}
	r2 := &Runner{Parallelism: 1, RootSeed: 0x5eed, Journal: j2}
	resumed, err := r2.Run(goldenSweepPoints())
	if err != nil {
		t.Fatal(err)
	}
	checkSweepGolden(t, "resumed from checkpoint", resumed)
	if snap := r2.Counters().Snapshot(); snap.RepsDone != 0 {
		t.Fatalf("resume resimulated %d replications, want all served from disk", snap.RepsDone)
	}
}
