package sweep

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"banyan/internal/dist"
	"banyan/internal/obs"
	"banyan/internal/simnet"
	"banyan/internal/topology"
)

// graphSweepGolden pins graph-engine sweep output — per-point cache
// keys and pooled statistics — at a fixed root seed, across worker
// counts. Regenerate intended changes with
//
//	SWEEP_GOLDEN_PRINT=1 go test ./internal/sweep/ -run TestGoldenSweepGraph -v
var graphSweepGolden = map[string]struct {
	key          string
	meanW, varW  string
	messages     int64
	replications int
}{
	"graph/omega":    {key: "f3e6043c22180526", meanW: "1.363473991", varW: "1.898761988", messages: 21105, replications: 2},
	"graph/flip":     {key: "24fbb80bf6901e61", meanW: "1.36496489", varW: "1.875651661", messages: 21152, replications: 2},
	"graph/blocking": {key: "fb467e5f55189a64", meanW: "38.01064832", varW: "3470.798646", messages: 26755, replications: 2},
	"graph/hotspot":  {key: "d9eb9d6adac04c16", meanW: "492.1541215", varW: "541407.5029", messages: 9499, replications: 1},
}

func graphSweepPoints() []Point {
	return []Point{
		{Label: "graph/omega", Engine: Graph, Reps: 2,
			Cfg: simnet.Config{K: 2, Stages: 4, P: 0.55, Cycles: 1200, Warmup: 150}},
		{Label: "graph/flip", Engine: Graph, Reps: 2,
			Cfg: simnet.Config{K: 2, Stages: 4, P: 0.55, Cycles: 1200, Warmup: 150,
				Topology: topology.Flip}},
		{Label: "graph/blocking", Engine: Graph, Reps: 2,
			Cfg: simnet.Config{K: 2, Stages: 4, P: 0.7, Cycles: 1200, Warmup: 150,
				Topology: topology.Omega, StageBuffers: []int{2, 2, 2, 2}}},
		{Label: "graph/hotspot", Engine: Graph, Reps: 1,
			Cfg: simnet.Config{K: 2, Stages: 4, P: 0.5, HotModule: 0.3, Cycles: 1200, Warmup: 150,
				Topology: topology.Omega, TrackSwitches: true}},
	}
}

// TestGoldenSweepGraphEngine: the pinned graph-engine sweep values hold
// at every worker count — the graph engine rides the same
// schedule-independent seed derivation as the stage-model engines, and
// its graph-only config fields land in the canonical hash (four
// distinct keys below, including two configs differing only in wiring).
func TestGoldenSweepGraphEngine(t *testing.T) {
	for _, par := range []int{1, 4} {
		r := &Runner{Parallelism: par, RootSeed: 0x5eed}
		prs, err := r.Run(graphSweepPoints())
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("parallelism=%d", par)
		if len(prs) != len(graphSweepGolden) {
			t.Fatalf("%s: %d points, want %d", label, len(prs), len(graphSweepGolden))
		}
		keys := map[string]bool{}
		for _, pr := range prs {
			if pr.Err != nil {
				t.Fatalf("%s: point %q failed: %v", label, pr.Point.Label, pr.Err)
			}
			var msgs int64
			for _, run := range pr.Runs {
				msgs += run.Messages
			}
			key := keyHex(pr.Key)
			keys[key] = true
			meanW := fmt.Sprintf("%.10g", pr.Agg.MeanTotalWait())
			varW := fmt.Sprintf("%.10g", pr.Agg.VarTotalWait())
			if os.Getenv("SWEEP_GOLDEN_PRINT") != "" {
				t.Logf("%q: {key: %q, meanW: %q, varW: %q, messages: %d, replications: %d},",
					pr.Point.Label, key, meanW, varW, msgs, len(pr.Runs))
				continue
			}
			want, ok := graphSweepGolden[pr.Point.Label]
			if !ok {
				t.Fatalf("%s: no golden entry for point %q", label, pr.Point.Label)
			}
			if key != want.key || meanW != want.meanW || varW != want.varW ||
				msgs != want.messages || len(pr.Runs) != want.replications {
				t.Errorf("%s: point %q diverged from golden\ngot  key=%s meanW=%s varW=%s messages=%d reps=%d\nwant %+v",
					label, pr.Point.Label, key, meanW, varW, msgs, len(pr.Runs), want)
			}
		}
		if len(keys) != len(prs) {
			t.Fatalf("%s: graph points share canonical keys: %v", label, keys)
		}
	}
}

// TestGraphPointHashesDistinctFromFast: a graph point whose config
// carries no graph-only fields still hashes apart from the identical
// Fast point (different engine identity), while a stage-model config
// hashes exactly as it did before the graph fields existed — the
// append-only hash extension cannot disturb pinned keys.
func TestGraphPointHashesDistinctFromFast(t *testing.T) {
	cfg := simnet.Config{K: 2, Stages: 4, P: 0.55, Cycles: 1200, Warmup: 150}
	fast := Point{Cfg: cfg, Engine: Fast, Reps: 2}
	graph := Point{Cfg: cfg, Engine: Graph, Reps: 2}
	if Key(fast, 0x5eed) == Key(graph, 0x5eed) {
		t.Fatal("graph point hashes identically to fast point")
	}
	withTopo := graph
	withTopo.Cfg.Topology = topology.Omega
	if Key(graph, 0x5eed) == Key(withTopo, 0x5eed) {
		t.Fatal("explicit omega topology hashes identically to the empty default")
	}
}

// TestGraphSwitchDriftClean: a healthy uniform-traffic graph point
// passes the per-switch KS battery — every switch of every stage is
// checked against the analytic stage distribution, none drift, and the
// totals land in the ledger's drift section.
func TestGraphSwitchDriftClean(t *testing.T) {
	ring := obs.NewRingSink(256)
	mon := &DriftMonitor{}
	r := &Runner{RootSeed: 5, Events: ring, Drift: mon, Ledger: NewLedgerCollector()}
	pt := Point{
		Label:  "graph-drift",
		Engine: Graph,
		Cfg:    simnet.Config{K: 2, Stages: 3, P: 0.4, Cycles: 20000, Warmup: 1000},
	}
	if _, err := r.Run([]Point{pt}); err != nil {
		t.Fatal(err)
	}
	tot := mon.Totals()
	// 3 stages × 2^(3-1)=4 switches, every one measured at these horizons.
	if want := int64(12); tot.SwitchesChecked != want {
		t.Fatalf("SwitchesChecked = %d, want %d", tot.SwitchesChecked, want)
	}
	if tot.SwitchesDrifted != 0 {
		t.Fatalf("healthy point drifted %d switches", tot.SwitchesDrifted)
	}
	if evs := driftEvents(ring); len(evs) != 0 {
		t.Fatalf("healthy point emitted drift events: %+v", evs)
	}
	led := r.BuildLedger()
	if led.Drift == nil || led.Drift.SwitchesChecked != 12 {
		t.Fatalf("ledger drift section missing switch totals: %+v", led.Drift)
	}
	var sb strings.Builder
	if err := led.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "switches") {
		t.Fatalf("ledger text omits switch drift columns:\n%s", sb.String())
	}
}

// TestGraphSwitchDriftWrongModelTriggers: a mismatched reference model
// must be caught switch by switch, with events naming both the stage
// and the switch.
func TestGraphSwitchDriftWrongModelTriggers(t *testing.T) {
	ring := obs.NewRingSink(256)
	mon := &DriftMonitor{
		Reference: func(cfg *simnet.Config, stage, support int) (dist.PMF, error) {
			if stage == 2 {
				return dist.PointPMF(40), nil
			}
			return (&DriftMonitor{}).model(cfg, stage, support)
		},
	}
	r := &Runner{RootSeed: 5, Events: ring, Drift: mon}
	pt := Point{
		Label:  "graph-drift-bad",
		Engine: Graph,
		Cfg:    simnet.Config{K: 2, Stages: 3, P: 0.4, Cycles: 20000, Warmup: 1000},
	}
	if _, err := r.Run([]Point{pt}); err != nil {
		t.Fatal(err)
	}
	if tot := mon.Totals(); tot.SwitchesDrifted == 0 {
		t.Fatalf("mismatched model drifted no switches: %+v", tot)
	}
	var swEvents int
	for _, ev := range driftEvents(ring) {
		if ev.Switch == 0 {
			continue // stage-level verdicts from the point monitor
		}
		swEvents++
		if ev.Stage != 2 {
			t.Fatalf("per-switch drift blamed stage %d, want 2: %+v", ev.Stage, ev)
		}
		if ev.KS <= ev.Threshold || ev.Threshold == 0 {
			t.Fatalf("per-switch drift statistic malformed: %+v", ev)
		}
	}
	if swEvents == 0 {
		t.Fatal("no drift event carried a switch index")
	}
}

// TestGraphSwitchDriftSkipsAsymmetricLoad: per-switch verdicts are only
// meaningful when every switch draws from the same law; hot-spot
// traffic must be skipped, not flagged.
func TestGraphSwitchDriftSkipsAsymmetricLoad(t *testing.T) {
	mon := &DriftMonitor{}
	r := &Runner{RootSeed: 5, Drift: mon}
	pt := Point{
		Label:  "graph-hot",
		Engine: Graph,
		Cfg:    simnet.Config{K: 2, Stages: 3, P: 0.4, HotModule: 0.2, Cycles: 4000, Warmup: 400},
	}
	if _, err := r.Run([]Point{pt}); err != nil {
		t.Fatal(err)
	}
	if tot := mon.Totals(); tot.SwitchesChecked != 0 || tot.SwitchesDrifted != 0 {
		t.Fatalf("asymmetric point was switch-checked: %+v", tot)
	}
}

// TestLedgerSaturationVerdicts: a hot-spot graph point run with
// TrackSwitches surfaces its per-switch saturation verdicts in the run
// ledger — both the JSON rows and the text rendering.
func TestLedgerSaturationVerdicts(t *testing.T) {
	led := NewLedgerCollector()
	r := &Runner{RootSeed: 7, Ledger: led}
	pt := Point{
		Label:  "graph-sat",
		Engine: Graph,
		Cfg: simnet.Config{K: 2, Stages: 4, P: 0.5, HotModule: 0.4, Cycles: 3000, Warmup: 300,
			Topology: topology.Omega, TrackSwitches: true},
	}
	prs, err := r.Run([]Point{pt})
	if err != nil {
		t.Fatal(err)
	}
	if prs[0].Err != nil {
		t.Fatal(prs[0].Err)
	}
	rows := led.Rows()
	if len(rows) != 1 || rows[0].SaturatedSwitches == 0 {
		t.Fatalf("hot-spot point reported no saturated switches: %+v", rows)
	}
	var sb strings.Builder
	if err := r.BuildLedger().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "saturated switches") || !strings.Contains(sb.String(), "graph-sat") {
		t.Fatalf("ledger text omits the saturation table:\n%s", sb.String())
	}
}
