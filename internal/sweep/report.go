package sweep

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Reporter observes sweep progress. PointDone may be called from any
// worker goroutine; implementations must be safe for concurrent use.
type Reporter interface {
	PointDone(pr *PointResult, p Progress)
}

// LogReporter writes one line per settled point to an io.Writer: label,
// settled-point fraction, windowed throughput, and — once the rate
// signal exists — the ETA over the remaining replications. Failures,
// cache hits and journal resumes are annotated so a resumed or
// partially failing sweep reads correctly at a glance.
type LogReporter struct {
	W io.Writer

	mu sync.Mutex
}

// NewLogReporter returns a reporter logging to w.
func NewLogReporter(w io.Writer) *LogReporter { return &LogReporter{W: w} }

// PointDone implements Reporter.
func (lr *LogReporter) PointDone(pr *PointResult, p Progress) {
	settled := p.PointsDone + p.PointsFailed + p.PointsAliased
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: [%d/%d] %s", settled, p.PointsTotal, pr.Point.Label)
	if pr.VR != nil {
		fmt.Fprintf(&b, " w=%.4g±%.3g", pr.VR.Mean, pr.VR.HalfWidth)
		if pr.VR.Stopped {
			fmt.Fprintf(&b, " @%d reps", pr.VR.Reps)
		}
	}
	fmt.Fprintf(&b, " (%d msgs, %.0f msg/s", p.Messages, p.MessagesPerSec)
	if p.ETA > 0 {
		fmt.Fprintf(&b, ", ETA %s", p.ETA.Round(time.Second))
	}
	if pr.Err != nil {
		fmt.Fprintf(&b, "; FAILED: %v", pr.Err)
	}
	if p.PointsFailed > 0 {
		fmt.Fprintf(&b, "; %d failed", p.PointsFailed)
	}
	if p.PointsCached > 0 {
		fmt.Fprintf(&b, "; %d cached", p.PointsCached)
	}
	if p.PointsResumed > 0 {
		fmt.Fprintf(&b, "; %d resumed", p.PointsResumed)
	}
	b.WriteString(")\n")
	lr.mu.Lock()
	defer lr.mu.Unlock()
	io.WriteString(lr.W, b.String())
}

// FuncReporter adapts a function to the Reporter interface.
type FuncReporter func(pr *PointResult, p Progress)

// PointDone implements Reporter.
func (f FuncReporter) PointDone(pr *PointResult, p Progress) { f(pr, p) }
