package sweep

import (
	"fmt"
	"io"
	"sync"
)

// Reporter observes sweep progress. PointDone may be called from any
// worker goroutine; implementations must be safe for concurrent use.
type Reporter interface {
	PointDone(pr *PointResult, p Progress)
}

// LogReporter writes one line per completed point to an io.Writer —
// label, progress fraction, and cumulative throughput.
type LogReporter struct {
	W io.Writer

	mu sync.Mutex
}

// NewLogReporter returns a reporter logging to w.
func NewLogReporter(w io.Writer) *LogReporter { return &LogReporter{W: w} }

// PointDone implements Reporter.
func (lr *LogReporter) PointDone(pr *PointResult, p Progress) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	fmt.Fprintf(lr.W, "sweep: [%d/%d] %s (%d msgs, %.0f msg/s)\n",
		p.PointsDone, p.PointsTotal, pr.Point.Label, p.Messages, p.MessagesPerSec)
}

// FuncReporter adapts a function to the Reporter interface.
type FuncReporter func(pr *PointResult, p Progress)

// PointDone implements Reporter.
func (f FuncReporter) PointDone(pr *PointResult, p Progress) { f(pr, p) }
