package sweep

import (
	"fmt"
	"strings"

	"banyan/internal/simnet"
	"banyan/internal/traffic"
)

// Grid describes a cartesian parameter grid in the paper's coordinates:
// switch radix k, stage count n, arrival probability p, constant message
// size m, bulk size, favorite-output probability q, and buffer capacity.
// Leaving an axis nil pins it at its default (a single zero/unit value).
type Grid struct {
	Ks    []int     // switch radix; nil = {2}
	Ns    []int     // stages; nil = {1}
	Ps    []float64 // arrival probability per input per cycle
	Ms    []int     // constant service size; nil = {1} (unit service)
	Bulks []int     // messages per arrival batch; nil = {1}
	Qs    []float64 // favorite-output probability; nil = {0} (uniform)
	Caps  []int     // buffer capacity; nil = {0} (infinite)

	// Cycles and Warmup apply to every point. Reps is the replication
	// count per point (0 = 1) and Engine the simulator (points with a
	// finite Cap are forced onto the literal engine, which is the only
	// one modelling finite buffers).
	Cycles int
	Warmup int
	Reps   int
	Engine Engine
}

func orInts(v []int, def int) []int {
	if len(v) == 0 {
		return []int{def}
	}
	return v
}

func orFloats(v []float64, def float64) []float64 {
	if len(v) == 0 {
		return []float64{def}
	}
	return v
}

// Points expands the grid into labelled sweep points in row-major order
// (k outermost, cap innermost). Labels spell out only the axes the grid
// actually varies, e.g. "k=2/n=6/p=0.4".
func (g Grid) Points() ([]Point, error) {
	ks := orInts(g.Ks, 2)
	ns := orInts(g.Ns, 1)
	ps := orFloats(g.Ps, 0.5)
	ms := orInts(g.Ms, 1)
	bulks := orInts(g.Bulks, 1)
	qs := orFloats(g.Qs, 0)
	caps := orInts(g.Caps, 0)

	services := make(map[int]traffic.Service, len(ms))
	for _, m := range ms {
		if _, ok := services[m]; ok {
			continue
		}
		sv, err := traffic.ConstService(m)
		if err != nil {
			return nil, fmt.Errorf("sweep: grid service size %d: %w", m, err)
		}
		services[m] = sv
	}

	var pts []Point
	for _, k := range ks {
		for _, n := range ns {
			for _, p := range ps {
				for _, m := range ms {
					for _, b := range bulks {
						for _, q := range qs {
							for _, cap := range caps {
								// k, n, p always appear; the optional axes
								// only when varied or non-default.
								lbl := []string{
									fmt.Sprintf("k=%d", k),
									fmt.Sprintf("n=%d", n),
									fmt.Sprintf("p=%g", p),
								}
								if len(ms) > 1 || m != 1 {
									lbl = append(lbl, fmt.Sprintf("m=%d", m))
								}
								if len(bulks) > 1 || b != 1 {
									lbl = append(lbl, fmt.Sprintf("bulk=%d", b))
								}
								if len(qs) > 1 || q != 0 {
									lbl = append(lbl, fmt.Sprintf("q=%g", q))
								}
								if len(caps) > 1 || cap != 0 {
									lbl = append(lbl, fmt.Sprintf("cap=%d", cap))
								}
								eng := g.Engine
								if cap > 0 {
									eng = Literal
								}
								pts = append(pts, Point{
									Label: strings.Join(lbl, "/"),
									Cfg: simnet.Config{
										K: k, Stages: n, P: p,
										Service:   services[m],
										Bulk:      b,
										Q:         q,
										BufferCap: cap,
										Cycles:    g.Cycles,
										Warmup:    g.Warmup,
									},
									Engine: eng,
									Reps:   g.Reps,
								})
							}
						}
					}
				}
			}
		}
	}
	return pts, nil
}
