package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"banyan/internal/simnet"
)

func marshalRuns(t *testing.T, prs []*PointResult) []byte {
	t.Helper()
	b, err := json.Marshal(resultsOf(prs))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJournalResumeByteIdentical is the crash/resume integration test:
// a sweep cancelled midway and resumed from its checkpoint journal
// produces output byte-identical to an uninterrupted run.
func TestJournalResumeByteIdentical(t *testing.T) {
	pts := quickPoints(2) // 3 points × 2 reps
	clean, err := (&Runner{RootSeed: 7}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalRuns(t, clean)

	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// "Crash" midway: cancel after two replications — with one worker
	// that completes exactly the first point, which gets journaled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	r1 := &Runner{
		RootSeed:    7,
		Parallelism: 1,
		Journal:     j1,
		runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
			res, err := runEngineCtx(ctx, e, cfg)
			if done.Add(1) == 2 {
				cancel()
			}
			return res, err
		},
	}
	if _, err := r1.RunCtx(ctx, pts); !errors.Is(err, context.Canceled) {
		t.Fatalf("want cancellation, got %v", err)
	}
	if j1.Len() != 1 {
		t.Fatalf("want exactly the first point journaled, got %d", j1.Len())
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume in a "new process": reopen the journal and rerun the batch.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Loaded() != 1 {
		t.Fatalf("want 1 entry recovered from disk, got %d", j2.Loaded())
	}
	r2 := &Runner{RootSeed: 7, Journal: j2}
	prs, err := r2.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalRuns(t, prs); !bytes.Equal(got, want) {
		t.Fatal("resumed sweep is not byte-identical to the uninterrupted run")
	}
	for i := range prs {
		if prs[i].Agg.MeanTotalWait() != clean[i].Agg.MeanTotalWait() ||
			prs[i].Agg.VarTotalWait() != clean[i].Agg.VarTotalWait() {
			t.Fatalf("point %q: resumed aggregate differs", prs[i].Point.Label)
		}
	}
	// The journaled point must have been served from disk, not rerun.
	if snap := r2.Counters().Snapshot(); snap.RepsDone != 4 {
		t.Fatalf("want 4 resimulated replications (2 points), got %d", snap.RepsDone)
	}
	if j2.Len() != len(pts) {
		t.Fatalf("journal after resume holds %d of %d points", j2.Len(), len(pts))
	}
}

// TestJournalTornLine: a journal cut mid-write (torn final line, with or
// without its newline) loads the intact prefix and resimulates the rest;
// garbage before the final line refuses the file.
func TestJournalTornLine(t *testing.T) {
	pts := quickPoints(1)
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{RootSeed: 7, Journal: j}).Run(pts); err != nil {
		t.Fatal(err)
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, chop := range map[string]int{"mid-json": 10, "newline-only": 1} {
		torn := filepath.Join(t.TempDir(), name+".jsonl")
		if err := os.WriteFile(torn, full[:len(full)-chop], 0o644); err != nil {
			t.Fatal(err)
		}
		jt, err := OpenJournal(torn)
		if err != nil {
			t.Fatalf("%s: torn final line must be tolerated: %v", name, err)
		}
		if jt.Loaded() != len(pts)-1 {
			t.Fatalf("%s: want %d recovered entries, got %d", name, len(pts)-1, jt.Loaded())
		}
		// The torn point resimulates; afterwards the journal is whole again.
		if _, err := (&Runner{RootSeed: 7, Journal: jt}).Run(pts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if jt.Len() != len(pts) {
			t.Fatalf("%s: journal not repaired: %d of %d", name, jt.Len(), len(pts))
		}
		jt.Close()
		if reopened, err := OpenJournal(torn); err != nil || reopened.Loaded() != len(pts) {
			t.Fatalf("%s: repaired journal reload: loaded=%d err=%v", name, reopened.Loaded(), err)
		} else {
			reopened.Close()
		}
	}

	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, append([]byte("garbage\n"), full...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(bad); err == nil {
		t.Fatal("garbage before valid entries must refuse the file")
	}
}

// TestJournalCRLF is the regression test for the CRLF offset bug: the
// loader's byte accounting assumed "\n" endings while bufio.ScanLines
// also strips a "\r", so a journal rewritten with CRLF endings (Windows
// editor, careless transfer) computed validEnd short — and the next
// append landed mid-entry, corrupting the file.
func TestJournalCRLF(t *testing.T) {
	pts := quickPoints(1) // 3 points
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{RootSeed: 7, Journal: j}).Run(pts); err != nil {
		t.Fatal(err)
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	crlf := bytes.ReplaceAll(full, []byte("\n"), []byte("\r\n"))

	// A clean CRLF journal loads fully, and appending to it must not
	// overwrite the tail of the last entry (the seek position is the
	// real end of file, not the undercounted one).
	crlfPath := filepath.Join(dir, "crlf.jsonl")
	if err := os.WriteFile(crlfPath, crlf, 0o644); err != nil {
		t.Fatal(err)
	}
	jc, err := OpenJournal(crlfPath)
	if err != nil {
		t.Fatal(err)
	}
	if jc.Loaded() != len(pts) {
		t.Fatalf("CRLF journal loaded %d of %d entries", jc.Loaded(), len(pts))
	}
	// Re-bind the recorded batch first (the header survived the CRLF
	// rewrite), then append a fresh point from a new batch.
	if _, err := (&Runner{RootSeed: 7, Journal: jc}).Run(pts); err != nil {
		t.Fatal(err)
	}
	extra := pts[0]
	extra.Label = "extra"
	extra.Cfg.P = 0.3
	if _, err := (&Runner{RootSeed: 7, Journal: jc}).Run([]Point{extra}); err != nil {
		t.Fatal(err)
	}
	jc.Close()
	if reopened, err := OpenJournal(crlfPath); err != nil || reopened.Loaded() != len(pts)+1 {
		t.Fatalf("append after CRLF load corrupted the journal: loaded=%d err=%v", reopened.Loaded(), err)
	} else {
		reopened.Close()
	}

	// Torn final lines on a CRLF journal: truncation must cut exactly at
	// the end of the intact prefix, not into it.
	for name, chop := range map[string]int{"mid-json": 10, "newline-only": 1} {
		torn := filepath.Join(dir, name+"-crlf.jsonl")
		if err := os.WriteFile(torn, crlf[:len(crlf)-chop], 0o644); err != nil {
			t.Fatal(err)
		}
		jt, err := OpenJournal(torn)
		if err != nil {
			t.Fatalf("%s: torn CRLF line must be tolerated: %v", name, err)
		}
		if jt.Loaded() != len(pts)-1 {
			t.Fatalf("%s: want %d recovered entries, got %d", name, len(pts)-1, jt.Loaded())
		}
		if _, err := (&Runner{RootSeed: 7, Journal: jt}).Run(pts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		jt.Close()
		if reopened, err := OpenJournal(torn); err != nil || reopened.Loaded() != len(pts) {
			t.Fatalf("%s: repaired CRLF journal reload: loaded=%d err=%v", name, reopened.Loaded(), err)
		} else {
			reopened.Close()
		}
	}
}

// TestSetupJournal: a non-empty checkpoint requires the explicit resume
// opt-in.
func TestSetupJournal(t *testing.T) {
	pts := quickPoints(1)
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := SetupJournal(path, false)
	if err != nil {
		t.Fatalf("fresh journal: %v", err)
	}
	if _, err := (&Runner{RootSeed: 7, Journal: j}).Run(pts); err != nil {
		t.Fatal(err)
	}
	j.Close()

	if _, err := SetupJournal(path, false); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("non-empty journal without resume: want refusal mentioning -resume, got %v", err)
	}
	j2, err := SetupJournal(path, true)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if j2.Loaded() != len(pts) {
		t.Fatalf("resume recovered %d of %d", j2.Loaded(), len(pts))
	}
	j2.Close()
}

// reframeVersion rewrites record i (0-based; -1 = all) of a framed
// journal with its version field set to v, recomputing the frame so the
// CRC and length stay valid — the record is then a well-formed frame of
// an incompatible version, not mere corruption.
func reframeVersion(t *testing.T, data []byte, i, v int) []byte {
	t.Helper()
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	var out []byte
	changed := false
	for n, line := range lines {
		if i >= 0 && n != i {
			out = append(out, line...)
			out = append(out, '\n')
			continue
		}
		payload, err := unframe(line)
		if err != nil {
			t.Fatalf("reframe record %d: %v", n, err)
		}
		mut := bytes.Replace(payload, []byte(`{"v":2`), []byte(fmt.Sprintf(`{"v":%d`, v)), 1)
		if bytes.Equal(mut, payload) {
			t.Fatalf("record %d: version field not found", n)
		}
		changed = true
		out = append(out, frame(mut)...)
	}
	if !changed {
		t.Fatal("no record reframed")
	}
	return out
}

// TestJournalSkipsVersionMismatch: well-formed records from an
// incompatible journal version are never trusted. A whole file of them
// is refused (it is not a version-2 journal); a mismatched record after
// valid ones truncates recovery there, so the rest resimulates.
func TestJournalSkipsVersionMismatch(t *testing.T) {
	pts := quickPoints(1)
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{RootSeed: 7, Journal: j}).Run(pts); err != nil {
		t.Fatal(err)
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Every record (header + entries) rewritten as version 0: the file is
	// simply not a version-2 journal, and truncating it to zero would
	// destroy data some other tool may still want.
	oldPath := filepath.Join(t.TempDir(), "old.jsonl")
	if err := os.WriteFile(oldPath, reframeVersion(t, full, -1, 0), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(oldPath); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("old-version journal: want version refusal, got %v", err)
	}

	// Only the final entry mismatched: recovery keeps the valid prefix
	// and drops the rest.
	mixPath := filepath.Join(t.TempDir(), "mixed.jsonl")
	nrecs := bytes.Count(full, []byte("\n"))
	if err := os.WriteFile(mixPath, reframeVersion(t, full, nrecs-1, 0), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(mixPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Loaded() != len(pts)-1 {
		t.Fatalf("want %d entries before the mismatched record, got %d", len(pts)-1, j2.Loaded())
	}
}

// TestJournalConfigMismatch: resuming a journal under different flags —
// a batch whose hash is not among the journal's recorded headers — must
// fail with a typed *ConfigMismatchError naming both hashes, while a
// same-flags resume that progresses into new batches is accepted.
func TestJournalConfigMismatch(t *testing.T) {
	pts := quickPoints(1)
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{RootSeed: 7, Journal: j}).Run(pts); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Changed flags: a different root seed hashes the batch differently.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = (&Runner{RootSeed: 8, Journal: j2}).Run(pts)
	var cm *ConfigMismatchError
	if !errors.As(err, &cm) {
		t.Fatalf("want *ConfigMismatchError, got %v", err)
	}
	wantBatch := BatchKey(pts, 8)
	oldBatch := BatchKey(pts, 7)
	if cm.Batch != wantBatch {
		t.Fatalf("error batch = %016x, want %016x", cm.Batch, wantBatch)
	}
	msg := err.Error()
	for _, h := range []uint64{wantBatch, oldBatch} {
		if !strings.Contains(msg, fmt.Sprintf("%016x", h)) {
			t.Fatalf("mismatch message must name hash %016x: %q", h, msg)
		}
	}
	// The rejected run must not have disturbed the journal.
	if j2.Len() != len(pts) {
		t.Fatalf("rejected resume altered the journal: %d entries", j2.Len())
	}

	// Same flags: the recorded batch re-binds, and a follow-on batch the
	// journal has never seen (the post-crash continuation) is accepted.
	r := &Runner{RootSeed: 7, Journal: j2}
	if _, err := r.Run(pts); err != nil {
		t.Fatalf("same-flags resume: %v", err)
	}
	next := pts[0]
	next.Label = "next-batch"
	next.Cfg.P = 0.35
	if _, err := r.Run([]Point{next}); err != nil {
		t.Fatalf("continuation batch after verified resume: %v", err)
	}
	if j2.Len() != len(pts)+1 {
		t.Fatalf("continuation point not journaled: %d entries", j2.Len())
	}
	j2.Close()
}
