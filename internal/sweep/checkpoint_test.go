package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"banyan/internal/simnet"
)

func marshalRuns(t *testing.T, prs []*PointResult) []byte {
	t.Helper()
	b, err := json.Marshal(resultsOf(prs))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJournalResumeByteIdentical is the crash/resume integration test:
// a sweep cancelled midway and resumed from its checkpoint journal
// produces output byte-identical to an uninterrupted run.
func TestJournalResumeByteIdentical(t *testing.T) {
	pts := quickPoints(2) // 3 points × 2 reps
	clean, err := (&Runner{RootSeed: 7}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	want := marshalRuns(t, clean)

	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// "Crash" midway: cancel after two replications — with one worker
	// that completes exactly the first point, which gets journaled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	r1 := &Runner{
		RootSeed:    7,
		Parallelism: 1,
		Journal:     j1,
		runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
			res, err := runEngineCtx(ctx, e, cfg)
			if done.Add(1) == 2 {
				cancel()
			}
			return res, err
		},
	}
	if _, err := r1.RunCtx(ctx, pts); !errors.Is(err, context.Canceled) {
		t.Fatalf("want cancellation, got %v", err)
	}
	if j1.Len() != 1 {
		t.Fatalf("want exactly the first point journaled, got %d", j1.Len())
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume in a "new process": reopen the journal and rerun the batch.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Loaded() != 1 {
		t.Fatalf("want 1 entry recovered from disk, got %d", j2.Loaded())
	}
	r2 := &Runner{RootSeed: 7, Journal: j2}
	prs, err := r2.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalRuns(t, prs); !bytes.Equal(got, want) {
		t.Fatal("resumed sweep is not byte-identical to the uninterrupted run")
	}
	for i := range prs {
		if prs[i].Agg.MeanTotalWait() != clean[i].Agg.MeanTotalWait() ||
			prs[i].Agg.VarTotalWait() != clean[i].Agg.VarTotalWait() {
			t.Fatalf("point %q: resumed aggregate differs", prs[i].Point.Label)
		}
	}
	// The journaled point must have been served from disk, not rerun.
	if snap := r2.Counters().Snapshot(); snap.RepsDone != 4 {
		t.Fatalf("want 4 resimulated replications (2 points), got %d", snap.RepsDone)
	}
	if j2.Len() != len(pts) {
		t.Fatalf("journal after resume holds %d of %d points", j2.Len(), len(pts))
	}
}

// TestJournalTornLine: a journal cut mid-write (torn final line, with or
// without its newline) loads the intact prefix and resimulates the rest;
// garbage before the final line refuses the file.
func TestJournalTornLine(t *testing.T) {
	pts := quickPoints(1)
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{RootSeed: 7, Journal: j}).Run(pts); err != nil {
		t.Fatal(err)
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, chop := range map[string]int{"mid-json": 10, "newline-only": 1} {
		torn := filepath.Join(t.TempDir(), name+".jsonl")
		if err := os.WriteFile(torn, full[:len(full)-chop], 0o644); err != nil {
			t.Fatal(err)
		}
		jt, err := OpenJournal(torn)
		if err != nil {
			t.Fatalf("%s: torn final line must be tolerated: %v", name, err)
		}
		if jt.Loaded() != len(pts)-1 {
			t.Fatalf("%s: want %d recovered entries, got %d", name, len(pts)-1, jt.Loaded())
		}
		// The torn point resimulates; afterwards the journal is whole again.
		if _, err := (&Runner{RootSeed: 7, Journal: jt}).Run(pts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if jt.Len() != len(pts) {
			t.Fatalf("%s: journal not repaired: %d of %d", name, jt.Len(), len(pts))
		}
		jt.Close()
		if reopened, err := OpenJournal(torn); err != nil || reopened.Loaded() != len(pts) {
			t.Fatalf("%s: repaired journal reload: loaded=%d err=%v", name, reopened.Loaded(), err)
		} else {
			reopened.Close()
		}
	}

	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, append([]byte("garbage\n"), full...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(bad); err == nil {
		t.Fatal("garbage before valid entries must refuse the file")
	}
}

// TestJournalCRLF is the regression test for the CRLF offset bug: the
// loader's byte accounting assumed "\n" endings while bufio.ScanLines
// also strips a "\r", so a journal rewritten with CRLF endings (Windows
// editor, careless transfer) computed validEnd short — and the next
// append landed mid-entry, corrupting the file.
func TestJournalCRLF(t *testing.T) {
	pts := quickPoints(1) // 3 points
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{RootSeed: 7, Journal: j}).Run(pts); err != nil {
		t.Fatal(err)
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	crlf := bytes.ReplaceAll(full, []byte("\n"), []byte("\r\n"))

	// A clean CRLF journal loads fully, and appending to it must not
	// overwrite the tail of the last entry (the seek position is the
	// real end of file, not the undercounted one).
	crlfPath := filepath.Join(dir, "crlf.jsonl")
	if err := os.WriteFile(crlfPath, crlf, 0o644); err != nil {
		t.Fatal(err)
	}
	jc, err := OpenJournal(crlfPath)
	if err != nil {
		t.Fatal(err)
	}
	if jc.Loaded() != len(pts) {
		t.Fatalf("CRLF journal loaded %d of %d entries", jc.Loaded(), len(pts))
	}
	extra := pts[0]
	extra.Label = "extra"
	extra.Cfg.P = 0.3
	if _, err := (&Runner{RootSeed: 7, Journal: jc}).Run([]Point{extra}); err != nil {
		t.Fatal(err)
	}
	jc.Close()
	if reopened, err := OpenJournal(crlfPath); err != nil || reopened.Loaded() != len(pts)+1 {
		t.Fatalf("append after CRLF load corrupted the journal: loaded=%d err=%v", reopened.Loaded(), err)
	} else {
		reopened.Close()
	}

	// Torn final lines on a CRLF journal: truncation must cut exactly at
	// the end of the intact prefix, not into it.
	for name, chop := range map[string]int{"mid-json": 10, "newline-only": 1} {
		torn := filepath.Join(dir, name+"-crlf.jsonl")
		if err := os.WriteFile(torn, crlf[:len(crlf)-chop], 0o644); err != nil {
			t.Fatal(err)
		}
		jt, err := OpenJournal(torn)
		if err != nil {
			t.Fatalf("%s: torn CRLF line must be tolerated: %v", name, err)
		}
		if jt.Loaded() != len(pts)-1 {
			t.Fatalf("%s: want %d recovered entries, got %d", name, len(pts)-1, jt.Loaded())
		}
		if _, err := (&Runner{RootSeed: 7, Journal: jt}).Run(pts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		jt.Close()
		if reopened, err := OpenJournal(torn); err != nil || reopened.Loaded() != len(pts) {
			t.Fatalf("%s: repaired CRLF journal reload: loaded=%d err=%v", name, reopened.Loaded(), err)
		} else {
			reopened.Close()
		}
	}
}

// TestSetupJournal: a non-empty checkpoint requires the explicit resume
// opt-in.
func TestSetupJournal(t *testing.T) {
	pts := quickPoints(1)
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := SetupJournal(path, false)
	if err != nil {
		t.Fatalf("fresh journal: %v", err)
	}
	if _, err := (&Runner{RootSeed: 7, Journal: j}).Run(pts); err != nil {
		t.Fatal(err)
	}
	j.Close()

	if _, err := SetupJournal(path, false); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("non-empty journal without resume: want refusal mentioning -resume, got %v", err)
	}
	j2, err := SetupJournal(path, true)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if j2.Loaded() != len(pts) {
		t.Fatalf("resume recovered %d of %d", j2.Loaded(), len(pts))
	}
	j2.Close()
}

// TestJournalSkipsVersionMismatch: entries from an incompatible journal
// version are ignored (resimulated), not trusted.
func TestJournalSkipsVersionMismatch(t *testing.T) {
	pts := quickPoints(1)
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Runner{RootSeed: 7, Journal: j}).Run(pts); err != nil {
		t.Fatal(err)
	}
	j.Close()

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.ReplaceAll(full, []byte(`{"v":1,`), []byte(`{"v":0,`))
	if bytes.Equal(old, full) {
		t.Fatal("test assumes the version field leads each entry")
	}
	if err := os.WriteFile(path, old, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Loaded() != 0 {
		t.Fatalf("version-mismatched entries must be ignored, got %d", j2.Loaded())
	}
}
