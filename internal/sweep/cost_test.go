package sweep

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"banyan/internal/obs"
	"banyan/internal/simnet"
)

var errTransient = errors.New("transient fault")

// TestRunCyclesAccounting pins what a replication's cycle bill is: the
// truncation point when it stopped early, warmup+measured when it ran
// to completion, nothing when it produced nothing.
func TestRunCyclesAccounting(t *testing.T) {
	cfg := &simnet.Config{Warmup: 100, Cycles: 800}
	if got := runCycles(cfg, nil); got != 0 {
		t.Fatalf("nil result billed %d cycles", got)
	}
	if got := runCycles(cfg, &simnet.Result{}); got != 900 {
		t.Fatalf("complete run billed %d cycles, want 900", got)
	}
	if got := runCycles(cfg, &simnet.Result{Truncated: true, TruncatedAt: 123}); got != 123 {
		t.Fatalf("truncated run billed %d cycles, want 123", got)
	}
}

// TestCostDeltaClamp: an attribution layer must never report negative
// spend, even if a counter read goes backwards.
func TestCostDeltaClamp(t *testing.T) {
	before := costSample{cpuNS: 100, allocBytes: 100, allocObjs: 100}
	after := costSample{cpuNS: 50, allocBytes: 150, allocObjs: 50}
	d := costDelta(before, after, 7*time.Millisecond, -5)
	if d.CPUNS != 0 || d.AllocObjects != 0 || d.Cycles != 0 {
		t.Fatalf("negative deltas not clamped: %+v", d)
	}
	if d.AllocBytes != 50 || d.WallNS != int64(7*time.Millisecond) {
		t.Fatalf("positive deltas mangled: %+v", d)
	}
}

// TestCostAttributionExact is the wall-exactness contract: every fresh
// point carries a cost, its cycle bill is exactly what it simulated,
// and the per-point costs sum to the counters' totals to the
// nanosecond — the same equality BuildLedger's reconcile enforces.
func TestCostAttributionExact(t *testing.T) {
	pts := quickPoints(2) // 3 points × 2 reps of 100+800 cycles
	r := &Runner{Parallelism: 2, RootSeed: 5}
	prs, err := r.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	var wall, cpu, ab, ao, cyc int64
	for _, pr := range prs {
		if pr.Cost == nil {
			t.Fatalf("fresh point %q has no cost", pr.Point.Label)
		}
		if pr.Cost.WallNS <= 0 {
			t.Fatalf("point %q wall %d, want > 0", pr.Point.Label, pr.Cost.WallNS)
		}
		if pr.Cost.Cycles != 2*900 {
			t.Fatalf("point %q billed %d cycles, want 1800", pr.Point.Label, pr.Cost.Cycles)
		}
		if pr.Cost.Reps != 2 {
			t.Fatalf("point %q reps %d, want 2", pr.Point.Label, pr.Cost.Reps)
		}
		wall += pr.Cost.WallNS
		cpu += pr.Cost.CPUNS
		ab += pr.Cost.AllocBytes
		ao += pr.Cost.AllocObjects
		cyc += pr.Cost.Cycles
	}
	snap := r.Counters().Snapshot()
	if wall != snap.CostWallNS || cpu != snap.CostCPUNS || ab != snap.CostAllocBytes ||
		ao != snap.CostAllocObjects || cyc != snap.CostCycles {
		t.Fatalf("per-point sums (wall %d cpu %d ab %d ao %d cyc %d) != counters (%d %d %d %d %d)",
			wall, cpu, ab, ao, cyc,
			snap.CostWallNS, snap.CostCPUNS, snap.CostAllocBytes, snap.CostAllocObjects, snap.CostCycles)
	}
}

// TestCostRetriesAttributed: a point pays for every attempt it took,
// including the failed ones — its cost is what it actually spent.
func TestCostRetriesAttributed(t *testing.T) {
	pts := faultPoints(1)
	var failures atomic.Int64
	r := &Runner{
		RootSeed: 9, Parallelism: 1, MaxRetries: 3, RetryBackoff: time.Millisecond,
		runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
			if cfg.P == faultyP && failures.Add(1) <= 2 {
				return nil, errTransient
			}
			return runEngineCtx(ctx, e, cfg)
		},
	}
	prs, err := r.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, pr := range prs {
		if pr.Cost == nil {
			t.Fatalf("point %q has no cost", pr.Point.Label)
		}
		// Failed attempts bill no cycles (no result), so the cycle bill
		// stays exactly one completed replication per point.
		if pr.Cost.Cycles != 900 {
			t.Fatalf("point %q billed %d cycles, want 900", pr.Point.Label, pr.Cost.Cycles)
		}
		sum += pr.Cost.WallNS
	}
	if snap := r.Counters().Snapshot(); sum != snap.CostWallNS {
		t.Fatalf("wall sum %d != counters %d with retries in play", sum, snap.CostWallNS)
	}
}

// TestCostNilOnSharedPoints: cache hits, in-batch aliases and resumed
// points carry nil cost — their price was paid (and attributed) where
// the simulation actually happened, never twice.
func TestCostNilOnSharedPoints(t *testing.T) {
	pts := quickPoints(1)

	// Cache: the second run pays nothing and attributes nothing.
	r := &Runner{RootSeed: 7, Cache: NewCache()}
	if _, err := r.Run(pts); err != nil {
		t.Fatal(err)
	}
	paid := r.Counters().Snapshot()
	again, err := r.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range again {
		if pr.Cost != nil {
			t.Fatalf("cached point %q carries cost %+v", pr.Point.Label, pr.Cost)
		}
	}
	if snap := r.Counters().Snapshot(); snap.CostWallNS != paid.CostWallNS || snap.CostCycles != paid.CostCycles {
		t.Fatalf("cache hits changed attributed totals: %+v -> %+v", paid, snap)
	}

	// In-batch alias: only the simulated copy is billed.
	dup := []Point{pts[0], {Label: "alias", Cfg: pts[0].Cfg}}
	r2 := &Runner{RootSeed: 7}
	prs, err := r2.Run(dup)
	if err != nil {
		t.Fatal(err)
	}
	if prs[0].Cost == nil || prs[1].Cost != nil {
		t.Fatalf("alias billing wrong: original %+v alias %+v", prs[0].Cost, prs[1].Cost)
	}

	// Resume: journaled points are served from disk with nil cost.
	path := filepath.Join(t.TempDir(), "journal")
	j, err := SetupJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	r3 := &Runner{RootSeed: 7, Journal: j}
	if _, err := r3.Run(pts); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := SetupJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	r4 := &Runner{RootSeed: 7, Journal: j2}
	resumed, err := r4.Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range resumed {
		if pr.Cost != nil {
			t.Fatalf("resumed point %q carries cost %+v", pr.Point.Label, pr.Cost)
		}
	}
	if snap := r4.Counters().Snapshot(); snap.CostWallNS != 0 || snap.CostCycles != 0 {
		t.Fatalf("resume attributed cost: %+v", snap)
	}
}

// TestLedgerTSDBExpositionBitIdentity is the PR's result-neutrality
// gate: a sweep with the full observability stack enabled — ledger
// collector, registry exposition scraped as OpenMetrics mid-run, TSDB
// sampling on a tight cadence, journal — produces results, keys, seeds
// and journal bytes identical to a bare run.
func TestLedgerTSDBExpositionBitIdentity(t *testing.T) {
	pts := quickPoints(2)
	dir := t.TempDir()

	runOnce := func(journalPath string, instrumented bool) []*PointResult {
		t.Helper()
		j, err := SetupJournal(journalPath, false)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		r := &Runner{Parallelism: 1, RootSeed: 0xbeef, Journal: j}
		var tsdb *obs.TSDB
		if instrumented {
			r.Ledger = NewLedgerCollector()
			reg := obs.NewRegistry()
			r.Counters().Register(reg)
			obs.RegisterRuntimeMetrics(reg)
			tsdb = obs.NewTSDB(reg, 64)
			tsdb.Start(time.Millisecond)
			defer tsdb.Stop()
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
						var sink bytes.Buffer
						if err := obs.WriteOpenMetrics(&sink, reg, nil); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}()
		}
		prs, err := r.Run(pts)
		if err != nil {
			t.Fatal(err)
		}
		if instrumented {
			led := r.BuildLedger()
			if !led.Reconciled {
				t.Fatalf("instrumented run does not reconcile: %s", led.Note)
			}
		}
		return prs
	}

	bare := runOnce(filepath.Join(dir, "bare.journal"), false)
	instr := runOnce(filepath.Join(dir, "instr.journal"), true)

	if !reflect.DeepEqual(resultsOf(bare), resultsOf(instr)) {
		t.Fatal("observability stack changed simulation results")
	}
	for i := range bare {
		if bare[i].Key != instr[i].Key || bare[i].Seed != instr[i].Seed {
			t.Fatalf("point %d key/seed drifted: %x/%x vs %x/%x",
				i, bare[i].Key, bare[i].Seed, instr[i].Key, instr[i].Seed)
		}
	}
	jb, err := os.ReadFile(filepath.Join(dir, "bare.journal"))
	if err != nil {
		t.Fatal(err)
	}
	ji, err := os.ReadFile(filepath.Join(dir, "instr.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jb, ji) {
		t.Fatal("journal bytes differ with observability enabled — cost leaked into the journal")
	}
}
