package sweep

import (
	"strings"
	"testing"

	"banyan/internal/dist"
	"banyan/internal/obs"
	"banyan/internal/simnet"
	"banyan/internal/stats"
	"banyan/internal/traffic"
)

// calibratedPoint is a stage-1-exact, multi-stage operating point well
// inside the paper's model regime: moderate load, unit service, no
// bursts or hot spots.
func calibratedPoint(stages int) Point {
	return Point{
		Label: "calibrated",
		Cfg:   simnet.Config{K: 2, Stages: stages, P: 0.4, Cycles: 20000, Warmup: 1000},
	}
}

func driftEvents(ring *obs.RingSink) []obs.Event {
	var out []obs.Event
	for _, ev := range ring.Events() {
		if ev.Event == obs.EventDrift {
			out = append(out, ev)
		}
	}
	return out
}

// TestDriftCalibratedPointPasses: a healthy simulation of a modelled
// configuration must not trip the monitor — and the point_done event
// must carry the per-stage waiting-time digests.
func TestDriftCalibratedPointPasses(t *testing.T) {
	ring := obs.NewRingSink(64)
	mon := &DriftMonitor{}
	reg := obs.NewRegistry()
	mon.Register(reg)
	r := &Runner{RootSeed: 5, Events: ring, Drift: mon}
	prs, err := r.Run([]Point{calibratedPoint(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(driftEvents(ring)) != 0 {
		t.Fatalf("calibrated point emitted drift events: %+v", driftEvents(ring))
	}
	var done *obs.Event
	for _, ev := range ring.Events() {
		if ev.Event == obs.EventPointDone {
			e := ev
			done = &e
		}
	}
	if done == nil {
		t.Fatal("no point_done event")
	}
	if len(done.Waits) != 3 {
		t.Fatalf("point_done carries %d stage digests, want 3", len(done.Waits))
	}
	for i, w := range done.Waits {
		if w.Stage != i+1 || w.N == 0 || w.P99 < w.P50 {
			t.Fatalf("stage digest %d malformed: %+v", i, w)
		}
		if w.N != prs[0].Result().Messages {
			t.Fatalf("stage %d digest N %d, messages %d", w.Stage, w.N, prs[0].Result().Messages)
		}
	}
	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"drift.points_checked 1", "drift.points_drifted 0", "drift.stage1.ks ", "drift.stage3.ks "} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestDriftWrongModelTriggers: a reference distribution that does not
// match the simulated system (the operator mis-specified m or λ) must
// produce a drift event naming the offending stage.
func TestDriftWrongModelTriggers(t *testing.T) {
	ring := obs.NewRingSink(64)
	mon := &DriftMonitor{
		Reference: func(cfg *simnet.Config, stage, support int) (dist.PMF, error) {
			if stage == 2 {
				// Predict "every wait is exactly 40 cycles" — nothing like
				// a light-load queue, so stage 2 must drift.
				return dist.PointPMF(40), nil
			}
			// Other stages keep the monitor's own analytic model, so only
			// stage 2 can drift.
			return (&DriftMonitor{}).model(cfg, stage, support)
		},
	}
	r := &Runner{RootSeed: 5, Events: ring, Drift: mon}
	if _, err := r.Run([]Point{calibratedPoint(3)}); err != nil {
		t.Fatal(err)
	}
	evs := driftEvents(ring)
	if len(evs) == 0 {
		t.Fatal("mismatched model produced no drift event")
	}
	for _, ev := range evs {
		if ev.Stage != 2 {
			t.Fatalf("drift blamed stage %d, want 2: %+v", ev.Stage, ev)
		}
		if ev.KS <= ev.Threshold || ev.Threshold == 0 {
			t.Fatalf("drift event statistic malformed: %+v", ev)
		}
		if ev.Label != "calibrated" || ev.Key == "" {
			t.Fatalf("drift event missing point identity: %+v", ev)
		}
	}
}

// TestDriftCheckDirect exercises the monitor's analytic models without
// the runner: a stage-1 exact comparison on a calibrated run passes,
// and the same empirical data against a wrong configuration (claimed
// service length m=4 when the run used m=1) drifts.
func TestDriftCheckDirect(t *testing.T) {
	cfg := simnet.Config{K: 2, Stages: 1, P: 0.4, Cycles: 30000, Warmup: 1000, Seed: 77}
	cfg.WaitHists = []*stats.Hist{{}}
	if _, err := simnet.Run(&cfg); err != nil {
		t.Fatal(err)
	}

	mon := &DriftMonitor{}
	rep, err := mon.Check(&cfg, cfg.WaitHists)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != "" || rep.Drifted {
		t.Fatalf("calibrated stage-1 check failed: %+v", rep)
	}
	if len(rep.Stages) != 1 || rep.Stages[0].N == 0 {
		t.Fatalf("report malformed: %+v", rep)
	}

	// Same data, wrong claimed service time: the analytic prediction for
	// m=2 (ρ=0.8) is far from the m=1 (ρ=0.4) empirical waits.
	svc, err := traffic.ConstService(2)
	if err != nil {
		t.Fatal(err)
	}
	wrong := cfg
	wrong.Service = svc
	rep2, err := mon.Check(&wrong, cfg.WaitHists)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Drifted {
		t.Fatalf("wrong m not detected: %+v", rep2)
	}
	if stage, ks := rep2.MaxKS(); stage != 1 || ks <= DefaultDriftThreshold {
		t.Fatalf("MaxKS = (%d, %g), want stage 1 above threshold", stage, ks)
	}

	// Wrong arrival rate: claim λ twice the simulated one.
	hot := cfg
	hot.P = 0.8
	rep3, err := mon.Check(&hot, cfg.WaitHists)
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Drifted {
		t.Fatalf("wrong λ not detected: %+v", rep3)
	}
}

// TestDriftSkipsUnmodelledTraffic: configurations outside the paper's
// analytic regime are counted as skipped, not guessed at.
func TestDriftSkipsUnmodelledTraffic(t *testing.T) {
	mon := &DriftMonitor{}
	burst := simnet.Config{K: 2, Stages: 1, P: 0.3, Cycles: 100, Warmup: 10,
		Burst: &simnet.BurstParams{POnRate: 0.5, POffRate: 0.1}}
	rep, err := mon.Check(&burst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped == "" {
		t.Fatalf("bursty traffic must skip: %+v", rep)
	}

	bulkDeep := simnet.Config{K: 2, Stages: 2, P: 0.1, Bulk: 3, Cycles: 100, Warmup: 10}
	rep2, err := mon.Check(&bulkDeep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Skipped == "" {
		t.Fatalf("bulk beyond stage 1 must skip: %+v", rep2)
	}

	reg := obs.NewRegistry()
	mon.Register(reg)
	var sb strings.Builder
	reg.WriteText(&sb)
	if !strings.Contains(sb.String(), "drift.points_skipped 2") {
		t.Fatalf("skip counter wrong:\n%s", sb.String())
	}
}

// TestDriftTruncatedAndCachedSkipped: truncated replications poison the
// waiting-time sample, and cached replays carry no fresh histograms —
// neither may reach the monitor.
func TestDriftTruncatedAndCachedSkipped(t *testing.T) {
	mon := &DriftMonitor{}
	ring := obs.NewRingSink(64)
	r := &Runner{RootSeed: 5, Cache: NewCache(), Events: ring, Drift: mon}
	pt := calibratedPoint(2)
	if _, err := r.Run([]Point{pt}); err != nil {
		t.Fatal(err)
	}
	if mon.checked != 1 {
		t.Fatalf("first run checked %d points, want 1", mon.checked)
	}
	// Second run hits the cache: no fresh simulation, no second check.
	if _, err := r.Run([]Point{pt}); err != nil {
		t.Fatal(err)
	}
	if mon.checked != 1 {
		t.Fatalf("cached replay re-checked: %d", mon.checked)
	}

	// A truncated point produces no drift verdict and no Waits digest.
	sat := Point{Label: "saturated", Cfg: simnet.Config{
		K: 2, Stages: 2, P: 0.9, Cycles: 5000, Warmup: 100,
		AllowUnstable: true, MaxInFlight: 1, DrainCycles: 1,
	}}
	ring2 := obs.NewRingSink(64)
	r2 := &Runner{RootSeed: 5, Events: ring2, Drift: mon}
	prs, err := r2.Run([]Point{sat})
	if err != nil {
		t.Fatal(err)
	}
	if !prs[0].Truncated() {
		t.Skip("saturation guard did not trip; nothing to assert")
	}
	if mon.checked != 1 {
		t.Fatalf("truncated point reached the monitor")
	}
	for _, ev := range ring2.Events() {
		if ev.Event == obs.EventPointDone && len(ev.Waits) != 0 {
			t.Fatalf("truncated point_done carries waits: %+v", ev)
		}
	}
}
