package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"banyan/internal/simnet"
)

// TestBuildLedgerReconciles drives a mixed run — fresh points, an
// in-batch alias, a cache-served second batch, and a failed point —
// and checks that the ledger's rows and the counters tell one story.
func TestBuildLedgerReconciles(t *testing.T) {
	pts := faultPoints(1)
	pts = append(pts, Point{Label: "alias", Cfg: pts[0].Cfg})
	r := &Runner{
		RootSeed: 9, Parallelism: 2,
		Cache:  NewCache(),
		Ledger: NewLedgerCollector(),
		runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
			if cfg.P == faultyP {
				return nil, errTransient
			}
			return runEngineCtx(ctx, e, cfg)
		},
	}
	if _, err := r.Run(pts); err == nil {
		t.Fatal("want batch error from the failing point")
	}
	// Second batch: the healthy points come from the cache.
	healthy := []Point{pts[0], pts[2]}
	if _, err := r.Run(healthy); err != nil {
		t.Fatal(err)
	}

	led := r.BuildLedger()
	if !led.Reconciled {
		t.Fatalf("ledger does not reconcile: %s", led.Note)
	}
	if led.Schema != ledgerSchema {
		t.Fatalf("schema %q", led.Schema)
	}
	byStatus := map[LedgerStatus]int{}
	for _, row := range led.Rows {
		byStatus[row.Status]++
		switch row.Status {
		case LedgerDone:
			if row.Cost == nil || row.Cost.WallNS <= 0 {
				t.Fatalf("done row %q without cost", row.Label)
			}
		case LedgerFailed:
			if row.Err == "" {
				t.Fatalf("failed row %q without error", row.Label)
			}
		default:
			if row.Cost != nil {
				t.Fatalf("%s row %q carries cost", row.Status, row.Label)
			}
		}
	}
	// Batch 1: 2 fresh done, 1 failed, 1 aliased. Batch 2: 2 cached.
	if byStatus[LedgerDone] != 2 || byStatus[LedgerFailed] != 1 ||
		byStatus[LedgerAliased] != 1 || byStatus[LedgerCached] != 2 {
		t.Fatalf("row mix %v", byStatus)
	}
	if led.Savings.CachedPoints != 2 || led.Savings.AliasedPoints != 1 || led.Savings.RepsAvoided != 3 {
		t.Fatalf("savings wrong: %+v", led.Savings)
	}
	if led.Savings.EstSavedWallNS <= 0 {
		t.Fatalf("est saved wall %d, want > 0", led.Savings.EstSavedWallNS)
	}
	if led.Faults.Retries != 0 || led.Points.Failed != 1 {
		t.Fatalf("fault totals wrong: %+v %+v", led.Faults, led.Points)
	}
	if led.Cost.Parallelism != 2 || led.Cost.BusyNS <= 0 {
		t.Fatalf("cost denominators wrong: %+v", led.Cost)
	}
}

// TestBuildLedgerTopK: the spotlight lists fresh points by wall cost,
// descending, capped at ledgerTopK, and never includes shared rows.
func TestBuildLedgerTopK(t *testing.T) {
	col := NewLedgerCollector()
	r := &Runner{RootSeed: 3, Ledger: col}
	if _, err := r.Run(quickPoints(1)); err != nil {
		t.Fatal(err)
	}
	led := r.BuildLedger()
	if !led.Reconciled {
		t.Fatalf("not reconciled: %s", led.Note)
	}
	if len(led.TopK) != 3 {
		t.Fatalf("topk %d rows, want 3", len(led.TopK))
	}
	for i := 1; i < len(led.TopK); i++ {
		if led.TopK[i].Cost.WallNS > led.TopK[i-1].Cost.WallNS {
			t.Fatalf("topk not sorted by wall: %d after %d",
				led.TopK[i].Cost.WallNS, led.TopK[i-1].Cost.WallNS)
		}
	}
}

// TestBuildLedgerWithoutCollector: a runner that never attached a
// collector still gets counter totals, explicitly marked unreconciled.
func TestBuildLedgerWithoutCollector(t *testing.T) {
	r := &Runner{RootSeed: 3}
	if _, err := r.Run(quickPoints(1)); err != nil {
		t.Fatal(err)
	}
	led := r.BuildLedger()
	if led.Reconciled {
		t.Fatal("no-collector ledger claims reconciliation")
	}
	if led.Note == "" || len(led.Rows) != 0 {
		t.Fatalf("no-collector ledger shape wrong: note %q rows %d", led.Note, len(led.Rows))
	}
	if led.Points.Done != 3 || led.Cost.WallNS <= 0 {
		t.Fatalf("counter totals missing: %+v %+v", led.Points, led.Cost)
	}
}

// TestReconcileDetectsDrift: a doctored row must flip the verdict —
// the reconciliation is exact, not tolerant.
func TestReconcileDetectsDrift(t *testing.T) {
	r := &Runner{RootSeed: 3, Ledger: NewLedgerCollector()}
	if _, err := r.Run(quickPoints(1)); err != nil {
		t.Fatal(err)
	}
	if led := r.BuildLedger(); !led.Reconciled {
		t.Fatalf("clean run must reconcile: %s", led.Note)
	}
	// Tamper: one extra nanosecond on one row.
	r.Ledger.rows[0].Cost.WallNS++
	led := r.BuildLedger()
	if led.Reconciled {
		t.Fatal("1ns discrepancy not detected")
	}
	if !strings.Contains(led.Note, "wall_ns") {
		t.Fatalf("note does not name the discrepancy: %q", led.Note)
	}
}

// TestLedgerVRSection: points carrying VR estimates aggregate into the
// ledger's VR summary.
func TestLedgerVRSection(t *testing.T) {
	col := NewLedgerCollector()
	pr := &PointResult{Point: Point{Label: "vr-pt"}, Cost: &PointCost{WallNS: 10, Reps: 4, ESS: 6.5}}
	col.Observe(pr, LedgerDone)
	row := col.Rows()[0]
	if row.Cost == nil || row.Cost.ESS != 6.5 {
		t.Fatalf("observe dropped cost/ESS: %+v", row)
	}
}

// TestLedgerWriteJSONAndText: both renditions carry the verdict and the
// section content; JSON round-trips.
func TestLedgerWriteJSONAndText(t *testing.T) {
	r := &Runner{RootSeed: 3, Ledger: NewLedgerCollector(), Drift: &DriftMonitor{}}
	if _, err := r.Run(quickPoints(1)); err != nil {
		t.Fatal(err)
	}
	led := r.BuildLedger()

	var jb bytes.Buffer
	if err := led.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var back RunLedger
	if err := json.Unmarshal(jb.Bytes(), &back); err != nil {
		t.Fatalf("ledger JSON does not round-trip: %v", err)
	}
	if back.Schema != ledgerSchema || back.Points.Done != led.Points.Done || !back.Reconciled {
		t.Fatalf("round-trip lost fields: %+v", back.Points)
	}
	if back.Drift == nil {
		t.Fatal("drift totals missing from JSON")
	}

	var tb bytes.Buffer
	if err := led.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	text := tb.String()
	for _, want := range []string{"RECONCILED", "points", "cost", "savings / faults", "drift", "most expensive points"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text rendition missing %q:\n%s", want, text)
		}
	}
}

// TestLedgerCollectorConcurrent: Observe is called from every worker;
// the -race guard.
func TestLedgerCollectorConcurrent(t *testing.T) {
	col := NewLedgerCollector()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				col.Observe(&PointResult{
					Point: Point{Label: "p"},
					Cost:  &PointCost{WallNS: int64(i)},
				}, LedgerDone)
			}
		}(w)
	}
	deadline := time.After(5 * time.Second)
	for w := 0; w < 4; w++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatal("observers wedged")
		}
	}
	if n := len(col.Rows()); n != 400 {
		t.Fatalf("rows %d, want 400", n)
	}
}
