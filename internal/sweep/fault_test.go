package sweep

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"banyan/internal/simnet"
)

// faultPoints is a small batch whose middle point (P = 0.4) the tests
// single out for fault injection.
func faultPoints(reps int) []Point {
	return quickPoints(reps)
}

const faultyP = 0.4 // quickPoints' middle point

// TestPanicIsolation: a replication that panics fails only its own
// point; the rest of the batch completes with results identical to a
// fault-free run.
func TestPanicIsolation(t *testing.T) {
	pts := faultPoints(1)
	clean, err := (&Runner{RootSeed: 9}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}

	r := &Runner{RootSeed: 9, runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
		if cfg.P == faultyP {
			panic("injected fault")
		}
		return runEngineCtx(ctx, e, cfg)
	}}
	prs, err := r.Run(pts)
	if err == nil {
		t.Fatal("want batch error from the panicking point")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "injected fault" || len(pe.Stack) == 0 {
		t.Fatalf("want *PanicError with stack, got %v", err)
	}
	if len(prs) != len(pts) {
		t.Fatalf("results not fully populated: %d of %d", len(prs), len(pts))
	}
	for i, pr := range prs {
		if pts[i].Cfg.P == faultyP {
			if pr.Err == nil || pr.Agg != nil {
				t.Fatalf("faulty point %q: want Err and nil Agg, got err=%v agg=%v", pr.Point.Label, pr.Err, pr.Agg)
			}
			continue
		}
		if pr.Err != nil {
			t.Fatalf("healthy point %q failed: %v", pr.Point.Label, pr.Err)
		}
		if !reflect.DeepEqual(pr.Runs, clean[i].Runs) {
			t.Fatalf("healthy point %q diverged from fault-free run", pr.Point.Label)
		}
	}
	if snap := r.Counters().Snapshot(); snap.PointsFailed != 1 {
		t.Fatalf("want 1 failed point in counters, got %+v", snap)
	}
}

// TestRetryRecovers: transient failures are retried with backoff and the
// recovered result is identical to a fault-free run — the retry path
// must not perturb determinism.
func TestRetryRecovers(t *testing.T) {
	pts := faultPoints(1)
	clean, err := (&Runner{RootSeed: 9}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}

	var failures atomic.Int64
	boom := errors.New("transient fault")
	r := &Runner{
		RootSeed:     9,
		MaxRetries:   3,
		RetryBackoff: time.Millisecond,
		runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
			if cfg.P == faultyP && failures.Add(1) <= 2 {
				return nil, boom
			}
			return runEngineCtx(ctx, e, cfg)
		},
	}
	prs, err := r.Run(pts)
	if err != nil {
		t.Fatalf("retries should have recovered the batch: %v", err)
	}
	if !reflect.DeepEqual(resultsOf(prs), resultsOf(clean)) {
		t.Fatal("recovered results differ from fault-free run")
	}
	if snap := r.Counters().Snapshot(); snap.Retries != 2 || snap.PointsFailed != 0 {
		t.Fatalf("want 2 retries and 0 failed points, got %+v", snap)
	}
}

// TestRetriesExhausted: a persistent failure stops after MaxRetries
// extra attempts and surfaces the underlying error on its point.
func TestRetriesExhausted(t *testing.T) {
	pts := faultPoints(1)
	var attempts atomic.Int64
	boom := errors.New("persistent fault")
	r := &Runner{
		RootSeed:     9,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
			if cfg.P == faultyP {
				attempts.Add(1)
				return nil, boom
			}
			return runEngineCtx(ctx, e, cfg)
		},
	}
	prs, err := r.Run(pts)
	if !errors.Is(err, boom) {
		t.Fatalf("want the persistent fault in the batch error, got %v", err)
	}
	if got := attempts.Load(); got != 3 { // 1 initial + 2 retries
		t.Fatalf("want 3 attempts, got %d", got)
	}
	for _, pr := range prs {
		if pr.Point.Cfg.P == faultyP && !errors.Is(pr.Err, boom) {
			t.Fatalf("faulty point error = %v", pr.Err)
		}
	}
}

// TestCancellationNoGoroutineLeak: cancelling mid-batch returns promptly
// with every unfinished point marked, and leaves no worker goroutines
// behind. CI runs this under -race.
func TestCancellationNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	pts := faultPoints(4) // 3 points × 4 reps = 12 jobs
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	r := &Runner{
		RootSeed:    9,
		Parallelism: 2,
		runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
			res, err := runEngineCtx(ctx, e, cfg)
			if done.Add(1) == 4 {
				cancel()
			}
			return res, err
		},
	}
	prs, err := r.RunCtx(ctx, pts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in batch error, got %v", err)
	}
	if len(prs) != len(pts) {
		t.Fatalf("results not fully populated: %d of %d", len(prs), len(pts))
	}
	cancelled := 0
	for _, pr := range prs {
		if pr == nil {
			t.Fatal("nil PointResult after cancellation")
		}
		if pr.Err != nil {
			if !errors.Is(pr.Err, context.Canceled) {
				t.Fatalf("point %q: want Canceled, got %v", pr.Point.Label, pr.Err)
			}
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("cancellation mid-batch must leave at least one point unfinished")
	}

	// Workers must all have exited and every arena checked back in; the
	// shared helper also covers each chaos scenario.
	checkNoLeaks(t, baseline)
}

// TestMixedFaultBatch is the robustness acceptance scenario: one healthy
// point, one panicking point, one unstable (saturating) point — the
// batch completes with per-point errors and truncation flags instead of
// collapsing.
func TestMixedFaultBatch(t *testing.T) {
	const panickyP = 0.45
	pts := []Point{
		{Label: "healthy", Cfg: simnet.Config{
			K: 2, Stages: 2, P: 0.3, Cycles: 2000, Warmup: 50,
		}},
		{Label: "panicky", Cfg: simnet.Config{
			K: 2, Stages: 2, P: panickyP, Cycles: 2000, Warmup: 50,
		}},
		{Label: "unstable", Cfg: simnet.Config{
			K: 2, Stages: 2, P: 0.7, Bulk: 2, Cycles: 2000, Warmup: 50,
			AllowUnstable: true, MaxInFlight: 300,
		}},
	}
	r := &Runner{
		RootSeed:     11,
		MaxRetries:   1,
		RetryBackoff: time.Millisecond,
		runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
			if cfg.P == panickyP {
				panic("injected fault")
			}
			return runEngineCtx(ctx, e, cfg)
		},
	}
	prs, err := r.Run(pts)
	if err == nil {
		t.Fatal("want batch error naming the panicking point")
	}
	byLabel := map[string]*PointResult{}
	for _, pr := range prs {
		byLabel[pr.Point.Label] = pr
	}

	if pr := byLabel["healthy"]; pr.Err != nil || pr.Agg == nil || pr.Truncated() {
		t.Fatalf("healthy point: err=%v agg=%v truncated=%v", pr.Err, pr.Agg, pr.Truncated())
	}
	var pe *PanicError
	if pr := byLabel["panicky"]; !errors.As(pr.Err, &pe) {
		t.Fatalf("panicky point: want *PanicError, got %v", pr.Err)
	}
	pr := byLabel["unstable"]
	if pr.Err != nil {
		t.Fatalf("unstable point must complete flagged, not fail: %v", pr.Err)
	}
	if !pr.Truncated() || pr.Agg == nil {
		t.Fatalf("unstable point: truncated=%v agg=%v", pr.Truncated(), pr.Agg)
	}
	res := pr.Result()
	if !res.Unstable || res.TruncatedAt <= 0 {
		t.Fatalf("unstable point result flags: %+v", res)
	}
}
