package sweep

import (
	"reflect"
	"testing"

	"banyan/internal/simnet"
)

// TestReferenceEngineHashesAsFast: the reference engine is byte-identical
// to the fast engine, so a point must hash — and therefore cache, seed
// and resume — identically under either; the literal engine simulates a
// different system and must not collide.
func TestReferenceEngineHashesAsFast(t *testing.T) {
	p := Point{Cfg: simnet.Config{K: 2, Stages: 4, P: 0.5, Cycles: 1000, Warmup: 100}}
	fast := Key(p, 0x5eed)
	p.Engine = Reference
	if got := Key(p, 0x5eed); got != fast {
		t.Fatalf("Key(Reference) = %016x, want Key(Fast) = %016x", got, fast)
	}
	if got := SeedFor(p, 0x5eed); got != SeedFor(Point{Cfg: p.Cfg}, 0x5eed) {
		t.Fatal("SeedFor differs between Fast and Reference")
	}
	p.Engine = Literal
	if got := Key(p, 0x5eed); got == fast {
		t.Fatal("Key(Literal) collides with Key(Fast)")
	}
}

// TestReferenceEngineSweepMatchesFast runs the same grid through the
// batch kernel and the scalar reference engine at sweep level — per-point
// seed derivation, replication pooling and all — and requires the full
// result sets to be deeply equal. This is the kernel's byte-identity
// contract exercised through the production call path rather than a
// hand-built stream.
func TestReferenceEngineSweepMatchesFast(t *testing.T) {
	grid := Grid{
		Ks: []int{2}, Ns: []int{4},
		Ps:     []float64{0.3, 0.6},
		Cycles: 800, Warmup: 100,
		Reps: 2,
	}
	pts, err := grid.Points()
	if err != nil {
		t.Fatal(err)
	}
	run := func(e Engine) []*PointResult {
		eps := make([]Point, len(pts))
		copy(eps, pts)
		for i := range eps {
			eps[i].Engine = e
		}
		r := &Runner{Parallelism: 2, RootSeed: 0x5eed}
		res, err := r.Run(eps)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast, ref := run(Fast), run(Reference)
	for i := range fast {
		if fast[i].Key != ref[i].Key || fast[i].Seed != ref[i].Seed {
			t.Fatalf("point %d: key/seed mismatch", i)
		}
		if !reflect.DeepEqual(fast[i].Runs, ref[i].Runs) {
			t.Fatalf("point %d (%s): reference engine diverges from fast\nfast %+v\nref  %+v",
				i, fast[i].Point.Label, fast[i].Runs, ref[i].Runs)
		}
	}
}

func TestEngineStrings(t *testing.T) {
	for e, want := range map[Engine]string{Fast: "fast", Literal: "literal", Reference: "reference"} {
		if got := e.String(); got != want {
			t.Errorf("Engine(%d).String() = %q, want %q", e, got, want)
		}
	}
}

// BenchmarkSweepReference runs benchGrid through the scalar reference
// engine: the same-binary baseline the batch kernel's speedup in
// BENCH_kernel.json is measured against.
func BenchmarkSweepReference(b *testing.B) {
	pts := benchGrid()
	for i := range pts {
		pts[i].Engine = Reference
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &Runner{Parallelism: 1, RootSeed: 0x5eed}
		if _, err := r.Run(pts); err != nil {
			b.Fatal(err)
		}
	}
}
