package sweep

import "sync"

// Cache stores completed sweep points by canonical config hash so that
// overlapping batches (or repeated Run calls on one Runner) simulate
// each distinct configuration once. Safe for concurrent use.
type Cache struct {
	mu   sync.Mutex
	m    map[uint64]*PointResult
	hits int64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: make(map[uint64]*PointResult)} }

func (c *Cache) get(key uint64) (*PointResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pr, ok := c.m[key]
	if ok {
		c.hits++
	}
	return pr, ok
}

func (c *Cache) put(key uint64, pr *PointResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = pr
}

// Len returns the number of cached points.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Hits returns the number of cache lookups that found a stored point.
func (c *Cache) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}
