package sweep

import (
	"math"
	"testing"

	"banyan/internal/simnet"
)

// FuzzPointKey checks the canonical-hash invariants the cache, the seed
// derivation and the checkpoint journal all rely on: the key is
// deterministic, insensitive to the label and to Cfg.Seed (both are
// explicitly excluded from a point's statistical identity), and
// sensitive to every field that is part of it.
func FuzzPointKey(f *testing.F) {
	f.Add(2, 3, 0.5, 1, 1000, uint64(1), "a")
	f.Add(4, 6, 0.9, 4, 5000, uint64(99), "tbl2/k4")
	f.Add(1, 1, 0.0, 0, 0, uint64(0), "")
	f.Add(8, 10, 0.25, 2, 1<<20, ^uint64(0), "boundary")
	f.Fuzz(func(t *testing.T, k, n int, p float64, bulk, cycles int, rootSeed uint64, label string) {
		base := Point{
			Label: label,
			Cfg: simnet.Config{
				K: k, Stages: n, P: p, Bulk: bulk, Cycles: cycles,
			},
		}
		key := pointKey(&base, rootSeed)
		if pointKey(&base, rootSeed) != key {
			t.Fatal("pointKey is not deterministic")
		}

		relabel := base
		relabel.Label = label + "x"
		if pointKey(&relabel, rootSeed) != key {
			t.Error("key depends on the label")
		}
		reseed := base
		reseed.Cfg.Seed = rootSeed + 1
		if pointKey(&reseed, rootSeed) != key {
			t.Error("key depends on Cfg.Seed")
		}

		// Every mutation below changes a field covered by the hash, so
		// each must change the key (FNV-1a collisions between a value and
		// a one-field mutation of it would break cache and journal).
		mutations := map[string]func(*Point){
			"rootless":    nil, // sentinel: rootSeed sensitivity, handled below
			"k":           func(q *Point) { q.Cfg.K++ },
			"stages":      func(q *Point) { q.Cfg.Stages++ },
			"bulk":        func(q *Point) { q.Cfg.Bulk++ },
			"cycles":      func(q *Point) { q.Cfg.Cycles++ },
			"warmup":      func(q *Point) { q.Cfg.Warmup++ },
			"buffercap":   func(q *Point) { q.Cfg.BufferCap++ },
			"maxrows":     func(q *Point) { q.Cfg.MaxRows++ },
			"engine":      func(q *Point) { q.Engine = Literal },
			"reps":        func(q *Point) { q.Reps = q.reps() + 1 },
			"unstable":    func(q *Point) { q.Cfg.AllowUnstable = !q.Cfg.AllowUnstable },
			"maxinflight": func(q *Point) { q.Cfg.MaxInFlight++ },
			"draincycles": func(q *Point) { q.Cfg.DrainCycles++ },
			"stagewaits":  func(q *Point) { q.Cfg.TrackStageWaits = !q.Cfg.TrackStageWaits },
			"occupancy":   func(q *Point) { q.Cfg.TrackOccupancy = !q.Cfg.TrackOccupancy },
		}
		for name, mutate := range mutations {
			if mutate == nil {
				continue
			}
			mut := base
			mutate(&mut)
			if pointKey(&mut, rootSeed) == key {
				t.Errorf("mutation %q does not change the key", name)
			}
		}
		if pointKey(&base, rootSeed^1) == key {
			t.Error("key does not depend on the root seed")
		}
		// Float fields mutate only when the new bit pattern differs
		// (p+0.5 is a no-op on NaN and ±Inf).
		newP := p + 0.5
		if math.Float64bits(newP) != math.Float64bits(p) {
			mut := base
			mut.Cfg.P = newP
			if pointKey(&mut, rootSeed) == key {
				t.Error("mutation of P does not change the key")
			}
		}
	})
}
