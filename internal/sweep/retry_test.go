package sweep

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"banyan/internal/simnet"
)

// TestBackoffJitterDeterministic: the retry delay is a pure function of
// (seed, rep, attempt) — reproducible across runs — stays inside the
// ±25% jitter band around the capped exponential, and decorrelates
// replications from each other.
func TestBackoffJitterDeterministic(t *testing.T) {
	r := &Runner{RetryBackoff: 100 * time.Millisecond}
	for attempt := 0; attempt < 8; attempt++ {
		shift := attempt
		if shift > 5 {
			shift = 5
		}
		base := (100 * time.Millisecond) << shift
		for rep := 0; rep < 4; rep++ {
			d := r.backoff(9, rep, attempt)
			if d != r.backoff(9, rep, attempt) {
				t.Fatalf("backoff(9,%d,%d) not deterministic", rep, attempt)
			}
			lo := time.Duration(float64(base) * 0.75)
			hi := time.Duration(float64(base) * 1.25)
			if d < lo || d >= hi {
				t.Fatalf("backoff(9,%d,%d) = %v outside [%v, %v)", rep, attempt, d, lo, hi)
			}
		}
	}
	if r.backoff(9, 0, 0) == r.backoff(9, 1, 0) && r.backoff(9, 0, 1) == r.backoff(9, 1, 1) {
		t.Fatal("jitter identical across replications — not decorrelated")
	}
	if r.backoff(9, 0, 0) == r.backoff(10, 0, 0) && r.backoff(9, 1, 1) == r.backoff(10, 1, 1) {
		t.Fatal("jitter identical across seeds — not decorrelated")
	}
}

// TestRetryBackoffCancelPrompt: cancellation during a retry backoff
// sleep returns promptly with the try's own error instead of waiting
// out the delay or burning the remaining attempts — the regression test
// for the uninterruptible-backoff bug.
func TestRetryBackoffCancelPrompt(t *testing.T) {
	pts := faultPoints(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("persistent fault")
	var attempts atomic.Int64
	r := &Runner{
		RootSeed:     9,
		Parallelism:  1,
		MaxRetries:   10,
		RetryBackoff: time.Minute, // without the ctx-aware sleep this test hangs
		runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
			if cfg.P == faultyP {
				if attempts.Add(1) == 1 {
					// Cancel while the runner is about to back off.
					go func() {
						time.Sleep(20 * time.Millisecond)
						cancel()
					}()
				}
				return nil, boom
			}
			return runEngineCtx(ctx, e, cfg)
		},
	}
	start := time.Now()
	_, err := r.RunCtx(ctx, pts)
	if err == nil {
		t.Fatal("want a batch error after cancellation")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation during backoff took %v — sleep not context-aware", elapsed)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("cancelled backoff must not retry: %d attempts", got)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("the failing try's own error must surface, got %v", err)
	}
}

// TestWatchdogConvertsStall: a replication that hangs is cancelled at
// the watchdog budget, converted to a retryable *StallError, and the
// retry recovers results identical to an unstalled run.
func TestWatchdogConvertsStall(t *testing.T) {
	pts := faultPoints(1)
	clean, err := (&Runner{RootSeed: 9}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	var stalls atomic.Int64
	r := &Runner{
		RootSeed:     9,
		MaxRetries:   1,
		RetryBackoff: time.Millisecond,
		Watchdog:     &Watchdog{Initial: 150 * time.Millisecond, Grace: 150 * time.Millisecond, Factor: 32},
		runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
			if cfg.P == faultyP && stalls.Add(1) == 1 {
				<-ctx.Done() // hang until the watchdog cancels the attempt
				return nil, ctx.Err()
			}
			return runEngineCtx(ctx, e, cfg)
		},
	}
	prs, err := r.Run(pts)
	if err != nil {
		t.Fatalf("watchdog retry should have recovered the batch: %v", err)
	}
	if !reflect.DeepEqual(resultsOf(prs), resultsOf(clean)) {
		t.Fatal("recovered results differ from the unstalled run")
	}
	snap := r.Counters().Snapshot()
	if snap.WatchdogFired < 1 {
		t.Fatalf("want at least one watchdog firing in counters, got %+v", snap)
	}
}

// TestWatchdogStallExhausts: a persistent hang fails its point with a
// typed *StallError once retries run out — never a silent batch hang.
func TestWatchdogStallExhausts(t *testing.T) {
	pts := faultPoints(1)
	r := &Runner{
		RootSeed:     9,
		MaxRetries:   1,
		RetryBackoff: time.Millisecond,
		Watchdog:     &Watchdog{Initial: 100 * time.Millisecond, Grace: 100 * time.Millisecond, Factor: 16},
		runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
			if cfg.P == faultyP {
				<-ctx.Done()
				return nil, ctx.Err()
			}
			return runEngineCtx(ctx, e, cfg)
		},
	}
	prs, err := r.Run(pts)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("want *StallError in the batch error, got %v", err)
	}
	if se.Budget <= 0 || se.Elapsed < se.Budget {
		t.Fatalf("stall error fields: elapsed=%v budget=%v", se.Elapsed, se.Budget)
	}
	for _, pr := range prs {
		if pr.Point.Cfg.P != faultyP {
			continue
		}
		if !errors.As(pr.Err, &se) {
			t.Fatalf("stalled point error = %v, want *StallError", pr.Err)
		}
		hasNote := false
		for _, note := range pr.Recovery {
			if note == "watchdog" {
				hasNote = true
			}
		}
		if !hasNote {
			t.Fatalf("stalled point missing the watchdog recovery note: %v", pr.Recovery)
		}
	}
}

// TestWatchdogBudgetTracksThroughput: the budget is Initial before any
// signal and Grace + Factor×recent once replications have completed.
func TestWatchdogBudgetTracksThroughput(t *testing.T) {
	w := &Watchdog{Initial: 2 * time.Second, Grace: 100 * time.Millisecond, Factor: 8}
	if got := w.budget(0); got != 2*time.Second {
		t.Fatalf("budget before signal = %v, want Initial", got)
	}
	if got := w.budget(50 * time.Millisecond); got != 100*time.Millisecond+8*50*time.Millisecond {
		t.Fatalf("budget with signal = %v", got)
	}
	var disarmed *Watchdog
	if got := disarmed.budget(time.Hour); got != 0 {
		t.Fatalf("nil watchdog budget = %v, want 0", got)
	}

	r := &Runner{}
	r.noteRepWall(100 * time.Millisecond)
	if got := time.Duration(r.repWall.Load()); got != 100*time.Millisecond {
		t.Fatalf("first sample = %v", got)
	}
	r.noteRepWall(200 * time.Millisecond)
	if got := time.Duration(r.repWall.Load()); got != 125*time.Millisecond {
		t.Fatalf("EWMA after 100ms,200ms = %v, want 125ms", got)
	}
}
