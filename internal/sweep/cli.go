package sweep

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// RunOptions bundles the fault-tolerance command-line flags shared by the
// repo's binaries (tables, figures, calibrate): overall and per-point
// wall-clock budgets, retries, and the checkpoint journal.
type RunOptions struct {
	// Timeout bounds the whole invocation (0 = none).
	Timeout time.Duration
	// PointBudget bounds each replication's wall-clock time (0 = none).
	PointBudget time.Duration
	// Checkpoint is the path of the resume journal ("" = no journal).
	Checkpoint string
	// Resume opts in to reusing a non-empty checkpoint journal.
	Resume bool
	// MaxRetries is the per-replication retry budget.
	MaxRetries int
}

// RegisterFlags installs the shared fault-tolerance flags on fs.
func (o *RunOptions) RegisterFlags(fs *flag.FlagSet) {
	fs.DurationVar(&o.Timeout, "timeout", 0, "stop the whole run after this wall-clock duration (e.g. 10m); partial work is checkpointed when -checkpoint is set")
	fs.DurationVar(&o.PointBudget, "point-budget", 0, "wall-clock budget per simulation replication (e.g. 30s); an over-budget point fails without aborting the batch")
	fs.StringVar(&o.Checkpoint, "checkpoint", "", "journal completed points to this file so an interrupted run can be resumed with -resume")
	fs.BoolVar(&o.Resume, "resume", false, "reuse the completed points already in the -checkpoint journal")
	fs.IntVar(&o.MaxRetries, "max-retries", 1, "retries per replication after a panic or simulation error")
}

// Apply configures the runner from the options and returns the run
// context — cancelled by SIGINT/SIGTERM or the -timeout — plus a cleanup
// function that releases the signal handler and closes the journal.
func (o *RunOptions) Apply(r *Runner) (context.Context, func(), error) {
	r.PointBudget = o.PointBudget
	r.MaxRetries = o.MaxRetries
	if o.Checkpoint != "" {
		j, err := SetupJournal(o.Checkpoint, o.Resume)
		if err != nil {
			return nil, nil, err
		}
		r.Journal = j
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	cancelTimeout := context.CancelFunc(func() {})
	if o.Timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, o.Timeout)
	}
	cleanup := func() {
		cancelTimeout()
		stop()
		if r.Journal != nil {
			r.Journal.Close()
		}
	}
	return ctx, cleanup, nil
}
