package sweep

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"banyan/internal/faultinject"
	"banyan/internal/obs"
	"banyan/internal/vr"
)

// RunOptions bundles the fault-tolerance and observability command-line
// flags shared by the repo's binaries (tables, figures, calibrate,
// report, extensions): overall and per-point wall-clock budgets,
// retries, the checkpoint journal, the structured event log, the live
// debug endpoint, and engine instrumentation.
type RunOptions struct {
	// Timeout bounds the whole invocation (0 = none).
	Timeout time.Duration
	// PointBudget bounds each replication's wall-clock time (0 = none).
	PointBudget time.Duration
	// Checkpoint is the path of the resume journal ("" = no journal).
	Checkpoint string
	// Resume opts in to reusing a non-empty checkpoint journal. Setting
	// it without Checkpoint is an error: there is nothing to resume
	// from, and silently ignoring the request is how half a sweep gets
	// recomputed unnoticed.
	Resume bool
	// MaxRetries is the per-replication retry budget.
	MaxRetries int
	// Lanes is the lock-step lane width for Fast-engine replications
	// (0 = auto, 1 = scalar kernel). Result-neutral; see Runner.Lanes.
	Lanes int
	// VR is the comma-separated variance-reduction technique list:
	// "crn", "cv", "anti" ("" or "off" = none). See vr.Parse.
	VR string
	// TargetCI, when positive, runs each point until the 95% CI
	// half-width of its mean-wait estimate is at most this (sequential
	// stopping on the vr.Plan checkpoint cadence).
	TargetCI float64
	// VRMaxReps caps adaptive growth under -target-ci (0 = the point's
	// configured replication count).
	VRMaxReps int
	// Chaos arms deterministic fault injection from a schedule spec —
	// "seed=N" for a derived schedule or explicit classes like
	// "rep.panic:prob=1;journal.torn:record=2" ("" = off). The armed
	// schedule is printed to stderr so any chaos run can be reproduced
	// verbatim. See faultinject.Parse.
	Chaos string
	// Watchdog arms the stalled-replication watchdog with this initial
	// per-attempt budget (0 = off); once replications complete, the
	// budget follows their recent wall times. See Watchdog.
	Watchdog time.Duration
	// CheckpointFsync is the journal durability cadence: fsync after
	// every N-th appended point (0 = only at close/compaction).
	CheckpointFsync int

	// EventsPath appends one JSON line per point lifecycle event
	// (started, retried, truncated, journaled, done, failed, cached,
	// resumed, aliased) to this file; "-" means stderr, "" disables.
	EventsPath string
	// LedgerOut writes the end-of-run accounting ledger (see RunLedger)
	// as JSON to this file at cleanup, and prints its text-table
	// rendition to stderr ("" = off). "-" writes the JSON to stdout.
	LedgerOut string
	// DebugAddr serves live observability over HTTP while the run
	// executes — /metrics (OpenMetrics), /debug/vars (expvar),
	// /debug/events (recent event ring), /debug/hist (live waiting-time
	// histograms), /debug/ts (sampled metric history), /debug/trace and
	// /debug/pprof — on this address ("" = off).
	DebugAddr string
	// TSInterval is the metric-history sampling cadence for /debug/ts
	// (0 = 1s). Only meaningful with DebugAddr.
	TSInterval time.Duration
	// SimStats attaches an engine probe to every simulation (free-list
	// hit rates, block pulls, cycles/sec, per-stage backlog high-water
	// marks) and prints its summary to stderr at cleanup.
	SimStats bool
	// TraceOut enables per-message trace sampling and dumps the
	// retained spans as JSON lines to this file at cleanup ("" = off).
	TraceOut string
	// TraceSample is the 1-in-N sampling rate for TraceOut (≤ 0 = 64).
	TraceSample int
	// DriftCheck compares each completed point's empirical per-stage
	// waiting-time distributions against the analytic model and emits a
	// drift event (plus per-stage KS gauges) when they diverge.
	DriftCheck bool
	// DriftThreshold overrides the drift monitor's KS trigger floor
	// (0 = the monitor's default).
	DriftThreshold float64

	srv *obs.DebugServer // started by Apply when DebugAddr is set
}

// DebugServer returns the live debug server started by Apply, or nil
// when -debug-addr was not set. Useful for discovering the bound
// address when the flag used port 0.
func (o *RunOptions) DebugServer() *obs.DebugServer { return o.srv }

// RegisterFlags installs the shared fault-tolerance and observability
// flags on fs.
func (o *RunOptions) RegisterFlags(fs *flag.FlagSet) {
	fs.DurationVar(&o.Timeout, "timeout", 0, "stop the whole run after this wall-clock duration (e.g. 10m); partial work is checkpointed when -checkpoint is set")
	fs.DurationVar(&o.PointBudget, "point-budget", 0, "wall-clock budget per simulation replication (e.g. 30s); an over-budget point fails without aborting the batch")
	fs.StringVar(&o.Checkpoint, "checkpoint", "", "journal completed points to this file so an interrupted run can be resumed with -resume")
	fs.BoolVar(&o.Resume, "resume", false, "reuse the completed points already in the -checkpoint journal")
	fs.IntVar(&o.MaxRetries, "max-retries", 1, "retries per replication after a panic or simulation error")
	fs.IntVar(&o.Lanes, "lanes", 0, "lock-step lane width: run this many replications of a point through one kernel invocation (0 = auto, 1 = scalar); never affects results")
	fs.StringVar(&o.VR, "vr", "", "variance-reduction techniques, comma-separated: crn (common random numbers across points), cv (control variates), anti (antithetic replication pairs)")
	fs.Float64Var(&o.TargetCI, "target-ci", 0, "run each point until the 95% CI half-width of its mean wait is at most this many cycles (0 = fixed replication count)")
	fs.IntVar(&o.VRMaxReps, "vr-max-reps", 0, "replication cap per point for -target-ci (0 = the point's configured count)")
	fs.StringVar(&o.Chaos, "chaos", "", "arm deterministic fault injection: \"seed=N\" or explicit classes like \"rep.panic:prob=1;journal.torn:record=2\"")
	fs.DurationVar(&o.Watchdog, "watchdog", 0, "arm the stalled-replication watchdog with this initial per-attempt budget (e.g. 30s); stalls convert to retryable errors")
	fs.IntVar(&o.CheckpointFsync, "checkpoint-fsync", 0, "fsync the -checkpoint journal after every N appended points (0 = only at close)")
	fs.StringVar(&o.EventsPath, "events", "", "append structured sweep events as JSON lines to this file (\"-\" = stderr)")
	fs.StringVar(&o.LedgerOut, "ledger-out", "", "write the end-of-run accounting ledger as JSON to this file (\"-\" = stdout) and print its text table to stderr")
	fs.StringVar(&o.DebugAddr, "debug-addr", "", "serve live /metrics (OpenMetrics), /debug/vars, /debug/events, /debug/hist, /debug/ts, /debug/trace and /debug/pprof on this address (e.g. :6060) while the run executes")
	fs.DurationVar(&o.TSInterval, "ts-interval", 0, "with -debug-addr: sampling cadence of the /debug/ts metric history (0 = 1s)")
	fs.BoolVar(&o.SimStats, "sim-stats", false, "collect simulator-internal statistics (free-list hit rate, per-stage backlog high water) and print a summary at exit")
	fs.StringVar(&o.TraceOut, "trace-out", "", "sample per-message trace spans and dump them as JSON lines to this file at exit")
	fs.IntVar(&o.TraceSample, "trace-sample", 64, "with -trace-out: trace one in N measured messages")
	fs.BoolVar(&o.DriftCheck, "drift-check", false, "compare each point's per-stage waiting times against the analytic model and emit drift events when they diverge")
	fs.Float64Var(&o.DriftThreshold, "drift-threshold", 0, "KS-distance trigger floor for -drift-check (0 = default)")
}

// Apply configures the runner from the options and returns the run
// context — cancelled by SIGINT/SIGTERM or the -timeout — plus a cleanup
// function that releases the signal handler, stops the debug server,
// flushes the event log, prints the -sim-stats summary, and closes the
// journal.
func (o *RunOptions) Apply(r *Runner) (context.Context, func(), error) {
	if o.Resume && o.Checkpoint == "" {
		return nil, nil, fmt.Errorf("sweep: -resume requires -checkpoint; there is no journal to resume from")
	}
	r.PointBudget = o.PointBudget
	r.MaxRetries = o.MaxRetries
	r.Lanes = o.Lanes
	plan, err := vr.Parse(o.VR)
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: -vr: %w", err)
	}
	if o.TargetCI > 0 {
		if plan == nil {
			plan = &vr.Plan{}
		}
		plan.TargetCI = o.TargetCI
		plan.MaxReps = o.VRMaxReps
	} else if o.VRMaxReps > 0 {
		return nil, nil, fmt.Errorf("sweep: -vr-max-reps requires -target-ci")
	}
	r.VR = plan
	if o.Chaos != "" {
		sched, err := faultinject.Parse(o.Chaos)
		if err != nil {
			return nil, nil, fmt.Errorf("sweep: -chaos: %w", err)
		}
		r.Fault = faultinject.New(sched)
		// The canonical spelling reproduces this exact schedule even when
		// the flag only named a seed.
		fmt.Fprintf(os.Stderr, "chaos: fault injection armed; reproduce with -chaos %q\n", sched.String())
	}
	if o.Watchdog > 0 {
		r.Watchdog = &Watchdog{Initial: o.Watchdog}
	}
	if o.Checkpoint != "" {
		j, err := SetupJournal(o.Checkpoint, o.Resume)
		if err != nil {
			return nil, nil, err
		}
		if o.CheckpointFsync > 0 {
			j.SetFsync(o.CheckpointFsync)
		}
		r.Journal = j
	}
	fail := func(err error) (context.Context, func(), error) {
		if r.Journal != nil {
			r.Journal.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
		}
		return nil, nil, err
	}

	var sinks obs.MultiSink
	var eventsFile *os.File
	if o.EventsPath != "" {
		w := io.Writer(os.Stderr)
		if o.EventsPath != "-" {
			f, err := os.Create(o.EventsPath)
			if err != nil {
				return fail(fmt.Errorf("sweep: open events log: %w", err))
			}
			eventsFile, w = f, f
		}
		sinks = append(sinks, obs.NewJSONLSink(w))
	}
	reg := obs.NewRegistry()
	r.Counters().Register(reg)
	if r.Fault != nil {
		reg.Func("fault.injected", func() float64 { return float64(r.Fault.Injected()) })
	}
	if o.SimStats || o.TraceOut != "" || o.DebugAddr != "" {
		r.Probe = obs.NewSimProbe()
		r.Probe.Register(reg)
	}
	if o.DebugAddr != "" {
		// Live waiting-time histograms back the /debug/hist endpoint and
		// the wait.* quantile gauges in /metrics.
		r.Probe.Hists = obs.NewHistSet()
		r.Probe.Hists.Register(reg, "wait")
	}
	if o.TraceOut != "" {
		r.Probe.Tracer = obs.NewTracer(o.TraceSample, 1<<16)
	}
	if o.DriftCheck {
		r.Drift = &DriftMonitor{Threshold: o.DriftThreshold}
		r.Drift.Register(reg)
	}
	if o.LedgerOut != "" {
		r.Ledger = NewLedgerCollector()
	}
	var srv *obs.DebugServer
	var tsdb *obs.TSDB
	if o.DebugAddr != "" {
		ring := obs.NewRingSink(256)
		sinks = append(sinks, ring)
		// Process-level read-outs (goroutines, heap, GC, CPU) and metric
		// history ride along with the live endpoint; both are
		// hash-excluded and result-neutral.
		obs.RegisterRuntimeMetrics(reg)
		reg.PublishExpvar("banyan")
		interval := o.TSInterval
		if interval <= 0 {
			interval = time.Second
		}
		// Two minutes of history at a 1s cadence; coarser cadences retain
		// proportionally more.
		tsdb = obs.NewTSDB(reg, 120)
		tsdb.Start(interval)
		s, err := obs.StartDebugServer(o.DebugAddr, obs.DebugOptions{
			Registry: reg,
			Events:   ring,
			Hists:    r.Probe.Hists,
			Tracer:   r.Probe.Tracer,
			TSDB:     tsdb,
		})
		if err != nil {
			tsdb.Stop()
			if eventsFile != nil {
				eventsFile.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
			}
			return fail(fmt.Errorf("sweep: debug server: %w", err))
		}
		srv, o.srv = s, s
		fmt.Fprintf(os.Stderr, "debug: serving /metrics, /debug/vars, /debug/events, /debug/hist, /debug/ts, /debug/trace and /debug/pprof on http://%s\n", s.Addr())
	} else if o.TSInterval > 0 {
		return fail(fmt.Errorf("sweep: -ts-interval requires -debug-addr"))
	}
	if len(sinks) > 0 {
		r.Events = sinks
	}
	if r.Fault != nil && r.Events != nil {
		r.Fault.OnInject = func(e faultinject.Error) {
			r.emit(obs.Event{
				Event:  obs.EventFaultInjected,
				Fault:  string(e.Class),
				Cycles: e.Cycle,
				Record: e.Record,
				Err:    e.Error(),
			})
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	cancelTimeout := context.CancelFunc(func() {})
	if o.Timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, o.Timeout)
	}
	cleanup := func() {
		cancelTimeout()
		stop()
		if tsdb != nil {
			tsdb.Stop()
		}
		if srv != nil {
			srv.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
		}
		if o.LedgerOut != "" {
			led := r.BuildLedger()
			w := io.Writer(os.Stdout)
			var f *os.File
			if o.LedgerOut != "-" {
				var err error
				if f, err = os.Create(o.LedgerOut); err != nil {
					fmt.Fprintf(os.Stderr, "sweep: ledger out: %v\n", err)
				} else {
					w = f
				}
			}
			if f != nil || o.LedgerOut == "-" {
				if err := led.WriteJSON(w); err != nil {
					fmt.Fprintf(os.Stderr, "sweep: ledger out: %v\n", err)
				}
			}
			if f != nil {
				f.Close() //nolint:errcheck // best-effort cleanup; the write error above is the one that matters
			}
			if err := led.WriteText(os.Stderr); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: ledger: %v\n", err)
			}
		}
		if o.SimStats && r.Probe != nil {
			r.Probe.WriteSummary(os.Stderr)
		}
		if o.TraceOut != "" && r.Probe != nil && r.Probe.Tracer != nil {
			if f, err := os.Create(o.TraceOut); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: trace out: %v\n", err)
			} else {
				if err := r.Probe.Tracer.WriteJSONL(f); err != nil {
					fmt.Fprintf(os.Stderr, "sweep: trace out: %v\n", err)
				}
				f.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
			}
		}
		if eventsFile != nil {
			eventsFile.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
		}
		if r.Journal != nil {
			// Compact through the atomic tmp+rename path: the final journal
			// is rewritten in one piece, repairing any torn tail a faulted
			// or interrupted append left behind.
			if err := r.Journal.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: checkpoint: %v\n", err)
			}
			r.Journal.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
		}
	}
	return ctx, cleanup, nil
}
