package sweep

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"banyan/internal/simnet"
)

// pointKey hashes a point's complete configuration — every field that
// affects the simulated statistics, plus engine, replication count and
// the runner's root seed — into the 64-bit canonical key used both for
// caching and per-point seed derivation. Cfg.Seed is deliberately
// excluded (the runner overrides it); Label is excluded too, so
// identically-configured points dedupe even under different names; and
// the pure observers Probe and WaitHists are excluded because attaching
// instrumentation must never change a point's identity, seed, or cached
// result.
func pointKey(p *Point, rootSeed uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wi := func(v int) { wu(uint64(int64(v))) }
	wf := func(v float64) { wu(math.Float64bits(v)) }
	wb := func(v bool) {
		if v {
			wu(1)
		} else {
			wu(0)
		}
	}

	wu(rootSeed)
	// Reference is byte-identical to Fast by construction (the kernel's
	// determinism contract), so the two share one identity: a result
	// cached under either engine is valid for the other, and both draw
	// the same per-point seed.
	eng := p.Engine
	if eng == Reference {
		eng = Fast
	}
	wi(int(eng))
	wi(p.reps())

	cfg := &p.Cfg
	wi(cfg.K)
	wi(cfg.Stages)
	wf(cfg.P)
	wi(cfg.Bulk)
	wf(cfg.Q)
	wf(cfg.HotModule)
	// The service law is identified by its PMF, so two Service values
	// built differently but describing the same distribution hash alike.
	probs := cfg.Service.PMF().Probs()
	wi(len(probs))
	for _, pr := range probs {
		wf(pr)
	}
	wb(cfg.ResampleService)
	wi(cfg.Cycles)
	wi(cfg.Warmup)
	if cfg.Burst != nil {
		wu(1)
		wf(cfg.Burst.POnRate)
		wf(cfg.Burst.POffRate)
	} else {
		wu(0)
	}
	wi(cfg.MaxRows)
	wb(cfg.TrackStageWaits)
	wb(cfg.TrackOccupancy)
	wi(cfg.BufferCap)
	// The saturation budgets determine where an unstable run truncates,
	// so they are part of the statistical identity of the point.
	wb(cfg.AllowUnstable)
	wi(cfg.MaxInFlight)
	wi(cfg.DrainCycles)
	// Graph-engine identity: wiring kind, per-stage buffer depths, link
	// failures and their policy all change the simulated numbers.
	// TrackSwitches and SatDepth only shape Result.SwitchSat, but a
	// cached result must carry the verdicts the point asked for, so they
	// are part of the identity too. SwitchWaitHists stays excluded —
	// attached instrumentation never changes what a point computes. The
	// whole block is appended only when some graph field is set: a
	// stage-model config hashes — and seeds — exactly as it did before
	// the graph engine existed, and a graph config always writes strictly
	// more bytes, so the two spaces cannot alias.
	if cfg.Topology != "" || len(cfg.StageBuffers) > 0 || len(cfg.FailLinks) > 0 ||
		cfg.FailPolicy != "" || cfg.TrackSwitches || cfg.SatDepth != 0 {
		ws := func(s string) {
			wi(len(s))
			h.Write([]byte(s))
		}
		ws(string(cfg.Topology))
		wi(len(cfg.StageBuffers))
		for _, b := range cfg.StageBuffers {
			wi(b)
		}
		wi(len(cfg.FailLinks))
		for _, f := range cfg.FailLinks {
			wi(f.Stage)
			wi(f.Row)
		}
		ws(cfg.FailPolicy)
		wb(cfg.TrackSwitches)
		wi(cfg.SatDepth)
	}
	return h.Sum64()
}

// Key exposes the canonical hash of a point under a given root seed —
// the value PointResult.Key reports and the Cache is addressed by.
func Key(p Point, rootSeed uint64) uint64 { return pointKey(&p, rootSeed) }

// SeedFor returns the base seed the runner would assign the point: the
// root seed split by the canonical key. Replication r then runs with
// simnet.SplitSeed(SeedFor(...), r).
func SeedFor(p Point, rootSeed uint64) uint64 {
	return simnet.SplitSeed(rootSeed, pointKey(&p, rootSeed))
}

// BatchKey hashes a whole batch's identity — every point's canonical
// key, in batch order, under the root seed. The journal binds itself to
// this hash (see Journal.bind): a resume whose flags hash differently
// is rejected with a typed error instead of silently re-running every
// point. Labels, probes and lane widths are excluded for the same
// reason they are excluded from pointKey.
func BatchKey(points []Point, rootSeed uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wu(rootSeed)
	for i := range points {
		wu(pointKey(&points[i], rootSeed))
	}
	return h.Sum64()
}
