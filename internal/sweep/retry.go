package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"banyan/internal/obs"
	"banyan/internal/simnet"
	"banyan/internal/stats"
)

// PanicError wraps a panic recovered from a simulation worker, so one
// faulty point surfaces as that point's error instead of tearing down
// the whole batch.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// defaultRetryBackoff is the base delay before the first retry when
// Runner.RetryBackoff is unset.
const defaultRetryBackoff = 50 * time.Millisecond

// backoff returns the capped exponential delay before retry attempt
// (attempt 0 = first retry): base·2^attempt, capped at 32×base.
func (r *Runner) backoff(attempt int) time.Duration {
	base := r.RetryBackoff
	if base <= 0 {
		base = defaultRetryBackoff
	}
	if attempt > 5 {
		attempt = 5
	}
	return base << attempt
}

// sleepCtx waits for d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// safeRun executes one replication with panic isolation and the
// per-replication wall-clock budget. A recovered panic is converted to a
// *PanicError; a PointBudget overrun surfaces as the engine's partial
// Truncated result plus context.DeadlineExceeded.
func (r *Runner) safeRun(ctx context.Context, e Engine, cfg *simnet.Config) (res *simnet.Result, err error) {
	if r.PointBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.PointBudget)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return r.engine()(ctx, e, cfg)
}

// attempt runs one replication to a final outcome: success, a truncated
// partial result, or a terminal error after MaxRetries capped-backoff
// retries. Cancellation and deadline overruns are never retried — the
// former is the caller stopping the batch, the latter would just burn
// the budget again.
func (r *Runner) attempt(ctx context.Context, pr *PointResult, rep int, cfg *simnet.Config) (*simnet.Result, error) {
	e := pr.Point.Engine
	for a := 0; ; a++ {
		res, err := r.safeRun(ctx, e, cfg)
		if err == nil ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			ctx.Err() != nil {
			return res, err
		}
		if a >= r.MaxRetries {
			return res, err
		}
		r.ctr.retried()
		ev := pointEvent(obs.EventPointRetried, pr)
		ev.Rep = rep
		ev.Attempt = a + 1
		ev.Err = err.Error()
		r.emit(ev)
		// The retry reuses cfg, so any partially filled drift histograms
		// from the failed attempt must be discarded. Entries are replaced
		// in place: the caller kept the slice and reads it afterwards.
		for i := range cfg.WaitHists {
			cfg.WaitHists[i] = &stats.Hist{}
		}
		sleepCtx(ctx, r.backoff(a))
	}
}

// safeRunLanes executes one lock-step lane group with panic isolation
// and the wall-clock budget. The budget applies per engine invocation,
// and a group is one invocation: W replications advance through one
// cycle loop, so they share one clock and one budget.
func (r *Runner) safeRunLanes(ctx context.Context, cfgs []*simnet.Config) (results []*simnet.Result, errs []error, panicErr error) {
	if r.PointBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.PointBudget)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			panicErr = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	results, errs = simnet.RunLanesCtx(ctx, cfgs)
	return results, errs, nil
}

// attemptLanes runs one lane group of consecutive replications to a
// final outcome, index-aligned with cfgs. A panic or any retryable lane
// error retries the whole group: the engines are deterministic, so the
// healthy lanes reproduce their results bit for bit and the group either
// converges or fails together. Cancellation and deadline overruns are
// never retried, exactly as in the scalar attempt.
func (r *Runner) attemptLanes(ctx context.Context, pr *PointResult, rep0 int, cfgs []*simnet.Config) ([]*simnet.Result, []error) {
	for a := 0; ; a++ {
		results, errs, panicErr := r.safeRunLanes(ctx, cfgs)
		if panicErr != nil {
			// The panic unwound the whole group: no lane has a usable
			// outcome, every replication carries the panic.
			results = make([]*simnet.Result, len(cfgs))
			errs = make([]error, len(cfgs))
			for i := range errs {
				errs[i] = panicErr
			}
		}
		retryable := false
		if ctx.Err() == nil {
			for _, err := range errs {
				if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
					retryable = true
					break
				}
			}
		}
		if !retryable || a >= r.MaxRetries {
			return results, errs
		}
		r.ctr.retried()
		ev := pointEvent(obs.EventPointRetried, pr)
		ev.Rep = rep0
		for _, err := range errs {
			if err != nil {
				ev.Err = err.Error()
				break
			}
		}
		r.emit(ev)
		// The retry reuses every lane's cfg; discard any partially filled
		// drift histograms, replacing entries in place as the scalar
		// attempt does.
		for _, cfg := range cfgs {
			for i := range cfg.WaitHists {
				cfg.WaitHists[i] = &stats.Hist{}
			}
		}
		sleepCtx(ctx, r.backoff(a))
	}
}

// engine returns the replication executor: the test hook when set, the
// real simulators otherwise.
func (r *Runner) engine() func(context.Context, Engine, *simnet.Config) (*simnet.Result, error) {
	if r.runRep != nil {
		return r.runRep
	}
	return runEngineCtx
}
