package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"banyan/internal/obs"
	"banyan/internal/simnet"
	"banyan/internal/stats"
)

// PanicError wraps a panic recovered from a simulation worker, so one
// faulty point surfaces as that point's error instead of tearing down
// the whole batch.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Unwrap exposes a panic value that was itself an error, so callers can
// errors.Is/As through a recovered panic — e.g. to recognise an
// injected faultinject.Error without string matching.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// defaultRetryBackoff is the base delay before the first retry when
// Runner.RetryBackoff is unset.
const defaultRetryBackoff = 50 * time.Millisecond

// backoff returns the delay before retry attempt (attempt 0 = first
// retry): base·2^attempt capped at 32×base, with deterministic ±25%
// jitter derived from the point seed, replication and attempt. The
// jitter decorrelates retry wake-ups across workers hammering a shared
// resource, and deriving it from the replication identity instead of a
// global RNG keeps runs reproducible: the same failure schedule sleeps
// the same delays.
func (r *Runner) backoff(seed uint64, rep, attempt int) time.Duration {
	base := r.RetryBackoff
	if base <= 0 {
		base = defaultRetryBackoff
	}
	shift := attempt
	if shift > 5 {
		shift = 5
	}
	d := base << shift
	u := simnet.SplitSeed(simnet.SplitSeed(seed, uint64(int64(rep))), uint64(int64(attempt)))
	frac := float64(u>>11) / (1 << 53) // uniform [0,1)
	return time.Duration(float64(d) * (0.75 + 0.5*frac))
}

// sleepCtx waits for d or until ctx is cancelled, whichever comes
// first, and reports the cancellation so retry loops abort promptly
// instead of burning the remaining attempts against a dead context.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// safeRun executes one replication with panic isolation and the
// per-replication wall-clock budget. A recovered panic is converted to a
// *PanicError; a PointBudget overrun surfaces as the engine's partial
// Truncated result plus context.DeadlineExceeded.
func (r *Runner) safeRun(ctx context.Context, e Engine, cfg *simnet.Config) (res *simnet.Result, err error) {
	if r.PointBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.PointBudget)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return r.engine()(ctx, e, cfg)
}

// attempt runs one replication to a final outcome: success, a truncated
// partial result, or a terminal error after MaxRetries jittered-backoff
// retries. Each try runs under the watchdog, so a hang converts into a
// retryable *StallError instead of blocking forever. Cancellation and
// deadline overruns are never retried — the former is the caller
// stopping the batch, the latter would just burn the budget again.
func (r *Runner) attempt(ctx context.Context, pr *PointResult, rep int, cfg *simnet.Config) (*simnet.Result, error) {
	e := pr.Point.Engine
	for a := 0; ; a++ {
		wctx, finish := r.withWatchdog(ctx, pr, rep)
		before := readCostSample()
		start := time.Now()
		res, err := r.safeRun(wctx, e, cfg)
		err = finish(err)
		wall := time.Since(start)
		// Every try is paid for, so every try is attributed — retries
		// included; a point's cost is what it actually spent, not what
		// its final attempt spent.
		r.addCost(pr, costDelta(before, readCostSample(), wall, runCycles(cfg, res)))
		if err == nil {
			r.noteRepWall(wall)
			return res, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			ctx.Err() != nil || a >= r.MaxRetries {
			return res, err
		}
		r.ctr.retried()
		r.noteRecovery(pr, "retry")
		ev := pointEvent(obs.EventPointRetried, pr)
		ev.Rep = rep
		ev.Attempt = a + 1
		ev.Err = err.Error()
		r.emit(ev)
		// The retry reuses cfg, so any partially filled drift histograms
		// from the failed attempt must be discarded. Entries are replaced
		// in place: the caller kept the slice and reads it afterwards.
		for i := range cfg.WaitHists {
			cfg.WaitHists[i] = &stats.Hist{}
		}
		if sleepCtx(ctx, r.backoff(pr.Seed, rep, a)) != nil {
			// Cancelled mid-backoff: surface the try's own error — it
			// names the actual failure; the caller's context check covers
			// the shutdown.
			return res, err
		}
	}
}

// safeRunLanes executes one lock-step lane group with panic isolation
// and the wall-clock budget. The budget applies per engine invocation,
// and a group is one invocation: W replications advance through one
// cycle loop, so they share one clock and one budget.
func (r *Runner) safeRunLanes(ctx context.Context, cfgs []*simnet.Config) (results []*simnet.Result, errs []error, panicErr error) {
	if r.PointBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.PointBudget)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			panicErr = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	results, errs = simnet.RunLanesCtx(ctx, cfgs)
	return results, errs, nil
}

// attemptLanes runs one lane group of consecutive replications to a
// final outcome, index-aligned with cfgs. The group gets exactly one
// lock-step try; any retryable failure — a panic, a lane error, a
// watchdog stall — degrades the whole group to scalar replications,
// each with its full independent retry budget. Degradation is the
// recovery path, not a penalty: the engines are deterministic and the
// fault plans are cached per replication, so the healthy lanes
// reproduce their results bit for bit at width 1, and only the actually
// faulty replication spends retries. Cancellation and deadline overruns
// are never retried, exactly as in the scalar attempt.
func (r *Runner) attemptLanes(ctx context.Context, pr *PointResult, rep0 int, cfgs []*simnet.Config) ([]*simnet.Result, []error) {
	wctx, finish := r.withWatchdog(ctx, pr, rep0)
	before := readCostSample()
	start := time.Now()
	results, errs, panicErr := r.safeRunLanes(wctx, cfgs)
	wall := time.Since(start)
	if panicErr != nil {
		// The panic unwound the whole group: no lane has a usable
		// outcome, every replication carries the panic.
		results = make([]*simnet.Result, len(cfgs))
		errs = make([]error, len(cfgs))
		for i := range errs {
			errs[i] = panicErr
		}
	}
	// One group invocation, one attribution: the whole group belongs to
	// one point, so its cost needs no per-lane split.
	var cycles int64
	for i, res := range results {
		cycles += runCycles(cfgs[i], res)
	}
	r.addCost(pr, costDelta(before, readCostSample(), wall, cycles))
	var groupErr error
	for _, err := range errs {
		if err != nil {
			groupErr = err
			break
		}
	}
	// finish converts a watchdog-cancelled group error into a retryable
	// *StallError; it must run even on success to stop the timer.
	groupErr = finish(groupErr)
	if groupErr == nil {
		// One group invocation advanced len(cfgs) replications through a
		// shared clock, so the per-replication cost is the group wall
		// time split evenly.
		r.noteRepWall(wall / time.Duration(len(cfgs)))
		return results, errs
	}
	if errors.Is(groupErr, context.Canceled) || errors.Is(groupErr, context.DeadlineExceeded) || ctx.Err() != nil {
		return results, errs
	}
	// Degrade: rerun every lane as a scalar replication. WaitHists are
	// reset first — the failed group partially filled them, and each
	// scalar attempt refills its lane's from scratch.
	r.ctr.laneDegraded()
	r.noteRecovery(pr, "degrade.lane_to_scalar")
	ev := pointEvent(obs.EventPointDegraded, pr)
	ev.Rep = rep0
	ev.Err = groupErr.Error()
	r.emit(ev)
	for _, cfg := range cfgs {
		for i := range cfg.WaitHists {
			cfg.WaitHists[i] = &stats.Hist{}
		}
	}
	for i, cfg := range cfgs {
		results[i], errs[i] = r.attempt(ctx, pr, rep0+i, cfg)
	}
	return results, errs
}

// engine returns the replication executor: the test hook when set, the
// real simulators otherwise.
func (r *Runner) engine() func(context.Context, Engine, *simnet.Config) (*simnet.Result, error) {
	if r.runRep != nil {
		return r.runRep
	}
	return runEngineCtx
}
