package sweep

import (
	"runtime/metrics"
	"time"

	"banyan/internal/obs"
	"banyan/internal/simnet"
)

// Per-point cost attribution: every simulation attempt is bracketed by
// a runtime/metrics sample, and the deltas — wall time, user CPU time,
// heap allocation bytes and objects — accumulate on the point being
// paid for, together with the cycles actually simulated. The
// attribution is hash-excluded and result-neutral: it never enters
// config hashing, cache keys, journals, or simulated numbers, so a run
// with cost accounting is bit-identical to one without (wall clocks are
// not reproducible, which is exactly why the resume journal must not
// carry them; the RunLedger artifact and point_done events are the cost
// record instead).
//
// Wall time is attributed exactly: each attempt's duration is added to
// exactly one point, so the ledger's per-point rows sum to the
// counters' totals to the nanosecond. CPU and allocation deltas are
// sampled from process-wide runtime/metrics counters, so under a
// parallel sweep concurrent workers overlap inside each other's deltas
// — they are best-effort attribution weights, not exact charges; their
// totals are still exact for the run as a whole.

// PointCost is the resource cost attributed to one sweep point across
// every attempt it took (including retries and degraded reruns).
type PointCost struct {
	WallNS       int64 `json:"wall_ns"`
	CPUNS        int64 `json:"cpu_ns"`
	AllocBytes   int64 `json:"alloc_bytes"`
	AllocObjects int64 `json:"alloc_objects"`
	// Cycles is the number of simulated cycles bought: warmup+measured
	// per completed replication, the truncation point for replications
	// stopped early.
	Cycles int64 `json:"cycles"`
	// Reps and ESS are the replications kept and the variance-reduced
	// effective sample size they amount to (ESS 0 without a VR plan).
	Reps int     `json:"reps"`
	ESS  float64 `json:"ess,omitempty"`
}

// add folds an attempt's delta into the accumulated cost.
func (c *PointCost) add(d PointCost) {
	c.WallNS += d.WallNS
	c.CPUNS += d.CPUNS
	c.AllocBytes += d.AllocBytes
	c.AllocObjects += d.AllocObjects
	c.Cycles += d.Cycles
}

// Digest converts the cost to the event-attachment form.
func (c *PointCost) Digest() *obs.CostDigest {
	if c == nil {
		return nil
	}
	return &obs.CostDigest{
		WallNS:       c.WallNS,
		CPUNS:        c.CPUNS,
		AllocBytes:   c.AllocBytes,
		AllocObjects: c.AllocObjects,
		Cycles:       c.Cycles,
		Reps:         c.Reps,
		ESS:          c.ESS,
	}
}

// costSample is one reading of the process-wide resource counters.
type costSample struct {
	cpuNS      int64
	allocBytes int64
	allocObjs  int64
}

// costKeys are the runtime/metrics counters an attempt is bracketed by.
var costKeys = []string{
	"/cpu/classes/user:cpu-seconds",
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
}

// readCostSample samples the process-wide counters.
func readCostSample() costSample {
	s := make([]metrics.Sample, len(costKeys))
	for i, k := range costKeys {
		s[i].Name = k
	}
	metrics.Read(s)
	out := costSample{}
	if s[0].Value.Kind() == metrics.KindFloat64 {
		out.cpuNS = int64(s[0].Value.Float64() * float64(time.Second))
	}
	if s[1].Value.Kind() == metrics.KindUint64 {
		out.allocBytes = int64(s[1].Value.Uint64())
	}
	if s[2].Value.Kind() == metrics.KindUint64 {
		out.allocObjs = int64(s[2].Value.Uint64())
	}
	return out
}

// costDelta builds an attempt's cost from its bracketing samples.
// Process-wide counters can only grow, but clamp anyway — an
// attribution layer must never report negative spend.
func costDelta(before, after costSample, wall time.Duration, cycles int64) PointCost {
	pos := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		return v
	}
	return PointCost{
		WallNS:       pos(int64(wall)),
		CPUNS:        pos(after.cpuNS - before.cpuNS),
		AllocBytes:   pos(after.allocBytes - before.allocBytes),
		AllocObjects: pos(after.allocObjs - before.allocObjs),
		Cycles:       pos(cycles),
	}
}

// runCycles is how many cycles one replication actually simulated: the
// truncation point when a guard or cancellation stopped it, the full
// warmup+measured span otherwise, 0 for a replication that produced
// nothing.
func runCycles(cfg *simnet.Config, res *simnet.Result) int64 {
	if res == nil {
		return 0
	}
	if res.Truncated {
		return res.TruncatedAt
	}
	return int64(cfg.Warmup) + int64(cfg.Cycles)
}

// addCost accumulates an attempt's cost on its point (under the notes
// lock — PointResult stays a plain copyable struct) and on the runner's
// totals.
func (r *Runner) addCost(pr *PointResult, d PointCost) {
	r.notesMu.Lock()
	if pr.Cost == nil {
		pr.Cost = &PointCost{}
	}
	pr.Cost.add(d)
	r.notesMu.Unlock()
	r.ctr.addCost(d)
}
