package sweep

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"banyan/internal/obs"
	"banyan/internal/simnet"
)

// TestTerminalAccountingInvariant is the regression test for the
// aliased-point accounting bug: in-batch duplicates used to reach no
// terminal counter at all, so PointsDone+PointsFailed never added up to
// PointsTotal. Every point must settle as exactly one of done, failed,
// or aliased — across fresh runs, cache-served reruns, and failures.
func TestTerminalAccountingInvariant(t *testing.T) {
	pts := quickPoints(2) // 3 distinct points × 2 reps
	batch := append(append([]Point{}, pts...),
		Point{Label: "alias-a", Cfg: pts[0].Cfg, Reps: pts[0].Reps},
		Point{Label: "alias-b", Cfg: pts[1].Cfg, Reps: pts[1].Reps},
	)
	r := &Runner{RootSeed: 7, Cache: NewCache()}
	prs, err := r.Run(batch)
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Counters().Snapshot()
	if !snap.Settled() {
		t.Fatalf("invariant violated after fresh run: done %d + failed %d + aliased %d != total %d",
			snap.PointsDone, snap.PointsFailed, snap.PointsAliased, snap.PointsTotal)
	}
	if snap.PointsDone != 3 || snap.PointsAliased != 2 || snap.PointsFailed != 0 {
		t.Fatalf("terminal split wrong: %+v", snap)
	}
	if snap.RepsTotal != 10 || snap.RepsDone != 6 {
		t.Fatalf("reps: total %d done %d, want 10/6 (aliases never simulate)", snap.RepsTotal, snap.RepsDone)
	}
	// Aliases share results but keep their own labels.
	if prs[3].Point.Label != "alias-a" || prs[3].Result() != prs[0].Result() {
		t.Fatalf("alias resolution broken: label %q", prs[3].Point.Label)
	}

	// Rerun the whole batch warm: first occurrences hit the cache,
	// duplicates alias; the invariant must keep holding cumulatively.
	if _, err := r.Run(batch); err != nil {
		t.Fatal(err)
	}
	snap = r.Counters().Snapshot()
	if !snap.Settled() {
		t.Fatalf("invariant violated after warm rerun: %+v", snap)
	}
	if snap.PointsCached != 3 || snap.PointsAliased != 4 || snap.PointsDone != 6 {
		t.Fatalf("warm rerun split wrong: %+v", snap)
	}
	if snap.RepsDone != 6 {
		t.Fatalf("warm rerun resimulated: RepsDone %d, want 6", snap.RepsDone)
	}
}

// TestInvariantWithFailures: failed and cancelled points also settle, so
// the invariant survives unhealthy batches.
func TestInvariantWithFailures(t *testing.T) {
	pts := quickPoints(2)
	r := &Runner{
		RootSeed: 7,
		runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
			if cfg.P == faultyP {
				return nil, errors.New("injected")
			}
			return runEngineCtx(ctx, e, cfg)
		},
	}
	if _, err := r.Run(pts); err == nil {
		t.Fatal("want batch error")
	}
	snap := r.Counters().Snapshot()
	if !snap.Settled() {
		t.Fatalf("invariant violated with failures: %+v", snap)
	}
	if snap.PointsFailed != 1 || snap.PointsDone != 2 {
		t.Fatalf("failure split wrong: %+v", snap)
	}

	// Cancellation before any work: every point settles as failed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r2 := &Runner{RootSeed: 7}
	if _, err := r2.RunCtx(ctx, pts); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	snap = r2.Counters().Snapshot()
	if !snap.Settled() {
		t.Fatalf("invariant violated under cancellation: %+v", snap)
	}
	if snap.PointsFailed != int64(len(pts)) {
		t.Fatalf("cancelled batch: %d failed, want %d", snap.PointsFailed, len(pts))
	}
}

// TestCacheHitRelabels is the regression test for the stale-label bug:
// a cross-batch cache hit used to return the PointResult verbatim, so a
// point swept under a new label in a later Run call came back wearing
// the first batch's label.
func TestCacheHitRelabels(t *testing.T) {
	base := quickPoints(1)[0]
	r := &Runner{RootSeed: 7, Cache: NewCache()}
	first, err := r.Run([]Point{base})
	if err != nil {
		t.Fatal(err)
	}
	renamed := base
	renamed.Label = "renamed"
	second, err := r.Run([]Point{renamed})
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Point.Label != "renamed" {
		t.Fatalf("cache hit kept stale label %q, want %q", second[0].Point.Label, "renamed")
	}
	if second[0].Result() != first[0].Result() {
		t.Fatal("relabelled cache hit was re-simulated")
	}
	// The cached entry itself must not have been mutated: the original
	// label still comes back for the original point.
	third, err := r.Run([]Point{base})
	if err != nil {
		t.Fatal(err)
	}
	if third[0].Point.Label != base.Label {
		t.Fatalf("cache entry corrupted: label %q, want %q", third[0].Point.Label, base.Label)
	}
}

// TestCountersBusyElapsed is the regression test for the idle-time bug:
// a shared Runner's start time was set once and never reset, so Elapsed
// (and the throughput derived from it) spanned the idle gaps between
// batches. Elapsed must cover only intervals with a batch in flight.
func TestCountersBusyElapsed(t *testing.T) {
	clk := time.Unix(50_000, 0)
	now := func() time.Time { return clk }
	var c Counters
	c.now = now
	c.msgMeter.Now = now
	c.repMeter.Now = now

	c.begin(1, 1)
	clk = clk.Add(2 * time.Second)
	c.end()
	clk = clk.Add(time.Hour) // idle gap — must not count
	if e := c.Snapshot().Elapsed; e != 2*time.Second {
		t.Fatalf("idle time leaked into Elapsed: %v, want 2s", e)
	}

	// Overlapping batches count wall-clock once, not per batch.
	c.begin(1, 1)
	clk = clk.Add(time.Second)
	c.begin(1, 1)
	clk = clk.Add(time.Second)
	c.end()
	if e := c.Snapshot().Elapsed; e != 4*time.Second {
		t.Fatalf("mid-batch Elapsed %v, want 4s", e)
	}
	c.end()
	clk = clk.Add(time.Hour)
	if e := c.Snapshot().Elapsed; e != 4*time.Second {
		t.Fatalf("final Elapsed %v, want 4s", e)
	}
}

// TestProgressRatesAndETA: the windowed rates and the remaining-work ETA
// under a synthetic clock.
func TestProgressRatesAndETA(t *testing.T) {
	clk := time.Unix(60_000, 0)
	now := func() time.Time { return clk }
	var c Counters
	c.now = now
	c.msgMeter.Now = now
	c.repMeter.Now = now

	c.begin(10, 10)
	for i := 0; i < 4; i++ {
		c.repDone(&simnet.Result{Messages: 100})
		clk = clk.Add(time.Second)
	}
	p := c.Snapshot()
	if p.RepsPerSec != 1 || p.MessagesPerSec != 100 {
		t.Fatalf("windowed rates: %g reps/s, %g msg/s, want 1 and 100", p.RepsPerSec, p.MessagesPerSec)
	}
	if p.ETA != 6*time.Second {
		t.Fatalf("ETA %v, want 6s (6 remaining reps at 1/s)", p.ETA)
	}
	// Settle the rest without simulating (as cache hits would): ETA
	// drops to zero even though RepsDone never reaches RepsTotal.
	for i := 0; i < 6; i++ {
		c.repSettled()
	}
	if p := c.Snapshot(); p.ETA != 0 {
		t.Fatalf("ETA %v after all reps settled, want 0", p.ETA)
	}
}

// TestRunnerEmitsEvents drives the full event lifecycle: started/done on
// fresh points, aliased on duplicates, journaled on checkpointing,
// cached and resumed on warm reruns.
func TestRunnerEmitsEvents(t *testing.T) {
	pts := quickPoints(1) // 3 points
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRingSink(64)
	r := &Runner{RootSeed: 7, Cache: NewCache(), Journal: j, Events: ring}
	batch := append(append([]Point{}, pts...), Point{Label: "alias", Cfg: pts[0].Cfg})
	if _, err := r.Run(batch); err != nil {
		t.Fatal(err)
	}
	kinds := func() map[string]int {
		m := map[string]int{}
		for _, ev := range ring.Events() {
			m[ev.Event]++
		}
		return m
	}
	k := kinds()
	if k[obs.EventPointStarted] != 3 || k[obs.EventPointDone] != 3 ||
		k[obs.EventPointJournaled] != 3 || k[obs.EventPointAliased] != 1 {
		t.Fatalf("cold-run event mix: %v", k)
	}
	for _, ev := range ring.Events() {
		if ev.Event == obs.EventPointDone {
			if ev.Label == "" || ev.Key == "" || ev.Seed == 0 || ev.Engine == "" || ev.Messages == 0 {
				t.Fatalf("done event missing identity fields: %+v", ev)
			}
		}
	}

	// Warm rerun on the same runner: cache hits.
	if _, err := r.Run(pts); err != nil {
		t.Fatal(err)
	}
	if k := kinds(); k[obs.EventPointCached] != 3 {
		t.Fatalf("warm-run event mix: %v", k)
	}
	j.Close()

	// New runner, reopened journal: resumed events.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ring2 := obs.NewRingSink(64)
	r2 := &Runner{RootSeed: 7, Journal: j2, Events: ring2}
	if _, err := r2.Run(pts); err != nil {
		t.Fatal(err)
	}
	resumed := 0
	for _, ev := range ring2.Events() {
		if ev.Event == obs.EventPointResumed {
			resumed++
		}
	}
	if resumed != 3 {
		t.Fatalf("resume run: %d resumed events, want 3", resumed)
	}
}

// TestRetryAndFailureEvents: retried and failed kinds carry the attempt
// number and the error.
func TestRetryAndFailureEvents(t *testing.T) {
	pts := quickPoints(1)
	ring := obs.NewRingSink(64)
	boom := errors.New("persistent fault")
	r := &Runner{
		RootSeed:     7,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		Events:       ring,
		runRep: func(ctx context.Context, e Engine, cfg *simnet.Config) (*simnet.Result, error) {
			if cfg.P == faultyP {
				return nil, boom
			}
			return runEngineCtx(ctx, e, cfg)
		},
	}
	if _, err := r.Run(pts); !errors.Is(err, boom) {
		t.Fatalf("want the injected fault, got %v", err)
	}
	retried, failed := 0, 0
	for _, ev := range ring.Events() {
		switch ev.Event {
		case obs.EventPointRetried:
			retried++
			if ev.Attempt != retried || ev.Err == "" {
				t.Fatalf("retry event malformed: %+v", ev)
			}
		case obs.EventPointFailed:
			failed++
			if ev.Err == "" {
				t.Fatalf("failed event missing error: %+v", ev)
			}
		}
	}
	if retried != 2 || failed != 1 {
		t.Fatalf("retried %d failed %d, want 2 and 1", retried, failed)
	}
}

// TestRunnerProbeThreading: a Runner-level probe reaches the engines and
// never perturbs results (the probe is excluded from config hashing).
func TestRunnerProbeThreading(t *testing.T) {
	pts := quickPoints(1)
	clean, err := (&Runner{RootSeed: 7}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	probe := obs.NewSimProbe()
	probed, err := (&Runner{RootSeed: 7, Probe: probe}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if clean[i].Key != probed[i].Key {
			t.Fatalf("probe changed the config key of point %d", i)
		}
		if clean[i].Result().MeanTotalWait() != probed[i].Result().MeanTotalWait() {
			t.Fatalf("probe changed the result of point %d", i)
		}
	}
	s := probe.Snapshot()
	if s.Runs != int64(len(pts)) || s.Messages == 0 {
		t.Fatalf("probe missed the sweep's runs: %+v", s)
	}
}
