package sweep

import (
	"fmt"
	"strconv"
	"sync"

	"banyan/internal/core"
	"banyan/internal/dist"
	"banyan/internal/obs"
	"banyan/internal/simnet"
	"banyan/internal/stages"
	"banyan/internal/stats"
	"banyan/internal/traffic"
)

// DefaultDriftThreshold is the KS-distance floor below which a point is
// never flagged, regardless of sample size. The stage-1 comparison is
// against the exact Theorem-1 distribution, but stages ≥ 2 are held
// against the Section IV gamma approximation, whose own model error
// reaches a few hundredths of KS distance at deep stages — the floor
// keeps that approximation error from tripping the monitor on perfectly
// healthy runs, while a genuinely mismatched model (wrong m or λ) moves
// the whole distribution and clears it easily.
const DefaultDriftThreshold = 0.15

// defaultDriftAlpha is the significance of the statistical component of
// the trigger (the sample-size-dependent KS critical value).
const defaultDriftAlpha = 0.01

// StageDrift is one stage's verdict in a drift check.
type StageDrift struct {
	Stage    int     // 1-based
	N        int64   // measured waits at this stage
	KS       float64 // empirical vs analytic KS distance
	Critical float64 // autocorrelation-corrected critical value
	Trigger  float64 // effective trigger: max(threshold floor, Critical)
	Drifted  bool    // KS > Trigger
}

// DriftReport is the outcome of checking one point.
type DriftReport struct {
	// Skipped is non-empty when the point has no analytic reference
	// model (bursty or hot-module traffic, resampled service, …); the
	// Stages slice is then empty.
	Skipped string
	Stages  []StageDrift
	Drifted bool
}

// MaxKS returns the report's worst per-stage statistic and its stage
// (0, 0 for a skipped report).
func (r *DriftReport) MaxKS() (stage int, ks float64) {
	for _, s := range r.Stages {
		if s.KS >= ks {
			stage, ks = s.Stage, s.KS
		}
	}
	return
}

// DriftMonitor compares a completed point's empirical per-stage
// waiting-time distributions against the analytic predictions — the
// exact Theorem-1 transform at stage 1, the Section IV moment
// approximations (as a discretized gamma) at stages ≥ 2 — turning the
// paper's theory into a runtime self-check: a sweep whose simulator,
// seeds, or configuration plumbing has been miswired drifts away from
// the model it is supposed to reproduce, and the monitor names the
// offending stage. Safe for concurrent use by the runner's workers.
type DriftMonitor struct {
	// Threshold is the KS floor below which no stage is flagged
	// (0 = DefaultDriftThreshold). The effective trigger per stage is
	// max(Threshold, critical value at Alpha for the stage's effective
	// sample size).
	Threshold float64
	// Alpha is the significance of the statistical trigger component
	// (0 = 0.01).
	Alpha float64
	// Reference, when non-nil, replaces the analytic model: it must
	// return the predicted waiting-time PMF for the given stage
	// (1-based) with at least the given support. The monitor's own
	// tests use it to verify a mismatched model is caught.
	Reference func(cfg *simnet.Config, stage, support int) (dist.PMF, error)

	mu      sync.Mutex
	reg     *obs.Registry
	lastKS  []float64 // most recent KS per stage (gauge backing)
	checked int64
	drifted int64
	skipped int64
}

func (d *DriftMonitor) floor() float64 {
	if d.Threshold > 0 {
		return d.Threshold
	}
	return DefaultDriftThreshold
}

func (d *DriftMonitor) alpha() float64 {
	if d.Alpha > 0 {
		return d.Alpha
	}
	return defaultDriftAlpha
}

// Register exposes the monitor in a metrics registry:
// drift.points_checked / drift.points_drifted / drift.points_skipped,
// plus one drift.stage<i>.ks gauge per stage (registered lazily as
// stages appear, holding the most recent KS distance).
func (d *DriftMonitor) Register(reg *obs.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reg = reg
	reg.Func("drift.points_checked", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(d.checked)
	})
	reg.Func("drift.points_drifted", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(d.drifted)
	})
	reg.Func("drift.points_skipped", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(d.skipped)
	})
	for i := range d.lastKS {
		d.registerStageLocked(i)
	}
}

// registerStageLocked registers the stage-i (0-based) KS gauge; the
// caller holds d.mu.
func (d *DriftMonitor) registerStageLocked(i int) {
	if d.reg == nil {
		return
	}
	d.reg.Func("drift.stage"+strconv.Itoa(i+1)+".ks", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		if i < len(d.lastKS) {
			return d.lastKS[i]
		}
		return 0
	})
}

// setKS publishes a stage's latest statistic, growing (and lazily
// registering) the gauge vector as deeper networks appear.
func (d *DriftMonitor) setKS(stage int, ks float64) { // 1-based
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.lastKS) < stage {
		d.lastKS = append(d.lastKS, 0)
		d.registerStageLocked(len(d.lastKS) - 1)
	}
	d.lastKS[stage-1] = ks
}

// DriftTotals is the monitor's cumulative verdict counts.
type DriftTotals struct {
	Checked int64 `json:"checked"`
	Drifted int64 `json:"drifted"`
	Skipped int64 `json:"skipped"`
}

// Totals returns the monitor's cumulative verdict counts (the ledger's
// drift section).
func (d *DriftMonitor) Totals() DriftTotals {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DriftTotals{Checked: d.checked, Drifted: d.drifted, Skipped: d.skipped}
}

func (d *DriftMonitor) account(rep *DriftReport) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if rep.Skipped != "" {
		d.skipped++
		return
	}
	d.checked++
	if rep.Drifted {
		d.drifted++
	}
}

// driftBulk mirrors simnet's bulk default (0 means 1).
func driftBulk(cfg *simnet.Config) int {
	if cfg.Bulk <= 0 {
		return 1
	}
	return cfg.Bulk
}

// driftService mirrors simnet's service default (zero value = unit).
func driftService(cfg *simnet.Config) traffic.Service {
	if cfg.Service.PMF().Support() == 0 {
		return traffic.UnitService()
	}
	return cfg.Service
}

// driftIneligible reports why a configuration has no analytic reference
// distribution ("" = checkable). The monitor checks exactly the
// configurations the paper models; everything else is counted as
// skipped rather than guessed at.
func driftIneligible(cfg *simnet.Config) string {
	if cfg.Burst != nil {
		return "bursty arrivals have no analytic waiting-time model"
	}
	if cfg.HotModule > 0 {
		return "hot-module traffic has no analytic waiting-time model"
	}
	if cfg.ResampleService {
		return "per-stage service resampling has no analytic waiting-time model"
	}
	if cfg.Stages > 1 {
		if driftBulk(cfg) > 1 {
			return "no Section IV model for bulk arrivals beyond stage 1"
		}
		if len(driftService(cfg).PMF().SortedSupport(0)) != 1 {
			return "no Section IV model for non-constant service beyond stage 1"
		}
	}
	return ""
}

// driftArrivals reconstructs the stage-1 arrival law of a configuration.
func driftArrivals(cfg *simnet.Config) (traffic.Arrivals, error) {
	b := driftBulk(cfg)
	if cfg.Q != 0 {
		return traffic.NonuniformExclusive(cfg.K, cfg.P, cfg.Q, b)
	}
	if b > 1 {
		return traffic.Bulk(cfg.K, cfg.K, cfg.P, b)
	}
	return traffic.Uniform(cfg.K, cfg.K, cfg.P)
}

// model returns the predicted waiting-time PMF for a stage (1-based)
// with at least the given support.
func (d *DriftMonitor) model(cfg *simnet.Config, stage, support int) (dist.PMF, error) {
	if d.Reference != nil {
		return d.Reference(cfg, stage, support)
	}
	if stage == 1 {
		arr, err := driftArrivals(cfg)
		if err != nil {
			return dist.PMF{}, err
		}
		an, err := core.New(arr, driftService(cfg))
		if err != nil {
			return dist.PMF{}, err
		}
		pmf, _, err := an.WaitDistribution(support)
		return pmf, err
	}
	// Stages ≥ 2: gamma matched to the Section IV moment approximations
	// (eligibility — constant service, no bulk — was checked upstream).
	m := driftService(cfg).PMF().SortedSupport(0)[0]
	if m < 1 {
		m = 1
	}
	pr := stages.Params{K: cfg.K, M: m, P: cfg.P, Q: cfg.Q}
	md := stages.DefaultModel()
	mean := md.StageMeanWait(pr, stage)
	variance := md.StageVarWait(pr, stage)
	if mean <= 0 || variance <= 0 {
		return dist.PointPMF(0), nil
	}
	g, err := dist.GammaFromMoments(mean, variance)
	if err != nil {
		return dist.PMF{}, err
	}
	return g.Discretize(support), nil
}

// mergeWaitHists pools per-replication stage histograms in replication
// order into one histogram per stage. It returns nil when drift data is
// absent or unusable: no histograms were collected, a replication's set
// is incomplete, or the point was truncated (a run stopped mid-stream
// measures a biased waiting-time sample that would register as
// spurious drift).
func mergeWaitHists(reps [][]*stats.Hist, nStages int, truncated bool) []*stats.Hist {
	if reps == nil || truncated || nStages <= 0 {
		return nil
	}
	merged := make([]*stats.Hist, nStages)
	for s := range merged {
		merged[s] = &stats.Hist{}
	}
	for _, wh := range reps {
		if len(wh) < nStages {
			return nil
		}
		for s := 0; s < nStages; s++ {
			merged[s].Merge(wh[s])
		}
	}
	return merged
}

// stageQuantiles digests merged per-stage histograms for attachment to
// point lifecycle events.
func stageQuantiles(hists []*stats.Hist) []obs.StageQuantiles {
	out := make([]obs.StageQuantiles, 0, len(hists))
	for i, h := range hists {
		out = append(out, obs.StageQuantiles{
			Stage: i + 1,
			N:     h.N(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		})
	}
	return out
}

// checkDrift runs the drift monitor on a completed point's merged
// histograms and emits one drift event per offending stage. The monitor
// is diagnostic-only: a modelling failure surfaces as a drift event
// carrying the error, never as a point failure.
func (r *Runner) checkDrift(pr *PointResult, merged []*stats.Hist) {
	rep, err := r.Drift.Check(&pr.Point.Cfg, merged)
	if err != nil {
		ev := pointEvent(obs.EventDrift, pr)
		ev.Err = err.Error()
		r.emit(ev)
		return
	}
	for _, sd := range rep.Stages {
		if !sd.Drifted {
			continue
		}
		ev := pointEvent(obs.EventDrift, pr)
		ev.Stage = sd.Stage
		ev.KS = sd.KS
		ev.Threshold = sd.Trigger
		r.emit(ev)
	}
}

// Check compares a point's merged per-stage waiting-time histograms
// (hists[i] = stage i+1) against the analytic model and returns the
// per-stage verdicts, updating the monitor's counters and gauges.
func (d *DriftMonitor) Check(cfg *simnet.Config, hists []*stats.Hist) (*DriftReport, error) {
	rep := &DriftReport{}
	if reason := driftIneligible(cfg); reason != "" {
		rep.Skipped = reason
		d.account(rep)
		return rep, nil
	}
	if len(hists) < cfg.Stages {
		return nil, fmt.Errorf("sweep: drift check needs %d stage histograms, got %d", cfg.Stages, len(hists))
	}
	// Utilization drives the effective-sample-size correction: waits at
	// one queue share busy periods, so N is shrunk by (1-ρ)/(1+ρ).
	rho := float64(driftBulk(cfg)) * cfg.P * driftService(cfg).Mean()
	for i := 0; i < cfg.Stages; i++ {
		h := hists[i]
		if h == nil || h.N() == 0 {
			return nil, fmt.Errorf("sweep: drift check: stage %d has no measured waits", i+1)
		}
		counts := h.Counts()
		support := len(counts) + 64
		if support < 256 {
			support = 256
		}
		model, err := d.model(cfg, i+1, support)
		if err != nil {
			return nil, fmt.Errorf("sweep: drift model for stage %d: %w", i+1, err)
		}
		kr, err := dist.OneSampleKS(counts, model, d.alpha(), rho)
		if err != nil {
			return nil, fmt.Errorf("sweep: drift check stage %d: %w", i+1, err)
		}
		trigger := d.floor()
		if kr.Critical > trigger {
			trigger = kr.Critical
		}
		sd := StageDrift{
			Stage:    i + 1,
			N:        h.N(),
			KS:       kr.KS,
			Critical: kr.Critical,
			Trigger:  trigger,
			Drifted:  kr.KS > trigger,
		}
		rep.Stages = append(rep.Stages, sd)
		rep.Drifted = rep.Drifted || sd.Drifted
		d.setKS(i+1, kr.KS)
	}
	d.account(rep)
	return rep, nil
}
