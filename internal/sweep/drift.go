package sweep

import (
	"fmt"
	"strconv"
	"sync"

	"banyan/internal/core"
	"banyan/internal/dist"
	"banyan/internal/obs"
	"banyan/internal/simnet"
	"banyan/internal/stages"
	"banyan/internal/stats"
	"banyan/internal/traffic"
)

// DefaultDriftThreshold is the KS-distance floor below which a point is
// never flagged, regardless of sample size. The stage-1 comparison is
// against the exact Theorem-1 distribution, but stages ≥ 2 are held
// against the Section IV gamma approximation, whose own model error
// reaches a few hundredths of KS distance at deep stages — the floor
// keeps that approximation error from tripping the monitor on perfectly
// healthy runs, while a genuinely mismatched model (wrong m or λ) moves
// the whole distribution and clears it easily.
const DefaultDriftThreshold = 0.15

// defaultDriftAlpha is the significance of the statistical component of
// the trigger (the sample-size-dependent KS critical value).
const defaultDriftAlpha = 0.01

// StageDrift is one stage's verdict in a drift check.
type StageDrift struct {
	Stage    int     // 1-based
	N        int64   // measured waits at this stage
	KS       float64 // empirical vs analytic KS distance
	Critical float64 // autocorrelation-corrected critical value
	Trigger  float64 // effective trigger: max(threshold floor, Critical)
	Drifted  bool    // KS > Trigger
}

// DriftReport is the outcome of checking one point.
type DriftReport struct {
	// Skipped is non-empty when the point has no analytic reference
	// model (bursty or hot-module traffic, resampled service, …); the
	// Stages slice is then empty.
	Skipped string
	Stages  []StageDrift
	Drifted bool
}

// MaxKS returns the report's worst per-stage statistic and its stage
// (0, 0 for a skipped report).
func (r *DriftReport) MaxKS() (stage int, ks float64) {
	for _, s := range r.Stages {
		if s.KS >= ks {
			stage, ks = s.Stage, s.KS
		}
	}
	return
}

// DriftMonitor compares a completed point's empirical per-stage
// waiting-time distributions against the analytic predictions — the
// exact Theorem-1 transform at stage 1, the Section IV moment
// approximations (as a discretized gamma) at stages ≥ 2 — turning the
// paper's theory into a runtime self-check: a sweep whose simulator,
// seeds, or configuration plumbing has been miswired drifts away from
// the model it is supposed to reproduce, and the monitor names the
// offending stage. Safe for concurrent use by the runner's workers.
type DriftMonitor struct {
	// Threshold is the KS floor below which no stage is flagged
	// (0 = DefaultDriftThreshold). The effective trigger per stage is
	// max(Threshold, critical value at Alpha for the stage's effective
	// sample size).
	Threshold float64
	// Alpha is the significance of the statistical trigger component
	// (0 = 0.01).
	Alpha float64
	// Reference, when non-nil, replaces the analytic model: it must
	// return the predicted waiting-time PMF for the given stage
	// (1-based) with at least the given support. The monitor's own
	// tests use it to verify a mismatched model is caught.
	Reference func(cfg *simnet.Config, stage, support int) (dist.PMF, error)

	mu      sync.Mutex
	reg     *obs.Registry
	lastKS  []float64 // most recent KS per stage (gauge backing)
	checked int64
	drifted int64
	skipped int64

	// Per-switch verdict counters (graph-engine points): individual
	// switch checks and how many of them drifted.
	swChecked int64
	swDrifted int64
}

func (d *DriftMonitor) floor() float64 {
	if d.Threshold > 0 {
		return d.Threshold
	}
	return DefaultDriftThreshold
}

func (d *DriftMonitor) alpha() float64 {
	if d.Alpha > 0 {
		return d.Alpha
	}
	return defaultDriftAlpha
}

// Register exposes the monitor in a metrics registry:
// drift.points_checked / drift.points_drifted / drift.points_skipped,
// plus one drift.stage<i>.ks gauge per stage (registered lazily as
// stages appear, holding the most recent KS distance).
func (d *DriftMonitor) Register(reg *obs.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reg = reg
	reg.Func("drift.points_checked", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(d.checked)
	})
	reg.Func("drift.points_drifted", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(d.drifted)
	})
	reg.Func("drift.points_skipped", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(d.skipped)
	})
	reg.Func("drift.switches_checked", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(d.swChecked)
	})
	reg.Func("drift.switches_drifted", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(d.swDrifted)
	})
	for i := range d.lastKS {
		d.registerStageLocked(i)
	}
}

// registerStageLocked registers the stage-i (0-based) KS gauge; the
// caller holds d.mu.
func (d *DriftMonitor) registerStageLocked(i int) {
	if d.reg == nil {
		return
	}
	d.reg.Func("drift.stage"+strconv.Itoa(i+1)+".ks", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		if i < len(d.lastKS) {
			return d.lastKS[i]
		}
		return 0
	})
}

// setKS publishes a stage's latest statistic, growing (and lazily
// registering) the gauge vector as deeper networks appear.
func (d *DriftMonitor) setKS(stage int, ks float64) { // 1-based
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.lastKS) < stage {
		d.lastKS = append(d.lastKS, 0)
		d.registerStageLocked(len(d.lastKS) - 1)
	}
	d.lastKS[stage-1] = ks
}

// DriftTotals is the monitor's cumulative verdict counts. The switch
// counters tally individual per-switch checks on graph-engine points
// (a point with s stages of w switches contributes up to s·w).
type DriftTotals struct {
	Checked         int64 `json:"checked"`
	Drifted         int64 `json:"drifted"`
	Skipped         int64 `json:"skipped"`
	SwitchesChecked int64 `json:"switches_checked,omitempty"`
	SwitchesDrifted int64 `json:"switches_drifted,omitempty"`
}

// Totals returns the monitor's cumulative verdict counts (the ledger's
// drift section).
func (d *DriftMonitor) Totals() DriftTotals {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DriftTotals{
		Checked: d.checked, Drifted: d.drifted, Skipped: d.skipped,
		SwitchesChecked: d.swChecked, SwitchesDrifted: d.swDrifted,
	}
}

func (d *DriftMonitor) account(rep *DriftReport) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if rep.Skipped != "" {
		d.skipped++
		return
	}
	d.checked++
	if rep.Drifted {
		d.drifted++
	}
}

// driftBulk mirrors simnet's bulk default (0 means 1).
func driftBulk(cfg *simnet.Config) int {
	if cfg.Bulk <= 0 {
		return 1
	}
	return cfg.Bulk
}

// driftService mirrors simnet's service default (zero value = unit).
func driftService(cfg *simnet.Config) traffic.Service {
	if cfg.Service.PMF().Support() == 0 {
		return traffic.UnitService()
	}
	return cfg.Service
}

// driftIneligible reports why a configuration has no analytic reference
// distribution ("" = checkable). The monitor checks exactly the
// configurations the paper models; everything else is counted as
// skipped rather than guessed at.
func driftIneligible(cfg *simnet.Config) string {
	if cfg.Burst != nil {
		return "bursty arrivals have no analytic waiting-time model"
	}
	if cfg.HotModule > 0 {
		return "hot-module traffic has no analytic waiting-time model"
	}
	if cfg.ResampleService {
		return "per-stage service resampling has no analytic waiting-time model"
	}
	if cfg.Stages > 1 {
		if driftBulk(cfg) > 1 {
			return "no Section IV model for bulk arrivals beyond stage 1"
		}
		if len(driftService(cfg).PMF().SortedSupport(0)) != 1 {
			return "no Section IV model for non-constant service beyond stage 1"
		}
	}
	return ""
}

// driftArrivals reconstructs the stage-1 arrival law of a configuration.
func driftArrivals(cfg *simnet.Config) (traffic.Arrivals, error) {
	b := driftBulk(cfg)
	if cfg.Q != 0 {
		return traffic.NonuniformExclusive(cfg.K, cfg.P, cfg.Q, b)
	}
	if b > 1 {
		return traffic.Bulk(cfg.K, cfg.K, cfg.P, b)
	}
	return traffic.Uniform(cfg.K, cfg.K, cfg.P)
}

// model returns the predicted waiting-time PMF for a stage (1-based)
// with at least the given support.
func (d *DriftMonitor) model(cfg *simnet.Config, stage, support int) (dist.PMF, error) {
	if d.Reference != nil {
		return d.Reference(cfg, stage, support)
	}
	if stage == 1 {
		arr, err := driftArrivals(cfg)
		if err != nil {
			return dist.PMF{}, err
		}
		an, err := core.New(arr, driftService(cfg))
		if err != nil {
			return dist.PMF{}, err
		}
		pmf, _, err := an.WaitDistribution(support)
		return pmf, err
	}
	// Stages ≥ 2: gamma matched to the Section IV moment approximations
	// (eligibility — constant service, no bulk — was checked upstream).
	m := driftService(cfg).PMF().SortedSupport(0)[0]
	if m < 1 {
		m = 1
	}
	pr := stages.Params{K: cfg.K, M: m, P: cfg.P, Q: cfg.Q}
	md := stages.DefaultModel()
	mean := md.StageMeanWait(pr, stage)
	variance := md.StageVarWait(pr, stage)
	if mean <= 0 || variance <= 0 {
		return dist.PointPMF(0), nil
	}
	g, err := dist.GammaFromMoments(mean, variance)
	if err != nil {
		return dist.PMF{}, err
	}
	return g.Discretize(support), nil
}

// mergeWaitHists pools per-replication stage histograms in replication
// order into one histogram per stage. It returns nil when drift data is
// absent or unusable: no histograms were collected, a replication's set
// is incomplete, or the point was truncated (a run stopped mid-stream
// measures a biased waiting-time sample that would register as
// spurious drift).
func mergeWaitHists(reps [][]*stats.Hist, nStages int, truncated bool) []*stats.Hist {
	if reps == nil || truncated || nStages <= 0 {
		return nil
	}
	merged := make([]*stats.Hist, nStages)
	for s := range merged {
		merged[s] = &stats.Hist{}
	}
	for _, wh := range reps {
		if len(wh) < nStages {
			return nil
		}
		for s := 0; s < nStages; s++ {
			merged[s].Merge(wh[s])
		}
	}
	return merged
}

// stageQuantiles digests merged per-stage histograms for attachment to
// point lifecycle events.
func stageQuantiles(hists []*stats.Hist) []obs.StageQuantiles {
	out := make([]obs.StageQuantiles, 0, len(hists))
	for i, h := range hists {
		out = append(out, obs.StageQuantiles{
			Stage: i + 1,
			N:     h.N(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		})
	}
	return out
}

// SwitchDrift is one switch's verdict in a per-switch drift check.
type SwitchDrift struct {
	Stage    int   // 1-based
	Switch   int   // 0-based within the stage
	N        int64 // measured waits at this switch's output ports
	KS       float64
	Critical float64
	Trigger  float64
	Drifted  bool
}

// SwitchDriftReport is the outcome of checking one graph-engine point
// switch by switch.
type SwitchDriftReport struct {
	// Skipped is non-empty when the configuration's per-switch loads are
	// not exchangeable (or no analytic model exists at all), so holding
	// each switch to the stage distribution would flag healthy runs.
	Skipped  string
	Switches []SwitchDrift
	Drifted  bool
}

// switchDriftIneligible reports why a configuration's switches cannot
// each be held to the analytic stage distribution ("" = checkable).
// Beyond the point-level eligibility, per-switch checks need uniform
// traffic over an intact, unbuffered network: anything that loads
// switches asymmetrically makes per-switch deviation expected.
func switchDriftIneligible(cfg *simnet.Config) string {
	if reason := driftIneligible(cfg); reason != "" {
		return reason
	}
	if cfg.Q != 0 {
		return "favorite-output traffic loads switches asymmetrically"
	}
	for _, b := range cfg.StageBuffers {
		if b > 0 {
			return "finite buffers distort per-switch waits through backpressure"
		}
	}
	if len(cfg.FailLinks) > 0 {
		return "link failures load the surviving switches asymmetrically"
	}
	return ""
}

// CheckSwitches compares each switch's pooled waiting-time histogram
// (hists[i][s] = stage i+1, switch s) against the analytic stage
// distribution — under uniform traffic every switch of a stage draws
// from the same law, so a single miswired switch stands out while the
// stage aggregate still averages clean. Switches with no measured
// waits are passed over rather than failed (short runs may miss a
// switch entirely).
func (d *DriftMonitor) CheckSwitches(cfg *simnet.Config, hists [][]*stats.Hist) (*SwitchDriftReport, error) {
	rep := &SwitchDriftReport{}
	if reason := switchDriftIneligible(cfg); reason != "" {
		rep.Skipped = reason
		return rep, nil
	}
	if len(hists) < cfg.Stages {
		return nil, fmt.Errorf("sweep: per-switch drift check needs %d stage rows, got %d", cfg.Stages, len(hists))
	}
	rho := float64(driftBulk(cfg)) * cfg.P * driftService(cfg).Mean()
	for i := 0; i < cfg.Stages; i++ {
		support := 256
		for _, h := range hists[i] {
			if h != nil && len(h.Counts())+64 > support {
				support = len(h.Counts()) + 64
			}
		}
		model, err := d.model(cfg, i+1, support)
		if err != nil {
			return nil, fmt.Errorf("sweep: drift model for stage %d: %w", i+1, err)
		}
		for id, h := range hists[i] {
			if h == nil || h.N() == 0 {
				continue
			}
			kr, err := dist.OneSampleKS(h.Counts(), model, d.alpha(), rho)
			if err != nil {
				return nil, fmt.Errorf("sweep: per-switch drift check stage %d switch %d: %w", i+1, id, err)
			}
			trigger := d.floor()
			if kr.Critical > trigger {
				trigger = kr.Critical
			}
			sd := SwitchDrift{
				Stage: i + 1, Switch: id, N: h.N(),
				KS: kr.KS, Critical: kr.Critical, Trigger: trigger,
				Drifted: kr.KS > trigger,
			}
			rep.Switches = append(rep.Switches, sd)
			rep.Drifted = rep.Drifted || sd.Drifted
		}
	}
	d.mu.Lock()
	d.swChecked += int64(len(rep.Switches))
	for _, sd := range rep.Switches {
		if sd.Drifted {
			d.swDrifted++
		}
	}
	d.mu.Unlock()
	return rep, nil
}

// mergeSwitchHists pools per-replication (stage, switch) histograms,
// under the same completeness rules as mergeWaitHists.
func mergeSwitchHists(reps [][][]*stats.Hist, nStages, nSwitches int, truncated bool) [][]*stats.Hist {
	if reps == nil || truncated || nStages <= 0 || nSwitches <= 0 {
		return nil
	}
	merged := make([][]*stats.Hist, nStages)
	for s := range merged {
		merged[s] = make([]*stats.Hist, nSwitches)
		for id := range merged[s] {
			merged[s][id] = &stats.Hist{}
		}
	}
	for _, wh := range reps {
		if len(wh) < nStages {
			return nil
		}
		for s := 0; s < nStages; s++ {
			if len(wh[s]) < nSwitches {
				return nil
			}
			for id := 0; id < nSwitches; id++ {
				merged[s][id].Merge(wh[s][id])
			}
		}
	}
	return merged
}

// checkSwitchDrift runs the per-switch monitor on a completed
// graph-engine point, emitting one drift event per offending switch.
func (r *Runner) checkSwitchDrift(pr *PointResult, merged [][]*stats.Hist) {
	rep, err := r.Drift.CheckSwitches(&pr.Point.Cfg, merged)
	if err != nil {
		ev := pointEvent(obs.EventDrift, pr)
		ev.Err = err.Error()
		r.emit(ev)
		return
	}
	for _, sd := range rep.Switches {
		if !sd.Drifted {
			continue
		}
		ev := pointEvent(obs.EventDrift, pr)
		ev.Stage = sd.Stage
		ev.Switch = sd.Switch + 1 // 1-based in events so switch 0 survives omitempty
		ev.KS = sd.KS
		ev.Threshold = sd.Trigger
		r.emit(ev)
	}
}

// checkDrift runs the drift monitor on a completed point's merged
// histograms and emits one drift event per offending stage. The monitor
// is diagnostic-only: a modelling failure surfaces as a drift event
// carrying the error, never as a point failure.
func (r *Runner) checkDrift(pr *PointResult, merged []*stats.Hist) {
	rep, err := r.Drift.Check(&pr.Point.Cfg, merged)
	if err != nil {
		ev := pointEvent(obs.EventDrift, pr)
		ev.Err = err.Error()
		r.emit(ev)
		return
	}
	for _, sd := range rep.Stages {
		if !sd.Drifted {
			continue
		}
		ev := pointEvent(obs.EventDrift, pr)
		ev.Stage = sd.Stage
		ev.KS = sd.KS
		ev.Threshold = sd.Trigger
		r.emit(ev)
	}
}

// Check compares a point's merged per-stage waiting-time histograms
// (hists[i] = stage i+1) against the analytic model and returns the
// per-stage verdicts, updating the monitor's counters and gauges.
func (d *DriftMonitor) Check(cfg *simnet.Config, hists []*stats.Hist) (*DriftReport, error) {
	rep := &DriftReport{}
	if reason := driftIneligible(cfg); reason != "" {
		rep.Skipped = reason
		d.account(rep)
		return rep, nil
	}
	if len(hists) < cfg.Stages {
		return nil, fmt.Errorf("sweep: drift check needs %d stage histograms, got %d", cfg.Stages, len(hists))
	}
	// Utilization drives the effective-sample-size correction: waits at
	// one queue share busy periods, so N is shrunk by (1-ρ)/(1+ρ).
	rho := float64(driftBulk(cfg)) * cfg.P * driftService(cfg).Mean()
	for i := 0; i < cfg.Stages; i++ {
		h := hists[i]
		if h == nil || h.N() == 0 {
			return nil, fmt.Errorf("sweep: drift check: stage %d has no measured waits", i+1)
		}
		counts := h.Counts()
		support := len(counts) + 64
		if support < 256 {
			support = 256
		}
		model, err := d.model(cfg, i+1, support)
		if err != nil {
			return nil, fmt.Errorf("sweep: drift model for stage %d: %w", i+1, err)
		}
		kr, err := dist.OneSampleKS(counts, model, d.alpha(), rho)
		if err != nil {
			return nil, fmt.Errorf("sweep: drift check stage %d: %w", i+1, err)
		}
		trigger := d.floor()
		if kr.Critical > trigger {
			trigger = kr.Critical
		}
		sd := StageDrift{
			Stage:    i + 1,
			N:        h.N(),
			KS:       kr.KS,
			Critical: kr.Critical,
			Trigger:  trigger,
			Drifted:  kr.KS > trigger,
		}
		rep.Stages = append(rep.Stages, sd)
		rep.Drifted = rep.Drifted || sd.Drifted
		d.setKS(i+1, kr.KS)
	}
	d.account(rep)
	return rep, nil
}
