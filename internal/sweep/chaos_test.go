package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"banyan/internal/faultinject"
	"banyan/internal/simnet"
)

// checkNoLeaks asserts the scenario released every resource it took:
// worker goroutines back to the pre-run count (polled briefly — exits
// race the runner's return) and every pooled simulation arena checked
// back in. Shared by the cancellation test and every chaos scenario.
func checkNoLeaks(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutine leak: %d before, %d after", baseline, n)
	}
	if live := simnet.ArenaLive(); live != 0 {
		t.Fatalf("arena leak: %d arenas still checked out", live)
	}
}

// chaosWatchdog is the aggressive watchdog every chaos scenario runs
// under: tight enough that an injected stall converts quickly, padded
// enough that a legitimate replication never trips it even under the
// race detector.
func chaosWatchdog() *Watchdog {
	return &Watchdog{Initial: 250 * time.Millisecond, Grace: 250 * time.Millisecond, Factor: 32}
}

// assertChaosTyped fails the test unless a chaos run's error is typed:
// an injected fault (directly, via a recovered panic, or via the
// journal's append wrapper) or a watchdog stall conversion. Anything
// else is silent-corruption territory.
func assertChaosTyped(t *testing.T, err error) {
	t.Helper()
	var se *StallError
	if !errors.Is(err, faultinject.ErrInjected) && !errors.As(err, &se) {
		t.Fatalf("chaos run failed with an untyped error: %v", err)
	}
}

// runChaosScenario is the battery's single-schedule contract check: the
// faulted run either completes bit-identical to the fault-free golden
// or fails typed — and in both cases a fault-free rerun against the
// surviving journal converges to the golden results, the repaired
// journal compacts cleanly, and nothing leaks.
func runChaosScenario(t *testing.T, sched *faultinject.Schedule, pts []Point, golden []byte, par, lanes int, expectFire bool) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	path := filepath.Join(t.TempDir(), "chaos.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(sched)
	r := &Runner{
		RootSeed: 7, Parallelism: par, Lanes: lanes,
		MaxRetries: 3, RetryBackoff: time.Millisecond,
		Watchdog: chaosWatchdog(),
		Journal:  j, Fault: inj,
	}
	prs, err := r.RunCtx(context.Background(), pts)
	j.Close()
	if err == nil {
		if !bytes.Equal(marshalRuns(t, prs), golden) {
			t.Fatal("chaos run completed but diverged from the fault-free golden")
		}
	} else {
		assertChaosTyped(t, err)
	}
	if expectFire && inj.Injected() == 0 {
		t.Fatal("scenario expected at least one injected fault, none fired")
	}

	// Recovery: reopen (open-time recovery drops any torn or corrupt
	// tail the faults left) and rerun fault-free. The journaled points
	// restore, the damaged ones resimulate, and the merged batch must be
	// bit-identical to the golden run.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after chaos run: %v", err)
	}
	r2 := &Runner{RootSeed: 7, Parallelism: par, Lanes: lanes, Journal: j2}
	prs2, err := r2.Run(pts)
	if err != nil {
		t.Fatalf("fault-free resume: %v", err)
	}
	// Byte-identical in the journal's own JSON encoding: the acceptance
	// bar for crash-safe resume.
	if !bytes.Equal(marshalRuns(t, prs2), golden) {
		t.Fatal("resumed results diverged from the fault-free golden")
	}
	if err := j2.Checkpoint(); err != nil {
		t.Fatalf("compacting the recovered journal: %v", err)
	}
	j2.Close()
	if reopened, err := OpenJournal(path); err != nil || reopened.Loaded() != len(pts) {
		t.Fatalf("compacted journal reload: loaded=%d err=%v", reopened.Loaded(), err)
	} else {
		reopened.Close()
	}
	checkNoLeaks(t, baseline)
}

// TestChaosBattery sweeps every fault class across parallelism × lane
// width: each run must complete bit-identical to the fault-free golden
// or fail typed and resume byte-identically — no hangs, no leaks, no
// silent corruption.
func TestChaosBattery(t *testing.T) {
	pts := quickPoints(2)
	clean, err := (&Runner{RootSeed: 7}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	golden := marshalRuns(t, clean)

	for _, class := range faultinject.Classes {
		for _, par := range []int{1, 4} {
			for _, lanes := range []int{1, 4} {
				class, par, lanes := class, par, lanes
				t.Run(fmt.Sprintf("%s/par=%d/lanes=%d", class, par, lanes), func(t *testing.T) {
					sched := &faultinject.Schedule{
						Seed:   42,
						Faults: []faultinject.Fault{{Class: class, Prob: 1}},
					}
					// The lane-group fault has no injection point in the
					// scalar kernel, so at width 1 it must stay silent; the
					// disk-full fault only fires on an explicit Checkpoint
					// (see TestChaosDiskFull).
					expectFire := (class != faultinject.LaneFail || lanes > 1) &&
						class != faultinject.JournalDiskFull
					runChaosScenario(t, sched, pts, golden, par, lanes, expectFire)
				})
			}
		}
	}
}

// TestChaosSeededSchedules runs the battery contract over derived
// schedules from pinned seeds — the same seeds CI pins — exercising
// fault combinations no hand-written scenario enumerates.
func TestChaosSeededSchedules(t *testing.T) {
	pts := quickPoints(2)
	clean, err := (&Runner{RootSeed: 7}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	golden := marshalRuns(t, clean)
	for _, seed := range []uint64{1, 7, 42, 1986} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sched := faultinject.FromSeed(seed)
			runChaosScenario(t, sched, pts, golden, 4, 4, false)
		})
	}
}

// TestChaosLaneDegradation: a failed lane group must rerun as scalar
// replications without consuming the per-replication retry budget
// (MaxRetries=0 here) and still converge to the fault-free results.
func TestChaosLaneDegradation(t *testing.T) {
	pts := quickPoints(2)
	clean, err := (&Runner{RootSeed: 7}).Run(pts)
	if err != nil {
		t.Fatal(err)
	}
	sched := &faultinject.Schedule{
		Seed:   3,
		Faults: []faultinject.Fault{{Class: faultinject.LaneFail, Prob: 1}},
	}
	r := &Runner{
		RootSeed: 7, Lanes: 4, MaxRetries: 0,
		Fault: faultinject.New(sched),
	}
	prs, err := r.Run(pts)
	if err != nil {
		t.Fatalf("degraded run must complete: %v", err)
	}
	if !reflect.DeepEqual(resultsOf(prs), resultsOf(clean)) {
		t.Fatal("degraded results diverged from the fault-free run")
	}
	snap := r.Counters().Snapshot()
	if snap.Degraded < 1 {
		t.Fatalf("want at least one lane-to-scalar degradation, got %+v", snap)
	}
	for _, pr := range prs {
		found := false
		for _, note := range pr.Recovery {
			if note == "degrade.lane_to_scalar" {
				found = true
			}
		}
		if !found {
			t.Fatalf("point %q missing the degradation recovery note: %v", pr.Point.Label, pr.Recovery)
		}
	}
}

// TestChaosDiskFull: an injected checkpoint failure surfaces typed and
// leaves the journal exactly as it was; once the one-shot fault is
// spent, compaction succeeds.
func TestChaosDiskFull(t *testing.T) {
	pts := quickPoints(1)
	path := filepath.Join(t.TempDir(), "chaos.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	sched := &faultinject.Schedule{
		Seed:   5,
		Faults: []faultinject.Fault{{Class: faultinject.JournalDiskFull}},
	}
	r := &Runner{RootSeed: 7, Journal: j, Fault: faultinject.New(sched)}
	if _, err := r.Run(pts); err != nil {
		t.Fatal(err)
	}
	ckErr := j.Checkpoint()
	if !errors.Is(ckErr, faultinject.ErrInjected) {
		t.Fatalf("want the injected disk-full error from Checkpoint, got %v", ckErr)
	}
	// The failed compaction must not have touched the journal on disk.
	j.Close()
	if reopened, err := OpenJournal(path); err != nil || reopened.Loaded() != len(pts) {
		t.Fatalf("journal after failed checkpoint: loaded=%d err=%v", reopened.Loaded(), err)
	} else {
		// The fault is one-shot per plan and this is a fresh journal
		// handle with the same armed plan object spent: a retried
		// compaction goes through.
		reopened.setFault(r.Fault.Journal())
		if err := reopened.Checkpoint(); err != nil {
			t.Fatalf("checkpoint retry after the one-shot fault: %v", err)
		}
		reopened.Close()
	}
}
