package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"banyan/internal/simnet"
	"banyan/internal/textplot"
)

// The run ledger is the end-of-run accounting artifact: one auditable
// document answering "where did this sweep's time, CPU and allocations
// go, what did caching and resumption save, what went wrong, and did
// the books balance". It is built from two independently maintained
// records — the per-point rows the LedgerCollector observed at each
// settle site, and the runner's Counters — and Reconcile cross-checks
// them: the settled-terminal invariant must hold, the rows' status
// counts must match the counters point for point, and the rows' cost
// columns must sum to the counters' attributed totals exactly (both
// sides are fed by the same addCost call sites, so any disagreement is
// a bookkeeping bug, not measurement noise). Wall clocks are not
// reproducible, so none of this ever touches results, hashes, caches,
// or the resume journal.

// LedgerStatus is the terminal state a ledger row records.
type LedgerStatus string

const (
	LedgerDone    LedgerStatus = "done"
	LedgerFailed  LedgerStatus = "failed"
	LedgerCached  LedgerStatus = "cached"
	LedgerResumed LedgerStatus = "resumed"
	LedgerAliased LedgerStatus = "aliased"
)

// LedgerRow is one settled point in the ledger.
type LedgerRow struct {
	Label  string       `json:"label"`
	Key    string       `json:"key"`
	Engine string       `json:"engine"`
	Status LedgerStatus `json:"status"`
	Reps   int          `json:"reps"`
	// Cost is the resource cost the point was attributed; nil for
	// cached/resumed/aliased rows — their price was paid elsewhere.
	Cost     *PointCost `json:"cost,omitempty"`
	Recovery []string   `json:"recovery,omitempty"`
	Err      string     `json:"err,omitempty"`
	// VR effectiveness, when the point carried an estimate.
	VarReduction float64 `json:"var_reduction,omitempty"`
	ESS          float64 `json:"ess,omitempty"`
	// SaturatedSwitches counts the distinct (stage, switch) pairs the
	// graph engine flagged saturated in any replication (points run with
	// Cfg.TrackSwitches; 0 otherwise).
	SaturatedSwitches int `json:"saturated_switches,omitempty"`
}

// LedgerCollector records every settled point of a run. Attach one to
// Runner.Ledger; safe for concurrent use by the runner's workers.
type LedgerCollector struct {
	mu   sync.Mutex
	rows []LedgerRow
}

// NewLedgerCollector returns an empty collector.
func NewLedgerCollector() *LedgerCollector { return &LedgerCollector{} }

// Observe records one settled point. The runner calls this at every
// settle site; tests may call it directly.
func (l *LedgerCollector) Observe(pr *PointResult, status LedgerStatus) {
	row := LedgerRow{
		Label:  pr.Point.Label,
		Key:    keyHex(pr.Key),
		Engine: pr.Point.Engine.String(),
		Status: status,
		Reps:   len(pr.Runs),
	}
	if pr.Cost != nil {
		c := *pr.Cost
		row.Cost = &c
	}
	if len(pr.Recovery) > 0 {
		row.Recovery = append([]string(nil), pr.Recovery...)
	}
	if pr.Err != nil {
		row.Err = pr.Err.Error()
	}
	if pr.VR != nil {
		row.VarReduction = pr.VR.VarReduction
		row.ESS = pr.VR.ESS
	}
	row.SaturatedSwitches = saturatedSwitchCount(pr.Runs)
	l.mu.Lock()
	l.rows = append(l.rows, row)
	l.mu.Unlock()
}

// saturatedSwitchCount counts the distinct (stage, switch) pairs the
// graph engine flagged saturated in any of the point's replications.
func saturatedSwitchCount(runs []*simnet.Result) int {
	var seen map[[2]int]bool
	for _, run := range runs {
		if run == nil {
			continue
		}
		for _, s := range run.SwitchSat {
			if !s.Saturated {
				continue
			}
			if seen == nil {
				seen = make(map[[2]int]bool)
			}
			seen[[2]int{s.Stage, s.Switch}] = true
		}
	}
	return len(seen)
}

// Rows returns a copy of the observed rows, in settle order.
func (l *LedgerCollector) Rows() []LedgerRow {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LedgerRow(nil), l.rows...)
}

// ledgerSchema names the artifact format; bump on breaking changes.
const ledgerSchema = "banyan.run_ledger/v1"

// ledgerTopK is how many most-expensive points the ledger highlights.
const ledgerTopK = 10

// RunLedger is the end-of-run accounting artifact (-ledger-out).
type RunLedger struct {
	Schema string `json:"schema"`

	Points struct {
		Total   int64 `json:"total"`
		Done    int64 `json:"done"` // includes cached+resumed, as in Counters
		Failed  int64 `json:"failed"`
		Aliased int64 `json:"aliased"`
		Cached  int64 `json:"cached"`
		Resumed int64 `json:"resumed"`
	} `json:"points"`

	Reps struct {
		Total     int64 `json:"total"`
		Simulated int64 `json:"simulated"`
		Truncated int64 `json:"truncated"`
		Messages  int64 `json:"messages"`
		Dropped   int64 `json:"dropped"`
	} `json:"reps"`

	Faults struct {
		Retries       int64 `json:"retries"`
		WatchdogFired int64 `json:"watchdog_fired"`
		Degraded      int64 `json:"degraded"`
	} `json:"faults"`

	// Cost is the attributed spend; BusyNS is the runner's busy
	// wall-clock (union of batch intervals), the denominator of
	// Utilization = WallNS / (BusyNS × Parallelism).
	Cost struct {
		WallNS       int64   `json:"wall_ns"`
		CPUNS        int64   `json:"cpu_ns"`
		AllocBytes   int64   `json:"alloc_bytes"`
		AllocObjects int64   `json:"alloc_objects"`
		Cycles       int64   `json:"cycles"`
		BusyNS       int64   `json:"busy_ns"`
		Parallelism  int     `json:"parallelism"`
		Utilization  float64 `json:"utilization"`
	} `json:"cost"`

	// Savings counts the points (and their replications) served without
	// simulation; EstSavedWallNS prices them at the run's own mean
	// per-replication wall cost — an estimate, clearly labelled as one.
	Savings struct {
		CachedPoints   int64 `json:"cached_points"`
		ResumedPoints  int64 `json:"resumed_points"`
		AliasedPoints  int64 `json:"aliased_points"`
		RepsAvoided    int64 `json:"reps_avoided"`
		EstSavedWallNS int64 `json:"est_saved_wall_ns"`
	} `json:"savings"`

	// VR summarizes variance-reduction effectiveness over the points
	// that carried estimates; nil when none did.
	VR *struct {
		Points           int     `json:"points"`
		MeanVarReduction float64 `json:"mean_var_reduction"`
		TotalReps        int64   `json:"total_reps"`
		TotalESS         float64 `json:"total_ess"`
	} `json:"vr,omitempty"`

	// Drift carries the monitor's verdict totals; nil without a monitor.
	Drift *DriftTotals `json:"drift,omitempty"`

	// TopK lists the most expensive fresh points by wall time.
	TopK []LedgerRow `json:"top_k"`
	// Rows is the full settle-ordered audit trail.
	Rows []LedgerRow `json:"rows"`

	// Reconciled reports whether the rows and the counters tell the same
	// story; Note names the first discrepancy when they do not.
	Reconciled bool   `json:"reconciled"`
	Note       string `json:"note,omitempty"`
}

// BuildLedger assembles the run ledger from the runner's collector,
// counters, and (when attached) drift monitor. It requires
// Runner.Ledger to have been set before the run; without one the
// ledger still carries the counter totals, with no rows and a note.
func (r *Runner) BuildLedger() *RunLedger {
	led := &RunLedger{Schema: ledgerSchema}
	p := r.ctr.Snapshot()

	led.Points.Total = p.PointsTotal
	led.Points.Done = p.PointsDone
	led.Points.Failed = p.PointsFailed
	led.Points.Aliased = p.PointsAliased
	led.Points.Cached = p.PointsCached
	led.Points.Resumed = p.PointsResumed

	led.Reps.Total = p.RepsTotal
	led.Reps.Simulated = p.RepsDone
	led.Reps.Truncated = p.Truncated
	led.Reps.Messages = p.Messages
	led.Reps.Dropped = p.Dropped

	led.Faults.Retries = p.Retries
	led.Faults.WatchdogFired = p.WatchdogFired
	led.Faults.Degraded = p.Degraded

	led.Cost.WallNS = p.CostWallNS
	led.Cost.CPUNS = p.CostCPUNS
	led.Cost.AllocBytes = p.CostAllocBytes
	led.Cost.AllocObjects = p.CostAllocObjects
	led.Cost.Cycles = p.CostCycles
	led.Cost.BusyNS = int64(p.Elapsed)
	led.Cost.Parallelism = r.parallelism()
	if denom := float64(led.Cost.BusyNS) * float64(led.Cost.Parallelism); denom > 0 {
		led.Cost.Utilization = float64(led.Cost.WallNS) / denom
	}

	if r.Drift != nil {
		t := r.Drift.Totals()
		led.Drift = &t
	}

	if r.Ledger == nil {
		led.Note = "no LedgerCollector attached: counter totals only, rows not recorded"
		led.Reconciled = false
		return led
	}
	led.Rows = r.Ledger.Rows()

	var fresh []LedgerRow
	var freshReps int64
	var vrPoints int
	var vrSumRed, vrSumESS float64
	var vrReps int64
	for _, row := range led.Rows {
		switch row.Status {
		case LedgerCached:
			led.Savings.CachedPoints++
			led.Savings.RepsAvoided += int64(row.Reps)
		case LedgerResumed:
			led.Savings.ResumedPoints++
			led.Savings.RepsAvoided += int64(row.Reps)
		case LedgerAliased:
			led.Savings.AliasedPoints++
			led.Savings.RepsAvoided += int64(row.Reps)
		default:
			fresh = append(fresh, row)
			freshReps += int64(row.Reps)
		}
		if row.ESS > 0 {
			vrPoints++
			vrSumRed += row.VarReduction
			vrSumESS += row.ESS
			vrReps += int64(row.Reps)
		}
	}
	if freshReps > 0 {
		meanRepWall := float64(led.Cost.WallNS) / float64(freshReps)
		led.Savings.EstSavedWallNS = int64(meanRepWall * float64(led.Savings.RepsAvoided))
	}
	if vrPoints > 0 {
		led.VR = &struct {
			Points           int     `json:"points"`
			MeanVarReduction float64 `json:"mean_var_reduction"`
			TotalReps        int64   `json:"total_reps"`
			TotalESS         float64 `json:"total_ess"`
		}{
			Points:           vrPoints,
			MeanVarReduction: vrSumRed / float64(vrPoints),
			TotalReps:        vrReps,
			TotalESS:         vrSumESS,
		}
	}

	sort.SliceStable(fresh, func(i, j int) bool {
		var wi, wj int64
		if fresh[i].Cost != nil {
			wi = fresh[i].Cost.WallNS
		}
		if fresh[j].Cost != nil {
			wj = fresh[j].Cost.WallNS
		}
		return wi > wj
	})
	if len(fresh) > ledgerTopK {
		fresh = fresh[:ledgerTopK]
	}
	led.TopK = fresh

	led.Reconciled, led.Note = reconcile(led, p)
	return led
}

// reconcile cross-checks the ledger's rows against the counters. Both
// records are written at the same call sites, so every check is exact:
// tolerance would only hide bugs.
func reconcile(led *RunLedger, p Progress) (bool, string) {
	if !p.Settled() {
		return false, fmt.Sprintf("settled invariant violated: done %d + failed %d + aliased %d != total %d",
			p.PointsDone, p.PointsFailed, p.PointsAliased, p.PointsTotal)
	}
	var n = map[LedgerStatus]int64{}
	var wall, cpu, ab, ao, cyc int64
	for _, row := range led.Rows {
		n[row.Status]++
		if row.Cost != nil {
			wall += row.Cost.WallNS
			cpu += row.Cost.CPUNS
			ab += row.Cost.AllocBytes
			ao += row.Cost.AllocObjects
			cyc += row.Cost.Cycles
		}
	}
	checks := []struct {
		name      string
		got, want int64
	}{
		{"fresh done rows", n[LedgerDone], p.PointsDone - p.PointsCached - p.PointsResumed},
		{"failed rows", n[LedgerFailed], p.PointsFailed},
		{"cached rows", n[LedgerCached], p.PointsCached},
		{"resumed rows", n[LedgerResumed], p.PointsResumed},
		{"aliased rows", n[LedgerAliased], p.PointsAliased},
		{"row wall_ns sum", wall, p.CostWallNS},
		{"row cpu_ns sum", cpu, p.CostCPUNS},
		{"row alloc_bytes sum", ab, p.CostAllocBytes},
		{"row alloc_objects sum", ao, p.CostAllocObjects},
		{"row cycles sum", cyc, p.CostCycles},
	}
	for _, c := range checks {
		if c.got != c.want {
			return false, fmt.Sprintf("%s %d != counters %d", c.name, c.got, c.want)
		}
	}
	return true, ""
}

// WriteJSON renders the ledger as indented JSON.
func (led *RunLedger) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(led)
}

// WriteText renders the ledger as aligned text tables — the terminal
// rendition of the same accounting.
func (led *RunLedger) WriteText(w io.Writer) error {
	status := "RECONCILED"
	if !led.Reconciled {
		status = "NOT RECONCILED"
		if led.Note != "" {
			status += ": " + led.Note
		}
	}
	if _, err := fmt.Fprintf(w, "run ledger (%s) — %s\n\n", led.Schema, status); err != nil {
		return err
	}
	i := func(v int64) string { return fmt.Sprintf("%d", v) }
	d := func(ns int64) string { return time.Duration(ns).Round(time.Microsecond).String() }
	if err := textplot.Table(w, "points", []string{"total", "done", "failed", "aliased", "cached", "resumed"},
		[][]string{{i(led.Points.Total), i(led.Points.Done), i(led.Points.Failed),
			i(led.Points.Aliased), i(led.Points.Cached), i(led.Points.Resumed)}}); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := textplot.Table(w, "cost", []string{"wall", "cpu", "alloc", "objects", "cycles", "busy", "util"},
		[][]string{{d(led.Cost.WallNS), d(led.Cost.CPUNS), fmt.Sprintf("%dB", led.Cost.AllocBytes),
			i(led.Cost.AllocObjects), i(led.Cost.Cycles), d(led.Cost.BusyNS),
			fmt.Sprintf("%.0f%%", led.Cost.Utilization*100)}}); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := textplot.Table(w, "savings / faults",
		[]string{"cached", "resumed", "aliased", "reps avoided", "est saved", "retries", "watchdog", "degraded"},
		[][]string{{i(led.Savings.CachedPoints), i(led.Savings.ResumedPoints), i(led.Savings.AliasedPoints),
			i(led.Savings.RepsAvoided), d(led.Savings.EstSavedWallNS),
			i(led.Faults.Retries), i(led.Faults.WatchdogFired), i(led.Faults.Degraded)}}); err != nil {
		return err
	}
	if led.VR != nil {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := textplot.Table(w, "variance reduction", []string{"points", "mean reduction", "reps", "ess"},
			[][]string{{i(int64(led.VR.Points)), fmt.Sprintf("%.2fx", led.VR.MeanVarReduction),
				i(led.VR.TotalReps), fmt.Sprintf("%.1f", led.VR.TotalESS)}}); err != nil {
			return err
		}
	}
	if led.Drift != nil {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := textplot.Table(w, "drift", []string{"checked", "drifted", "skipped", "switches", "sw drifted"},
			[][]string{{i(led.Drift.Checked), i(led.Drift.Drifted), i(led.Drift.Skipped),
				i(led.Drift.SwitchesChecked), i(led.Drift.SwitchesDrifted)}}); err != nil {
			return err
		}
	}
	var satRows [][]string
	for _, row := range led.Rows {
		if row.SaturatedSwitches > 0 {
			satRows = append(satRows, []string{row.Label, row.Engine, i(int64(row.SaturatedSwitches))})
		}
	}
	if len(satRows) > 0 {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := textplot.Table(w, "saturated switches", []string{"label", "engine", "switches"}, satRows); err != nil {
			return err
		}
	}
	if len(led.TopK) > 0 {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		rows := make([][]string, 0, len(led.TopK))
		for _, row := range led.TopK {
			var wallNS, cpuNS, cycles int64
			if row.Cost != nil {
				wallNS, cpuNS, cycles = row.Cost.WallNS, row.Cost.CPUNS, row.Cost.Cycles
			}
			rows = append(rows, []string{
				row.Label, string(row.Status), i(int64(row.Reps)),
				d(wallNS), d(cpuNS), i(cycles),
			})
		}
		if err := textplot.Table(w, "most expensive points",
			[]string{"label", "status", "reps", "wall", "cpu", "cycles"}, rows); err != nil {
			return err
		}
	}
	return nil
}
