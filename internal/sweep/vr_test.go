package sweep

import (
	"bytes"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"banyan/internal/vr"
)

// vrBatteryPoints is a small grid with enough replications for the
// adaptive rules to have room to move.
func vrBatteryPoints(reps int) []Point {
	g := Grid{
		Ks: []int{2}, Ns: []int{4},
		Ps:     []float64{0.3, 0.55, 0.8},
		Cycles: 1200, Warmup: 150,
		Reps: reps,
	}
	pts, err := g.Points()
	if err != nil {
		panic(err)
	}
	return pts
}

// TestVROffBitIdentical pins the central contract of the VR layer: a
// nil plan and the zero plan reproduce the no-VR sweep bit for bit —
// same keys, same seeds, same per-replication results, same pooled
// statistics (the golden values) — and attach no estimate.
func TestVROffBitIdentical(t *testing.T) {
	base := &Runner{Parallelism: 4, RootSeed: 0x5eed}
	want, err := base.Run(goldenSweepPoints())
	if err != nil {
		t.Fatal(err)
	}
	checkSweepGolden(t, "no VR field", want)

	for name, plan := range map[string]*vr.Plan{"nil": nil, "zero": {}} {
		r := &Runner{Parallelism: 4, RootSeed: 0x5eed, VR: plan}
		got, err := r.Run(goldenSweepPoints())
		if err != nil {
			t.Fatal(err)
		}
		checkSweepGolden(t, name+" plan", got)
		for i := range got {
			if got[i].Key != want[i].Key || got[i].Seed != want[i].Seed {
				t.Fatalf("%s plan: point %q key/seed diverged", name, got[i].Point.Label)
			}
			if !reflect.DeepEqual(got[i].Runs, want[i].Runs) {
				t.Fatalf("%s plan: point %q runs diverged from legacy", name, got[i].Point.Label)
			}
			if got[i].VR != nil {
				t.Fatalf("%s plan: point %q carries an estimate", name, got[i].Point.Label)
			}
		}
	}
}

// TestVRSweepDeterministicAcrossScheduling: a full plan — CRN,
// antithetic pairs, control variates, and CI-targeted stopping — yields
// identical replication counts, runs, and estimates at every worker
// count and lane width. Adaptive wave scheduling must not leak
// scheduling order into results.
func TestVRSweepDeterministicAcrossScheduling(t *testing.T) {
	plan := &vr.Plan{CRN: true, Antithetic: true, ControlVariates: true, TargetCI: 0.4, MaxReps: 32}
	var want []*PointResult
	for _, par := range []int{1, 4, 16} {
		for _, lanes := range []int{1, 4} {
			r := &Runner{Parallelism: par, Lanes: lanes, RootSeed: 0x5eed, VR: plan}
			got, err := r.Run(vrBatteryPoints(8))
			if err != nil {
				t.Fatal(err)
			}
			if snap := r.Counters().Snapshot(); !snap.Settled() {
				t.Fatalf("par=%d lanes=%d: counters not settled: %+v", par, lanes, snap)
			}
			if want == nil {
				want = got
				for _, pr := range got {
					if pr.VR == nil {
						t.Fatalf("point %q has no estimate", pr.Point.Label)
					}
					if pr.VR.Reps != len(pr.Runs) {
						t.Fatalf("point %q: estimate reps %d != runs %d", pr.Point.Label, pr.VR.Reps, len(pr.Runs))
					}
				}
				continue
			}
			for i := range got {
				g, w := got[i], want[i]
				if len(g.Runs) != len(w.Runs) {
					t.Fatalf("par=%d lanes=%d: point %q stopped at %d reps, want %d",
						par, lanes, g.Point.Label, len(g.Runs), len(w.Runs))
				}
				if !reflect.DeepEqual(g.Runs, w.Runs) {
					t.Fatalf("par=%d lanes=%d: point %q runs diverged", par, lanes, g.Point.Label)
				}
				if g.VR.Mean != w.VR.Mean || g.VR.HalfWidth != w.VR.HalfWidth || g.VR.Stopped != w.VR.Stopped {
					t.Fatalf("par=%d lanes=%d: point %q estimate diverged: %+v vs %+v",
						par, lanes, g.Point.Label, g.VR, w.VR)
				}
			}
		}
	}
}

// TestVRUnbiasedAgainstPlain: every VR technique changes the noise, not
// the answer. Each single-technique sweep's estimate must agree with
// plain MC within the joint confidence interval.
func TestVRUnbiasedAgainstPlain(t *testing.T) {
	points := vrBatteryPoints(24)
	plain := &Runner{Parallelism: 4, RootSeed: 7}
	pres, err := plain.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	var none *vr.Plan

	for _, plan := range []*vr.Plan{
		{CRN: true},
		{Antithetic: true},
		{ControlVariates: true},
		{CRN: true, Antithetic: true, ControlVariates: true},
	} {
		r := &Runner{Parallelism: 4, RootSeed: 7, VR: plan}
		vres, err := r.Run(points)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vres {
			ve := vres[i].VR
			if ve == nil {
				t.Fatalf("plan %v: point %q has no estimate", plan, vres[i].Point.Label)
			}
			pe := none.Estimate(&pres[i].Point.Cfg, pres[i].Runs)
			joint := math.Sqrt(ve.HalfWidth*ve.HalfWidth + pe.HalfWidth*pe.HalfWidth)
			if diff := math.Abs(ve.Mean - pe.Mean); diff > 3*joint {
				t.Errorf("plan %v: point %q VR mean %.5g vs plain %.5g differ by %.3g (> %.3g)",
					plan, vres[i].Point.Label, ve.Mean, pe.Mean, diff, 3*joint)
			}
			if ve.VarReduction < 1 {
				t.Errorf("plan %v: point %q variance increased: %+v", plan, vres[i].Point.Label, ve)
			}
		}
	}
}

// TestVRAdaptiveStopsEarlyAndCaps: a loose CI target stops points below
// the replication cap (marking them Stopped); an unattainable target
// runs every point to the cap.
func TestVRAdaptiveStopsEarlyAndCaps(t *testing.T) {
	points := vrBatteryPoints(64)

	loose := &Runner{Parallelism: 4, RootSeed: 3, VR: &vr.Plan{TargetCI: 2.0}}
	lres, err := loose.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	stopped := 0
	for _, pr := range lres {
		if pr.VR == nil {
			t.Fatalf("point %q has no estimate", pr.Point.Label)
		}
		if pr.VR.Stopped {
			stopped++
			if len(pr.Runs) >= 64 {
				t.Errorf("point %q marked stopped at the cap", pr.Point.Label)
			}
			if pr.VR.HalfWidth > 2.0 {
				t.Errorf("point %q stopped above target: hw=%g", pr.Point.Label, pr.VR.HalfWidth)
			}
		}
	}
	if stopped == 0 {
		t.Error("loose target stopped no point early")
	}
	if snap := loose.Counters().Snapshot(); !snap.Settled() {
		t.Errorf("adaptive counters not settled: %+v", snap)
	}

	tight := &Runner{Parallelism: 4, RootSeed: 3, VR: &vr.Plan{TargetCI: 1e-9}}
	tres, err := tight.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range tres {
		if len(pr.Runs) != 64 || pr.VR.Stopped {
			t.Errorf("point %q: unattainable target ran %d reps (stopped=%v), want the cap 64",
				pr.Point.Label, len(pr.Runs), pr.VR.Stopped)
		}
	}
}

// TestVRAdaptiveJournalResume: an adaptive sweep's journal restores the
// deterministically chosen replication counts without resimulating, and
// reproduces the same estimates.
func TestVRAdaptiveJournalResume(t *testing.T) {
	plan := &vr.Plan{Antithetic: true, TargetCI: 1.0, MaxReps: 32}
	points := vrBatteryPoints(8)
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")

	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := &Runner{Parallelism: 4, RootSeed: 0x5eed, VR: plan, Journal: j1}
	want, err := r1.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	r2 := &Runner{Parallelism: 1, RootSeed: 0x5eed, VR: plan, Journal: j2}
	got, err := r2.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	if snap := r2.Counters().Snapshot(); snap.RepsDone != 0 {
		t.Fatalf("resume resimulated %d replications", snap.RepsDone)
	}
	if gb, wb := marshalRuns(t, got), marshalRuns(t, want); !bytes.Equal(gb, wb) {
		t.Fatal("resumed adaptive sweep is not byte-identical to the original run")
	}
	for i := range got {
		if len(got[i].Runs) != len(want[i].Runs) {
			t.Fatalf("point %q resumed with %d reps, want %d", got[i].Point.Label, len(got[i].Runs), len(want[i].Runs))
		}
		if got[i].VR == nil || got[i].VR.Mean != want[i].VR.Mean || got[i].VR.Stopped != want[i].VR.Stopped {
			t.Fatalf("point %q resumed estimate diverged: %+v vs %+v", got[i].Point.Label, got[i].VR, want[i].VR)
		}
	}
}

// TestVRSaltSeparatesArtifacts: VR and non-VR runs must never share
// artifacts. A shared cache serves hits only to runners with the same
// plan salt, and a journal written under one plan refuses to bind to a
// batch run under another.
func TestVRSaltSeparatesArtifacts(t *testing.T) {
	cache := NewCache()
	points := goldenSweepPoints()

	plainRunner := &Runner{Parallelism: 2, RootSeed: 0x5eed, Cache: cache}
	if _, err := plainRunner.Run(points); err != nil {
		t.Fatal(err)
	}

	// A CRN runner sharing the cache must miss every plain entry...
	crn := &Runner{Parallelism: 2, RootSeed: 0x5eed, Cache: cache, VR: &vr.Plan{CRN: true}}
	if _, err := crn.Run(points); err != nil {
		t.Fatal(err)
	}
	if snap := crn.Counters().Snapshot(); snap.PointsCached != 0 {
		t.Fatalf("CRN runner served %d points from the plain cache", snap.PointsCached)
	}
	// ...while a second CRN runner hits every CRN entry.
	crn2 := &Runner{Parallelism: 2, RootSeed: 0x5eed, Cache: cache, VR: &vr.Plan{CRN: true}}
	res, err := crn2.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	if snap := crn2.Counters().Snapshot(); snap.PointsCached != int64(len(points)) {
		t.Fatalf("CRN rerun cached %d of %d points", snap.PointsCached, len(points))
	}
	for _, pr := range res {
		if pr.VR == nil {
			t.Fatalf("cached point %q lost its estimate", pr.Point.Label)
		}
	}

	// A CV-only plan post-processes identical runs: zero salt, so it
	// shares the plain artifacts (and attaches an estimate on the hit).
	cv := &Runner{Parallelism: 2, RootSeed: 0x5eed, Cache: cache, VR: &vr.Plan{ControlVariates: true}}
	cres, err := cv.Run(points)
	if err != nil {
		t.Fatal(err)
	}
	if snap := cv.Counters().Snapshot(); snap.PointsCached != int64(len(points)) {
		t.Fatalf("CV runner cached %d of %d plain points", snap.PointsCached, len(points))
	}
	for _, pr := range cres {
		if pr.VR == nil {
			t.Fatalf("CV cache hit %q carries no estimate", pr.Point.Label)
		}
	}

	// Journals carry the salt in their batch key: a journal written
	// without VR refuses to serve a VR batch.
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jr := &Runner{Parallelism: 2, RootSeed: 0x5eed, Journal: j1}
	if _, err := jr.Run(points); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	jvr := &Runner{Parallelism: 2, RootSeed: 0x5eed, Journal: j2, VR: &vr.Plan{CRN: true}}
	if _, err := jvr.Run(points); err == nil {
		t.Fatal("plain journal bound to a CRN batch")
	}
}

// TestVRReporterLine: the log reporter annotates VR points with their
// estimate so adaptive sweeps read correctly at a glance.
func TestVRReporterLine(t *testing.T) {
	pr := &PointResult{
		Point: Point{Label: "k=2/p=0.5"},
		VR:    &vr.Estimate{Mean: 1.2345, HalfWidth: 0.067, Reps: 12, Stopped: true},
	}
	var sb strings.Builder
	lr := NewLogReporter(&sb)
	lr.PointDone(pr, Progress{PointsDone: 1, PointsTotal: 1})
	line := sb.String()
	want := fmt.Sprintf("w=%.4g±%.3g @%d reps", 1.2345, 0.067, 12)
	if !strings.Contains(line, want) {
		t.Fatalf("reporter line %q missing %q", line, want)
	}
}
