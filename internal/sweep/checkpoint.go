package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"banyan/internal/simnet"
)

// journalVersion is bumped whenever the entry layout or the canonical
// hash changes incompatibly; mismatched entries are ignored on load.
const journalVersion = 1

// journalEntry is one completed point, serialized as a single JSON line.
// Key is the canonical config hash (which already covers the runner's
// root seed, the engine and the replication count), so an entry is valid
// exactly when the same point is swept under the same root seed again.
// The per-replication results are stored with their exact accumulator
// state — see the stats package's JSON round-tripping — which makes a
// resumed sweep byte-identical to an uninterrupted one.
type journalEntry struct {
	V     int              `json:"v"`
	Key   uint64           `json:"key"`
	Label string           `json:"label"`
	Runs  []*simnet.Result `json:"runs"`
}

// Journal is an append-only JSONL checkpoint of completed sweep points,
// keyed by canonical config hash. A Runner with a Journal records every
// cleanly completed point and, on a later run (same process or not),
// serves journaled points without resimulating them — so a killed sweep
// resumes where it stopped. Only clean results are journaled: points
// that failed, were cancelled, or were cut by the wall-clock budget are
// resimulated on resume (deterministic saturation truncations are clean
// and are journaled, flags included).
//
// Safe for concurrent use; each entry is written as one Write call so a
// kill mid-append corrupts at most the final line, which the loader
// skips.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	entries map[uint64]journalEntry
	loaded  int // entries read from disk at open time
}

// OpenJournal opens (or creates) the journal at path and loads every
// valid entry already present. A truncated trailing line — the footprint
// of a kill mid-write — is skipped; any other malformed line is an
// error, since it means the file is not a journal.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	j := &Journal{f: f, entries: make(map[uint64]journalEntry)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	// Wrap ScanLines to capture, per line, the bytes actually consumed
	// and whether the line still had its terminating newline. ScanLines
	// strips a '\r' before the '\n', so the obvious len(line)+1 offset
	// arithmetic undercounts CRLF files — and a short validEnd would
	// truncate into a valid entry when dropping a torn final line. The
	// captured advance is exact for either line ending.
	var adv int64
	var terminated bool
	sc.Split(func(data []byte, atEOF bool) (int, []byte, error) {
		advance, token, err := bufio.ScanLines(data, atEOF)
		if advance > 0 || token != nil {
			adv = int64(advance)
			terminated = advance > 0 && data[advance-1] == '\n'
		}
		return advance, token, err
	})
	var decodeErr error
	errLine, lines := 0, 0
	var off, validEnd int64
	for sc.Scan() {
		line := sc.Bytes()
		off += adv
		if len(line) == 0 {
			if terminated {
				validEnd = off
			}
			continue
		}
		lines++
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			decodeErr = fmt.Errorf("sweep: journal %s line %d: %w", path, lines, err)
			errLine = lines
			continue
		}
		if !terminated {
			// A final line that parses but lost its newline is still
			// torn: appending after it would corrupt the next entry.
			// Leaving validEnd behind drops it below.
			continue
		}
		validEnd = off
		if e.V != journalVersion {
			continue // written by an incompatible version; resimulate
		}
		j.entries[e.Key] = e
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: read journal %s: %w", path, err)
	}
	// A torn final line — a decode failure or a missing newline — is the
	// footprint of a kill mid-append: everything past validEnd is
	// dropped (that point resimulates) so new appends start on a fresh
	// line. A decode failure anywhere else means the file is not a
	// journal — refuse it rather than append after garbage.
	if decodeErr != nil && errLine != lines {
		f.Close()
		return nil, decodeErr
	}
	if st, err := f.Stat(); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: stat journal: %w", err)
	} else if st.Size() > validEnd {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: drop torn journal line: %w", err)
		}
	}
	j.loaded = len(j.entries)
	if _, err := f.Seek(validEnd, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: seek journal: %w", err)
	}
	return j, nil
}

// Len returns the number of completed points the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Loaded returns the number of entries recovered from disk when the
// journal was opened (before any appends from the current process).
func (j *Journal) Loaded() int { return j.loaded }

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// get returns the journaled replication results for a key.
func (j *Journal) get(key uint64) ([]*simnet.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	if !ok {
		return nil, false
	}
	return e.Runs, true
}

// append records a completed point. The line is marshalled outside the
// lock and written with a single Write call.
func (j *Journal) append(key uint64, label string, runs []*simnet.Result) error {
	e := journalEntry{V: journalVersion, Key: key, Label: label, Runs: runs}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("sweep: journal marshal %q: %w", label, err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("sweep: journal closed")
	}
	if _, ok := j.entries[key]; ok {
		return nil // already journaled (duplicate point across batches)
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("sweep: journal append %q: %w", label, err)
	}
	j.entries[key] = e
	return nil
}

// SetupJournal opens the checkpoint journal at path for a command-line
// run. Unless resume is set, a journal that already holds completed
// points is refused — reusing stale results silently is exactly the
// failure mode checkpointing exists to prevent.
func SetupJournal(path string, resume bool) (*Journal, error) {
	j, err := OpenJournal(path)
	if err != nil {
		return nil, err
	}
	if !resume && j.Len() > 0 {
		n := j.Len()
		j.Close()
		return nil, fmt.Errorf("sweep: checkpoint %s already holds %d completed points; pass -resume to reuse them or remove the file", path, n)
	}
	return j, nil
}
