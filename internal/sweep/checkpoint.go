package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"banyan/internal/faultinject"
	"banyan/internal/simnet"
)

// journalVersion is bumped whenever the record layout or the canonical
// hash changes incompatibly. Version 2 frames every record with a CRC32
// and a length (see frame), binds the journal to the batches that wrote
// it via header records, and recovers from any torn or corrupt tail by
// truncating at the first bad record.
const journalVersion = 2

// journalRecord is one framed journal line: either a batch header
// (Batch set, nothing else) binding the journal to a batch hash, or a
// completed point with its per-replication results. Key is the
// canonical config hash (which already covers the runner's root seed,
// the engine and the replication count), so an entry is valid exactly
// when the same point is swept under the same root seed again. The
// results carry their exact accumulator state — see the stats package's
// JSON round-tripping — which makes a resumed sweep byte-identical to
// an uninterrupted one.
type journalRecord struct {
	V     int              `json:"v"`
	Batch string           `json:"batch,omitempty"` // header: batch hash, %016x
	Key   uint64           `json:"key,omitempty"`
	Label string           `json:"label,omitempty"`
	Notes []string         `json:"notes,omitempty"` // recovery annotations (retries, degradation, watchdog)
	Runs  []*simnet.Result `json:"runs,omitempty"`
}

// frame wraps a marshalled record for the journal: an 8-hex-digit CRC32
// (IEEE) of the payload, the payload length in decimal, and the payload
// itself, space-separated and newline-terminated. The CRC catches silent
// corruption; the length catches a payload that was cut but still
// parses; the newline is written last in a single Write call, so a
// crash mid-append leaves an unterminated (hence detectably torn) tail.
func frame(payload []byte) []byte {
	line := make([]byte, 0, len(payload)+20)
	line = fmt.Appendf(line, "%08x %d ", crc32.ChecksumIEEE(payload), len(payload))
	line = append(line, payload...)
	return append(line, '\n')
}

// unframe validates one framed line and returns its payload.
func unframe(line []byte) ([]byte, error) {
	if len(line) < 11 || line[8] != ' ' {
		return nil, fmt.Errorf("malformed record frame")
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("bad record CRC field: %w", err)
	}
	rest := line[9:]
	sp := bytes.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, fmt.Errorf("malformed record frame")
	}
	n, err := strconv.Atoi(string(rest[:sp]))
	if err != nil {
		return nil, fmt.Errorf("bad record length field: %w", err)
	}
	payload := rest[sp+1:]
	if len(payload) != n {
		return nil, fmt.Errorf("record length mismatch: header says %d bytes, line has %d", n, len(payload))
	}
	if got := crc32.ChecksumIEEE(payload); uint32(want) != got {
		return nil, fmt.Errorf("record CRC mismatch: header %08x, payload %08x", want, got)
	}
	return payload, nil
}

// ConfigMismatchError reports a resume attempt against a journal that
// was written by a differently-configured run: the requested batch hash
// is not among the hashes recorded in the journal's header records.
// Silently re-running every point — the old failure mode — is exactly
// what checkpointing exists to prevent, so the mismatch is loud and
// names both hashes.
type ConfigMismatchError struct {
	Path    string   // journal file
	Batch   uint64   // hash of the batch the flags describe
	Journal []uint64 // batch hashes recorded in the journal
}

func (e *ConfigMismatchError) Error() string {
	recorded := "none"
	if len(e.Journal) > 0 {
		var b bytes.Buffer
		for i, h := range e.Journal {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%016x", h)
		}
		recorded = b.String()
	}
	return fmt.Sprintf(
		"sweep: checkpoint %s was journaled under a different configuration: the requested batch hashes to %016x but the journal records batch hash(es) %s; rerun with the original flags or remove the journal",
		e.Path, e.Batch, recorded)
}

// Journal is an append-only checkpoint of completed sweep points, keyed
// by canonical config hash, with crash-safe framing: every record
// carries a CRC32 and a length, appends are single Write calls with the
// newline last, and open-time recovery truncates at the first bad
// record — so a kill, a torn write, or silent corruption costs at most
// the records at and after the damage, never the journal. A Runner with
// a Journal records every cleanly completed point and, on a later run
// (same process or not), serves journaled points without resimulating
// them. Only clean results are journaled: points that failed, were
// cancelled, or were cut by the wall-clock budget are resimulated on
// resume (deterministic saturation truncations are clean and are
// journaled, flags included).
//
// Safe for concurrent use.
type Journal struct {
	mu         sync.Mutex
	f          *os.File
	path       string
	entries    map[uint64]journalRecord
	order      []uint64 // entry keys in append order (compaction preserves it)
	batches    map[uint64]bool
	batchOrder []uint64
	loaded     int  // entries read from disk at open time
	fromDisk   bool // any content (entries or headers) read at open time
	rebound    bool // a recorded batch re-bound this process: flags verified
	broken     bool // a torn/short append left the tail dirty; appends refused
	syncEvery  int  // fsync cadence: every N appends (0 = only at close)
	appends    int
	fault      *faultinject.JournalFault
}

// OpenJournal opens (or creates) the journal at path and recovers every
// valid record already present. Recovery truncates at the first bad
// record: a torn tail (the footprint of a kill mid-append) and anything
// after a CRC or framing failure are dropped, so those points
// resimulate and new appends start on a fresh line. The one refusal is
// a file whose very first complete record is not a valid frame — that
// file is not a (version-compatible) journal, and truncating it would
// destroy someone's data.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	j := &Journal{
		f:       f,
		path:    path,
		entries: make(map[uint64]journalRecord),
		batches: make(map[uint64]bool),
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	// Wrap ScanLines to capture, per line, the bytes actually consumed
	// and whether the line still had its terminating newline. ScanLines
	// strips a '\r' before the '\n', so the obvious len(line)+1 offset
	// arithmetic undercounts CRLF files — and a short validEnd would
	// truncate into a valid record when dropping a torn tail. The
	// captured advance is exact for either line ending.
	var adv int64
	var terminated bool
	sc.Split(func(data []byte, atEOF bool) (int, []byte, error) {
		advance, token, err := bufio.ScanLines(data, atEOF)
		if advance > 0 || token != nil {
			adv = int64(advance)
			terminated = advance > 0 && data[advance-1] == '\n'
		}
		return advance, token, err
	})
	recs := 0
	var off, validEnd int64
	for sc.Scan() {
		line := sc.Bytes()
		off += adv
		if len(line) == 0 {
			if terminated {
				validEnd = off
			}
			continue
		}
		recs++
		payload, err := unframe(line)
		var rec journalRecord
		if err == nil {
			if err = json.Unmarshal(payload, &rec); err == nil && rec.V != journalVersion {
				err = fmt.Errorf("record version %d, want %d", rec.V, journalVersion)
			}
		}
		if err != nil {
			if terminated && recs == 1 {
				// A complete first record that does not frame: the file is
				// not a version-2 journal at all. Refuse rather than
				// truncate someone's data to zero.
				f.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
				return nil, fmt.Errorf("sweep: %s is not a version-%d journal (%v); remove it or point -checkpoint elsewhere", path, journalVersion, err)
			}
			// First bad record: recovery truncates here. Everything at and
			// after the damage is dropped and resimulates.
			break
		}
		if !terminated {
			// A final record that frames but lost its newline is still
			// torn: appending after it would corrupt the next record.
			// Leaving validEnd behind drops it below.
			break
		}
		validEnd = off
		if rec.Batch != "" {
			if h, perr := strconv.ParseUint(rec.Batch, 16, 64); perr == nil && !j.batches[h] {
				j.batches[h] = true
				j.batchOrder = append(j.batchOrder, h)
			}
			continue
		}
		if _, dup := j.entries[rec.Key]; !dup {
			j.order = append(j.order, rec.Key)
		}
		j.entries[rec.Key] = rec
	}
	if err := sc.Err(); err != nil {
		f.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
		return nil, fmt.Errorf("sweep: read journal %s: %w", path, err)
	}
	if st, err := f.Stat(); err != nil {
		f.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
		return nil, fmt.Errorf("sweep: stat journal: %w", err)
	} else if st.Size() > validEnd {
		if err := f.Truncate(validEnd); err != nil {
			f.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
			return nil, fmt.Errorf("sweep: drop bad journal tail: %w", err)
		}
	}
	j.loaded = len(j.entries)
	j.fromDisk = len(j.entries) > 0 || len(j.batchOrder) > 0
	if _, err := f.Seek(validEnd, 0); err != nil {
		f.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
		return nil, fmt.Errorf("sweep: seek journal: %w", err)
	}
	return j, nil
}

// Len returns the number of completed points the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Loaded returns the number of entries recovered from disk when the
// journal was opened (before any appends from the current process).
func (j *Journal) Loaded() int { return j.loaded }

// SetFsync sets the durability policy: fsync the journal after every
// n-th append (1 = every append, 0 = only at Close and Checkpoint).
func (j *Journal) SetFsync(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.syncEvery = n
}

// setFault arms the chaos injection points on the append/checkpoint
// path; nil disarms.
func (j *Journal) setFault(jf *faultinject.JournalFault) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.fault = jf
}

// Close syncs and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	serr := j.f.Sync()
	err := j.f.Close()
	j.f = nil
	if err == nil {
		err = serr
	}
	return err
}

// get returns the journaled replication results for a key.
func (j *Journal) get(key uint64) ([]*simnet.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	if !ok {
		return nil, false
	}
	return e.Runs, true
}

// bind ties the journal to a batch: the hash of the batch's canonical
// point keys under the runner's root seed (see BatchKey). A fresh
// journal records the hash as a header line. On a journal carrying
// content from an earlier process, the FIRST batch bound must be one
// the journal has recorded — a mismatch there means the flags changed
// since the journal was written, and resuming would silently re-run
// every point, so it fails with a *ConfigMismatchError naming both
// sides. Once one recorded batch has re-bound (proving the flags
// match), later unrecorded batches are accepted and recorded: a
// multi-batch program resumed past its crash point naturally reaches
// batches the journal has never seen.
func (j *Journal) bind(batch uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.batches[batch] {
		j.rebound = true
		return nil
	}
	if j.fromDisk && !j.rebound {
		return &ConfigMismatchError{Path: j.path, Batch: batch, Journal: append([]uint64(nil), j.batchOrder...)}
	}
	if j.f == nil {
		return fmt.Errorf("sweep: journal closed")
	}
	payload, err := json.Marshal(journalRecord{V: journalVersion, Batch: keyHex(batch)})
	if err != nil {
		return fmt.Errorf("sweep: journal header: %w", err)
	}
	if _, err := j.f.Write(frame(payload)); err != nil {
		return fmt.Errorf("sweep: journal header: %w", err)
	}
	j.batches[batch] = true
	j.batchOrder = append(j.batchOrder, batch)
	return nil
}

// append records a completed point, with any recovery notes the run
// accumulated. The line is marshalled and framed outside the lock and
// written with a single Write call, newline last.
func (j *Journal) append(key uint64, label string, runs []*simnet.Result, notes []string) error {
	rec := journalRecord{V: journalVersion, Key: key, Label: label, Notes: notes, Runs: runs}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sweep: journal marshal %q: %w", label, err)
	}
	line := frame(payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("sweep: journal closed")
	}
	if j.broken {
		return fmt.Errorf("sweep: journal %s: an earlier append tore the tail; reopen the journal to recover", j.path)
	}
	if _, ok := j.entries[key]; ok {
		return nil // already journaled (duplicate point across batches)
	}
	if ferr := j.faultedWrite(line, label); ferr != nil {
		return ferr
	}
	j.entries[key] = rec
	j.order = append(j.order, key)
	j.appends++
	if j.syncEvery > 0 && j.appends%j.syncEvery == 0 {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("sweep: journal sync: %w", err)
		}
	}
	return nil
}

// faultedWrite performs the append's Write call, routed through the
// armed journal fault plan (if any): a torn or short write puts the
// mutilated bytes on disk, marks the journal broken and reports the
// typed injected error; a CRC fault corrupts the line silently.
func (j *Journal) faultedWrite(line []byte, label string) error {
	if j.fault != nil {
		mut, ferr := j.fault.BeforeAppend(line)
		if ferr != nil {
			j.f.Write(mut) //nolint:errcheck // the injected failure is the interesting one
			j.broken = true
			return fmt.Errorf("sweep: journal append %q: %w", label, ferr)
		}
		line = mut
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("sweep: journal append %q: %w", label, err)
	}
	return nil
}

// Checkpoint compacts the journal atomically: every header and entry is
// rewritten, in original order, to a temporary file that is fsynced and
// renamed over the journal (with a directory sync), so at every instant
// the path holds either the old complete journal or the new one. A
// failure — disk full included — leaves the original untouched.
// Compaction also repairs a journal whose tail was torn by a failed
// append: the in-memory entries are intact, and the rewrite drops the
// dirty tail.
func (j *Journal) Checkpoint() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("sweep: journal closed")
	}
	if err := j.fault.OnCheckpoint(); err != nil {
		return fmt.Errorf("sweep: checkpoint %s: %w", j.path, err)
	}
	tmp := j.path + ".tmp"
	nf, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("sweep: checkpoint %s: %w", j.path, err)
	}
	fail := func(err error) error {
		nf.Close()     //nolint:errcheck // best-effort cleanup; the failure being reported matters more
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup; the failure being reported matters more
		return fmt.Errorf("sweep: checkpoint %s: %w", j.path, err)
	}
	bw := bufio.NewWriterSize(nf, 1<<20)
	writeRec := func(rec journalRecord) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		_, err = bw.Write(frame(payload))
		return err
	}
	for _, h := range j.batchOrder {
		if err := writeRec(journalRecord{V: journalVersion, Batch: keyHex(h)}); err != nil {
			return fail(err)
		}
	}
	for _, key := range j.order {
		if err := writeRec(j.entries[key]); err != nil {
			return fail(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := nf.Sync(); err != nil {
		return fail(err)
	}
	if err := nf.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup; the failure being reported matters more
		return fmt.Errorf("sweep: checkpoint %s: %w", j.path, err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup; the failure being reported matters more
		return fmt.Errorf("sweep: checkpoint %s: %w", j.path, err)
	}
	// Make the rename durable, then move the live handle to the new file
	// so subsequent appends land after the compacted records.
	if d, derr := os.Open(filepath.Dir(j.path)); derr == nil {
		d.Sync()  //nolint:errcheck // best-effort directory durability
		d.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
	}
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("sweep: checkpoint %s: reopen: %w", j.path, err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
		return fmt.Errorf("sweep: checkpoint %s: seek: %w", j.path, err)
	}
	j.f.Close() //nolint:errcheck // superseded handle; the data lives in the renamed file
	j.f = f
	j.broken = false
	return nil
}

// SetupJournal opens the checkpoint journal at path for a command-line
// run. Unless resume is set, a journal that already holds completed
// points is refused — reusing stale results silently is exactly the
// failure mode checkpointing exists to prevent.
func SetupJournal(path string, resume bool) (*Journal, error) {
	j, err := OpenJournal(path)
	if err != nil {
		return nil, err
	}
	if !resume && j.Len() > 0 {
		n := j.Len()
		j.Close() //nolint:errcheck // best-effort cleanup; the failure being reported matters more
		return nil, fmt.Errorf("sweep: checkpoint %s already holds %d completed points; pass -resume to reuse them or remove the file", path, n)
	}
	return j, nil
}
