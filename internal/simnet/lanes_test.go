package simnet

import (
	"context"
	"reflect"
	"testing"

	"banyan/internal/obs"
)

// laneCfgs builds the per-replication configs a lane group runs: rep i
// gets seed SplitSeed(base.Seed, i), exactly the derivation
// RunReplications and the sweep runner use.
func laneCfgs(base *Config, w int) []*Config {
	cfgs := make([]*Config, w)
	for i := 0; i < w; i++ {
		c := *base
		c.Seed = SplitSeed(base.Seed, uint64(i))
		if base.WaitHists != nil {
			c.WaitHists = freshHists(base)
		}
		cfgs[i] = &c
	}
	return cfgs
}

// scalarReps runs w replications of base on the scalar kernel, one
// engine invocation each — the oracle the lanes are held to.
func scalarReps(t *testing.T, base *Config, w int) ([]*Result, []*Config) {
	t.Helper()
	cfgs := laneCfgs(base, w)
	results := make([]*Result, w)
	for i, cfg := range cfgs {
		c := *cfg // Run mutates nothing, but keep the oracle isolated
		res, err := Run(&c)
		if err != nil {
			t.Fatalf("scalar rep %d: %v", i, err)
		}
		results[i] = res
	}
	return results, cfgs
}

// TestLanesMatchScalarExact is the lane bit-identity contract: at every
// lane width — power of two, odd, and degenerate W=1 — every lane of a
// lock-step run produces a Result bit-identical to a scalar run of the
// same replication, across the full differential matrix (non-pow2
// radix, bulk, favorite, hot, resampled, bursty, wrapped, tracked
// stage waits, saturation truncation).
func TestLanesMatchScalarExact(t *testing.T) {
	widths := []int{1, 2, 3, 4, 8}
	for _, c := range kernelIdentityCases(t) {
		cfg := c.cfg
		want, _ := scalarReps(t, &cfg, 8)
		for _, w := range widths {
			got, errs := RunLanes(laneCfgs(&cfg, w))
			for l := 0; l < w; l++ {
				if errs[l] != nil {
					t.Fatalf("%s W=%d lane %d: %v", c.name, w, l, errs[l])
				}
				if !reflect.DeepEqual(got[l], want[l]) {
					t.Errorf("%s W=%d lane %d diverges from scalar\nlane   %+v\nscalar %+v",
						c.name, w, l, got[l], want[l])
				}
			}
		}
	}
}

// TestLanesWaitHistsMatchScalar covers the per-replication drift
// histograms, which live outside Result and therefore outside the
// DeepEqual above.
func TestLanesWaitHistsMatchScalar(t *testing.T) {
	base := Config{K: 2, Stages: 4, P: 0.5, Cycles: 1500, Warmup: 200, Seed: 21}
	base.WaitHists = freshHists(&base) // non-nil marker; copies get fresh sets
	const w = 4
	_, scfgs := scalarReps(t, &base, w)
	lcfgs := laneCfgs(&base, w)
	_, errs := RunLanes(lcfgs)
	for l := 0; l < w; l++ {
		if errs[l] != nil {
			t.Fatalf("lane %d: %v", l, errs[l])
		}
		if !reflect.DeepEqual(lcfgs[l].WaitHists, scfgs[l].WaitHists) {
			t.Errorf("lane %d wait histograms diverge from scalar", l)
		}
	}
}

// TestLanesPermutationInvariance: the seed-to-lane assignment is
// immaterial — permuting the configs permutes the results and nothing
// else. A lane's output depends only on its own seed.
func TestLanesPermutationInvariance(t *testing.T) {
	base := Config{K: 3, Stages: 3, P: 0.45, Cycles: 1500, Warmup: 200, Seed: 22}
	cfgs := laneCfgs(&base, 4)
	want, errs := RunLanes(cfgs)
	for l, err := range errs {
		if err != nil {
			t.Fatalf("lane %d: %v", l, err)
		}
	}
	perm := []int{2, 0, 3, 1}
	shuffled := make([]*Config, len(perm))
	for i, p := range perm {
		c := *cfgs[p]
		shuffled[i] = &c
	}
	got, errs := RunLanes(shuffled)
	for i, p := range perm {
		if errs[i] != nil {
			t.Fatalf("permuted lane %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i], want[p]) {
			t.Errorf("lane carrying seed %d changed result after permutation", p)
		}
	}
}

// TestLanesWidthInvariance: regrouping the same replications into
// different lane widths — including odd widths and non-divisible tails
// — never changes any per-replication Result.
func TestLanesWidthInvariance(t *testing.T) {
	base := Config{K: 2, Stages: 5, P: 0.55, Cycles: 1500, Warmup: 200, Seed: 23}
	const reps = 8
	cfgs := laneCfgs(&base, reps)
	want, errs := RunLanes(cfgs)
	for l, err := range errs {
		if err != nil {
			t.Fatalf("lane %d: %v", l, err)
		}
	}
	for _, grouping := range [][]int{{4, 4}, {3, 3, 2}, {1, 1, 1, 1, 1, 1, 1, 1}, {5, 3}} {
		at := 0
		for _, g := range grouping {
			got, gerrs := RunLanes(cfgs[at : at+g])
			for i := 0; i < g; i++ {
				if gerrs[i] != nil {
					t.Fatalf("grouping %v rep %d: %v", grouping, at+i, gerrs[i])
				}
				if !reflect.DeepEqual(got[i], want[at+i]) {
					t.Errorf("grouping %v: rep %d diverges from W=%d run", grouping, at+i, reps)
				}
			}
			at += g
		}
	}
}

// TestLanesProbeTotalsMatchScalar is the regression test for probe
// accounting under batched replications: a lane group flushes one
// RunSample per lane on the scalar engine's cadence, so the shared
// SimProbe aggregate — runs, cycles, block pulls, free-list hits, slot
// allocations, messages, high-water maxima — is exactly what the same
// replications produce when run one engine invocation at a time.
func TestLanesProbeTotalsMatchScalar(t *testing.T) {
	base := Config{K: 2, Stages: 4, P: 0.6, Cycles: 3000, Warmup: 300, Seed: 24}
	const w = 4

	scalarProbe := obs.NewSimProbe()
	sbase := base
	sbase.Probe = scalarProbe
	scalarReps(t, &sbase, w)

	laneProbe := obs.NewSimProbe()
	lbase := base
	lbase.Probe = laneProbe
	_, errs := RunLanes(laneCfgs(&lbase, w))
	for l, err := range errs {
		if err != nil {
			t.Fatalf("lane %d: %v", l, err)
		}
	}

	ss, ls := scalarProbe.Snapshot(), laneProbe.Snapshot()
	ss.CyclesPerSec, ls.CyclesPerSec = 0, 0 // wall-clock rates, not totals
	if !reflect.DeepEqual(ls, ss) {
		t.Errorf("lane probe aggregate diverges from scalar\nlanes  %+v\nscalar %+v", ls, ss)
	}
}

// TestLanesCancellation: a cancelled context truncates every live lane
// at the same cycle boundary, each with a partial result and the
// context's error — the scalar contract, W times over.
func TestLanesCancellation(t *testing.T) {
	base := Config{K: 2, Stages: 6, P: 0.5, Cycles: 200000, Warmup: 100, Seed: 25}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, errs := RunLanesCtx(ctx, laneCfgs(&base, 3))
	for l := 0; l < 3; l++ {
		if errs[l] == nil {
			t.Fatalf("lane %d: expected context error", l)
		}
		if results[l] == nil || !results[l].Truncated {
			t.Fatalf("lane %d: expected truncated partial result, got %+v", l, results[l])
		}
	}
}

// TestLanesNoMeasuredMessages: a lane that measures nothing reports the
// scalar engine's error without disturbing its siblings' outcomes.
func TestLanesNoMeasuredMessages(t *testing.T) {
	base := Config{K: 2, Stages: 2, P: 1e-12, Cycles: 50, Seed: 26}
	results, errs := RunLanes(laneCfgs(&base, 2))
	for l := 0; l < 2; l++ {
		if errs[l] == nil {
			t.Fatalf("lane %d: expected no-measured-messages error", l)
		}
		if results[l] != nil {
			t.Fatalf("lane %d: expected nil result, got %+v", l, results[l])
		}
	}
}

// TestDefaultLaneWidth: the auto heuristic picks the largest power of
// two within the replication count, caps at maxLaneWidth, and shrinks
// for topologies whose per-lane port tables would blow the arena
// retention budget.
func TestDefaultLaneWidth(t *testing.T) {
	cfg := &Config{K: 2, Stages: 4, P: 0.5, Cycles: 100}
	for _, tc := range []struct{ reps, want int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 4}, {7, 4}, {8, 8}, {100, 8},
	} {
		if got := DefaultLaneWidth(cfg, tc.reps); got != tc.want {
			t.Errorf("DefaultLaneWidth(reps=%d) = %d, want %d", tc.reps, got, tc.want)
		}
	}
	// 2^17 rows × 4 stages exceeds maxRetainPorts at any W > 1.
	huge := &Config{K: 2, Stages: 17, P: 0.5, Cycles: 100}
	if got := DefaultLaneWidth(huge, 8); got != 1 {
		t.Errorf("DefaultLaneWidth(huge topology) = %d, want 1", got)
	}
}

// TestLanesArenaReleaseRetentionCaps mirrors the scalar arena's
// retention test: pathologically grown lane scratch — shared or
// per-lane — is dropped on release, ordinary scratch is kept.
func TestLanesArenaReleaseRetentionCaps(t *testing.T) {
	a := new(lanesArena)
	a.msl = [][]mrec{make([]mrec, maxRetainSlots+1), make([]mrec, 64)}
	a.waits = [][]int16{make([]int16, maxRetainWaits+1), nil}
	a.free = make([]int64, maxRetainPorts+1)
	a.freeSlots = [][]int32{make([]int32, 0, maxRetainSlots+1), nil}
	a.laneBatch = [][]int32{make([]int32, 0, maxRetainBatch+1), nil}
	a.blks = []TraceBlock{{T: make([]int32, 0, maxRetainBlk+1)}}
	a.rings = []kring{{buf: make([][]int32, 2*maxRetainRingCycles), mask: 2*maxRetainRingCycles - 1}}
	a.release()
	if a.msl[0] != nil || a.waits[0] != nil || a.free != nil {
		t.Fatal("release retained oversized scratch past the caps")
	}
	if a.msl[1] == nil {
		t.Fatal("release dropped an ordinarily sized sibling slot store")
	}
	if a.freeSlots[0] != nil || a.laneBatch[0] != nil || a.blks[0].T != nil {
		t.Fatal("release retained per-lane scratch past the caps")
	}
	if a.rings[0].buf != nil {
		t.Fatal("release retained an oversized ring")
	}

	b := new(lanesArena)
	b.msl = [][]mrec{make([]mrec, 256)}
	b.laneBatch = [][]int32{make([]int32, 0, 1024)}
	b.freeSlots = [][]int32{make([]int32, 0, 64)}
	b.release()
	if len(b.msl[0]) != 256 || cap(b.laneBatch[0]) != 1024 || cap(b.freeSlots[0]) != 64 {
		t.Fatal("release dropped ordinarily sized scratch")
	}
}

// TestLanesArenaGrowSlots: growing one lane's slot store preserves its
// live records and grows its wait lanes alongside, without touching the
// sibling lanes' stores — each lane grows independently, exactly like a
// scalar run.
func TestLanesArenaGrowSlots(t *testing.T) {
	a := new(lanesArena)
	a.prepare(4, 3, 8, true)
	for l := 0; l < 4; l++ {
		a.growSlots(l, 3, true) // 0 → 256
		if len(a.msl[l]) != 256 {
			t.Fatalf("lane %d: len(msl)=%d after first grow", l, len(a.msl[l]))
		}
		a.msl[l][2] = mrec{dest: uint32(100 + l), row: int32(l)}
	}
	a.growSlots(1, 3, true)
	if len(a.msl[1]) != 512 || len(a.msl[0]) != 256 || len(a.msl[2]) != 256 {
		t.Fatalf("grow of lane 1 disturbed sibling capacities: %d/%d/%d",
			len(a.msl[0]), len(a.msl[1]), len(a.msl[2]))
	}
	for l := 0; l < 4; l++ {
		if a.msl[l][2].dest != uint32(100+l) || a.msl[l][2].row != int32(l) {
			t.Fatalf("lane %d slot lost by growth: %+v", l, a.msl[l][2])
		}
	}
	if len(a.waits[1]) < 512*3 {
		t.Fatalf("waits not grown alongside slots: %d", len(a.waits[1]))
	}
}

// TestLanesAllocSlope: steady-state allocations per replication do not
// scale with the lane width, and do not scale with the run length —
// the hot path (slots, rings, batches, trace blocks) runs entirely out
// of pooled scratch regardless of W.
func TestLanesAllocSlope(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	base := Config{K: 2, Stages: 4, P: 0.5, Cycles: 2000, Warmup: 200, Seed: 27}
	run := func(w int, cycles int) float64 {
		cfg := base
		cfg.Cycles = cycles
		cfgs := laneCfgs(&cfg, w)
		return testing.AllocsPerRun(5, func() {
			if _, errs := RunLanes(cfgs); errs[0] != nil {
				t.Fatal(errs[0])
			}
		})
	}
	run(8, 2000) // warm the pool so measurements see the steady state

	perRep2 := run(2, 2000) / 2
	perRep8 := run(8, 2000) / 8
	// Per-replication setup cost (stream, RNG, Result) is constant; the
	// generous factor absorbs pool evictions under GC pressure.
	if perRep8 > 2*perRep2+8 {
		t.Errorf("allocs/rep scale with lane width: W=2 %.1f, W=8 %.1f", perRep2, perRep8)
	}
	short := run(4, 2000)
	long := run(4, 8000)
	if long > 1.5*short+16 {
		t.Errorf("allocs scale with run length: %.1f @2000 cycles, %.1f @8000 cycles", short, long)
	}
}
