package simnet

import (
	"math"
	"math/rand"
	"testing"

	"banyan/internal/traffic"
)

// randomConfig draws a random valid simulation configuration.
func randomConfig(rng *rand.Rand) Config {
	ks := []int{2, 2, 2, 4}
	k := ks[rng.Intn(len(ks))]
	stages := 2 + rng.Intn(4)
	var svc traffic.Service
	m := 1.0
	switch rng.Intn(4) {
	case 0:
		svc = traffic.UnitService()
	case 1:
		mm := 2 + rng.Intn(4)
		svc, _ = traffic.ConstService(mm)
		m = float64(mm)
	case 2:
		svc, _ = traffic.MultiService([]traffic.SizeMix{
			{Size: 1, Prob: 0.5}, {Size: 3, Prob: 0.5}})
		m = 2
	case 3:
		svc, _ = traffic.GeomService(0.5, 128)
		m = 2
	}
	bulk := 1
	if rng.Intn(3) == 0 {
		bulk = 2
	}
	// Keep ρ = p·b·m in (0.05, 0.85).
	rho := 0.05 + 0.8*rng.Float64()
	p := rho / (float64(bulk) * m)
	if p > 1 {
		p = 0.9 / (float64(bulk) * m)
	}
	cfg := Config{
		K: k, Stages: stages, P: p, Bulk: bulk, Service: svc,
		Cycles: 1500 + rng.Intn(2000), Warmup: 200, Seed: rng.Uint64(),
	}
	if k == 2 && bulk == 1 && rng.Intn(3) == 0 {
		cfg.Q = 0.5 * rng.Float64()
	}
	return cfg
}

// TestInvariantsFuzz drives both engines over randomized configurations
// and asserts the structural invariants that must hold for any valid run:
// message conservation, nonnegative waits, total = Σ per-stage means, and
// statistical agreement between the engines.
func TestInvariantsFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 12; trial++ {
		cfg := randomConfig(rng)
		tr, err := GenerateTrace(&cfg)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg, err)
		}
		fast, err := RunTrace(&cfg, tr)
		if err != nil {
			t.Fatalf("trial %d: fast: %v", trial, err)
		}
		lit, err := RunLiteral(&cfg, tr)
		if err != nil {
			t.Fatalf("trial %d: literal: %v", trial, err)
		}

		// Conservation: every offered message passes through every
		// stage; measured counts match between engines.
		if fast.Offered != int64(tr.Len()) || lit.Offered != fast.Offered {
			t.Fatalf("trial %d: offered mismatch", trial)
		}
		if fast.Messages != lit.Messages {
			t.Fatalf("trial %d: measured mismatch %d vs %d", trial, fast.Messages, lit.Messages)
		}
		for s := range fast.StageWait {
			if fast.StageWait[s].N() != fast.Messages {
				t.Fatalf("trial %d: stage %d observed %d of %d messages",
					trial, s+1, fast.StageWait[s].N(), fast.Messages)
			}
		}
		// Total wait histogram covers exactly the measured messages.
		if fast.TotalWait.N() != fast.Messages {
			t.Fatalf("trial %d: histogram N %d", trial, fast.TotalWait.N())
		}
		// Total = Σ per-stage means.
		sum := 0.0
		for s := range fast.StageWait {
			sum += fast.StageWait[s].Mean()
		}
		if math.Abs(sum-fast.MeanTotalWait()) > 1e-9*(1+sum) {
			t.Fatalf("trial %d: total %g != Σ stages %g", trial, fast.MeanTotalWait(), sum)
		}
		// Engine agreement (generous: short runs).
		d := math.Abs(fast.MeanTotalWait() - lit.MeanTotalWait())
		if d > 0.08*(1+fast.MeanTotalWait()) {
			t.Fatalf("trial %d: engines disagree: %g vs %g (cfg %+v)",
				trial, fast.MeanTotalWait(), lit.MeanTotalWait(), cfg)
		}
	}
}

// TestFIFOPerPortInvariant replays a small trace by hand and checks the
// fast engine's FIFO/service-spacing guarantees directly: service starts
// at one port never overlap and happen in arrival order.
func TestFIFOPerPortInvariant(t *testing.T) {
	cfg := Config{K: 2, Stages: 1, P: 0.9, Service: mustConstSvc(t, 3), Cycles: 300, Warmup: 0, Seed: 8, BufferCap: 0}
	// ρ = 2.7 would be unstable; use the literal engine's ability to…
	// actually keep it stable: lower p.
	cfg.P = 0.3
	tr, err := GenerateTrace(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTrace(&cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the engine's defining recurrence independently (trace
	// order; the fast engine shuffles intra-cycle ties, but the SUM of
	// waits within a tie group is order-invariant — the backlog each
	// message adds is fixed — so the mean must agree exactly).
	free := make(map[int]int)
	meanW := 0.0
	for i := 0; i < tr.Len(); i++ {
		port := int(tr.NextRow(tr.In[i], tr.Digit(i, 1)))
		s := int(tr.T[i])
		if f, ok := free[port]; ok && f > s {
			s = f
		}
		free[port] = s + int(tr.Svc[i])
		meanW += float64(s - int(tr.T[i]))
	}
	meanW /= float64(tr.Len())
	if math.Abs(meanW-res.StageWait[0].Mean()) > 1e-9*(1+meanW) {
		t.Fatalf("replay mean %g vs engine %g", meanW, res.StageWait[0].Mean())
	}
}

// autocorr returns the lag-l autocorrelation of a series.
func autocorr(x []float64, l int) float64 {
	n := len(x)
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i+l < n; i++ {
		num += (x[i] - mean) * (x[i+l] - mean)
	}
	for _, v := range x {
		den += (v - mean) * (v - mean)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func mustConstSvc(t *testing.T, m int) traffic.Service {
	t.Helper()
	s, err := traffic.ConstService(m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBurstTraceStatistics checks the Markov-modulated source hits its
// target mean rate and produces visibly burstier arrivals than i.i.d.
func TestBurstTraceStatistics(t *testing.T) {
	cfg := &Config{
		K: 2, Stages: 3, P: 0.3, Cycles: 30000, Warmup: 0, Seed: 12,
		Burst: &BurstParams{POnRate: 0.1, POffRate: 0.1},
	}
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(tr.Len()) / (float64(tr.Rows) * float64(tr.Horizon))
	if math.Abs(rate-0.3) > 0.015 {
		t.Fatalf("bursty mean rate %g, want 0.3", rate)
	}
	// Burstiness lives in the autocorrelation of per-cycle counts (the
	// marginal variance of a Bernoulli stream is fixed by its mean): an
	// i.i.d. source has lag-1 autocorrelation ≈ 0, a Markov-modulated
	// one is strongly positive (≈ (1-POnRate-POffRate)·pOn²·… > 0.2
	// here).
	perCycle := make([]float64, tr.Horizon)
	for i := 0; i < tr.Len(); i++ {
		perCycle[tr.T[i]]++
	}
	lag1 := autocorr(perCycle, 1)
	if lag1 < 0.2 {
		t.Fatalf("bursty lag-1 autocorrelation %g too small", lag1)
	}
	// The i.i.d. control stays near zero.
	cfgIID := *cfg
	cfgIID.Burst = nil
	trIID, err := GenerateTrace(&cfgIID)
	if err != nil {
		t.Fatal(err)
	}
	perCycleIID := make([]float64, trIID.Horizon)
	for i := 0; i < trIID.Len(); i++ {
		perCycleIID[trIID.T[i]]++
	}
	if l := autocorr(perCycleIID, 1); math.Abs(l) > 0.05 {
		t.Fatalf("i.i.d. lag-1 autocorrelation %g not near zero", l)
	}
	// Unreachable rate rejected.
	bad := &Config{K: 2, Stages: 3, P: 0.9, Cycles: 100,
		Burst: &BurstParams{POnRate: 0.1, POffRate: 0.9}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected unreachable-rate error")
	}
	badRates := &Config{K: 2, Stages: 3, P: 0.1, Cycles: 100,
		Burst: &BurstParams{POnRate: 0, POffRate: 0.5}}
	if err := badRates.Validate(); err == nil {
		t.Fatal("expected rate-range error")
	}
}
