package simnet

import (
	"math"
	"math/rand"
	"testing"
)

// differentialConfig extends randomConfig with the arrival/service
// variants the differential harness must cover: bursty sources and
// per-stage service resampling.
func differentialConfig(rng *rand.Rand) Config {
	cfg := randomConfig(rng)
	if cfg.Q == 0 && rng.Intn(4) == 0 {
		cfg.Burst = &BurstParams{
			POnRate:  0.05 + 0.3*rng.Float64(),
			POffRate: 0.05 + 0.3*rng.Float64(),
		}
		// The target rate is only reachable while ON: p ≤ ON fraction.
		if frac := cfg.Burst.onFraction(); cfg.P > 0.9*frac {
			cfg.P = 0.9 * frac
		}
	}
	if rng.Intn(4) == 0 {
		cfg.ResampleService = true
	}
	// More samples than the invariants fuzz: the harness asserts
	// per-stage moments, which need tighter Monte-Carlo error.
	cfg.Cycles = 6000 + rng.Intn(4000)
	return cfg
}

// TestDifferentialEngines is the property-based cross-validation
// harness: randomized bounded configurations drive the fast and literal
// engines from one identical trace (BufferCap = 0, where both model the
// same system) and every per-stage mean and variance must agree within
// a few standard errors. The two engines share no scheduling code — the
// fast engine is message-driven, the literal engine cycle-driven — so
// agreement here is evidence both implement the model of Section II.
func TestDifferentialEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow")
	}
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 10; trial++ {
		cfg := differentialConfig(rng)
		tr, err := GenerateTrace(&cfg)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg, err)
		}
		fast, err := RunTrace(&cfg, tr)
		if err != nil {
			t.Fatalf("trial %d: fast: %v", trial, err)
		}
		lit, err := RunLiteral(&cfg, tr)
		if err != nil {
			t.Fatalf("trial %d: literal: %v", trial, err)
		}
		if fast.Messages != lit.Messages {
			t.Fatalf("trial %d: measured counts differ: %d vs %d", trial, fast.Messages, lit.Messages)
		}
		n := float64(fast.Messages)
		for s := range fast.StageWait {
			fm, lm := fast.StageWait[s].Mean(), lit.StageWait[s].Mean()
			fv, lv := fast.StageWait[s].Variance(), lit.StageWait[s].Variance()
			// Mean tolerance: a multiple of the standard error plus a
			// small absolute floor (waits at one port are correlated
			// across messages, inflating the effective error).
			se := math.Sqrt(fv / n)
			if tol := 8*se + 0.01*(1+fm); math.Abs(fm-lm) > tol {
				t.Errorf("trial %d stage %d: mean %g vs %g exceeds tol %g (cfg %+v)",
					trial, s+1, fm, lm, tol, cfg)
			}
			// Variance tolerance: relative, looser — fourth-moment
			// estimates converge slowly for skewed waits.
			if tol := 0.2 * (1 + fv); math.Abs(fv-lv) > tol {
				t.Errorf("trial %d stage %d: variance %g vs %g exceeds tol %g (cfg %+v)",
					trial, s+1, fv, lv, tol, cfg)
			}
		}

		// Streaming vs. materialized trace equivalence at this seed and
		// an arbitrary block size: the chunked generator must reproduce
		// the materialized schedule byte for byte.
		bc := 1 + rng.Intn(300)
		got := collect(t, &cfg, bc)
		sameTrace(t, got, tr, "streamed trace")
	}
}
