package simnet

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"banyan/internal/obs"
	"banyan/internal/stats"
	"banyan/internal/traffic"
)

func runEngine(t *testing.T, engine string, cfg *Config) *Result {
	t.Helper()
	var res *Result
	var err error
	if engine == "literal" {
		var src *TraceStream
		src, err = NewTraceStream(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err = RunLiteralSource(cfg, src)
	} else {
		res, err = Run(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFullObservabilityBitIdentity is the result-neutrality guarantee
// for the whole telemetry stack at once: probe + live histograms +
// trace sampling + drift histograms attached must leave every simulated
// number bit-identical to a bare run, on both engines.
func TestFullObservabilityBitIdentity(t *testing.T) {
	base := Config{K: 2, Stages: 3, P: 0.45, Bulk: 1, Cycles: 3000, Warmup: 200, Seed: 11, TrackStageWaits: true}
	for _, engine := range []string{"fast", "literal"} {
		t.Run(engine, func(t *testing.T) {
			plain := base
			bare := runEngine(t, engine, &plain)

			instrumented := base
			probe := obs.NewSimProbe()
			probe.Hists = obs.NewHistSet()
			probe.Tracer = obs.NewTracer(16, 1<<12)
			instrumented.Probe = probe
			instrumented.WaitHists = make([]*stats.Hist, base.Stages)
			for i := range instrumented.WaitHists {
				instrumented.WaitHists[i] = &stats.Hist{}
			}
			got := runEngine(t, engine, &instrumented)

			if !reflect.DeepEqual(bare, got) {
				t.Fatalf("observability changed the result:\nbare %+v\ngot  %+v", bare, got)
			}
			if probe.Tracer.Total() == 0 {
				t.Fatal("tracer collected no spans")
			}
			if probe.Hists.Total().N() != got.Messages {
				t.Fatalf("total hist N %d, messages %d", probe.Hists.Total().N(), got.Messages)
			}
		})
	}
}

// TestWaitHistsMatchStageStats: the drift data path (Config.WaitHists)
// must record exactly the waits the engine reports in StageWait — same
// sample, same moments — and the live obs histograms must agree on the
// exact mean.
func TestWaitHistsMatchStageStats(t *testing.T) {
	for _, engine := range []string{"fast", "literal"} {
		t.Run(engine, func(t *testing.T) {
			cfg := Config{K: 2, Stages: 3, P: 0.4, Cycles: 4000, Warmup: 200, Seed: 3}
			cfg.WaitHists = make([]*stats.Hist, cfg.Stages)
			for i := range cfg.WaitHists {
				cfg.WaitHists[i] = &stats.Hist{}
			}
			probe := obs.NewSimProbe()
			probe.Hists = obs.NewHistSet()
			cfg.Probe = probe
			res := runEngine(t, engine, &cfg)
			live := probe.Hists.Stages(cfg.Stages)
			for i := 0; i < cfg.Stages; i++ {
				h := cfg.WaitHists[i]
				if h.N() != res.Messages {
					t.Fatalf("stage %d: hist N %d, messages %d", i+1, h.N(), res.Messages)
				}
				if got, want := h.Mean(), res.StageWait[i].Mean(); math.Abs(got-want) > 1e-9 {
					t.Fatalf("stage %d: hist mean %g, Welford mean %g", i+1, got, want)
				}
				if got, want := h.Variance(), res.StageWait[i].Variance(); math.Abs(got-want) > 1e-6 {
					t.Fatalf("stage %d: hist var %g, Welford var %g", i+1, got, want)
				}
				if live[i].N() != res.Messages {
					t.Fatalf("stage %d: live hist N %d, messages %d", i+1, live[i].N(), res.Messages)
				}
				if got, want := live[i].Mean(), res.StageWait[i].Mean(); math.Abs(got-want) > 1e-9 {
					t.Fatalf("stage %d: live mean %g, Welford mean %g", i+1, got, want)
				}
			}
		})
	}
}

func traceAll(t *testing.T, engine string, cfg Config) []obs.Span {
	t.Helper()
	probe := obs.NewSimProbe()
	probe.Tracer = obs.NewTracer(1, 1<<16)
	cfg.Probe = probe
	runEngine(t, engine, &cfg)
	return probe.Tracer.Spans()
}

// TestTraceSpanDecomposition validates the span schema on both engines:
// every sampled measured message yields one span whose per-stage waits
// sum to the recorded total, whose service occupies [Start, Depart), and
// whose stages chain by cut-through timing (next enqueue = start + 1).
func TestTraceSpanDecomposition(t *testing.T) {
	const m = 2
	svc, err := traffic.ConstService(m)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{K: 2, Stages: 4, P: 0.2, Cycles: 2000, Warmup: 100, Seed: 5, Service: svc}
	for _, engine := range []string{"fast", "literal"} {
		t.Run(engine, func(t *testing.T) {
			spans := traceAll(t, engine, base)
			if len(spans) == 0 {
				t.Fatal("no spans collected")
			}
			for _, sp := range spans {
				if sp.Engine != engine {
					t.Fatalf("span engine %q, want %q", sp.Engine, engine)
				}
				if len(sp.Stages) != base.Stages {
					t.Fatalf("span %d has %d stages, want %d", sp.Msg, len(sp.Stages), base.Stages)
				}
				var sum int64
				for i, st := range sp.Stages {
					if st.Stage != i+1 {
						t.Fatalf("span %d: stage numbering %v", sp.Msg, sp.Stages)
					}
					if st.Wait != st.Start-st.Enqueue || st.Wait < 0 {
						t.Fatalf("span %d stage %d: wait %d, start %d, enqueue %d", sp.Msg, st.Stage, st.Wait, st.Start, st.Enqueue)
					}
					if st.Depart != st.Start+m {
						t.Fatalf("span %d stage %d: depart %d, want start+%d", sp.Msg, st.Stage, st.Depart, m)
					}
					if i > 0 {
						// Cut-through: the head enters the next stage one
						// cycle after service starts.
						if st.Enqueue != sp.Stages[i-1].Start+1 {
							t.Fatalf("span %d: stage %d enqueue %d, want prev start+1 = %d",
								sp.Msg, st.Stage, st.Enqueue, sp.Stages[i-1].Start+1)
						}
					}
					sum += st.Wait
				}
				if sp.Stages[0].Enqueue != sp.Arrival {
					t.Fatalf("span %d: first enqueue %d, arrival %d", sp.Msg, sp.Stages[0].Enqueue, sp.Arrival)
				}
				if sum != sp.TotalWait {
					t.Fatalf("span %d: stage waits sum %d, total %d", sp.Msg, sum, sp.TotalWait)
				}
			}
		})
	}
}

// TestTraceSpansJoinAcrossEngines: both engines consume the same trace
// in the same order, so the deterministic ordinal sampling picks the
// same messages in each — spans join message by message on Msg, with
// identical identity fields (destination, stage-1 arrival). The queue
// timings may differ per message (the engines break output-contention
// ties differently; only the statistics agree), so those are not
// compared.
func TestTraceSpansJoinAcrossEngines(t *testing.T) {
	base := Config{K: 2, Stages: 3, P: 0.4, Cycles: 1500, Warmup: 100, Seed: 21}
	fast := traceAll(t, "fast", base)
	literal := traceAll(t, "literal", base)
	if len(fast) == 0 || len(fast) != len(literal) {
		t.Fatalf("span counts differ: fast %d literal %d", len(fast), len(literal))
	}
	sort.Slice(fast, func(i, j int) bool { return fast[i].Msg < fast[j].Msg })
	sort.Slice(literal, func(i, j int) bool { return literal[i].Msg < literal[j].Msg })
	for i := range fast {
		f, l := fast[i], literal[i]
		if f.Msg != l.Msg || f.Dest != l.Dest || f.Arrival != l.Arrival {
			t.Fatalf("span identities differ:\nfast    %+v\nliteral %+v", f, l)
		}
	}
}

// TestTraceSamplingDeterministic: the 1-in-N sample is keyed by the
// measured-message ordinal, so sampled ordinals are exactly the
// multiples of N regardless of engine or ring pressure.
func TestTraceSamplingDeterministic(t *testing.T) {
	base := Config{K: 2, Stages: 2, P: 0.4, Cycles: 1000, Warmup: 50, Seed: 9}
	for _, engine := range []string{"fast", "literal"} {
		probe := obs.NewSimProbe()
		probe.Tracer = obs.NewTracer(8, 1<<16)
		cfg := base
		cfg.Probe = probe
		runEngine(t, engine, &cfg)
		spans := probe.Tracer.Spans()
		if len(spans) == 0 {
			t.Fatalf("%s: no spans", engine)
		}
		for _, sp := range spans {
			if sp.Msg%8 != 0 {
				t.Fatalf("%s: sampled ordinal %d not a multiple of 8", engine, sp.Msg)
			}
		}
	}
}

// TestProbeZeroAllocPerCycle is the bench guard's testable core: the
// per-cycle allocation slope of the engine (measured by differencing
// two horizons, which cancels fixed setup costs) must not grow when a
// probe is attached — with counters only, and with live histograms on
// top. The baseline slope itself belongs to the engine (trace-block
// streaming), not to observability.
func TestProbeZeroAllocPerCycle(t *testing.T) {
	slope := func(mk func(cycles int) *Config) float64 {
		run := func(cycles int) func() {
			return func() {
				if _, err := Run(mk(cycles)); err != nil {
					t.Fatal(err)
				}
			}
		}
		short := testing.AllocsPerRun(5, run(2000))
		long := testing.AllocsPerRun(5, run(6000))
		return (long - short) / 4000
	}
	base := func(cycles int) *Config {
		return &Config{K: 2, Stages: 3, P: 0.4, Cycles: cycles, Warmup: 100, Seed: 13}
	}
	bare := slope(base)

	probe := obs.NewSimProbe()
	withProbe := slope(func(cycles int) *Config {
		cfg := base(cycles)
		cfg.Probe = probe
		return cfg
	})
	if added := withProbe - bare; added > 0.05 {
		t.Fatalf("attaching a probe adds %.4f allocs/cycle (bare %.4f, probed %.4f)", added, bare, withProbe)
	}

	// Live histograms record on every measured service start; once their
	// bucket chunks exist they must be allocation-free too.
	histProbe := obs.NewSimProbe()
	histProbe.Hists = obs.NewHistSet()
	withHists := slope(func(cycles int) *Config {
		cfg := base(cycles)
		cfg.Probe = histProbe
		return cfg
	})
	if added := withHists - bare; added > 0.05 {
		t.Fatalf("live histograms add %.4f allocs/cycle (bare %.4f, with hists %.4f)", added, bare, withHists)
	}
}
