package simnet

import (
	"sync"
	"sync/atomic"
)

// arenaLive counts arenas currently checked out of the pools — scalar
// and laned. Every engine entry point increments it at checkout and
// release decrements it on every exit path (release runs deferred, so
// panics and cancellations are covered too). The chaos battery asserts
// it returns to zero after every scenario: a non-zero residue means an
// exit path leaked pooled scratch.
var arenaLive atomic.Int64

// ArenaLive reports how many pooled kernel arenas are checked out right
// now. Zero when no engine invocation is in flight.
func ArenaLive() int64 { return arenaLive.Load() }

// getArena checks a scalar arena out of the pool.
func getArena() *arena {
	a := arenaPool.Get().(*arena)
	a.checkedOut = true
	arenaLive.Add(1)
	return a
}

// getLanesArena checks a laned arena out of the pool.
func getLanesArena() *lanesArena {
	a := lanesArenaPool.Get().(*lanesArena)
	a.checkedOut = true
	arenaLive.Add(1)
	return a
}

// arena holds the batch kernel's reusable scratch state: the
// structure-of-arrays in-flight message store, the per-stage schedule
// rings, the per-port free-time table and (on the streaming path) the
// trace-block buffers. One arena serves one run at a time; runs obtain
// it from arenaPool, so replications executed back to back — the sweep
// worker loop — reuse the same backing arrays instead of regrowing them
// every run. The kernel's steady-state hot loop performs no allocation:
// every per-message and per-cycle structure below is indexed scratch.
//
// Slot layout. A message in flight occupies one slot index into msl
// (plus a stride-Stages lane of waits when per-stage waits are
// tracked). Slots are recycled through freeSlots as messages leave the
// network; used is the high-water mark of slots ever handed out this
// run. Because slots are allocated lazily — at the cycle a message
// enters stage 1, not when its schedule block is pulled — the store's
// footprint tracks the in-flight population (typically a few hundred
// messages), not the block size, and stays cache-resident.
type arena struct {
	// In-flight message state, indexed by slot. The hot per-message
	// fields are packed into one 16-byte record: every field is touched
	// together at every stage, so one record costs one bounds check and
	// one cache line where parallel columns would cost five of each.
	msl   []mrec
	waits []int16 // stride-Stages per-stage waits (TrackStageWaits only)

	used      int // slots handed out this run (free list aside)
	freeSlots []int32

	rings []kring // rings[s] holds messages scheduled to enter stage s+2
	batch []int32 // one (cycle, stage) batch, reused across stages

	free []int64   // per-stage, per-port next-free cycle
	vec  []float64 // covariance scratch

	// Trace-block scratch lent to a kernel-owned TraceStream for the
	// run's duration and harvested back grown, so back-to-back runs do
	// not regrow the generator's block arrays either.
	blkT    []int32
	blkIn   []int32
	blkDest []uint32
	blkSvc  []int16
	blkMeas []bool

	checkedOut bool // set by getArena, cleared by release (ArenaLive accounting)
}

// mrec is one in-flight message: the port it last departed (its input
// row at stage 1), its destination, accumulated waiting time, service
// requirement and measurement flag, packed to 16 bytes.
type mrec struct {
	dest uint32
	row  int32
	wsum int32
	svc  int16
	meas bool
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// Retention caps applied when an arena returns to the pool: scratch
// grown by a pathological point (saturated high-ρ runs can hold tens of
// thousands of messages in flight) is dropped rather than pinned for
// the rest of the process. Ordinary points sit far below every cap, so
// the steady state stays allocation-free.
const (
	maxRetainSlots      = 1 << 17 // in-flight slots kept across runs
	maxRetainWaits      = 1 << 20 // per-stage wait lanes kept across runs
	maxRetainRingCycles = 1 << 15 // schedule-ring cycle span kept across runs
	maxRetainRingSpan   = 1 << 17 // total bucket capacity kept per ring
	maxRetainBatch      = 1 << 17 // batch scratch kept across runs
	maxRetainPorts      = 1 << 17 // port free-time entries kept across runs
	maxRetainBlk        = 1 << 20 // trace-block entries kept across runs
)

// prepare resets the arena for a run over n stages and rows ports per
// stage, reusing every backing array that is already large enough.
func (a *arena) prepare(n, rows int, trackWaits bool) {
	a.used = 0
	a.freeSlots = a.freeSlots[:0]
	a.batch = a.batch[:0]
	need := n * rows
	if cap(a.free) < need {
		a.free = make([]int64, need)
	} else {
		a.free = a.free[:need]
		clear(a.free)
	}
	if cap(a.vec) < n {
		a.vec = make([]float64, n)
	} else {
		a.vec = a.vec[:n]
	}
	for len(a.rings) < n-1 {
		a.rings = append(a.rings, kring{})
	}
	for i := 0; i < n-1; i++ {
		a.rings[i].reset()
	}
	if trackWaits && len(a.waits) < len(a.msl)*n {
		a.waits = make([]int16, len(a.msl)*n)
	}
}

// growSlots doubles the slot store, preserving live slots. stride is
// the run's stage count (the waits lane width).
func (a *arena) growSlots(stride int, trackWaits bool) {
	nc := 2 * len(a.msl)
	if nc == 0 {
		nc = 256
	}
	a.msl = growCopy(a.msl, nc)
	if trackWaits {
		a.waits = growCopy(a.waits, nc*stride)
	}
}

func growCopy[T any](s []T, n int) []T {
	ns := make([]T, n)
	copy(ns, s)
	return ns
}

// lendBlockScratch hands the arena's trace-block arrays to a freshly
// created stream so its first block reuses their capacity. Only the
// kernel's own private streams are lent scratch: an externally supplied
// stream may outlive the run and must keep owning its arrays.
func (a *arena) lendBlockScratch(s *TraceStream) {
	if s.next != 0 || s.blk.T != nil {
		return
	}
	s.blk.T = a.blkT[:0]
	s.blk.In = a.blkIn[:0]
	s.blk.Dest = a.blkDest[:0]
	s.blk.Svc = a.blkSvc[:0]
	s.blk.Meas = a.blkMeas[:0]
}

// harvestBlockScratch takes the (possibly regrown) block arrays back
// from a stream the arena previously lent scratch to.
func (a *arena) harvestBlockScratch(s *TraceStream) {
	a.blkT = s.blk.T[:0]
	a.blkIn = s.blk.In[:0]
	a.blkDest = s.blk.Dest[:0]
	a.blkSvc = s.blk.Svc[:0]
	a.blkMeas = s.blk.Meas[:0]
	s.blk.T, s.blk.In, s.blk.Dest, s.blk.Svc, s.blk.Meas = nil, nil, nil, nil, nil
}

// release returns the arena to the pool, dropping any scratch grown
// past the retention caps.
func (a *arena) release() {
	if a.checkedOut {
		a.checkedOut = false
		arenaLive.Add(-1)
	}
	if len(a.msl) > maxRetainSlots {
		a.msl = nil
		a.freeSlots = nil
		a.used = 0
	}
	if len(a.waits) > maxRetainWaits {
		a.waits = nil
	}
	if cap(a.freeSlots) > maxRetainSlots {
		a.freeSlots = nil
	}
	for i := range a.rings {
		if len(a.rings[i].buf) > maxRetainRingCycles || a.rings[i].spanCapacity() > maxRetainRingSpan {
			a.rings[i] = kring{}
		}
	}
	if cap(a.batch) > maxRetainBatch {
		a.batch = nil
	}
	if cap(a.free) > maxRetainPorts {
		a.free = nil
	}
	if cap(a.blkT) > maxRetainBlk {
		a.blkT, a.blkIn, a.blkDest, a.blkSvc, a.blkMeas = nil, nil, nil, nil, nil
	}
	arenaPool.Put(a)
}

// lanesArena is the laned kernel's counterpart of arena: pooled
// scratch serving W lock-step replications (lanes) of the same
// configuration. Every array that carries per-replication state is per
// lane — the slot store, the wait lanes, the free lists, the schedule
// rings, the batch scratch and the trace-block scratch — so each
// lane's memory layout is exactly a scalar run's: dense lane-local
// slot indices packed by its own free list, dense stride-Stages wait
// lanes, its own rings in push order. Keeping slot stores dense per
// lane (rather than interleaving lanes into one shared store) is what
// keeps the per-message cache traffic at the scalar kernel's level;
// lanes share only the pool round-trip, the lane-segmented free-time
// table and the covariance scratch.
type lanesArena struct {
	msl   [][]mrec  // per-lane slot stores, indexed by lane-local slot
	waits [][]int16 // per-lane stride-Stages waits (TrackStageWaits only)

	freeSlots [][]int32 // per-lane recycled slots
	rings     []kring   // rings[l·(n-1)+s] holds lane l's messages for stage s+2
	laneBatch [][]int32 // per-lane (cycle, stage) batch scratch

	free []int64   // per-lane, per-stage, per-port next-free cycle
	vec  []float64 // covariance scratch

	blks []TraceBlock // per-lane trace-block scratch (lend/harvest)

	checkedOut bool // set by getLanesArena, cleared by release (ArenaLive accounting)
}

var lanesArenaPool = sync.Pool{New: func() any { return new(lanesArena) }}

// prepare resets the arena for a W-lane run over n stages and rows
// ports per stage, reusing every backing array that is already large
// enough.
func (a *lanesArena) prepare(w, n, rows int, trackWaits bool) {
	for len(a.msl) < w {
		a.msl = append(a.msl, nil)
	}
	for len(a.waits) < w {
		a.waits = append(a.waits, nil)
	}
	for len(a.freeSlots) < w {
		a.freeSlots = append(a.freeSlots, nil)
	}
	for len(a.laneBatch) < w {
		a.laneBatch = append(a.laneBatch, nil)
	}
	for len(a.blks) < w {
		a.blks = append(a.blks, TraceBlock{})
	}
	for l := 0; l < w; l++ {
		a.freeSlots[l] = a.freeSlots[l][:0]
		a.laneBatch[l] = a.laneBatch[l][:0]
		if trackWaits && len(a.waits[l]) < len(a.msl[l])*n {
			a.waits[l] = make([]int16, len(a.msl[l])*n)
		}
	}
	need := w * n * rows
	if cap(a.free) < need {
		a.free = make([]int64, need)
	} else {
		a.free = a.free[:need]
		clear(a.free)
	}
	if cap(a.vec) < n {
		a.vec = make([]float64, n)
	} else {
		a.vec = a.vec[:n]
	}
	for len(a.rings) < w*(n-1) {
		a.rings = append(a.rings, kring{})
	}
	for i := 0; i < w*(n-1); i++ {
		a.rings[i].reset()
	}
}

// growSlots doubles lane l's slot store, preserving its live slots,
// exactly as arena.growSlots does for a scalar run. stride is the
// run's stage count (the waits lane width).
func (a *lanesArena) growSlots(l, stride int, trackWaits bool) {
	nc := 2 * len(a.msl[l])
	if nc == 0 {
		nc = 256
	}
	a.msl[l] = growCopy(a.msl[l], nc)
	if trackWaits {
		a.waits[l] = growCopy(a.waits[l], nc*stride)
	}
}

// lendBlockScratch hands lane l's retained trace-block arrays to that
// lane's freshly created stream, mirroring arena.lendBlockScratch.
func (a *lanesArena) lendBlockScratch(l int, s *TraceStream) {
	if s.next != 0 || s.blk.T != nil {
		return
	}
	b := &a.blks[l]
	s.blk.T = b.T[:0]
	s.blk.In = b.In[:0]
	s.blk.Dest = b.Dest[:0]
	s.blk.Svc = b.Svc[:0]
	s.blk.Meas = b.Meas[:0]
}

// harvestBlockScratch takes lane l's (possibly regrown) block arrays
// back from its stream.
func (a *lanesArena) harvestBlockScratch(l int, s *TraceStream) {
	b := &a.blks[l]
	b.T = s.blk.T[:0]
	b.In = s.blk.In[:0]
	b.Dest = s.blk.Dest[:0]
	b.Svc = s.blk.Svc[:0]
	b.Meas = s.blk.Meas[:0]
	s.blk.T, s.blk.In, s.blk.Dest, s.blk.Svc, s.blk.Meas = nil, nil, nil, nil, nil
}

// release returns the arena to the pool, dropping scratch grown past
// the same retention caps arena.release applies: the caps bound total
// retained bytes, so they apply to the shared arrays as a whole and to
// each per-lane array individually.
func (a *lanesArena) release() {
	if a.checkedOut {
		a.checkedOut = false
		arenaLive.Add(-1)
	}
	for l := range a.msl {
		if len(a.msl[l]) > maxRetainSlots {
			a.msl[l] = nil
		}
	}
	for l := range a.waits {
		if len(a.waits[l]) > maxRetainWaits {
			a.waits[l] = nil
		}
	}
	for l := range a.freeSlots {
		if cap(a.freeSlots[l]) > maxRetainSlots {
			a.freeSlots[l] = nil
		}
	}
	for i := range a.rings {
		if len(a.rings[i].buf) > maxRetainRingCycles || a.rings[i].spanCapacity() > maxRetainRingSpan {
			a.rings[i] = kring{}
		}
	}
	for l := range a.laneBatch {
		if cap(a.laneBatch[l]) > maxRetainBatch {
			a.laneBatch[l] = nil
		}
	}
	if cap(a.free) > maxRetainPorts {
		a.free = nil
	}
	for l := range a.blks {
		if cap(a.blks[l].T) > maxRetainBlk {
			a.blks[l] = TraceBlock{}
		}
	}
	lanesArenaPool.Put(a)
}

// kring is the kernel's flat schedule ring for one stage: a growable
// power-of-two ring indexed by absolute cycle, where each cell is a
// contiguous bucket of slot indices whose capacity is retained across
// cycles — and, via the arena pool, across runs — so the steady state
// pushes into pre-grown storage and never allocates. It replaces
// cycleBuckets' take-ownership/recycle free-list protocol: a take
// memcpys the cycle's bucket into the caller's batch and resets it in
// place, so the cell can immediately accept pushes for the aliased
// future cycle t+size. Buckets append in push order, so the kernel's
// shuffle consumes the same RNG draws over the same sequence as the
// reference engine.
type kring struct {
	buf   [][]int32
	mask  int64
	floor int64 // cycles below floor have been taken already
	count int64 // messages currently scheduled in this ring
}

func (r *kring) reset() {
	if r.buf == nil {
		r.buf = make([][]int32, 64)
		r.mask = 63
	}
	for i := range r.buf {
		if b := r.buf[i]; len(b) > 0 {
			r.buf[i] = b[:0]
		}
	}
	r.floor = 0
	r.count = 0
}

// push schedules slot si for cycle t.
func (r *kring) push(t int64, si int32) {
	if t-r.floor >= int64(len(r.buf)) {
		r.grow(t)
	}
	i := t & r.mask
	r.buf[i] = append(r.buf[i], si)
	r.count++
}

// grow re-homes the ring so that cycle t fits alongside r.floor.
func (r *kring) grow(t int64) {
	old := int64(len(r.buf))
	size := old
	for t-r.floor >= size {
		size *= 2
	}
	nb := make([][]int32, size)
	nm := size - 1
	// Cycles [floor, floor+old) cover every old cell exactly once, so
	// this moves each bucket — and its retained capacity — to its new
	// home.
	for c := r.floor; c < r.floor+old; c++ {
		nb[c&nm] = r.buf[c&r.mask]
	}
	r.buf, r.mask = nb, nm
}

// take copies the bucket scheduled for cycle t (which must be ≥ the
// previous take's cycle) into batch, in push order, and resets the
// bucket for reuse.
func (r *kring) take(t int64, batch []int32) []int32 {
	r.floor = t + 1
	i := t & r.mask
	b := r.buf[i]
	if len(b) == 0 {
		return batch
	}
	batch = append(batch, b...)
	r.buf[i] = b[:0]
	r.count -= int64(len(b))
	return batch
}

// spanCapacity reports the total bucket capacity retained by the ring,
// the figure bounded by the arena's release trimming.
func (r *kring) spanCapacity() int {
	c := 0
	for _, b := range r.buf {
		c += cap(b)
	}
	return c
}
