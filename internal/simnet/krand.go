package simnet

import "math/bits"

// krand reimplements math/rand/v2's generator stack — the PCG-DXSM
// generator (O'Neill's PCG with the DXSM output mixer, as adopted by
// Numpy and Go) plus the Float64 and Lemire Uint64N derivations — as
// plain concrete methods. It is bit-for-bit identical to
// rand.New(rand.NewPCG(seed1, seed2)): same constants, same state
// update, same unbiasing, same 32-bit fallback. The point is codegen,
// not a different stream: rand.Rand draws every value through a Source
// interface call, which the compiler cannot inline into the kernel's
// hot loops; krand's draws come out of a batch-refilled ring instead,
// which is worth several ns per draw across the ~10⁷ draws of a
// typical run. The equivalence is pinned by TestKrandMatchesRandV2
// and, transitively, by every golden and differential test in the
// package, since the kernel and the trace generator draw from krand
// while the reference engine draws from math/rand/v2 itself.
//
// Draws are produced krandBufN at a time by refill, which advances the
// 128-bit LCG state in a tight loop the compiler keeps in registers:
// the serial state chain pipelines across iterations while the DXSM
// mixing of draw i overlaps the state update of draw i+1, instead of
// the whole chain re-serializing at every consumption site. Running
// the generator ahead of consumption is invisible — the state is
// private to the owner and only ever observed through the draws, whose
// sequence is unchanged.
type krand struct {
	hi, lo uint64
	pos    int
	buf    [krandBufN]uint64
}

// krandBufN is the refill batch: 32 draws (256 bytes) keeps the ring in
// a few cache lines while amortizing the refill call across the hot
// loops' draw mix.
const krandBufN = 32

func newKrand(seed1, seed2 uint64) *krand {
	return &krand{hi: seed1, lo: seed2, pos: krandBufN}
}

// refill produces the next krandBufN draws: for each, advance the
// 128-bit LCG state and apply the DXSM "double xorshift multiply"
// output mixer.
func (r *krand) refill() {
	const (
		mulHi    = 2549297995355413924
		mulLo    = 4865540595714422341
		incHi    = 6364136223846793005
		incLo    = 1442695040888963407
		cheapMul = 0xda942042e4dd58b5
	)
	hi, lo := r.hi, r.lo
	for i := range r.buf {
		// state = state * mul + inc
		h, l := bits.Mul64(lo, mulLo)
		h += hi*mulLo + lo*mulHi
		l, c := bits.Add64(l, incLo, 0)
		h, _ = bits.Add64(h, incHi, c)
		hi, lo = h, l
		// Output mixer, off the state chain's critical path.
		o := h
		o ^= o >> 32
		o *= cheapMul
		o ^= o >> 48
		o *= l | 1
		r.buf[i] = o
	}
	r.hi, r.lo = hi, lo
	r.pos = 0
}

// Uint64 returns a uniformly-distributed random uint64 value.
//
// Structured to stay under the inlining budget (cost 79 of 80): the
// rare refill is a bare statement, not a tail call, and the ring read
// reuses r.pos rather than a hoisted local.
func (r *krand) Uint64() uint64 {
	if r.pos == krandBufN {
		r.refill()
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

// Float64 returns a pseudo-random number in [0.0, 1.0).
func (r *krand) Float64() float64 {
	return float64(r.Uint64()<<11>>11) / (1 << 53)
}

const krandIs32bit = ^uint(0)>>32 == 0

// Uint64N returns a uniformly-distributed random value in [0, n),
// using Lemire's multiply-shift reduction with exact unbiasing.
func (r *krand) Uint64N(n uint64) uint64 {
	if krandIs32bit && uint64(uint32(n)) == n {
		return uint64(r.uint32n(uint32(n)))
	}
	if n&(n-1) == 0 { // n is power of two, can mask
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// uint32n is the 32-bit-system variant, preserved so the output
// sequence matches math/rand/v2 on every platform.
func (r *krand) uint32n(n uint32) uint32 {
	if n&(n-1) == 0 { // n is power of two, can mask
		return uint32(r.Uint64()) & (n - 1)
	}
	x := r.Uint64()
	lo1a, lo0 := bits.Mul32(uint32(x), n)
	hi, lo1b := bits.Mul32(uint32(x>>32), n)
	lo1, c := bits.Add32(lo1a, lo1b, 0)
	hi += c
	if lo1 == 0 && lo0 < n {
		n64 := uint64(n)
		thresh := uint32(-n64 % n64)
		for lo1 == 0 && lo0 < thresh {
			x := r.Uint64()
			lo1a, lo0 = bits.Mul32(uint32(x), n)
			hi, lo1b = bits.Mul32(uint32(x>>32), n)
			lo1, c = bits.Add32(lo1a, lo1b, 0)
			hi += c
		}
	}
	return hi
}
