package simnet

import "math/bits"

// krand reimplements math/rand/v2's generator stack — the PCG-DXSM
// generator (O'Neill's PCG with the DXSM output mixer, as adopted by
// Numpy and Go) plus the Float64 and Lemire Uint64N derivations — as
// plain concrete methods. It is bit-for-bit identical to
// rand.New(rand.NewPCG(seed1, seed2)): same constants, same state
// update, same unbiasing, same 32-bit fallback. The point is codegen,
// not a different stream: rand.Rand draws every value through a Source
// interface call, which the compiler cannot inline into the kernel's
// hot loops; krand's draws inline fully, which is worth several ns per
// draw across the ~10⁷ draws of a typical run. The equivalence is
// pinned by TestKrandMatchesRandV2 and, transitively, by every golden
// and differential test in the package, since the kernel and the
// trace generator draw from krand while the reference engine draws
// from math/rand/v2 itself.
type krand struct {
	hi, lo uint64
}

func newKrand(seed1, seed2 uint64) *krand {
	return &krand{hi: seed1, lo: seed2}
}

// next advances the 128-bit LCG state.
func (r *krand) next() (uint64, uint64) {
	const (
		mulHi = 2549297995355413924
		mulLo = 4865540595714422341
		incHi = 6364136223846793005
		incLo = 1442695040888963407
	)
	// state = state * mul + inc
	hi, lo := bits.Mul64(r.lo, mulLo)
	hi += r.hi*mulLo + r.lo*mulHi
	lo, c := bits.Add64(lo, incLo, 0)
	hi, _ = bits.Add64(hi, incHi, c)
	r.lo = lo
	r.hi = hi
	return hi, lo
}

// Uint64 returns a uniformly-distributed random uint64 value.
func (r *krand) Uint64() uint64 {
	hi, lo := r.next()
	// DXSM "double xorshift multiply" output mixer.
	const cheapMul = 0xda942042e4dd58b5
	hi ^= hi >> 32
	hi *= cheapMul
	hi ^= hi >> 48
	hi *= (lo | 1)
	return hi
}

// Float64 returns a pseudo-random number in [0.0, 1.0).
func (r *krand) Float64() float64 {
	return float64(r.Uint64()<<11>>11) / (1 << 53)
}

const krandIs32bit = ^uint(0)>>32 == 0

// Uint64N returns a uniformly-distributed random value in [0, n),
// using Lemire's multiply-shift reduction with exact unbiasing.
func (r *krand) Uint64N(n uint64) uint64 {
	if krandIs32bit && uint64(uint32(n)) == n {
		return uint64(r.uint32n(uint32(n)))
	}
	if n&(n-1) == 0 { // n is power of two, can mask
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// uint32n is the 32-bit-system variant, preserved so the output
// sequence matches math/rand/v2 on every platform.
func (r *krand) uint32n(n uint32) uint32 {
	if n&(n-1) == 0 { // n is power of two, can mask
		return uint32(r.Uint64()) & (n - 1)
	}
	x := r.Uint64()
	lo1a, lo0 := bits.Mul32(uint32(x), n)
	hi, lo1b := bits.Mul32(uint32(x>>32), n)
	lo1, c := bits.Add32(lo1a, lo1b, 0)
	hi += c
	if lo1 == 0 && lo0 < n {
		n64 := uint64(n)
		thresh := uint32(-n64 % n64)
		for lo1 == 0 && lo0 < thresh {
			x := r.Uint64()
			lo1a, lo0 = bits.Mul32(uint32(x), n)
			hi, lo1b = bits.Mul32(uint32(x>>32), n)
			lo1, c = bits.Add32(lo1a, lo1b, 0)
			hi += c
		}
	}
	return hi
}
