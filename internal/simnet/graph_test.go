package simnet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"banyan/internal/topology"
)

// TestGraphCollapsesToStageModel is the collapse contract: under
// uniform traffic the graph engine must reproduce the stage model.
// Table-driven across radix k ∈ {2,3,4,6}, utilization ρ ∈
// {0.5,0.8,0.9} and message size m ∈ {1,2,4}, each point is checked in
// both modes:
//
//   - committed mode (representative, unlimited buffers): the full
//     Result is bit-identical to the batch kernel at every seed — every
//     Welford accumulator, every histogram bucket;
//   - blocking mode with effectively-infinite finite buffers: stage-1
//     statistics are bit-identical up to float summation order (the
//     wait multiset is invariant under intra-cycle reordering for
//     constant service), deep stages agree within golden tolerance and
//     nothing ever blocks.
func TestGraphCollapsesToStageModel(t *testing.T) {
	stagesFor := map[int]int{2: 4, 3: 3, 4: 3, 6: 2}
	seed := uint64(0x9247)
	for _, k := range []int{2, 3, 4, 6} {
		for _, rho := range []float64{0.5, 0.8, 0.9} {
			for _, m := range []int{1, 2, 4} {
				k, rho, m := k, rho, m
				t.Run(fmt.Sprintf("k=%d/rho=%g/m=%d", k, rho, m), func(t *testing.T) {
					seed += 0x9e3779b97f4a7c15
					cfg := Config{
						K: k, Stages: stagesFor[k], P: rho / float64(m),
						Service: mustConstSvc(t, m),
						Cycles:  2000, Warmup: 250, Seed: seed,
					}
					kres, err := Run(&cfg)
					if err != nil {
						t.Fatal(err)
					}
					if kres.Truncated {
						t.Fatalf("stage model truncated at this operating point")
					}

					// Committed mode: bit-for-bit.
					gcfg := cfg
					gcfg.Topology = topology.Omega
					gres, err := RunGraph(&gcfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gres, kres) {
						t.Fatalf("committed graph result differs from kernel\ngraph:  %+v\nkernel: %+v", gres, kres)
					}

					// Blocking mode with representative (never-filling)
					// buffers: the machinery is live but nothing blocks.
					bcfg := gcfg
					bcfg.StageBuffers = make([]int, cfg.Stages)
					for i := range bcfg.StageBuffers {
						bcfg.StageBuffers[i] = 1 << 16
					}
					bres, err := RunGraph(&bcfg)
					if err != nil {
						t.Fatal(err)
					}
					if bres.BlockedCycles != 0 {
						t.Fatalf("representative buffers blocked %d cycles", bres.BlockedCycles)
					}
					if bres.Messages != kres.Messages || bres.Offered != kres.Offered {
						t.Fatalf("message conservation: blocking %d/%d vs kernel %d/%d",
							bres.Messages, bres.Offered, kres.Messages, kres.Offered)
					}
					// Stage 1: the wait multiset is identical, so mean and
					// variance agree to float summation order.
					gm, km := bres.StageWait[0].Mean(), kres.StageWait[0].Mean()
					if d := math.Abs(gm - km); d > 1e-9*(1+math.Abs(km)) {
						t.Fatalf("stage-1 mean: blocking %g vs kernel %g", gm, km)
					}
					gv, kv := bres.StageWait[0].Variance(), kres.StageWait[0].Variance()
					if d := math.Abs(gv - kv); d > 1e-6*(1+math.Abs(kv)) {
						t.Fatalf("stage-1 variance: blocking %g vs kernel %g", gv, kv)
					}
					// Deep stages: statistically equivalent (the cycle-driven
					// walk resolves intra-cycle ties differently), within the
					// differential suite's golden tolerance.
					for s := 1; s < cfg.Stages; s++ {
						gm, km := bres.StageWait[s].Mean(), kres.StageWait[s].Mean()
						se := kres.StageWait[s].StdErr() + bres.StageWait[s].StdErr()
						if tol := 10*se + 0.02*(1+math.Abs(km)); math.Abs(gm-km) > tol {
							t.Fatalf("stage %d mean: blocking %g vs kernel %g (tol %g)", s+1, gm, km, tol)
						}
					}
				})
			}
		}
	}
}

// checkGraphNoLeaks asserts the graph engine's cycle loop left nothing
// behind: goroutine count back to baseline (within the polling budget)
// and no arena blocks live — the graph engine must not borrow from the
// kernel's arena pool at all.
func checkGraphNoLeaks(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := ArenaLive(); n != 0 {
		t.Fatalf("%d arena blocks live after graph run", n)
	}
}

// TestGraphCancellation: a cancelled context stops both graph modes at
// a clean cycle boundary with a truncated partial result, and the cycle
// loop leaks neither goroutines nor arena blocks — including when the
// cancellation lands mid-run.
func TestGraphCancellation(t *testing.T) {
	for _, mode := range []string{"committed", "blocking"} {
		t.Run(mode, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			cfg := Config{K: 2, Stages: 4, P: 0.5, Cycles: 2_000_000, Warmup: 100, Seed: 12,
				Topology: topology.Omega}
			if mode == "blocking" {
				cfg.StageBuffers = []int{4, 4, 4, 4}
			}

			// Pre-cancelled: the engine must notice on its first poll.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			res, err := RunGraphCtx(ctx, &cfg)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if res == nil || !res.Truncated {
				t.Fatalf("expected truncated partial result, got %+v", res)
			}

			// Mid-run: cancel while the cycle loop is hot.
			ctx, cancel = context.WithCancel(context.Background())
			go func() {
				time.Sleep(2 * time.Millisecond)
				cancel()
			}()
			res, err = RunGraphCtx(ctx, &cfg)
			cancel()
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("unexpected error: %v", err)
			}
			if err != nil && (res == nil || !res.Truncated) {
				t.Fatalf("cancelled run must return a truncated result, got %+v", res)
			}
			checkGraphNoLeaks(t, baseline)
		})
	}
}

// TestGraphHotSpotVerdicts: hot-spot traffic saturates the tree rooted
// at output 0 and the per-switch verdicts say so — the hot switch at
// the last stage is flagged, a switch off the hot path is not, and the
// verdicts are visible in Result.SwitchSat ordered by (stage, switch).
func TestGraphHotSpotVerdicts(t *testing.T) {
	cfg := Config{K: 2, Stages: 4, P: 0.5, HotModule: 0.4,
		Cycles: 3000, Warmup: 300, Seed: 0x407,
		Topology: topology.Omega, TrackSwitches: true}
	res, err := RunGraph(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw := 8 // k^(n-1)
	if len(res.SwitchSat) != cfg.Stages*sw {
		t.Fatalf("SwitchSat has %d entries, want %d", len(res.SwitchSat), cfg.Stages*sw)
	}
	byStage := func(stage, id int) SwitchStat { return res.SwitchSat[(stage-1)*sw+id] }
	hot := byStage(cfg.Stages, 0) // owns output row 0
	if !hot.Saturated {
		t.Fatalf("hot switch not saturated: %+v", hot)
	}
	cold := byStage(cfg.Stages, sw-1) // owns the highest output rows
	if cold.Saturated {
		t.Fatalf("cold switch saturated: %+v", cold)
	}
	if hot.HighWater <= cold.HighWater {
		t.Fatalf("hot high-water %d not above cold %d", hot.HighWater, cold.HighWater)
	}
	for _, s := range res.SwitchSat {
		if s.Stage < 1 || s.Stage > cfg.Stages || s.Switch < 0 || s.Switch >= sw {
			t.Fatalf("malformed SwitchStat %+v", s)
		}
	}
	// Without TrackSwitches the verdicts stay out of the Result, and the
	// statistics are unchanged.
	off := cfg
	off.TrackSwitches = false
	ores, err := RunGraph(&off)
	if err != nil {
		t.Fatal(err)
	}
	if ores.SwitchSat != nil {
		t.Fatal("SwitchSat populated without TrackSwitches")
	}
	res.SwitchSat = nil
	if !reflect.DeepEqual(ores, res) {
		t.Fatal("TrackSwitches changed the simulated statistics")
	}
}

// TestGraphFailLink: single-link failure with deterministic
// reroute-or-drop accounting. Drop policy loses exactly the routed-on
// messages; reroute deflects them to a sister port and counts the
// consequent wrong exits; both policies are bit-deterministic.
func TestGraphFailLink(t *testing.T) {
	base := Config{K: 2, Stages: 3, P: 0.6, Cycles: 2500, Warmup: 300, Seed: 0xfa11,
		Topology:  topology.Omega,
		FailLinks: []LinkFail{{Stage: 2, Row: 3}}}

	drop := base
	drop.FailPolicy = "drop"
	dres, err := RunGraph(&drop)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Dropped == 0 {
		t.Fatal("drop policy lost no messages through a failed link at ρ=0.6")
	}
	if dres.Deflected != 0 || dres.Misrouted != 0 {
		t.Fatalf("drop policy deflected %d / misrouted %d", dres.Deflected, dres.Misrouted)
	}
	dres2, err := RunGraph(&drop)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dres, dres2) {
		t.Fatal("drop policy not deterministic")
	}

	rr := base
	rr.FailPolicy = "reroute"
	rres, err := RunGraph(&rr)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Dropped != 0 {
		t.Fatalf("reroute policy dropped %d messages with a healthy sister port", rres.Dropped)
	}
	if rres.Deflected == 0 {
		t.Fatal("reroute policy deflected nothing through a failed link")
	}
	if rres.Misrouted == 0 {
		t.Fatal("deflections at stage 2 must corrupt the exit row (no self-correction in a delta network)")
	}
	if rres.Misrouted > rres.Deflected {
		t.Fatalf("misrouted %d > deflected %d", rres.Misrouted, rres.Deflected)
	}
	rres2, err := RunGraph(&rr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rres, rres2) {
		t.Fatal("reroute policy not deterministic")
	}

	// Blocking mode honors the same accounting.
	brr := rr
	brr.StageBuffers = []int{2, 2, 2}
	bres, err := RunGraph(&brr)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Deflected == 0 || bres.Dropped != 0 {
		t.Fatalf("blocking reroute: deflected %d dropped %d", bres.Deflected, bres.Dropped)
	}
	bres2, err := RunGraph(&brr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bres, bres2) {
		t.Fatal("blocking reroute not deterministic")
	}
}

// TestGraphHeterogeneousBuffers: a tight mid-network buffer map blocks
// (backpressure, not loss): blocked cycles accumulate, nothing drops,
// and every message still gets through — message conservation against
// the committed run on the identical trace.
func TestGraphHeterogeneousBuffers(t *testing.T) {
	cfg := Config{K: 2, Stages: 4, P: 0.8, Cycles: 2500, Warmup: 300, Seed: 0xb10c,
		Topology: topology.Omega}
	committed, err := RunGraph(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	tight := cfg
	tight.StageBuffers = []int{0, 1, 1, 2} // stage 1 infinite, 2..4 tight
	tight.TrackSwitches = true
	bres, err := RunGraph(&tight)
	if err != nil {
		t.Fatal(err)
	}
	if bres.BlockedCycles == 0 {
		t.Fatal("single-slot buffers at ρ=0.8 never blocked")
	}
	if bres.Dropped != 0 {
		t.Fatalf("backpressure must not drop: lost %d", bres.Dropped)
	}
	if bres.Messages != committed.Messages || bres.Offered != committed.Offered {
		t.Fatalf("message conservation: %d/%d vs committed %d/%d",
			bres.Messages, bres.Offered, committed.Messages, committed.Offered)
	}
	// Blocked cycles must land on switches of the capped stages, and at
	// least one blocked switch must carry a saturation verdict.
	anySat := false
	for _, s := range bres.SwitchSat {
		if s.Blocked > 0 && tight.StageBuffers[s.Stage-1] == 0 {
			t.Fatalf("blocked cycles on an infinite-buffer stage: %+v", s)
		}
		if s.Blocked > 0 && s.Saturated {
			anySat = true
		}
	}
	if !anySat {
		t.Fatal("no saturation verdict despite blocking")
	}
	// Backpressure must inflate the mean wait, never deflate it.
	if bres.MeanTotalWait() < committed.MeanTotalWait() {
		t.Fatalf("blocking mean wait %g below committed %g", bres.MeanTotalWait(), committed.MeanTotalWait())
	}
}

// TestGraphKnobsRejectedByStageEngines: the stage-model engines reject
// topology-true configuration outright instead of silently ignoring it.
func TestGraphKnobsRejectedByStageEngines(t *testing.T) {
	cfg := Config{K: 2, Stages: 3, P: 0.5, Cycles: 500, Seed: 1, Topology: topology.Flip}
	if _, err := Run(&cfg); err == nil || !strings.Contains(err.Error(), "graph engine") {
		t.Fatalf("fast engine accepted Topology: %v", err)
	}
	src, err := NewTraceStream(&Config{K: 2, Stages: 3, P: 0.5, Cycles: 500, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSourceCtx(context.Background(), &cfg, src); err == nil || !strings.Contains(err.Error(), "graph engine") {
		t.Fatalf("reference engine accepted Topology: %v", err)
	}
	if _, err := RunLiteralSourceCtx(context.Background(), &cfg, src); err == nil || !strings.Contains(err.Error(), "graph engine") {
		t.Fatalf("literal engine accepted Topology: %v", err)
	}
	if _, errs := RunLanes([]*Config{&cfg}); errs[0] == nil || !strings.Contains(errs[0].Error(), "graph engine") {
		t.Fatalf("lanes accepted Topology: %v", errs[0])
	}
	// Graph-only knobs without a Topology fail validation everywhere.
	buf := Config{K: 2, Stages: 3, P: 0.5, Cycles: 500, Seed: 1, StageBuffers: []int{2, 2, 2}}
	if err := buf.Validate(); err == nil || !strings.Contains(err.Error(), "StageBuffers") {
		t.Fatalf("StageBuffers without Topology validated: %v", err)
	}
	// And the graph engine refuses a wrapped (partial) network.
	wrap := Config{K: 2, Stages: 8, P: 0.5, Cycles: 500, Seed: 1, MaxRows: 64, Topology: topology.Omega}
	if _, err := RunGraph(&wrap); err == nil || !strings.Contains(err.Error(), "MaxRows") {
		t.Fatalf("graph engine accepted a wrapped network: %v", err)
	}
}
