package simnet

import (
	"math"
	"reflect"
	"testing"
)

// TestNullFlagsBitIdentity: configuration knobs at their neutral values
// must not merely give statistically similar runs — they must consume
// zero extra RNG draws, so the sample path is bit-identical to the knob
// being absent. This pins the guard structure of the trace generator and
// the engines: a refactor that moves a draw inside a disabled branch
// changes every downstream seed and fails here immediately.
func TestNullFlagsBitIdentity(t *testing.T) {
	base := Config{K: 2, Stages: 5, P: 0.5, Cycles: 2000, Warmup: 300, Seed: 0x11d}

	run := func(cfg Config) *Result {
		res, err := Run(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(base)

	mods := []struct {
		name string
		mod  func(*Config)
	}{
		{"Bulk=1 vs unset", func(c *Config) { c.Bulk = 1 }},
		{"ResampleService with unit service", func(c *Config) { c.ResampleService = true }},
		{"MaxRows at full size", func(c *Config) { c.MaxRows = 32 }},
	}
	for _, m := range mods {
		cfg := base
		m.mod(&cfg)
		if got := run(cfg); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: sample path diverged\ngot  %+v\nwant %+v", m.name, got, want)
		}
	}

	// Resampling a constant (single-point) law draws nothing either.
	cfg := base
	cfg.P = 0.2 // keep m·λ < 1 with the 3-cycle service
	cfg.Service = mustConstSvc(t, 3)
	wantConst := run(cfg)
	cfg.ResampleService = true
	if got := run(cfg); !reflect.DeepEqual(got, wantConst) {
		t.Error("ResampleService with constant service diverged from plain constant service")
	}
}

// TestSimMScalingDeepStages is the simulation-level check of the Section
// IV-B size generalization that TestMScalingIdentity (internal/stages)
// pins analytically: deep in the network, the per-stage mean wait of a
// network carrying m-cycle messages at rate p matches m times the wait
// of a unit-message network run at intensity m·p. The identity is only
// asymptotic in stage depth — early stages see the smoother fresh-arrival
// process and sit several percent off — so the comparison uses the last
// stage of a 6-deep network, where probe runs put the ratio within ~1% of
// m; the 5% tolerance covers Monte-Carlo spread at these horizons.
func TestSimMScalingDeepStages(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replication sweep; skipped in -short")
	}
	for _, k := range []int{2, 4} {
		stages := 6
		if k == 4 {
			stages = 3 // 64 rows either way
		}
		for _, m := range []int{2, 3} {
			for _, p := range []float64{0.1, 0.2} {
				mcfg := Config{K: k, Stages: stages, P: p, Service: mustConstSvc(t, m),
					Cycles: 12000, Warmup: 1500, Seed: 0x5ca1e}
				ucfg := Config{K: k, Stages: stages, P: float64(m) * p,
					Cycles: 12000, Warmup: 1500, Seed: 0x5ca1e + 1}
				mres, err := Run(&mcfg)
				if err != nil {
					t.Fatal(err)
				}
				ures, err := Run(&ucfg)
				if err != nil {
					t.Fatal(err)
				}
				got := mres.StageWait[stages-1].Mean()
				want := float64(m) * ures.StageWait[stages-1].Mean()
				if d := math.Abs(got-want) / want; d > 0.05 {
					t.Errorf("k=%d m=%d p=%g: deep-stage wait %g vs scaled unit %g (off %.1f%%)",
						k, m, p, got, want, 100*d)
				}
			}
		}
	}
}
