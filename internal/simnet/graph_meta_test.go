package simnet

import (
	"context"
	"math"
	mrand "math/rand"
	"reflect"
	"testing"

	"banyan/internal/topology"
	"banyan/internal/traffic"
)

// Metamorphic properties of the graph engine. Unlike the collapse
// battery (graph_test.go), which pins the graph engine against the
// stage model, these check invariants of the graph engine against
// itself: relabeling a stage's output rows is a network isomorphism and
// must not change any simulated number, and per-stage waits must sum to
// the total delay message by message.

// relabeledWiring returns wir with every internal stage's output rows
// renamed through an independent random permutation.
func relabeledWiring(t *testing.T, wir *topology.Wiring, seed int64) *topology.Wiring {
	t.Helper()
	rng := mrand.New(mrand.NewSource(seed))
	out := wir
	for stage := 1; stage < wir.Stages(); stage++ {
		var err error
		out, err = out.RelabelStage(stage, rng.Perm(wir.Size()))
		if err != nil {
			t.Fatalf("RelabelStage(%d): %v", stage, err)
		}
	}
	return out
}

// TestGraphRelabelInvariance checks that renaming switch output rows —
// an isomorphism of the network graph — leaves the committed-mode
// Result bit-identical: the engine must depend on the wiring's
// structure, never on its labels.
func TestGraphRelabelInvariance(t *testing.T) {
	cases := []struct {
		kind topology.Kind
		k, n int
	}{
		{topology.Omega, 2, 4},
		{topology.Omega, 3, 3},
		{topology.Butterfly, 2, 4},
		{topology.Butterfly, 4, 2},
		{topology.Flip, 2, 4},
		{topology.Flip, 3, 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(string(tc.kind)+"/k="+itoa(tc.k)+"/n="+itoa(tc.n), func(t *testing.T) {
			t.Parallel()
			cfg := &Config{
				K: tc.k, Stages: tc.n, P: 0.7, Cycles: 1500, Warmup: 200,
				Seed: 0x4e1a ^ uint64(tc.k*31+tc.n), Topology: tc.kind,
			}
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			tr, err := GenerateTrace(cfg)
			if err != nil {
				t.Fatal(err)
			}
			wir, err := topology.WiringFor(tc.kind, tc.k, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			base, err := runGraphWired(context.Background(), cfg, tr.Source(), wir)
			if err != nil {
				t.Fatal(err)
			}
			for rep := int64(0); rep < 3; rep++ {
				rw := relabeledWiring(t, wir, 1000+rep)
				got, err := runGraphWired(context.Background(), cfg, tr.Source(), rw)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("relabel rep %d changed the committed-mode result:\nbase %+v\ngot  %+v",
						rep, base, got)
				}
			}
		})
	}
}

// TestGraphRelabelInvarianceBlocking checks the blocking-mode analogue.
// Blocking mode serves ports in row order, so relabeling reorders
// floating-point accumulation and downstream contention; the invariant
// is conservation plus statistics, not bit identity: message counts
// must match exactly, stage-1 waits to accumulation error (the stage-1
// schedule is label-independent), and deep stages statistically.
func TestGraphRelabelInvarianceBlocking(t *testing.T) {
	cfg := &Config{
		K: 2, Stages: 4, P: 0.7, Cycles: 2000, Warmup: 250,
		Seed: 0xb10c, Topology: topology.Omega,
		StageBuffers: []int{1 << 16, 1 << 16, 1 << 16, 1 << 16},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wir, err := topology.WiringFor(topology.Omega, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := runGraphWired(context.Background(), cfg, tr.Source(), wir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runGraphWired(context.Background(), cfg, tr.Source(), relabeledWiring(t, wir, 99))
	if err != nil {
		t.Fatal(err)
	}
	if base.Messages != got.Messages || base.Offered != got.Offered || base.Dropped != got.Dropped {
		t.Fatalf("relabel changed conservation: base msgs=%d off=%d drop=%d, got msgs=%d off=%d drop=%d",
			base.Messages, base.Offered, base.Dropped, got.Messages, got.Offered, got.Dropped)
	}
	if d := math.Abs(base.StageWait[0].Mean() - got.StageWait[0].Mean()); d > 1e-9 {
		t.Errorf("stage-1 mean drifted under relabel: %g vs %g", base.StageWait[0].Mean(), got.StageWait[0].Mean())
	}
	for s := 1; s < cfg.Stages; s++ {
		bm, gm := base.StageWait[s].Mean(), got.StageWait[s].Mean()
		tol := 10*base.StageWait[s].StdErr() + 0.02*(1+math.Abs(bm))
		if math.Abs(bm-gm) > tol {
			t.Errorf("stage %d mean drifted under relabel: %g vs %g (tol %g)", s+1, bm, gm, tol)
		}
	}
}

// TestGraphStageWaitsSumToTotal checks, in both modes, that the
// per-stage waiting-time statistics decompose the total delay: every
// measured message's total wait is the sum of its per-stage waits, so
// Σ_stages mean_s · N must equal meanTotal · N to accumulation error.
func TestGraphStageWaitsSumToTotal(t *testing.T) {
	run := func(t *testing.T, cfg *Config) *Result {
		t.Helper()
		res, err := RunGraph(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	geo, err := traffic.GeomService(0.5, 64)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*Config{
		"committed": {K: 3, Stages: 3, P: 0.8, Cycles: 3000, Warmup: 300, Seed: 0x5afe},
		"committed-geom": {K: 2, Stages: 4, P: 0.4, Cycles: 3000, Warmup: 300, Seed: 0x5aff,
			Service: geo},
		"blocking": {K: 3, Stages: 3, P: 0.8, Cycles: 3000, Warmup: 300, Seed: 0x5b00,
			StageBuffers: []int{4, 4, 4}},
	}
	for name, cfg := range cases {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := run(t, cfg)
			var sum float64
			for s := range res.StageWait {
				if n := res.StageWait[s].N(); n != res.Messages {
					t.Fatalf("stage %d counted %d waits, want %d (one per measured message)", s+1, n, res.Messages)
				}
				sum += res.StageWait[s].Mean()
			}
			total := res.TotalWait.Mean()
			if d := math.Abs(sum - total); d > 1e-9*(1+math.Abs(total)) {
				t.Errorf("per-stage waits do not sum to total delay: Σ stage means %.12g, total mean %.12g", sum, total)
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
