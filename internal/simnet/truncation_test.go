package simnet

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// unstableCfg is a configuration past the stability boundary
// (m·λ = 1.4 with infinite buffers) with a tight in-flight budget, so
// both engines must trip the saturation guard quickly.
func unstableCfg() *Config {
	return &Config{
		K: 2, Stages: 2, P: 0.7, Bulk: 2,
		Cycles: 2000, Warmup: 50, Seed: 42,
		AllowUnstable: true,
		MaxInFlight:   300,
	}
}

// TestValidateStability: m·λ ≥ 1 with infinite buffers is rejected with
// an error naming the offending parameters unless AllowUnstable is set;
// finite buffers never needed the opt-in.
func TestValidateStability(t *testing.T) {
	cfg := unstableCfg()
	cfg.AllowUnstable = false
	err := cfg.Validate()
	if err == nil {
		t.Fatal("unstable config accepted without AllowUnstable")
	}
	for _, frag := range []string{"1.4", "bulk 2", "p 0.7", "AllowUnstable"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("stability error %q does not name %q", err, frag)
		}
	}
	cfg.AllowUnstable = true
	if err := cfg.Validate(); err != nil {
		t.Fatalf("AllowUnstable opt-in rejected: %v", err)
	}
	cfg.AllowUnstable = false
	cfg.BufferCap = 4
	if err := cfg.Validate(); err != nil {
		t.Fatalf("finite buffers must not need AllowUnstable: %v", err)
	}
}

// TestSaturationGuards: both engines terminate an unstable run with a
// Truncated/Unstable flagged result (nil error), deterministically.
func TestSaturationGuards(t *testing.T) {
	for name, run := range map[string]func(*Config) (*Result, error){
		"fast": Run,
		"literal": func(cfg *Config) (*Result, error) {
			src, err := NewTraceStream(cfg, 0)
			if err != nil {
				return nil, err
			}
			return RunLiteralSource(cfg, src)
		},
	} {
		t.Run(name, func(t *testing.T) {
			res, err := run(unstableCfg())
			if err != nil {
				t.Fatalf("saturation guard must truncate, not fail: %v", err)
			}
			if !res.Truncated || !res.Unstable {
				t.Fatalf("unstable run not flagged: truncated=%v unstable=%v", res.Truncated, res.Unstable)
			}
			if res.TruncatedAt <= 0 {
				t.Fatalf("TruncatedAt = %d, want the cycles actually simulated", res.TruncatedAt)
			}
			again, err := run(unstableCfg())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, again) {
				t.Fatal("truncated run is not deterministic")
			}
		})
	}
}

// TestDrainBudget: a tight DrainCycles budget truncates an unstable run
// even when the in-flight cap is generous.
func TestDrainBudget(t *testing.T) {
	cfg := unstableCfg()
	cfg.MaxInFlight = 1 << 30
	cfg.Cycles = 300
	cfg.DrainCycles = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !res.Unstable {
		t.Fatal("drain budget did not flag the run")
	}
	if res.TruncatedAt <= int64(cfg.Warmup+cfg.Cycles) {
		t.Fatalf("truncated at %d, before the horizon", res.TruncatedAt)
	}
}

// TestCancellation: a cancelled context stops both engines at a cycle
// boundary with a Truncated partial result and the context's error.
func TestCancellation(t *testing.T) {
	cfg := &Config{K: 2, Stages: 3, P: 0.5, Cycles: 5000, Warmup: 100, Seed: 7}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func() (*Result, error){
		"fast": func() (*Result, error) { return RunCtx(ctx, cfg) },
		"literal": func() (*Result, error) {
			src, err := NewTraceStream(cfg, 0)
			if err != nil {
				return nil, err
			}
			return RunLiteralSourceCtx(ctx, cfg, src)
		},
	} {
		t.Run(name, func(t *testing.T) {
			res, err := run()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res == nil || !res.Truncated {
				t.Fatalf("cancelled run must return a flagged partial result, got %+v", res)
			}
			if res.Unstable {
				t.Fatal("cancellation is not instability")
			}
		})
	}

	// An uncancelled run of the same config is untruncated and identical
	// to the plain API.
	res, err := RunCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("healthy run flagged truncated")
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Fatal("RunCtx(Background) differs from Run")
	}
}
