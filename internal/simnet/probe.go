package simnet

import "banyan/internal/obs"

// runProbe accumulates one run's engine instrumentation in plain local
// counters — no synchronization on the hot path — and flushes them to
// the shared obs.SimProbe once when the run finishes (plus periodic
// cycle ticks on the context-poll cadence, so the cycles/sec meter is
// live). It exists only when Config.Probe is set; a nil runProbe means
// the engines skip every instrumentation branch.
//
// "Backlog" per stage counts messages currently held for that stage:
// queued at a stage's output ports in the literal engine, scheduled in
// a stage's pending buckets in the fast engine. Either way the
// high-water mark is the figure that sizes real buffers.
type runProbe struct {
	lastFlush  int64 // cycles already reported via AddCycles
	blockPulls int64
	freeHits   int64
	slotAllocs int64
	maxActive  int64
	stageLoad  []int64
	stageHW    []int64

	// Per-switch counters, aliased to the graph engine's live arrays
	// (nil for the stage-model engines): backlog high-water marks and
	// blocked-cycle counts per (stage, switch).
	switchHW      [][]int64
	switchBlocked [][]int64

	// Distributional telemetry (Probe.Hists / Probe.Tracer); all nil
	// when the probe carries neither, so the hooks below reduce to a
	// couple of nil checks.
	hists   []*obs.Hist // live per-stage waiting-time histograms, 0-based
	histTot *obs.Hist   // live total-wait histogram
	tracer  *obs.Tracer
	sampleN int64
	measSeq int64               // measured-message ordinal in trace order
	spans   map[int32]*obs.Span // in-flight sampled spans by slot index
	engine  string
	seed    uint64
}

func newRunProbe(cfg *Config, stages int, engine string) *runProbe {
	pc := &runProbe{
		stageLoad: make([]int64, stages),
		stageHW:   make([]int64, stages),
		engine:    engine,
		seed:      cfg.Seed,
	}
	if hs := cfg.Probe.Hists; hs != nil {
		pc.hists = hs.Stages(stages)
		pc.histTot = hs.Total()
	}
	if tr := cfg.Probe.Tracer; tr != nil {
		pc.tracer = tr
		pc.sampleN = tr.SampleN()
		pc.spans = make(map[int32]*obs.Span)
	}
	return pc
}

// admit is called for every message in trace order as it is pulled from
// the arrival source; it assigns measured messages their ordinal and
// opens a span for the sampled ones. Both engines consume schedule
// blocks in trace order, so a message gets the same ordinal — and the
// same sampling decision — in either engine.
func (pc *runProbe) admit(si int32, meas bool, arrival int64, dest uint32) {
	if !meas || pc.tracer == nil {
		return
	}
	seq := pc.measSeq
	pc.measSeq++
	if seq%pc.sampleN != 0 {
		return
	}
	pc.spans[si] = &obs.Span{
		Msg: seq, Seed: pc.seed, Engine: pc.engine,
		Dest: dest, Arrival: arrival,
	}
}

// stageObs records one service start at a stage (0-based): the message
// enqueued at cycle enq begins service at start and holds the output
// port until depart. Feeds the live histograms (measured messages only,
// matching the reported statistics) and any open span.
func (pc *runProbe) stageObs(si int32, stage int, meas bool, enq, start, depart int64) {
	if meas && pc.hists != nil {
		pc.hists[stage].Record(start - enq)
	}
	if len(pc.spans) > 0 {
		if sp, ok := pc.spans[si]; ok {
			sp.Stages = append(sp.Stages, obs.StageSpan{
				Stage: stage + 1, Enqueue: enq, Start: start, Depart: depart,
				Wait: start - enq,
			})
		}
	}
}

// finishObs records a message leaving the network with the given total
// accumulated wait, closing its span if one is open.
func (pc *runProbe) finishObs(si int32, meas bool, total int64) {
	if meas && pc.histTot != nil {
		pc.histTot.Record(total)
	}
	if len(pc.spans) > 0 {
		if sp, ok := pc.spans[si]; ok {
			delete(pc.spans, si)
			sp.TotalWait = total
			pc.tracer.Add(*sp)
		}
	}
}

// dropSpan discards the span of a message dropped at a full buffer; its
// slot index is about to be recycled and must not inherit the span.
func (pc *runProbe) dropSpan(si int32) {
	if len(pc.spans) > 0 {
		delete(pc.spans, si)
	}
}

// enter records one message arriving at a stage's backlog.
func (pc *runProbe) enter(stage int) {
	v := pc.stageLoad[stage] + 1
	pc.stageLoad[stage] = v
	if v > pc.stageHW[stage] {
		pc.stageHW[stage] = v
	}
}

// leave records n messages departing a stage's backlog.
func (pc *runProbe) leave(stage int, n int64) {
	pc.stageLoad[stage] -= n
}

// active tracks the in-network backlog high-water mark.
func (pc *runProbe) active(v int64) {
	if v > pc.maxActive {
		pc.maxActive = v
	}
}

// tick reports the cycles simulated since the last tick to the shared
// probe; called on the engines' context-poll cadence.
func (pc *runProbe) tick(p *obs.SimProbe, t int64) {
	p.AddCycles(t - pc.lastFlush)
	pc.lastFlush = t
}

// flush hands the run's sample to the shared probe.
func (pc *runProbe) flush(p *obs.SimProbe, t int64, res *Result) {
	p.Record(obs.RunSample{
		Cycles:         t - pc.lastFlush,
		BlockPulls:     pc.blockPulls,
		FreeListHits:   pc.freeHits,
		SlotAllocs:     pc.slotAllocs,
		Messages:       res.Messages,
		MaxInFlight:    pc.maxActive,
		StageHighWater: pc.stageHW,
		SwitchHW:       pc.switchHW,
		SwitchBlocked:  pc.switchBlocked,
		BlockedCycles:  res.BlockedCycles,
	})
}
