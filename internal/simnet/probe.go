package simnet

import "banyan/internal/obs"

// runProbe accumulates one run's engine instrumentation in plain local
// counters — no synchronization on the hot path — and flushes them to
// the shared obs.SimProbe once when the run finishes (plus periodic
// cycle ticks on the context-poll cadence, so the cycles/sec meter is
// live). It exists only when Config.Probe is set; a nil runProbe means
// the engines skip every instrumentation branch.
//
// "Backlog" per stage counts messages currently held for that stage:
// queued at a stage's output ports in the literal engine, scheduled in
// a stage's pending buckets in the fast engine. Either way the
// high-water mark is the figure that sizes real buffers.
type runProbe struct {
	lastFlush  int64 // cycles already reported via AddCycles
	blockPulls int64
	freeHits   int64
	slotAllocs int64
	maxActive  int64
	stageLoad  []int64
	stageHW    []int64
}

func newRunProbe(stages int) *runProbe {
	return &runProbe{stageLoad: make([]int64, stages), stageHW: make([]int64, stages)}
}

// enter records one message arriving at a stage's backlog.
func (pc *runProbe) enter(stage int) {
	v := pc.stageLoad[stage] + 1
	pc.stageLoad[stage] = v
	if v > pc.stageHW[stage] {
		pc.stageHW[stage] = v
	}
}

// leave records n messages departing a stage's backlog.
func (pc *runProbe) leave(stage int, n int64) {
	pc.stageLoad[stage] -= n
}

// active tracks the in-network backlog high-water mark.
func (pc *runProbe) active(v int64) {
	if v > pc.maxActive {
		pc.maxActive = v
	}
}

// tick reports the cycles simulated since the last tick to the shared
// probe; called on the engines' context-poll cadence.
func (pc *runProbe) tick(p *obs.SimProbe, t int64) {
	p.AddCycles(t - pc.lastFlush)
	pc.lastFlush = t
}

// flush hands the run's sample to the shared probe.
func (pc *runProbe) flush(p *obs.SimProbe, t int64, res *Result) {
	p.Record(obs.RunSample{
		Cycles:         t - pc.lastFlush,
		BlockPulls:     pc.blockPulls,
		FreeListHits:   pc.freeHits,
		SlotAllocs:     pc.slotAllocs,
		Messages:       res.Messages,
		MaxInFlight:    pc.maxActive,
		StageHighWater: pc.stageHW,
	})
}
