package simnet

import (
	"context"
	"fmt"
	"math/rand/v2"

	"banyan/internal/stats"
)

// Result carries the statistics of one simulation run.
type Result struct {
	Rows     int   // rows per stage actually simulated
	Wrapped  bool  // shuffle wrapped (rows < k^n)
	Messages int64 // measured messages

	// StageWait[i] accumulates the waiting times observed at stage i+1
	// by measured messages.
	StageWait []stats.Welford

	// TotalWait is the histogram of Σ_stages wait over measured messages.
	TotalWait stats.Hist

	// StageCov is the covariance matrix of the per-stage waiting-time
	// vector; nil unless Config.TrackStageWaits was set.
	StageCov *stats.CovMatrix

	// Dropped counts messages lost to full buffers (literal engine with
	// BufferCap > 0 only).
	Dropped int64

	// Offered counts all simulated messages including warmup.
	Offered int64

	// HotWait[i] accumulates the stage-(i+1) waits of the subset of
	// measured messages addressed to the hot module (populated only
	// when Config.HotModule > 0; StageWait still covers all messages).
	// Comparing the two exposes tree saturation.
	HotWait []stats.Welford

	// QueueDepth[i], populated by the literal engine when
	// Config.TrackOccupancy is set, accumulates the per-cycle number of
	// messages present (queued or in service) at each output queue of
	// stage i+1 — the statistic that sizes real buffers.
	QueueDepth []stats.Welford

	// MaxQueueDepth[i] is the largest occupancy observed at any stage
	// i+1 queue (with TrackOccupancy).
	MaxQueueDepth []int

	// Truncated marks a run stopped before completion — by context
	// cancellation, a wall-clock deadline, or a saturation guard
	// (Config.MaxInFlight / Config.DrainCycles). The statistics cover
	// only the messages that completed before the stop; messages still
	// in flight are discarded.
	Truncated bool

	// Unstable marks a truncation caused by a saturation guard: the
	// in-flight backlog exceeded Config.MaxInFlight, or the network
	// failed to drain within the Config.DrainCycles budget — the
	// divergence signature of configurations at m·λ ≥ 1.
	Unstable bool

	// TruncatedAt is the cycle at which a truncated run stopped (the
	// number of cycles actually simulated); 0 unless Truncated.
	TruncatedAt int64

	// BlockedCycles counts (port, cycle) pairs at which the graph engine
	// in blocking mode could not move a message forward because the next
	// queue was full — injections held at the sources included. Zero in
	// committed mode and whenever buffers never fill.
	BlockedCycles int64

	// Deflected counts messages pushed onto a healthy sister port by the
	// graph engine's reroute failure policy; Misrouted counts the subset
	// that consequently exited the network at the wrong output. Both are
	// zero without Config.FailLinks.
	Deflected int64
	Misrouted int64

	// SwitchSat carries the graph engine's per-switch telemetry and
	// saturation verdicts, ordered by stage then switch index; nil
	// unless Config.TrackSwitches.
	SwitchSat []SwitchStat
}

// SwitchStat is one switch's graph-engine telemetry: the backlog
// high-water mark across its output ports, the number of (port, cycle)
// pairs it spent blocked, and the saturation verdict (blocked at least
// once, or backlog reaching Config.SatDepth).
type SwitchStat struct {
	Stage     int // 1-based
	Switch    int
	HighWater int64
	Blocked   int64
	Saturated bool
}

// truncate flags the result as stopped at cycle t.
func (r *Result) truncate(t int64, unstable bool) {
	r.Truncated = true
	r.Unstable = r.Unstable || unstable
	r.TruncatedAt = t
}

// MeanTotalWait returns the empirical mean of the total waiting time.
func (r *Result) MeanTotalWait() float64 { return r.TotalWait.Mean() }

// VarTotalWait returns the empirical variance of the total waiting time.
func (r *Result) VarTotalWait() float64 { return r.TotalWait.Variance() }

// Run executes the fast message-level engine (the batch kernel in
// kernel.go) on a streamed trace: the arrival schedule is generated in
// chunks and consumed incrementally, so peak memory is bounded by the
// in-flight message count rather than the schedule length.
func Run(cfg *Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with cancellation: when ctx is cancelled (or its deadline
// passes) the engine stops at a clean cycle boundary and returns the
// partial Result — flagged Truncated — alongside the context's error.
func RunCtx(ctx context.Context, cfg *Config) (*Result, error) {
	src, err := NewTraceStream(cfg, 0)
	if err != nil {
		return nil, err
	}
	// The stream is private to this run, so it can borrow the arena's
	// block scratch — back-to-back replications then allocate nothing
	// for trace generation either.
	ar := getArena()
	ar.lendBlockScratch(src)
	defer func() {
		ar.harvestBlockScratch(src)
		ar.release()
	}()
	return runKernel(ctx, cfg, src, ar)
}

// RunTrace executes the fast message-level engine on a prepared
// materialized trace (e.g. to drive both engines from identical
// traffic). Run and RunTrace produce identical statistics at the same
// seed: the engine consumes the same message sequence either way.
func RunTrace(cfg *Config, tr *Trace) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return RunKernelSource(cfg, tr.Source())
}

// fastMsg is the per-in-flight-message state of the fast engine. Slots
// are recycled through a free list as messages leave the network.
type fastMsg struct {
	row   int32  // row of the port the message last departed (input row at stage 1)
	dest  uint32 // destination address
	wsum  int32  // accumulated waiting time
	svc   int16  // service requirement, cycles
	meas  bool   // counts toward statistics
	waits []int16
}

// cycleBuckets buckets in-flight message slots by absolute arrival cycle
// for one stage: a growable power-of-two ring indexed by cycle. take
// hands ownership of a bucket to the caller (so future pushes cannot
// alias a bucket still being iterated); recycle returns the backing
// array for reuse.
type cycleBuckets struct {
	buckets [][]int32
	mask    int64
	floor   int64 // cycles below floor have been taken already
	spare   [][]int32
}

func newCycleBuckets() *cycleBuckets {
	return &cycleBuckets{buckets: make([][]int32, 64), mask: 63}
}

func (cb *cycleBuckets) push(t int64, v int32) {
	if t-cb.floor >= int64(len(cb.buckets)) {
		cb.grow(t)
	}
	i := t & cb.mask
	if cb.buckets[i] == nil && len(cb.spare) > 0 {
		cb.buckets[i] = cb.spare[len(cb.spare)-1]
		cb.spare = cb.spare[:len(cb.spare)-1]
	}
	cb.buckets[i] = append(cb.buckets[i], v)
}

// grow re-homes the ring so that cycle t fits alongside cb.floor.
func (cb *cycleBuckets) grow(t int64) {
	size := int64(len(cb.buckets))
	for t-cb.floor >= size {
		size *= 2
	}
	nb := make([][]int32, size)
	for c := cb.floor; c < cb.floor+int64(len(cb.buckets)); c++ {
		if b := cb.buckets[c&cb.mask]; b != nil {
			nb[c&(size-1)] = b
		}
	}
	cb.buckets, cb.mask = nb, size-1
}

// take removes and returns the bucket for cycle t (which must be ≥ the
// previous take's cycle). The caller owns the returned slice until it
// hands it back via recycle.
func (cb *cycleBuckets) take(t int64) []int32 {
	i := t & cb.mask
	b := cb.buckets[i]
	cb.buckets[i] = nil
	cb.floor = t + 1
	return b
}

// Spare-list retention caps: a saturated high-ρ cycle can momentarily
// bucket tens of thousands of messages, and an uncapped spare list
// would pin such peak-sized arrays for the rest of the run. Oversized
// buckets are released to the GC instead; steady-state cycles sit far
// below the cap, so recycling still eliminates their churn.
const (
	maxSpareBuckets   = 64
	maxSpareBucketCap = 4096
)

func (cb *cycleBuckets) recycle(b []int32) {
	if cap(b) == 0 || cap(b) > maxSpareBucketCap || len(cb.spare) >= maxSpareBuckets {
		return
	}
	cb.spare = append(cb.spare, b[:0])
}

// RunSource executes the reference message-level engine against an
// arrival source, pulling schedule blocks on demand. The production
// entry points (Run, RunCtx, RunTrace) route to the batch kernel in
// kernel.go, which implements the identical algorithm over flat
// structure-of-arrays state; this straightforward implementation is
// kept as the differential oracle the kernel is checked against —
// the two are byte-identical at every seed.
//
// The engine advances a global clock cycle by cycle. At each cycle every
// stage's batch of arriving messages is visited (simultaneous arrivals
// in uniformly random order, which realizes the random batch-order
// service discipline assumed by the analysis); each message joins the
// output queue selected by its routing digit, begins service at
// s = max(arrival, port-free time), advances the port-free time by its
// service requirement, and is handed to the next stage with arrival time
// s+1. With infinite buffers and FIFO queues this reproduces the
// cycle-level dynamics exactly while doing work proportional to the
// number of message-stage events only, and holding state proportional to
// the number of in-flight messages only.
func RunSource(cfg *Config, src ArrivalSource) (*Result, error) {
	return RunSourceCtx(context.Background(), cfg, src)
}

// ctxCheckMask controls how often the engines poll the context: every
// (ctxCheckMask+1) cycles, so the cancellation fast path costs nothing
// measurable while stops still land within a few thousand cycles.
const ctxCheckMask = 1023

// RunSourceCtx is RunSource with cancellation and saturation guards.
//
// Cancellation (ctx done) stops the engine at a clean cycle boundary: it
// returns the partial Result — flagged Truncated, statistics covering the
// messages that completed — together with ctx.Err(), so callers can both
// inspect the partial data and see why the run stopped. The saturation
// guards (Config.MaxInFlight, Config.DrainCycles) instead return a nil
// error: a truncated-Unstable result is a successful, deterministic
// measurement of a diverging configuration, not a failure.
func RunSourceCtx(ctx context.Context, cfg *Config, src ArrivalSource) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.requireStageModel("fast"); err != nil {
		return nil, err
	}
	meta := src.Meta()
	n := meta.Stages
	res := &Result{
		Rows:      meta.Rows,
		Wrapped:   meta.Wrapped,
		StageWait: make([]stats.Welford, n),
	}
	if cfg.TrackStageWaits {
		res.StageCov = stats.NewCovMatrix(n)
	}
	if cfg.HotModule > 0 {
		res.HotWait = make([]stats.Welford, n)
	}

	rng := rand.New(rand.NewPCG(cfg.Seed^0xa5a5a5a5a5a5a5a5, cfg.Seed+1))
	resample := cfg.serviceSampler()
	free := make([]int64, n*meta.Rows) // per-stage, per-port next-free cycle
	pending := make([]*cycleBuckets, n)
	for s := range pending {
		pending[s] = newCycleBuckets()
	}

	var t int64
	var pc *runProbe
	if cfg.Probe != nil {
		pc = newRunProbe(cfg, n, "fast")
		defer func() { pc.flush(cfg.Probe, t, res) }()
	}
	wh := cfg.WaitHists

	fi := cfg.Fault
	var slots []fastMsg
	var freeSlots []int32
	alloc := func() int32 {
		if len(freeSlots) > 0 {
			i := freeSlots[len(freeSlots)-1]
			freeSlots = freeSlots[:len(freeSlots)-1]
			if pc != nil {
				pc.freeHits++
			}
			return i
		}
		if fi != nil {
			fi.OnSlotAlloc() // may panic with a typed injected error
		}
		slots = append(slots, fastMsg{})
		if pc != nil {
			pc.slotAllocs++
		}
		return int32(len(slots) - 1)
	}

	inFlight := int64(0)
	active := int64(0) // arrived at stage 1 but not yet exited (network backlog)
	exhausted := false
	covered := int64(0) // arrivals at cycles < covered are all enqueued
	vec := make([]float64, n)
	maxInFlight := cfg.maxInFlight()
	drainLimit := cfg.drainLimit(meta.Horizon)

	for ; ; t++ {
		if fi != nil {
			if err := fi.AtCycle(ctx, t); err != nil {
				res.truncate(t, false)
				return res, err
			}
		}
		if t&ctxCheckMask == 0 {
			if pc != nil {
				pc.tick(cfg.Probe, t)
			}
			if err := ctx.Err(); err != nil {
				res.truncate(t, false)
				return res, err
			}
		}
		if active > maxInFlight {
			// Backlog growing without bound: the divergence signature of
			// a configuration at or beyond m·λ = 1.
			res.truncate(t, true)
			return res, nil
		}
		if t > drainLimit {
			// Still holding messages past the drain budget: saturated.
			res.truncate(t, true)
			return res, nil
		}
		// Pull schedule blocks until cycle t is fully covered.
		for !exhausted && covered <= t {
			blk, err := src.Next()
			if err != nil {
				return nil, err
			}
			if blk == nil {
				exhausted = true
				break
			}
			if pc != nil {
				pc.blockPulls++
			}
			covered = int64(blk.End)
			res.Offered += int64(blk.Len())
			for i := 0; i < blk.Len(); i++ {
				si := alloc()
				m := &slots[si]
				m.row, m.dest, m.svc, m.meas = blk.In[i], blk.Dest[i], blk.Svc[i], blk.Meas[i]
				m.wsum = 0
				if cfg.TrackStageWaits {
					if cap(m.waits) < n {
						m.waits = make([]int16, n)
					}
					m.waits = m.waits[:n]
				}
				pending[0].push(int64(blk.T[i]), si)
				if pc != nil {
					pc.enter(0)
					pc.admit(si, m.meas, int64(blk.T[i]), m.dest)
				}
				inFlight++
			}
		}
		if inFlight == 0 {
			if exhausted {
				break
			}
			continue
		}

		for stage := 0; stage < n; stage++ {
			bk := pending[stage].take(t)
			if len(bk) == 0 {
				pending[stage].recycle(bk)
				continue
			}
			if pc != nil {
				pc.leave(stage, int64(len(bk)))
			}
			if stage == 0 {
				active += int64(len(bk))
				if pc != nil {
					pc.active(active)
				}
			}
			// Random service order among simultaneous arrivals.
			rng.Shuffle(len(bk), func(a, b int) { bk[a], bk[b] = bk[b], bk[a] })
			stageFree := free[stage*meta.Rows : (stage+1)*meta.Rows]
			for _, si := range bk {
				m := &slots[si]
				digit := meta.DigitOf(m.dest, stage+1)
				port := meta.NextRow(m.row, digit)
				s := t
				if f := stageFree[port]; f > s {
					s = f
				}
				svc := int64(m.svc)
				if resample != nil {
					svc = int64(resample.Sample(rng.Float64(), rng.Float64()))
				}
				stageFree[port] = s + svc
				w := int32(s - t)
				m.wsum += w
				if m.meas {
					res.StageWait[stage].Add(float64(w))
					if res.HotWait != nil && m.dest == 0 {
						res.HotWait[stage].Add(float64(w))
					}
					if wh != nil {
						wh[stage].Add(int(w))
					}
				}
				if pc != nil {
					pc.stageObs(si, stage, m.meas, t, s, s+svc)
				}
				if m.waits != nil {
					m.waits[stage] = int16(w)
				}
				if stage+1 < n {
					m.row = port
					pending[stage+1].push(s+1, si)
					if pc != nil {
						pc.enter(stage + 1)
					}
				} else {
					if m.meas {
						res.Messages++
						res.TotalWait.Add(int(m.wsum))
						if res.StageCov != nil {
							for j := 0; j < n; j++ {
								vec[j] = float64(m.waits[j])
							}
							res.StageCov.Add(vec)
						}
					}
					if pc != nil {
						pc.finishObs(si, m.meas, int64(m.wsum))
					}
					freeSlots = append(freeSlots, si)
					inFlight--
					active--
				}
			}
			pending[stage].recycle(bk)
		}
	}
	if res.Messages == 0 {
		return nil, fmt.Errorf("simnet: no measured messages (p too small or horizon too short)")
	}
	return res, nil
}
