package simnet

import (
	"fmt"
	"math/rand/v2"

	"banyan/internal/stats"
)

// Result carries the statistics of one simulation run.
type Result struct {
	Rows     int   // rows per stage actually simulated
	Wrapped  bool  // shuffle wrapped (rows < k^n)
	Messages int64 // measured messages

	// StageWait[i] accumulates the waiting times observed at stage i+1
	// by measured messages.
	StageWait []stats.Welford

	// TotalWait is the histogram of Σ_stages wait over measured messages.
	TotalWait stats.Hist

	// StageCov is the covariance matrix of the per-stage waiting-time
	// vector; nil unless Config.TrackStageWaits was set.
	StageCov *stats.CovMatrix

	// Dropped counts messages lost to full buffers (literal engine with
	// BufferCap > 0 only).
	Dropped int64

	// Offered counts all simulated messages including warmup.
	Offered int64

	// HotWait[i] accumulates the stage-(i+1) waits of the subset of
	// measured messages addressed to the hot module (populated only
	// when Config.HotModule > 0; StageWait still covers all messages).
	// Comparing the two exposes tree saturation.
	HotWait []stats.Welford

	// QueueDepth[i], populated by the literal engine when
	// Config.TrackOccupancy is set, accumulates the per-cycle number of
	// messages present (queued or in service) at each output queue of
	// stage i+1 — the statistic that sizes real buffers.
	QueueDepth []stats.Welford

	// MaxQueueDepth[i] is the largest occupancy observed at any stage
	// i+1 queue (with TrackOccupancy).
	MaxQueueDepth []int
}

// MeanTotalWait returns the empirical mean of the total waiting time.
func (r *Result) MeanTotalWait() float64 { return r.TotalWait.Mean() }

// VarTotalWait returns the empirical variance of the total waiting time.
func (r *Result) VarTotalWait() float64 { return r.TotalWait.Variance() }

// Run generates a trace for cfg and executes the fast message-level
// engine on it.
func Run(cfg *Config) (*Result, error) {
	tr, err := GenerateTrace(cfg)
	if err != nil {
		return nil, err
	}
	return RunTrace(cfg, tr)
}

// RunTrace executes the fast message-level engine on a prepared trace.
//
// The engine processes the network one stage at a time. Within a stage,
// messages are visited in arrival-time order (simultaneous arrivals in
// uniformly random order, which realizes the random batch-order service
// discipline assumed by the analysis); each message joins the output
// queue selected by its routing digit, begins service at
// s = max(arrival, port-free time), advances the port-free time by its
// service requirement, and is handed to the next stage with arrival time
// s+1. With infinite buffers and FIFO queues this reproduces the
// cycle-level dynamics exactly while doing work proportional to the
// number of message-stage events only.
func RunTrace(cfg *Config, tr *Trace) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Stages
	m := tr.Len()
	res := &Result{
		Rows:      tr.Rows,
		Wrapped:   tr.Wrapped,
		StageWait: make([]stats.Welford, n),
		Offered:   int64(m),
	}
	if cfg.TrackStageWaits {
		res.StageCov = stats.NewCovMatrix(n)
	}
	if cfg.HotModule > 0 {
		res.HotWait = make([]stats.Welford, n)
	}

	// Per-message mutable state.
	arr := make([]int32, m) // arrival time at the current stage
	row := make([]int32, m) // current row
	wsum := make([]int32, m)
	copy(arr, tr.T)
	copy(row, tr.In)

	var stageWaits [][]int16
	if cfg.TrackStageWaits {
		stageWaits = make([][]int16, m)
		for i := range stageWaits {
			stageWaits[i] = make([]int16, n)
		}
	}

	rng := rand.New(rand.NewPCG(cfg.Seed^0xa5a5a5a5a5a5a5a5, cfg.Seed+1))
	resample := cfg.serviceSampler()
	free := make([]int64, tr.Rows) // per-port next-free cycle, reused per stage
	var buckets [][]int32          // message indices by arrival time
	maxT := int32(0)
	for _, t := range arr {
		if t > maxT {
			maxT = t
		}
	}

	for stage := 1; stage <= n; stage++ {
		// Rebuild time buckets for this stage.
		need := int(maxT) + 2
		if cap(buckets) < need {
			buckets = make([][]int32, need)
		}
		buckets = buckets[:need]
		for i := range buckets {
			buckets[i] = buckets[i][:0]
		}
		for i := 0; i < m; i++ {
			buckets[arr[i]] = append(buckets[arr[i]], int32(i))
		}
		for i := range free {
			free[i] = 0
		}
		newMax := int32(0)
		for t := 0; t < len(buckets); t++ {
			bk := buckets[t]
			if len(bk) == 0 {
				continue
			}
			// Random service order among simultaneous arrivals.
			rng.Shuffle(len(bk), func(a, b int) { bk[a], bk[b] = bk[b], bk[a] })
			for _, idx := range bk {
				i := int(idx)
				digit := tr.Digit(i, stage)
				port := tr.NextRow(row[i], digit)
				s := int64(t)
				if f := free[port]; f > s {
					s = f
				}
				svc := int64(tr.Svc[i])
				if resample != nil {
					svc = int64(resample.Sample(rng.Float64(), rng.Float64()))
				}
				free[port] = s + svc
				w := int32(s) - int32(t)
				wsum[i] += w
				if tr.Meas[i] {
					res.StageWait[stage-1].Add(float64(w))
					if res.HotWait != nil && tr.Dest[i] == 0 {
						res.HotWait[stage-1].Add(float64(w))
					}
				}
				if stageWaits != nil {
					stageWaits[i][stage-1] = int16(w)
				}
				arr[i] = int32(s) + 1
				row[i] = port
				if arr[i] > newMax {
					newMax = arr[i]
				}
			}
		}
		maxT = newMax
	}

	vec := make([]float64, n)
	for i := 0; i < m; i++ {
		if !tr.Meas[i] {
			continue
		}
		res.Messages++
		res.TotalWait.Add(int(wsum[i]))
		if stageWaits != nil {
			for j := 0; j < n; j++ {
				vec[j] = float64(stageWaits[i][j])
			}
			res.StageCov.Add(vec)
		}
	}
	if res.Messages == 0 {
		return nil, fmt.Errorf("simnet: no measured messages (p too small or horizon too short)")
	}
	return res, nil
}
