package simnet

import (
	"fmt"
	"os"
	"testing"

	"banyan/internal/topology"
)

// golden pins exact recorded statistics at fixed seeds. Any change to
// RNG consumption order, trace generation, or engine scheduling shows up
// here as a hard failure — the repo's seed-stability contract. If a
// change is *intended* to alter sample paths (and cross-validation still
// passes), regenerate the literals with
//
//	SIMNET_GOLDEN_PRINT=1 go test ./internal/simnet/ -run TestGolden -v
type golden struct {
	messages int64
	offered  int64
	dropped  int64
	meanW    string // fmt %.10g of MeanTotalWait
	varW     string
	stage1W  string // fmt %.10g of StageWait[0].Mean()
}

func goldenCases(t *testing.T) []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"uniform", Config{K: 2, Stages: 6, P: 0.5, Cycles: 3000, Warmup: 400, Seed: 0x601d}},
		{"bulk", Config{K: 2, Stages: 4, P: 0.15, Bulk: 2, Service: mustConstSvc(t, 3),
			Cycles: 2500, Warmup: 300, Seed: 0xb011}},
		{"favorite", Config{K: 2, Stages: 8, P: 0.5, Q: 0.3, Cycles: 1500, Warmup: 200,
			Seed: 0xfa7e}},
		{"bursty", Config{K: 2, Stages: 4, P: 0.3, Cycles: 2000, Warmup: 250, Seed: 0xb42,
			Burst: &BurstParams{POnRate: 0.125, POffRate: 0.125}}},
	}
}

func snapshot(res *Result) golden {
	return golden{
		messages: res.Messages,
		offered:  res.Offered,
		dropped:  res.Dropped,
		meanW:    fmt.Sprintf("%.10g", res.MeanTotalWait()),
		varW:     fmt.Sprintf("%.10g", res.VarTotalWait()),
		stage1W:  fmt.Sprintf("%.10g", res.StageWait[0].Mean()),
	}
}

func checkGolden(t *testing.T, name string, res *Result, want map[string]golden) {
	t.Helper()
	got := snapshot(res)
	if os.Getenv("SIMNET_GOLDEN_PRINT") != "" {
		t.Logf("%q: {messages: %d, offered: %d, dropped: %d, meanW: %q, varW: %q, stage1W: %q},",
			name, got.messages, got.offered, got.dropped, got.meanW, got.varW, got.stage1W)
		return
	}
	w, ok := want[name]
	if !ok {
		t.Fatalf("%s: no golden entry", name)
	}
	if got != w {
		t.Errorf("%s:\ngot  %+v\nwant %+v", name, got, w)
	}
}

// fastGolden pins the message-level engine's sample paths. Both the
// batch kernel (TestGoldenFastEngine) and the scalar reference engine
// (TestGoldenReferenceEngine) must reproduce these same literals — the
// byte-identity contract anchored to recorded values.
var fastGolden = map[string]golden{
	"uniform":  {messages: 95879, offered: 108641, dropped: 0, meanW: "1.710218087", varW: "2.429465257", stage1W: "0.2552800926"},
	"bulk":     {messages: 12178, offered: 13630, dropped: 0, meanW: "75.99343078", varW: "1862.091269", stage1W: "26.06413204"},
	"favorite": {messages: 191600, offered: 217241, dropped: 0, meanW: "2.056471816", varW: "2.900349556", stage1W: "0.2291336117"},
	"bursty":   {messages: 9670, offered: 10920, dropped: 0, meanW: "0.5433298862", varW: "0.6545341032", stage1W: "0.1539813857"},
}

func TestGoldenFastEngine(t *testing.T) {
	for _, c := range goldenCases(t) {
		cfg := c.cfg
		res, err := Run(&cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		checkGolden(t, c.name, res, fastGolden)
	}
}

func TestGoldenLiteralEngine(t *testing.T) {
	want := map[string]golden{
		"literal cap=2": {messages: 14380, offered: 18973, dropped: 2635, meanW: "1.234840056", varW: "0.9884523736", stage1W: "0.3346640883"},
	}
	cfg := Config{K: 2, Stages: 4, P: 0.7, Cycles: 1500, Warmup: 200, Seed: 0x117, BufferCap: 2}
	src, err := NewTraceStream(&cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLiteralSource(&cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "literal cap=2", res, want)
}

// TestGoldenGraphEngine pins the graph engine's sample paths. The
// "uniform" entry is deliberately the stage-model literal reused
// verbatim: under the default omega wiring with unlimited buffers the
// graph engine must reproduce the kernel's recorded values bit for bit
// (the collapse contract anchored to goldens). The remaining entries
// pin the graph-only scenarios — alternate wirings, finite buffers
// with backpressure, hot-spot traffic, and link-failure rerouting.
func TestGoldenGraphEngine(t *testing.T) {
	want := map[string]golden{
		"uniform": fastGolden["uniform"],
		// Butterfly at k=2 is a stage-output relabeling of omega, so the
		// relabel-invariance property makes its literals identical to the
		// omega ones; flip consumes digits LSB-first and walks genuinely
		// different sample paths.
		"butterfly": fastGolden["uniform"],
		"flip":      {messages: 95879, offered: 108641, dropped: 0, meanW: "1.712783821", varW: "2.401783924", stage1W: "0.249585415"},
		"blocking":  {messages: 16711, offered: 18973, dropped: 0, meanW: "3.171743163", varW: "9.035192216", stage1W: "0.930883849"},
		"hotspot":   {messages: 9743, offered: 10944, dropped: 0, meanW: "312.8739608", varW: "280177.0052", stage1W: "0.3086318382"},
		"faillink":  {messages: 14476, offered: 16356, dropped: 0, meanW: "24.44597955", varW: "4526.822241", stage1W: "0.3941005803"},
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"uniform", Config{K: 2, Stages: 6, P: 0.5, Cycles: 3000, Warmup: 400, Seed: 0x601d}},
		{"butterfly", Config{K: 2, Stages: 6, P: 0.5, Cycles: 3000, Warmup: 400, Seed: 0x601d,
			Topology: topology.Butterfly}},
		{"flip", Config{K: 2, Stages: 6, P: 0.5, Cycles: 3000, Warmup: 400, Seed: 0x601d,
			Topology: topology.Flip}},
		{"blocking", Config{K: 2, Stages: 4, P: 0.7, Cycles: 1500, Warmup: 200, Seed: 0x117,
			StageBuffers: []int{4, 4, 4, 4}}},
		{"hotspot", Config{K: 2, Stages: 4, P: 0.5, HotModule: 0.25, Cycles: 1200, Warmup: 150,
			Seed: 0x407}},
		{"faillink", Config{K: 2, Stages: 4, P: 0.6, Cycles: 1500, Warmup: 200, Seed: 0xfa11,
			FailLinks: []LinkFail{{Stage: 2, Row: 3}}, FailPolicy: "reroute"}},
	}
	for _, c := range cases {
		cfg := c.cfg
		res, err := RunGraph(&cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		checkGolden(t, c.name, res, want)
	}
}
