package simnet

import (
	"testing"
)

// TestCycleBucketsSpareRetention is the regression test for the spare
// free-list leak: recycling a peak-sized bucket from a saturated cycle
// must release it to the GC, not pin it in the spare list for the rest
// of the run, and the spare list itself stays bounded no matter how many
// buckets a run recycles.
func TestCycleBucketsSpareRetention(t *testing.T) {
	cb := newCycleBuckets()

	// An oversized bucket (capacity past maxSpareBucketCap) is dropped.
	big := make([]int32, 0, maxSpareBucketCap+1)
	cb.recycle(big)
	if len(cb.spare) != 0 {
		t.Fatalf("oversized bucket retained: spare len %d", len(cb.spare))
	}

	// Zero-capacity slices are ignored too (nothing to reuse).
	cb.recycle(nil)
	if len(cb.spare) != 0 {
		t.Fatal("nil bucket retained")
	}

	// The spare list is capped at maxSpareBuckets entries.
	for i := 0; i < 3*maxSpareBuckets; i++ {
		cb.recycle(make([]int32, 0, 16))
	}
	if len(cb.spare) != maxSpareBuckets {
		t.Fatalf("spare list holds %d buckets, cap is %d", len(cb.spare), maxSpareBuckets)
	}

	// push draws from the spare list instead of allocating.
	before := len(cb.spare)
	cb.push(5, 42)
	if len(cb.spare) != before-1 {
		t.Fatalf("push did not consume a spare bucket (%d -> %d)", before, len(cb.spare))
	}
	if got := cb.take(5); len(got) != 1 || got[0] != 42 {
		t.Fatalf("take(5) = %v, want [42]", got)
	}
}

// TestCycleBucketsGrowPreservesSchedule: growing the ring mid-run keeps
// every scheduled slot in its cycle, in push order.
func TestCycleBucketsGrowPreservesSchedule(t *testing.T) {
	cb := newCycleBuckets()
	// Fill several cycles inside the initial 64-cycle window…
	for c := int64(0); c < 10; c++ {
		for v := int32(0); v < 3; v++ {
			cb.push(c, 10*int32(c)+v)
		}
	}
	// …then push far enough ahead to force two doublings.
	cb.push(200, 999)
	for c := int64(0); c < 10; c++ {
		got := cb.take(c)
		if len(got) != 3 {
			t.Fatalf("cycle %d: %v, want 3 entries", c, got)
		}
		for v := int32(0); v < 3; v++ {
			if got[v] != 10*int32(c)+v {
				t.Fatalf("cycle %d: %v out of push order", c, got)
			}
		}
		cb.recycle(got)
	}
	if got := cb.take(200); len(got) != 1 || got[0] != 999 {
		t.Fatalf("take(200) = %v, want [999]", got)
	}
}

// TestKringGrowTake: the kernel's flat ring preserves cycle assignment
// and push order across growth, counts its population exactly, and
// retains bucket capacity in place after a take so the steady state does
// not re-allocate.
func TestKringGrowTake(t *testing.T) {
	var r kring
	r.reset()
	for c := int64(0); c < 8; c++ {
		for v := int32(0); v < 4; v++ {
			r.push(c, 100*int32(c)+v)
		}
	}
	r.push(500, 7) // forces re-homing of [floor, floor+64)
	if r.count != 33 {
		t.Fatalf("count = %d, want 33", r.count)
	}
	batch := make([]int32, 0, 8)
	for c := int64(0); c < 8; c++ {
		batch = r.take(c, batch[:0])
		if len(batch) != 4 {
			t.Fatalf("cycle %d: %v, want 4 entries", c, batch)
		}
		for v := int32(0); v < 4; v++ {
			if batch[v] != 100*int32(c)+v {
				t.Fatalf("cycle %d: %v out of push order", c, batch)
			}
		}
	}
	if batch = r.take(500, batch[:0]); len(batch) != 1 || batch[0] != 7 {
		t.Fatalf("take(500) = %v, want [7]", batch)
	}
	if r.count != 0 {
		t.Fatalf("count = %d after draining, want 0", r.count)
	}

	// A taken cell keeps its capacity: the next push to the aliased
	// cycle appends into the same backing array.
	idx := 500 & r.mask
	capBefore := cap(r.buf[idx])
	if capBefore == 0 {
		t.Fatal("taken cell lost its backing array")
	}
	r.push(500+int64(len(r.buf)), 1)
	if cap(r.buf[idx]) < capBefore {
		t.Fatal("take dropped retained bucket capacity")
	}
}

// TestArenaReleaseRetentionCaps: an arena that grew pathologically large
// during a saturated run drops the oversized scratch when it returns to
// the pool, while ordinarily sized scratch is kept.
func TestArenaReleaseRetentionCaps(t *testing.T) {
	a := new(arena)
	a.msl = make([]mrec, maxRetainSlots+1)
	a.waits = make([]int16, maxRetainWaits+1)
	a.batch = make([]int32, 0, maxRetainBatch+1)
	a.free = make([]int64, maxRetainPorts+1)
	a.blkT = make([]int32, 0, maxRetainBlk+1)
	a.rings = []kring{{buf: make([][]int32, 2*maxRetainRingCycles), mask: 2*maxRetainRingCycles - 1}}
	a.release()
	if a.msl != nil || a.waits != nil || a.batch != nil || a.free != nil || a.blkT != nil {
		t.Fatal("release retained scratch past the caps")
	}
	if a.rings[0].buf != nil {
		t.Fatal("release retained an oversized ring")
	}

	b := new(arena)
	b.msl = make([]mrec, 256)
	b.batch = make([]int32, 0, 1024)
	b.release()
	if len(b.msl) != 256 || cap(b.batch) != 1024 {
		t.Fatal("release dropped ordinarily sized scratch")
	}
}
