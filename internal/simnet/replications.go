package simnet

import (
	"fmt"
	"runtime"
	"sync"

	"banyan/internal/stats"
)

// Replicated aggregates independent replications of one configuration,
// giving honest confidence intervals for steady-state quantities (single
// long runs have autocorrelated output; across-replication variability is
// i.i.d. by construction).
type Replicated struct {
	Runs []*Result

	// TotalMeanW / TotalVarW collect each replication's total-wait mean
	// and variance, so the CI helpers below can report across-run
	// dispersion.
	TotalMeanW stats.Welford
	TotalVarW  stats.Welford

	// StageMeanW[i] collects each replication's mean wait at stage i+1.
	StageMeanW []stats.Welford

	// Merged is the pooled histogram of total waits over all
	// replications.
	Merged stats.Hist
}

// RunReplications executes r independent replications of cfg (seeds
// derived from cfg.Seed) across at most parallelism goroutines
// (0 = GOMAXPROCS) and aggregates the results. The per-replication
// simulations are embarrassingly parallel; this is the intended way to
// use multicore hardware with the simulator.
func RunReplications(cfg *Config, r, parallelism int) (*Replicated, error) {
	if r < 1 {
		return nil, fmt.Errorf("simnet: need at least one replication, got %d", r)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > r {
		parallelism = r
	}

	results := make([]*Result, r)
	errs := make([]error, r)
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i := 0; i < r; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := *cfg // copy; each replication gets its own seed
			c.Seed = SplitSeed(cfg.Seed, uint64(i))
			results[i], errs[i] = Run(&c)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	return Aggregate(results, cfg.Stages), nil
}

// Aggregate pools per-replication results into a Replicated summary.
// Results must be in replication order: the pooled statistics are then
// bit-identical regardless of how the replications were scheduled.
func Aggregate(results []*Result, stages int) *Replicated {
	agg := &Replicated{
		Runs:       results,
		StageMeanW: make([]stats.Welford, stages),
	}
	for _, res := range results {
		agg.TotalMeanW.Add(res.MeanTotalWait())
		agg.TotalVarW.Add(res.VarTotalWait())
		for s := range res.StageWait {
			agg.StageMeanW[s].Add(res.StageWait[s].Mean())
		}
		agg.Merged.Merge(&res.TotalWait)
	}
	return agg
}

// SplitSeed derives statistically independent seeds (SplitMix64 step);
// it is the seed-derivation rule shared by RunReplications and the sweep
// engine.
func SplitSeed(base, i uint64) uint64 {
	z := base + (i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Replications returns the number of replications aggregated.
func (rp *Replicated) Replications() int { return len(rp.Runs) }

// MeanTotalWait returns the across-replication estimate of the mean total
// wait.
func (rp *Replicated) MeanTotalWait() float64 { return rp.TotalMeanW.Mean() }

// MeanTotalWaitCI returns the half-width of a 95% confidence interval
// for the mean total wait, using the Student-t critical value for the
// replication count (replication means are i.i.d., so the t interval is
// exact under normality and honest at small run counts, where the old
// normal critical value understated the width — by 6.5× at 2 runs).
func (rp *Replicated) MeanTotalWaitCI() float64 {
	return rp.TotalMeanW.MeanHalfWidth(0.95)
}

// VarTotalWait returns the across-replication estimate of the total-wait
// variance.
func (rp *Replicated) VarTotalWait() float64 { return rp.TotalVarW.Mean() }

// VarTotalWaitCI returns the Student-t 95% half-width for the variance
// estimate.
func (rp *Replicated) VarTotalWaitCI() float64 {
	return rp.TotalVarW.MeanHalfWidth(0.95)
}

// StageMeanWait returns the across-replication mean wait at a stage
// (1-based) with its Student-t 95% half-width.
func (rp *Replicated) StageMeanWait(stage int) (mean, halfWidth float64) {
	w := rp.StageMeanW[stage-1]
	return w.Mean(), w.MeanHalfWidth(0.95)
}
