package simnet

import (
	"math"
	"testing"

	"banyan/internal/core"
	"banyan/internal/traffic"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %.6g, want %.6g (tol %g)", msg, got, want, tol)
	}
}

func TestConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{K: 2, Stages: 4, P: 0.5, Cycles: 100}
	}
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"radix", func(c *Config) { c.K = 1 }},
		{"stages", func(c *Config) { c.Stages = 0 }},
		{"p low", func(c *Config) { c.P = -0.1 }},
		{"p high", func(c *Config) { c.P = 1.1 }},
		{"q", func(c *Config) { c.Q = 2 }},
		{"cycles", func(c *Config) { c.Cycles = 0 }},
		{"warmup", func(c *Config) { c.Warmup = -1 }},
		{"buffer", func(c *Config) { c.BufferCap = -2 }},
		{"unstable", func(c *Config) { c.P = 0.5; c.Bulk = 4 }},
		{"dest space", func(c *Config) { c.Stages = 40 }},
		{"wrapped q", func(c *Config) { c.Stages = 14; c.Q = 0.5 }},
		{"horizon overflow", func(c *Config) { c.Cycles = 1 << 31; c.Warmup = 0 }},
		{"horizon overflow split", func(c *Config) { c.Cycles = 1 << 30; c.Warmup = 1 << 30 }},
	}
	for _, cse := range cases {
		cfg := base()
		cse.mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", cse.name)
		}
	}
	cfg := base()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
}

func TestTraceStatistics(t *testing.T) {
	cfg := &Config{K: 2, Stages: 6, P: 0.3, Cycles: 4000, Warmup: 100, Seed: 5}
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rows != 64 || tr.Wrapped {
		t.Fatalf("rows=%d wrapped=%v", tr.Rows, tr.Wrapped)
	}
	// Arrival rate ≈ p per input per cycle.
	rate := float64(tr.Len()) / (float64(tr.Rows) * float64(tr.Horizon))
	almost(t, rate, 0.3, 0.01, "arrival rate")
	// Destinations roughly uniform: mean dest ≈ (N-1)/2.
	var sum float64
	for _, d := range tr.Dest {
		sum += float64(d)
	}
	almost(t, sum/float64(tr.Len()), 31.5, 1.0, "dest uniformity")
	// Arrival times nondecreasing, measurement flags match warmup.
	for i := 1; i < tr.Len(); i++ {
		if tr.T[i] < tr.T[i-1] {
			t.Fatal("trace not time-ordered")
		}
	}
	for i := 0; i < tr.Len(); i++ {
		if tr.Meas[i] != (tr.T[i] >= int32(cfg.Warmup)) {
			t.Fatal("measurement flag wrong")
		}
	}
}

func TestTraceBulkAndService(t *testing.T) {
	svc, err := traffic.MultiService([]traffic.SizeMix{{Size: 2, Prob: 0.5}, {Size: 6, Prob: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{K: 2, Stages: 4, P: 0.05, Bulk: 3, Service: svc, Cycles: 3000, Seed: 9}
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len()%3 != 0 {
		t.Fatalf("bulk trace length %d not a multiple of 3", tr.Len())
	}
	// Batch members share time, destination and service.
	for i := 0; i < tr.Len(); i += 3 {
		if tr.Dest[i] != tr.Dest[i+1] || tr.Dest[i] != tr.Dest[i+2] ||
			tr.T[i] != tr.T[i+2] || tr.Svc[i] != tr.Svc[i+2] {
			t.Fatalf("batch %d not coherent", i/3)
		}
	}
	// Service values are only 2 or 6, roughly half each.
	n2 := 0
	for _, s := range tr.Svc {
		switch s {
		case 2:
			n2++
		case 6:
		default:
			t.Fatalf("unexpected service %d", s)
		}
	}
	frac := float64(n2) / float64(tr.Len())
	almost(t, frac, 0.5, 0.05, "service mix fraction")
}

// TestFirstStageMatchesExact is the central validation: simulated stage-1
// waiting-time mean and variance equal the Theorem 1 values, across the
// paper's traffic classes.
func TestFirstStageMatchesExact(t *testing.T) {
	mk := func(name string, cfg Config, arr traffic.Arrivals, svc traffic.Service) {
		t.Run(name, func(t *testing.T) {
			cfg.Cycles = 30000
			cfg.Warmup = 2000
			cfg.Seed = 21
			res, err := Run(&cfg)
			if err != nil {
				t.Fatal(err)
			}
			an, err := core.New(arr, svc)
			if err != nil {
				t.Fatal(err)
			}
			w := res.StageWait[0]
			se := 4*w.StdDev()/math.Sqrt(float64(w.N())) + 0.01*an.MeanWait()
			almost(t, w.Mean(), an.MeanWait(), se+1e-3, "stage-1 mean")
			almost(t, w.Variance(), an.VarWait(), 0.03*(1+an.VarWait()), "stage-1 variance")
		})
	}

	arrU, _ := traffic.Uniform(2, 2, 0.5)
	mk("uniform", Config{K: 2, Stages: 4, P: 0.5}, arrU, traffic.UnitService())

	arrU8, _ := traffic.Uniform(8, 8, 0.75)
	mk("k=8", Config{K: 8, Stages: 2, P: 0.75}, arrU8, traffic.UnitService())

	arrB, _ := traffic.Bulk(2, 2, 0.15, 3)
	mk("bulk", Config{K: 2, Stages: 4, P: 0.15, Bulk: 3}, arrB, traffic.UnitService())

	svc4, _ := traffic.ConstService(4)
	arrM, _ := traffic.Uniform(2, 2, 0.125)
	mk("m=4", Config{K: 2, Stages: 4, P: 0.125, Service: svc4}, arrM, svc4)

	arrQ, _ := traffic.NonuniformExclusive(2, 0.5, 0.4, 1)
	mk("hotspot", Config{K: 2, Stages: 6, P: 0.5, Q: 0.4}, arrQ, traffic.UnitService())

	geo, _ := traffic.GeomService(0.5, 512)
	arrG, _ := traffic.Uniform(2, 2, 0.25)
	mk("geometric", Config{K: 2, Stages: 4, P: 0.25, Service: geo}, arrG, geo)

	multi, _ := traffic.MultiService([]traffic.SizeMix{{Size: 4, Prob: 0.75}, {Size: 8, Prob: 0.25}})
	arrMS, _ := traffic.Uniform(2, 2, 0.08)
	mk("multi-size", Config{K: 2, Stages: 4, P: 0.08, Service: multi}, arrMS, multi)
}

// TestEnginesAgree drives the fast and literal engines from one trace and
// requires statistically indistinguishable results.
func TestEnginesAgree(t *testing.T) {
	svc, _ := traffic.ConstService(2)
	cfg := &Config{K: 2, Stages: 5, P: 0.2, Service: svc, Cycles: 8000, Warmup: 500, Seed: 33}
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	lit, err := RunLiteral(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Messages != lit.Messages {
		t.Fatalf("message counts differ: %d vs %d", fast.Messages, lit.Messages)
	}
	for s := range fast.StageWait {
		fm, lm := fast.StageWait[s].Mean(), lit.StageWait[s].Mean()
		almost(t, lm, fm, 0.02*(1+fm), "stage mean agreement")
		fv, lv := fast.StageWait[s].Variance(), lit.StageWait[s].Variance()
		almost(t, lv, fv, 0.05*(1+fv), "stage variance agreement")
	}
	almost(t, lit.MeanTotalWait(), fast.MeanTotalWait(), 0.02*(1+fast.MeanTotalWait()), "total mean agreement")
}

func TestDeterminism(t *testing.T) {
	cfg := &Config{K: 2, Stages: 4, P: 0.5, Cycles: 2000, Warmup: 100, Seed: 77}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || a.MeanTotalWait() != b.MeanTotalWait() ||
		a.VarTotalWait() != b.VarTotalWait() {
		t.Fatal("same seed must reproduce identical results")
	}
	cfg2 := *cfg
	cfg2.Seed = 78
	c, err := Run(&cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if c.MeanTotalWait() == a.MeanTotalWait() && c.Messages == a.Messages {
		t.Fatal("different seeds produced identical results")
	}
}

func TestWrappedNetwork(t *testing.T) {
	// 14 stages of k=2 exceeds MaxRows=4096 → wrapped shuffle. Uniform
	// stage statistics should match the unwrapped behaviour (stage-1
	// exact, later stages ≈ w∞).
	cfg := &Config{K: 2, Stages: 14, P: 0.5, Cycles: 4000, Warmup: 400, Seed: 3, MaxRows: 1024}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Wrapped || res.Rows != 1024 {
		t.Fatalf("rows=%d wrapped=%v", res.Rows, res.Wrapped)
	}
	almost(t, res.StageWait[0].Mean(), 0.25, 0.01, "wrapped stage-1 mean")
	almost(t, res.StageWait[13].Mean(), 0.30, 0.015, "wrapped deep-stage mean")
}

func TestStageCovTracking(t *testing.T) {
	cfg := &Config{K: 2, Stages: 5, P: 0.5, Cycles: 6000, Warmup: 500, Seed: 13, TrackStageWaits: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StageCov == nil || res.StageCov.Dim() != 5 {
		t.Fatal("covariance matrix missing")
	}
	// Lag-1 correlation near the paper's ≈ 0.12, diagonal 1.
	almost(t, res.StageCov.Correlation(2, 2), 1, 1e-12, "diagonal")
	c12 := res.StageCov.Correlation(1, 2)
	if c12 < 0.08 || c12 > 0.16 {
		t.Fatalf("lag-1 correlation %g outside the Table VI band", c12)
	}
	// Lag-3 much smaller than lag-1.
	if res.StageCov.Correlation(1, 4) > c12/2 {
		t.Fatal("correlations do not decay")
	}
}

func TestFiniteBuffers(t *testing.T) {
	svc, _ := traffic.ConstService(2)
	cfg := &Config{K: 2, Stages: 4, P: 0.3, Service: svc, Cycles: 5000, Warmup: 200, Seed: 17, BufferCap: 1}
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := RunLiteral(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Dropped == 0 {
		t.Fatal("capacity 1 at ρ=0.6 must drop messages")
	}
	// Large buffers ≈ infinite buffers.
	cfgBig := *cfg
	cfgBig.BufferCap = 10000
	big, err := RunLiteral(&cfgBig, tr)
	if err != nil {
		t.Fatal(err)
	}
	if big.Dropped != 0 {
		t.Fatalf("huge buffers dropped %d", big.Dropped)
	}
	cfgInf := *cfg
	cfgInf.BufferCap = 0
	inf, err := RunLiteral(&cfgInf, tr)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, big.MeanTotalWait(), inf.MeanTotalWait(), 1e-12, "big buffer = infinite")
	// Drops reduce completed messages and the survivors wait less.
	if tight.Messages >= inf.Messages {
		t.Fatal("drops must reduce completions")
	}
	if tight.MeanTotalWait() >= inf.MeanTotalWait() {
		t.Fatal("survivors of a lossy network wait less on average")
	}
}

// TestFiniteBufferMatchesChain cross-validates the literal engine's
// finite-buffer behaviour against the exact Markov-chain analysis
// (core.FiniteQueue) on a single-stage network.
func TestFiniteBufferMatchesChain(t *testing.T) {
	for _, c := range []struct {
		p   float64
		cap int
	}{{0.8, 2}, {0.8, 4}, {0.5, 2}} {
		cfg := &Config{K: 2, Stages: 1, P: c.p, Cycles: 60000, Warmup: 2000, Seed: 91, BufferCap: c.cap}
		tr, err := GenerateTrace(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunLiteral(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		arr, err := traffic.Uniform(2, 2, c.p)
		if err != nil {
			t.Fatal(err)
		}
		q, err := core.NewFiniteQueue(arr, c.cap)
		if err != nil {
			t.Fatal(err)
		}
		simDrop := float64(res.Dropped) / float64(res.Offered)
		almost(t, simDrop, q.DropProb(), 0.10*q.DropProb()+2e-4, "drop probability vs chain")
		almost(t, res.StageWait[0].Mean(), q.MeanWait(), 0.05*(1+q.MeanWait()), "admitted wait vs chain")
	}
}

func TestOverloadWithDropsIsRunnable(t *testing.T) {
	// ρ > 1 is rejected with infinite buffers but fine with finite ones.
	svc, _ := traffic.ConstService(4)
	cfg := &Config{K: 2, Stages: 3, P: 0.5, Service: svc, Cycles: 2000, Seed: 2, BufferCap: 4}
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLiteral(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("overload must drop")
	}
	frac := float64(res.Dropped) / float64(res.Offered)
	// Offered ρ = 2, so about half the traffic must be shed.
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("drop fraction %g implausible for ρ=2", frac)
	}
}

// TestHotModuleSaturation: hot messages queue increasingly along the
// tree to output 0; stage-1 hot waits match the exact HotModule law.
func TestHotModuleSaturation(t *testing.T) {
	cfg := &Config{K: 2, Stages: 6, P: 0.4, HotModule: 0.02, Cycles: 40000, Warmup: 4000, Seed: 46}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HotWait == nil {
		t.Fatal("hot-wait stats missing")
	}
	arr, err := traffic.HotModule(2, 0.4, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.New(arr, traffic.UnitService())
	if err != nil {
		t.Fatal(err)
	}
	hot1 := res.HotWait[0]
	se := 4 * hot1.StdDev() / math.Sqrt(float64(hot1.N()))
	almost(t, hot1.Mean(), an.MeanWait(), se+0.02*(1+an.MeanWait()), "stage-1 hot wait vs exact")
	// Hot waits grow along the tree and exceed background at the end.
	last := cfg.Stages - 1
	if res.HotWait[last].Mean() <= 2*res.HotWait[0].Mean() {
		t.Fatal("hot waits did not build up along the tree")
	}
	if res.HotWait[last].Mean() <= 3*res.StageWait[last].Mean() {
		t.Fatalf("hot tail wait %g not far above background %g",
			res.HotWait[last].Mean(), res.StageWait[last].Mean())
	}
	// Uniform run leaves HotWait nil.
	cfg2 := &Config{K: 2, Stages: 3, P: 0.4, Cycles: 2000, Warmup: 100, Seed: 3}
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.HotWait != nil {
		t.Fatal("HotWait populated without hot traffic")
	}
	// Q and HotModule are mutually exclusive.
	bad := &Config{K: 2, Stages: 3, P: 0.4, Q: 0.1, HotModule: 0.1, Cycles: 100}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected mutual-exclusion error")
	}
}

// TestResampleService: per-stage i.i.d. redraws keep the stage-1 law
// (same marginal) but break length persistence downstream.
func TestResampleService(t *testing.T) {
	geo, err := traffic.GeomService(0.5, 256)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{K: 2, Stages: 6, P: 0.2, Service: geo, Cycles: 30000, Warmup: 2000, Seed: 41}
	fixed := base
	res1, err := Run(&fixed)
	if err != nil {
		t.Fatal(err)
	}
	redraw := base
	redraw.ResampleService = true
	res2, err := Run(&redraw)
	if err != nil {
		t.Fatal(err)
	}
	// Stage-1 marginals agree with the exact analysis in both modes.
	arr, err := traffic.Uniform(2, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.New(arr, geo)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{res1, res2} {
		almost(t, res.StageWait[0].Mean(), an.MeanWait(), 0.03*(1+an.MeanWait()), "stage-1 mean")
	}
	// Deep stages behave differently: with persistent lengths the long
	// messages pace their paths (spacing effect lowers later-stage
	// waits); redrawn lengths restore collisions, so redraw ≥ fixed.
	d1 := res1.StageWait[5].Mean()
	d2 := res2.StageWait[5].Mean()
	if d2 <= d1 {
		t.Fatalf("expected resampled deep wait (%g) above fixed-length (%g)", d2, d1)
	}
	// Constant service: resampling is a no-op and must not consume
	// random numbers differently.
	cs, err := traffic.ConstService(3)
	if err != nil {
		t.Fatal(err)
	}
	c1 := Config{K: 2, Stages: 3, P: 0.1, Service: cs, Cycles: 4000, Warmup: 200, Seed: 5}
	c2 := c1
	c2.ResampleService = true
	r1, err := Run(&c1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(&c2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MeanTotalWait() != r2.MeanTotalWait() {
		t.Fatal("resampling a constant law must be a bit-exact no-op")
	}
}

func TestNoMeasuredMessages(t *testing.T) {
	cfg := &Config{K: 2, Stages: 3, P: 0, Cycles: 10, Seed: 1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected no-measured-messages error")
	}
}

func TestTotalWaitIsSumOfStageWaits(t *testing.T) {
	cfg := &Config{K: 2, Stages: 6, P: 0.5, Cycles: 5000, Warmup: 500, Seed: 4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, w := range res.StageWait {
		sum += w.Mean()
	}
	almost(t, res.MeanTotalWait(), sum, 1e-9, "total = Σ per-stage means")
}
