package simnet

import (
	"reflect"
	"testing"

	"banyan/internal/traffic"
)

// collect drains a stream into one materialized trace via the block API.
func collect(t *testing.T, cfg *Config, blockCycles int) *Trace {
	t.Helper()
	s, err := NewTraceStream(cfg, blockCycles)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Meta()
	tr := &Trace{
		K: m.K, Stages: m.Stages, Rows: m.Rows, Wrapped: m.Wrapped,
		Horizon: m.Horizon,
	}
	prevEnd := 0
	for {
		blk, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if blk == nil {
			break
		}
		if blk.Start != prevEnd {
			t.Fatalf("block starts at %d, want %d (blocks must tile the horizon)", blk.Start, prevEnd)
		}
		if blockCycles > 0 && blk.End-blk.Start > blockCycles {
			t.Fatalf("block spans %d cycles, cap is %d", blk.End-blk.Start, blockCycles)
		}
		prevEnd = blk.End
		// Blocks reuse their backing arrays, so copy out.
		tr.T = append(tr.T, blk.T...)
		tr.In = append(tr.In, blk.In...)
		tr.Dest = append(tr.Dest, blk.Dest...)
		tr.Svc = append(tr.Svc, blk.Svc...)
		tr.Meas = append(tr.Meas, blk.Meas...)
	}
	if prevEnd != m.Horizon {
		t.Fatalf("blocks end at %d, want horizon %d", prevEnd, m.Horizon)
	}
	return tr
}

func sameTrace(t *testing.T, got, want *Trace, label string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d messages, want %d", label, got.Len(), want.Len())
	}
	if !reflect.DeepEqual(got.T, want.T) || !reflect.DeepEqual(got.In, want.In) ||
		!reflect.DeepEqual(got.Dest, want.Dest) || !reflect.DeepEqual(got.Svc, want.Svc) ||
		!reflect.DeepEqual(got.Meas, want.Meas) {
		t.Fatalf("%s: schedules differ", label)
	}
}

// TestStreamingMatchesMaterialized proves the tentpole identity: the
// chunked generator produces byte-identical schedules to the
// materializing wrapper at every block size, including degenerate ones.
func TestStreamingMatchesMaterialized(t *testing.T) {
	cfgs := map[string]Config{
		"uniform": {K: 2, Stages: 6, P: 0.5, Cycles: 2000, Warmup: 300, Seed: 42},
		"bulk service": {K: 4, Stages: 3, P: 0.1, Bulk: 2,
			Service: mustConstSvc(t, 3), Cycles: 1500, Warmup: 200, Seed: 7},
		"favorite": {K: 2, Stages: 8, P: 0.4, Q: 0.3, Cycles: 1000, Warmup: 100, Seed: 99},
		"bursty": {K: 2, Stages: 4, P: 0.3, Cycles: 1200, Warmup: 150, Seed: 5,
			Burst: &BurstParams{POnRate: 0.1, POffRate: 0.1}},
	}
	for name, cfg := range cfgs {
		want, err := GenerateTrace(&cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, bc := range []int{1, 7, 64, DefaultBlockCycles} {
			got := collect(t, &cfg, bc)
			sameTrace(t, got, want, name)
		}
	}
}

// sameResult asserts exact equality of every recorded statistic.
func sameResult(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: results differ\ngot  %+v\nwant %+v", label, got, want)
	}
}

// TestRunMatchesRunTrace: the streaming engine path and the materialized
// trace path are the same engine over the same data, so their statistics
// are bit-identical at every seed.
func TestRunMatchesRunTrace(t *testing.T) {
	cfgs := map[string]Config{
		"uniform": {K: 2, Stages: 6, P: 0.5, Cycles: 2000, Warmup: 300, Seed: 42},
		"tracked": {K: 2, Stages: 4, P: 0.6, Cycles: 1500, Warmup: 200, Seed: 3,
			TrackStageWaits: true},
		"hot": {K: 2, Stages: 5, P: 0.4, HotModule: 0.05, Cycles: 1500, Warmup: 200, Seed: 8},
		"resample": {K: 2, Stages: 4, P: 0.1, Cycles: 2000, Warmup: 200, Seed: 11,
			Service: mixSvc(t), ResampleService: true},
	}
	for name, cfg := range cfgs {
		streamed, err := Run(&cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := GenerateTrace(&cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		materialized, err := RunTrace(&cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameResult(t, streamed, materialized, name)
	}
}

// TestLiteralStreamingMatchesMaterialized: same identity for the literal
// engine, with and without finite buffers.
func TestLiteralStreamingMatchesMaterialized(t *testing.T) {
	cfgs := map[string]Config{
		"infinite": {K: 2, Stages: 4, P: 0.5, Cycles: 1200, Warmup: 200, Seed: 42},
		"finite": {K: 2, Stages: 4, P: 0.7, Cycles: 1200, Warmup: 200, Seed: 13,
			BufferCap: 2},
		"occupancy": {K: 2, Stages: 3, P: 0.5, Cycles: 800, Warmup: 100, Seed: 77,
			TrackOccupancy: true},
	}
	for name, cfg := range cfgs {
		src, err := NewTraceStream(&cfg, 256)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		streamed, err := RunLiteralSource(&cfg, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := GenerateTrace(&cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		materialized, err := RunLiteral(&cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameResult(t, streamed, materialized, name)
	}
}

// TestBlockSizeIndependence: the fast engine's statistics cannot depend
// on how the arrival stream is chunked.
func TestBlockSizeIndependence(t *testing.T) {
	cfg := Config{K: 2, Stages: 6, P: 0.6, Cycles: 2000, Warmup: 300, Seed: 1}
	var want *Result
	for _, bc := range []int{1, 3, 100, 0} {
		src, err := NewTraceStream(&cfg, bc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunSource(&cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res
			continue
		}
		sameResult(t, res, want, "block size")
	}
}

func mixSvc(t *testing.T) traffic.Service {
	t.Helper()
	svc, err := traffic.MultiService([]traffic.SizeMix{{Size: 1, Prob: 0.5}, {Size: 4, Prob: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// benchCfg sizes a fast-engine run to roughly nMsgs measured messages.
func benchCfg(nMsgs int) Config {
	rows := 256 // k=2, 8 stages
	cycles := nMsgs / (rows / 2)
	return Config{K: 2, Stages: 8, P: 0.5, Cycles: cycles, Warmup: 500, Seed: 9}
}

// BenchmarkStreamingTrace compares the streaming fast-engine path with
// the materialize-then-run path at ~1M messages. The point is B/op:
// streaming holds only in-flight messages, the materialized path holds
// the whole schedule.
func BenchmarkStreamingTrace(b *testing.B) {
	cfg := benchCfg(1_000_000)
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(&cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := GenerateTrace(&cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := RunTrace(&cfg, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}
