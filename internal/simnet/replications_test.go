package simnet

import (
	"math"
	"testing"
)

func TestRunReplications(t *testing.T) {
	cfg := &Config{K: 2, Stages: 4, P: 0.5, Cycles: 3000, Warmup: 300, Seed: 101}
	rep, err := RunReplications(cfg, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replications() != 8 {
		t.Fatalf("replications %d", rep.Replications())
	}
	// CI covers the prediction-quality answer: single-run estimate within
	// a few half-widths of the aggregate.
	hw := rep.MeanTotalWaitCI()
	if hw <= 0 || math.IsInf(hw, 1) {
		t.Fatalf("half-width %g", hw)
	}
	single := rep.Runs[0].MeanTotalWait()
	if math.Abs(single-rep.MeanTotalWait()) > 10*hw+0.05 {
		t.Fatalf("replication dispersion implausible: %g vs %g ± %g", single, rep.MeanTotalWait(), hw)
	}
	// Stage CI available.
	m, shw := rep.StageMeanWait(1)
	if m <= 0 || shw <= 0 {
		t.Fatalf("stage CI: %g ± %g", m, shw)
	}
	// Merged histogram pools all runs.
	var total int64
	for _, r := range rep.Runs {
		total += r.TotalWait.N()
	}
	if rep.Merged.N() != total {
		t.Fatalf("merged N %d != %d", rep.Merged.N(), total)
	}
	// Variance aggregate is positive with finite CI.
	if rep.VarTotalWait() <= 0 || math.IsInf(rep.VarTotalWaitCI(), 1) {
		t.Fatal("variance aggregate broken")
	}
}

func TestRunReplicationsSeedsDiffer(t *testing.T) {
	cfg := &Config{K: 2, Stages: 3, P: 0.4, Cycles: 1500, Warmup: 100, Seed: 55}
	rep, err := RunReplications(cfg, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs[0].MeanTotalWait() == rep.Runs[1].MeanTotalWait() &&
		rep.Runs[1].MeanTotalWait() == rep.Runs[2].MeanTotalWait() {
		t.Fatal("replications identical — seed splitting failed")
	}
}

func TestRunReplicationsDeterministic(t *testing.T) {
	cfg := &Config{K: 2, Stages: 3, P: 0.4, Cycles: 1500, Warmup: 100, Seed: 55}
	a, err := RunReplications(cfg, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplications(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Parallelism must not change results.
	if a.MeanTotalWait() != b.MeanTotalWait() || a.VarTotalWait() != b.VarTotalWait() {
		t.Fatal("parallelism changed the aggregate")
	}
}

func TestRunReplicationsValidation(t *testing.T) {
	cfg := &Config{K: 2, Stages: 3, P: 0.4, Cycles: 1000, Seed: 1}
	if _, err := RunReplications(cfg, 0, 1); err == nil {
		t.Fatal("expected replication-count error")
	}
	bad := &Config{K: 1, Stages: 3, P: 0.4, Cycles: 1000}
	if _, err := RunReplications(bad, 2, 1); err == nil {
		t.Fatal("expected config error")
	}
}

func TestSplitSeed(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 100; i++ {
		s := SplitSeed(42, i)
		if seen[s] {
			t.Fatal("seed collision")
		}
		seen[s] = true
	}
}

func TestOccupancyTracking(t *testing.T) {
	cfg := &Config{K: 2, Stages: 4, P: 0.6, Cycles: 6000, Warmup: 600, Seed: 7, TrackOccupancy: true}
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLiteral(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QueueDepth) != 4 || len(res.MaxQueueDepth) != 4 {
		t.Fatal("occupancy stats missing")
	}
	for s := 0; s < 4; s++ {
		mean := res.QueueDepth[s].Mean()
		// Time-averaged messages present ≥ utilization ρ = 0.6 (server
		// occupancy alone) and bounded by a small multiple at this load.
		if mean < 0.5 || mean > 3 {
			t.Fatalf("stage %d occupancy %g implausible", s+1, mean)
		}
		if res.MaxQueueDepth[s] < 2 {
			t.Fatalf("stage %d max depth %d implausible", s+1, res.MaxQueueDepth[s])
		}
		// Little's law sanity: mean queue (excluding server) ≈ λ·E[w].
		waiting := mean - 0.6
		expect := 0.6 * res.StageWait[s].Mean()
		if math.Abs(waiting-expect) > 0.15*(1+expect) {
			t.Fatalf("stage %d Little mismatch: %g vs %g", s+1, waiting, expect)
		}
	}
	// Occupancy off → no stats.
	cfg2 := *cfg
	cfg2.TrackOccupancy = false
	res2, err := RunLiteral(&cfg2, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res2.QueueDepth != nil {
		t.Fatal("occupancy tracked when disabled")
	}
}
