package simnet

import (
	"math/rand/v2"
	"testing"
)

// TestKrandMatchesRandV2 pins krand bit-for-bit to
// rand.New(rand.NewPCG(seed1, seed2)) across the draw kinds the engines
// use: raw Uint64, Float64 and Uint64N with power-of-two, small and
// large bounds. Any divergence here would silently split the kernel's
// stream from the reference engine's, so the check interleaves the
// kinds the way the hot loops do rather than testing each in isolation.
func TestKrandMatchesRandV2(t *testing.T) {
	seeds := [][2]uint64{
		{0, 0},
		{1, 2},
		{42, 42 ^ 0x9e3779b97f4a7c15},
		{0xa5a5a5a5a5a5a5a5, 0xfffffffffffffffe},
		{^uint64(0), ^uint64(0)},
	}
	bounds := []uint64{1, 2, 3, 7, 8, 10, 64, 100, 1 << 20, (1 << 20) + 7, 1 << 40, (1 << 40) + 13, 1<<63 + 11}
	for _, sd := range seeds {
		k := newKrand(sd[0], sd[1])
		r := rand.New(rand.NewPCG(sd[0], sd[1]))
		for i := 0; i < 4096; i++ {
			switch i % 4 {
			case 0:
				if g, w := k.Uint64(), r.Uint64(); g != w {
					t.Fatalf("seed %v draw %d: Uint64 = %d, want %d", sd, i, g, w)
				}
			case 1:
				if g, w := k.Float64(), r.Float64(); g != w {
					t.Fatalf("seed %v draw %d: Float64 = %v, want %v", sd, i, g, w)
				}
			default:
				n := bounds[i%len(bounds)]
				if g, w := k.Uint64N(n), r.Uint64N(n); g != w {
					t.Fatalf("seed %v draw %d: Uint64N(%d) = %d, want %d", sd, i, n, g, w)
				}
			}
		}
	}
}

// TestKrandShuffleMatchesRandV2 pins the kernel's inlined Fisher–Yates
// against rand.Rand.Shuffle: same permutation at every size, so the
// kernel's batch orders match the reference engine's.
func TestKrandShuffleMatchesRandV2(t *testing.T) {
	for size := 0; size <= 65; size++ {
		k := newKrand(7, uint64(size))
		r := rand.New(rand.NewPCG(7, uint64(size)))
		a := make([]int32, size)
		b := make([]int, size)
		for i := range a {
			a[i] = int32(i)
			b[i] = i
		}
		// The kernel's inlined shuffle.
		for i := len(a) - 1; i > 0; i-- {
			j := int(k.Uint64N(uint64(i + 1)))
			a[i], a[j] = a[j], a[i]
		}
		r.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		for i := range a {
			if int(a[i]) != b[i] {
				t.Fatalf("size %d: shuffle diverges at %d: %d vs %d", size, i, a[i], b[i])
			}
		}
	}
}
