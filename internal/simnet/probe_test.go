package simnet

import (
	"reflect"
	"testing"

	"banyan/internal/obs"
)

// TestProbeDoesNotChangeResults attaches a SimProbe and checks both that
// the probe populates and — the load-bearing guarantee — that results
// are identical with and without it.
func TestProbeDoesNotChangeResults(t *testing.T) {
	base := Config{K: 2, Stages: 3, P: 0.4, Cycles: 2000, Warmup: 100, Seed: 7}

	t.Run("fast", func(t *testing.T) {
		plain := base
		bare, err := Run(&plain)
		if err != nil {
			t.Fatal(err)
		}
		probed := base
		probed.Probe = obs.NewSimProbe()
		got, err := Run(&probed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bare, got) {
			t.Fatalf("probe changed the result:\nbare  %+v\nprobe %+v", bare, got)
		}
		checkProbe(t, probed.Probe, base.Stages, got.Messages)
	})

	t.Run("literal", func(t *testing.T) {
		run := func(cfg *Config) (*Result, error) {
			src, err := NewTraceStream(cfg, 0)
			if err != nil {
				return nil, err
			}
			return RunLiteralSource(cfg, src)
		}
		plain := base
		bare, err := run(&plain)
		if err != nil {
			t.Fatal(err)
		}
		probed := base
		probed.Probe = obs.NewSimProbe()
		got, err := run(&probed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bare, got) {
			t.Fatalf("probe changed the result:\nbare  %+v\nprobe %+v", bare, got)
		}
		checkProbe(t, probed.Probe, base.Stages, got.Messages)
	})
}

func checkProbe(t *testing.T, p *obs.SimProbe, stages int, messages int64) {
	t.Helper()
	s := p.Snapshot()
	if s.Runs != 1 {
		t.Fatalf("runs %d, want 1", s.Runs)
	}
	if s.Cycles < 2000 {
		t.Fatalf("cycles %d, want >= horizon 2000", s.Cycles)
	}
	if s.Messages != messages {
		t.Fatalf("probe messages %d, result %d", s.Messages, messages)
	}
	if s.BlockPulls == 0 {
		t.Fatal("no block pulls recorded")
	}
	if s.SlotAllocs == 0 {
		t.Fatal("no slot allocations recorded")
	}
	if s.FreeListRate <= 0 || s.FreeListRate >= 1 {
		t.Fatalf("free-list rate %g, want in (0,1) for a long run", s.FreeListRate)
	}
	if s.MaxInFlight <= 0 {
		t.Fatalf("in-flight high water %d, want > 0", s.MaxInFlight)
	}
	if len(s.StageHighWater) != stages {
		t.Fatalf("stage high-water len %d, want %d", len(s.StageHighWater), stages)
	}
	for i, hw := range s.StageHighWater {
		if hw <= 0 {
			t.Fatalf("stage %d high water %d, want > 0 (all stages carry traffic)", i+1, hw)
		}
	}
}

// TestProbeAggregatesAcrossRuns checks that one probe shared by several
// runs (the sweep wiring) accumulates rather than overwrites.
func TestProbeAggregatesAcrossRuns(t *testing.T) {
	p := obs.NewSimProbe()
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := Config{K: 2, Stages: 2, P: 0.3, Cycles: 500, Warmup: 50, Seed: seed, Probe: p}
		if _, err := Run(&cfg); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Snapshot()
	if s.Runs != 3 {
		t.Fatalf("runs %d, want 3", s.Runs)
	}
	if s.Cycles < 3*500 {
		t.Fatalf("cycles %d, want >= 1500", s.Cycles)
	}
}
