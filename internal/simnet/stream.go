package simnet

import (
	"banyan/internal/dist"
)

// DefaultBlockCycles is the chunk size (in cycles) used by streaming
// trace generation when none is specified.
const DefaultBlockCycles = 1024

// TraceMeta is the fixed context of an arrival schedule: the topology
// (radix, stages, rows), whether the shuffle wraps, the generation
// horizon, and the routing-digit divisors. Both the materialized Trace
// and the chunked TraceStream expose one, so the engines can route
// messages without knowing how the schedule is stored.
type TraceMeta struct {
	K, Stages int
	Rows      int  // rows per stage
	Wrapped   bool // shuffle wraps (rows < k^Stages)
	Horizon   int  // last generation cycle + 1

	digitDiv []uint32 // k^{Stages-j} for stage j = 1..Stages
}

// DigitOf returns the routing digit a message with the given destination
// consumes at the given stage (1-based).
func (m *TraceMeta) DigitOf(dest uint32, stage int) int {
	return int(dest/m.digitDiv[stage-1]) % m.K
}

// NextRow applies the omega-network shuffle-exchange step.
func (m *TraceMeta) NextRow(row int32, digit int) int32 {
	return int32((int(row)*m.K + digit) % m.Rows)
}

// newTraceMeta builds the meta block for a validated configuration.
func newTraceMeta(cfg *Config) (TraceMeta, error) {
	rows, wrapped, err := cfg.rows()
	if err != nil {
		return TraceMeta{}, err
	}
	m := TraceMeta{
		K: cfg.K, Stages: cfg.Stages, Rows: rows, Wrapped: wrapped,
		Horizon:  cfg.Warmup + cfg.Cycles,
		digitDiv: make([]uint32, cfg.Stages),
	}
	d := uint64(intPow(cfg.K, cfg.Stages))
	for j := 0; j < cfg.Stages; j++ {
		d /= uint64(cfg.K)
		m.digitDiv[j] = uint32(d)
	}
	return m, nil
}

// TraceBlock is one chunk of the stage-1 arrival schedule, covering the
// cycle range [Start, End). Messages are ordered by arrival cycle; the
// i-th message of the block has global index Base+i within the schedule.
// Blocks returned by a stream reuse their backing arrays: a block is only
// valid until the next call to the stream's Next.
type TraceBlock struct {
	Start, End int   // cycle range covered, [Start, End)
	Base       int64 // global index of the block's first message

	T    []int32  // arrival cycle at stage 1
	In   []int32  // input row
	Dest []uint32 // destination address in [0, k^Stages)
	Svc  []int16  // message service time, cycles
	Meas []bool   // generated after warmup → counts toward statistics
}

// Len returns the number of messages in the block.
func (b *TraceBlock) Len() int { return len(b.T) }

// ArrivalSource supplies the stage-1 arrival schedule to an engine in
// cycle-ordered, non-overlapping blocks. Implementations: TraceStream
// (chunked on-the-fly generation, O(block) memory) and Trace.Source
// (a materialized schedule viewed as one block).
type ArrivalSource interface {
	// Meta returns the schedule's fixed context.
	Meta() *TraceMeta
	// Next returns the next block, or nil when the schedule is
	// exhausted. The block is only valid until the following call.
	Next() (*TraceBlock, error)
}

// TraceStream generates the stage-1 arrival schedule in fixed-size cycle
// blocks, so an engine can consume arrivals incrementally instead of
// holding the full trace in memory. A stream and GenerateTrace draw from
// identical random streams: at the same seed they produce byte-identical
// schedules, regardless of the block size.
type TraceStream struct {
	meta TraceMeta
	rng  *krand

	blockCycles int
	next        int   // next cycle to generate
	base        int64 // global index of the next message

	// Per-config generation state, mirroring GenerateTrace.
	p         float64 // per-cycle generation probability (pOn when bursty)
	q, hot    float64
	bulk      int
	constSvc  int
	sampler   *dist.Sampler
	destSpace uint64
	burst     *BurstParams
	on        []bool // bursty per-input ON state
	warmup    int
	anti      bool // mirror every draw (antithetic variates)
	sync      bool // fixed draw budget per slot (CRN synchronization)

	blk TraceBlock // reused between Next calls
}

// NewTraceStream validates cfg and prepares a chunked generator.
// blockCycles ≤ 0 selects DefaultBlockCycles. The block size affects
// peak memory only, never the generated schedule.
func NewTraceStream(cfg *Config, blockCycles int) (*TraceStream, error) {
	return newTraceStreamSampler(cfg, blockCycles, nil)
}

// newTraceStreamSampler is NewTraceStream with an optional pre-built
// service sampler. The sampler is a function of the service
// distribution alone and is consulted read-only, so lock-step lanes
// running the same configuration share one alias table instead of
// rebuilding it per lane. A nil svcSampler builds the table as usual.
func newTraceStreamSampler(cfg *Config, blockCycles int, svcSampler *dist.Sampler) (*TraceStream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	meta, err := newTraceMeta(cfg)
	if err != nil {
		return nil, err
	}
	if blockCycles <= 0 {
		blockCycles = DefaultBlockCycles
	}
	svcPMF := cfg.service().PMF()
	s := &TraceStream{
		meta:        meta,
		rng:         newKrand(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15),
		blockCycles: blockCycles,
		p:           cfg.P,
		q:           cfg.Q,
		hot:         cfg.HotModule,
		bulk:        cfg.bulk(),
		constSvc:    -1,
		destSpace:   uint64(intPow(cfg.K, cfg.Stages)),
		burst:       cfg.Burst,
		warmup:      cfg.Warmup,
		anti:        cfg.Antithetic,
		sync:        cfg.SyncDraws,
	}
	if sup := svcPMF.SortedSupport(0); len(sup) == 1 {
		s.constSvc = sup[0]
	} else if svcSampler != nil {
		s.sampler = svcSampler
	} else {
		s.sampler = cfg.service().Sampler()
	}
	if cfg.Burst != nil {
		pOn, err := cfg.Burst.validate(cfg.P)
		if err != nil {
			return nil, err
		}
		s.p = pOn
		frac := cfg.Burst.onFraction()
		s.on = make([]bool, meta.Rows)
		for i := range s.on {
			s.on[i] = s.u() < frac
		}
	}
	return s, nil
}

// Meta returns the schedule's fixed context.
func (s *TraceStream) Meta() *TraceMeta { return &s.meta }

// u draws one generation uniform, mirrored to 1-u under Antithetic.
// The mirror changes each comparison u < p into 1-u < p, an event of
// identical probability up to one part in 2⁵³ (Float64 draws a 53-bit
// lattice; its mirror is the same lattice shifted half a step), so the
// mirrored schedule is distributed exactly like an independent one
// while being maximally anticorrelated with the unmirrored schedule at
// the same seed.
func (s *TraceStream) u() float64 {
	u := s.rng.Float64()
	if s.anti {
		return 1 - u
	}
	return u
}

// Next generates the next block of up to blockCycles cycles. It returns
// nil once the horizon is reached. The returned block reuses the
// previous block's backing arrays.
func (s *TraceStream) Next() (*TraceBlock, error) {
	if s.next >= s.meta.Horizon {
		return nil, nil
	}
	end := s.next + s.blockCycles
	if end > s.meta.Horizon {
		end = s.meta.Horizon
	}
	blk := &s.blk
	blk.Start, blk.End, blk.Base = s.next, end, s.base
	blk.T = blk.T[:0]
	blk.In = blk.In[:0]
	blk.Dest = blk.Dest[:0]
	blk.Svc = blk.Svc[:0]
	blk.Meas = blk.Meas[:0]

	// Hoisted loop state: the generator calls into rng between field
	// reads, so without locals the compiler must reload every field per
	// iteration — and this loop runs rows times per simulated cycle.
	// Antithetic mirroring (see Config.Antithetic) stays inline for the
	// same reason: each draw site flips its own uniform behind one
	// predictable branch instead of a closure call.
	rng := s.rng
	rows := s.meta.Rows
	p, q, hot := s.p, s.q, s.hot
	bulk, constSvc := s.bulk, s.constSvc
	destSpace := s.destSpace
	anti, sync := s.anti, s.sync
	for t := s.next; t < end; t++ {
		meas := t >= s.warmup
		for in := 0; in < rows; in++ {
			if s.on != nil {
				if s.on[in] {
					u := rng.Float64()
					if anti {
						u = 1 - u
					}
					if u < s.burst.POffRate {
						s.on[in] = false
					}
				} else {
					u := rng.Float64()
					if anti {
						u = 1 - u
					}
					if u < s.burst.POnRate {
						s.on[in] = true
					}
				}
				if !s.on[in] {
					continue
				}
			}
			u := rng.Float64()
			if anti {
				u = 1 - u
			}
			// SyncDraws: a non-generating slot still consumes its full
			// draw budget below (the draws are discarded), so equal-seed
			// streams at different p never shift against each other.
			gen := u < p
			if !gen && !sync {
				continue
			}
			var dest uint32
			hit := false
			if q > 0 {
				u = rng.Float64()
				if anti {
					u = 1 - u
				}
				if u < q {
					dest = uint32(in) // favorite: the output with the input's own index
					hit = true
				}
			} else if hot > 0 {
				u = rng.Float64()
				if anti {
					u = 1 - u
				}
				if u < hot {
					dest = 0 // the shared hot module
					hit = true
				}
			}
			if !hit {
				v := rng.Uint64N(destSpace)
				if anti {
					v = destSpace - 1 - v
				}
				dest = uint32(v)
			}
			sv := int16(1)
			if constSvc > 0 {
				sv = int16(constSvc)
			} else {
				u1, u2 := rng.Float64(), rng.Float64()
				if anti {
					u1, u2 = 1-u1, 1-u2
				}
				sv = int16(s.sampler.Sample(u1, u2))
			}
			if !gen {
				continue
			}
			for j := 0; j < bulk; j++ {
				blk.T = append(blk.T, int32(t))
				blk.In = append(blk.In, int32(in))
				blk.Dest = append(blk.Dest, dest)
				blk.Svc = append(blk.Svc, sv)
				blk.Meas = append(blk.Meas, meas)
			}
		}
	}
	s.next = end
	s.base += int64(blk.Len())
	return blk, nil
}

// Source adapts a materialized trace to the ArrivalSource interface,
// viewing it as a single zero-copy block spanning the whole horizon.
func (tr *Trace) Source() ArrivalSource {
	return &traceSource{tr: tr, meta: tr.meta()}
}

type traceSource struct {
	tr   *Trace
	meta TraceMeta
	done bool
}

func (ts *traceSource) Meta() *TraceMeta { return &ts.meta }

func (ts *traceSource) Next() (*TraceBlock, error) {
	if ts.done {
		return nil, nil
	}
	ts.done = true
	return &TraceBlock{
		Start: 0, End: ts.tr.Horizon, Base: 0,
		T: ts.tr.T, In: ts.tr.In, Dest: ts.tr.Dest, Svc: ts.tr.Svc, Meas: ts.tr.Meas,
	}, nil
}
