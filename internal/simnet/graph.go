package simnet

import (
	"context"
	"fmt"
	"math/rand/v2"

	"banyan/internal/stats"
	"banyan/internal/topology"
)

// This file is the topology-true graph engine: it advances messages
// switch by switch through an explicit k-ary n-stage delta network
// (internal/topology's wiring tables) instead of the closed-form omega
// arithmetic the stage-model engines hard-code. It runs in one of two
// modes, selected by Config.StageBuffers:
//
//   - Committed mode (all buffers infinite, the default): a message's
//     service start is committed the moment it is routed, exactly like
//     the stage model. The loop mirrors RunSourceCtx decision for
//     decision — same RNG draw sequence, same statistics update order,
//     same guards — with the routing arithmetic replaced by wiring-table
//     lookups. Under the omega wiring this engine is byte-identical to
//     the kernel at every seed: that is the collapse contract the
//     equivalence battery (TestGraphCollapsesToStageModel, the 5-way
//     FuzzEngineEquivalence) enforces.
//
//   - Blocking mode (any finite StageBuffers entry): a literal
//     cycle-driven walk with backpressure instead of loss. A message
//     that finds its next queue full stays put, its output port stalls
//     (head-of-line blocking) and the delivery retries every cycle;
//     stage-1 arrivals finding a full queue are held at the source.
//     Messages keep their logical enqueue timestamps while blocked, so
//     per-stage waits still sum to the total delay.
//
// Per-switch telemetry (backlog high-water marks, blocked-cycle counts,
// saturation verdicts) is hash-excluded observability: it flows through
// Config.Probe into the obs layer and into Result.SwitchSat under
// Config.TrackSwitches, and never perturbs a simulated number.

// RunGraph executes the graph engine on a streamed trace.
func RunGraph(cfg *Config) (*Result, error) {
	return RunGraphCtx(context.Background(), cfg)
}

// RunGraphCtx is RunGraph with cancellation, under the RunSourceCtx
// contract: ctx cancellation returns a Truncated partial result plus
// ctx.Err(); the deterministic saturation budgets return a
// Truncated/Unstable result with a nil error.
func RunGraphCtx(ctx context.Context, cfg *Config) (*Result, error) {
	gcfg := graphDefaults(cfg)
	src, err := NewTraceStream(gcfg, 0)
	if err != nil {
		return nil, err
	}
	return RunGraphSourceCtx(ctx, gcfg, src)
}

// RunGraphTrace executes the graph engine on a prepared materialized
// trace (e.g. to drive it and a stage-model engine from identical
// traffic).
func RunGraphTrace(cfg *Config, tr *Trace) (*Result, error) {
	return RunGraphSourceCtx(context.Background(), cfg, tr.Source())
}

// RunGraphSource executes the graph engine against an arrival source.
func RunGraphSource(cfg *Config, src ArrivalSource) (*Result, error) {
	return RunGraphSourceCtx(context.Background(), cfg, src)
}

// graphDefaults returns cfg with the graph engine's Topology default
// (omega) filled in, copying so the caller's Config is never mutated.
func graphDefaults(cfg *Config) *Config {
	if cfg.Topology != "" {
		return cfg
	}
	gcfg := *cfg
	gcfg.Topology = topology.Omega
	return &gcfg
}

// RunGraphSourceCtx is the graph engine's full entry point.
func RunGraphSourceCtx(ctx context.Context, cfg *Config, src ArrivalSource) (*Result, error) {
	cfg = graphDefaults(cfg)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wir, err := topology.WiringFor(cfg.Topology, cfg.K, cfg.Stages)
	if err != nil {
		return nil, err
	}
	return runGraphWired(ctx, cfg, src, wir)
}

// runGraphWired runs the graph engine over an explicit wiring. It is
// the test seam the switch-relabeling metamorphic suite drives with
// relabeled (isomorphic) wirings.
func runGraphWired(ctx context.Context, cfg *Config, src ArrivalSource, wir *topology.Wiring) (*Result, error) {
	meta := src.Meta()
	if meta.Wrapped || meta.Rows != wir.Size() {
		return nil, fmt.Errorf("simnet: graph engine needs the full %d-row network, trace has %d rows (wrapped=%v)",
			wir.Size(), meta.Rows, meta.Wrapped)
	}
	g := newGraphNet(cfg, wir)
	if cfg.graphBlocking() {
		return runGraphBlocking(ctx, cfg, src, g)
	}
	return runGraphCommitted(ctx, cfg, src, g)
}

// graphNet is the routing and telemetry state shared by both modes.
type graphNet struct {
	k, n, rows int
	next       [][]int32 // next[s][row*k+digit]: output row at stage s+1
	swid       [][]int32 // swid[s][row]: switch owning output row at stage s+1
	div        []uint32  // digit divisor per stage

	failed [][]bool // failed[s][row]: output link failed; nil when none
	drop   bool     // failure policy: true = drop, false = reroute

	// Per-switch counters, allocated when tracked (TrackSwitches or a
	// probe): current backlog, its high-water mark, blocked cycles.
	load    [][]int32
	hw      [][]int64
	blocked [][]int64

	swh [][]*stats.Hist // per-(stage, switch) wait hists; may be nil
}

func newGraphNet(cfg *Config, wir *topology.Wiring) *graphNet {
	g := &graphNet{
		k: wir.Radix(), n: wir.Stages(), rows: wir.Size(),
		next: make([][]int32, wir.Stages()),
		swid: make([][]int32, wir.Stages()),
		div:  make([]uint32, wir.Stages()),
		drop: cfg.FailPolicy != "reroute",
		swh:  cfg.SwitchWaitHists,
	}
	for s := 0; s < g.n; s++ {
		g.next[s] = wir.NextTable(s + 1)
		g.swid[s] = wir.SwitchTable(s + 1)
		g.div[s] = wir.DigitDiv(s + 1)
	}
	if len(cfg.FailLinks) > 0 {
		g.failed = make([][]bool, g.n)
		for s := range g.failed {
			g.failed[s] = make([]bool, g.rows)
		}
		for _, f := range cfg.FailLinks {
			g.failed[f.Stage-1][f.Row] = true
		}
	}
	if cfg.TrackSwitches || cfg.Probe != nil {
		sw := g.rows / g.k
		g.load = make([][]int32, g.n)
		g.hw = make([][]int64, g.n)
		g.blocked = make([][]int64, g.n)
		for s := 0; s < g.n; s++ {
			g.load[s] = make([]int32, sw)
			g.hw[s] = make([]int64, sw)
			g.blocked[s] = make([]int64, sw)
		}
	}
	return g
}

// resolve routes digit d out of row at 0-based stage, applying the
// failure policy: on a failed link it either drops the message or
// deflects it to the next healthy sister port of the same switch
// (cyclic digit order). deflected=true marks a reroute; dropped=true
// means no healthy port exists or the policy is drop.
func (g *graphNet) resolve(stage int, row int32, digit int) (port int32, dropped, deflected bool) {
	tbl := g.next[stage]
	port = tbl[int(row)*g.k+digit]
	if g.failed == nil || !g.failed[stage][port] {
		return port, false, false
	}
	if g.drop {
		return port, true, false
	}
	for off := 1; off < g.k; off++ {
		p := tbl[int(row)*g.k+(digit+off)%g.k]
		if !g.failed[stage][p] {
			return p, false, true
		}
	}
	return port, true, false
}

// swJoin/swLeave maintain the per-switch backlog counters.
func (g *graphNet) swJoin(stage int, port int32) {
	id := g.swid[stage][port]
	v := g.load[stage][id] + 1
	g.load[stage][id] = v
	if int64(v) > g.hw[stage][id] {
		g.hw[stage][id] = int64(v)
	}
}

func (g *graphNet) swLeave(stage int, port int32) {
	g.load[stage][g.swid[stage][port]]--
}

// swBlock charges one blocked cycle to the switch owning the full (or
// stalled-into) output port.
func (g *graphNet) swBlock(stage int, port int32) {
	g.blocked[stage][g.swid[stage][port]]++
}

// switchSat renders the counters into Result.SwitchSat verdicts.
func (g *graphNet) switchSat(cfg *Config) []SwitchStat {
	sd := int64(cfg.satDepth())
	out := make([]SwitchStat, 0, g.n*g.rows/g.k)
	for s := 0; s < g.n; s++ {
		for id := range g.hw[s] {
			out = append(out, SwitchStat{
				Stage: s + 1, Switch: id,
				HighWater: g.hw[s][id],
				Blocked:   g.blocked[s][id],
				Saturated: g.blocked[s][id] > 0 || g.hw[s][id] >= sd,
			})
		}
	}
	return out
}

// runGraphCommitted is the committed-mode body. It is RunSourceCtx with
// the omega arithmetic replaced by wiring-table lookups plus the
// (hash-excluded) per-switch telemetry; every RNG draw, statistics
// update and guard fires in the identical order, so under the omega
// wiring it is byte-identical to the stage-model engines at every seed.
// The failure-policy branches only execute when FailLinks is non-empty.
func runGraphCommitted(ctx context.Context, cfg *Config, src ArrivalSource, g *graphNet) (*Result, error) {
	meta := src.Meta()
	n := g.n
	res := &Result{
		Rows:      meta.Rows,
		Wrapped:   false,
		StageWait: make([]stats.Welford, n),
	}
	if cfg.TrackStageWaits {
		res.StageCov = stats.NewCovMatrix(n)
	}
	if cfg.HotModule > 0 {
		res.HotWait = make([]stats.Welford, n)
	}
	if cfg.TrackSwitches {
		defer func() { res.SwitchSat = g.switchSat(cfg) }()
	}

	rng := rand.New(rand.NewPCG(cfg.Seed^0xa5a5a5a5a5a5a5a5, cfg.Seed+1))
	resample := cfg.serviceSampler()
	free := make([]int64, n*meta.Rows)
	pending := make([]*cycleBuckets, n)
	for s := range pending {
		pending[s] = newCycleBuckets()
	}
	// Per-switch residency bookkeeping: a message joining a port at
	// cycle t with committed start s occupies the switch over [t, s];
	// the decrement ring releases it at s+1. Only maintained when the
	// counters exist.
	var dec []*cycleBuckets
	if g.load != nil {
		dec = make([]*cycleBuckets, n)
		for s := range dec {
			dec[s] = newCycleBuckets()
		}
	}

	var t int64
	var pc *runProbe
	if cfg.Probe != nil {
		pc = newRunProbe(cfg, n, "graph")
		pc.switchHW = g.hw
		pc.switchBlocked = g.blocked
		defer func() { pc.flush(cfg.Probe, t, res) }()
	}
	wh := cfg.WaitHists

	fi := cfg.Fault
	var slots []fastMsg
	var freeSlots []int32
	alloc := func() int32 {
		if len(freeSlots) > 0 {
			i := freeSlots[len(freeSlots)-1]
			freeSlots = freeSlots[:len(freeSlots)-1]
			if pc != nil {
				pc.freeHits++
			}
			return i
		}
		if fi != nil {
			fi.OnSlotAlloc() // may panic with a typed injected error
		}
		slots = append(slots, fastMsg{})
		if pc != nil {
			pc.slotAllocs++
		}
		return int32(len(slots) - 1)
	}

	inFlight := int64(0)
	active := int64(0)
	exhausted := false
	covered := int64(0)
	vec := make([]float64, n)
	haveFail := g.failed != nil
	maxInFlight := cfg.maxInFlight()
	drainLimit := cfg.drainLimit(meta.Horizon)

	for ; ; t++ {
		if fi != nil {
			if err := fi.AtCycle(ctx, t); err != nil {
				res.truncate(t, false)
				return res, err
			}
		}
		if t&ctxCheckMask == 0 {
			if pc != nil {
				pc.tick(cfg.Probe, t)
			}
			if err := ctx.Err(); err != nil {
				res.truncate(t, false)
				return res, err
			}
		}
		if active > maxInFlight {
			res.truncate(t, true)
			return res, nil
		}
		if t > drainLimit {
			res.truncate(t, true)
			return res, nil
		}
		// Release switch residencies expiring this cycle. Runs before the
		// inFlight==0 skip below: last-stage releases can be pending with
		// nothing in flight.
		if dec != nil {
			for s := 0; s < n; s++ {
				bk := dec[s].take(t)
				for _, id := range bk {
					g.load[s][id]--
				}
				dec[s].recycle(bk)
			}
		}
		for !exhausted && covered <= t {
			blk, err := src.Next()
			if err != nil {
				return nil, err
			}
			if blk == nil {
				exhausted = true
				break
			}
			if pc != nil {
				pc.blockPulls++
			}
			covered = int64(blk.End)
			res.Offered += int64(blk.Len())
			for i := 0; i < blk.Len(); i++ {
				si := alloc()
				m := &slots[si]
				m.row, m.dest, m.svc, m.meas = blk.In[i], blk.Dest[i], blk.Svc[i], blk.Meas[i]
				m.wsum = 0
				if cfg.TrackStageWaits {
					if cap(m.waits) < n {
						m.waits = make([]int16, n)
					}
					m.waits = m.waits[:n]
				}
				pending[0].push(int64(blk.T[i]), si)
				if pc != nil {
					pc.enter(0)
					pc.admit(si, m.meas, int64(blk.T[i]), m.dest)
				}
				inFlight++
			}
		}
		if inFlight == 0 {
			if exhausted {
				break
			}
			continue
		}

		for stage := 0; stage < n; stage++ {
			bk := pending[stage].take(t)
			if len(bk) == 0 {
				pending[stage].recycle(bk)
				continue
			}
			if pc != nil {
				pc.leave(stage, int64(len(bk)))
			}
			if stage == 0 {
				active += int64(len(bk))
				if pc != nil {
					pc.active(active)
				}
			}
			// Random service order among simultaneous arrivals — the same
			// single Fisher–Yates draw per non-empty (cycle, stage) batch
			// as the stage model.
			rng.Shuffle(len(bk), func(a, b int) { bk[a], bk[b] = bk[b], bk[a] })
			stageFree := free[stage*meta.Rows : (stage+1)*meta.Rows]
			nextTbl := g.next[stage]
			div := int64(g.div[stage])
			for _, si := range bk {
				m := &slots[si]
				digit := int(int64(m.dest)/div) % g.k
				var port int32
				if !haveFail {
					port = nextTbl[int(m.row)*g.k+digit]
				} else {
					var dropped, deflected bool
					port, dropped, deflected = g.resolve(stage, m.row, digit)
					if dropped {
						res.Dropped++
						if pc != nil {
							pc.dropSpan(si)
						}
						freeSlots = append(freeSlots, si)
						inFlight--
						active--
						continue
					}
					if deflected {
						res.Deflected++
					}
				}
				s := t
				if f := stageFree[port]; f > s {
					s = f
				}
				svc := int64(m.svc)
				if resample != nil {
					svc = int64(resample.Sample(rng.Float64(), rng.Float64()))
				}
				stageFree[port] = s + svc
				w := int32(s - t)
				m.wsum += w
				if m.meas {
					res.StageWait[stage].Add(float64(w))
					if res.HotWait != nil && m.dest == 0 {
						res.HotWait[stage].Add(float64(w))
					}
					if wh != nil {
						wh[stage].Add(int(w))
					}
					if g.swh != nil {
						g.swh[stage][g.swid[stage][port]].Add(int(w))
					}
				}
				if pc != nil {
					pc.stageObs(si, stage, m.meas, t, s, s+svc)
				}
				if m.waits != nil {
					m.waits[stage] = int16(w)
				}
				if dec != nil {
					g.swJoin(stage, port)
					dec[stage].push(s+1, g.swid[stage][port])
				}
				if stage+1 < n {
					m.row = port
					pending[stage+1].push(s+1, si)
					if pc != nil {
						pc.enter(stage + 1)
					}
				} else {
					if haveFail && port != int32(m.dest) {
						res.Misrouted++
					}
					if m.meas {
						res.Messages++
						res.TotalWait.Add(int(m.wsum))
						if res.StageCov != nil {
							for j := 0; j < n; j++ {
								vec[j] = float64(m.waits[j])
							}
							res.StageCov.Add(vec)
						}
					}
					if pc != nil {
						pc.finishObs(si, m.meas, int64(m.wsum))
					}
					freeSlots = append(freeSlots, si)
					inFlight--
					active--
				}
			}
			pending[stage].recycle(bk)
		}
	}
	if res.Messages == 0 {
		return nil, fmt.Errorf("simnet: no measured messages (p too small or horizon too short)")
	}
	return res, nil
}

// runGraphBlocking is the blocking-mode body: a literal cycle-driven
// walk (RunLiteralSourceCtx's phase structure) with backpressure
// replacing loss. The per-cycle phases are:
//
//  1. retry blocked inter-stage deliveries, in (stage, row) order;
//  2. injections — held stage-1 arrivals plus this cycle's fresh trace
//     arrivals, shuffled together — each entering unless its stage-1
//     queue is full;
//  3. fresh deliveries (messages that started service at t-1), shuffled;
//     a delivery into a full queue parks on its sender port
//     (head-of-line blocking) and rejoins phase 1 next cycle;
//  4. every unstalled free server starts its head-of-line message.
//
// Messages carry logical enqueue timestamps that survive blocking —
// waiting times measure cycles since the message should have joined the
// queue — so per-stage waits sum to the total delay exactly as in
// committed mode, and with effectively-infinite finite buffers the
// statistics collapse to the stage model's.
func runGraphBlocking(ctx context.Context, cfg *Config, src ArrivalSource, g *graphNet) (*Result, error) {
	meta := src.Meta()
	n := g.n
	res := &Result{
		Rows:      meta.Rows,
		Wrapped:   false,
		StageWait: make([]stats.Welford, n),
	}
	if cfg.TrackStageWaits {
		res.StageCov = stats.NewCovMatrix(n)
	}
	if cfg.HotModule > 0 {
		res.HotWait = make([]stats.Welford, n)
	}
	if cfg.TrackSwitches {
		defer func() { res.SwitchSat = g.switchSat(cfg) }()
	}

	caps := make([]int, n)
	copy(caps, cfg.StageBuffers)
	queues := make([][]literalQueue, n)
	for s := range queues {
		queues[s] = make([]literalQueue, meta.Rows)
	}
	// blockedSlot[s][r] parks the message served at stage s+1's output
	// row r whose delivery to the next stage is stalled; -1 when the
	// port is clear. The sender port cannot start another message while
	// one is parked, so at most one message is ever parked per port.
	blockedSlot := make([][]int32, n-1)
	for s := range blockedSlot {
		blockedSlot[s] = make([]int32, meta.Rows)
		for r := range blockedSlot[s] {
			blockedSlot[s][r] = -1
		}
	}

	var t int64
	var pc *runProbe
	if cfg.Probe != nil {
		pc = newRunProbe(cfg, n, "graph")
		pc.switchHW = g.hw
		pc.switchBlocked = g.blocked
		defer func() { pc.flush(cfg.Probe, t, res) }()
	}
	wh := cfg.WaitHists

	fi := cfg.Fault
	var slots []literalMsg
	var freeSlots []int32
	alloc := func() int32 {
		if len(freeSlots) > 0 {
			i := freeSlots[len(freeSlots)-1]
			freeSlots = freeSlots[:len(freeSlots)-1]
			if pc != nil {
				pc.freeHits++
			}
			return i
		}
		if fi != nil {
			fi.OnSlotAlloc() // may panic with a typed injected error
		}
		slots = append(slots, literalMsg{})
		if pc != nil {
			pc.slotAllocs++
		}
		return int32(len(slots) - 1)
	}

	rng := rand.New(rand.NewPCG(cfg.Seed^0xa5a5a5a5a5a5a5a5, cfg.Seed+1))
	resample := cfg.serviceSampler()
	if cfg.TrackOccupancy {
		res.QueueDepth = make([]stats.Welford, n)
		res.MaxQueueDepth = make([]int, n)
	}

	const (
		entered = iota
		droppedOut
		blocked
	)
	// benter attempts to place slot si into its 0-based target stage st,
	// resolving the wiring and the failure policy. The message's logical
	// arrival timestamp is never touched here: it was stamped when the
	// message should have joined (trace arrival, or service start + 1),
	// so blocked retries keep accumulating waiting time.
	benter := func(si int32, st int) int {
		m := &slots[si]
		digit := int(uint32(m.dest)/g.div[st]) % g.k
		port, drop, defl := g.resolve(st, m.row, digit)
		if drop {
			res.Dropped++
			if pc != nil {
				pc.dropSpan(si)
			}
			freeSlots = append(freeSlots, si)
			return droppedOut
		}
		q := &queues[st][port]
		if caps[st] > 0 && q.size() >= caps[st] {
			res.BlockedCycles++
			if g.load != nil {
				g.swBlock(st, port)
			}
			return blocked
		}
		if defl {
			res.Deflected++
		}
		m.stage = int8(st + 1)
		m.row = port
		q.push(si)
		if pc != nil {
			pc.enter(st)
		}
		if g.load != nil {
			g.swJoin(st, port)
		}
		return entered
	}

	finish := func(si int32) {
		m := &slots[si]
		if m.meas {
			res.Messages++
			res.TotalWait.Add(int(m.wsum))
			if res.StageCov != nil {
				vec := make([]float64, n)
				for j := 0; j < n; j++ {
					vec[j] = float64(m.waits[j])
				}
				res.StageCov.Add(vec)
			}
		}
		if pc != nil {
			pc.finishObs(si, m.meas, int64(m.wsum))
		}
		freeSlots = append(freeSlots, si)
	}

	var batch []int32
	var held []int32 // stage-1 arrivals waiting out a full first queue
	var delivery [2][]int32
	inNetwork := int64(0)
	exhausted := false
	covered := int64(0)
	var buffered []int32
	bufHead := 0
	haveFail := g.failed != nil
	maxInFlight := cfg.maxInFlight()
	drainLimit := cfg.drainLimit(meta.Horizon)
	for ; ; t++ {
		if fi != nil {
			if err := fi.AtCycle(ctx, t); err != nil {
				res.truncate(t, false)
				return res, err
			}
		}
		if t&ctxCheckMask == 0 {
			if pc != nil {
				pc.tick(cfg.Probe, t)
			}
			if err := ctx.Err(); err != nil {
				res.truncate(t, false)
				return res, err
			}
		}
		if inNetwork+int64(len(held)) > maxInFlight {
			res.truncate(t, true)
			return res, nil
		}
		for !exhausted && covered <= t {
			blk, err := src.Next()
			if err != nil {
				return nil, err
			}
			if blk == nil {
				exhausted = true
				break
			}
			if pc != nil {
				pc.blockPulls++
			}
			covered = int64(blk.End)
			res.Offered += int64(blk.Len())
			for i := 0; i < blk.Len(); i++ {
				si := alloc()
				m := &slots[si]
				m.arrivedAt = blk.T[i]
				m.row = blk.In[i]
				m.stage = 0
				m.wsum = 0
				m.dest = blk.Dest[i]
				m.svc = blk.Svc[i]
				m.meas = blk.Meas[i]
				if cfg.TrackStageWaits {
					if cap(m.waits) < n {
						m.waits = make([]int16, n)
					}
					m.waits = m.waits[:n]
				}
				if pc != nil {
					pc.admit(si, m.meas, int64(blk.T[i]), m.dest)
				}
				buffered = append(buffered, si)
			}
		}

		// 1. Blocked deliveries retry first, in (stage, row) order: a
		// parked message has priority over this cycle's fresh traffic
		// into the same queue.
		for s := 0; s < n-1; s++ {
			bs := blockedSlot[s]
			for r := range bs {
				si := bs[r]
				if si < 0 {
					continue
				}
				switch benter(si, s+1) {
				case entered:
					bs[r] = -1
					if g.load != nil {
						g.swLeave(s, int32(r))
					}
				case droppedOut:
					bs[r] = -1
					if g.load != nil {
						g.swLeave(s, int32(r))
					}
					inNetwork--
				}
			}
		}

		// 2. Injections: held arrivals and this cycle's fresh trace
		// arrivals compete in one shuffled batch.
		batch = batch[:0]
		batch = append(batch, held...)
		held = held[:0]
		for bufHead < len(buffered) && int64(slots[buffered[bufHead]].arrivedAt) == t {
			batch = append(batch, buffered[bufHead])
			bufHead++
		}
		if bufHead == len(buffered) {
			buffered = buffered[:0]
			bufHead = 0
		}
		rng.Shuffle(len(batch), func(a, b int) { batch[a], batch[b] = batch[b], batch[a] })
		for _, si := range batch {
			switch benter(si, 0) {
			case entered:
				inNetwork++
				if pc != nil {
					pc.active(inNetwork)
				}
			case blocked:
				held = append(held, si)
			}
		}

		// 3. Fresh deliveries (service started at t-1) enter their next
		// stage; a full queue parks the message on its sender port.
		slot := delivery[t&1]
		delivery[t&1] = delivery[t&1][:0]
		rng.Shuffle(len(slot), func(a, b int) { slot[a], slot[b] = slot[b], slot[a] })
		for _, si := range slot {
			m := &slots[si]
			st := int(m.stage) // 0-based target = 1-based current
			switch benter(si, st) {
			case droppedOut:
				inNetwork--
			case blocked:
				blockedSlot[st-1][m.row] = si
				if g.load != nil {
					g.swJoin(st-1, m.row) // parked on the sender port
				}
			}
		}

		// 4. Service: every free, unstalled server starts its
		// head-of-line message.
		for s := 0; s < n; s++ {
			qs := queues[s]
			bs := []int32(nil)
			if s < n-1 {
				bs = blockedSlot[s]
			}
			for r := range qs {
				q := &qs[r]
				if q.freeAt > t || q.size() == 0 {
					continue
				}
				if bs != nil && bs[r] >= 0 {
					// Head-of-line blocking: the port's previous message
					// is still parked awaiting downstream space.
					continue
				}
				si := q.pop()
				if pc != nil {
					pc.leave(s, 1)
				}
				if g.load != nil {
					g.swLeave(s, int32(r))
				}
				m := &slots[si]
				w := int32(t) - m.arrivedAt
				m.wsum += w
				if m.meas {
					res.StageWait[s].Add(float64(w))
					if res.HotWait != nil && m.dest == 0 {
						res.HotWait[s].Add(float64(w))
					}
					if wh != nil {
						wh[s].Add(int(w))
					}
					if g.swh != nil {
						g.swh[s][g.swid[s][int32(r)]].Add(int(w))
					}
				}
				if m.waits != nil {
					m.waits[s] = int16(w)
				}
				svc := int64(m.svc)
				if resample != nil {
					svc = int64(resample.Sample(rng.Float64(), rng.Float64()))
				}
				q.freeAt = t + svc
				if pc != nil {
					pc.stageObs(si, s, m.meas, int64(m.arrivedAt), t, t+svc)
				}
				if s+1 < n {
					// Stamp the logical arrival at the next stage now:
					// delivery is due at t+1 (cut-through) and blocked
					// retries must keep accruing wait from that cycle.
					m.arrivedAt = int32(t + 1)
					delivery[(t+1)&1] = append(delivery[(t+1)&1], si)
				} else {
					if haveFail && m.row != int32(m.dest) {
						res.Misrouted++
					}
					finish(si)
					inNetwork--
				}
			}
		}

		if cfg.TrackOccupancy && t >= int64(cfg.Warmup) && t < int64(meta.Horizon) {
			for s := 0; s < n; s++ {
				qs := queues[s]
				for r := range qs {
					occ := qs[r].size()
					if qs[r].freeAt > t {
						occ++
					}
					res.QueueDepth[s].Add(float64(occ))
					if occ > res.MaxQueueDepth[s] {
						res.MaxQueueDepth[s] = occ
					}
				}
			}
		}

		if exhausted && bufHead == len(buffered) && len(held) == 0 && inNetwork == 0 {
			break
		}
		if t > drainLimit {
			res.truncate(t, true)
			return res, nil
		}
	}
	if res.Messages == 0 {
		return nil, fmt.Errorf("simnet: no measured messages completed")
	}
	return res, nil
}
