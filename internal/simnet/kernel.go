package simnet

import (
	"context"
	"fmt"
	"math/bits"

	"banyan/internal/stats"
)

// RunKernelSource executes the batch kernel against an arrival source.
//
// The kernel is the production fast engine (Run, RunCtx and RunTrace
// all route here): a batched, structure-of-arrays rewrite of the
// message-level algorithm in RunSource. It produces byte-identical
// Results to the reference engine at every seed — same RNG stream, same
// batch orders, same truncation decisions — while allocating nothing on
// the hot path:
//
//   - in-flight message state lives in a pooled arena of flat slot
//     records (indices instead of pointerful structs), sized by the
//     in-flight population rather than the schedule block, so the
//     working set stays cache-resident and is reused across
//     replications;
//   - per-stage schedules are flat power-of-two rings whose per-cycle
//     buckets retain their capacity across cycles and runs, so
//     scheduling a message is one in-capacity append and draining a
//     cycle is one memcpy — no slice churn, no free-list of buckets;
//   - slots are allocated lazily at the cycle a message enters stage 1,
//     not when its schedule block is pulled, so pulling a block is O(1)
//     bookkeeping plus the generator's own work;
//   - stages with nothing scheduled are skipped by a counter check, so
//     a cycle costs O(active stages + messages served), and runs of
//     cycles with an empty network are skipped in one step;
//   - routing uses shift/mask digit extraction when the radix is a
//     power of two (the divisor table otherwise), and the batch shuffle
//     is an inlined Fisher–Yates consuming draws exactly like
//     math/rand/v2's Shuffle.
//
// The source must deliver blocks whose messages are ordered by arrival
// cycle (the ArrivalSource contract); the kernel consumes each block
// with a cursor instead of re-bucketing its messages.
func RunKernelSource(cfg *Config, src ArrivalSource) (*Result, error) {
	return RunKernelSourceCtx(context.Background(), cfg, src)
}

// RunKernelSourceCtx is RunKernelSource with cancellation and
// saturation guards, behaving exactly like RunSourceCtx.
func RunKernelSourceCtx(ctx context.Context, cfg *Config, src ArrivalSource) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ar := getArena()
	defer ar.release()
	return runKernel(ctx, cfg, src, ar)
}

// runKernel is the batch-kernel engine body. It mirrors RunSourceCtx
// decision for decision: every RNG draw (one Fisher–Yates shuffle per
// non-empty (cycle, stage) batch, two uniforms per message when service
// is resampled), every statistics update and every guard fires in the
// identical order, so the two engines are byte-identical at every seed.
func runKernel(ctx context.Context, cfg *Config, src ArrivalSource, ar *arena) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.requireStageModel("fast"); err != nil {
		return nil, err
	}
	meta := src.Meta()
	n := meta.Stages
	rowsN := meta.Rows
	res := &Result{
		Rows:      rowsN,
		Wrapped:   meta.Wrapped,
		StageWait: make([]stats.Welford, n),
	}
	trackWaits := cfg.TrackStageWaits
	if trackWaits {
		res.StageCov = stats.NewCovMatrix(n)
	}
	if cfg.HotModule > 0 {
		res.HotWait = make([]stats.Welford, n)
	}

	rng := newKrand(cfg.Seed^0xa5a5a5a5a5a5a5a5, cfg.Seed+1)
	resample := cfg.serviceSampler()
	ar.prepare(n, rowsN, trackWaits)

	var t int64
	var pc *runProbe
	if cfg.Probe != nil {
		pc = newRunProbe(cfg, n, "fast")
		defer func() { pc.flush(cfg.Probe, t, res) }()
	}
	wh := cfg.WaitHists
	fi := cfg.Fault

	// Routing tables: shift/mask when the radix (hence the row count, a
	// power of k) is a power of two, the divisor table otherwise.
	k := meta.K
	pow2 := k&(k-1) == 0
	var logk uint
	var kmask uint32
	var rowMask int32
	var shifts []uint
	if pow2 {
		logk = uint(bits.TrailingZeros32(uint32(k)))
		kmask = uint32(k - 1)
		rowMask = int32(rowsN - 1)
		shifts = make([]uint, n)
		for j := 0; j < n; j++ {
			shifts[j] = logk * uint(n-1-j)
		}
	}

	// fastBody selects the specialized service loop: nothing optional is
	// switched on, so the per-message body reduces to routing, port
	// contention and the two mandatory statistics.
	fastBody := pc == nil && resample == nil && !trackWaits &&
		res.HotWait == nil && wh == nil

	msl := ar.msl
	waits := ar.waits
	free := ar.free
	rings := ar.rings
	vec := ar.vec

	inFlight := int64(0)
	active := int64(0) // arrived at stage 1 but not yet exited (network backlog)
	exhausted := false
	covered := int64(0) // arrivals at cycles < covered are all pulled
	maxInFlight := cfg.maxInFlight()
	drainLimit := cfg.drainLimit(meta.Horizon)

	// Current schedule block, consumed by cursor. The pull loop only
	// fires once every message of the previous block has been consumed:
	// covered > t holds after each cycle, so a new pull at cycle t
	// starts a block at exactly cycle t.
	var blkT, blkIn []int32
	var blkDest []uint32
	var blkSvc []int16
	var blkMeas []bool
	cur, blkLen := 0, 0

	for ; ; t++ {
		if fi != nil {
			// Armed chaos faults fire on the executed-cycle sequence, which
			// is deterministic for a config+seed; may panic, stall, or
			// return a typed injected error.
			if err := fi.AtCycle(ctx, t); err != nil {
				res.truncate(t, false)
				return res, err
			}
		}
		if t&ctxCheckMask == 0 {
			if pc != nil {
				pc.tick(cfg.Probe, t)
			}
			if err := ctx.Err(); err != nil {
				res.truncate(t, false)
				return res, err
			}
		}
		if active > maxInFlight {
			// Backlog growing without bound: the divergence signature of
			// a configuration at or beyond m·λ = 1.
			res.truncate(t, true)
			return res, nil
		}
		if t > drainLimit {
			// Still holding messages past the drain budget: saturated.
			res.truncate(t, true)
			return res, nil
		}
		// Pull schedule blocks until cycle t is fully covered.
		for !exhausted && covered <= t {
			blk, err := src.Next()
			if err != nil {
				return nil, err
			}
			if blk == nil {
				exhausted = true
				break
			}
			if pc != nil {
				pc.blockPulls++
			}
			covered = int64(blk.End)
			m := blk.Len()
			res.Offered += int64(m)
			inFlight += int64(m)
			blkT, blkIn, blkDest, blkSvc, blkMeas = blk.T, blk.In, blk.Dest, blk.Svc, blk.Meas
			cur, blkLen = 0, m
		}
		if inFlight == 0 {
			if exhausted {
				break
			}
			// Nothing in flight and no arrival before covered: skip the
			// idle cycles in one step. The rings are all empty, so their
			// floors can jump with the clock; no guard below could have
			// fired during the gap (arrival cycles never exceed the
			// drain limit, and the backlog is zero).
			if covered > t+1 {
				for i := range rings {
					rings[i].floor = covered
				}
				t = covered - 1
			}
			continue
		}

		for stage := 0; stage < n; stage++ {
			var bk []int32
			if stage == 0 {
				// This cycle's arrivals are the block's next run of
				// cursor entries; allocate their slots in trace order
				// (so probe admission ordinals match the reference
				// engine) and batch them for the shuffle.
				bk = ar.batch[:0]
				for cur < blkLen && int64(blkT[cur]) == t {
					var si int32
					if fn := len(ar.freeSlots); fn > 0 {
						si = ar.freeSlots[fn-1]
						ar.freeSlots = ar.freeSlots[:fn-1]
						if pc != nil {
							pc.freeHits++
						}
					} else {
						if fi != nil {
							fi.OnSlotAlloc() // may panic with a typed injected error
						}
						if ar.used == len(msl) {
							ar.growSlots(n, trackWaits)
							msl = ar.msl
							waits = ar.waits
						}
						si = int32(ar.used)
						ar.used++
						if pc != nil {
							pc.slotAllocs++
						}
					}
					ms := blkMeas[cur]
					msl[si] = mrec{
						dest: blkDest[cur],
						row:  blkIn[cur],
						svc:  blkSvc[cur],
						meas: ms,
					}
					if pc != nil {
						pc.enter(0)
						pc.admit(si, ms, t, blkDest[cur])
					}
					bk = append(bk, si)
					cur++
				}
				ar.batch = bk
			} else {
				r := &rings[stage-1]
				if r.count == 0 {
					r.floor = t + 1
					continue
				}
				bk = r.take(t, ar.batch[:0])
				ar.batch = bk
			}
			if len(bk) == 0 {
				continue
			}
			if pc != nil {
				pc.leave(stage, int64(len(bk)))
			}
			if stage == 0 {
				active += int64(len(bk))
				if pc != nil {
					pc.active(active)
				}
			}
			// Random service order among simultaneous arrivals: inlined
			// Fisher–Yates drawing exactly like rand/v2's Shuffle.
			for i := len(bk) - 1; i > 0; i-- {
				j := int(rng.Uint64N(uint64(i + 1)))
				bk[i], bk[j] = bk[j], bk[i]
			}
			stageFree := free[stage*rowsN : (stage+1)*rowsN]
			sw := &res.StageWait[stage]
			var hw *stats.Welford
			if res.HotWait != nil {
				hw = &res.HotWait[stage]
			}
			var whS *stats.Hist
			if wh != nil {
				whS = wh[stage]
			}
			last := stage+1 == n
			var rg *kring
			if !last {
				rg = &rings[stage]
			}
			var shift uint
			var div uint32
			if pow2 {
				shift = shifts[stage]
			} else {
				div = meta.digitDiv[stage]
			}
			if fastBody {
				// Specialized service loop for the plain configuration
				// (no probe, no resampling, no hot spot, no wait hists,
				// no per-stage wait tracking). Every statistics update
				// below appears in the general loop in the same order on
				// the same values, so the two bodies are byte-identical;
				// what the specialization buys is a branch-free body the
				// compiler can register-allocate tightly, on the loop
				// that runs once per message per stage.
				for _, si := range bk {
					m := &msl[si]
					var port int32
					if pow2 {
						port = (m.row<<logk | int32((m.dest>>shift)&kmask)) & rowMask
					} else {
						digit := int(m.dest/div) % k
						port = int32((int(m.row)*k + digit) % rowsN)
					}
					s := t
					if f := stageFree[port]; f > s {
						s = f
					}
					stageFree[port] = s + int64(m.svc)
					w := int32(s - t)
					m.wsum += w
					if m.meas {
						sw.Add(float64(w))
					}
					if !last {
						m.row = port
						rg.push(s+1, si)
					} else {
						if m.meas {
							res.Messages++
							res.TotalWait.Add(int(m.wsum))
						}
						ar.freeSlots = append(ar.freeSlots, si)
						inFlight--
						active--
					}
				}
				continue
			}
			for _, si := range bk {
				m := &msl[si]
				dest := m.dest
				var port int32
				if pow2 {
					port = (m.row<<logk | int32((dest>>shift)&kmask)) & rowMask
				} else {
					digit := int(dest/div) % k
					port = int32((int(m.row)*k + digit) % rowsN)
				}
				s := t
				if f := stageFree[port]; f > s {
					s = f
				}
				svc := int64(m.svc)
				if resample != nil {
					svc = int64(resample.Sample(rng.Float64(), rng.Float64()))
				}
				stageFree[port] = s + svc
				w := int32(s - t)
				m.wsum += w
				ms := m.meas
				if ms {
					sw.Add(float64(w))
					if hw != nil && dest == 0 {
						hw.Add(float64(w))
					}
					if whS != nil {
						whS.Add(int(w))
					}
				}
				if pc != nil {
					pc.stageObs(si, stage, ms, t, s, s+svc)
				}
				if trackWaits {
					waits[int(si)*n+stage] = int16(w)
				}
				if !last {
					m.row = port
					rg.push(s+1, si)
					if pc != nil {
						pc.enter(stage + 1)
					}
				} else {
					if ms {
						res.Messages++
						res.TotalWait.Add(int(m.wsum))
						if res.StageCov != nil {
							base := int(si) * n
							for j := 0; j < n; j++ {
								vec[j] = float64(waits[base+j])
							}
							res.StageCov.Add(vec)
						}
					}
					if pc != nil {
						pc.finishObs(si, ms, int64(m.wsum))
					}
					ar.freeSlots = append(ar.freeSlots, si)
					inFlight--
					active--
				}
			}
		}
	}
	if res.Messages == 0 {
		return nil, fmt.Errorf("simnet: no measured messages (p too small or horizon too short)")
	}
	return res, nil
}
