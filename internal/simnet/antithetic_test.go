package simnet

import (
	"math"
	"reflect"
	"testing"

	"banyan/internal/stats"
)

// TestAntitheticTraceMirrorsDest checks the mirror at the sharpest
// available level: with P = 1 every input fires every cycle, so the
// plain and antithetic schedules contain the same messages in the same
// order and the uniform destination draw is the only randomness left.
// The antithetic destination must be the exact lattice reflection
// destSpace-1-d of the plain one, message for message.
func TestAntitheticTraceMirrorsDest(t *testing.T) {
	cfg := Config{
		K: 2, Stages: 3, P: 1, Cycles: 200, Warmup: 10, Seed: 97,
		AllowUnstable: true, MaxInFlight: 1 << 20, DrainCycles: 1 << 20,
	}
	plain, err := GenerateTrace(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	acfg := cfg
	acfg.Antithetic = true
	anti, err := GenerateTrace(&acfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != anti.Len() {
		t.Fatalf("message counts differ: %d vs %d", plain.Len(), anti.Len())
	}
	destSpace := uint32(1)
	for i := 0; i < cfg.Stages; i++ {
		destSpace *= uint32(cfg.K)
	}
	for i := range plain.Dest {
		if plain.T[i] != anti.T[i] || plain.In[i] != anti.In[i] {
			t.Fatalf("message %d: schedule skeleton differs", i)
		}
		if anti.Dest[i] != destSpace-1-plain.Dest[i] {
			t.Fatalf("message %d: dest %d not the mirror of %d", i, anti.Dest[i], plain.Dest[i])
		}
	}
}

// TestAntitheticEnginesAgree pins the engine-equivalence contract under
// Antithetic: the mirror lives in the TraceStream, so the streamed fast
// engine, the materialized-trace fast engine, and a lock-step lane must
// all produce bit-identical Results at the same mirrored seed.
func TestAntitheticEnginesAgree(t *testing.T) {
	cfg := Config{
		K: 2, Stages: 3, P: 0.55, Cycles: 1200, Warmup: 150, Seed: 12345,
		Antithetic: true,
	}
	streamed, err := Run(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	material, err := RunTrace(&cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, material) {
		t.Error("streamed and materialized runs diverge under Antithetic")
	}
	// A lane group where only one lane mirrors: the mirrored lane must
	// match the scalar mirrored run, the plain lane the scalar plain run.
	plainCfg := cfg
	plainCfg.Antithetic = false
	lanes, errs := RunLanes([]*Config{&cfg, &plainCfg})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(lanes[0], streamed) {
		t.Error("mirrored lane diverges from scalar mirrored run")
	}
	plainScalar, err := Run(&plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lanes[1], plainScalar) {
		t.Error("plain lane diverges from scalar plain run")
	}
	if reflect.DeepEqual(streamed, plainScalar) {
		t.Error("mirrored run identical to plain run — mirror had no effect")
	}
}

// TestAntitheticUnbiased checks the mirrored schedule is distributed
// like an independent one: the mean total wait over mirrored
// replications must agree with the plain estimate within a joint
// confidence interval, and the pooled message rates must match closely.
func TestAntitheticUnbiased(t *testing.T) {
	base := Config{K: 2, Stages: 3, P: 0.6, Cycles: 3000, Warmup: 300, Seed: 7}
	const reps = 24
	var plainW, antiW stats.Welford
	var plainMsgs, antiMsgs int64
	for i := 0; i < reps; i++ {
		c := base
		c.Seed = SplitSeed(base.Seed, uint64(i))
		res, err := Run(&c)
		if err != nil {
			t.Fatal(err)
		}
		plainW.Add(res.MeanTotalWait())
		plainMsgs += res.Messages

		a := c
		a.Antithetic = true
		ares, err := Run(&a)
		if err != nil {
			t.Fatal(err)
		}
		antiW.Add(ares.MeanTotalWait())
		antiMsgs += ares.Messages
	}
	se := math.Sqrt(plainW.SampleVariance()/reps + antiW.SampleVariance()/reps)
	if diff := math.Abs(plainW.Mean() - antiW.Mean()); diff > 4*se+1e-9 {
		t.Errorf("antithetic mean %g vs plain %g differ by %g (> 4se = %g)",
			antiW.Mean(), plainW.Mean(), diff, 4*se)
	}
	// Arrival thinning under the mirror keeps the exact per-cycle rate:
	// u < p becomes 1-u < p. Pooled counts over 24 runs must be close.
	if rel := math.Abs(float64(plainMsgs-antiMsgs)) / float64(plainMsgs); rel > 0.02 {
		t.Errorf("pooled message counts differ by %.1f%%: %d vs %d",
			100*rel, plainMsgs, antiMsgs)
	}
}
