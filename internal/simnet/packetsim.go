package simnet

import (
	"context"
	"fmt"
	"math/rand/v2"

	"banyan/internal/stats"
)

// literalQueue is one output-port FIFO of the literal engine.
type literalQueue struct {
	items  []int32 // in-flight slot indices, FIFO
	head   int
	freeAt int64 // first cycle the server may start the next message
}

func (q *literalQueue) size() int { return len(q.items) - q.head }

func (q *literalQueue) push(i int32) { q.items = append(q.items, i) }

func (q *literalQueue) pop() int32 {
	v := q.items[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v
}

// literalMsg is the per-in-flight-message state of the literal engine.
// Slots are recycled through a free list as messages finish or drop.
type literalMsg struct {
	arrivedAt int32  // arrival cycle at the current stage's queue
	row       int32  // row of the queue the message occupies
	stage     int8   // 1-based stage the message occupies
	wsum      int32  // accumulated waiting time
	dest      uint32 // destination address
	svc       int16  // service requirement, cycles
	meas      bool
	waits     []int16
}

// RunLiteral executes the cycle-driven packet-level engine on a prepared
// materialized trace. RunLiteral and RunLiteralSource produce identical
// statistics at the same seed.
func RunLiteral(cfg *Config, tr *Trace) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return RunLiteralSource(cfg, tr.Source())
}

// RunLiteralSource executes the cycle-driven packet-level engine against
// an arrival source, pulling schedule blocks on demand so peak memory is
// bounded by the in-flight message count. It models every output queue
// explicitly, cycle by cycle: trace messages enter their stage-1 queue at
// their arrival cycle, a queue whose server is free starts its
// head-of-line message (recording the wait), and a message starting
// service at cycle s is delivered to its next-stage queue at cycle s+1
// (cut-through). Simultaneous arrivals at a queue are ordered uniformly
// at random, realizing the random batch-service discipline assumed by the
// analysis.
//
// With Config.BufferCap > 0, a message arriving at a queue already holding
// BufferCap messages is dropped and counted in Result.Dropped — the
// finite-buffer extension the paper leaves as future work. With
// BufferCap == 0 this engine is statistically identical to the fast
// engine; the test suite drives both from one trace and compares.
func RunLiteralSource(cfg *Config, src ArrivalSource) (*Result, error) {
	return RunLiteralSourceCtx(context.Background(), cfg, src)
}

// RunLiteralSourceCtx is RunLiteralSource with cancellation and
// saturation guards, under the same contract as RunSourceCtx: ctx
// cancellation returns a Truncated partial result plus ctx.Err(), while
// the deterministic budgets (Config.MaxInFlight, Config.DrainCycles)
// return a Truncated/Unstable result with a nil error.
func RunLiteralSourceCtx(ctx context.Context, cfg *Config, src ArrivalSource) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.requireStageModel("literal"); err != nil {
		return nil, err
	}
	meta := src.Meta()
	n := meta.Stages
	res := &Result{
		Rows:      meta.Rows,
		Wrapped:   meta.Wrapped,
		StageWait: make([]stats.Welford, n),
	}
	if cfg.TrackStageWaits {
		res.StageCov = stats.NewCovMatrix(n)
	}
	if cfg.HotModule > 0 {
		res.HotWait = make([]stats.Welford, n)
	}

	queues := make([][]literalQueue, n)
	for s := range queues {
		queues[s] = make([]literalQueue, meta.Rows)
	}

	var t int64
	var pc *runProbe
	if cfg.Probe != nil {
		pc = newRunProbe(cfg, n, "literal")
		defer func() { pc.flush(cfg.Probe, t, res) }()
	}
	wh := cfg.WaitHists

	fi := cfg.Fault
	var slots []literalMsg
	var freeSlots []int32
	alloc := func() int32 {
		if len(freeSlots) > 0 {
			i := freeSlots[len(freeSlots)-1]
			freeSlots = freeSlots[:len(freeSlots)-1]
			if pc != nil {
				pc.freeHits++
			}
			return i
		}
		if fi != nil {
			fi.OnSlotAlloc() // may panic with a typed injected error
		}
		slots = append(slots, literalMsg{})
		if pc != nil {
			pc.slotAllocs++
		}
		return int32(len(slots) - 1)
	}

	rng := rand.New(rand.NewPCG(cfg.Seed^0xa5a5a5a5a5a5a5a5, cfg.Seed+1))
	resample := cfg.serviceSampler()
	if cfg.TrackOccupancy {
		res.QueueDepth = make([]stats.Welford, n)
		res.MaxQueueDepth = make([]int, n)
	}

	// enter places slot si into its stage-st queue (1-based) at cycle t.
	// It reports whether the message was dropped at a full buffer.
	enter := func(si int32, st int, t int64) (dropped bool) {
		m := &slots[si]
		row := meta.NextRow(m.row, meta.DigitOf(m.dest, st))
		q := &queues[st-1][row]
		if cfg.BufferCap > 0 && q.size() >= cfg.BufferCap {
			res.Dropped++
			if pc != nil {
				pc.dropSpan(si)
			}
			freeSlots = append(freeSlots, si)
			return true
		}
		m.stage = int8(st)
		m.row = row
		m.arrivedAt = int32(t)
		q.push(si)
		if pc != nil {
			pc.enter(st - 1)
		}
		return false
	}

	finish := func(si int32) {
		m := &slots[si]
		if m.meas {
			res.Messages++
			res.TotalWait.Add(int(m.wsum))
			if res.StageCov != nil {
				vec := make([]float64, n)
				for j := 0; j < n; j++ {
					vec[j] = float64(m.waits[j])
				}
				res.StageCov.Add(vec)
			}
		}
		if pc != nil {
			pc.finishObs(si, m.meas, int64(m.wsum))
		}
		freeSlots = append(freeSlots, si)
	}

	var batch []int32       // stage-1 entrants this cycle
	var delivery [2][]int32 // two-slot ring of next-cycle deliveries
	inNetwork := int64(0)
	exhausted := false
	covered := int64(0)  // arrivals at cycles < covered are all buffered
	var buffered []int32 // slots awaiting injection, trace order
	bufHead := 0
	maxInFlight := cfg.maxInFlight()
	drainLimit := cfg.drainLimit(meta.Horizon)
	for ; ; t++ {
		if fi != nil {
			if err := fi.AtCycle(ctx, t); err != nil {
				res.truncate(t, false)
				return res, err
			}
		}
		if t&ctxCheckMask == 0 {
			if pc != nil {
				pc.tick(cfg.Probe, t)
			}
			if err := ctx.Err(); err != nil {
				res.truncate(t, false)
				return res, err
			}
		}
		if inNetwork > maxInFlight {
			// Queued messages growing without bound: the divergence
			// signature of a configuration at or beyond m·λ = 1.
			res.truncate(t, true)
			return res, nil
		}
		// Pull schedule blocks until cycle t is fully covered, staging
		// arrivals (in trace order) for injection.
		for !exhausted && covered <= t {
			blk, err := src.Next()
			if err != nil {
				return nil, err
			}
			if blk == nil {
				exhausted = true
				break
			}
			if pc != nil {
				pc.blockPulls++
			}
			covered = int64(blk.End)
			res.Offered += int64(blk.Len())
			for i := 0; i < blk.Len(); i++ {
				si := alloc()
				m := &slots[si]
				m.arrivedAt = blk.T[i]
				m.row = blk.In[i]
				m.stage = 0
				m.wsum = 0
				m.dest = blk.Dest[i]
				m.svc = blk.Svc[i]
				m.meas = blk.Meas[i]
				if cfg.TrackStageWaits {
					if cap(m.waits) < n {
						m.waits = make([]int16, n)
					}
					m.waits = m.waits[:n]
				}
				if pc != nil {
					pc.admit(si, m.meas, int64(blk.T[i]), m.dest)
				}
				buffered = append(buffered, si)
			}
		}

		// 1. New trace arrivals enter stage 1 (random order within the
		// cycle).
		batch = batch[:0]
		for bufHead < len(buffered) && int64(slots[buffered[bufHead]].arrivedAt) == t {
			batch = append(batch, buffered[bufHead])
			bufHead++
		}
		if bufHead == len(buffered) {
			buffered = buffered[:0]
			bufHead = 0
		}
		rng.Shuffle(len(batch), func(a, b int) { batch[a], batch[b] = batch[b], batch[a] })
		for _, si := range batch {
			if !enter(si, 1, t) {
				inNetwork++
				if pc != nil {
					pc.active(inNetwork)
				}
			}
		}

		// 2. Deliveries scheduled for this cycle enter their next stage.
		slot := delivery[t&1]
		delivery[t&1] = delivery[t&1][:0]
		rng.Shuffle(len(slot), func(a, b int) { slot[a], slot[b] = slot[b], slot[a] })
		for _, si := range slot {
			st := int(slots[si].stage) + 1
			if enter(si, st, t) {
				inNetwork-- // dropped mid-network
			}
		}

		// 3. Free servers start their head-of-line messages.
		for s := 0; s < n; s++ {
			qs := queues[s]
			for r := range qs {
				q := &qs[r]
				if q.freeAt > t || q.size() == 0 {
					continue
				}
				si := q.pop()
				if pc != nil {
					pc.leave(s, 1)
				}
				m := &slots[si]
				w := int32(t) - m.arrivedAt
				m.wsum += w
				if m.meas {
					res.StageWait[s].Add(float64(w))
					if res.HotWait != nil && m.dest == 0 {
						res.HotWait[s].Add(float64(w))
					}
					if wh != nil {
						wh[s].Add(int(w))
					}
				}
				if m.waits != nil {
					m.waits[s] = int16(w)
				}
				svc := int64(m.svc)
				if resample != nil {
					svc = int64(resample.Sample(rng.Float64(), rng.Float64()))
				}
				q.freeAt = t + svc
				if pc != nil {
					pc.stageObs(si, s, m.meas, int64(m.arrivedAt), t, t+svc)
				}
				if s+1 < n {
					delivery[(t+1)&1] = append(delivery[(t+1)&1], si)
				} else {
					finish(si)
					inNetwork--
				}
			}
		}

		// 4. Occupancy sampling at end of cycle: queued messages plus an
		// in-service message whose packets are still draining.
		if cfg.TrackOccupancy && t >= int64(cfg.Warmup) && t < int64(meta.Horizon) {
			for s := 0; s < n; s++ {
				qs := queues[s]
				for r := range qs {
					occ := qs[r].size()
					if qs[r].freeAt > t {
						occ++
					}
					res.QueueDepth[s].Add(float64(occ))
					if occ > res.MaxQueueDepth[s] {
						res.MaxQueueDepth[s] = occ
					}
				}
			}
		}

		if exhausted && bufHead == len(buffered) && inNetwork == 0 {
			break
		}
		if t > drainLimit {
			// Still holding messages past the drain budget: saturated.
			res.truncate(t, true)
			return res, nil
		}
	}
	if res.Messages == 0 {
		return nil, fmt.Errorf("simnet: no measured messages completed")
	}
	return res, nil
}
