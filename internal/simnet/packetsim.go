package simnet

import (
	"fmt"
	"math/rand/v2"

	"banyan/internal/stats"
)

// literalQueue is one output-port FIFO of the literal engine.
type literalQueue struct {
	items  []int32 // message indices, FIFO
	head   int
	freeAt int64 // first cycle the server may start the next message
}

func (q *literalQueue) size() int { return len(q.items) - q.head }

func (q *literalQueue) push(i int32) { q.items = append(q.items, i) }

func (q *literalQueue) pop() int32 {
	v := q.items[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v
}

// RunLiteral executes the cycle-driven packet-level engine on a prepared
// trace. It models every output queue explicitly, cycle by cycle: trace
// messages enter their stage-1 queue at their arrival cycle, a queue whose
// server is free starts its head-of-line message (recording the wait), and
// a message starting service at cycle s is delivered to its next-stage
// queue at cycle s+1 (cut-through). Simultaneous arrivals at a queue are
// ordered uniformly at random, realizing the random batch-service
// discipline assumed by the analysis.
//
// With Config.BufferCap > 0, a message arriving at a queue already holding
// BufferCap messages is dropped and counted in Result.Dropped — the
// finite-buffer extension the paper leaves as future work. With
// BufferCap == 0 this engine is statistically identical to the fast
// engine; the test suite drives both from one trace and compares.
func RunLiteral(cfg *Config, tr *Trace) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Stages
	m := tr.Len()
	res := &Result{
		Rows:      tr.Rows,
		Wrapped:   tr.Wrapped,
		StageWait: make([]stats.Welford, n),
		Offered:   int64(m),
	}
	if cfg.TrackStageWaits {
		res.StageCov = stats.NewCovMatrix(n)
	}

	queues := make([][]literalQueue, n)
	for s := range queues {
		queues[s] = make([]literalQueue, tr.Rows)
	}

	arrivedAt := make([]int32, m) // arrival cycle at the current stage's queue
	rowOf := make([]int32, m)     // row of the queue the message occupies
	stageOf := make([]int8, m)    // 1-based stage the message occupies
	wsum := make([]int32, m)
	var stageWaits [][]int16
	if cfg.TrackStageWaits {
		stageWaits = make([][]int16, m)
		for i := range stageWaits {
			stageWaits[i] = make([]int16, n)
		}
	}

	rng := rand.New(rand.NewPCG(cfg.Seed^0xa5a5a5a5a5a5a5a5, cfg.Seed+1))
	resample := cfg.serviceSampler()
	if cfg.TrackOccupancy {
		res.QueueDepth = make([]stats.Welford, n)
		res.MaxQueueDepth = make([]int, n)
	}

	// enter places message i into its stage-st queue (1-based) at cycle t.
	enter := func(i int, st int, t int64) {
		var prevRow int32
		if st == 1 {
			prevRow = tr.In[i]
		} else {
			prevRow = rowOf[i]
		}
		row := tr.NextRow(prevRow, tr.Digit(i, st))
		q := &queues[st-1][row]
		if cfg.BufferCap > 0 && q.size() >= cfg.BufferCap {
			res.Dropped++
			stageOf[i] = int8(n + 1) // dropped messages leave the network
			return
		}
		stageOf[i] = int8(st)
		rowOf[i] = row
		arrivedAt[i] = int32(t)
		q.push(int32(i))
	}

	completed := int64(0)
	finish := func(i int) {
		completed++
		if !tr.Meas[i] {
			return
		}
		res.Messages++
		res.TotalWait.Add(int(wsum[i]))
		if stageWaits != nil {
			vec := make([]float64, n)
			for j := 0; j < n; j++ {
				vec[j] = float64(stageWaits[i][j])
			}
			res.StageCov.Add(vec)
		}
	}

	nextInj := 0            // next trace index to inject
	var delivery [2][]int32 // two-slot ring of next-cycle deliveries
	inNetwork := int64(0)
	for t := int64(0); ; t++ {
		// 1. New trace arrivals enter stage 1 (random order within the
		// cycle).
		start := nextInj
		for nextInj < m && int64(tr.T[nextInj]) == t {
			nextInj++
		}
		if nextInj > start {
			batch := make([]int32, nextInj-start)
			for j := range batch {
				batch[j] = int32(start + j)
			}
			rng.Shuffle(len(batch), func(a, b int) { batch[a], batch[b] = batch[b], batch[a] })
			for _, idx := range batch {
				inNetwork++
				enter(int(idx), 1, t)
				if stageOf[idx] == int8(n+1) { // dropped at stage 1
					inNetwork--
				}
			}
		}

		// 2. Deliveries scheduled for this cycle enter their next stage.
		slot := delivery[t&1]
		delivery[t&1] = delivery[t&1][:0]
		rng.Shuffle(len(slot), func(a, b int) { slot[a], slot[b] = slot[b], slot[a] })
		for _, idx := range slot {
			i := int(idx)
			st := int(stageOf[i]) + 1
			enter(i, st, t)
			if stageOf[i] == int8(n+1) { // dropped mid-network
				inNetwork--
			}
		}

		// 3. Free servers start their head-of-line messages.
		for s := 0; s < n; s++ {
			qs := queues[s]
			for r := range qs {
				q := &qs[r]
				if q.freeAt > t || q.size() == 0 {
					continue
				}
				i := int(q.pop())
				w := int32(t) - arrivedAt[i]
				wsum[i] += w
				if tr.Meas[i] {
					res.StageWait[s].Add(float64(w))
				}
				if stageWaits != nil {
					stageWaits[i][s] = int16(w)
				}
				svc := int64(tr.Svc[i])
				if resample != nil {
					svc = int64(resample.Sample(rng.Float64(), rng.Float64()))
				}
				q.freeAt = t + svc
				if s+1 < n {
					delivery[(t+1)&1] = append(delivery[(t+1)&1], int32(i))
				} else {
					finish(i)
					inNetwork--
				}
			}
		}

		// 4. Occupancy sampling at end of cycle: queued messages plus an
		// in-service message whose packets are still draining.
		if cfg.TrackOccupancy && t >= int64(cfg.Warmup) && t < int64(tr.Horizon) {
			for s := 0; s < n; s++ {
				qs := queues[s]
				for r := range qs {
					occ := qs[r].size()
					if qs[r].freeAt > t {
						occ++
					}
					res.QueueDepth[s].Add(float64(occ))
					if occ > res.MaxQueueDepth[s] {
						res.MaxQueueDepth[s] = occ
					}
				}
			}
		}

		if nextInj == m && inNetwork == 0 {
			break
		}
		if t > int64(tr.Horizon)*1000+1000 {
			return nil, fmt.Errorf("simnet: literal engine failed to drain by cycle %d", t)
		}
	}
	if res.Messages == 0 {
		return nil, fmt.Errorf("simnet: no measured messages completed")
	}
	return res, nil
}
