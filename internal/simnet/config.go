// Package simnet simulates clocked, buffered, multistage banyan networks —
// the experimental apparatus of the paper. Two independent engines are
// provided:
//
//   - a fast message-level engine (fastsim.go) that exploits the
//     infinite-buffer FIFO structure to propagate messages stage by stage
//     without simulating idle cycles, and
//
//   - a literal cycle-driven engine (packetsim.go) that models every
//     switch and queue each cycle and optionally enforces finite buffers
//     (the paper's future-work extension).
//
// Both engines consume the same pre-generated arrival trace, so they can
// be cross-validated against each other, and their first-stage statistics
// against the exact analysis in internal/core.
//
// Timing conventions (identical in both engines): a message arriving at a
// queue at cycle t may begin service no earlier than cycle t; consecutive
// messages at one output port begin service at least m cycles apart
// (m = the earlier message's service time); a message beginning service at
// cycle s arrives at its next-stage queue at cycle s+1 (cut-through: the
// head packet moves on while the tail may still be transmitting). The
// waiting time at a stage is s - t, which is zero for a message finding
// its output port free.
package simnet

import (
	"fmt"
	"strings"

	"banyan/internal/dist"
	"banyan/internal/faultinject"
	"banyan/internal/obs"
	"banyan/internal/stats"
	"banyan/internal/topology"
	"banyan/internal/traffic"
)

// Config describes one simulation run.
type Config struct {
	K      int // switch radix (k×k switches)
	Stages int // number of stages n

	// P is the probability that an input port receives an arrival
	// (a batch of Bulk messages) at each cycle.
	P float64

	// Bulk is the number of messages per arrival batch (Section
	// III-A-2); 0 means 1.
	Bulk int

	// Q is the probability an arrival is addressed to the input's
	// favorite output (its own index; Section III-A-3); 0 = uniform.
	Q float64

	// HotModule is the probability an arrival is addressed to the
	// single shared output 0 (the RP3-style hot memory module); 0 =
	// uniform. Mutually exclusive with Q. Hot traffic aggregates
	// geometrically along the tree to output 0 and saturates it (tree
	// saturation); Result.HotWait tracks the hot messages separately.
	HotModule float64

	// Service is the message service-time law; the zero value means
	// unit service. A message keeps its sampled size at every stage
	// (message length is physical), unless ResampleService is set.
	Service traffic.Service

	// ResampleService redraws each message's service time independently
	// at every stage — the "i.i.d. service per queue" reading of the
	// model, useful for studying how much length persistence (the
	// default) matters at the later stages.
	ResampleService bool

	// Cycles is the number of measured cycles; Warmup cycles are
	// simulated first and excluded from statistics.
	Cycles int
	Warmup int

	// Burst, when non-nil, replaces the i.i.d.-per-cycle arrival process
	// with a two-state Markov-modulated Bernoulli process per input:
	// while ON the input generates with probability Burst.POn per cycle
	// (OFF generates nothing); the state flips ON→OFF with probability
	// Burst.POffRate and OFF→ON with Burst.POnRate per cycle. The mean
	// rate is POn·POnRate/(POnRate+POffRate); P still selects the
	// *target* mean rate and POn is derived, so sweeps hold the load
	// fixed while varying burstiness. The paper's analysis assumes
	// i.i.d. cycles (its reference [3], Burman & Smith, is exactly the
	// bursty-traffic extension); this knob measures what burstiness
	// costs beyond the paper's model.
	Burst *BurstParams

	// Seed seeds the deterministic PCG random stream.
	Seed uint64

	// Antithetic mirrors every trace-generation draw: uniforms u become
	// 1-u and uniform destinations d become destSpace-1-d, at the
	// TraceStream level, so every engine (fast, reference, literal,
	// lanes) sees the same mirrored schedule. A run with Antithetic set
	// has exactly the simulator's marginal distribution — mirroring is
	// measure-preserving — but is negatively correlated with the run at
	// the same Seed without it; averaging such a pair cancels the
	// monotone part of the seed noise (antithetic variates, see
	// internal/vr). Runner-managed and excluded from sweep config
	// hashing, like Seed: the variance-reduction plan decides which
	// replications mirror, not the point's identity.
	Antithetic bool

	// SyncDraws makes trace generation consume the same number of random
	// draws per (cycle, input) slot whether or not a message is generated
	// there. Without it, destination and service uniforms are drawn only
	// for generated messages, so two runs at the same Seed but different
	// P desynchronize at the first slot where exactly one of them
	// generates — from then on their destinations are independent and
	// common-random-numbers coupling collapses to the arrival indicators
	// alone. With SyncDraws every slot consumes its full draw budget and
	// equal-seed runs across neighboring sweep points stay coupled
	// end-to-end. The marginal law is unchanged (the extra draws are
	// discarded, and each message's destination/service remain i.i.d.);
	// the realization at a given seed differs from the default stream,
	// which is why the variance-reduction layer salts its artifact keys.
	// Runner-managed and excluded from sweep config hashing, like Seed
	// and Antithetic.
	SyncDraws bool

	// MaxRows caps the number of rows per stage. A full k-ary n-stage
	// banyan has k^n rows; when that exceeds MaxRows the simulator uses
	// the largest power of k not exceeding it and wraps the shuffle
	// (statistically equivalent for uniform traffic; favorite-output
	// traffic requires the full network and is rejected when wrapped).
	// 0 means 4096.
	MaxRows int

	// TrackStageWaits records each measured message's per-stage waiting
	// times for covariance analysis (Table VI). Costs memory
	// proportional to messages × stages.
	TrackStageWaits bool

	// TrackOccupancy, for the literal engine only, samples every output
	// queue's occupancy each cycle after warmup (mean and maximum per
	// stage) — the statistic used to validate analytic buffer sizing.
	// Costs time proportional to stages × rows per cycle.
	TrackOccupancy bool

	// BufferCap, for the literal engine only, bounds each output queue
	// to the given number of queued messages (0 = infinite). Arrivals
	// to a full queue are dropped and counted.
	BufferCap int

	// AllowUnstable permits configurations at or beyond the stability
	// boundary (utilization m·λ ≥ 1 with infinite buffers), which
	// Validate otherwise rejects. Such runs rely on the saturation
	// guards below: when a guard fires the engine stops at a clean cycle
	// boundary and returns a Result flagged Truncated/Unstable, with the
	// statistics of the messages that did complete.
	AllowUnstable bool

	// MaxInFlight caps the number of messages concurrently inside the
	// network (0 = 1<<22). In-flight occupancy growing past this bound
	// is the divergence signal for saturated configurations — at
	// m·λ ≥ 1 the backlog grows linearly in time — and trips the
	// Truncated/Unstable guard instead of exhausting memory.
	MaxInFlight int

	// DrainCycles bounds the number of cycles an engine keeps running
	// after the arrival horizon to drain in-flight messages
	// (0 = 1000×horizon + 1000, the literal engine's historical bound).
	// A network still holding messages when the budget expires is
	// saturated; the run is truncated and flagged rather than left to
	// crawl through an unbounded backlog.
	DrainCycles int

	// Probe, when non-nil, receives engine instrumentation: cycles
	// simulated, schedule-block pulls, free-list hit rates, in-network
	// and per-stage backlog high-water marks. Purely observational — it
	// is deliberately excluded from sweep config hashing and never
	// influences the random streams or the statistics, so runs are
	// bit-identical with and without it.
	Probe *obs.SimProbe

	// WaitHists, when non-nil, receives each measured message's
	// per-stage waiting time: WaitHists[i] accumulates stage i+1 as an
	// exact dense lattice histogram (it must have at least Stages
	// entries, all non-nil). This is the drift monitor's data path:
	// unlike Probe.Hists — log-bucketed, aggregated across every run
	// sharing a probe — these are exact and local to one run, so they
	// can be compared against the analytic per-stage distributions with
	// goodness-of-fit tests. Purely observational: excluded from sweep
	// config hashing, never touches the random streams, results are
	// bit-identical with and without it.
	WaitHists []*stats.Hist

	// Fault, when non-nil, arms this replication's chaos injection points
	// (see internal/faultinject): the engines consult it once per executed
	// cycle and at every fresh slot allocation, and it may panic, stall,
	// or fail the run with a typed injected error. Like Probe and
	// WaitHists it is excluded from sweep config hashing and — because
	// every armed fault fires at most once per plan — a retried
	// replication converges back to the fault-free result bit for bit.
	Fault *faultinject.RepFault

	// Topology selects the explicit inter-stage wiring for the graph
	// engine (RunGraph and friends): omega, butterfly or flip. Empty
	// means the graph engine defaults to omega; the stage-model engines
	// reject a non-empty Topology because they hard-code the omega
	// arithmetic — use the graph engine for anything topology-true.
	// Graph configurations always simulate the full k^n-row network (the
	// wiring tables have no wrapped form), so k^n must fit MaxRows.
	// Hash-included in sweeps: the wiring changes which queue every
	// message joins.
	Topology topology.Kind

	// StageBuffers caps the per-port output-queue depth of each stage for
	// the graph engine: StageBuffers[j] bounds stage j+1 (0 = infinite;
	// a short slice leaves the remaining stages infinite). Any finite
	// entry switches the graph engine from its committed (stage-model
	// equivalent) dynamics into blocking dynamics: a message that finds
	// its next queue full stays where it is, its output port stalls
	// (head-of-line blocking) and the attempt repeats every cycle until
	// the queue drains — backpressure, not loss. Hash-included.
	StageBuffers []int

	// FailLinks lists failed switch-output links for the graph engine;
	// each entry names the output row of one stage. Messages routed onto
	// a failed link follow FailPolicy. Hash-included.
	FailLinks []LinkFail

	// FailPolicy selects what happens to a message routed onto a failed
	// link: "drop" (count it in Result.Dropped and discard it) or
	// "reroute" (deflect to the next healthy sister port of the same
	// switch, counting Result.Deflected; a deflected message keeps
	// routing by its original digits, so it may exit at the wrong output
	// — counted in Result.Misrouted). Empty defaults to "drop".
	// Hash-included.
	FailPolicy string

	// TrackSwitches makes the graph engine publish per-switch telemetry
	// in Result.SwitchSat: backlog high-water marks, blocked-cycle
	// counts and the saturation verdict (blocked at least once, or
	// backlog reaching SatDepth). Hash-included because it changes the
	// Result shape; the statistics themselves are unchanged.
	TrackSwitches bool

	// SatDepth is the backlog high-water threshold at which a switch
	// output port is declared saturated (0 = 32). Hash-included (it
	// changes SwitchSat verdicts).
	SatDepth int

	// SwitchWaitHists, when non-nil, receives each measured message's
	// waiting time split by the switch that served it:
	// SwitchWaitHists[j][s] accumulates stage j+1, switch s. It must
	// have at least Stages rows of at least k^(n-1) non-nil histograms.
	// This is the per-switch drift monitor's data path — under uniform
	// traffic every switch of a stage sees the same analytic waiting
	// time law, so each histogram can be KS-tested against the stage
	// model. Purely observational, excluded from sweep config hashing
	// like WaitHists.
	SwitchWaitHists [][]*stats.Hist
}

// LinkFail names one failed switch-output link of the graph engine:
// output row Row of stage Stage (1-based).
type LinkFail struct {
	Stage int
	Row   int
}

func (c *Config) bulk() int {
	if c.Bulk <= 0 {
		return 1
	}
	return c.Bulk
}

func (c *Config) service() traffic.Service {
	if c.Service.PMF().Support() == 0 {
		return traffic.UnitService()
	}
	return c.Service
}

// serviceSampler returns the alias sampler used for per-stage service
// redraws, or nil when resampling is off or the law is a single atom
// (redrawing a constant is a no-op).
func (c *Config) serviceSampler() *dist.Sampler {
	if !c.ResampleService {
		return nil
	}
	svc := c.service()
	if len(svc.PMF().SortedSupport(0)) == 1 {
		return nil
	}
	return svc.Sampler()
}

// maxInFlight returns the in-flight message cap (saturation guard).
func (c *Config) maxInFlight() int64 {
	if c.MaxInFlight > 0 {
		return int64(c.MaxInFlight)
	}
	return 1 << 22
}

// drainLimit returns the last cycle index the engines will simulate: the
// arrival horizon plus the drain budget.
func (c *Config) drainLimit(horizon int) int64 {
	if c.DrainCycles > 0 {
		return int64(horizon) + int64(c.DrainCycles)
	}
	return int64(horizon)*1000 + 1000
}

func (c *Config) maxRows() int {
	if c.MaxRows <= 0 {
		return 4096
	}
	return c.MaxRows
}

// rows returns the number of rows per stage and whether the shuffle wraps.
func (c *Config) rows() (int, bool, error) {
	full := 1
	for i := 0; i < c.Stages; i++ {
		if full > c.maxRows()/c.K {
			// Full network too large: wrap at the largest power of k
			// that fits.
			r := 1
			for r*c.K <= c.maxRows() {
				r *= c.K
			}
			if c.Q != 0 || c.HotModule != 0 {
				return 0, false, fmt.Errorf("simnet: favorite-output and hot-module traffic need the full k^n=%d-row network (MaxRows=%d)",
					intPow(c.K, c.Stages), c.maxRows())
			}
			return r, true, nil
		}
		full *= c.K
	}
	return full, false, nil
}

func intPow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// bitsFor returns an upper bound on log2(k), used to bound k^n.
func bitsFor(k int) int {
	b := 0
	for v := k - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.K < 2 {
		return fmt.Errorf("simnet: switch radix k = %d must be at least 2", c.K)
	}
	if c.Stages < 1 {
		return fmt.Errorf("simnet: stage count %d must be at least 1", c.Stages)
	}
	if c.P < 0 || c.P > 1 {
		return fmt.Errorf("simnet: arrival probability p = %g out of [0,1]", c.P)
	}
	if c.Q < 0 || c.Q > 1 {
		return fmt.Errorf("simnet: favorite probability q = %g out of [0,1]", c.Q)
	}
	if c.HotModule < 0 || c.HotModule > 1 {
		return fmt.Errorf("simnet: hot-module probability h = %g out of [0,1]", c.HotModule)
	}
	if c.HotModule > 0 && c.Q > 0 {
		return fmt.Errorf("simnet: HotModule and Q are mutually exclusive")
	}
	if c.Cycles < 1 {
		return fmt.Errorf("simnet: cycle count %d must be at least 1", c.Cycles)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("simnet: negative warmup %d", c.Warmup)
	}
	if c.BufferCap < 0 {
		return fmt.Errorf("simnet: negative buffer capacity %d", c.BufferCap)
	}
	if c.Stages*bitsFor(c.K) > 31 {
		return fmt.Errorf("simnet: destination space k^n = %d^%d exceeds 2^31", c.K, c.Stages)
	}
	// Arrival cycles are carried as int32 in traces and engine state; an
	// unchecked Warmup+Cycles horizon would silently wrap.
	if int64(c.Warmup)+int64(c.Cycles) >= 1<<31 {
		return fmt.Errorf("simnet: horizon %d+%d cycles exceeds the int32 arrival-cycle range 2^31",
			c.Warmup, c.Cycles)
	}
	if c.Burst != nil {
		if _, err := c.Burst.validate(c.P); err != nil {
			return err
		}
	}
	if c.MaxInFlight < 0 {
		return fmt.Errorf("simnet: negative in-flight cap %d", c.MaxInFlight)
	}
	if c.DrainCycles < 0 {
		return fmt.Errorf("simnet: negative drain budget %d", c.DrainCycles)
	}
	if c.WaitHists != nil {
		if len(c.WaitHists) < c.Stages {
			return fmt.Errorf("simnet: WaitHists has %d entries for %d stages", len(c.WaitHists), c.Stages)
		}
		for i, h := range c.WaitHists[:c.Stages] {
			if h == nil {
				return fmt.Errorf("simnet: WaitHists[%d] is nil", i)
			}
		}
	}
	if err := c.validateGraph(); err != nil {
		return err
	}
	rho := float64(c.bulk()) * c.P * c.service().Mean()
	if c.BufferCap == 0 && rho >= 1 && !c.AllowUnstable {
		return fmt.Errorf("simnet: unstable load m·λ = %g ≥ 1 (bulk %d × p %g × mean service %g) with infinite buffers; "+
			"set AllowUnstable (plus MaxInFlight/DrainCycles budgets) to probe saturation with truncated runs",
			rho, c.bulk(), c.P, c.service().Mean())
	}
	if _, _, err := c.rows(); err != nil {
		return err
	}
	return nil
}

// graphKnobs names the configuration fields only the graph engine
// interprets, in the order they are validated and reported.
func (c *Config) graphKnobs() []string {
	var set []string
	if c.StageBuffers != nil {
		set = append(set, "StageBuffers")
	}
	if c.FailLinks != nil {
		set = append(set, "FailLinks")
	}
	if c.FailPolicy != "" {
		set = append(set, "FailPolicy")
	}
	if c.TrackSwitches {
		set = append(set, "TrackSwitches")
	}
	if c.SatDepth != 0 {
		set = append(set, "SatDepth")
	}
	if c.SwitchWaitHists != nil {
		set = append(set, "SwitchWaitHists")
	}
	return set
}

// requireStageModel rejects graph-only configuration on the stage-model
// engines, which hard-code the omega arithmetic and have no per-switch
// state. Every stage-model entry point calls it so a topology-true
// configuration cannot silently run with its knobs ignored.
func (c *Config) requireStageModel(engine string) error {
	if c.Topology != "" {
		return fmt.Errorf("simnet: Topology %q requires the graph engine (RunGraph); the %s engine models one representative queue per stage", c.Topology, engine)
	}
	if set := c.graphKnobs(); len(set) > 0 {
		return fmt.Errorf("simnet: %s require the graph engine (RunGraph); the %s engine models one representative queue per stage", strings.Join(set, ", "), engine)
	}
	return nil
}

// validateGraph checks the graph-engine knobs. They are legal only
// alongside an explicit Topology (the graph engine fills in the omega
// default itself before validating).
func (c *Config) validateGraph() error {
	if c.Topology == "" {
		if set := c.graphKnobs(); len(set) > 0 {
			return fmt.Errorf("simnet: %s need Config.Topology (graph engine only)", strings.Join(set, ", "))
		}
		return nil
	}
	if _, err := topology.ParseKind(string(c.Topology)); err != nil {
		return err
	}
	if intPow(c.K, c.Stages) > c.maxRows() {
		return fmt.Errorf("simnet: Topology %q needs the full k^n=%d-row network (MaxRows=%d); the wiring tables have no wrapped form",
			c.Topology, intPow(c.K, c.Stages), c.maxRows())
	}
	if c.BufferCap != 0 {
		return fmt.Errorf("simnet: BufferCap is the literal engine's knob; use StageBuffers with Topology %q", c.Topology)
	}
	if len(c.StageBuffers) > c.Stages {
		return fmt.Errorf("simnet: StageBuffers has %d entries for %d stages", len(c.StageBuffers), c.Stages)
	}
	for i, b := range c.StageBuffers {
		if b < 0 {
			return fmt.Errorf("simnet: StageBuffers[%d] = %d is negative", i, b)
		}
	}
	rows := intPow(c.K, c.Stages)
	for i, f := range c.FailLinks {
		if f.Stage < 1 || f.Stage > c.Stages {
			return fmt.Errorf("simnet: FailLinks[%d] stage %d out of 1..%d", i, f.Stage, c.Stages)
		}
		if f.Row < 0 || f.Row >= rows {
			return fmt.Errorf("simnet: FailLinks[%d] row %d out of 0..%d", i, f.Row, rows-1)
		}
	}
	switch c.FailPolicy {
	case "", "drop", "reroute":
	default:
		return fmt.Errorf("simnet: FailPolicy %q (want drop or reroute)", c.FailPolicy)
	}
	if c.FailPolicy != "" && len(c.FailLinks) == 0 {
		return fmt.Errorf("simnet: FailPolicy %q without FailLinks", c.FailPolicy)
	}
	if c.SatDepth < 0 {
		return fmt.Errorf("simnet: negative SatDepth %d", c.SatDepth)
	}
	if c.SwitchWaitHists != nil {
		if len(c.SwitchWaitHists) < c.Stages {
			return fmt.Errorf("simnet: SwitchWaitHists has %d rows for %d stages", len(c.SwitchWaitHists), c.Stages)
		}
		sw := rows / c.K
		for j, row := range c.SwitchWaitHists[:c.Stages] {
			if len(row) < sw {
				return fmt.Errorf("simnet: SwitchWaitHists[%d] has %d entries for %d switches", j, len(row), sw)
			}
			for s, h := range row[:sw] {
				if h == nil {
					return fmt.Errorf("simnet: SwitchWaitHists[%d][%d] is nil", j, s)
				}
			}
		}
	}
	return nil
}

// satDepth returns the saturation high-water threshold.
func (c *Config) satDepth() int {
	if c.SatDepth > 0 {
		return c.SatDepth
	}
	return 32
}

// graphBlocking reports whether any stage has a finite buffer bound,
// which switches the graph engine into blocking dynamics.
func (c *Config) graphBlocking() bool {
	for _, b := range c.StageBuffers {
		if b > 0 {
			return true
		}
	}
	return false
}

// BurstParams configures the two-state Markov-modulated source; see
// Config.Burst.
type BurstParams struct {
	// POnRate is P(OFF→ON) per cycle; POffRate is P(ON→OFF) per cycle.
	// The mean burst length is 1/POffRate cycles and the fraction of
	// time ON is POnRate/(POnRate+POffRate).
	POnRate  float64
	POffRate float64
}

// onFraction returns the stationary fraction of time an input is ON.
func (b *BurstParams) onFraction() float64 {
	return b.POnRate / (b.POnRate + b.POffRate)
}

// validate checks the parameters and derives the ON-state generation
// probability for a target mean rate p.
func (b *BurstParams) validate(p float64) (pOn float64, err error) {
	if b.POnRate <= 0 || b.POnRate > 1 || b.POffRate <= 0 || b.POffRate > 1 {
		return 0, fmt.Errorf("simnet: burst rates (%g, %g) out of (0,1]", b.POnRate, b.POffRate)
	}
	frac := b.onFraction()
	pOn = p / frac
	if pOn > 1 {
		return 0, fmt.Errorf("simnet: target rate p=%g unreachable with ON fraction %g (needs POn=%g > 1)",
			p, frac, pOn)
	}
	return pOn, nil
}

// Trace is a pre-generated first-stage arrival schedule shared by both
// engines. Messages are ordered by arrival cycle.
type Trace struct {
	K, Stages int
	Rows      int  // rows per stage
	Wrapped   bool // shuffle wraps (rows < k^Stages)
	Horizon   int  // last generation cycle + 1

	T    []int32  // arrival cycle at stage 1
	In   []int32  // input row
	Dest []uint32 // destination address in [0, k^Stages) (digits used mod Rows when wrapped)
	Svc  []int16  // message service time, cycles
	Meas []bool   // generated after warmup → counts toward statistics

	digitDiv []uint32 // k^{Stages-j} for stage j = 1..Stages
}

// Len returns the number of messages in the trace.
func (tr *Trace) Len() int { return len(tr.T) }

// Digit returns the routing digit consumed by message i at the given
// stage (1-based).
func (tr *Trace) Digit(i, stage int) int {
	return int(tr.Dest[i]/tr.digitDiv[stage-1]) % tr.K
}

// NextRow applies the omega-network shuffle-exchange step.
func (tr *Trace) NextRow(row int32, digit int) int32 {
	return int32((int(row)*tr.K + digit) % tr.Rows)
}

// meta returns the trace's fixed context in the form the engines consume.
func (tr *Trace) meta() TraceMeta {
	return TraceMeta{
		K: tr.K, Stages: tr.Stages, Rows: tr.Rows, Wrapped: tr.Wrapped,
		Horizon: tr.Horizon, digitDiv: tr.digitDiv,
	}
}

// GenerateTrace draws the stage-1 arrival schedule for cfg, materialized
// in memory. It is the accumulate-everything wrapper over NewTraceStream:
// the chunked generator and this function draw from identical random
// streams, so at the same seed they produce byte-identical schedules.
// Long runs that do not need the whole trace at once should prefer the
// streaming path (Run, or NewTraceStream plus RunSource), whose peak
// memory is bounded by the in-flight message count instead of the
// schedule length.
func GenerateTrace(cfg *Config) (*Trace, error) {
	s, err := NewTraceStream(cfg, 0)
	if err != nil {
		return nil, err
	}
	m := s.Meta()
	expected := int(float64(m.Rows) * cfg.P * float64(cfg.bulk()) * float64(m.Horizon) * 1.05)
	tr := &Trace{
		K: m.K, Stages: m.Stages, Rows: m.Rows, Wrapped: m.Wrapped,
		Horizon:  m.Horizon,
		T:        make([]int32, 0, expected),
		In:       make([]int32, 0, expected),
		Dest:     make([]uint32, 0, expected),
		Svc:      make([]int16, 0, expected),
		Meas:     make([]bool, 0, expected),
		digitDiv: m.digitDiv,
	}
	for {
		blk, err := s.Next()
		if err != nil {
			return nil, err
		}
		if blk == nil {
			return tr, nil
		}
		tr.T = append(tr.T, blk.T...)
		tr.In = append(tr.In, blk.In...)
		tr.Dest = append(tr.Dest, blk.Dest...)
		tr.Svc = append(tr.Svc, blk.Svc...)
		tr.Meas = append(tr.Meas, blk.Meas...)
	}
}
