package simnet

import (
	"context"
	"reflect"
	"testing"

	"banyan/internal/stats"
	"banyan/internal/traffic"
)

// kernelIdentityCases is the differential matrix for the batch kernel:
// every feature the per-message body branches on (non-power-of-two
// radix, hot module, favorite outputs, bulk batches, bursty sources,
// service resampling, wrapped shuffles, per-stage wait tracking, wait
// histograms, saturation/truncation) appears in at least one case, so a
// kernel change that breaks byte-identity on any path fails here before
// it reaches the goldens.
func kernelIdentityCases(t *testing.T) []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"uniform", Config{K: 2, Stages: 6, P: 0.5, Cycles: 2000, Warmup: 300, Seed: 1}},
		{"non-pow2 radix", Config{K: 3, Stages: 3, P: 0.4, Cycles: 1500, Warmup: 200, Seed: 2}},
		{"bulk const svc", Config{K: 2, Stages: 4, P: 0.12, Bulk: 2, Service: mustConstSvc(t, 3),
			Cycles: 1800, Warmup: 250, Seed: 3}},
		{"favorite", Config{K: 2, Stages: 5, P: 0.5, Q: 0.3, Cycles: 1500, Warmup: 200, Seed: 4}},
		{"hot module", Config{K: 2, Stages: 4, P: 0.3, HotModule: 0.05, Cycles: 1500, Warmup: 200, Seed: 5}},
		{"resampled multi svc", Config{K: 2, Stages: 4, P: 0.2, ResampleService: true,
			Service: mustMultiSvc(t), Cycles: 1800, Warmup: 200, Seed: 6}},
		{"bursty", Config{K: 2, Stages: 4, P: 0.3, Cycles: 1500, Warmup: 200, Seed: 7,
			Burst: &BurstParams{POnRate: 0.125, POffRate: 0.125}}},
		{"wrapped", Config{K: 2, Stages: 13, P: 0.4, Cycles: 1200, Warmup: 150, Seed: 8, MaxRows: 512}},
		{"stage waits tracked", Config{K: 2, Stages: 5, P: 0.5, Cycles: 1500, Warmup: 200, Seed: 9,
			TrackStageWaits: true}},
		{"saturated", Config{K: 2, Stages: 6, P: 0.95, Cycles: 4000, Warmup: 100, Seed: 10,
			MaxInFlight: 2000}},
	}
}

func mustMultiSvc(t *testing.T) traffic.Service {
	t.Helper()
	svc, err := traffic.MultiService([]traffic.SizeMix{
		{Size: 1, Prob: 0.6}, {Size: 4, Prob: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// runBoth executes one configuration on the kernel and on the reference
// engine, each from its own stream with the given block size.
func runBoth(t *testing.T, cfg *Config, blockCycles int) (kernel, ref *Result) {
	t.Helper()
	c1, c2 := *cfg, *cfg
	if cfg.WaitHists != nil {
		c1.WaitHists = freshHists(cfg)
		c2.WaitHists = freshHists(cfg)
	}
	src1, err := NewTraceStream(&c1, blockCycles)
	if err != nil {
		t.Fatal(err)
	}
	kernel, err = RunKernelSource(&c1, src1)
	if err != nil {
		t.Fatal(err)
	}
	src2, err := NewTraceStream(&c2, blockCycles)
	if err != nil {
		t.Fatal(err)
	}
	ref, err = RunSource(&c2, src2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WaitHists != nil && !reflect.DeepEqual(c1.WaitHists, c2.WaitHists) {
		t.Error("wait histograms diverge between kernel and reference")
	}
	return kernel, ref
}

func freshHists(cfg *Config) []*stats.Hist {
	hs := make([]*stats.Hist, cfg.Stages)
	for i := range hs {
		hs[i] = &stats.Hist{}
	}
	return hs
}

// TestKernelMatchesReferenceExact is the kernel's determinism contract:
// at every seed and every schedule block size, the batch kernel and the
// scalar reference engine produce bit-identical Results — statistics,
// counts, truncation decisions, everything reflect.DeepEqual can see.
func TestKernelMatchesReferenceExact(t *testing.T) {
	for _, c := range kernelIdentityCases(t) {
		for _, bc := range []int{0, 1, 7, 64, 100000} {
			cfg := c.cfg
			kernel, ref := runBoth(t, &cfg, bc)
			if !reflect.DeepEqual(kernel, ref) {
				t.Errorf("%s (block=%d): kernel result differs from reference\nkernel %+v\nref    %+v",
					c.name, bc, kernel, ref)
			}
		}
	}
}

// TestKernelMatchesReferenceWithWaitHists covers the histogram path,
// which lives outside Result and therefore outside DeepEqual above.
func TestKernelMatchesReferenceWithWaitHists(t *testing.T) {
	cfg := Config{K: 2, Stages: 4, P: 0.5, Cycles: 1500, Warmup: 200, Seed: 11}
	cfg.WaitHists = freshHists(&cfg) // non-nil marker; runBoth swaps in fresh pairs
	kernel, ref := runBoth(t, &cfg, 64)
	if !reflect.DeepEqual(kernel, ref) {
		t.Error("results differ with wait hists attached")
	}
}

// TestKernelCancellation: a cancelled context stops the kernel with a
// truncated partial result, like the reference engine.
func TestKernelCancellation(t *testing.T) {
	cfg := Config{K: 2, Stages: 6, P: 0.5, Cycles: 200000, Warmup: 100, Seed: 12}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src, err := NewTraceStream(&cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunKernelSourceCtx(ctx, &cfg, src)
	if err == nil {
		t.Fatal("expected context error")
	}
	if res == nil || !res.Truncated {
		t.Fatalf("expected truncated partial result, got %+v", res)
	}
}

// TestGoldenReferenceEngine pins the reference engine to the same
// literals as TestGoldenFastEngine: the two engines share one golden
// map, so the byte-identity contract is anchored to recorded values,
// not merely to each other.
func TestGoldenReferenceEngine(t *testing.T) {
	for _, c := range goldenCases(t) {
		cfg := c.cfg
		src, err := NewTraceStream(&cfg, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		res, err := RunSource(&cfg, src)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		checkGolden(t, c.name, res, fastGolden)
	}
}
