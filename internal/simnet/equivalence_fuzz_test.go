package simnet

import (
	"math"
	"reflect"
	"testing"

	"banyan/internal/traffic"
)

// fuzzConfig maps raw fuzz arguments onto a bounded valid configuration.
// Every argument is reduced into its legal range rather than rejected,
// so the fuzzer's whole input space exercises engines instead of
// Validate. The bounds keep one execution around a millisecond: small
// radixes, few stages, short horizons.
func fuzzConfig(k, n, svcKind uint8, pMille, qMille uint16, bulk uint8,
	cycles uint16, seed uint64, resample, burst, hot bool) (Config, float64, bool) {
	cfg := Config{
		K:      2 + int(k%3),           // 2..4 — includes the non-pow2 radix 3
		Stages: 1 + int(n%4),           // 1..4
		Cycles: 300 + int(cycles%1200), // 300..1499
		Warmup: 50,
		Seed:   seed,
		Bulk:   1 + int(bulk%2), // 1..2
	}
	m := 1.0
	switch svcKind % 4 {
	case 1:
		svc, err := traffic.ConstService(3)
		if err != nil {
			return cfg, 0, false
		}
		cfg.Service, m = svc, 3
	case 2:
		svc, err := traffic.MultiService([]traffic.SizeMix{
			{Size: 1, Prob: 0.5}, {Size: 3, Prob: 0.5}})
		if err != nil {
			return cfg, 0, false
		}
		cfg.Service, m = svc, 2
	case 3:
		svc, err := traffic.GeomService(0.5, 64)
		if err != nil {
			return cfg, 0, false
		}
		cfg.Service, m = svc, 2
	}
	// p spans (0, ~1.1/(b·m)]: most draws are stable, the top of the
	// range crosses saturation so truncation paths stay covered.
	cfg.P = math.Min(1, (0.02+float64(pMille%1000)/1000.0)*1.1/(float64(cfg.Bulk)*m))
	if resample {
		cfg.ResampleService = true
	}
	if hot {
		cfg.HotModule = 0.02 + 0.1*float64(qMille%500)/500.0
	} else if qMille%3 == 0 && cfg.K == 2 && cfg.Bulk == 1 {
		cfg.Q = 0.5 * float64(qMille%500) / 500.0
	}
	if burst && cfg.Q == 0 {
		cfg.Burst = &BurstParams{POnRate: 0.1, POffRate: 0.2}
		if frac := cfg.Burst.onFraction(); cfg.P > 0.9*frac {
			cfg.P = 0.9 * frac
		}
	}
	// Bound saturated drains so divergent draws finish quickly, and let
	// draws at or past the stability boundary run as truncated
	// measurements instead of dying in Validate — the truncation paths
	// are exactly where the engines are most likely to disagree.
	cfg.MaxInFlight = 5000
	cfg.DrainCycles = 20000
	cfg.AllowUnstable = true
	if cfg.Validate() != nil {
		return cfg, 0, false
	}
	return cfg, cfg.P * float64(cfg.Bulk) * m, true
}

// fuzzLaneWidth derives the lock-step lane count for a fuzz execution
// from seed bits fuzzConfig does not consume: 1..8, covering odd widths
// and the degenerate W=1 group. The fuzz config itself rides at a
// seed-chosen lane so every lane position gets exercised.
func fuzzLaneWidth(seed uint64) (w, slot int) {
	w = 1 + int((seed>>33)%8)
	slot = int((seed >> 37) % uint64(w))
	return w, slot
}

// FuzzEngineEquivalence cross-checks the five engines on arbitrary
// bounded configurations: the batch kernel must match the scalar
// reference engine bit for bit (the determinism contract); the
// topology-true graph engine, under its default omega wiring with
// unlimited buffers, must collapse to the kernel bit for bit (the
// graph-collapse contract); the laned kernel — running the same configuration as one lane of a lock-step
// group of seed-derived width, and again as a degenerate W=1 group —
// must match the scalar kernel bit for bit on every lane; and, when the
// run is not truncated, all must agree with the cycle-driven literal
// engine on the measured population and, statistically, on the mean
// wait. The seed corpus covers the edge regimes: saturation and
// truncation (with AllowUnstable draws past ρ = 1), bulk batches,
// favorite outputs, hot modules, resampled service, bursty sources, and
// lane widths across 1..8 including odd group sizes.
func FuzzEngineEquivalence(f *testing.F) {
	//        k  n svc  p‰   q‰  bulk cyc  seed  resample burst hot
	f.Add(uint8(0), uint8(3), uint8(0), uint16(400), uint16(0), uint8(0), uint16(600), uint64(1), false, false, false)  // plain uniform
	f.Add(uint8(0), uint8(2), uint8(1), uint16(950), uint16(0), uint8(1), uint16(500), uint64(2), false, false, false)  // bulk + const svc near saturation
	f.Add(uint8(0), uint8(3), uint8(0), uint16(999), uint16(0), uint8(0), uint16(1100), uint64(3), false, false, false) // saturated → truncation
	f.Add(uint8(0), uint8(2), uint8(0), uint16(300), uint16(99), uint8(0), uint16(700), uint64(4), false, false, false) // favorite outputs
	f.Add(uint8(0), uint8(2), uint8(0), uint16(300), uint16(200), uint8(0), uint16(700), uint64(5), false, false, true) // hot module
	f.Add(uint8(0), uint8(2), uint8(2), uint16(350), uint16(0), uint8(0), uint16(800), uint64(6), true, false, false)   // resampled multi-size service
	f.Add(uint8(0), uint8(1), uint8(0), uint16(400), uint16(1), uint8(0), uint16(900), uint64(7), false, true, false)   // bursty source
	f.Add(uint8(1), uint8(1), uint8(3), uint16(500), uint16(0), uint8(0), uint16(400), uint64(8), false, false, false)  // non-pow2 radix + geometric svc
	// Lane-focused seeds: high seed bits select the lane width (1..8)
	// and the fuzz config's lane position.
	f.Add(uint8(0), uint8(3), uint8(0), uint16(400), uint16(0), uint8(0), uint16(600), uint64(1)<<33|9, false, false, false)   // W=2 group
	f.Add(uint8(0), uint8(3), uint8(0), uint16(999), uint16(0), uint8(0), uint16(1100), uint64(2)<<33|10, false, false, false) // W=3 (odd) group, truncating
	f.Add(uint8(0), uint8(2), uint8(1), uint16(999), uint16(0), uint8(1), uint16(500), uint64(4)<<33|11, false, false, false)  // W=5 group past ρ=1 (AllowUnstable)
	f.Add(uint8(1), uint8(2), uint8(3), uint16(500), uint16(0), uint8(0), uint16(700), uint64(7)<<37|12, false, false, false)  // W=8 group, non-pow2 radix, off-zero slot

	f.Fuzz(func(t *testing.T, k, n, svcKind uint8, pMille, qMille uint16, bulk uint8,
		cycles uint16, seed uint64, resample, burst, hot bool) {
		cfg, rho, ok := fuzzConfig(k, n, svcKind, pMille, qMille, bulk, cycles, seed, resample, burst, hot)
		if !ok {
			t.Skip()
		}

		// Both engines consume the schedule with the same block size:
		// statistics are block-size-invariant, but Offered counts every
		// *pulled* arrival, so on truncated runs it reflects how much
		// schedule the final pull covered.
		bc := 1 + int(seed%257)
		kcfg := cfg
		ksrc, err := NewTraceStream(&kcfg, bc)
		if err != nil {
			t.Fatal(err)
		}
		kres, kerr := RunKernelSource(&kcfg, ksrc)

		rcfg := cfg
		rsrc, err := NewTraceStream(&rcfg, bc)
		if err != nil {
			t.Fatal(err)
		}
		rres, rerr := RunSource(&rcfg, rsrc)

		if (kerr == nil) != (rerr == nil) {
			t.Fatalf("error mismatch: kernel %v, reference %v (cfg %+v)", kerr, rerr, cfg)
		}

		// Graph leg: the topology-true engine under its default omega
		// wiring with unlimited buffers must collapse to the stage model
		// bit for bit — same errors, same Result, at every draw. The fuzz
		// bounds keep k^n ≤ 256 < MaxRows, so the graph engine always sees
		// the full unwrapped network it requires.
		wcfg := cfg
		wsrc, err := NewTraceStream(&wcfg, bc)
		if err != nil {
			t.Fatal(err)
		}
		wres, werr := RunGraphSource(&wcfg, wsrc)
		if (kerr == nil) != (werr == nil) {
			t.Fatalf("error mismatch: kernel %v, graph %v (cfg %+v)", kerr, werr, cfg)
		}

		if kerr != nil {
			return // all rejected (no measured messages)
		}
		if !reflect.DeepEqual(kres, rres) {
			t.Fatalf("kernel and reference diverge (cfg %+v)\nkernel %+v\nref    %+v", cfg, kres, rres)
		}
		if !reflect.DeepEqual(kres, wres) {
			t.Fatalf("kernel and graph engine diverge (cfg %+v)\nkernel %+v\ngraph  %+v", cfg, kres, wres)
		}

		// Laned cross-check: the fuzz config runs as one lane of a
		// lock-step group of seed-derived width, siblings at split seeds.
		// Every lane is held bit-identical to a scalar run of its own
		// configuration at the lanes' default block size — Offered counts
		// pulled schedule, so truncated runs are block-size-sensitive and
		// the oracle must pull the same blocks the lanes do.
		w, slot := fuzzLaneWidth(seed)
		lcfgs := make([]*Config, w)
		for i := range lcfgs {
			c := cfg
			if i != slot {
				c.Seed = SplitSeed(seed, uint64(i)+1)
			}
			lcfgs[i] = &c
		}
		gres, gerrs := RunLanes(lcfgs)
		var slotRes *Result
		var slotErr error
		for i := range lcfgs {
			oc := *lcfgs[i]
			ores, oerr := Run(&oc)
			if i == slot {
				slotRes, slotErr = ores, oerr
			}
			if (gerrs[i] == nil) != (oerr == nil) {
				t.Fatalf("lane %d/%d error mismatch: lanes %v, scalar %v (cfg %+v)", i, w, gerrs[i], oerr, cfg)
			}
			if !reflect.DeepEqual(gres[i], ores) {
				t.Fatalf("lane %d/%d diverges from scalar (cfg %+v)\nlane   %+v\nscalar %+v", i, w, cfg, gres[i], ores)
			}
		}
		if w > 1 {
			// Degenerate W=1 group: the lane machinery with no siblings.
			scfg := cfg
			sres, serrs := RunLanes([]*Config{&scfg})
			if (serrs[0] == nil) != (slotErr == nil) {
				t.Fatalf("W=1 lane error mismatch: lane %v, scalar %v (cfg %+v)", serrs[0], slotErr, cfg)
			}
			if !reflect.DeepEqual(sres[0], slotRes) {
				t.Fatalf("W=1 lane diverges from scalar (cfg %+v)\nlane   %+v\nscalar %+v", cfg, sres[0], slotRes)
			}
		}

		// The literal engine shares no scheduling code; compare it
		// statistically on untruncated stable runs (its guards fire at
		// different cycles on divergent ones). The moment check is only
		// meaningful where short horizons mix fast: plain traffic below
		// ρ = 0.8. Bursty, hot-module and favorite draws concentrate
		// load on single ports (transiently supercritical), where
		// TestDifferentialEngines does the statistical cross-check with
		// proper horizons; here they still get the exact kernel-versus-
		// reference comparison above, which is the contract under fuzz.
		if kres.Truncated || rho > 0.8 || cfg.Burst != nil || cfg.HotModule > 0 || cfg.Q > 0 {
			return
		}
		lcfg := cfg
		lsrc, err := NewTraceStream(&lcfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		lres, lerr := RunLiteralSource(&lcfg, lsrc)
		if lerr != nil {
			t.Fatalf("literal engine rejected a config the kernel ran: %v (cfg %+v)", lerr, cfg)
		}
		if lres.Truncated {
			return
		}
		if kres.Messages != lres.Messages {
			t.Fatalf("measured counts differ: kernel %d, literal %d (cfg %+v)", kres.Messages, lres.Messages, cfg)
		}
		meas := float64(kres.Messages)
		if meas < 3000 {
			return // too few samples for a meaningful moment check
		}
		// Waits at one port are strongly autocorrelated, so the i.i.d.
		// standard error understates the Monte-Carlo spread badly on
		// fuzz-sized horizons; the wide factors make this a gross-
		// breakage smoke test (wrong units, dropped stages), leaving
		// precision to TestDifferentialEngines.
		km, lm := kres.MeanTotalWait(), lres.MeanTotalWait()
		se := math.Sqrt(kres.VarTotalWait() / meas)
		if tol := 15*se + 0.1*(1+km); math.Abs(km-lm) > tol {
			t.Fatalf("mean wait %g vs literal %g exceeds tol %g (cfg %+v)", km, lm, tol, cfg)
		}
	})
}
